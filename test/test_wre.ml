(* Core WRE tests: scheme parsing, every salt allocator's invariants,
   Algorithm 2's bucket layout, the column encryptor's Enc/Dec/Search
   contract, and the encrypted-database integration for all five
   schemes. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let master = Crypto.Keys.of_raw ~k0:(String.make 16 '0') ~k1:(String.make 32 '1')

let small_dist =
  Dist.Empirical.of_counts [ ("alpha", 50); ("beta", 30); ("gamma", 15); ("delta", 5) ]

let all_kinds =
  [
    Wre.Scheme.Det;
    Wre.Scheme.Fixed 8;
    Wre.Scheme.Proportional 100;
    Wre.Scheme.Poisson 200.0;
    Wre.Scheme.Bucketized 200.0;
  ]

(* ---------------- Scheme ---------------- *)

let test_scheme_string_roundtrip () =
  List.iter
    (fun kind ->
      match Wre.Scheme.of_string (Wre.Scheme.to_string kind) with
      | Ok k -> check_bool (Wre.Scheme.to_string kind) true (k = kind)
      | Error e -> Alcotest.fail e)
    (all_kinds @ [ Wre.Scheme.Poisson 1500.5 ]);
  check_bool "garbage rejected" true (Result.is_error (Wre.Scheme.of_string "nonsense"));
  check_bool "bad param rejected" true (Result.is_error (Wre.Scheme.of_string "fixed-xyz"))

let test_scheme_expected_tags () =
  check_float "det" 1.0 (Wre.Scheme.expected_tags_per_plaintext Wre.Scheme.Det ~dist:small_dist "alpha");
  check_float "fixed" 8.0
    (Wre.Scheme.expected_tags_per_plaintext (Wre.Scheme.Fixed 8) ~dist:small_dist "alpha");
  check_float "proportional" 50.0
    (Wre.Scheme.expected_tags_per_plaintext (Wre.Scheme.Proportional 100) ~dist:small_dist "alpha");
  check_float "poisson" 101.0
    (Wre.Scheme.expected_tags_per_plaintext (Wre.Scheme.Poisson 200.0) ~dist:small_dist "alpha");
  check_bool "bucketized flag" true (Wre.Scheme.is_bucketized (Wre.Scheme.Bucketized 1.0));
  check_bool "poisson not bucketized" false (Wre.Scheme.is_bucketized (Wre.Scheme.Poisson 1.0))

(* ---------------- Salts ---------------- *)

let test_salts_det () =
  check_bool "valid" true (Wre.Salts.validate Wre.Salts.det = Ok ());
  check_int "one salt" 1 (Array.length Wre.Salts.det.salts)

let test_salts_fixed () =
  let s = Wre.Salts.fixed ~n:10 in
  check_bool "valid" true (Wre.Salts.validate s = Ok ());
  check_int "ten salts" 10 (Array.length s.salts);
  check_float "uniform" 0.1 s.weights.(3);
  Alcotest.check_raises "zero rejected" (Invalid_argument "Salts.fixed: need at least one salt")
    (fun () -> ignore (Wre.Salts.fixed ~n:0))

let test_salts_proportional () =
  let s = Wre.Salts.proportional ~total_tags:100 ~prob:0.3 in
  check_int "30 salts" 30 (Array.length s.salts);
  (* Rare plaintexts still get one salt. *)
  let tiny = Wre.Salts.proportional ~total_tags:100 ~prob:0.001 in
  check_int "at least one" 1 (Array.length tiny.salts);
  check_bool "valid" true (Wre.Salts.validate s = Ok ())

let test_salts_proportional_aliasing () =
  (* The paper's §V-B example: P = {0.7, 0.3}. N_T = 10 divides evenly;
     N_T = 12 rounds to 8 and 4 salts with different per-tag
     frequencies — the aliasing defect, preserved by design. *)
  let a1 = Wre.Salts.proportional ~total_tags:10 ~prob:0.7 in
  let a2 = Wre.Salts.proportional ~total_tags:10 ~prob:0.3 in
  check_float "even split per-tag frequency" (0.7 /. 7.0) (0.3 /. float_of_int (Array.length a2.salts));
  ignore a1;
  let b1 = Wre.Salts.proportional ~total_tags:12 ~prob:0.7 in
  let b2 = Wre.Salts.proportional ~total_tags:12 ~prob:0.3 in
  check_int "8 salts" 8 (Array.length b1.salts);
  check_int "4 salts" 4 (Array.length b2.salts);
  check_bool "per-tag frequencies differ (aliasing)" true
    (Float.abs ((0.7 /. 8.0) -. (0.3 /. 4.0)) > 0.01)

let test_salts_poisson_deterministic () =
  let a = Wre.Salts.poisson ~seed:"seed-a" ~lambda:500.0 ~prob:0.2 in
  let b = Wre.Salts.poisson ~seed:"seed-a" ~lambda:500.0 ~prob:0.2 in
  check_bool "same seed same salts" true (a = b);
  let c = Wre.Salts.poisson ~seed:"seed-b" ~lambda:500.0 ~prob:0.2 in
  check_bool "different seed differs" true (a <> c);
  check_bool "valid" true (Wre.Salts.validate a = Ok ())

let test_salts_poisson_count_scales_with_lambda () =
  (* E[#salts] = lambda * prob + 1. Average over seeds. *)
  let avg lambda =
    let total = ref 0 in
    for i = 0 to 199 do
      let s = Wre.Salts.poisson ~seed:(Printf.sprintf "s%d" i) ~lambda ~prob:0.1 in
      total := !total + Array.length s.salts
    done;
    float_of_int !total /. 200.0
  in
  check_bool "lambda 100 ~ 11" true (Float.abs (avg 100.0 -. 11.0) < 2.0);
  check_bool "lambda 1000 ~ 101" true (Float.abs (avg 1000.0 -. 101.0) < 10.0)

let test_salts_sample_follows_weights () =
  let g = Stdx.Prng.create 2L in
  let s = Wre.Salts.make ~salts:[| 5; 9 |] ~weights:[| 0.9; 0.1 |] in
  let nine = ref 0 in
  for _ = 1 to 5000 do
    if Wre.Salts.sample s g = 9 then incr nine
  done;
  check_bool "follows weights" true (Float.abs ((float_of_int !nine /. 5000.0) -. 0.1) < 0.02)

let test_salts_validate_catches_errors () =
  check_bool "dup salts" true
    (Result.is_error
       (Wre.Salts.validate (Wre.Salts.make ~salts:[| 1; 1 |] ~weights:[| 0.5; 0.5 |])));
  check_bool "bad sum" true
    (Result.is_error
       (Wre.Salts.validate (Wre.Salts.make ~salts:[| 1; 2 |] ~weights:[| 0.5; 0.6 |])));
  check_bool "negative weight" true
    (Result.is_error
       (Wre.Salts.validate (Wre.Salts.make ~salts:[| 1; 2 |] ~weights:[| 1.5; -0.5 |])))

let test_salts_poisson_first_interarrival_exponential () =
  (* The theory behind §V-C: the FIRST interarrival of each message's
     Poisson process is an unconditional Exponential(λ) draw, capped at
     P_M(m) (later slots are boundary-conditioned, so only the first is
     testable without bias). Pool first slots across messages and
     KS-test the uncapped ones against the truncated Exponential CDF. *)
  let lambda = 400.0 and prob = 0.05 in
  let firsts = ref [] and capped = ref 0 in
  let n_msgs = 3000 in
  for i = 0 to n_msgs - 1 do
    let s = Wre.Salts.poisson ~seed:(Printf.sprintf "ks%d" i) ~lambda ~prob in
    let w0 = s.Wre.Salts.weights.(0) *. prob in
    if Array.length s.Wre.Salts.weights = 1 then incr capped else firsts := w0 :: !firsts
  done;
  (* P(capped) = e^{-lambda * prob} = e^{-20}: essentially never. *)
  check_bool "capped fraction negligible" true (!capped < 3);
  let xs = Array.of_list !firsts in
  let z = Dist.Exponential.cdf ~rate:lambda prob in
  let truncated_cdf x = Dist.Exponential.cdf ~rate:lambda x /. z in
  let d = Dist.Stat_tests.ks_statistic xs ~cdf:truncated_cdf in
  check_bool "KS passes at 0.1%" true
    (d < Dist.Stat_tests.ks_critical ~n:(Array.length xs) ~alpha:0.001)

(* ---------------- Bucket layout (Algorithm 2) ---------------- *)

let make_layout ?(lambda = 100.0) ?(dist = small_dist) () =
  Wre.Bucket_layout.create ~seed:"layout-seed" ~shuffle_key:"shuffle-key" ~column:"col" ~dist
    ~lambda

let test_layout_widths_sum_to_one () =
  let l = make_layout () in
  check_bool "validates" true (Wre.Bucket_layout.validate l = Ok ());
  check_float "widths sum" 1.0 (Array.fold_left ( +. ) 0.0 (Wre.Bucket_layout.bucket_widths l));
  check_bool "bucket count near lambda" true
    (abs (Wre.Bucket_layout.bucket_count l - 100) < 40)

let test_layout_covers_support () =
  let l = make_layout () in
  Array.iter
    (fun m ->
      match Wre.Bucket_layout.salts_for l m with
      | None -> Alcotest.fail ("no salts for " ^ m)
      | Some s -> check_bool (m ^ " valid") true (Wre.Salts.validate s = Ok ()))
    (Dist.Empirical.support small_dist);
  check_bool "outside support" true (Wre.Bucket_layout.salts_for l "unknown" = None)

let test_layout_deterministic () =
  let a = make_layout () and b = make_layout () in
  Array.iter
    (fun m ->
      check_bool (m ^ " same") true
        (Wre.Bucket_layout.salts_for a m = Wre.Bucket_layout.salts_for b m))
    (Dist.Empirical.support small_dist)

let test_layout_salt_count_tracks_probability () =
  (* A plaintext of probability p overlaps ≈ λp + 1 buckets. *)
  let l = make_layout ~lambda:1000.0 () in
  let count m = Array.length (Option.get (Wre.Bucket_layout.salts_for l m)).Wre.Salts.salts in
  check_bool "alpha ~ 501" true (abs (count "alpha" - 501) < 120);
  check_bool "delta ~ 51" true (abs (count "delta" - 51) < 40);
  check_bool "alpha gets more buckets" true (count "alpha" > count "delta")

let test_layout_shared_buckets_exist () =
  (* With few buckets, adjacent plaintexts must share boundary buckets:
     that sharing is what creates false positives. *)
  let l = make_layout ~lambda:20.0 () in
  let shared = ref false in
  for b = 0 to Wre.Bucket_layout.bucket_count l - 1 do
    if List.length (Wre.Bucket_layout.messages_sharing l b) > 1 then shared := true
  done;
  check_bool "at least one shared bucket" true !shared

let test_layout_returned_mass_bounds () =
  let l = make_layout ~lambda:100.0 () in
  Array.iter
    (fun m ->
      let p = Dist.Empirical.prob small_dist m in
      let mass = Wre.Bucket_layout.returned_mass l m in
      check_bool (m ^ " mass >= p") true (mass >= p -. 1e-9);
      check_bool (m ^ " mass <= 1") true (mass <= 1.0 +. 1e-9))
    (Dist.Empirical.support small_dist)

let test_layout_fp_mass_shrinks_with_lambda () =
  let fp lambda =
    let l = make_layout ~lambda () in
    Array.fold_left
      (fun acc m ->
        acc +. (Wre.Bucket_layout.returned_mass l m -. Dist.Empirical.prob small_dist m))
      0.0
      (Dist.Empirical.support small_dist)
  in
  check_bool "lambda 1000 < lambda 20" true (fp 1000.0 < fp 20.0)

let test_layout_tag_frequencies_data_independent () =
  (* The same seed with two very different plaintext distributions must
     produce identical bucket widths — that is Theorem V.1's core. *)
  let d1 = small_dist in
  let d2 = Dist.Empirical.of_counts [ ("x", 99); ("y", 1) ] in
  let l1 =
    Wre.Bucket_layout.create ~seed:"s" ~shuffle_key:"k" ~column:"c" ~dist:d1 ~lambda:100.0
  in
  let l2 =
    Wre.Bucket_layout.create ~seed:"s" ~shuffle_key:"k" ~column:"c" ~dist:d2 ~lambda:100.0
  in
  Alcotest.(check (array (float 1e-12)))
    "identical widths" (Wre.Bucket_layout.bucket_widths l1) (Wre.Bucket_layout.bucket_widths l2)

(* ---------------- Value codec ---------------- *)

let test_codec_roundtrip () =
  List.iter
    (fun v ->
      check_bool (Sqldb.Value.to_string v) true
        (Wre.Value_codec.decode_exn (Wre.Value_codec.encode v) = v))
    [
      Sqldb.Value.Null;
      Sqldb.Value.Int 0L;
      Sqldb.Value.Int (-1L);
      Sqldb.Value.Int Int64.max_int;
      Sqldb.Value.Real 3.14159;
      Sqldb.Value.Real (-0.0);
      Sqldb.Value.Real infinity;
      Sqldb.Value.Text "";
      Sqldb.Value.Text "hello \x00 world";
      Sqldb.Value.Blob "\x01\x02\x03";
    ]

let test_codec_rejects_malformed () =
  check_bool "empty" true (Result.is_error (Wre.Value_codec.decode ""));
  check_bool "unknown tag" true (Result.is_error (Wre.Value_codec.decode "Zxx"));
  check_bool "short int" true (Result.is_error (Wre.Value_codec.decode "I123"));
  check_bool "trailing null" true (Result.is_error (Wre.Value_codec.decode "Nx"))

(* ---------------- Column encryptor ---------------- *)

let test_column_enc_roundtrip_all_kinds () =
  let g = Stdx.Prng.create 1L in
  List.iter
    (fun kind ->
      let enc = Wre.Column_enc.create ~master ~column:"c" ~kind ~dist:small_dist () in
      Array.iter
        (fun m ->
          let tag, ct = Wre.Column_enc.encrypt enc g m in
          Alcotest.(check string) "decrypts" m (Wre.Column_enc.decrypt enc ct);
          let tags = Wre.Column_enc.search_tags enc m in
          check_bool
            (Printf.sprintf "%s: tag of %s in search set" (Wre.Scheme.to_string kind) m)
            true (List.mem tag tags))
        (Dist.Empirical.support small_dist))
    all_kinds

let test_column_enc_randomized_ciphertexts () =
  let g = Stdx.Prng.create 2L in
  let enc = Wre.Column_enc.create ~master ~column:"c" ~kind:Wre.Scheme.Det ~dist:small_dist () in
  let _, c1 = Wre.Column_enc.encrypt enc g "alpha" in
  let _, c2 = Wre.Column_enc.encrypt enc g "alpha" in
  check_bool "ciphertexts differ" true (c1 <> c2)

let test_column_enc_det_single_tag () =
  let g = Stdx.Prng.create 3L in
  let enc = Wre.Column_enc.create ~master ~column:"c" ~kind:Wre.Scheme.Det ~dist:small_dist () in
  let t1, _ = Wre.Column_enc.encrypt enc g "alpha" in
  let t2, _ = Wre.Column_enc.encrypt enc g "alpha" in
  Alcotest.(check int64) "deterministic tag" t1 t2;
  check_int "one search tag" 1 (List.length (Wre.Column_enc.search_tags enc "alpha"))

let test_column_enc_unknown_plaintext () =
  let g = Stdx.Prng.create 4L in
  List.iter
    (fun kind ->
      let enc = Wre.Column_enc.create ~master ~column:"c" ~kind ~dist:small_dist () in
      let raised =
        try
          ignore (Wre.Column_enc.encrypt enc g "not-in-dist");
          false
        with Wre.Column_enc.Unknown_plaintext _ -> true
      in
      check_bool (Wre.Scheme.to_string kind ^ " raises") true raised;
      check_bool "search returns empty" true (Wre.Column_enc.search_tags enc "not-in-dist" = []))
    [ Wre.Scheme.Proportional 100; Wre.Scheme.Poisson 100.0; Wre.Scheme.Bucketized 100.0 ];
  (* Distribution-independent schemes accept anything. *)
  List.iter
    (fun kind ->
      let enc = Wre.Column_enc.create ~master ~column:"c" ~kind ~dist:small_dist () in
      let tag, _ = Wre.Column_enc.encrypt enc g "novel" in
      check_bool "searchable" true (List.mem tag (Wre.Column_enc.search_tags enc "novel")))
    [ Wre.Scheme.Det; Wre.Scheme.Fixed 4 ]

let test_column_enc_fallback_min_frequency () =
  (* The `Min_frequency update policy: plaintexts outside the profiled
     distribution become encryptable and searchable under every
     scheme. *)
  let g = Stdx.Prng.create 41L in
  List.iter
    (fun kind ->
      let enc =
        Wre.Column_enc.create ~fallback:`Min_frequency ~master ~column:"c" ~kind ~dist:small_dist
          ()
      in
      let tag, ct = Wre.Column_enc.encrypt enc g "novel-value" in
      Alcotest.(check string) "roundtrips" "novel-value" (Wre.Column_enc.decrypt enc ct);
      check_bool
        (Wre.Scheme.to_string kind ^ " searchable")
        true
        (List.mem tag (Wre.Column_enc.search_tags enc "novel-value"));
      (* Known plaintexts keep their normal salt sets. *)
      check_bool "known value unaffected" true
        (Wre.Column_enc.search_tags enc "alpha"
        = Wre.Column_enc.search_tags
            (Wre.Column_enc.create ~master ~column:"c" ~kind ~dist:small_dist ())
            "alpha"))
    all_kinds

let test_column_enc_fallback_poisson_salt_count () =
  (* Fallback Poisson salts are allocated on [0, tau]. *)
  let enc =
    Wre.Column_enc.create ~fallback:`Min_frequency ~master ~column:"c"
      ~kind:(Wre.Scheme.Poisson 2000.0) ~dist:small_dist ()
  in
  let tau = Dist.Empirical.min_prob small_dist in
  let n = List.length (Wre.Column_enc.search_tags enc "novel") in
  check_bool "roughly lambda*tau+1 tags" true
    (float_of_int n < (2.0 *. (2000.0 *. tau)) +. 10.0);
  check_bool "at least one tag" true (n >= 1)

let test_column_enc_fallback_bucketized_existing_bucket () =
  (* Bucketized fallback maps a novel value onto one existing bucket, so
     its tag collides with some profiled plaintext's tag set — it hides
     in the existing tag distribution rather than creating a fresh
     identifying tag. *)
  let enc =
    Wre.Column_enc.create ~fallback:`Min_frequency ~master ~column:"c"
      ~kind:(Wre.Scheme.Bucketized 50.0) ~dist:small_dist ()
  in
  let novel_tags = Wre.Column_enc.search_tags enc "novel" in
  check_int "single bucket" 1 (List.length novel_tags);
  let all_known_tags =
    List.concat_map (fun m -> Wre.Column_enc.search_tags enc m)
      (Array.to_list (Dist.Empirical.support small_dist))
  in
  check_bool "tag is an existing bucket tag" true
    (List.mem (List.hd novel_tags) all_known_tags)

let test_column_enc_column_isolation () =
  let g = Stdx.Prng.create 5L in
  let e1 = Wre.Column_enc.create ~master ~column:"c1" ~kind:Wre.Scheme.Det ~dist:small_dist () in
  let e2 = Wre.Column_enc.create ~master ~column:"c2" ~kind:Wre.Scheme.Det ~dist:small_dist () in
  let t1, _ = Wre.Column_enc.encrypt e1 g "alpha" in
  let t2, _ = Wre.Column_enc.encrypt e2 g "alpha" in
  check_bool "tags differ across columns" true (t1 <> t2)

let test_column_enc_bucketized_layout_exposed () =
  let enc =
    Wre.Column_enc.create ~master ~column:"c" ~kind:(Wre.Scheme.Bucketized 100.0) ~dist:small_dist ()
  in
  check_bool "layout present" true (Wre.Column_enc.bucket_layout enc <> None);
  let det = Wre.Column_enc.create ~master ~column:"c" ~kind:Wre.Scheme.Det ~dist:small_dist () in
  check_bool "no layout for det" true (Wre.Column_enc.bucket_layout det = None)

let test_column_enc_bucketized_shared_tags () =
  (* Under bucketized encryption, the tag sets of adjacent plaintexts
     can overlap; under per-message schemes they never do. *)
  let enc =
    Wre.Column_enc.create ~master ~column:"c" ~kind:(Wre.Scheme.Bucketized 10.0) ~dist:small_dist ()
  in
  let all_tags =
    List.concat_map (fun m -> Wre.Column_enc.search_tags enc m)
      (Array.to_list (Dist.Empirical.support small_dist))
  in
  let distinct = List.sort_uniq compare all_tags in
  check_bool "bucketized shares tags" true (List.length distinct < List.length all_tags);
  let pois =
    Wre.Column_enc.create ~master ~column:"c" ~kind:(Wre.Scheme.Poisson 10.0) ~dist:small_dist ()
  in
  let ptags =
    List.concat_map (fun m -> Wre.Column_enc.search_tags pois m)
      (Array.to_list (Dist.Empirical.support small_dist))
  in
  check_int "poisson tags disjoint" (List.length ptags) (List.length (List.sort_uniq compare ptags))

let test_column_enc_poisson_tag_frequencies_smooth () =
  (* Encrypt a skewed column under Poisson and verify no tag is much
     more frequent than ~1/lambda — the frequency-smoothing claim. *)
  let g = Stdx.Prng.create 6L in
  let lambda = 300.0 in
  let enc =
    Wre.Column_enc.create ~master ~column:"c" ~kind:(Wre.Scheme.Poisson lambda) ~dist:small_dist ()
  in
  let n = 30000 in
  let counts = Hashtbl.create 512 in
  for _ = 1 to n do
    let m = Dist.Empirical.sampler small_dist g in
    let tag, _ = Wre.Column_enc.encrypt enc g m in
    Hashtbl.replace counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag))
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  let max_freq = float_of_int max_count /. float_of_int n in
  (* Exponential tail: P(slot > 6/lambda) = e^-6 ~ 0.0025 per slot. *)
  check_bool "no tag dominates" true (max_freq < 8.0 /. lambda)

(* ---------------- Dist_est ---------------- *)

let test_dist_est () =
  let schema =
    Sqldb.Schema.create
      [
        { name = "id"; ty = TInt; nullable = false };
        { name = "name"; ty = TText; nullable = false };
      ]
  in
  let rows =
    List.init 10 (fun i ->
        [| Sqldb.Value.Int (Int64.of_int i); Sqldb.Value.Text (if i < 7 then "a" else "b") |])
  in
  let dist_of = Wre.Dist_est.of_rows ~schema ~columns:[ "name" ] (List.to_seq rows) in
  let d = dist_of "name" in
  check_float "a" 0.7 (Dist.Empirical.prob d "a");
  check_int "counts preserved" 7 (Dist.Empirical.count d "a");
  let raised = try ignore (dist_of "id"); false with Invalid_argument _ -> true in
  check_bool "unprofiled column rejected" true raised

(* ---------------- Encrypted DB integration ---------------- *)

let edb_schema =
  Sqldb.Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "name"; ty = TText; nullable = false };
      { name = "note"; ty = TText; nullable = true };
      { name = "amount"; ty = TInt; nullable = false };
    ]

let edb_rows =
  let g = Stdx.Prng.create 7L in
  List.init 800 (fun i ->
      let name = Dist.Empirical.sampler small_dist g in
      [|
        Sqldb.Value.Int (Int64.of_int i);
        Sqldb.Value.Text name;
        (if i mod 7 = 0 then Sqldb.Value.Null else Sqldb.Value.Text "n");
        Sqldb.Value.Int (Int64.of_int (i * 3));
      |])

let make_edb kind =
  let db = Sqldb.Database.create () in
  let dist_of = Wre.Dist_est.of_rows ~schema:edb_schema ~columns:[ "name" ] (List.to_seq edb_rows) in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"t" ~plain_schema:edb_schema ~key_column:"id"
      ~encrypted_columns:[ "name" ] ~kind ~master ~dist_of ~seed:13L ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) edb_rows;
  (db, edb)

let truth name =
  List.length (List.filter (fun r -> r.(1) = Sqldb.Value.Text name) edb_rows)

let test_edb_search_exact_all_kinds () =
  List.iter
    (fun kind ->
      let _db, edb = make_edb kind in
      Array.iter
        (fun m ->
          let rows, _raw = Wre.Encrypted_db.search_rows edb ~column:"name" m in
          check_int
            (Printf.sprintf "%s search %s" (Wre.Scheme.to_string kind) m)
            (truth m) (List.length rows);
          List.iter (fun r -> check_bool "right value" true (r.(1) = Sqldb.Value.Text m)) rows)
        (Dist.Empirical.support small_dist))
    all_kinds

let test_edb_bucketized_superset () =
  let _db, edb = make_edb (Wre.Scheme.Bucketized 50.0) in
  let total_fp = ref 0 in
  Array.iter
    (fun m ->
      let rows, raw = Wre.Encrypted_db.search_rows edb ~column:"name" m in
      check_bool "server >= client" true (Array.length raw.row_ids >= List.length rows);
      total_fp := !total_fp + Array.length raw.row_ids - List.length rows)
    (Dist.Empirical.support small_dist);
  check_bool "false positives exist at low lambda" true (!total_fp > 0)

let test_edb_non_bucketized_no_fp () =
  List.iter
    (fun kind ->
      let _db, edb = make_edb kind in
      Array.iter
        (fun m ->
          let rows, raw = Wre.Encrypted_db.search_rows edb ~column:"name" m in
          check_int (Wre.Scheme.to_string kind ^ " exact server count") (List.length rows)
            (Array.length raw.row_ids))
        (Dist.Empirical.support small_dist))
    [ Wre.Scheme.Det; Wre.Scheme.Fixed 8; Wre.Scheme.Poisson 200.0 ]

let test_edb_decrypt_row_roundtrip () =
  let _db, edb = make_edb (Wre.Scheme.Poisson 100.0) in
  let table = Wre.Encrypted_db.table edb in
  List.iteri
    (fun i plain ->
      if i < 20 then begin
        let dec = Wre.Encrypted_db.decrypt_row edb (Sqldb.Table.peek_row table i) in
        check_bool (Printf.sprintf "row %d roundtrips" i) true (dec = plain)
      end)
    edb_rows

let test_edb_schema_shape () =
  let _db, edb = make_edb Wre.Scheme.Det in
  let schema = Sqldb.Table.schema (Wre.Encrypted_db.table edb) in
  (* id + name_tag + name_data + note_data + amount_data = 5 *)
  check_int "arity" 5 (Sqldb.Schema.arity schema);
  check_bool "tag column" true (Sqldb.Schema.column_index_opt schema "name_tag" <> None);
  check_bool "data column" true (Sqldb.Schema.column_index_opt schema "name_data" <> None);
  check_bool "plain name gone" true (Sqldb.Schema.column_index_opt schema "name" = None);
  check_bool "key survives" true (Sqldb.Schema.column_index_opt schema "id" <> None)

let test_edb_search_uses_index () =
  let _db, edb = make_edb (Wre.Scheme.Poisson 100.0) in
  let r = Wre.Encrypted_db.search_ids edb ~column:"name" "alpha" in
  check_bool "index scan" true (r.plan = Sqldb.Executor.Index_scan "name_tag")

let test_edb_rejects_bad_config () =
  let db = Sqldb.Database.create () in
  let dist_of _ = small_dist in
  let raised =
    try
      ignore
        (Wre.Encrypted_db.create ~db ~name:"t" ~plain_schema:edb_schema ~key_column:"amount"
           ~encrypted_columns:[ "amount" ] ~kind:Wre.Scheme.Det ~master ~dist_of ~seed:1L ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "non-text searchable rejected" true raised

let test_edb_unknown_search_empty () =
  let _db, edb = make_edb (Wre.Scheme.Poisson 100.0) in
  let rows, raw = Wre.Encrypted_db.search_rows edb ~column:"name" "absent-value" in
  check_int "no rows" 0 (List.length rows);
  check_int "no server rows" 0 (Array.length raw.row_ids)

(* ---------------- Range index (extension) ---------------- *)

let range_master = Crypto.Keys.of_raw ~k0:(String.make 16 'r') ~k1:(String.make 32 'R')

let test_range_index_buckets () =
  let training = Array.init 1000 (fun i -> Int64.of_int i) in
  let ri = Wre.Range_index.create ~master:range_master ~column:"v" ~buckets:10 ~training in
  check_int "ten buckets" 10 (Wre.Range_index.bucket_count ri);
  (* Equi-depth on uniform data: boundaries near the deciles. *)
  let b = Wre.Range_index.boundaries ri in
  check_bool "first boundary near 100" true (Int64.to_int b.(0) >= 80 && Int64.to_int b.(0) <= 120);
  (* Buckets are monotone in the value. *)
  let prev = ref (-1) in
  for v = 0 to 999 do
    let bk = Wre.Range_index.bucket_of ri (Int64.of_int v) in
    check_bool "monotone" true (bk >= !prev);
    prev := bk
  done

let test_range_index_skewed_dedup () =
  (* A constant column collapses to a single bucket rather than empty
     buckets. *)
  let training = Array.make 500 42L in
  let ri = Wre.Range_index.create ~master:range_master ~column:"v" ~buckets:8 ~training in
  check_int "one boundary value" 2 (Wre.Range_index.bucket_count ri);
  check_bool "same tag for the constant" true
    (Wre.Range_index.tag_of_value ri 42L = Wre.Range_index.tag_of_value ri 42L)

let test_range_index_tags_cover_range () =
  let training = Array.init 1000 (fun i -> Int64.of_int i) in
  let ri = Wre.Range_index.create ~master:range_master ~column:"v" ~buckets:10 ~training in
  (* Every value inside the range must have its tag in the expansion. *)
  let tags = Wre.Range_index.tags_for_range ri ~lo:(Some 250L) ~hi:(Some 420L) in
  for v = 250 to 420 do
    check_bool (Printf.sprintf "tag of %d covered" v) true
      (List.mem (Wre.Range_index.tag_of_value ri (Int64.of_int v)) tags)
  done;
  check_bool "few buckets expanded" true (List.length tags <= 4);
  check_bool "unbounded covers all" true
    (List.length (Wre.Range_index.tags_for_range ri ~lo:None ~hi:None)
    = Wre.Range_index.bucket_count ri);
  check_bool "empty range" true
    (Wre.Range_index.tags_for_range ri ~lo:(Some 900L) ~hi:(Some 100L) = [])

let range_schema =
  Sqldb.Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "name"; ty = TText; nullable = false };
      { name = "income"; ty = TInt; nullable = false };
    ]

let range_rows =
  List.init 500 (fun i ->
      [|
        Sqldb.Value.Int (Int64.of_int i);
        Sqldb.Value.Text (if i mod 2 = 0 then "even" else "odd");
        Sqldb.Value.Int (Int64.of_int (1000 + (i * 37 mod 9000)));
      |])

let make_range_edb () =
  let db = Sqldb.Database.create () in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:range_schema ~columns:[ "name" ] (List.to_seq range_rows)
  in
  let training _col =
    Array.of_list
      (List.map (fun r -> match r.(2) with Sqldb.Value.Int x -> x | _ -> 0L) range_rows)
  in
  let edb =
    Wre.Encrypted_db.create ~range_columns:[ ("income", 16) ] ~range_training:training ~db
      ~name:"t" ~plain_schema:range_schema ~key_column:"id" ~encrypted_columns:[ "name" ]
      ~kind:(Wre.Scheme.Poisson 100.0) ~master:range_master ~dist_of ~seed:21L ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) range_rows;
  edb

let test_range_search_exact () =
  let edb = make_range_edb () in
  List.iter
    (fun (lo, hi) ->
      let rows, raw = Wre.Encrypted_db.search_range edb ~column:"income" ~lo ~hi in
      let expected =
        List.length
          (List.filter
             (fun r ->
               match r.(2) with
               | Sqldb.Value.Int x ->
                   (match lo with None -> true | Some l -> x >= l)
                   && (match hi with None -> true | Some h -> x <= h)
               | _ -> false)
             range_rows)
      in
      check_int
        (Printf.sprintf "range [%s,%s]"
           (match lo with None -> "-inf" | Some v -> Int64.to_string v)
           (match hi with None -> "+inf" | Some v -> Int64.to_string v))
        expected (List.length rows);
      check_bool "server superset" true (Array.length raw.row_ids >= List.length rows))
    [ (Some 2000L, Some 5000L); (None, Some 3000L); (Some 8000L, None); (None, None) ]

let test_range_through_proxy () =
  let edb = make_range_edb () in
  let proxy = Wre.Proxy.create edb in
  match Wre.Proxy.execute proxy "SELECT id FROM t WHERE income BETWEEN 2000 AND 5000 AND name = 'even'" with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let expected =
        List.length
          (List.filter
             (fun row ->
               row.(1) = Sqldb.Value.Text "even"
               && match row.(2) with Sqldb.Value.Int x -> x >= 2000L && x <= 5000L | _ -> false)
             range_rows)
      in
      check_int "proxy range+eq conjunction" expected (List.length r.rows);
      (* And the conjunctive range leg took the ESEDS traversal plan
         probing the rtag index, not a full scan (DESIGN.md §5k). *)
      check_bool "server walked the range tree" true
        ((Option.get r.exec).plan = Sqldb.Executor.Range_traverse "income_rtag")

let test_range_tag_frequencies_flat () =
  (* Equi-depth buckets: tag counts in the encrypted table are roughly
     equal, so the rtag column leaks only the partition. *)
  let edb = make_range_edb () in
  let table = Wre.Encrypted_db.table edb in
  let schema = Sqldb.Table.schema table in
  let pos = Sqldb.Schema.column_index schema "income_rtag" in
  let counts = Hashtbl.create 32 in
  for id = 0 to Sqldb.Table.row_count table - 1 do
    let tag = (Sqldb.Table.peek_row table id).(pos) in
    Hashtbl.replace counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag))
  done;
  let values = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let max_c = List.fold_left max 0 values and min_c = List.fold_left min max_int values in
  check_bool "roughly equi-depth" true (max_c < 3 * min_c)

let test_range_index_boundary_values () =
  (* Values exactly on a bucket boundary belong to the lower bucket
     (boundaries are inclusive upper bounds); one past it moves up. *)
  let training = Array.init 100 (fun i -> Int64.of_int i) in
  let ri = Wre.Range_index.create ~master:range_master ~column:"v" ~buckets:4 ~training in
  let b = Wre.Range_index.boundaries ri in
  Array.iter
    (fun bound ->
      let at = Wre.Range_index.bucket_of ri bound in
      let above = Wre.Range_index.bucket_of ri (Int64.add bound 1L) in
      check_bool "boundary inclusive below" true (above = at + 1))
    b;
  (* Out-of-domain values still map somewhere stable. *)
  check_int "below domain -> first bucket" 0 (Wre.Range_index.bucket_of ri (-50L));
  check_int "above domain -> last bucket"
    (Wre.Range_index.bucket_count ri - 1)
    (Wre.Range_index.bucket_of ri 10_000L)

let test_edb_not_searchable_raises () =
  let _db, edb = make_edb Wre.Scheme.Det in
  let raised =
    try
      ignore (Wre.Encrypted_db.tags_for edb ~column:"note" "x");
      false
    with Invalid_argument _ -> true
  in
  check_bool "non-searchable column rejected" true raised;
  let raised2 =
    try
      ignore (Wre.Encrypted_db.range_index edb "amount");
      false
    with Invalid_argument _ -> true
  in
  check_bool "non-range column rejected" true raised2

(* ---------------- QCheck properties ---------------- *)

let qcheck_codec_roundtrip =
  let value_gen =
    QCheck.Gen.(
      oneof
        [
          return Sqldb.Value.Null;
          map (fun i -> Sqldb.Value.Int (Int64.of_int i)) int;
          map (fun f -> Sqldb.Value.Real f) float;
          map (fun s -> Sqldb.Value.Text s) string;
          map (fun s -> Sqldb.Value.Blob s) string;
        ])
  in
  QCheck.Test.make ~name:"value codec roundtrip" ~count:300 (QCheck.make value_gen) (fun v ->
      match Wre.Value_codec.decode (Wre.Value_codec.encode v) with
      | Ok v' -> Sqldb.Value.equal v v' || (v = Sqldb.Value.Real nan && v' = Sqldb.Value.Real nan)
      | Error _ -> false)

let qcheck_poisson_salts_valid =
  QCheck.Test.make ~name:"poisson salt sets always valid" ~count:100
    QCheck.(pair (float_range 1.0 2000.0) (float_range 0.0001 1.0))
    (fun (lambda, prob) ->
      let s = Wre.Salts.poisson ~seed:"q" ~lambda ~prob in
      Wre.Salts.validate s = Ok ())

let qcheck_layout_valid =
  QCheck.Test.make ~name:"bucket layouts always valid" ~count:30
    QCheck.(pair (float_range 5.0 500.0) (list_of_size Gen.(2 -- 20) (int_range 1 100)))
    (fun (lambda, counts) ->
      let dist =
        Dist.Empirical.of_counts (List.mapi (fun i c -> (Printf.sprintf "v%d" i, c)) counts)
      in
      let l =
        Wre.Bucket_layout.create ~seed:"q" ~shuffle_key:"k" ~column:"c" ~dist ~lambda
      in
      Wre.Bucket_layout.validate l = Ok ()
      && Array.for_all
           (fun m -> Wre.Bucket_layout.salts_for l m <> None)
           (Dist.Empirical.support dist))

let qcheck_search_finds_encrypted =
  QCheck.Test.make ~name:"search tags always include the encryption tag" ~count:50
    (QCheck.make
       QCheck.Gen.(
         pair (oneofl [ "alpha"; "beta"; "gamma"; "delta" ])
           (oneofl
              [
                Wre.Scheme.Det;
                Wre.Scheme.Fixed 5;
                Wre.Scheme.Proportional 50;
                Wre.Scheme.Poisson 80.0;
                Wre.Scheme.Bucketized 80.0;
              ])))
    (fun (m, kind) ->
      let g = Stdx.Prng.create 3L in
      let enc = Wre.Column_enc.create ~master ~column:"qc" ~kind ~dist:small_dist () in
      let tag, _ = Wre.Column_enc.encrypt enc g m in
      List.mem tag (Wre.Column_enc.search_tags enc m))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "wre"
    [
      ( "scheme",
        [
          Alcotest.test_case "string roundtrip" `Quick test_scheme_string_roundtrip;
          Alcotest.test_case "expected tags" `Quick test_scheme_expected_tags;
        ] );
      ( "salts",
        [
          Alcotest.test_case "det" `Quick test_salts_det;
          Alcotest.test_case "fixed" `Quick test_salts_fixed;
          Alcotest.test_case "proportional" `Quick test_salts_proportional;
          Alcotest.test_case "proportional aliasing" `Quick test_salts_proportional_aliasing;
          Alcotest.test_case "poisson deterministic" `Quick test_salts_poisson_deterministic;
          Alcotest.test_case "poisson count" `Quick test_salts_poisson_count_scales_with_lambda;
          Alcotest.test_case "sample follows weights" `Quick test_salts_sample_follows_weights;
          Alcotest.test_case "first interarrival exponential" `Quick
            test_salts_poisson_first_interarrival_exponential;
          Alcotest.test_case "validate" `Quick test_salts_validate_catches_errors;
        ] );
      ( "bucket_layout",
        [
          Alcotest.test_case "widths sum" `Quick test_layout_widths_sum_to_one;
          Alcotest.test_case "covers support" `Quick test_layout_covers_support;
          Alcotest.test_case "deterministic" `Quick test_layout_deterministic;
          Alcotest.test_case "salt count ~ p" `Quick test_layout_salt_count_tracks_probability;
          Alcotest.test_case "shared buckets" `Quick test_layout_shared_buckets_exist;
          Alcotest.test_case "returned mass bounds" `Quick test_layout_returned_mass_bounds;
          Alcotest.test_case "fp shrinks with lambda" `Quick test_layout_fp_mass_shrinks_with_lambda;
          Alcotest.test_case "data-independent widths" `Quick
            test_layout_tag_frequencies_data_independent;
        ] );
      ( "value_codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "malformed" `Quick test_codec_rejects_malformed;
        ] );
      ( "column_enc",
        [
          Alcotest.test_case "roundtrip all kinds" `Quick test_column_enc_roundtrip_all_kinds;
          Alcotest.test_case "randomized ciphertexts" `Quick test_column_enc_randomized_ciphertexts;
          Alcotest.test_case "det single tag" `Quick test_column_enc_det_single_tag;
          Alcotest.test_case "unknown plaintext" `Quick test_column_enc_unknown_plaintext;
          Alcotest.test_case "column isolation" `Quick test_column_enc_column_isolation;
          Alcotest.test_case "fallback min-frequency" `Quick test_column_enc_fallback_min_frequency;
          Alcotest.test_case "fallback poisson count" `Quick
            test_column_enc_fallback_poisson_salt_count;
          Alcotest.test_case "fallback bucketized bucket" `Quick
            test_column_enc_fallback_bucketized_existing_bucket;
          Alcotest.test_case "bucketized layout" `Quick test_column_enc_bucketized_layout_exposed;
          Alcotest.test_case "bucketized shared tags" `Quick test_column_enc_bucketized_shared_tags;
          Alcotest.test_case "poisson smoothing" `Quick test_column_enc_poisson_tag_frequencies_smooth;
        ] );
      ("dist_est", [ Alcotest.test_case "of_rows" `Quick test_dist_est ]);
      ( "encrypted_db",
        [
          Alcotest.test_case "search exact all kinds" `Quick test_edb_search_exact_all_kinds;
          Alcotest.test_case "bucketized superset" `Quick test_edb_bucketized_superset;
          Alcotest.test_case "no fp for per-message schemes" `Quick test_edb_non_bucketized_no_fp;
          Alcotest.test_case "decrypt_row roundtrip" `Quick test_edb_decrypt_row_roundtrip;
          Alcotest.test_case "schema shape" `Quick test_edb_schema_shape;
          Alcotest.test_case "uses index" `Quick test_edb_search_uses_index;
          Alcotest.test_case "rejects bad config" `Quick test_edb_rejects_bad_config;
          Alcotest.test_case "unknown search empty" `Quick test_edb_unknown_search_empty;
          Alcotest.test_case "not searchable raises" `Quick test_edb_not_searchable_raises;
        ] );
      ( "range_index",
        [
          Alcotest.test_case "buckets" `Quick test_range_index_buckets;
          Alcotest.test_case "skewed dedup" `Quick test_range_index_skewed_dedup;
          Alcotest.test_case "tags cover range" `Quick test_range_index_tags_cover_range;
          Alcotest.test_case "search exact" `Quick test_range_search_exact;
          Alcotest.test_case "through proxy" `Quick test_range_through_proxy;
          Alcotest.test_case "flat tag frequencies" `Quick test_range_tag_frequencies_flat;
          Alcotest.test_case "boundary values" `Quick test_range_index_boundary_values;
        ] );
      ( "properties",
        q
          [
            qcheck_codec_roundtrip;
            qcheck_poisson_salts_valid;
            qcheck_layout_valid;
            qcheck_search_finds_encrypted;
          ] );
    ]
