(* End-to-end integration: the paper's full pipeline at test scale —
   generate SPARTA-style data, load plaintext and encrypted databases,
   run the query mix against both, and check results, cost ordering,
   and storage claims. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let n_rows = 6000

let rows =
  lazy
    (let gen = Sparta.Generator.create ~seed:77L in
     Array.of_seq (Sparta.Generator.rows gen ~n:n_rows))

let enc_columns = Sparta.Generator.encrypted_columns

let dist_of_lazy =
  lazy
    (Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema ~columns:enc_columns
       (Array.to_seq (Lazy.force rows)))

let build_plain () =
  let db = Sqldb.Database.create () in
  let t = Sqldb.Database.create_table db ~name:"main" ~schema:Sparta.Generator.schema in
  ignore (Sqldb.Table.create_index t ~column:"id");
  List.iter (fun c -> ignore (Sqldb.Table.create_index t ~column:c)) enc_columns;
  Array.iter (fun r -> ignore (Sqldb.Table.insert t r)) (Lazy.force rows);
  (db, t)

let build_encrypted kind =
  let db = Sqldb.Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 123L) in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"main" ~plain_schema:Sparta.Generator.schema
      ~key_column:"id" ~encrypted_columns:enc_columns ~kind ~master
      ~dist_of:(Lazy.force dist_of_lazy) ~seed:55L ()
  in
  Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) (Lazy.force rows);
  (db, edb)

let queries () =
  Sparta.Query_gen.generate ~seed:9L ~columns:enc_columns
    ~counts:(fun col ->
      let d = Lazy.force dist_of_lazy col in
      Array.to_list
        (Array.map (fun v -> (v, Dist.Empirical.count d v)) (Dist.Empirical.support d)))
    ~n:60 ()

let test_queries_agree_with_plaintext kind () =
  let _pdb, plain = build_plain () in
  let _edb_db, edb = build_encrypted kind in
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      let reference =
        Sqldb.Executor.run plain ~projection:Sqldb.Executor.Row_ids
          (Sqldb.Predicate.Eq (q.column, Sqldb.Value.Text q.value))
      in
      let enc_rows, _raw = Wre.Encrypted_db.search_rows edb ~column:q.column q.value in
      check_int
        (Printf.sprintf "%s=%s" q.column q.value)
        (Array.length reference.row_ids) (List.length enc_rows);
      (* Decrypted ids match the plaintext result ids exactly. *)
      let ids_of_rows l =
        List.sort compare
          (List.map (fun r -> match r.(0) with Sqldb.Value.Int i -> i | _ -> -1L) l)
      in
      let ref_ids =
        List.sort compare
          (Array.to_list
             (Array.map
                (fun id ->
                  match (Sqldb.Table.peek_row plain id).(0) with
                  | Sqldb.Value.Int i -> i
                  | _ -> -1L)
                reference.row_ids))
      in
      check_bool "same id sets" true (ids_of_rows enc_rows = ref_ids))
    (queries ())

let test_cold_warm_ordering () =
  let db, edb = build_encrypted (Wre.Scheme.Poisson 500.0) in
  let q = List.hd (List.filter (fun (q : Sparta.Query_gen.query) -> q.expected > 50) (queries ())) in
  Sqldb.Database.drop_caches db;
  let r_cold = Wre.Encrypted_db.search_ids edb ~column:q.column q.value in
  let r_warm = Wre.Encrypted_db.search_ids edb ~column:q.column q.value in
  check_bool "cold misses > warm misses" true (r_cold.stats.misses > r_warm.stats.misses);
  check_bool "cold simulated time larger" true (r_cold.stats.sim_ns > r_warm.stats.sim_ns)

let test_select_star_costs_more () =
  let db, edb = build_encrypted (Wre.Scheme.Poisson 500.0) in
  let q = List.hd (List.filter (fun (q : Sparta.Query_gen.query) -> q.expected > 50) (queries ())) in
  Sqldb.Database.drop_caches db;
  let ids = Wre.Encrypted_db.search_ids edb ~column:q.column q.value in
  Sqldb.Database.drop_caches db;
  let _rows, star = Wre.Encrypted_db.search_rows edb ~column:q.column q.value in
  check_bool "select * touches more pages" true (star.stats.misses > ids.stats.misses)

let test_storage_expansion_bounds () =
  let _pdb, plain = build_plain () in
  let _edb_db, edb = build_encrypted (Wre.Scheme.Poisson 1000.0) in
  let enc_table = Wre.Encrypted_db.table edb in
  let ratio_db =
    float_of_int (Sqldb.Table.heap_bytes enc_table) /. float_of_int (Sqldb.Table.heap_bytes plain)
  in
  let ratio_total =
    float_of_int (Sqldb.Table.total_bytes enc_table) /. float_of_int (Sqldb.Table.total_bytes plain)
  in
  (* The paper's headline: encrypted DB (incl. indexes) < 2x plaintext. *)
  check_bool "db expansion in (1, 2.2)" true (ratio_db > 1.0 && ratio_db < 2.2);
  check_bool "total expansion in (1, 2.2)" true (ratio_total > 1.0 && ratio_total < 2.2)

let test_tag_count_independent_of_scheme_for_storage () =
  (* Paper Table I note: "the number of salts used and whether a fixed
     salt or a Poisson Salt Distribution do not affect the database
     size". *)
  let _d1, e1 = build_encrypted (Wre.Scheme.Fixed 100) in
  let _d2, e2 = build_encrypted (Wre.Scheme.Poisson 1000.0) in
  let t1 = Wre.Encrypted_db.table e1 and t2 = Wre.Encrypted_db.table e2 in
  (* Row-format size (values inline) is exactly scheme-independent:
     every scheme stores one 8-byte tag and one same-length ciphertext
     per cell. *)
  check_int "identical row-model bytes" (Sqldb.Table.row_model_bytes t1)
    (Sqldb.Table.row_model_bytes t2);
  (* Columnar pages dictionary-encode the tag columns, so the physical
     size now depends (weakly) on how many distinct tags the salt
     scheme emits — bounded to a few percent of the table. *)
  let h1 = float_of_int (Sqldb.Table.heap_bytes t1)
  and h2 = float_of_int (Sqldb.Table.heap_bytes t2) in
  check_bool "heap bytes within 5%" true (Float.abs (h1 -. h2) /. Float.max h1 h2 < 0.05)

let test_snapshot_attack_on_full_pipeline () =
  (* The integration-level security check: frequency analysis against
     the encrypted table's fname column. *)
  let run kind =
    let _db, edb = build_encrypted kind in
    let plaintexts =
      Array.map (fun r -> Sparta.Generator.column_string r ~column:"fname") (Lazy.force rows)
    in
    let snap = Attacks.Snapshot.of_table edb ~column:"fname" ~plaintexts in
    (Attacks.Metrics.score snap ~guess:(Attacks.Frequency.rank_matching snap)).record_recovery
  in
  let det = run Wre.Scheme.Det in
  let poisson = run (Wre.Scheme.Poisson 1000.0) in
  (* At this test scale (6k records, 200 names) rank matching recovers
     a large minority of records against DET; at the paper's scales it
     approaches total recovery (see the inference_attack example). *)
  check_bool "det badly broken" true (det > 0.25);
  check_bool "poisson protected" true (poisson < 0.1);
  check_bool "gap is large" true (det > 5.0 *. poisson)

let test_bucketized_pipeline_false_positive_rate () =
  let _db, edb = build_encrypted (Wre.Scheme.Bucketized 200.0) in
  let fp = ref 0 and total = ref 0 in
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      let rows_, raw = Wre.Encrypted_db.search_rows edb ~column:q.column q.value in
      fp := !fp + (Array.length raw.row_ids - List.length rows_);
      total := !total + Array.length raw.row_ids)
    (queries ());
  check_bool "some false positives at low lambda" true (!fp > 0);
  check_bool "but bounded" true (float_of_int !fp < 0.9 *. float_of_int !total)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "det queries agree" `Slow
            (test_queries_agree_with_plaintext Wre.Scheme.Det);
          Alcotest.test_case "fixed queries agree" `Slow
            (test_queries_agree_with_plaintext (Wre.Scheme.Fixed 50));
          Alcotest.test_case "poisson queries agree" `Slow
            (test_queries_agree_with_plaintext (Wre.Scheme.Poisson 800.0));
          Alcotest.test_case "bucketized queries agree" `Slow
            (test_queries_agree_with_plaintext (Wre.Scheme.Bucketized 800.0));
        ] );
      ( "costs",
        [
          Alcotest.test_case "cold vs warm" `Quick test_cold_warm_ordering;
          Alcotest.test_case "select * vs select id" `Quick test_select_star_costs_more;
        ] );
      ( "storage",
        [
          Alcotest.test_case "expansion bounds" `Quick test_storage_expansion_bounds;
          Alcotest.test_case "scheme-independent size" `Slow
            test_tag_count_independent_of_scheme_for_storage;
        ] );
      ( "security",
        [
          Alcotest.test_case "snapshot attack" `Slow test_snapshot_attack_on_full_pipeline;
          Alcotest.test_case "bucketized fp rate" `Quick test_bucketized_pipeline_false_positive_rate;
        ] );
    ]
