(* Differential oracle for the parallel snapshot-read query path.

   Every seeded random SQL workload is executed three ways — against a
   plaintext Sqldb reference, through the sequential encrypted proxy,
   and through the parallel snapshot-read proxy — and all three must
   agree, for every scheme:

   - SELECT without LIMIT: identical row multisets across the three;
   - SELECT with LIMIT n: the encrypted answer is a sub-multiset of the
     full plaintext match set with exactly [min n |full|] rows, and the
     parallel answer equals the sequential one row-for-row (same rows,
     same order — the byte-identity contract);
   - INSERT / UPDATE / DELETE: identical affected counts, applied to
     both sides so later statements diverge immediately if a mutation
     corrupted either.

   A failing workload's seed is persisted to corpus/ via the crash-safe
   store writer; the corpus suite replays every committed seed file so
   past failures stay fixed. Knobs: WRE_SEED (master seed), WRE_DOMAINS
   (comma list, default "1,4"), WRE_ORACLE_WORKLOADS (per scheme ×
   domain count, default 200). *)

open Sqldb

let schemes =
  [
    Wre.Scheme.Det;
    Wre.Scheme.Fixed 4;
    Wre.Scheme.Proportional 100;
    Wre.Scheme.Poisson 80.0;
    Wre.Scheme.Bucketized 80.0;
  ]

let plain_schema =
  Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "name"; ty = TText; nullable = false };
      { name = "city"; ty = TText; nullable = false };
      { name = "age"; ty = TInt; nullable = false };
    ]

let names = [| "ann"; "bob"; "cat"; "dan"; "eve"; "fay"; "gus"; "hal" |]
let cities = [| "pdx"; "sea"; "nyc"; "lax"; "chi" |]

(* Skewed pick (min of two uniforms): low indexes are far likelier, so
   the per-value frequencies the salt allocators divide up are uneven
   like real data. *)
let pick prng arr =
  let n = Array.length arr in
  arr.(min (Stdx.Prng.int prng n) (Stdx.Prng.int prng n))

let n_rows = 48
let n_statements = 6

type targets = {
  plain : Database.t;
  proxy : Wre.Proxy.t;
  next_id : int ref;
  p_names : string array;  (** names present in the load, hence profiled *)
  p_cities : string array;
}

(* The encrypted side only accepts plaintexts from the profiled
   distribution (fallback [`Reject]), so the workload must draw its
   searchable values from what the initial load actually contained —
   a rare universe value can miss a 48-row sample entirely. *)
let present rows idx universe =
  Array.of_list
    (List.filter
       (fun v -> List.exists (fun r -> r.(idx) = Value.Text v) rows)
       (Array.to_list universe))

let build ~kind ~seed =
  let prng = Stdx.Prng.create seed in
  let rows =
    List.init n_rows (fun i ->
        [|
          Value.Int (Int64.of_int i);
          Value.Text (pick prng names);
          Value.Text (pick prng cities);
          Value.Int (Int64.of_int (18 + Stdx.Prng.int prng 50));
        |])
  in
  let plain = Database.create () in
  let pt = Database.create_table plain ~name:"people" ~schema:plain_schema in
  List.iter (fun r -> ignore (Table.insert pt r)) rows;
  ignore (Table.create_index pt ~column:"name");
  ignore (Table.create_index pt ~column:"city");
  let enc_db = Database.create () in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:plain_schema ~columns:[ "name"; "city" ] (List.to_seq rows)
  in
  let master = Crypto.Keys.of_raw ~k0:(String.make 16 'd') ~k1:(String.make 32 'f') in
  let edb =
    Wre.Encrypted_db.create ~db:enc_db ~name:"people" ~plain_schema ~key_column:"id"
      ~encrypted_columns:[ "name"; "city" ] ~kind ~master ~dist_of
      ~seed:(Int64.logxor seed 0x5eedL) ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
  ( {
      plain;
      proxy = Wre.Proxy.create edb;
      next_id = ref n_rows;
      p_names = present rows 1 names;
      p_cities = present rows 2 cities;
    },
    prng )

(* ---------------- Workload generation ---------------- *)

type stmt =
  | Select of { projection : string; where : string option; limit : int option }
  | Mutation of string

let gen_where t prng =
  let atom () =
    match Stdx.Prng.int prng 8 with
    | 0 -> Printf.sprintf "name = '%s'" (pick prng t.p_names)
    | 1 -> Printf.sprintf "city = '%s'" (pick prng t.p_cities)
    | 2 ->
        let a = Stdx.Prng.int prng 60 in
        Printf.sprintf "id BETWEEN %d AND %d" a (a + Stdx.Prng.int prng 20)
    | 3 -> Printf.sprintf "age >= %d" (18 + Stdx.Prng.int prng 50)
    | 4 -> Printf.sprintf "name IN ('%s', '%s')" (pick prng t.p_names) (pick prng t.p_names)
    | 5 -> Printf.sprintf "id < %d" (Stdx.Prng.int prng 70)
    | 6 -> Printf.sprintf "age > %d" (18 + Stdx.Prng.int prng 50)
    | _ -> Printf.sprintf "NOT city = '%s'" (pick prng t.p_cities)
  in
  match Stdx.Prng.int prng 4 with
  | 0 -> atom ()
  | 1 -> Printf.sprintf "%s AND %s" (atom ()) (atom ())
  | 2 -> Printf.sprintf "%s OR %s" (atom ()) (atom ())
  | _ -> Printf.sprintf "(%s OR %s) AND %s" (atom ()) (atom ()) (atom ())

let gen_statement t prng =
  match Stdx.Prng.int prng 10 with
  | 0 ->
      let id = !(t.next_id) in
      incr t.next_id;
      Mutation
        (Printf.sprintf "INSERT INTO people VALUES (%d, '%s', '%s', %d)" id
           (pick prng t.p_names) (pick prng t.p_cities)
           (18 + Stdx.Prng.int prng 50))
  | 1 ->
      let col, v =
        if Stdx.Prng.bool prng then ("city", pick prng t.p_cities)
        else ("name", pick prng t.p_names)
      in
      let a = Stdx.Prng.int prng 50 in
      Mutation
        (Printf.sprintf "UPDATE people SET %s = '%s' WHERE name = '%s' AND id BETWEEN %d AND %d"
           col v (pick prng t.p_names) a
           (a + Stdx.Prng.int prng 15))
  | 2 ->
      let a = Stdx.Prng.int prng 60 in
      Mutation
        (Printf.sprintf "DELETE FROM people WHERE id BETWEEN %d AND %d AND city = '%s'" a (a + 1)
           (pick prng t.p_cities))
  | _ ->
      let projection =
        match Stdx.Prng.int prng 3 with 0 -> "*" | 1 -> "id" | _ -> "id, name, age"
      in
      let where = if Stdx.Prng.int prng 10 = 0 then None else Some (gen_where t prng) in
      let limit = if Stdx.Prng.int prng 4 = 0 then Some (1 + Stdx.Prng.int prng 12) else None in
      Select { projection; where; limit }

(* ---------------- The oracle ---------------- *)

let sorted rows = List.sort compare rows

(* Sub-multiset test over sorted row lists. *)
let is_submultiset sub super =
  let rec go sub super =
    match (sub, super) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys ->
        if x = y then go xs ys else if compare y x < 0 then go sub ys else false
  in
  go (sorted sub) (sorted super)

let run_workload ~pool ~kind ~seed =
  let t, prng = build ~kind ~seed in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec steps i =
    if i >= n_statements then Ok ()
    else
      match gen_statement t prng with
      | Mutation sql -> (
          match (Sql.execute t.plain sql, Wre.Proxy.execute t.proxy sql) with
          | Ok p, Ok e ->
              if p.Sql.affected = e.Wre.Proxy.affected then steps (i + 1)
              else
                fail "affected mismatch on %S: plain %d, encrypted %d" sql p.Sql.affected
                  e.Wre.Proxy.affected
          | Error e, _ -> fail "plain error on %S: %s" sql e
          | _, Error e -> fail "encrypted error on %S: %s" sql e)
      | Select { projection; where; limit } -> (
          let base =
            Printf.sprintf "SELECT %s FROM people%s" projection
              (match where with None -> "" | Some w -> " WHERE " ^ w)
          in
          let sql =
            match limit with None -> base | Some n -> Printf.sprintf "%s LIMIT %d" base n
          in
          match
            ( Sql.execute t.plain sql,
              Wre.Proxy.execute t.proxy sql,
              Wre.Proxy.execute_snapshot ~pool t.proxy sql )
          with
          | Ok p, Ok s, Ok par -> (
              if par.Wre.Proxy.rows <> s.Wre.Proxy.rows then
                fail "parallel differs from sequential on %S (%d vs %d rows)" sql
                  (List.length par.Wre.Proxy.rows)
                  (List.length s.Wre.Proxy.rows)
              else
                match limit with
                | None ->
                    if sorted s.Wre.Proxy.rows = sorted p.Sql.rows then steps (i + 1)
                    else
                      fail "row sets differ on %S: plain %d rows, encrypted %d rows" sql
                        (List.length p.Sql.rows)
                        (List.length s.Wre.Proxy.rows)
                | Some n -> (
                    match Sql.execute t.plain base with
                    | Error e -> fail "plain error on %S: %s" base e
                    | Ok full ->
                        let want = min n (List.length full.Sql.rows) in
                        if List.length s.Wre.Proxy.rows <> want then
                          fail "LIMIT count on %S: got %d, want %d" sql
                            (List.length s.Wre.Proxy.rows)
                            want
                        else if not (is_submultiset s.Wre.Proxy.rows full.Sql.rows) then
                          fail "LIMIT rows on %S are not a subset of the full plain result" sql
                        else steps (i + 1)))
          | Error e, _, _ -> fail "plain error on %S: %s" sql e
          | _, Error e, _ -> fail "sequential error on %S: %s" sql e
          | _, _, Error e -> fail "parallel error on %S: %s" sql e)
  in
  steps 0

(* ---------------- Two-table join workloads ---------------- *)

let pets_schema =
  Schema.create
    [
      { name = "pid"; ty = TInt; nullable = false };
      { name = "owner"; ty = TText; nullable = false };
      { name = "species"; ty = TText; nullable = false };
    ]

let species = [| "dog"; "cat"; "fish"; "hen" |]
let n_people = 32
let n_pets = 20
let n_join_statements = 5

type join_targets = {
  j_plain : Database.t;
  j_proxy : Wre.Proxy.t;
  j_next_person : int ref;
  j_next_pet : int ref;
  j_names : string array;
  j_cities : string array;
  j_owners : string array;
  j_species : string array;
}

(* Two tables under one proxy: pets.owner draws from the same universe
   as people.name, so the equi-join on those columns actually matches.
   Both join columns are encrypted — the join must go through the
   tag-bucket path, not key passthrough. *)
let build_join ~kind ~seed =
  let prng = Stdx.Prng.create seed in
  let people =
    List.init n_people (fun i ->
        [|
          Value.Int (Int64.of_int i);
          Value.Text (pick prng names);
          Value.Text (pick prng cities);
          Value.Int (Int64.of_int (18 + Stdx.Prng.int prng 50));
        |])
  in
  let pets =
    List.init n_pets (fun i ->
        [|
          Value.Int (Int64.of_int i);
          Value.Text (pick prng names);
          Value.Text (pick prng species);
        |])
  in
  let j_plain = Database.create () in
  let pt = Database.create_table j_plain ~name:"people" ~schema:plain_schema in
  List.iter (fun r -> ignore (Table.insert pt r)) people;
  ignore (Table.create_index pt ~column:"name");
  let qt = Database.create_table j_plain ~name:"pets" ~schema:pets_schema in
  List.iter (fun r -> ignore (Table.insert qt r)) pets;
  let enc_db = Database.create () in
  let master = Crypto.Keys.of_raw ~k0:(String.make 16 'd') ~k1:(String.make 32 'f') in
  let ep =
    Wre.Encrypted_db.create ~db:enc_db ~name:"people" ~plain_schema ~key_column:"id"
      ~encrypted_columns:[ "name"; "city" ] ~kind ~master
      ~dist_of:
        (Wre.Dist_est.of_rows ~schema:plain_schema ~columns:[ "name"; "city" ]
           (List.to_seq people))
      ~seed:(Int64.logxor seed 0x5eedL) ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert ep r)) people;
  let et =
    Wre.Encrypted_db.create ~db:enc_db ~name:"pets" ~plain_schema:pets_schema ~key_column:"pid"
      ~encrypted_columns:[ "owner"; "species" ] ~kind ~master
      ~dist_of:
        (Wre.Dist_est.of_rows ~schema:pets_schema ~columns:[ "owner"; "species" ]
           (List.to_seq pets))
      ~seed:(Int64.logxor seed 0x9e75L) ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert et r)) pets;
  ( {
      j_plain;
      j_proxy = Wre.Proxy.create_multi [ ep; et ];
      j_next_person = ref n_people;
      j_next_pet = ref n_pets;
      j_names = present people 1 names;
      j_cities = present people 2 cities;
      j_owners = present pets 1 names;
      j_species = present pets 2 species;
    },
    prng )

let gen_join_where t prng =
  let atom () =
    match Stdx.Prng.int prng 6 with
    | 0 -> Printf.sprintf "people.city = '%s'" (pick prng t.j_cities)
    | 1 -> Printf.sprintf "pets.species = '%s'" (pick prng t.j_species)
    | 2 -> Printf.sprintf "people.age >= %d" (18 + Stdx.Prng.int prng 50)
    | 3 ->
        let a = Stdx.Prng.int prng 40 in
        Printf.sprintf "people.id BETWEEN %d AND %d" a (a + Stdx.Prng.int prng 20)
    | 4 -> Printf.sprintf "NOT pets.species = '%s'" (pick prng t.j_species)
    | _ -> Printf.sprintf "people.name = '%s'" (pick prng t.j_names)
  in
  match Stdx.Prng.int prng 4 with
  | 0 -> atom ()
  | 1 -> Printf.sprintf "%s AND %s" (atom ()) (atom ())
  | 2 -> Printf.sprintf "%s OR %s" (atom ()) (atom ())
  | _ -> Printf.sprintf "(%s OR %s) AND %s" (atom ()) (atom ()) (atom ())

let gen_join_statement t prng =
  match Stdx.Prng.int prng 8 with
  | 0 ->
      let id = !(t.j_next_person) in
      incr t.j_next_person;
      Mutation
        (Printf.sprintf "INSERT INTO people VALUES (%d, '%s', '%s', %d)" id
           (pick prng t.j_names) (pick prng t.j_cities)
           (18 + Stdx.Prng.int prng 50))
  | 1 ->
      let id = !(t.j_next_pet) in
      incr t.j_next_pet;
      Mutation
        (Printf.sprintf "INSERT INTO pets VALUES (%d, '%s', '%s')" id (pick prng t.j_owners)
           (pick prng t.j_species))
  | 2 ->
      let a = Stdx.Prng.int prng 25 in
      Mutation (Printf.sprintf "DELETE FROM pets WHERE pid BETWEEN %d AND %d" a (a + 1))
  | _ ->
      let projection =
        match Stdx.Prng.int prng 3 with
        | 0 -> "*"
        | 1 -> "people.id, pets.pid"
        | _ -> "people.name, pets.species, people.age"
      in
      let where =
        if Stdx.Prng.int prng 4 = 0 then None else Some (gen_join_where t prng)
      in
      let limit = if Stdx.Prng.int prng 4 = 0 then Some (1 + Stdx.Prng.int prng 10) else None in
      Select { projection; where; limit }

(* Same three-way oracle as the single-table suite, over join SELECTs:
   plaintext Sqldb join vs sequential encrypted join vs N-domain
   parallel join, with mutations on either table interleaved so the
   join sees fresh epochs. *)
let run_join_workload ~pool ~kind ~seed =
  let t, prng = build_join ~kind ~seed in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec steps i =
    if i >= n_join_statements then Ok ()
    else
      match gen_join_statement t prng with
      | Mutation sql -> (
          match (Sql.execute t.j_plain sql, Wre.Proxy.execute t.j_proxy sql) with
          | Ok p, Ok e ->
              if p.Sql.affected = e.Wre.Proxy.affected then steps (i + 1)
              else
                fail "affected mismatch on %S: plain %d, encrypted %d" sql p.Sql.affected
                  e.Wre.Proxy.affected
          | Error e, _ -> fail "plain error on %S: %s" sql e
          | _, Error e -> fail "encrypted error on %S: %s" sql e)
      | Select { projection; where; limit } -> (
          let base =
            Printf.sprintf "SELECT %s FROM people JOIN pets ON people.name = pets.owner%s"
              projection
              (match where with None -> "" | Some w -> " WHERE " ^ w)
          in
          let sql =
            match limit with None -> base | Some n -> Printf.sprintf "%s LIMIT %d" base n
          in
          match
            ( Sql.execute t.j_plain sql,
              Wre.Proxy.execute t.j_proxy sql,
              Wre.Proxy.execute_snapshot ~pool t.j_proxy sql )
          with
          | Ok p, Ok s, Ok par -> (
              if s.Wre.Proxy.join_exec = None then
                fail "encrypted %S did not take the join path" sql
              else if par.Wre.Proxy.rows <> s.Wre.Proxy.rows then
                fail "parallel join differs from sequential on %S (%d vs %d rows)" sql
                  (List.length par.Wre.Proxy.rows)
                  (List.length s.Wre.Proxy.rows)
              else
                match limit with
                | None ->
                    if sorted s.Wre.Proxy.rows = sorted p.Sql.rows then steps (i + 1)
                    else
                      fail "join row sets differ on %S: plain %d rows, encrypted %d rows" sql
                        (List.length p.Sql.rows)
                        (List.length s.Wre.Proxy.rows)
                | Some n -> (
                    match Sql.execute t.j_plain base with
                    | Error e -> fail "plain error on %S: %s" base e
                    | Ok full ->
                        let want = min n (List.length full.Sql.rows) in
                        if List.length s.Wre.Proxy.rows <> want then
                          fail "join LIMIT count on %S: got %d, want %d" sql
                            (List.length s.Wre.Proxy.rows)
                            want
                        else if not (is_submultiset s.Wre.Proxy.rows full.Sql.rows) then
                          fail "join LIMIT rows on %S are not a subset of the full plain result"
                            sql
                        else steps (i + 1)))
          | Error e, _, _ -> fail "plain error on %S: %s" sql e
          | _, Error e, _ -> fail "sequential error on %S: %s" sql e
          | _, _, Error e -> fail "parallel error on %S: %s" sql e)
  in
  steps 0

(* ---------------- Range (ESEDS traversal) workloads ---------------- *)

(* One table with a bucketized range column: every range predicate at
   conjunctive position must take the [Range_traverse] plan and still
   agree with the plaintext oracle and the flat-era semantics — byte-
   identical between sequential and parallel, sub-multiset under
   LIMIT. OR'd ranges keep the flat rtag rewrite; inverted and strict
   bounds must stay total. *)

let range_schema =
  Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "name"; ty = TText; nullable = false };
      { name = "score"; ty = TInt; nullable = false };
      { name = "age"; ty = TInt; nullable = false };
    ]

let n_range_rows = 48
let n_range_statements = 6
let range_buckets = 8

type range_targets = {
  r_plain : Database.t;
  r_proxy : Wre.Proxy.t;
  r_next_id : int ref;
  r_names : string array;
}

(* Skewed scores (product of two uniforms): equi-depth boundaries land
   unevenly, so covers regularly straddle subtree seams. *)
let gen_score prng = Stdx.Prng.int prng 100 * Stdx.Prng.int prng 10

let build_range ~kind ~seed =
  let prng = Stdx.Prng.create seed in
  let rows =
    List.init n_range_rows (fun i ->
        [|
          Value.Int (Int64.of_int i);
          Value.Text (pick prng names);
          Value.Int (Int64.of_int (gen_score prng));
          Value.Int (Int64.of_int (18 + Stdx.Prng.int prng 50));
        |])
  in
  let r_plain = Database.create () in
  let pt = Database.create_table r_plain ~name:"scores" ~schema:range_schema in
  List.iter (fun r -> ignore (Table.insert pt r)) rows;
  ignore (Table.create_index pt ~column:"name");
  ignore (Table.create_index pt ~column:"score");
  let enc_db = Database.create () in
  let master = Crypto.Keys.of_raw ~k0:(String.make 16 'd') ~k1:(String.make 32 'f') in
  let training =
    Array.of_list
      (List.map (fun r -> match r.(2) with Value.Int x -> x | _ -> 0L) rows)
  in
  let edb =
    Wre.Encrypted_db.create ~db:enc_db ~name:"scores" ~plain_schema:range_schema
      ~key_column:"id" ~encrypted_columns:[ "name" ] ~kind ~master
      ~range_columns:[ ("score", range_buckets) ]
      ~range_training:(fun _ -> training)
      ~dist_of:
        (Wre.Dist_est.of_rows ~schema:range_schema ~columns:[ "name" ] (List.to_seq rows))
      ~seed:(Int64.logxor seed 0x5eedL) ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
  ( {
      r_plain;
      r_proxy = Wre.Proxy.create edb;
      r_next_id = ref n_range_rows;
      r_names = present rows 1 names;
    },
    prng )

type range_stmt =
  | R_mutation of string
  | R_select of {
      rs_projection : string;
      rs_where : string option;
      rs_limit : int option;
      rs_traverse : bool;  (** generated shape puts a range leg at conjunctive position *)
    }

(* Range atoms: BETWEEN (sometimes inverted), one-sided <= / >=, the
   newly-accepted strict < / >, and point-as-range equality. *)
let gen_range_atom prng =
  let v () = Stdx.Prng.int prng 1000 in
  match Stdx.Prng.int prng 6 with
  | 0 ->
      let a = v () in
      Printf.sprintf "score BETWEEN %d AND %d" a (a - 40 + Stdx.Prng.int prng 400)
  | 1 -> Printf.sprintf "score <= %d" (v ())
  | 2 -> Printf.sprintf "score >= %d" (v ())
  | 3 -> Printf.sprintf "score < %d" (v ())
  | 4 -> Printf.sprintf "score > %d" (v ())
  | _ -> Printf.sprintf "score = %d" (v ())

let gen_range_other t prng =
  match Stdx.Prng.int prng 3 with
  | 0 -> Printf.sprintf "name = '%s'" (pick prng t.r_names)
  | 1 ->
      let a = Stdx.Prng.int prng 60 in
      Printf.sprintf "id BETWEEN %d AND %d" a (a + Stdx.Prng.int prng 20)
  | _ -> Printf.sprintf "age >= %d" (18 + Stdx.Prng.int prng 50)

let gen_range_where t prng =
  match Stdx.Prng.int prng 5 with
  | 0 -> (gen_range_atom prng, true)
  | 1 -> (Printf.sprintf "%s AND %s" (gen_range_atom prng) (gen_range_other t prng), true)
  | 2 -> (Printf.sprintf "%s AND %s" (gen_range_other t prng) (gen_range_atom prng), true)
  | 3 -> (Printf.sprintf "%s AND %s" (gen_range_atom prng) (gen_range_atom prng), true)
  | _ ->
      (* Range under OR: the flat rtag rewrite stays in charge. *)
      (Printf.sprintf "%s OR %s" (gen_range_atom prng) (gen_range_other t prng), false)

let gen_range_statement t prng =
  match Stdx.Prng.int prng 10 with
  | 0 ->
      let id = !(t.r_next_id) in
      incr t.r_next_id;
      R_mutation
        (Printf.sprintf "INSERT INTO scores VALUES (%d, '%s', %d, %d)" id (pick prng t.r_names)
           (gen_score prng)
           (18 + Stdx.Prng.int prng 50))
  | 1 ->
      (* UPDATE through a range predicate: rows move between buckets. *)
      let w, _ = gen_range_where t prng in
      let a = Stdx.Prng.int prng 50 in
      R_mutation
        (Printf.sprintf "UPDATE scores SET score = %d WHERE id BETWEEN %d AND %d AND (%s)"
           (gen_score prng) a (a + Stdx.Prng.int prng 10) w)
  | 2 ->
      let a = Stdx.Prng.int prng 60 in
      R_mutation
        (Printf.sprintf "DELETE FROM scores WHERE id BETWEEN %d AND %d AND %s" a (a + 1)
           (gen_range_atom prng))
  | _ ->
      let rs_projection =
        match Stdx.Prng.int prng 3 with 0 -> "*" | 1 -> "id" | _ -> "id, name, score"
      in
      let rs_where, rs_traverse =
        if Stdx.Prng.int prng 10 = 0 then (None, false)
        else
          let w, trav = gen_range_where t prng in
          (Some w, trav)
      in
      let rs_limit =
        if Stdx.Prng.int prng 4 = 0 then Some (1 + Stdx.Prng.int prng 12) else None
      in
      R_select { rs_projection; rs_where; rs_limit; rs_traverse }

(* The three-way oracle, plus a plan assertion: a conjunctive range
   SELECT must actually execute as [Range_traverse score_rtag] — this
   is what stops the traversal path from silently regressing to the
   flat plan (or a full scan). *)
let run_range_workload ~pool ~kind ~seed =
  let t, prng = build_range ~kind ~seed in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let took_traverse (r : Wre.Proxy.query_result) =
    match r.Wre.Proxy.exec with
    | Some e -> e.Executor.plan = Executor.Range_traverse "score_rtag"
    | None -> false
  in
  let rec steps i =
    if i >= n_range_statements then Ok ()
    else
      match gen_range_statement t prng with
      | R_mutation sql -> (
          match (Sql.execute t.r_plain sql, Wre.Proxy.execute t.r_proxy sql) with
          | Ok p, Ok e ->
              if p.Sql.affected = e.Wre.Proxy.affected then steps (i + 1)
              else
                fail "affected mismatch on %S: plain %d, encrypted %d" sql p.Sql.affected
                  e.Wre.Proxy.affected
          | Error e, _ -> fail "plain error on %S: %s" sql e
          | _, Error e -> fail "encrypted error on %S: %s" sql e)
      | R_select { rs_projection; rs_where; rs_limit; rs_traverse } -> (
          let base =
            Printf.sprintf "SELECT %s FROM scores%s" rs_projection
              (match rs_where with None -> "" | Some w -> " WHERE " ^ w)
          in
          let sql =
            match rs_limit with None -> base | Some n -> Printf.sprintf "%s LIMIT %d" base n
          in
          match
            ( Sql.execute t.r_plain sql,
              Wre.Proxy.execute t.r_proxy sql,
              Wre.Proxy.execute_snapshot ~pool t.r_proxy sql )
          with
          | Ok p, Ok s, Ok par -> (
              if rs_traverse && not (took_traverse s) then
                fail "encrypted %S did not take the Range_traverse plan" sql
              else if rs_traverse && not (took_traverse par) then
                fail "parallel %S did not take the Range_traverse plan" sql
              else if par.Wre.Proxy.rows <> s.Wre.Proxy.rows then
                fail "parallel differs from sequential on %S (%d vs %d rows)" sql
                  (List.length par.Wre.Proxy.rows)
                  (List.length s.Wre.Proxy.rows)
              else
                match rs_limit with
                | None ->
                    if sorted s.Wre.Proxy.rows = sorted p.Sql.rows then steps (i + 1)
                    else
                      fail "row sets differ on %S: plain %d rows, encrypted %d rows" sql
                        (List.length p.Sql.rows)
                        (List.length s.Wre.Proxy.rows)
                | Some n -> (
                    match Sql.execute t.r_plain base with
                    | Error e -> fail "plain error on %S: %s" base e
                    | Ok full ->
                        let want = min n (List.length full.Sql.rows) in
                        if List.length s.Wre.Proxy.rows <> want then
                          fail "LIMIT count on %S: got %d, want %d" sql
                            (List.length s.Wre.Proxy.rows)
                            want
                        else if not (is_submultiset s.Wre.Proxy.rows full.Sql.rows) then
                          fail "LIMIT rows on %S are not a subset of the full plain result" sql
                        else steps (i + 1)))
          | Error e, _, _ -> fail "plain error on %S: %s" sql e
          | _, Error e, _ -> fail "sequential error on %S: %s" sql e
          | _, _, Error e -> fail "parallel error on %S: %s" sql e)
  in
  steps 0

(* ---------------- Corpus persistence + replay ---------------- *)

let corpus_dir = "corpus"

let persist_failure ~mode ~kind ~domains ~seed msg =
  if not (Sys.file_exists corpus_dir) then Unix.mkdir corpus_dir 0o755;
  let path =
    Filename.concat corpus_dir
      (Printf.sprintf "differential-%s-%s-d%d-%Ld.seed" mode (Wre.Scheme.to_string kind) domains
         seed)
  in
  Store.Io.atomic_write_text ~path
    (Printf.sprintf "mode=%s scheme=%s domains=%d seed=%Ld\n# %s\n" mode
       (Wre.Scheme.to_string kind) domains seed msg);
  path

let parse_corpus path =
  match Store.Io.read_file path with
  | None -> Error "unreadable corpus file"
  | Some text -> (
      let line = match String.split_on_char '\n' text with l :: _ -> l | [] -> "" in
      let kv =
        List.filter_map
          (fun part ->
            match String.index_opt part '=' with
            | Some i ->
                Some
                  ( String.sub part 0 i,
                    String.sub part (i + 1) (String.length part - i - 1) )
            | None -> None)
          (String.split_on_char ' ' line)
      in
      match
        ( Option.bind (List.assoc_opt "scheme" kv) (fun s ->
              Result.to_option (Wre.Scheme.of_string s)),
          Option.bind (List.assoc_opt "domains" kv) int_of_string_opt,
          Option.bind (List.assoc_opt "seed" kv) Int64.of_string_opt )
      with
      | Some kind, Some domains, Some seed ->
          (* Seeds from before the join suite carry no mode key. *)
          let mode = Option.value ~default:"single" (List.assoc_opt "mode" kv) in
          Ok (mode, kind, domains, seed)
      | _ -> Error (Printf.sprintf "malformed corpus header %S" line))

let replay_corpus () =
  let files =
    if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
      List.sort compare
        (List.filter
           (fun f -> Filename.check_suffix f ".seed")
           (Array.to_list (Sys.readdir corpus_dir)))
    else []
  in
  List.iter
    (fun file ->
      match parse_corpus (Filename.concat corpus_dir file) with
      | Error e -> Alcotest.fail (file ^ ": " ^ e)
      | Ok (mode, kind, domains, seed) -> (
          Stdx.Task_pool.with_pool ~domains @@ fun pool ->
          let run =
            if mode = "join" then run_join_workload
            else if mode = "range" then run_range_workload
            else run_workload
          in
          match run ~pool ~kind ~seed with
          | Ok () -> ()
          | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" file msg)))
    files

(* ---------------- Harness knobs + cases ---------------- *)

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with Some v -> v | None -> default

let master_seed =
  match Option.bind (Sys.getenv_opt "WRE_SEED") Int64.of_string_opt with
  | Some s -> s
  | None -> 42L

let domain_configs =
  match Sys.getenv_opt "WRE_DOMAINS" with
  | Some s -> (
      match List.filter_map int_of_string_opt (String.split_on_char ',' s) with
      | [] -> [ 1; 4 ]
      | ds -> ds)
  | None -> [ 1; 4 ]

let workloads = env_int "WRE_ORACLE_WORKLOADS" 200

let workload_seed ~kind ~index =
  Int64.add master_seed
    (Int64.of_int ((Hashtbl.hash (Wre.Scheme.to_string kind) * 1_000_003) + index))

let oracle_case ~mode ~run kind domains () =
  Stdx.Task_pool.with_pool ~domains @@ fun pool ->
  for index = 0 to workloads - 1 do
    let seed = workload_seed ~kind ~index in
    match run ~pool ~kind ~seed with
    | Ok () -> ()
    | Error msg ->
        let path = persist_failure ~mode ~kind ~domains ~seed msg in
        Alcotest.fail
          (Printf.sprintf "workload %d (seed %Ld) failed: %s [seed saved to %s — commit it to \
                           test/corpus/ to pin the regression]"
             index seed msg path)
  done

let cases ~mode ~run =
  List.concat_map
    (fun kind ->
      List.map
        (fun domains ->
          Alcotest.test_case
            (Printf.sprintf "%s x %d domains" (Wre.Scheme.to_string kind) domains)
            `Quick (oracle_case ~mode ~run kind domains))
        domain_configs)
    schemes

let () =
  Alcotest.run "differential"
    [
      ("oracle", cases ~mode:"single" ~run:run_workload);
      ("join-oracle", cases ~mode:"join" ~run:run_join_workload);
      ("range-oracle", cases ~mode:"range" ~run:run_range_workload);
      ("corpus", [ Alcotest.test_case "replay saved seeds" `Quick replay_corpus ]);
    ]
