(* Wire-protocol and batched-admission server tests (PR 7).

   Three layers, mirroring lib/server:
   - Wire: qcheck round-trips for every message constructor, plus an
     adversarial decode battery (truncation, corruption, oversized and
     "negative" lengths, garbage preambles, trailing bytes) — every one
     must come back as a clean [error], never an exception;
   - Admission: the batching semantics against fake executors —
     coalescing within a window, write serialization, executor failure
     containment, stop/drain;
   - Daemon: a live in-process server over a real Unix-domain socket —
     byte-identity with the in-process snapshot path, session isolation
     under a garbage client, concurrent-client correctness, and INSERT
     durability across a server stop + engine reopen. *)

module Wire = Server.Wire
module Admission = Server.Admission
module Daemon = Server.Daemon
module Client = Server.Client

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* scratch directories (same convention as test_store) *)

let temp_counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wre_srv_test.%d.%d" (Unix.getpid ()) !temp_counter)
  in
  if Sys.file_exists dir then rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ---------------- wire: generators ---------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Sqldb.Value.Null;
        map (fun i -> Sqldb.Value.Int (Int64.of_int i)) int;
        map (fun i -> Sqldb.Value.Real (float_of_int i /. 16.0)) int;
        map (fun s -> Sqldb.Value.Text s) (string_size (int_bound 12));
        map (fun s -> Sqldb.Value.Blob s) (string_size (int_bound 12));
      ])

let row_gen = QCheck.Gen.(map Array.of_list (list_size (int_bound 5) value_gen))
let short_string = QCheck.Gen.(string_size (int_bound 20))

let request_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun client -> Wire.Hello { client }) short_string;
        map (fun sql -> Wire.Query { sql }) short_string;
        return Wire.Ping;
        return Wire.Stats;
        return Wire.Quit;
      ])

let response_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (sid, server, tables) ->
            Wire.Welcome { session_id = Int64.of_int sid; server; tables })
          (triple nat short_string (list_size (int_bound 4) short_string));
        map
          (fun ((columns, rows), (affected, server_rows)) ->
            Wire.Result { columns; rows; affected; server_rows })
          (pair
             (pair (list_size (int_bound 4) short_string) (list_size (int_bound 6) row_gen))
             (pair nat nat));
        map (fun message -> Wire.Failed { message }) short_string;
        return Wire.Pong;
        map (fun text -> Wire.Stats_reply { text }) short_string;
        return Wire.Bye;
      ])

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"request encode/decode roundtrip"
    (QCheck.make request_gen) (fun r -> Wire.decode_request (Wire.encode_request r) = Ok r)

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"response encode/decode roundtrip"
    (QCheck.make response_gen) (fun r -> Wire.decode_response (Wire.encode_response r) = Ok r)

let qcheck_frame_roundtrip =
  QCheck.Test.make ~count:300 ~name:"frame header + crc accept own output"
    (QCheck.make QCheck.Gen.(string_size (int_bound 200)))
    (fun payload ->
      let f = Wire.frame payload in
      match Wire.parse_header (String.sub f 0 Wire.header_bytes) with
      | Error _ -> false
      | Ok (len, crc) ->
          len = String.length payload
          && Wire.check_payload ~crc (String.sub f Wire.header_bytes len) = Ok ())

(* ---------------- wire: adversarial decode ---------------- *)

(* Feed exact byte prefixes through a real pipe so the blocking reader
   sees genuine EOF mid-frame, exactly like a client dying mid-send. *)
let recv_of_bytes bytes =
  let r, w = Unix.pipe ~cloexec:true () in
  Store.Io.write_fd_all w bytes;
  Unix.close w;
  let res = Wire.recv_request r in
  Unix.close r;
  res

let test_adversarial_stream () =
  let full = Wire.frame (Wire.encode_request (Wire.Query { sql = "SELECT 1" })) in
  check_bool "clean EOF at frame boundary" true (recv_of_bytes "" = Error `Eof);
  check_bool "truncated header" true
    (recv_of_bytes (String.sub full 0 5) = Error (`Err (Wire.Malformed "truncated header")));
  check_bool "truncated frame" true
    (recv_of_bytes (String.sub full 0 (String.length full - 3))
    = Error (`Err (Wire.Malformed "truncated frame")));
  check_bool "garbage preamble" true
    (recv_of_bytes "garbage-garbage!" = Error (`Err Wire.Bad_magic));
  (* Flip one payload byte: the CRC must catch it. *)
  let corrupted = Bytes.of_string full in
  let last = Bytes.length corrupted - 1 in
  Bytes.set corrupted last (Char.chr (Char.code (Bytes.get corrupted last) lxor 0x40));
  check_bool "corrupted payload" true
    (recv_of_bytes (Bytes.to_string corrupted) = Error (`Err Wire.Bad_crc))

let header_with_len len =
  let b = Buffer.create Wire.header_bytes in
  Store.Codec.put_u32 b Wire.magic;
  Store.Codec.put_u32 b len;
  Store.Codec.put_u32 b 0;
  Buffer.contents b

let test_adversarial_lengths () =
  check_bool "oversized length" true
    (recv_of_bytes (header_with_len (Wire.max_frame + 1))
    = Error (`Err (Wire.Oversized (Wire.max_frame + 1))));
  (* A "negative" 32-bit length decodes as a huge positive int and must
     fail the same bound — before any allocation. *)
  check_bool "negative-as-u32 length" true
    (recv_of_bytes (header_with_len 0xFFFFFFFF)
    = Error (`Err (Wire.Oversized 0xFFFFFFFF)));
  check_bool "max_frame itself is only bounded by the stream" true
    (match recv_of_bytes (header_with_len Wire.max_frame) with
    | Error (`Err (Wire.Malformed _)) -> true (* accepted, then truncated *)
    | _ -> false)

let test_adversarial_payloads () =
  let malformed = function Error (Wire.Malformed _) -> true | _ -> false in
  check_bool "unknown request tag" true (malformed (Wire.decode_request "\x09"));
  check_bool "unknown response tag" true (malformed (Wire.decode_response "\x09"));
  check_bool "empty payload" true (malformed (Wire.decode_request ""));
  check_bool "trailing bytes" true
    (malformed (Wire.decode_request (Wire.encode_request Wire.Ping ^ "x")));
  (* A count prefix larger than the remaining payload must fail fast,
     not drive a giant List.init. *)
  let b = Buffer.create 16 in
  Store.Codec.put_u8 b 2 (* Result *);
  Store.Codec.put_u32 b 0xFFFFFF (* "16M columns" in a 9-byte payload *);
  check_bool "count exceeding payload" true (malformed (Wire.decode_response (Buffer.contents b)))

(* ---------------- admission ---------------- *)

let test_admission_batches_and_writes () =
  let sizes = ref [] in
  let sizes_m = Mutex.create () in
  let adm =
    Admission.create ~window_ns:50e6 ~batch_max:8
      ~run_batch:(fun xs ->
        Mutex.lock sizes_m;
        sizes := Array.length xs :: !sizes;
        Mutex.unlock sizes_m;
        Array.map (fun x -> x * 2) xs)
      ~run_write:(fun x -> x * 1000)
      ~on_exn:(fun _ -> -1)
      ()
  in
  let replies = Array.make 4 0 in
  let readers =
    List.init 4 (fun i ->
        Thread.create (fun () -> replies.(i) <- Admission.submit adm Admission.Read (i + 1)) ())
  in
  List.iter Thread.join readers;
  check_bool "read replies match payloads" true
    (Array.to_list replies |> List.sort compare = [ 2; 4; 6; 8 ]);
  (* All four submitted inside one 50 ms window: they cannot have run
     as four singleton batches. *)
  check_int "all jobs ran" 4 (List.fold_left ( + ) 0 !sizes);
  check_bool "window coalesced concurrent reads" true (List.exists (fun s -> s >= 2) !sizes);
  check_int "write goes through run_write" 7000 (Admission.submit adm Admission.Mutate 7);
  Admission.stop adm;
  Admission.stop adm (* idempotent *);
  check_bool "submit after stop raises" true
    (match Admission.submit adm Admission.Read 1 with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true)

(* A full batch already queued must not pay the admission window: with
   a 2 s window and batch_max reads waiting behind a blocked write, the
   batch has to complete as soon as the write releases — the sleep buys
   no extra coalescing once the batch is full on arrival. *)
let test_admission_full_batch_skips_window () =
  let batch_max = 4 in
  let write_entered = Atomic.make false in
  let queued = Atomic.make 0 in
  let released_at = Atomic.make 0.0 in
  let batch_sizes = ref [] in
  let adm =
    Admission.create ~window_ns:2e9 ~batch_max
      ~run_batch:(fun xs ->
        batch_sizes := Array.length xs :: !batch_sizes;
        xs)
      ~run_write:(fun x ->
        (* Hold the batcher until every reader is queued behind us. *)
        Atomic.set write_entered true;
        while Atomic.get queued < batch_max do
          Thread.yield ()
        done;
        (* Readers bump [queued] just before submitting; give the last
           push time to land in the queue. *)
        Thread.delay 0.2;
        Atomic.set released_at (Unix.gettimeofday ());
        x)
      ~on_exn:(fun _ -> -1)
      ()
  in
  let writer = Thread.create (fun () -> ignore (Admission.submit adm Admission.Mutate 0)) () in
  (* Only start the readers once the batcher is inside run_write, so
     all of them queue behind the in-flight mutation. *)
  while not (Atomic.get write_entered) do
    Thread.yield ()
  done;
  let readers =
    List.init batch_max (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr queued;
            ignore (Admission.submit adm Admission.Read (i + 1)))
          ())
  in
  List.iter Thread.join readers;
  let elapsed = Unix.gettimeofday () -. Atomic.get released_at in
  Thread.join writer;
  Admission.stop adm;
  check_bool "full batch ran without the window sleep" true (elapsed < 1.0);
  check_bool "reads ran as one full batch" true (List.mem batch_max !batch_sizes)

let test_admission_contains_executor_failure () =
  let adm =
    Admission.create
      ~run_batch:(fun _ -> failwith "executor down")
      ~run_write:(fun _ -> failwith "wal down")
      ~on_exn:(fun m -> "err:" ^ m)
      ()
  in
  check_bool "read failure becomes on_exn reply" true
    (String.length (Admission.submit adm Admission.Read "q") > 4);
  check_bool "write failure becomes on_exn reply" true
    (String.sub (Admission.submit adm Admission.Mutate "w") 0 4 = "err:");
  (* The batcher survived both failures. *)
  let adm2 = adm in
  check_bool "batcher still alive" true (String.length (Admission.submit adm2 Admission.Read "q2") > 0);
  Admission.stop adm

(* ---------------- daemon fixtures ---------------- *)

let plain_schema =
  Sqldb.Schema.create
    [
      { name = "id"; ty = Sqldb.Value.TInt; nullable = false };
      { name = "name"; ty = Sqldb.Value.TText; nullable = false };
      { name = "city"; ty = Sqldb.Value.TText; nullable = false };
    ]

let names = [| "ann"; "bob"; "cat"; "dan"; "eve" |]
let cities = [| "pdx"; "sea"; "nyc" |]

let row_of prng i =
  [|
    Sqldb.Value.Int (Int64.of_int i);
    Sqldb.Value.Text names.(Stdx.Prng.int prng (Array.length names));
    Sqldb.Value.Text cities.(Stdx.Prng.int prng (Array.length cities));
  |]

let build_store ~dir ~seed ~rows:n =
  let prng = Stdx.Prng.create seed in
  let rows = List.init n (row_of prng) in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:plain_schema ~columns:[ "name"; "city" ] (List.to_seq rows)
  in
  let store = Store.Engine.open_dir ~dir () in
  let edb =
    Store.Engine.create_encrypted store ~fallback:`Min_frequency ~name:"people" ~plain_schema
      ~key_column:"id"
      ~encrypted_columns:[ "name"; "city" ]
      ~kind:(Wre.Scheme.Poisson 40.0)
      ~master:(Crypto.Keys.generate (Stdx.Prng.create (Int64.logxor seed 0xc0ffeeL)))
      ~dist_of ~seed:(Int64.logxor seed 0x5eedL) ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
  (store, edb)

let with_server ?(domains = 2) ?(window_ns = 0.0) ?(batch_max = 64) ~dir f =
  let store, edb = build_store ~dir ~seed:11L ~rows:40 in
  let cfg =
    {
      Daemon.socket_path = Filename.concat dir "wre.sock";
      domains;
      window_ns;
      batch_max;
      backlog = 64;
    }
  in
  match Daemon.start cfg store with
  | Error e -> Alcotest.failf "daemon refused to start: %s" e
  | Ok d ->
      Fun.protect
        ~finally:(fun () ->
          Daemon.stop d;
          Store.Engine.close store)
        (fun () -> f (d, store, edb))

let canonical_remote (p : Wire.result_payload) = Wire.encode_response (Wire.Result p)

let canonical_local (q : Wre.Proxy.query_result) =
  Wire.encode_response
    (Wire.Result
       { columns = q.columns; rows = q.rows; affected = q.affected; server_rows = q.server_rows })

(* ---------------- daemon tests ---------------- *)

let test_server_byte_identity () =
  with_temp_dir (fun dir ->
      with_server ~dir (fun (d, _store, edb) ->
          let proxy = Wre.Proxy.create edb in
          let c = Result.get_ok (Client.connect ~socket_path:(Daemon.socket_path d) ()) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              check_bool "welcome announces the table" true (Client.tables c = [ "people" ]);
              List.iter
                (fun sql ->
                  let remote = Result.get_ok (Client.query c sql) in
                  let local = Result.get_ok (Wre.Proxy.execute_snapshot proxy sql) in
                  check_bool
                    (Printf.sprintf "byte-identical result for %s" sql)
                    true
                    (canonical_remote remote = canonical_local local))
                [
                  "SELECT * FROM people WHERE name = 'ann'";
                  "SELECT name, city FROM people WHERE city = 'pdx' LIMIT 5";
                  "SELECT * FROM people WHERE name = 'bob' OR name = 'eve'";
                  "SELECT id FROM people WHERE id = 7";
                ])))

let test_server_garbage_session_isolated () =
  with_temp_dir (fun dir ->
      with_server ~dir (fun (d, _store, _edb) ->
          let rejected_before =
            Obs.Metrics.counter_value (Obs.Metrics.counter "server.frames_rejected_total")
          in
          let good = Result.get_ok (Client.connect ~socket_path:(Daemon.socket_path d) ()) in
          Fun.protect
            ~finally:(fun () -> Client.close good)
            (fun () ->
              check_bool "good session works" true
                (Result.is_ok (Client.query good "SELECT * FROM people WHERE name = 'ann'"));
              (* A client that speaks garbage gets a clean rejection and a
                 closed connection... *)
              let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_UNIX (Daemon.socket_path d));
              Store.Io.write_fd_all fd "garbage-garbage!";
              check_bool "rejection reply" true
                (match Wire.recv_response fd with Ok (Wire.Failed _) -> true | _ -> false);
              check_bool "rejected session closed" true (Wire.recv_response fd = Error `Eof);
              Unix.close fd;
              check_bool "rejection counted" true
                (Obs.Metrics.counter_value (Obs.Metrics.counter "server.frames_rejected_total")
                > rejected_before);
              (* ...while the established session keeps being served. *)
              check_bool "good session survives" true
                (Result.is_ok (Client.query good "SELECT * FROM people WHERE name = 'bob'")))))

let test_server_concurrent_clients_batch () =
  with_temp_dir (fun dir ->
      with_server ~dir ~domains:2 ~window_ns:50e6 ~batch_max:64 (fun (d, _store, edb) ->
          let proxy = Wre.Proxy.create edb in
          let sql = "SELECT * FROM people WHERE city = 'sea'" in
          let expected = canonical_local (Result.get_ok (Wre.Proxy.execute_snapshot proxy sql)) in
          let batches = Obs.Metrics.counter "server.batches_total" in
          let batches_before = Obs.Metrics.counter_value batches in
          let n_clients = 8 in
          let failures = Atomic.make 0 in
          let threads =
            List.init n_clients (fun _ ->
                Thread.create
                  (fun () ->
                    match Client.connect ~socket_path:(Daemon.socket_path d) () with
                    | Error _ -> Atomic.incr failures
                    | Ok c ->
                        Fun.protect
                          ~finally:(fun () -> Client.close c)
                          (fun () ->
                            for _ = 1 to 3 do
                              match Client.query c sql with
                              | Ok p when canonical_remote p = expected -> ()
                              | Ok _ | Error _ -> Atomic.incr failures
                            done))
                  ())
          in
          List.iter Thread.join threads;
          check_int "every reply byte-identical" 0 (Atomic.get failures);
          let batches_ran = Obs.Metrics.counter_value batches - batches_before in
          check_bool "ran at least one batch" true (batches_ran >= 1);
          (* 24 queries inside 50 ms windows cannot all have been
             singleton batches. *)
          check_bool "admission coalesced queries" true (batches_ran < n_clients * 3)))

let test_server_insert_durable_across_restart () =
  with_temp_dir (fun dir ->
      let sock =
        with_server ~dir (fun (d, _store, _edb) ->
            let c = Result.get_ok (Client.connect ~socket_path:(Daemon.socket_path d) ()) in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let ins = Result.get_ok (Client.query c "INSERT INTO people VALUES (999, 'zed', 'pdx')") in
                check_int "one row inserted" 1 ins.Wire.affected;
                let sel = Result.get_ok (Client.query c "SELECT * FROM people WHERE name = 'zed'") in
                check_int "visible to reads after the write" 1 (List.length sel.Wire.rows));
            Daemon.socket_path d)
      in
      check_bool "socket removed on stop" false (Sys.file_exists sock);
      (* The server stopped without a checkpoint: reopening replays the
         WAL, and the acknowledged INSERT must be there. *)
      let store = Store.Engine.open_dir ~dir () in
      Fun.protect
        ~finally:(fun () -> Store.Engine.close store)
        (fun () ->
          let edb = Option.get (Store.Engine.encrypted store "people") in
          let proxy = Wre.Proxy.create edb in
          let q = Result.get_ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE name = 'zed'") in
          check_int "insert survived restart" 1 (List.length q.Wre.Proxy.rows)))

let test_server_control_requests () =
  with_temp_dir (fun dir ->
      with_server ~dir (fun (d, _store, _edb) ->
          let c = Result.get_ok (Client.connect ~socket_path:(Daemon.socket_path d) ()) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              check_bool "ping" true (Client.ping c = Ok ());
              match Client.stats c with
              | Error e -> Alcotest.failf "stats failed: %s" e
              | Ok text ->
                  let contains hay needle =
                    let nh = String.length hay and nn = String.length needle in
                    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
                    go 0
                  in
                  check_bool "stats dump includes server counters" true
                    (contains text "server.requests_total"))))

let test_server_requires_encrypted_tables () =
  with_temp_dir (fun dir ->
      let store = Store.Engine.open_dir ~dir:(Filename.concat dir "empty") () in
      Fun.protect
        ~finally:(fun () -> Store.Engine.close store)
        (fun () ->
          let cfg = Daemon.default_config ~socket_path:(Filename.concat dir "s.sock") in
          check_bool "refuses a store with nothing to serve" true
            (Result.is_error (Daemon.start cfg store))))

(* ---------------- suite ---------------- *)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [
      ( "wire_adversarial",
        [
          Alcotest.test_case "stream truncation/corruption" `Quick test_adversarial_stream;
          Alcotest.test_case "length bounds" `Quick test_adversarial_lengths;
          Alcotest.test_case "payload shapes" `Quick test_adversarial_payloads;
        ] );
      ( "admission",
        [
          Alcotest.test_case "batches reads, serializes writes" `Quick
            test_admission_batches_and_writes;
          Alcotest.test_case "full batch skips window" `Quick
            test_admission_full_batch_skips_window;
          Alcotest.test_case "contains executor failure" `Quick
            test_admission_contains_executor_failure;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "byte identity with in-process path" `Quick
            test_server_byte_identity;
          Alcotest.test_case "garbage session isolated" `Quick
            test_server_garbage_session_isolated;
          Alcotest.test_case "concurrent clients batch" `Quick
            test_server_concurrent_clients_batch;
          Alcotest.test_case "insert durable across restart" `Quick
            test_server_insert_durable_across_restart;
          Alcotest.test_case "ping/stats" `Quick test_server_control_requests;
          Alcotest.test_case "refuses plain store" `Quick test_server_requires_encrypted_tables;
        ] );
      ( "wire_properties",
        q [ qcheck_request_roundtrip; qcheck_response_roundtrip; qcheck_frame_roundtrip ] );
    ]
