(* Fixture tests for the wre-lint analyzer: every rule R1–R6 must fire
   on a seeded violation and stay silent on compliant code, in and out
   of its path scope. Fixtures are inline sources parsed through the
   same compiler-libs front end the driver uses. *)

let all = Lint.Rule.all

let diags_of ?(path = "lib/crypto/fixture.ml") ?(rules = all) src =
  match Lint.Engine.lint_source ~rules ~path src with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "fixture did not parse: %s" e

let rules_fired ?path ?rules src =
  List.sort_uniq compare
    (List.map (fun d -> Lint.Rule.to_string d.Lint.Diagnostic.rule) (diags_of ?path ?rules src))

let check_fires ?path ?rules rule src =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires" rule)
    true
    (List.mem rule (rules_fired ?path ?rules src))

let check_silent ?path ?rules src =
  Alcotest.(check (list string)) "no findings" [] (rules_fired ?path ?rules src)

(* ---------------- R1: secret hygiene ---------------- *)

let r1_printf () = check_fires "R1" {| let leak ~key = Printf.printf "key=%s" key |}
let r1_format () = check_fires "R1" {| let leak mac_key = Format.eprintf "%s" mac_key |}
let r1_hex () = check_fires "R1" {| let leak ~key = Stdx.Bytes_util.to_hex key |}

let r1_exception_payload () =
  check_fires "R1" {| let f ~key = failwith ("bad " ^ key) |};
  check_fires "R1" {| let f ~key = raise (Failure key) |}

let r1_typed_binding () =
  (* Name is innocuous; the Keys.master annotation marks it secret. *)
  check_fires "R1" {| let m : Keys.master = gen () let _ = print_string m |}

let r1_silent_on_derived () =
  (* The secret flows into the PRF, not the printer: the printed value
     is a non-secret application result. *)
  check_silent {| let show ~key msg = print_string (tag_of (prf ~key msg)) |};
  check_silent {| let show x = Printf.printf "%d" x |}

let r1_out_of_scope () =
  check_silent ~path:"bench/exp_fixture.ml" {| let leak ~key = Printf.printf "%s" key |}

(* ---------------- R2: constant-time discipline ---------------- *)

let r2_poly_eq () = check_fires "R2" {| let check tag other = tag = other |}
let r2_string_equal () = check_fires "R2" {| let check ~mac x = String.equal mac x |}
let r2_compare () = check_fires "R2" {| let check ~data_key x = compare data_key x = 0 |}

let r2_core_scope () =
  check_fires "R2" ~path:"lib/core/fixture.ml" {| let hit row_tag t = row_tag = t |}

let r2_silent_ct_equal () =
  check_silent {| let check tag other = Stdx.Bytes_util.ct_equal tag other |}

let r2_silent_non_sensitive () =
  check_silent {| let f n = n = 3 |};
  (* Same comparison outside lib/crypto + lib/core: not R2's business. *)
  check_silent ~path:"lib/sqldb/fixture.ml" {| let check tag other = tag = other |}

(* ---------------- R3: determinism ---------------- *)

let r3_random () =
  check_fires "R3" ~path:"bench/exp_fixture.ml" {| let x = Random.int 10 |};
  check_fires "R3" ~path:"lib/dist/fixture.ml" {| let () = Random.self_init () |}

let r3_wall_clock () =
  check_fires "R3" ~path:"bench/exp_fixture.ml" {| let t = Unix.gettimeofday () |};
  check_fires "R3" ~path:"examples/fixture.ml" {| let t = Sys.time () |}

let r3_exempt_modules () =
  check_silent ~path:"lib/stdx/prng.ml" {| let reseed () = Random.self_init () |};
  check_silent ~path:"lib/stdx/clock.ml" {| let now () = Unix.gettimeofday () |}

let r3_silent_prng () =
  check_silent ~path:"bench/exp_fixture.ml" {| let x g = Stdx.Prng.int g 10 |}

(* ---------------- R4: interface coverage ---------------- *)

let with_temp_tree f =
  let root = Filename.temp_file "wre_lint" "" in
  Sys.remove root;
  Sys.mkdir root 0o700;
  Sys.mkdir (Filename.concat root "lib") 0o700;
  let dir = Filename.concat (Filename.concat root "lib") "m" in
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm root)
    (fun () -> f root dir)

let write_file path contents = Out_channel.with_open_text path (fun oc -> output_string oc contents)

let r4_missing_mli () =
  with_temp_tree (fun root dir ->
      write_file (Filename.concat dir "orphan.ml") "let x = 1\n";
      let diags, errors = Lint.Engine.lint_paths ~rules:all [ root ] in
      Alcotest.(check (list string)) "no errors" [] errors;
      Alcotest.(check bool) "R4 fires" true
        (List.exists (fun d -> Lint.Rule.equal d.Lint.Diagnostic.rule Lint.Rule.R4) diags))

let r4_with_mli () =
  with_temp_tree (fun root dir ->
      write_file (Filename.concat dir "covered.ml") "let x = 1\n";
      write_file (Filename.concat dir "covered.mli") "val x : int\n";
      let diags, errors = Lint.Engine.lint_paths ~rules:all [ root ] in
      Alcotest.(check (list string)) "no errors" [] errors;
      Alcotest.(check int) "silent" 0 (List.length diags))

(* ---------------- R5: partial escapes ---------------- *)

let r5_obj_magic () = check_fires "R5" ~path:"lib/sqldb/fixture.ml" {| let f x = Obj.magic x |}

let r5_assert_false () =
  check_fires "R5" ~path:"lib/sqldb/fixture.ml" {| let f () = assert false |}

let r5_catch_all () =
  check_fires "R5" ~path:"lib/sqldb/fixture.ml" {| let f g = try g () with _ -> 0 |}

let r5_silent_compliant () =
  check_silent ~path:"lib/sqldb/fixture.ml"
    {| let f g x = assert (x > 0); (try g () with Not_found -> 0) |}

let r5_out_of_scope () =
  (* bench/ and examples/ may prototype loosely; R5 guards lib/ only. *)
  check_silent ~path:"bench/fixture.ml" {| let f () = assert false |}

(* ---------------- R6: file-I/O discipline ---------------- *)

let r6_open_out () =
  check_fires "R6" ~path:"lib/sqldb/fixture.ml" {| let f path = open_out path |};
  check_fires "R6" ~path:"bench/exp_fixture.ml" {| let f path = open_out_bin path |}

let r6_out_channel () =
  check_fires "R6" ~path:"bin/fixture.ml"
    {| let f path s = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s) |}

let r6_unix_write () =
  check_fires "R6" ~path:"lib/core/fixture.ml" {| let f fd s = Unix.write_substring fd s 0 1 |};
  check_fires "R6" ~path:"bench/exp_fixture.ml" {| let f a b = Unix.rename a b |}

let r6_store_exempt () =
  (* lib/store is the one place raw writes are legal: everything else
     must route through Store.Io so failpoints can reach it. *)
  check_silent ~path:"lib/store/io.ml" {| let f path = open_out path |};
  check_silent ~path:"lib/store/wal.ml" {| let f fd s = Unix.write_substring fd s 0 1 |}

let r6_reads_ok () =
  check_silent ~path:"lib/sqldb/fixture.ml"
    {| let f path = In_channel.with_open_text path In_channel.input_all |};
  check_silent ~path:"bin/fixture.ml" {| let f path s = Store.Io.atomic_write_text ~path s |}

(* ---------------- rule toggling ---------------- *)

let rules_toggle () =
  let src = {| let check tag other = tag = other
               let f () = assert false |} in
  Alcotest.(check (list string)) "both fire" [ "R2"; "R5" ] (rules_fired src);
  Alcotest.(check (list string)) "only R5" [ "R5" ] (rules_fired ~rules:[ Lint.Rule.R5 ] src)

(* ---------------- allowlist ---------------- *)

let allow_parse () =
  match Lint.Allowlist.of_string "# comment\nR5 lib/sqldb/pager.ml:42\nR3 bench/exp.ml\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok entries -> Alcotest.(check int) "two entries" 2 (List.length entries)

let allow_rejects_garbage () =
  (match Lint.Allowlist.of_string "R9 somewhere.ml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule accepted");
  match Lint.Allowlist.of_string "justonetoken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted"

let allow_suppresses () =
  let d = List.hd (diags_of {| let f () = assert false |} ~path:"lib/x/f.ml" ~rules:all) in
  let ok s = match Lint.Allowlist.of_string s with Ok a -> a | Error e -> Alcotest.failf "%s" e in
  Alcotest.(check bool) "file-level" true (Lint.Allowlist.suppresses (ok "R5 lib/x/f.ml") d);
  Alcotest.(check bool) "line-level" true
    (Lint.Allowlist.suppresses (ok (Printf.sprintf "R5 lib/x/f.ml:%d" d.Lint.Diagnostic.line)) d);
  Alcotest.(check bool) "wrong line" false
    (Lint.Allowlist.suppresses (ok "R5 lib/x/f.ml:9999") d);
  Alcotest.(check bool) "wrong rule" false (Lint.Allowlist.suppresses (ok "R2 lib/x/f.ml") d);
  Alcotest.(check int) "unused entry reported" 1
    (List.length (Lint.Allowlist.unused (ok "R2 lib/other.ml") [ d ]))

(* ---------------- diagnostics format ---------------- *)

let diagnostic_format () =
  let d = List.hd (diags_of {| let check tag other = tag = other |}) in
  let s = Lint.Diagnostic.to_string d in
  Alcotest.(check bool) "has file:line" true
    (String.length s > 0 && String.sub s 0 (String.length "lib/crypto/fixture.ml:")
                            = "lib/crypto/fixture.ml:");
  Alcotest.(check bool) "names the rule" true
    (List.exists (fun r -> r = "R2") (rules_fired {| let check tag other = tag = other |}))

let () =
  Alcotest.run "lint"
    [
      ( "r1_secret_hygiene",
        [
          Alcotest.test_case "printf leak" `Quick r1_printf;
          Alcotest.test_case "format leak" `Quick r1_format;
          Alcotest.test_case "hex dump" `Quick r1_hex;
          Alcotest.test_case "exception payload" `Quick r1_exception_payload;
          Alcotest.test_case "typed binding" `Quick r1_typed_binding;
          Alcotest.test_case "silent on derived" `Quick r1_silent_on_derived;
          Alcotest.test_case "out of scope" `Quick r1_out_of_scope;
        ] );
      ( "r2_constant_time",
        [
          Alcotest.test_case "polymorphic =" `Quick r2_poly_eq;
          Alcotest.test_case "String.equal" `Quick r2_string_equal;
          Alcotest.test_case "compare" `Quick r2_compare;
          Alcotest.test_case "lib/core scope" `Quick r2_core_scope;
          Alcotest.test_case "ct_equal ok" `Quick r2_silent_ct_equal;
          Alcotest.test_case "non-sensitive ok" `Quick r2_silent_non_sensitive;
        ] );
      ( "r3_determinism",
        [
          Alcotest.test_case "Random banned" `Quick r3_random;
          Alcotest.test_case "wall clock banned" `Quick r3_wall_clock;
          Alcotest.test_case "prng/clock exempt" `Quick r3_exempt_modules;
          Alcotest.test_case "Stdx.Prng ok" `Quick r3_silent_prng;
        ] );
      ( "r4_interfaces",
        [
          Alcotest.test_case "missing mli" `Quick r4_missing_mli;
          Alcotest.test_case "with mli" `Quick r4_with_mli;
        ] );
      ( "r5_partial_escapes",
        [
          Alcotest.test_case "Obj.magic" `Quick r5_obj_magic;
          Alcotest.test_case "assert false" `Quick r5_assert_false;
          Alcotest.test_case "catch-all" `Quick r5_catch_all;
          Alcotest.test_case "compliant" `Quick r5_silent_compliant;
          Alcotest.test_case "out of scope" `Quick r5_out_of_scope;
        ] );
      ( "r6_file_io",
        [
          Alcotest.test_case "open_out" `Quick r6_open_out;
          Alcotest.test_case "Out_channel" `Quick r6_out_channel;
          Alcotest.test_case "Unix write/rename" `Quick r6_unix_write;
          Alcotest.test_case "lib/store exempt" `Quick r6_store_exempt;
          Alcotest.test_case "reads + Store.Io ok" `Quick r6_reads_ok;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rule toggling" `Quick rules_toggle;
          Alcotest.test_case "allowlist parse" `Quick allow_parse;
          Alcotest.test_case "allowlist rejects" `Quick allow_rejects_garbage;
          Alcotest.test_case "allowlist suppresses" `Quick allow_suppresses;
          Alcotest.test_case "diagnostic format" `Quick diagnostic_format;
        ] );
    ]
