(* Fixture tests for the wre-lint analyzer: every rule R1–R6 must fire
   on a seeded violation and stay silent on compliant code, in and out
   of its path scope. Fixtures are inline sources parsed through the
   same compiler-libs front end the driver uses. *)

let all = Lint.Rule.all

let diags_of ?(path = "lib/crypto/fixture.ml") ?(rules = all) src =
  match Lint.Engine.lint_source ~rules ~path src with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "fixture did not parse: %s" e

let rules_fired ?path ?rules src =
  List.sort_uniq compare
    (List.map (fun d -> Lint.Rule.to_string d.Lint.Diagnostic.rule) (diags_of ?path ?rules src))

let check_fires ?path ?rules rule src =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires" rule)
    true
    (List.mem rule (rules_fired ?path ?rules src))

let check_silent ?path ?rules src =
  Alcotest.(check (list string)) "no findings" [] (rules_fired ?path ?rules src)

(* ---------------- R1: secret hygiene ---------------- *)

let r1_printf () = check_fires "R1" {| let leak ~key = Printf.printf "key=%s" key |}
let r1_format () = check_fires "R1" {| let leak mac_key = Format.eprintf "%s" mac_key |}
let r1_hex () = check_fires "R1" {| let leak ~key = Stdx.Bytes_util.to_hex key |}

let r1_exception_payload () =
  check_fires "R1" {| let f ~key = failwith ("bad " ^ key) |};
  check_fires "R1" {| let f ~key = raise (Failure key) |}

let r1_typed_binding () =
  (* Name is innocuous; the Keys.master annotation marks it secret. *)
  check_fires "R1" {| let m : Keys.master = gen () let _ = print_string m |}

let r1_silent_on_derived () =
  (* The secret flows into the PRF, not the printer: the printed value
     is a non-secret application result. *)
  check_silent {| let show ~key msg = print_string (tag_of (prf ~key msg)) |};
  check_silent {| let show x = Printf.printf "%d" x |}

let r1_out_of_scope () =
  check_silent ~path:"bench/exp_fixture.ml" {| let leak ~key = Printf.printf "%s" key |}

(* ---------------- R2: constant-time discipline ---------------- *)

let r2_poly_eq () = check_fires "R2" {| let check tag other = tag = other |}
let r2_string_equal () = check_fires "R2" {| let check ~mac x = String.equal mac x |}
let r2_compare () = check_fires "R2" {| let check ~data_key x = compare data_key x = 0 |}

let r2_core_scope () =
  check_fires "R2" ~path:"lib/core/fixture.ml" {| let hit row_tag t = row_tag = t |}

let r2_silent_ct_equal () =
  check_silent {| let check tag other = Stdx.Bytes_util.ct_equal tag other |}

let r2_silent_non_sensitive () =
  check_silent {| let f n = n = 3 |};
  (* Same comparison outside lib/crypto + lib/core: not R2's business. *)
  check_silent ~path:"lib/sqldb/fixture.ml" {| let check tag other = tag = other |}

(* ---------------- R3: determinism ---------------- *)

let r3_random () =
  check_fires "R3" ~path:"bench/exp_fixture.ml" {| let x = Random.int 10 |};
  check_fires "R3" ~path:"lib/dist/fixture.ml" {| let () = Random.self_init () |}

let r3_wall_clock () =
  check_fires "R3" ~path:"bench/exp_fixture.ml" {| let t = Unix.gettimeofday () |};
  check_fires "R3" ~path:"examples/fixture.ml" {| let t = Sys.time () |}

let r3_exempt_modules () =
  check_silent ~path:"lib/stdx/prng.ml" {| let reseed () = Random.self_init () |};
  check_silent ~path:"lib/stdx/clock.ml" {| let now () = Unix.gettimeofday () |}

let r3_silent_prng () =
  check_silent ~path:"bench/exp_fixture.ml" {| let x g = Stdx.Prng.int g 10 |}

(* ---------------- R4: interface coverage ---------------- *)

let with_temp_tree f =
  let root = Filename.temp_file "wre_lint" "" in
  Sys.remove root;
  Sys.mkdir root 0o700;
  Sys.mkdir (Filename.concat root "lib") 0o700;
  let dir = Filename.concat (Filename.concat root "lib") "m" in
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm root)
    (fun () -> f root dir)

let write_file path contents = Out_channel.with_open_text path (fun oc -> output_string oc contents)

let r4_missing_mli () =
  with_temp_tree (fun root dir ->
      write_file (Filename.concat dir "orphan.ml") "let x = 1\n";
      let diags, errors = Lint.Engine.lint_paths ~rules:all [ root ] in
      Alcotest.(check (list string)) "no errors" [] errors;
      Alcotest.(check bool) "R4 fires" true
        (List.exists (fun d -> Lint.Rule.equal d.Lint.Diagnostic.rule Lint.Rule.R4) diags))

let r4_with_mli () =
  with_temp_tree (fun root dir ->
      write_file (Filename.concat dir "covered.ml") "let x = 1\n";
      write_file (Filename.concat dir "covered.mli") "val x : int\n";
      let diags, errors = Lint.Engine.lint_paths ~rules:all [ root ] in
      Alcotest.(check (list string)) "no errors" [] errors;
      Alcotest.(check int) "silent" 0 (List.length diags))

(* ---------------- R5: partial escapes ---------------- *)

let r5_obj_magic () = check_fires "R5" ~path:"lib/sqldb/fixture.ml" {| let f x = Obj.magic x |}

let r5_assert_false () =
  check_fires "R5" ~path:"lib/sqldb/fixture.ml" {| let f () = assert false |}

let r5_catch_all () =
  check_fires "R5" ~path:"lib/sqldb/fixture.ml" {| let f g = try g () with _ -> 0 |}

let r5_silent_compliant () =
  check_silent ~path:"lib/sqldb/fixture.ml"
    {| let f g x = assert (x > 0); (try g () with Not_found -> 0) |}

let r5_out_of_scope () =
  (* bench/ and examples/ may prototype loosely; R5 guards lib/ only. *)
  check_silent ~path:"bench/fixture.ml" {| let f () = assert false |}

(* ---------------- R6: file-I/O discipline ---------------- *)

let r6_open_out () =
  check_fires "R6" ~path:"lib/sqldb/fixture.ml" {| let f path = open_out path |};
  check_fires "R6" ~path:"bench/exp_fixture.ml" {| let f path = open_out_bin path |}

let r6_out_channel () =
  check_fires "R6" ~path:"bin/fixture.ml"
    {| let f path s = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s) |}

let r6_unix_write () =
  check_fires "R6" ~path:"lib/core/fixture.ml" {| let f fd s = Unix.write_substring fd s 0 1 |};
  check_fires "R6" ~path:"bench/exp_fixture.ml" {| let f a b = Unix.rename a b |}

let r6_store_exempt () =
  (* lib/store is the one place raw writes are legal: everything else
     must route through Store.Io so failpoints can reach it. *)
  check_silent ~path:"lib/store/io.ml" {| let f path = open_out path |};
  check_silent ~path:"lib/store/wal.ml" {| let f fd s = Unix.write_substring fd s 0 1 |}

let r6_reads_ok () =
  check_silent ~path:"lib/sqldb/fixture.ml"
    {| let f path = In_channel.with_open_text path In_channel.input_all |};
  check_silent ~path:"bin/fixture.ml" {| let f path s = Store.Io.atomic_write_text ~path s |}

(* ---------------- rule toggling ---------------- *)

let rules_toggle () =
  let src = {| let check tag other = tag = other
               let f () = assert false |} in
  Alcotest.(check (list string)) "both fire" [ "R2"; "R5" ] (rules_fired src);
  Alcotest.(check (list string)) "only R5" [ "R5" ] (rules_fired ~rules:[ Lint.Rule.R5 ] src)

(* ---------------- allowlist ---------------- *)

let allow_parse () =
  match Lint.Allowlist.of_string "# comment\nR5 lib/sqldb/pager.ml:42\nR3 bench/exp.ml\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok entries -> Alcotest.(check int) "two entries" 2 (List.length entries)

let allow_rejects_garbage () =
  (match Lint.Allowlist.of_string "R42 somewhere.ml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule accepted");
  match Lint.Allowlist.of_string "justonetoken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted"

let allow_suppresses () =
  let d = List.hd (diags_of {| let f () = assert false |} ~path:"lib/x/f.ml" ~rules:all) in
  let ok s = match Lint.Allowlist.of_string s with Ok a -> a | Error e -> Alcotest.failf "%s" e in
  Alcotest.(check bool) "file-level" true (Lint.Allowlist.suppresses (ok "R5 lib/x/f.ml") d);
  Alcotest.(check bool) "line-level" true
    (Lint.Allowlist.suppresses (ok (Printf.sprintf "R5 lib/x/f.ml:%d" d.Lint.Diagnostic.line)) d);
  Alcotest.(check bool) "wrong line" false
    (Lint.Allowlist.suppresses (ok "R5 lib/x/f.ml:9999") d);
  Alcotest.(check bool) "wrong rule" false (Lint.Allowlist.suppresses (ok "R2 lib/x/f.ml") d);
  Alcotest.(check int) "unused entry reported" 1
    (List.length (Lint.Allowlist.unused (ok "R2 lib/other.ml") [ d ]))

(* ---------------- project pipeline helpers (R7–R9) ---------------- *)

let project_result ?(rules = all) units =
  Lint.Project.lint_units ~rules
    (List.map (fun (p, s) -> { Lint.Project.u_path = p; u_source = s }) units)

let project_diags ?rules units =
  let result = project_result ?rules units in
  Alcotest.(check (list string)) "no parse errors" [] result.Lint.Project.errors;
  result.Lint.Project.diagnostics

let project_rules ?rules units =
  List.sort_uniq compare
    (List.map (fun d -> Lint.Rule.to_string d.Lint.Diagnostic.rule) (project_diags ?rules units))

let check_project_fires ?rules rule units =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires" rule)
    true
    (List.mem rule (project_rules ?rules units))

let check_project_silent ?rules units =
  Alcotest.(check (list string)) "no findings" [] (project_rules ?rules units)

let r7 = [ Lint.Rule.R7 ]
let r8 = [ Lint.Rule.R8 ]
let r9 = [ Lint.Rule.R9 ]

(* ---------------- R7: secret-taint flow ---------------- *)

let r7_print_sink () =
  check_project_fires ~rules:r7 "R7"
    [ ("lib/core/fixture.ml", {| let leak ~key = Printf.printf "k=%s" key |}) ]

let r7_let_binding_flow () =
  (* Taint survives the k2 rebinding: the single-name heuristic of R1
     would miss this. *)
  check_project_fires ~rules:r7 "R7"
    [ ("lib/core/fixture.ml", {| let f ~key = let k2 = key in Printf.printf "%s" k2 |}) ]

let r7_trace_label () =
  check_project_fires ~rules:r7 "R7"
    [ ("lib/core/fixture.ml",
       {| let span ~plain_row = Obs.Trace.event "enc" ~attrs:[ ("row", plain_row) ] |}) ]

let r7_serialize_outside_store () =
  check_project_fires ~rules:r7 "R7"
    [ ("lib/core/fixture.ml", {| let dump ~key path = Store.Io.atomic_write_text ~path key |}) ];
  (* The same write inside lib/store is the WAL doing its job. *)
  check_project_silent ~rules:r7
    [ ("lib/store/fixture.ml", {| let dump ~key path = Store.Io.atomic_write_text ~path key |}) ]

let r7_exn_payload_classes () =
  (* Key material in an exception payload leaks; plaintext in an
     exception payload is the client-facing error contract. *)
  check_project_fires ~rules:r7 "R7"
    [ ("lib/core/fixture.ml", {| let f ~key = failwith ("bad " ^ key) |}) ];
  check_project_silent ~rules:r7
    [ ("lib/core/fixture.ml", {| let f ~plaintext = failwith ("unknown " ^ plaintext) |}) ]

let r7_sanitizer_clean () =
  check_project_silent ~rules:r7
    [ ("lib/core/fixture.ml",
       {| let show ~key m = Printf.printf "%s" (Crypto.Hmac.mac_hex ~key m) |}) ];
  check_project_silent ~rules:r7
    [ ("lib/core/fixture.ml",
       {| let span ~plain_row = Obs.Trace.event "enc" ~attrs:[ ("row", scrub_label plain_row) ] |}) ]

let r7_application_is_public () =
  (* Arbitrary application does not propagate: the PRF result is public. *)
  check_project_silent ~rules:r7
    [ ("lib/core/fixture.ml", {| let show ~key m = Printf.printf "%s" (tag_of (prf ~key m)) |}) ]

let r7_off_is_silent () =
  check_project_silent
    ~rules:[ Lint.Rule.R1; Lint.Rule.R2; Lint.Rule.R3; Lint.Rule.R5 ]
    [ ("lib/sqldb/fixture.ml", {| let f ~key = let k2 = key in Printf.printf "%s" k2 |}) ]

let source_a =
  {| let master_of_seed () = Keys.generate (Stdx.Prng.create 1) |}

let source_b = {| let show () = Printf.printf "master=%s" (A.master_of_seed ()) |}

let r7_cross_module () =
  (* The secret is born in module A and printed in module B: invisible
     to any single-file pass, caught with the summary table. *)
  check_project_silent ~rules:r7 [ ("lib/core/b.ml", source_b) ];
  check_project_fires ~rules:r7 "R7"
    [ ("lib/core/a.ml", source_a); ("lib/core/b.ml", source_b) ];
  let d = List.hd (project_diags ~rules:r7 [ ("lib/core/a.ml", source_a); ("lib/core/b.ml", source_b) ]) in
  Alcotest.(check string) "flagged in the consumer" "lib/core/b.ml" d.Lint.Diagnostic.file

(* ---------------- R8: domain-safety ---------------- *)

let r8_mutable_field () =
  check_project_fires ~rules:r8 "R8"
    [ ("lib/sqldb/fixture.ml", {| type t = { mutable hits : int } |}) ]

let r8_toplevel_state () =
  check_project_fires ~rules:r8 "R8"
    [ ("lib/obs/fixture.ml", {| let cache = Hashtbl.create 16 |}) ];
  check_project_fires ~rules:r8 "R8"
    [ ("lib/core/fixture.ml", {| let counter = ref 0 |}) ]

let r8_atomic_clean () =
  check_project_silent ~rules:r8
    [ ("lib/sqldb/fixture.ml",
       {| type t = { hits : int Atomic.t }
          let counter = Atomic.make 0
          let local = Domain.DLS.new_key (fun () -> 0) |}) ]

let r8_guard_annotation () =
  check_project_silent ~rules:r8
    [ ("lib/sqldb/fixture.ml",
       {| (* lint: guarded-by lock *)
          type t = { mutable hits : int; lock : Mutex.t } |}) ]

let r8_out_of_scope () =
  (* lib/stdx is not on the fan-out surface. *)
  check_project_silent ~rules:r8
    [ ("lib/stdx/fixture.ml", {| type t = { mutable hits : int } |}) ]

let r8_server_in_scope () =
  (* PR 7 put the batched-admission server on the fan-out surface:
     unguarded session state in lib/server must fire like lib/sqldb. *)
  check_project_fires ~rules:r8 "R8"
    [ ("lib/server/fixture.ml", {| type t = { mutable sessions : int } |}) ];
  check_project_silent ~rules:r8
    [ ("lib/server/fixture.ml",
       {| (* lint: guarded-by lock *)
          type t = { mutable sessions : int; lock : Mutex.t } |}) ]

let r8_reachability () =
  (* With a Task_pool user in the project, only modules it (transitively)
     references are in scope. *)
  let pool_user = ("lib/core/exec.ml", {| let run () = Task_pool.map (fun () -> A.step ()) |}) in
  let reached = ("lib/sqldb/a.ml", {| type t = { mutable x : int } let step () = () |}) in
  let unreached = ("lib/sqldb/standalone.ml", {| type t = { mutable y : int } |}) in
  let diags = project_diags ~rules:r8 [ pool_user; reached; unreached ] in
  let files = List.map (fun d -> d.Lint.Diagnostic.file) diags in
  Alcotest.(check bool) "referenced module flagged" true (List.mem "lib/sqldb/a.ml" files);
  Alcotest.(check bool) "unreferenced module not flagged" false
    (List.mem "lib/sqldb/standalone.ml" files)

let r8_off_is_silent () =
  check_project_silent ~rules:[ Lint.Rule.R5 ]
    [ ("lib/sqldb/fixture.ml", {| type t = { mutable hits : int } |}) ]

(* ---------------- R9: durability discipline ---------------- *)

let r9_rename_before_sync () =
  check_project_fires ~rules:r9 "R9"
    [ ("lib/store/fixture.ml",
       {| let publish path tmp data =
            let f = open_trunc tmp in
            write f data;
            Unix.rename tmp path |}) ]

let r9_unsynced_close () =
  check_project_fires ~rules:r9 "R9"
    [ ("lib/store/fixture.ml",
       {| let save path data =
            let f = open_trunc path in
            write f data;
            Unix.close f |}) ]

let r9_clean_sequence () =
  check_project_silent ~rules:r9
    [ ("lib/store/fixture.ml",
       {| let publish path tmp data =
            let f = open_trunc tmp in
            write f data;
            fsync f;
            Unix.close f;
            Unix.rename tmp path;
            fsync_dir (Filename.dirname path) |}) ]

let r9_group_commit_ok () =
  (* A write with no following close/rename (the WAL's group-commit
     append) is legal: fsync happens on the batch boundary. *)
  check_project_silent ~rules:r9
    [ ("lib/store/fixture.ml", {| let append t payload = write t.file payload |}) ]

let r9_out_of_scope () =
  check_project_silent ~rules:r9
    [ ("lib/sqldb/fixture.ml",
       {| let publish path tmp data =
            let f = open_trunc tmp in
            write f data;
            Unix.rename tmp path |}) ]

let r9_off_is_silent () =
  check_project_silent ~rules:[ Lint.Rule.R3 ]
    [ ("lib/store/fixture.ml",
       {| let save path data =
            let f = open_trunc path in
            write f data;
            Unix.close f |}) ]

(* ---------------- allowlist vs the new rules ---------------- *)

let allow_new_rules () =
  let ok s = match Lint.Allowlist.of_string s with Ok a -> a | Error e -> Alcotest.failf "%s" e in
  let suppressed entry units rules =
    match project_diags ~rules units with
    | [] -> Alcotest.fail "expected a finding to suppress"
    | d :: _ -> Lint.Allowlist.suppresses (ok entry) d
  in
  Alcotest.(check bool) "R7 entry" true
    (suppressed "R7 lib/core/fixture.ml"
       [ ("lib/core/fixture.ml", {| let leak ~key = Printf.printf "%s" key |}) ]
       r7);
  Alcotest.(check bool) "R8 entry" true
    (suppressed "R8 lib/sqldb/fixture.ml"
       [ ("lib/sqldb/fixture.ml", {| type t = { mutable hits : int } |}) ]
       r8);
  Alcotest.(check bool) "R9 entry" true
    (suppressed "R9 lib/store/fixture.ml"
       [ ("lib/store/fixture.ml",
          {| let save p d = let f = open_trunc p in write f d; Unix.close f |}) ]
       r9)

let allow_path_suffix () =
  (* Absolute and ./-relative diagnostic paths match the same
     repo-relative entry. *)
  let ok s = match Lint.Allowlist.of_string s with Ok a -> a | Error e -> Alcotest.failf "%s" e in
  let entry = ok "R7 lib/core/fixture.ml" in
  let diag_at path =
    List.hd (project_diags ~rules:r7 [ (path, {| let leak ~key = Printf.printf "%s" key |}) ])
  in
  Alcotest.(check bool) "absolute path" true
    (Lint.Allowlist.suppresses entry (diag_at "/tmp/work/lib/core/fixture.ml"));
  Alcotest.(check bool) "./-relative path" true
    (Lint.Allowlist.suppresses entry (diag_at "./lib/core/fixture.ml"));
  Alcotest.(check bool) "different file does not match" false
    (Lint.Allowlist.suppresses entry (diag_at "/tmp/work/lib/core/other_fixture.ml"))

(* ---------------- severity + stats ---------------- *)

let severity_levels () =
  Alcotest.(check string) "R7 is an error" "error"
    Lint.Rule.(severity_string (severity R7));
  Alcotest.(check string) "R4 is a warning" "warning"
    Lint.Rule.(severity_string (severity R4))

let stats_reported () =
  let result =
    project_result ~rules:r7
      [ ("lib/core/fixture.ml", {| let leak ~key = Printf.printf "%s" key |}) ]
  in
  Alcotest.(check int) "one unit" 1 result.Lint.Project.n_units;
  match
    List.find_opt
      (fun s -> Lint.Rule.equal s.Lint.Project.sr_rule Lint.Rule.R7)
      result.Lint.Project.stats
  with
  | None -> Alcotest.fail "no R7 stat row"
  | Some s ->
      Alcotest.(check int) "R7 hit counted" 1 s.Lint.Project.hits;
      Alcotest.(check bool) "wall time measured" true (s.Lint.Project.wall_ns >= 0.0)

(* ---------------- diagnostics format ---------------- *)

let diagnostic_format () =
  let d = List.hd (diags_of {| let check tag other = tag = other |}) in
  let s = Lint.Diagnostic.to_string d in
  Alcotest.(check bool) "has file:line" true
    (String.length s > 0 && String.sub s 0 (String.length "lib/crypto/fixture.ml:")
                            = "lib/crypto/fixture.ml:");
  Alcotest.(check bool) "names the rule" true
    (List.exists (fun r -> r = "R2") (rules_fired {| let check tag other = tag = other |}))

let () =
  Alcotest.run "lint"
    [
      ( "r1_secret_hygiene",
        [
          Alcotest.test_case "printf leak" `Quick r1_printf;
          Alcotest.test_case "format leak" `Quick r1_format;
          Alcotest.test_case "hex dump" `Quick r1_hex;
          Alcotest.test_case "exception payload" `Quick r1_exception_payload;
          Alcotest.test_case "typed binding" `Quick r1_typed_binding;
          Alcotest.test_case "silent on derived" `Quick r1_silent_on_derived;
          Alcotest.test_case "out of scope" `Quick r1_out_of_scope;
        ] );
      ( "r2_constant_time",
        [
          Alcotest.test_case "polymorphic =" `Quick r2_poly_eq;
          Alcotest.test_case "String.equal" `Quick r2_string_equal;
          Alcotest.test_case "compare" `Quick r2_compare;
          Alcotest.test_case "lib/core scope" `Quick r2_core_scope;
          Alcotest.test_case "ct_equal ok" `Quick r2_silent_ct_equal;
          Alcotest.test_case "non-sensitive ok" `Quick r2_silent_non_sensitive;
        ] );
      ( "r3_determinism",
        [
          Alcotest.test_case "Random banned" `Quick r3_random;
          Alcotest.test_case "wall clock banned" `Quick r3_wall_clock;
          Alcotest.test_case "prng/clock exempt" `Quick r3_exempt_modules;
          Alcotest.test_case "Stdx.Prng ok" `Quick r3_silent_prng;
        ] );
      ( "r4_interfaces",
        [
          Alcotest.test_case "missing mli" `Quick r4_missing_mli;
          Alcotest.test_case "with mli" `Quick r4_with_mli;
        ] );
      ( "r5_partial_escapes",
        [
          Alcotest.test_case "Obj.magic" `Quick r5_obj_magic;
          Alcotest.test_case "assert false" `Quick r5_assert_false;
          Alcotest.test_case "catch-all" `Quick r5_catch_all;
          Alcotest.test_case "compliant" `Quick r5_silent_compliant;
          Alcotest.test_case "out of scope" `Quick r5_out_of_scope;
        ] );
      ( "r6_file_io",
        [
          Alcotest.test_case "open_out" `Quick r6_open_out;
          Alcotest.test_case "Out_channel" `Quick r6_out_channel;
          Alcotest.test_case "Unix write/rename" `Quick r6_unix_write;
          Alcotest.test_case "lib/store exempt" `Quick r6_store_exempt;
          Alcotest.test_case "reads + Store.Io ok" `Quick r6_reads_ok;
        ] );
      ( "r7_secret_taint",
        [
          Alcotest.test_case "print sink" `Quick r7_print_sink;
          Alcotest.test_case "let-binding flow" `Quick r7_let_binding_flow;
          Alcotest.test_case "trace label" `Quick r7_trace_label;
          Alcotest.test_case "serialize outside store" `Quick r7_serialize_outside_store;
          Alcotest.test_case "exn payload classes" `Quick r7_exn_payload_classes;
          Alcotest.test_case "sanitizers clean" `Quick r7_sanitizer_clean;
          Alcotest.test_case "application is public" `Quick r7_application_is_public;
          Alcotest.test_case "off is silent" `Quick r7_off_is_silent;
          Alcotest.test_case "cross-module flow" `Quick r7_cross_module;
        ] );
      ( "r8_domain_safety",
        [
          Alcotest.test_case "mutable field" `Quick r8_mutable_field;
          Alcotest.test_case "toplevel ref/Hashtbl" `Quick r8_toplevel_state;
          Alcotest.test_case "Atomic/DLS clean" `Quick r8_atomic_clean;
          Alcotest.test_case "guarded-by annotation" `Quick r8_guard_annotation;
          Alcotest.test_case "out of scope" `Quick r8_out_of_scope;
          Alcotest.test_case "lib/server in scope" `Quick r8_server_in_scope;
          Alcotest.test_case "fan-out reachability" `Quick r8_reachability;
          Alcotest.test_case "off is silent" `Quick r8_off_is_silent;
        ] );
      ( "r9_durability",
        [
          Alcotest.test_case "rename before sync" `Quick r9_rename_before_sync;
          Alcotest.test_case "unsynced close" `Quick r9_unsynced_close;
          Alcotest.test_case "clean sequence" `Quick r9_clean_sequence;
          Alcotest.test_case "group commit ok" `Quick r9_group_commit_ok;
          Alcotest.test_case "out of scope" `Quick r9_out_of_scope;
          Alcotest.test_case "off is silent" `Quick r9_off_is_silent;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rule toggling" `Quick rules_toggle;
          Alcotest.test_case "allowlist parse" `Quick allow_parse;
          Alcotest.test_case "allowlist rejects" `Quick allow_rejects_garbage;
          Alcotest.test_case "allowlist suppresses" `Quick allow_suppresses;
          Alcotest.test_case "allowlist new rules" `Quick allow_new_rules;
          Alcotest.test_case "allowlist path suffix" `Quick allow_path_suffix;
          Alcotest.test_case "severity levels" `Quick severity_levels;
          Alcotest.test_case "per-rule stats" `Quick stats_reported;
          Alcotest.test_case "diagnostic format" `Quick diagnostic_format;
        ] );
    ]
