(* Unit and property tests for the stdx utility library. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Stdx.Prng.create 42L and b = Stdx.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stdx.Prng.int64 a) (Stdx.Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Stdx.Prng.create 1L and b = Stdx.Prng.create 2L in
  let differ = ref false in
  for _ = 1 to 10 do
    if Stdx.Prng.int64 a <> Stdx.Prng.int64 b then differ := true
  done;
  check_bool "streams differ" true !differ

let test_prng_copy_independent () =
  let a = Stdx.Prng.create 7L in
  ignore (Stdx.Prng.int64 a);
  let b = Stdx.Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Stdx.Prng.int64 a) (Stdx.Prng.int64 b)

let test_prng_split_differs () =
  let a = Stdx.Prng.create 7L in
  let b = Stdx.Prng.split a in
  check_bool "split stream differs" true (Stdx.Prng.int64 a <> Stdx.Prng.int64 b)

let test_prng_int_bounds () =
  let g = Stdx.Prng.create 3L in
  for _ = 1 to 1000 do
    let v = Stdx.Prng.int g 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Stdx.Prng.int g 0))

let test_prng_int_covers_all_residues () =
  let g = Stdx.Prng.create 11L in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    seen.(Stdx.Prng.int g 7) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "residue %d hit" i) true s) seen

let test_prng_float_range () =
  let g = Stdx.Prng.create 5L in
  for _ = 1 to 1000 do
    let f = Stdx.Prng.float g in
    check_bool "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_float_mean () =
  let g = Stdx.Prng.create 9L in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Stdx.Prng.float g
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_prng_export_restore () =
  let g = Stdx.Prng.create 17L in
  for _ = 1 to 100 do
    ignore (Stdx.Prng.int64 g)
  done;
  let state = Stdx.Prng.export g in
  Alcotest.(check int) "export is 32 bytes" 32 (String.length state);
  (* The continuation from an exported state must equal the original
     stream — this is what lets a reopened store resume salt choices. *)
  let h = Stdx.Prng.import state in
  let expected = Array.init 50 (fun _ -> Stdx.Prng.int64 g) in
  Array.iter (fun v -> Alcotest.(check int64) "import continues stream" v (Stdx.Prng.int64 h)) expected;
  (* restore overwrites in place: rewind g back to the checkpoint. *)
  Stdx.Prng.restore g state;
  Array.iter (fun v -> Alcotest.(check int64) "restore rewinds stream" v (Stdx.Prng.int64 g)) expected;
  Alcotest.check_raises "wrong length rejected"
    (Invalid_argument "Prng.restore: state must be 32 bytes") (fun () ->
      Stdx.Prng.restore g "short");
  Alcotest.check_raises "all-zero rejected"
    (Invalid_argument "Prng.restore: all-zero state is not a valid xoshiro state") (fun () ->
      Stdx.Prng.restore g (String.make 32 '\000'))

let test_prng_bytes () =
  let g = Stdx.Prng.create 13L in
  let b = Stdx.Prng.bytes g 33 in
  check_int "length" 33 (Bytes.length b);
  let b2 = Stdx.Prng.bytes g 33 in
  check_bool "subsequent buffers differ" true (b <> b2)

let test_splitmix_known () =
  (* splitmix64(seed=0) first output, cross-checked against the
     reference implementation. *)
  let sm = Stdx.Prng.Splitmix.create 0L in
  Alcotest.(check int64) "first" 0xE220A8397B1DCDAFL (Stdx.Prng.Splitmix.next sm)

(* ---------------- Vec ---------------- *)

let test_vec_push_get () =
  let v = Stdx.Vec.create () in
  for i = 0 to 99 do
    Stdx.Vec.push v (i * i)
  done;
  check_int "length" 100 (Stdx.Vec.length v);
  check_int "get 7" 49 (Stdx.Vec.get v 7);
  Stdx.Vec.set v 7 0;
  check_int "set" 0 (Stdx.Vec.get v 7)

let test_vec_bounds () =
  let v = Stdx.Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index -1 out of bounds (len 3)")
    (fun () -> ignore (Stdx.Vec.get v (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Vec: index 3 out of bounds (len 3)")
    (fun () -> ignore (Stdx.Vec.get v 3))

let test_vec_pop () =
  let v = Stdx.Vec.of_list [ 1; 2 ] in
  Alcotest.(check (option int)) "pop 2" (Some 2) (Stdx.Vec.pop v);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Stdx.Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Stdx.Vec.pop v)

let test_vec_iter_fold_map () =
  let v = Stdx.Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Stdx.Vec.fold_left ( + ) 0 v);
  let doubled = Stdx.Vec.map (fun x -> 2 * x) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8 ] (Stdx.Vec.to_list doubled);
  let acc = ref [] in
  Stdx.Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check_int "iteri count" 4 (List.length !acc);
  check_bool "exists" true (Stdx.Vec.exists (fun x -> x = 3) v);
  check_bool "not exists" false (Stdx.Vec.exists (fun x -> x = 9) v)

let test_vec_sort_clear () =
  let v = Stdx.Vec.of_list [ 3; 1; 2 ] in
  Stdx.Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Stdx.Vec.to_list v);
  Stdx.Vec.clear v;
  check_bool "empty" true (Stdx.Vec.is_empty v)

(* ---------------- Stats ---------------- *)

let test_stats_mean_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stdx.Stats.mean xs);
  check_float "variance" (32.0 /. 7.0) (Stdx.Stats.variance xs);
  check_float "stddev" (sqrt (32.0 /. 7.0)) (Stdx.Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stdx.Stats.median xs);
  check_float "p0" 1.0 (Stdx.Stats.percentile xs 0.0);
  check_float "p100" 5.0 (Stdx.Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stdx.Stats.percentile xs 25.0)

let test_stats_pearson () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_float "perfect" 1.0 (Stdx.Stats.pearson xs ys);
  let zs = [| 8.0; 6.0; 4.0; 2.0 |] in
  check_float "anti" (-1.0) (Stdx.Stats.pearson xs zs);
  check_bool "constant is nan" true (Float.is_nan (Stdx.Stats.pearson xs [| 1.0; 1.0; 1.0; 1.0 |]))

let test_stats_spearman () =
  (* Monotone but nonlinear: Spearman 1, Pearson < 1. *)
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = Array.map (fun x -> exp x) xs in
  check_float "spearman" 1.0 (Stdx.Stats.spearman xs ys);
  check_bool "pearson below" true (Stdx.Stats.pearson xs ys < 1.0)

let test_stats_histogram () =
  let xs = [| 0.0; 0.1; 0.5; 0.9; 1.0 |] in
  let h = Stdx.Stats.histogram ~bins:2 xs in
  check_int "total preserved" 5 (Array.fold_left ( + ) 0 h.counts);
  check_float "lo" 0.0 h.lo;
  check_float "hi" 1.0 h.hi

let test_stats_total_variation () =
  check_float "identical" 0.0 (Stdx.Stats.total_variation [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  check_float "disjoint" 1.0 (Stdx.Stats.total_variation [| 1.0; 0.0 |] [| 0.0; 1.0 |]);
  check_float "half" 0.5 (Stdx.Stats.total_variation [| 1.0; 0.0 |] [| 0.5; 0.5 |])

(* ---------------- Sampling ---------------- *)

let test_weighted_respects_zero () =
  let g = Stdx.Prng.create 17L in
  for _ = 1 to 500 do
    let i = Stdx.Sampling.weighted g [| 0.0; 1.0; 0.0 |] in
    check_int "always middle" 1 i
  done

let test_weighted_rejects_bad_input () =
  let g = Stdx.Prng.create 17L in
  Alcotest.check_raises "negative" (Invalid_argument "Sampling: negative or NaN weight")
    (fun () -> ignore (Stdx.Sampling.weighted g [| 1.0; -1.0 |]));
  Alcotest.check_raises "zero sum" (Invalid_argument "Sampling: weights must have positive sum")
    (fun () -> ignore (Stdx.Sampling.weighted g [| 0.0; 0.0 |]))

let chi_square_uniformity counts expected =
  let acc = ref 0.0 in
  Array.iter (fun c -> acc := !acc +. (((float_of_int c -. expected) ** 2.0) /. expected)) counts;
  !acc

let test_alias_matches_weights () =
  let g = Stdx.Prng.create 23L in
  let w = [| 0.1; 0.2; 0.3; 0.4 |] in
  let alias = Stdx.Sampling.Alias.create w in
  let n = 40000 in
  let counts = Array.make 4 0 in
  for _ = 1 to n do
    let i = Stdx.Sampling.Alias.sample alias g in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      check_bool (Printf.sprintf "weight %d" i) true (Float.abs (freq -. w.(i)) < 0.02))
    counts

let test_alias_single () =
  let g = Stdx.Prng.create 29L in
  let alias = Stdx.Sampling.Alias.create [| 5.0 |] in
  check_int "only index" 0 (Stdx.Sampling.Alias.sample alias g);
  check_int "size" 1 (Stdx.Sampling.Alias.size alias)

let test_cdf_matches_weights () =
  let g = Stdx.Prng.create 41L in
  let w = [| 0.1; 0.2; 0.3; 0.4 |] in
  let cdf = Stdx.Sampling.Cdf.create w in
  check_int "size" 4 (Stdx.Sampling.Cdf.size cdf);
  let n = 40000 in
  let counts = Array.make 4 0 in
  for _ = 1 to n do
    let i = Stdx.Sampling.Cdf.sample cdf g in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      check_bool (Printf.sprintf "weight %d" i) true (Float.abs (freq -. w.(i)) < 0.02))
    counts

let test_cdf_respects_zero () =
  let g = Stdx.Prng.create 43L in
  let cdf = Stdx.Sampling.Cdf.create [| 0.0; 1.0; 0.0 |] in
  for _ = 1 to 500 do
    check_int "only positive-weight index" 1 (Stdx.Sampling.Cdf.sample cdf g)
  done

let test_cdf_rejects_bad_input () =
  Alcotest.check_raises "negative" (Invalid_argument "Sampling: negative or NaN weight")
    (fun () -> ignore (Stdx.Sampling.Cdf.create [| 1.0; -1.0 |]));
  Alcotest.check_raises "zero sum" (Invalid_argument "Sampling: weights must have positive sum")
    (fun () -> ignore (Stdx.Sampling.Cdf.create [| 0.0; 0.0 |]))

let test_weighted_norm_agrees () =
  (* On normalized weights, weighted_norm must draw the same index as
     weighted given the same PRNG stream. *)
  let w = [| 0.25; 0.25; 0.5 |] in
  let g1 = Stdx.Prng.create 47L and g2 = Stdx.Prng.create 47L in
  for _ = 1 to 1000 do
    check_int "same index" (Stdx.Sampling.weighted g1 w) (Stdx.Sampling.weighted_norm g2 w)
  done

(* ---------------- Task_pool ---------------- *)

let test_pool_parallel_init_matches () =
  let f i = (i * i) + 3 in
  List.iter
    (fun domains ->
      Stdx.Task_pool.with_pool ~domains (fun pool ->
          check_int "domains" domains (Stdx.Task_pool.domains pool);
          Alcotest.(check (array int))
            (Printf.sprintf "%d domains" domains)
            (Array.init 97 f)
            (Stdx.Task_pool.parallel_init pool 97 f);
          Alcotest.(check (array int)) "empty" [||] (Stdx.Task_pool.parallel_init pool 0 f)))
    [ 1; 2; 4 ]

let test_pool_propagates_exception () =
  Stdx.Task_pool.with_pool ~domains:2 (fun pool ->
      check_bool "raises" true
        (match
           Stdx.Task_pool.parallel_init pool 8 (fun i ->
               if i = 5 then failwith "boom" else i)
         with
        | (_ : int array) -> false
        | exception Failure msg -> msg = "boom");
      (* The pool survives a failed batch. *)
      Alcotest.(check (array int))
        "still usable" (Array.init 4 Fun.id)
        (Stdx.Task_pool.parallel_init pool 4 Fun.id))

let test_pool_rejects_bad_args () =
  check_bool "domains < 1" true
    (match Stdx.Task_pool.with_pool ~domains:0 (fun _ -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

exception Chunk_died

(* Regression (PR 7): the old re-raise used [raise], which rewrote the
   backtrace to point at [parallel_init] itself. The backtrace must
   reach back into the chunk that died. *)
let[@inline never] chunk_that_dies () = raise Chunk_died

let test_pool_preserves_backtrace () =
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was)
    (fun () ->
      Stdx.Task_pool.with_pool ~domains:2 (fun pool ->
          match
            Stdx.Task_pool.parallel_init pool 8 (fun i ->
                if i = 3 then chunk_that_dies () else i)
          with
          | (_ : int array) -> Alcotest.fail "expected Chunk_died"
          | exception Chunk_died ->
              let bt = Printexc.get_backtrace () in
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
                go 0
              in
              check_bool
                (Printf.sprintf "backtrace reaches the chunk: %s" bt)
                true
                (contains bt "test_stdx")))

(* Regression (PR 7): a concurrent shutdown makes [submit] raise after
   [pending] was already set; the old code then waited forever for
   helpers that never reached the queue. The call must raise promptly
   instead of deadlocking. *)
let test_pool_submit_failure_does_not_deadlock () =
  let pool = Stdx.Task_pool.create ~domains:4 in
  Stdx.Task_pool.shutdown pool;
  check_bool "raises Invalid_argument" true
    (match Stdx.Task_pool.parallel_init pool 8 Fun.id with
    | (_ : int array) -> false
    | exception Invalid_argument _ -> true)

(* ---------------- Clock ---------------- *)

let test_clock_monotonic () =
  let prev = ref (Stdx.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Stdx.Clock.now_ns () in
    check_bool "non-decreasing" true (t >= !prev);
    prev := t
  done;
  let (), ns = Stdx.Clock.time_it (fun () -> Sys.opaque_identity (ignore (Array.init 1000 Fun.id))) in
  check_bool "time_it non-negative" true (ns >= 0.0)

let test_shuffle_is_permutation () =
  let g = Stdx.Prng.create 31L in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Stdx.Sampling.shuffle g b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" a sorted;
  check_bool "actually shuffled" true (b <> a)

let test_shuffle_uniform_position () =
  (* Element 0's final position should be ~uniform. *)
  let g = Stdx.Prng.create 37L in
  let n = 5 and trials = 20000 in
  let counts = Array.make n 0 in
  for _ = 1 to trials do
    let a = Array.init n Fun.id in
    Stdx.Sampling.shuffle g a;
    let pos = ref 0 in
    Array.iteri (fun i x -> if x = 0 then pos := i) a;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  let expected = float_of_int trials /. float_of_int n in
  check_bool "chi-square small" true (chi_square_uniformity counts expected < 20.0)

(* ---------------- Bytes_util ---------------- *)

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xffABC" in
  Alcotest.(check string) "roundtrip" s (Stdx.Bytes_util.of_hex (Stdx.Bytes_util.to_hex s));
  Alcotest.(check string) "known" "00" (Stdx.Bytes_util.to_hex "\x00")

let test_hex_rejects () =
  Alcotest.check_raises "odd" (Invalid_argument "Bytes_util.of_hex: odd length") (fun () ->
      ignore (Stdx.Bytes_util.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Bytes_util.of_hex: not a hex digit")
    (fun () -> ignore (Stdx.Bytes_util.of_hex "zz"))

let test_u64_roundtrip () =
  let b = Bytes.create 8 in
  Stdx.Bytes_util.put_u64_be b 0 0x0123456789ABCDEFL;
  Alcotest.(check int64) "be" 0x0123456789ABCDEFL
    (Stdx.Bytes_util.get_u64_be (Bytes.to_string b) 0);
  Stdx.Bytes_util.put_u64_le b 0 0x0123456789ABCDEFL;
  Alcotest.(check int64) "le" 0x0123456789ABCDEFL
    (Stdx.Bytes_util.get_u64_le (Bytes.to_string b) 0)

let test_length_prefixed_unambiguous () =
  let a = Stdx.Bytes_util.length_prefixed [ "ab"; "c" ] in
  let b = Stdx.Bytes_util.length_prefixed [ "a"; "bc" ] in
  check_bool "different splits differ" true (a <> b)

let test_xor_into () =
  let dst = Bytes.of_string "\x0f\x0f" in
  Stdx.Bytes_util.xor_into ~src:"\xff\x00" ~dst ~len:2;
  Alcotest.(check string) "xored" "\xf0\x0f" (Bytes.to_string dst)

let test_ct_equal () =
  let ct = Stdx.Bytes_util.ct_equal in
  check_bool "equal" true (ct "abcdef" "abcdef");
  check_bool "empty" true (ct "" "");
  check_bool "differs mid" false (ct "abcdef" "abcxef");
  check_bool "differs first byte" false (ct "\x00bcd" "\x01bcd");
  check_bool "differs last byte" false (ct "abcd\x00" "abcd\x01");
  check_bool "length mismatch" false (ct "abc" "abcd");
  check_bool "prefix vs empty" false (ct "" "a");
  check_bool "high bytes" true (ct "\xff\x80\x7f" "\xff\x80\x7f")

(* ---------------- Table_fmt ---------------- *)

let test_table_fmt () =
  let t = Stdx.Table_fmt.create [ "a"; "long-header" ] in
  Stdx.Table_fmt.add_row t [ "x" ];
  Stdx.Table_fmt.add_row t [ "yy"; "z" ];
  let out = Stdx.Table_fmt.render t in
  check_bool "contains header" true
    (String.length out > 0 && String.sub out 0 1 = "a");
  Alcotest.check_raises "too many cells" (Invalid_argument "Table_fmt.add_row: too many cells")
    (fun () -> Stdx.Table_fmt.add_row t [ "1"; "2"; "3" ])

(* ---------------- QCheck properties ---------------- *)

let qcheck_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip on random strings" ~count:200 QCheck.string (fun s ->
      Stdx.Bytes_util.of_hex (Stdx.Bytes_util.to_hex s) = s)

let qcheck_ct_equal_agrees =
  QCheck.Test.make ~name:"ct_equal agrees with structural equality" ~count:500
    QCheck.(pair string string)
    (fun (a, b) -> Stdx.Bytes_util.ct_equal a b = (a = b))

let qcheck_length_prefixed_injective =
  QCheck.Test.make ~name:"length_prefixed is injective" ~count:200
    QCheck.(pair (list string) (list string))
    (fun (a, b) ->
      if a = b then true
      else Stdx.Bytes_util.length_prefixed a <> Stdx.Bytes_util.length_prefixed b)

let qcheck_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Stdx.Vec.to_list (Stdx.Vec.of_list l) = l)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (l, p) ->
      let xs = Array.of_list l in
      let v = Stdx.Stats.percentile xs p in
      let lo = Array.fold_left min xs.(0) xs and hi = Array.fold_left max xs.(0) xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let qcheck_alias_in_range =
  QCheck.Test.make ~name:"alias sample within range" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (float_range 0.01 10.0))
    (fun l ->
      let w = Array.of_list l in
      let alias = Stdx.Sampling.Alias.create w in
      let g = Stdx.Prng.create 1L in
      let ok = ref true in
      for _ = 1 to 50 do
        let i = Stdx.Sampling.Alias.sample alias g in
        if i < 0 || i >= Array.length w then ok := false
      done;
      !ok)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "stdx"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split_differs;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int covers residues" `Quick test_prng_int_covers_all_residues;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "export/restore" `Quick test_prng_export_restore;
          Alcotest.test_case "bytes" `Quick test_prng_bytes;
          Alcotest.test_case "splitmix vector" `Quick test_splitmix_known;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "iter/fold/map" `Quick test_vec_iter_fold_map;
          Alcotest.test_case "sort/clear" `Quick test_vec_sort_clear;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "pearson" `Quick test_stats_pearson;
          Alcotest.test_case "spearman" `Quick test_stats_spearman;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "total variation" `Quick test_stats_total_variation;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "weighted zero weight" `Quick test_weighted_respects_zero;
          Alcotest.test_case "weighted bad input" `Quick test_weighted_rejects_bad_input;
          Alcotest.test_case "alias frequencies" `Quick test_alias_matches_weights;
          Alcotest.test_case "alias single" `Quick test_alias_single;
          Alcotest.test_case "cdf frequencies" `Quick test_cdf_matches_weights;
          Alcotest.test_case "cdf zero weight" `Quick test_cdf_respects_zero;
          Alcotest.test_case "cdf bad input" `Quick test_cdf_rejects_bad_input;
          Alcotest.test_case "weighted_norm agrees" `Quick test_weighted_norm_agrees;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle uniformity" `Quick test_shuffle_uniform_position;
        ] );
      ( "bytes_util",
        [
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex rejects" `Quick test_hex_rejects;
          Alcotest.test_case "u64 roundtrip" `Quick test_u64_roundtrip;
          Alcotest.test_case "length_prefixed" `Quick test_length_prefixed_unambiguous;
          Alcotest.test_case "xor_into" `Quick test_xor_into;
          Alcotest.test_case "ct_equal" `Quick test_ct_equal;
        ] );
      ("table_fmt", [ Alcotest.test_case "render" `Quick test_table_fmt ]);
      ( "task_pool",
        [
          Alcotest.test_case "parallel_init matches Array.init" `Quick
            test_pool_parallel_init_matches;
          Alcotest.test_case "exception propagation" `Quick test_pool_propagates_exception;
          Alcotest.test_case "bad args" `Quick test_pool_rejects_bad_args;
          Alcotest.test_case "backtrace preserved" `Quick test_pool_preserves_backtrace;
          Alcotest.test_case "submit failure no deadlock" `Quick
            test_pool_submit_failure_does_not_deadlock;
        ] );
      ("clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
      ( "properties",
        q
          [
            qcheck_hex_roundtrip;
            qcheck_ct_equal_agrees;
            qcheck_length_prefixed_injective;
            qcheck_vec_roundtrip;
            qcheck_percentile_bounds;
            qcheck_alias_in_range;
          ] );
    ]
