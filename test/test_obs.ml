(* Tests for the observability substrate (lib/obs): metrics registry
   semantics, histogram percentile accuracy within the log-bucket error
   bound, lock-free updates under Task_pool parallelism, and trace span
   structure/rendering. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ---------------- Counters and gauges ---------------- *)

let test_counter_basics () =
  Obs.Metrics.reset_all ();
  let c = Obs.Metrics.counter "test.counter_basics" in
  check_int "starts at zero" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  check_int "incr + add" 42 (Obs.Metrics.counter_value c);
  (* Registration is idempotent: the same name is the same counter. *)
  let c' = Obs.Metrics.counter "test.counter_basics" in
  Obs.Metrics.incr c';
  check_int "same instrument under the name" 43 (Obs.Metrics.counter_value c);
  check_bool "listed in the registry" true
    (List.mem_assoc "test.counter_basics" (Obs.Metrics.counters ()));
  let g = Obs.Metrics.gauge "test.gauge_basics" in
  Obs.Metrics.set_gauge g 7;
  Obs.Metrics.set_gauge g 5;
  check_int "gauge last-write-wins" 5 (Obs.Metrics.gauge_value g);
  Obs.Metrics.reset_all ();
  check_int "reset_all zeroes counters" 0 (Obs.Metrics.counter_value c);
  check_int "reset_all zeroes gauges" 0 (Obs.Metrics.gauge_value g)

let test_concurrent_counters () =
  (* Increments from pool workers must never be lost: the registry is
     the one piece of shared mutable state the parallel ingestion
     pipeline touches from every domain. *)
  let c = Obs.Metrics.counter "test.concurrent" in
  let h = Obs.Metrics.histogram "test.concurrent_hist" in
  let before = Obs.Metrics.counter_value c in
  let tasks = 64 and per_task = 1000 in
  Stdx.Task_pool.with_pool ~domains:4 (fun pool ->
      Stdx.Task_pool.parallel_iter pool tasks (fun _ ->
          for i = 1 to per_task do
            Obs.Metrics.incr c;
            Obs.Metrics.observe h (float_of_int i)
          done));
  check_int "no lost counter increments" (tasks * per_task)
    (Obs.Metrics.counter_value c - before);
  check_int "no lost histogram samples" (tasks * per_task)
    (Obs.Metrics.summarize h).count

(* ---------------- Histograms ---------------- *)

(* The log-scale buckets (4 per decade) bound percentile estimates to a
   factor of 10^0.25 of the true value. *)
let bucket_ratio = 10.0 ** 0.25

let within_bucket_error ~expect actual =
  actual >= expect /. bucket_ratio && actual <= expect *. bucket_ratio

let test_histogram_percentiles () =
  let h = Obs.Metrics.histogram "test.percentiles" in
  (* 1..10_000: percentile p sits near p% of the range. *)
  for i = 1 to 10_000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let s = Obs.Metrics.summarize h in
  check_int "count" 10_000 s.count;
  check_bool "p50 within log-bucket error" true (within_bucket_error ~expect:5_000.0 s.p50_ns);
  check_bool "p95 within log-bucket error" true (within_bucket_error ~expect:9_500.0 s.p95_ns);
  check_bool "p99 within log-bucket error" true (within_bucket_error ~expect:9_900.0 s.p99_ns);
  check_bool "max is exact, not bucket-rounded" true (s.max_ns = 10_000.0);
  check_bool "mean is exact" true (abs_float (s.mean_ns -. 5_000.5) < 0.5);
  check_bool "percentiles monotone" true
    (s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
  check_bool "p100 capped by observed max" true (Obs.Metrics.percentile h 100.0 <= s.max_ns)

let test_histogram_edges () =
  let h = Obs.Metrics.histogram "test.hist_edges" in
  let s0 = Obs.Metrics.summarize h in
  check_int "empty count" 0 s0.count;
  check_bool "empty summary all-zero" true
    (s0.mean_ns = 0.0 && s0.p50_ns = 0.0 && s0.p99_ns = 0.0 && s0.max_ns = 0.0);
  (* Negative / sub-ns / huge samples must not crash or escape range. *)
  Obs.Metrics.observe h (-5.0);
  Obs.Metrics.observe h 0.0;
  Obs.Metrics.observe h 1e20;
  let s = Obs.Metrics.summarize h in
  check_int "all samples counted" 3 s.count;
  check_bool "percentile finite" true (Float.is_finite (Obs.Metrics.percentile h 50.0));
  let x = Obs.Metrics.time h (fun () -> 17) in
  check_int "time returns the thunk's result" 17 x;
  check_int "time recorded a sample" 4 (Obs.Metrics.summarize h).count

(* ---------------- Tracing ---------------- *)

let test_trace_spans () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_enabled false)
    (fun () ->
      let r =
        Obs.Trace.with_span "outer" (fun () ->
            Obs.Trace.with_span ~attrs:[ ("k", "v") ] "inner" (fun () -> ());
            Obs.Trace.event "point";
            Obs.Trace.add ~name:"premeasured" ~start_ns:1.0 ~dur_ns:2.0 ();
            "done")
      in
      check_bool "with_span returns thunk result" true (r = "done");
      let spans = Obs.Trace.spans () in
      check_int "four spans recorded" 4 (List.length spans);
      let find name = List.find (fun s -> s.Obs.Trace.name = name) spans in
      let outer = find "outer" and inner = find "inner" in
      check_bool "outer is a root" true (outer.Obs.Trace.parent = None);
      check_bool "inner nests under outer" true
        (inner.Obs.Trace.parent = Some outer.Obs.Trace.id);
      check_bool "event nests under outer" true
        ((find "point").Obs.Trace.parent = Some outer.Obs.Trace.id);
      check_bool "event has zero duration" true ((find "point").Obs.Trace.dur_ns = 0.0);
      check_bool "premeasured span kept its duration" true
        ((find "premeasured").Obs.Trace.dur_ns = 2.0);
      check_bool "attrs preserved" true (inner.Obs.Trace.attrs = [ ("k", "v") ]);
      (* A raising thunk still records its span. *)
      check_bool "exception propagates" true
        (try
           Obs.Trace.with_span "boom" (fun () -> failwith "x")
         with Failure _ -> true);
      check_bool "raising span recorded" true
        (List.exists (fun s -> s.Obs.Trace.name = "boom") (Obs.Trace.spans ()));
      let tree = Obs.Trace.render_tree () in
      check_bool "tree names every span" true
        (contains tree "outer" && contains tree "inner" && contains tree "point");
      check_bool "tree indents the child" true (contains tree "  inner");
      let jsonl = Obs.Trace.render_jsonl () in
      check_bool "jsonl one line per span" true
        (List.length (String.split_on_char '\n' (String.trim jsonl)) = 5))

let test_trace_disabled_is_noop () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled false;
  Obs.Trace.with_span "invisible" (fun () -> Obs.Trace.event "also invisible");
  Obs.Trace.add ~name:"still invisible" ~start_ns:0.0 ~dur_ns:1.0 ();
  check_int "nothing recorded when disabled" 0 (List.length (Obs.Trace.spans ()))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge basics" `Quick test_counter_basics;
          Alcotest.test_case "concurrent updates" `Quick test_concurrent_counters;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentile accuracy" `Quick test_histogram_percentiles;
          Alcotest.test_case "edge samples" `Quick test_histogram_edges;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span structure" `Quick test_trace_spans;
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_is_noop;
        ] );
    ]
