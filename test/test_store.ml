(* Durable-storage-engine tests: CRC and codec roundtrips, WAL framing
   and torn-tail handling, checkpoint/recovery equivalence for plain
   and encrypted tables, and the fault-injection matrix — crash the
   write path at byte and sync boundaries, reopen, and require exactly
   the committed prefix back, with the weak-randomness stream resumed
   so post-recovery tags are byte-identical to a process that never
   died. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- scratch directories ---------------- *)

let temp_counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wre_store_test.%d.%d" (Unix.getpid ()) !temp_counter)
  in
  if Sys.file_exists dir then rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ---------------- fixtures ---------------- *)

let plain_schema =
  Sqldb.Schema.create
    [
      { name = "id"; ty = Sqldb.Value.TInt; nullable = false };
      { name = "name"; ty = Sqldb.Value.TText; nullable = false };
    ]

let names = [| "alice"; "bob"; "carol"; "dave" |]

let dist = Dist.Empirical.of_counts [ ("alice", 4); ("bob", 3); ("carol", 2); ("dave", 1) ]

let op_row i =
  [| Sqldb.Value.Int (Int64.of_int i); Sqldb.Value.Text names.(i mod Array.length names) |]

let master () = Crypto.Keys.generate (Stdx.Prng.create 99L)

let kind = Wre.Scheme.Poisson 20.0

(* Fresh store directory holding one empty encrypted table "t",
   checkpointed so the WAL starts empty. Deterministic: every call
   produces byte-identical state. *)
let setup_base dir =
  let store = Store.Engine.open_dir ~dir () in
  let edb =
    Store.Engine.create_encrypted store ~name:"t" ~plain_schema ~key_column:"id"
      ~encrypted_columns:[ "name" ] ~kind ~master:(master ()) ~dist_of:(fun _ -> dist) ~seed:5L
      ()
  in
  ignore edb;
  Store.Engine.checkpoint store;
  Store.Engine.close store

(* In-memory replica of [setup_base] + all [n] workload ops: the state
   a process that never crashed would hold. *)
let reference_state n =
  let db = Sqldb.Database.create () in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"t" ~plain_schema ~key_column:"id"
      ~encrypted_columns:[ "name" ] ~kind ~master:(master ()) ~dist_of:(fun _ -> dist) ~seed:5L
      ()
  in
  for i = 0 to n - 1 do
    ignore (Wre.Encrypted_db.insert edb (op_row i))
  done;
  ( Sqldb.Table.snapshot (Wre.Encrypted_db.table edb),
    (Wre.Encrypted_db.search_ids edb ~column:"name" "alice").Sqldb.Executor.row_ids )

(* ---------------- crc32 ---------------- *)

let test_crc32_vector () =
  (* The standard IEEE 802.3 check value. *)
  check_bool "check vector" true (Store.Crc32.digest "123456789" = 0xCBF43926l);
  check_bool "empty" true (Store.Crc32.digest "" = 0l)

let test_crc32_incremental () =
  let whole = Store.Crc32.digest "header-payload" in
  let inc = Store.Crc32.update (Store.Crc32.digest "header-") "payload" in
  check_bool "incremental = whole" true (whole = inc)

(* ---------------- codec ---------------- *)

let test_codec_scalars () =
  let b = Buffer.create 64 in
  Store.Codec.put_u8 b 200;
  Store.Codec.put_u32 b 0xFFFFFFFF;
  Store.Codec.put_u64 b (-1L);
  Store.Codec.put_bool b true;
  Store.Codec.put_float b 3.25;
  Store.Codec.put_str b "hé\x00llo";
  let c = Store.Codec.cursor (Buffer.contents b) in
  check_int "u8" 200 (Store.Codec.get_u8 c);
  check_int "u32" 0xFFFFFFFF (Store.Codec.get_u32 c);
  check_bool "u64" true (Store.Codec.get_u64 c = -1L);
  check_bool "bool" true (Store.Codec.get_bool c);
  check_bool "float" true (Store.Codec.get_float c = 3.25);
  Alcotest.(check string) "str" "hé\x00llo" (Store.Codec.get_str c);
  check_bool "at end" true (Store.Codec.at_end c)

let test_codec_truncation_rejected () =
  let b = Buffer.create 16 in
  Store.Codec.put_str b "hello";
  let s = Buffer.contents b in
  let torn = String.sub s 0 (String.length s - 2) in
  check_bool "torn string rejected" true
    (match Store.Codec.get_str (Store.Codec.cursor torn) with
    | exception Store.Codec.Corrupt _ -> true
    | _ -> false)

let qcheck_codec_value_roundtrip =
  let value_gen =
    QCheck.Gen.(
      oneof
        [
          return Sqldb.Value.Null;
          map (fun i -> Sqldb.Value.Int (Int64.of_int i)) int;
          map (fun f -> Sqldb.Value.Real f) (float_bound_inclusive 1e9);
          map (fun s -> Sqldb.Value.Text s) (string_size (0 -- 20));
          map (fun s -> Sqldb.Value.Blob s) (string_size (0 -- 20));
        ])
  in
  QCheck.Test.make ~name:"codec row roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(list_size (0 -- 8) value_gen))
    (fun vs ->
      let row = Array.of_list vs in
      let b = Buffer.create 64 in
      Store.Codec.put_row b row;
      let c = Store.Codec.cursor (Buffer.contents b) in
      let back = Store.Codec.get_row c in
      back = row && Store.Codec.at_end c)

let test_codec_table_snapshot_roundtrip () =
  let pager = Sqldb.Pager.create () in
  let t = Sqldb.Table.create pager ~name:"t" ~schema:plain_schema in
  for i = 0 to 9 do
    ignore (Sqldb.Table.insert t (op_row i))
  done;
  ignore (Sqldb.Table.create_index t ~column:"name");
  ignore (Sqldb.Table.delete t 3);
  Sqldb.Table.vacuum t;
  let snap = Sqldb.Table.snapshot t in
  let b = Buffer.create 256 in
  Store.Codec.put_table_snapshot b snap;
  let back = Store.Codec.get_table_snapshot (Store.Codec.cursor (Buffer.contents b)) in
  check_bool "snapshot roundtrip" true (back = snap)

let test_record_roundtrip () =
  let ops =
    [
      Store.Record.Create_table { name = "t"; schema = plain_schema };
      Store.Record.Create_index { table = "t"; column = "name"; kind = Sqldb.Table_index.Hash };
      Store.Record.Insert { table = "t"; row = op_row 0; prng = Some (String.make 32 'x') };
      Store.Record.Insert_batch
        { table = "t"; rows = [| op_row 1; op_row 2 |]; prng = None };
      Store.Record.Delete { table = "t"; id = 7 };
      Store.Record.Vacuum { table = "t" };
    ]
  in
  List.iter
    (fun op -> check_bool "op roundtrip" true (Store.Record.decode (Store.Record.encode op) = op))
    ops;
  check_bool "trailing bytes rejected" true
    (match Store.Record.decode (Store.Record.encode (List.hd ops) ^ "x") with
    | exception Store.Codec.Corrupt _ -> true
    | _ -> false)

(* ---------------- WAL framing ---------------- *)

let wal_roundtrip_payloads dir payloads =
  let path = Filename.concat dir "wal.bin" in
  let wal = Store.Wal.create ~path ~group_commit:1 ~next_lsn:1L in
  List.iter (fun p -> ignore (Store.Wal.append wal p)) payloads;
  Store.Wal.close wal;
  path

let test_wal_roundtrip () =
  with_temp_dir (fun dir ->
      let path = wal_roundtrip_payloads dir [ "alpha"; ""; "gamma-delta" ] in
      let got = ref [] in
      let max_lsn, valid_len = Store.Wal.replay ~path (fun lsn p -> got := (lsn, p) :: !got) in
      check_bool "payloads back in order" true
        (List.rev !got = [ (1L, "alpha"); (2L, ""); (3L, "gamma-delta") ]);
      check_bool "max lsn" true (max_lsn = 3L);
      let stat = Unix.stat path in
      check_int "valid prefix is whole file" stat.Unix.st_size valid_len)

let test_wal_torn_tail () =
  with_temp_dir (fun dir ->
      let path = wal_roundtrip_payloads dir [ "alpha"; "beta"; "gamma" ] in
      (* Tear bytes off the last frame: replay must stop cleanly after
         the second record, reporting where the valid prefix ends. *)
      let full = (Unix.stat path).Unix.st_size in
      let f = Store.Io.open_append path in
      Store.Io.truncate f (full - 3);
      Store.Io.close f;
      let got = ref [] in
      let max_lsn, valid_len = Store.Wal.replay ~path (fun _ p -> got := p :: !got) in
      check_bool "two intact records" true (List.rev !got = [ "alpha"; "beta" ]);
      check_bool "lsn of last intact" true (max_lsn = 2L);
      check_bool "valid prefix excludes torn frame" true (valid_len < full - 3))

let test_wal_corrupt_tail () =
  with_temp_dir (fun dir ->
      let path = wal_roundtrip_payloads dir [ "alpha"; "beta" ] in
      (* Flip a byte inside the last frame's payload: CRC must reject
         it and treat the frame as end-of-log. *)
      let content = Option.get (Store.Io.read_file path) in
      let b = Bytes.of_string content in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xFF));
      let f = Store.Io.open_trunc path in
      Store.Io.write f (Bytes.to_string b);
      Store.Io.close f;
      let got = ref [] in
      let _, _ = Store.Wal.replay ~path (fun _ p -> got := p :: !got) in
      check_bool "corrupt frame dropped" true (List.rev !got = [ "alpha" ]))

let test_wal_group_commit_knob () =
  with_temp_dir (fun dir ->
      let fsyncs group =
        let path = Filename.concat dir (Printf.sprintf "gc%d.bin" group) in
        let wal = Store.Wal.create ~path ~group_commit:group ~next_lsn:1L in
        Store.Failpoints.arm_counting ();
        for _ = 1 to 6 do
          ignore (Store.Wal.append wal "payload")
        done;
        let n =
          Option.value ~default:0 (List.assoc_opt "wal.fsync" (Store.Failpoints.counted_events ()))
        in
        Store.Failpoints.disarm ();
        Store.Wal.close wal;
        n
      in
      check_int "group_commit=1 syncs every record" 6 (fsyncs 1);
      check_int "group_commit=3 syncs every third" 2 (fsyncs 3))

(* ---------------- plain-table persistence ---------------- *)

let test_plain_table_roundtrip () =
  with_temp_dir (fun dir ->
      let build_ops db =
        let t = Sqldb.Database.create_table db ~name:"p" ~schema:plain_schema in
        ignore (Sqldb.Table.create_index t ~column:"name");
        for i = 0 to 9 do
          ignore (Sqldb.Table.insert t (op_row i))
        done;
        ignore (Sqldb.Table.delete t 2);
        ignore (Sqldb.Table.delete t 5);
        t
      in
      let store = Store.Engine.open_dir ~dir () in
      ignore (build_ops (Store.Engine.db store));
      Store.Engine.close store;
      let replica = Sqldb.Database.create () in
      let expected = Sqldb.Table.snapshot (build_ops replica) in
      let store = Store.Engine.open_dir ~dir () in
      let r = Store.Engine.recovery store in
      check_bool "no snapshot yet" false r.Store.Engine.snapshot_loaded;
      check_int "all records replayed" 14 r.Store.Engine.replayed;
      let t = Sqldb.Database.table (Store.Engine.db store) "p" in
      check_bool "physical state identical" true (Sqldb.Table.snapshot t = expected);
      check_bool "index survives" true (Sqldb.Table.index_on t ~column:"name" <> None);
      Store.Engine.close store)

(* ---------------- encrypted persistence + tag continuity ---------------- *)

let test_encrypted_roundtrip_continues_stream () =
  with_temp_dir (fun dir ->
      let n_before = 12 and n_total = 20 in
      let ref_snap, ref_ids = reference_state n_total in
      setup_base dir;
      let store = Store.Engine.open_dir ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      for i = 0 to n_before - 1 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      Store.Engine.close store;
      (* Reopen and continue: rows encrypted after recovery must carry
         the same tags/ciphertexts the uncrashed reference produced,
         i.e. the PRNG stream resumed exactly. *)
      let store = Store.Engine.open_dir ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      for i = n_before to n_total - 1 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      let t = Wre.Encrypted_db.table edb in
      check_bool "byte-identical to uncrashed reference" true
        (Sqldb.Table.snapshot t = ref_snap);
      check_bool "search agrees" true
        ((Wre.Encrypted_db.search_ids edb ~column:"name" "alice").Sqldb.Executor.row_ids = ref_ids);
      Store.Engine.close store)

let test_checkpoint_replays_only_tail () =
  with_temp_dir (fun dir ->
      setup_base dir;
      let store = Store.Engine.open_dir ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      for i = 0 to 19 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      Store.Engine.checkpoint store;
      for i = 20 to 24 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      Store.Engine.close store;
      let store = Store.Engine.open_dir ~dir () in
      let r = Store.Engine.recovery store in
      check_bool "snapshot loaded" true r.Store.Engine.snapshot_loaded;
      check_int "only the tail replayed" 5 r.Store.Engine.replayed;
      let t = Wre.Encrypted_db.table (Option.get (Store.Engine.encrypted store "t")) in
      check_int "all rows back" 25 (Sqldb.Table.row_count t);
      Store.Engine.close store)

let test_auto_checkpoint () =
  with_temp_dir (fun dir ->
      setup_base dir;
      let store = Store.Engine.open_dir ~checkpoint_every:10 ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      for i = 0 to 24 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      Store.Engine.close store;
      let store = Store.Engine.open_dir ~dir () in
      let r = Store.Engine.recovery store in
      check_bool "auto-checkpoint bounds replay" true (r.Store.Engine.replayed <= 10);
      let t = Wre.Encrypted_db.table (Option.get (Store.Engine.encrypted store "t")) in
      check_int "all rows back" 25 (Sqldb.Table.row_count t);
      Store.Engine.close store)

(* ---------------- vacuum + checkpoint (no resurrection) ---------------- *)

let test_vacuum_checkpoint_shrinks_no_resurrection () =
  with_temp_dir (fun dir ->
      setup_base dir;
      let store = Store.Engine.open_dir ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      for i = 0 to 29 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      let t = Wre.Encrypted_db.table edb in
      for id = 0 to 19 do
        ignore (Sqldb.Table.delete t id)
      done;
      Store.Engine.checkpoint store;
      let size_before =
        String.length (Option.get (Store.Io.read_file (Store.Snapshot.path ~dir)))
      in
      Sqldb.Table.vacuum t;
      Store.Engine.checkpoint store;
      let size_after =
        String.length (Option.get (Store.Io.read_file (Store.Snapshot.path ~dir)))
      in
      check_bool "snapshot shrinks after vacuum" true (size_after < size_before);
      Store.Engine.close store;
      let store = Store.Engine.open_dir ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      let t = Wre.Encrypted_db.table edb in
      check_int "live rows" 10 (Sqldb.Table.live_count t);
      check_int "row ids stable" 30 (Sqldb.Table.row_count t);
      for id = 0 to 19 do
        check_bool "tombstone stays dead" false (Sqldb.Table.is_live t id)
      done;
      (* No resurrection through the index either: every id a search
         returns must be a live post-vacuum row. *)
      let ids = (Wre.Encrypted_db.search_ids edb ~column:"name" "alice").Sqldb.Executor.row_ids in
      Array.iter
        (fun id ->
          check_bool "search hits only live rows" true (id >= 20 && Sqldb.Table.is_live t id))
        ids;
      Store.Engine.close store)

(* ---------------- snapshot publication ---------------- *)

let test_snapshot_tmp_ignored () =
  with_temp_dir (fun dir ->
      setup_base dir;
      (* A leftover .tmp from a crashed checkpoint must not confuse
         recovery. *)
      let f = Store.Io.open_trunc (Store.Snapshot.path ~dir ^ ".tmp") in
      Store.Io.write f "garbage that is not a snapshot";
      Store.Io.close f;
      let store = Store.Engine.open_dir ~dir () in
      check_bool "published snapshot loads" true
        (Store.Engine.recovery store).Store.Engine.snapshot_loaded;
      check_bool "table present" true (Store.Engine.encrypted store "t" <> None);
      Store.Engine.close store)

let test_corrupt_snapshot_rejected () =
  with_temp_dir (fun dir ->
      setup_base dir;
      let path = Store.Snapshot.path ~dir in
      let content = Option.get (Store.Io.read_file path) in
      let b = Bytes.of_string content in
      let mid = Bytes.length b / 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x01));
      let f = Store.Io.open_trunc path in
      Store.Io.write f (Bytes.to_string b);
      Store.Io.close f;
      check_bool "published-but-corrupt snapshot is a hard error" true
        (match Store.Engine.open_dir ~dir () with
        | exception Store.Snapshot.Corrupt_snapshot _ -> true
        | _ -> false))

(* The streaming checkpoint writer must be byte-for-byte the same
   format as serializing the materialized snapshot record — stream two
   churned tables both ways and compare files and decoded state. *)
let test_snapshot_stream_equals_record () =
  with_temp_dir (fun dir ->
      let pager = Sqldb.Pager.create () in
      let t1 = Sqldb.Table.create pager ~name:"t1" ~schema:plain_schema in
      for i = 0 to 499 do
        ignore (Sqldb.Table.insert t1 (op_row i))
      done;
      ignore (Sqldb.Table.create_index t1 ~column:"name");
      for i = 0 to 99 do
        ignore (Sqldb.Table.delete t1 (i * 3))
      done;
      Sqldb.Table.vacuum t1;
      for i = 500 to 599 do
        ignore (Sqldb.Table.insert t1 (op_row i))
      done;
      ignore (Sqldb.Table.delete t1 550);
      let t2 = Sqldb.Table.create pager ~name:"t2" ~schema:plain_schema in
      (* empty-table edge *)
      let views = [ Sqldb.Table.freeze t1; Sqldb.Table.freeze t2 ] in
      let last_lsn = 42L and pager_cfg = Sqldb.Pager.config pager in
      Store.Snapshot.write_views ~dir ~last_lsn ~pager:pager_cfg ~views ~wre:[];
      let streamed = Option.get (Store.Io.read_file (Store.Snapshot.path ~dir)) in
      let tables = List.map Sqldb.Table.snapshot_of_view views in
      Store.Snapshot.write ~dir { Store.Snapshot.last_lsn; pager = pager_cfg; tables; wre = [] };
      let recorded = Option.get (Store.Io.read_file (Store.Snapshot.path ~dir)) in
      check_bool "identical bytes" true (String.equal streamed recorded);
      let loaded = Option.get (Store.Snapshot.load ~dir) in
      check_bool "decodes to the frozen state" true (loaded.Store.Snapshot.tables = tables);
      check_bool "lsn preserved" true (loaded.Store.Snapshot.last_lsn = last_lsn))

let test_atomic_write_text_crash_safe () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "report.json" in
      Store.Io.atomic_write_text ~path "old";
      Store.Failpoints.arm_at_event "atomic.rename" ~n:1;
      check_bool "crash fires" true
        (match Store.Io.atomic_write_text ~path "new" with
        | exception Store.Failpoints.Crash _ -> true
        | () -> false);
      Store.Failpoints.disarm ();
      Alcotest.(check (option string)) "old content intact" (Some "old")
        (Store.Io.read_file path);
      Store.Io.atomic_write_text ~path "new2";
      Alcotest.(check (option string)) "publish works after crash" (Some "new2")
        (Store.Io.read_file path))

(* ---------------- fault-injection matrix ---------------- *)

let n_ops = 8

(* Run the insert workload against a base store with a failpoint armed
   by [arm]. Returns how many inserts were acknowledged (returned
   normally) before the simulated crash. *)
let run_crash_trial ~arm dir =
  setup_base dir;
  let store = Store.Engine.open_dir ~dir () in
  let edb = Option.get (Store.Engine.encrypted store "t") in
  let completed = ref 0 in
  let crashed = ref false in
  arm ();
  (try
     for i = 0 to n_ops - 1 do
       ignore (Wre.Encrypted_db.insert edb (op_row i));
       incr completed
     done;
     Store.Engine.close store
   with Store.Failpoints.Crash _ -> crashed := true);
  Store.Failpoints.disarm ();
  (!completed, !crashed)

(* The recovery invariant: reopening yields exactly a committed prefix
   — at least every acknowledged op (group_commit = 1 means each was
   fsynced before returning), at most one more (an op whose frame fully
   landed but which never returned). Completing the remaining ops must
   then produce a state byte-identical to the uncrashed reference. *)
let verify_recovery ~label ~completed dir (ref_snap, ref_ids) =
  let store = Store.Engine.open_dir ~dir () in
  let edb = Option.get (Store.Engine.encrypted store "t") in
  let t = Wre.Encrypted_db.table edb in
  let j = Sqldb.Table.row_count t in
  check_bool (label ^ ": at least every acked op") true (j >= completed);
  check_bool (label ^ ": at most one unacked op") true (j <= completed + 1);
  for i = j to n_ops - 1 do
    ignore (Wre.Encrypted_db.insert edb (op_row i))
  done;
  check_bool (label ^ ": final state = uncrashed reference") true
    (Sqldb.Table.snapshot t = ref_snap);
  check_bool (label ^ ": search tags agree") true
    ((Wre.Encrypted_db.search_ids edb ~column:"name" "alice").Sqldb.Executor.row_ids = ref_ids);
  Store.Engine.close store

(* Enumerate the crash matrix for the workload: total bytes written and
   occurrences of each named sync point. *)
let measure_workload () =
  with_temp_dir (fun dir ->
      setup_base dir;
      let store = Store.Engine.open_dir ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      Store.Failpoints.arm_counting ();
      for i = 0 to n_ops - 1 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      let bytes = Store.Failpoints.counted_bytes () in
      let events = Store.Failpoints.counted_events () in
      Store.Failpoints.disarm ();
      Store.Engine.close store;
      (bytes, events))

let test_crash_matrix_byte_cuts () =
  let reference = reference_state n_ops in
  let bytes, _ = measure_workload () in
  check_bool "workload writes bytes" true (bytes > 0);
  (* Sample torn-write boundaries across the whole workload, both with
     the written-but-unsynced bytes surviving (page cache flushed
     anyway) and with them lost (power cut). *)
  let cuts =
    List.sort_uniq compare
      [ 0; 1; 15; bytes / 4; bytes / 2; (3 * bytes) / 4; bytes - 1 ]
  in
  List.iter
    (fun lose ->
      List.iter
        (fun cut ->
          with_temp_dir (fun dir ->
              let label = Printf.sprintf "cut %d bytes (lose=%b)" cut lose in
              let completed, crashed =
                run_crash_trial ~arm:(fun () -> Store.Failpoints.arm_cut_bytes ~lose_unsynced:lose cut) dir
              in
              check_bool (label ^ ": crashed") true crashed;
              verify_recovery ~label ~completed dir reference))
        cuts)
    [ false; true ]

let test_crash_matrix_sync_points () =
  let reference = reference_state n_ops in
  let _, events = measure_workload () in
  check_bool "wal.write observed" true (List.mem_assoc "wal.write" events);
  check_bool "wal.fsync observed" true (List.mem_assoc "wal.fsync" events);
  List.iter
    (fun lose ->
      List.iter
        (fun (point, count) ->
          (* First and last occurrence of every named point. *)
          List.iter
            (fun n ->
              with_temp_dir (fun dir ->
                  let label = Printf.sprintf "%s #%d (lose=%b)" point n lose in
                  let completed, crashed =
                    run_crash_trial
                      ~arm:(fun () -> Store.Failpoints.arm_at_event ~lose_unsynced:lose point ~n)
                      dir
                  in
                  check_bool (label ^ ": crashed") true crashed;
                  verify_recovery ~label ~completed dir reference))
            (List.sort_uniq compare [ 1; count ]))
        events)
    [ false; true ]

let test_crash_during_checkpoint () =
  let reference = reference_state n_ops in
  List.iter
    (fun point ->
      with_temp_dir (fun dir ->
          setup_base dir;
          let store = Store.Engine.open_dir ~dir () in
          let edb = Option.get (Store.Engine.encrypted store "t") in
          for i = 0 to n_ops - 1 do
            ignore (Wre.Encrypted_db.insert edb (op_row i))
          done;
          Store.Failpoints.arm_at_event ~lose_unsynced:true point ~n:1;
          let crashed =
            match Store.Engine.checkpoint store with
            | exception Store.Failpoints.Crash _ -> true
            | () -> false
          in
          Store.Failpoints.disarm ();
          check_bool (point ^ ": checkpoint crashed") true crashed;
          (* Nothing was acknowledged during the checkpoint, so
             recovery must reproduce all n_ops rows — from the old
             snapshot + WAL, or from the new snapshot, depending on
             where the crash landed. *)
          verify_recovery ~label:("checkpoint @ " ^ point) ~completed:n_ops dir reference))
    [ "snapshot.write"; "snapshot.fsync"; "snapshot.rename"; "dir.fsync" ]

let test_checkpoint_crash_reader_holds_old_epoch () =
  (* A reader freezes an epoch mid-workload, the writer keeps inserting,
     then a checkpoint crashes at each point of its write/fsync/rename
     sequence. The frozen view shares nothing with the snapshot writer,
     so it must keep answering byte-identically through the crash — and
     recovery from disk must still reproduce the full workload. *)
  let reference = reference_state n_ops in
  List.iter
    (fun point ->
      with_temp_dir (fun dir ->
          setup_base dir;
          let store = Store.Engine.open_dir ~dir () in
          let edb = Option.get (Store.Engine.encrypted store "t") in
          let half = n_ops / 2 in
          for i = 0 to half - 1 do
            ignore (Wre.Encrypted_db.insert edb (op_row i))
          done;
          let view = Wre.Encrypted_db.freeze edb in
          let alice_at_freeze =
            (Wre.Encrypted_db.search_ids_view edb ~view ~column:"name" "alice")
              .Sqldb.Executor.row_ids
          in
          for i = half to n_ops - 1 do
            ignore (Wre.Encrypted_db.insert edb (op_row i))
          done;
          Store.Failpoints.arm_at_event ~lose_unsynced:true point ~n:1;
          let crashed =
            match Store.Engine.checkpoint store with
            | exception Store.Failpoints.Crash _ -> true
            | () -> false
          in
          Store.Failpoints.disarm ();
          check_bool (point ^ ": checkpoint crashed") true crashed;
          let alice_after =
            (Wre.Encrypted_db.search_ids_view edb ~view ~column:"name" "alice")
              .Sqldb.Executor.row_ids
          in
          check_bool (point ^ ": view answers unchanged") true (alice_after = alice_at_freeze);
          check_int (point ^ ": view stays at its epoch") half (Sqldb.Read_view.live_count view);
          check_bool (point ^ ": writer rows invisible through view") true
            (Sqldb.Read_view.live_count view < Sqldb.Table.row_count (Wre.Encrypted_db.table edb));
          verify_recovery ~label:("checkpoint+reader @ " ^ point) ~completed:n_ops dir reference))
    [ "snapshot.write"; "snapshot.fsync"; "snapshot.rename" ]

let test_group_commit_window_of_loss () =
  with_temp_dir (fun dir ->
      setup_base dir;
      (* group_commit = 10: three acked-in-memory inserts ride an
         unsynced window; a power cut (lose_unsynced) drops them. This
         is the documented durability trade — the recovered state must
         still be a clean prefix (here: the base), never garbage. *)
      let store = Store.Engine.open_dir ~group_commit:10 ~dir () in
      let edb = Option.get (Store.Engine.encrypted store "t") in
      for i = 0 to 2 do
        ignore (Wre.Encrypted_db.insert edb (op_row i))
      done;
      Store.Failpoints.arm_at_event ~lose_unsynced:true "wal.write" ~n:1;
      let crashed =
        match Wre.Encrypted_db.insert edb (op_row 3) with
        | exception Store.Failpoints.Crash _ -> true
        | _ -> false
      in
      Store.Failpoints.disarm ();
      check_bool "crash fires" true crashed;
      let store = Store.Engine.open_dir ~dir () in
      let t = Wre.Encrypted_db.table (Option.get (Store.Engine.encrypted store "t")) in
      check_int "unsynced window lost, base intact" 0 (Sqldb.Table.row_count t);
      Store.Engine.close store)

(* ---------------- Io syscall hardening ---------------- *)

(* Regression (PR 7): [Io.write] used to issue one [Unix.write_substring]
   and assume it took the whole string — an EINTR/EAGAIN or short write
   either killed the caller or silently dropped bytes, and [Io.size]
   diverged from the file. [Failpoints.arm_syscalls] scripts the kernel's
   answers so the retry loop itself is what's under test. *)

let test_io_write_retries_transient_errors () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "t.bin" in
      let f = Store.Io.open_trunc path in
      Store.Failpoints.arm_syscalls
        [ `Errno Unix.EINTR; `Short 3; `Errno Unix.EAGAIN; `Short 4 ];
      Store.Io.write f "hello world";
      Store.Failpoints.disarm ();
      check_int "size accounts every byte" 11 (Store.Io.size f);
      Store.Io.close f;
      check_bool "content intact" true (Store.Io.read_file path = Some "hello world"))

let test_io_write_partial_progress_accounted () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "t.bin" in
      let f = Store.Io.open_trunc path in
      Store.Io.write f "base-";
      (* Three bytes land, then the disk fills: the error must propagate
         AND the recorded size must match exactly what reached the fd. *)
      Store.Failpoints.arm_syscalls [ `Short 3; `Errno Unix.ENOSPC ];
      let raised =
        match Store.Io.write f "abcdefgh" with
        | () -> false
        | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> true
      in
      Store.Failpoints.disarm ();
      check_bool "fatal errno propagates" true raised;
      check_int "size = prior + partial progress" 8 (Store.Io.size f);
      Store.Io.close f;
      check_bool "disk matches bookkeeping" true (Store.Io.read_file path = Some "base-abc"))

let test_wal_append_under_interrupts () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.bin" in
      let wal = Store.Wal.create ~path ~group_commit:1 ~next_lsn:1L in
      Store.Failpoints.arm_syscalls
        [ `Errno Unix.EINTR; `Short 2; `Errno Unix.EAGAIN; `Short 1; `Errno Unix.EINTR ];
      ignore (Store.Wal.append wal "alpha");
      ignore (Store.Wal.append wal "beta");
      Store.Failpoints.disarm ();
      Store.Wal.close wal;
      let got = ref [] in
      let max_lsn, _ = Store.Wal.replay ~path (fun _ p -> got := p :: !got) in
      check_bool "frames intact through interrupts" true (List.rev !got = [ "alpha"; "beta" ]);
      check_bool "lsn" true (max_lsn = 2L))

(* ---------------- suite ---------------- *)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ( "crc32",
        [
          Alcotest.test_case "check vector" `Quick test_crc32_vector;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        ] );
      ( "codec",
        [
          Alcotest.test_case "scalars" `Quick test_codec_scalars;
          Alcotest.test_case "truncation rejected" `Quick test_codec_truncation_rejected;
          Alcotest.test_case "table snapshot" `Quick test_codec_table_snapshot_roundtrip;
          Alcotest.test_case "record ops" `Quick test_record_roundtrip;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "corrupt tail" `Quick test_wal_corrupt_tail;
          Alcotest.test_case "group-commit knob" `Quick test_wal_group_commit_knob;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "plain table" `Quick test_plain_table_roundtrip;
          Alcotest.test_case "encrypted + tag continuity" `Quick
            test_encrypted_roundtrip_continues_stream;
          Alcotest.test_case "checkpoint tail replay" `Quick test_checkpoint_replays_only_tail;
          Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
          Alcotest.test_case "vacuum + checkpoint" `Quick
            test_vacuum_checkpoint_shrinks_no_resurrection;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "tmp ignored" `Quick test_snapshot_tmp_ignored;
          Alcotest.test_case "corrupt rejected" `Quick test_corrupt_snapshot_rejected;
          Alcotest.test_case "stream = record" `Quick test_snapshot_stream_equals_record;
          Alcotest.test_case "atomic_write_text" `Quick test_atomic_write_text_crash_safe;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "byte-cut matrix" `Slow test_crash_matrix_byte_cuts;
          Alcotest.test_case "sync-point matrix" `Slow test_crash_matrix_sync_points;
          Alcotest.test_case "crash during checkpoint" `Quick test_crash_during_checkpoint;
          Alcotest.test_case "checkpoint crash with live reader" `Quick
            test_checkpoint_crash_reader_holds_old_epoch;
          Alcotest.test_case "group-commit loss window" `Quick test_group_commit_window_of_loss;
        ] );
      ( "io_syscalls",
        [
          Alcotest.test_case "transient errors retried" `Quick
            test_io_write_retries_transient_errors;
          Alcotest.test_case "partial progress accounted" `Quick
            test_io_write_partial_progress_accounted;
          Alcotest.test_case "wal append under interrupts" `Quick
            test_wal_append_under_interrupts;
        ] );
      ("properties", q [ qcheck_codec_value_roundtrip ]);
    ]
