(* SQL front-end tests: lexing/parsing of the supported fragment,
   execution against the engine, and the WRE rewriting proxy. *)

open Sqldb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* ---------------- Parsing ---------------- *)

let parse_pred s = ok (Sql.parse_predicate s)

let test_parse_predicates () =
  check_bool "eq" true (parse_pred "name = 'Alice'" = Predicate.Eq ("name", Value.Text "Alice"));
  check_bool "int eq" true (parse_pred "id = 42" = Predicate.Eq ("id", Value.Int 42L));
  check_bool "negative int" true (parse_pred "id = -7" = Predicate.Eq ("id", Value.Int (-7L)));
  check_bool "float" true (parse_pred "score = 1.5" = Predicate.Eq ("score", Value.Real 1.5));
  check_bool "null" true (parse_pred "notes = NULL" = Predicate.Eq ("notes", Value.Null));
  check_bool "blob" true (parse_pred "data = x'0aff'" = Predicate.Eq ("data", Value.Blob "\x0a\xff"));
  check_bool "in" true
    (parse_pred "city IN ('a', 'b')" = Predicate.In ("city", [ Value.Text "a"; Value.Text "b" ]));
  check_bool "between" true
    (parse_pred "id BETWEEN 1 AND 9"
    = Predicate.Range ("id", Some (Value.Int 1L), Some (Value.Int 9L)));
  check_bool "le" true (parse_pred "id <= 5" = Predicate.Range ("id", None, Some (Value.Int 5L)));
  check_bool "ge" true (parse_pred "id >= 5" = Predicate.Range ("id", Some (Value.Int 5L), None));
  check_bool "neq" true (parse_pred "id <> 5" = Predicate.Not (Predicate.Eq ("id", Value.Int 5L)))

(* Strict comparisons rewrite to inclusive integer bounds at parse
   time, so everything downstream (executor, proxy, range traversal)
   sees only inclusive [Range]s. The int64 domain edges have no
   representable strict bound, so they collapse to an unsatisfiable
   predicate instead of wrapping around. *)
let test_parse_strict_comparisons () =
  check_bool "lt" true (parse_pred "id < 5" = Predicate.Range ("id", None, Some (Value.Int 4L)));
  check_bool "gt" true (parse_pred "id > 5" = Predicate.Range ("id", Some (Value.Int 6L), None));
  check_bool "lt negative" true
    (parse_pred "id < -7" = Predicate.Range ("id", None, Some (Value.Int (-8L))));
  check_bool "lt min_int is unsatisfiable" true
    (parse_pred "id < -9223372036854775808" = Predicate.Not Predicate.True);
  check_bool "gt max_int is unsatisfiable" true
    (parse_pred "id > 9223372036854775807" = Predicate.Not Predicate.True);
  check_bool "lt max_int stays a range" true
    (parse_pred "id < 9223372036854775807"
    = Predicate.Range ("id", None, Some (Value.Int (Int64.sub Int64.max_int 1L))));
  check_bool "strict real bound rejected" true
    (Result.is_error (Sql.parse_predicate "score < 1.5"));
  check_bool "strict text bound rejected" true (Result.is_error (Sql.parse_predicate "a > 'x'"))

let test_parse_boolean_structure () =
  check_bool "and binds tighter than or" true
    (parse_pred "a = 1 OR b = 2 AND c = 3"
    = Predicate.Or
        [
          Predicate.Eq ("a", Value.Int 1L);
          Predicate.And [ Predicate.Eq ("b", Value.Int 2L); Predicate.Eq ("c", Value.Int 3L) ];
        ]);
  check_bool "parens override" true
    (parse_pred "(a = 1 OR b = 2) AND c = 3"
    = Predicate.And
        [
          Predicate.Or [ Predicate.Eq ("a", Value.Int 1L); Predicate.Eq ("b", Value.Int 2L) ];
          Predicate.Eq ("c", Value.Int 3L);
        ]);
  check_bool "not" true
    (parse_pred "NOT a = 1" = Predicate.Not (Predicate.Eq ("a", Value.Int 1L)))

let test_parse_string_escapes () =
  check_bool "escaped quote" true
    (parse_pred "name = 'O''Brien'" = Predicate.Eq ("name", Value.Text "O'Brien"));
  check_bool "keywords case-insensitive" true
    (parse_pred "a = 1 and b = 2" = Predicate.And [ Predicate.Eq ("a", Value.Int 1L); Predicate.Eq ("b", Value.Int 2L) ])

let test_parse_select_shapes () =
  (match ok (Sql.parse "SELECT * FROM people WHERE name = 'x' LIMIT 5") with
  | Sql.Select s ->
      check_bool "star" true (s.projection = `Star);
      check_str "table" "people" s.table;
      check_bool "limit" true (s.limit = Some 5)
  | _ -> Alcotest.fail "not a select");
  match ok (Sql.parse "select id, name from people") with
  | Sql.Select s ->
      check_bool "columns" true (s.projection = `Columns [ "id"; "name" ]);
      check_bool "no where" true (s.where = Predicate.True)
  | _ -> Alcotest.fail "not a select"

let test_parse_insert_create () =
  (match ok (Sql.parse "INSERT INTO t VALUES (1, 'a', NULL)") with
  | Sql.Insert { table; values } ->
      check_str "table" "t" table;
      check_int "arity" 3 (List.length values)
  | _ -> Alcotest.fail "not an insert");
  match ok (Sql.parse "CREATE TABLE t (id INT NOT NULL, name TEXT, w REAL)") with
  | Sql.Create_table { table; columns } ->
      check_str "table" "t" table;
      check_int "columns" 3 (List.length columns);
      check_bool "not null" true ((List.hd columns).nullable = false)
  | _ -> Alcotest.fail "not a create"

let test_parse_errors () =
  let is_err s = Result.is_error (Sql.parse s) in
  check_bool "garbage" true (is_err "DROP TABLE t");
  check_bool "unterminated string" true (is_err "SELECT * FROM t WHERE a = 'x");
  check_bool "trailing tokens" true (is_err "SELECT * FROM t WHERE a = 1 garbage extra");
  check_bool "keyword as ident" true (is_err "SELECT * FROM where");
  check_bool "strict non-integer bound rejected" true (is_err "SELECT * FROM t WHERE a < 'x'");
  check_bool "bad limit" true (is_err "SELECT * FROM t LIMIT 'x'")

(* ---------------- JOIN parsing ---------------- *)

(* Assert that [sql] fails to parse with an error anchored at the
   first occurrence of [needle] — the offending token's own position,
   not the statement start. *)
let expect_err_at sql needle =
  let idx =
    let nl = String.length needle in
    let rec go i =
      if i + nl > String.length sql then Alcotest.fail ("needle not in sql: " ^ needle)
      else if String.sub sql i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  match Sql.parse sql with
  | Ok _ -> Alcotest.fail ("parsed unexpectedly: " ^ sql)
  | Error e ->
      let suffix = Printf.sprintf "(at offset %d)" idx in
      check_bool
        (Printf.sprintf "error %S anchored at %d (%s)" e idx needle)
        true
        (String.length e >= String.length suffix
        && String.sub e (String.length e - String.length suffix) (String.length suffix) = suffix)

let test_parse_join_shapes () =
  (match ok (Sql.parse "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = 1 LIMIT 3") with
  | Sql.Select_join j ->
      check_str "left" "a" j.j_left;
      check_str "right" "b" j.j_right;
      check_bool "on left" true (j.j_on_left = { Sql.q_table = "a"; q_column = "x" });
      check_bool "on right" true (j.j_on_right = { Sql.q_table = "b"; q_column = "y" });
      check_bool "where qualified" true (j.j_where = Predicate.Eq ("a.z", Value.Int 1L));
      check_bool "limit" true (j.j_limit = Some 3)
  | _ -> Alcotest.fail "not a join");
  (* ON order is normalized: the left table's reference comes first
     regardless of how the query spells it. *)
  (match ok (Sql.parse "SELECT * FROM a JOIN b ON b.y = a.x") with
  | Sql.Select_join j ->
      check_str "normalized on-left table" "a" j.j_on_left.Sql.q_table;
      check_str "normalized on-right table" "b" j.j_on_right.Sql.q_table
  | _ -> Alcotest.fail "not a join");
  (* Qualified projection, and quoted (dotted) table names. *)
  match ok (Sql.parse "SELECT \"a.b\".x, c.y FROM \"a.b\" JOIN c ON \"a.b\".k = c.k") with
  | Sql.Select_join j ->
      check_bool "projection" true
        (j.j_projection
        = `Columns
            [ { Sql.q_table = "a.b"; q_column = "x" }; { Sql.q_table = "c"; q_column = "y" } ])
  | _ -> Alcotest.fail "not a join"

let test_parse_join_errors () =
  (* Unknown qualifier in ON, anchored at the reference itself. *)
  expect_err_at "SELECT * FROM a JOIN b ON c.x = b.y" "c.x";
  (* Unknown qualifier in WHERE. *)
  expect_err_at "SELECT * FROM a JOIN b ON a.x = b.y WHERE zz.k = 1" "zz.k";
  (* Unknown qualifier in the projection. *)
  expect_err_at "SELECT nope.x FROM a JOIN b ON a.x = b.y" "nope.x";
  (* Qualified reference outside a JOIN. *)
  expect_err_at "SELECT * FROM t WHERE t.x = 1" "t.x";
  expect_err_at "SELECT t.x FROM t" "t.x";
  (* Self-join and single-table ON. *)
  expect_err_at "SELECT * FROM a JOIN a ON a.x = a.y" "a ON";
  expect_err_at "SELECT * FROM a JOIN b ON a.x = a.y" "a.y";
  (* Bare (unqualified) references inside a JOIN are rejected too. *)
  check_bool "bare ON column" true
    (Result.is_error (Sql.parse "SELECT * FROM a JOIN b ON x = b.y"));
  check_bool "bare WHERE column" true
    (Result.is_error (Sql.parse "SELECT * FROM a JOIN b ON a.x = b.y WHERE k = 1"))

let test_execute_plain_join () =
  let db = Database.create () in
  let stmts =
    [
      "CREATE TABLE people (id INT NOT NULL, name TEXT NOT NULL)";
      "CREATE TABLE pets (id INT NOT NULL, owner TEXT NOT NULL, species TEXT NOT NULL)";
    ]
    @ List.init 6 (fun i ->
          Printf.sprintf "INSERT INTO people VALUES (%d, '%s')" i
            (if i mod 2 = 0 then "ann" else "bob"))
    @ List.init 4 (fun i ->
          Printf.sprintf "INSERT INTO pets VALUES (%d, '%s', '%s')" i
            (if i < 3 then "ann" else "zoe")
            (if i mod 2 = 0 then "dog" else "cat"))
  in
  List.iter (fun s -> ignore (ok (Sql.execute db s))) stmts;
  let r = ok (Sql.execute db "SELECT * FROM people JOIN pets ON people.name = pets.owner") in
  check_bool "qualified headers" true
    (r.columns = [ "people.id"; "people.name"; "pets.id"; "pets.owner"; "pets.species" ]);
  (* 3 ann-pets x 3 ann-people; zoe matches nobody. *)
  check_int "rows" 9 (List.length r.rows);
  check_bool "join exec populated" true (r.join_exec <> None);
  let r2 =
    ok
      (Sql.execute db
         "SELECT pets.id FROM people JOIN pets ON people.name = pets.owner WHERE pets.species = \
          'dog' LIMIT 4")
  in
  check_int "where + limit" 4 (List.length r2.rows);
  check_bool "projected" true (List.for_all (fun row -> Array.length row = 1) r2.rows);
  check_bool "missing table error" true
    (Result.is_error (Sql.execute db "SELECT * FROM people JOIN nope ON people.name = nope.x"))

(* ---------------- Execution ---------------- *)

let make_db () =
  let db = Database.create () in
  List.iter
    (fun stmt -> ignore (ok (Sql.execute db stmt)))
    ([ "CREATE TABLE people (id INT NOT NULL, name TEXT NOT NULL, age INT NOT NULL)" ]
    @ List.init 20 (fun i ->
          Printf.sprintf "INSERT INTO people VALUES (%d, '%s', %d)" i
            (if i mod 2 = 0 then "even" else "odd")
            (20 + i)));
  ignore (Table.create_index (Database.table db "people") ~column:"name");
  db

let test_execute_select () =
  let db = make_db () in
  let r = ok (Sql.execute db "SELECT * FROM people WHERE name = 'even'") in
  check_int "rows" 10 (List.length r.rows);
  check_int "all columns" 3 (List.length r.columns);
  check_bool "used the index" true
    ((Option.get r.exec).plan = Executor.Index_scan "name");
  let r2 = ok (Sql.execute db "SELECT name, age FROM people WHERE id BETWEEN 0 AND 4 LIMIT 3") in
  check_int "limited" 3 (List.length r2.rows);
  check_bool "projected" true (List.for_all (fun row -> Array.length row = 2) r2.rows)

let test_execute_errors () =
  let db = make_db () in
  check_bool "missing table" true (Result.is_error (Sql.execute db "SELECT * FROM nope"));
  check_bool "missing column" true
    (Result.is_error (Sql.execute db "SELECT zz FROM people"));
  check_bool "bad insert arity" true
    (Result.is_error (Sql.execute db "INSERT INTO people VALUES (1)"));
  check_bool "duplicate create" true
    (Result.is_error (Sql.execute db "CREATE TABLE people (id INT)"))

(* ---------------- Proxy ---------------- *)

let plain_schema =
  Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "name"; ty = TText; nullable = false };
      { name = "city"; ty = TText; nullable = false };
      { name = "age"; ty = TInt; nullable = false };
    ]

let people =
  List.init 60 (fun i ->
      [|
        Value.Int (Int64.of_int i);
        Value.Text (if i mod 3 = 0 then "ann" else if i mod 3 = 1 then "bob" else "cat");
        Value.Text (if i mod 2 = 0 then "pdx" else "sea");
        Value.Int (Int64.of_int (20 + (i mod 40)));
      |])

let make_proxy_edb kind =
  let db = Database.create () in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:plain_schema ~columns:[ "name"; "city" ] (List.to_seq people)
  in
  let master = Crypto.Keys.of_raw ~k0:(String.make 16 'p') ~k1:(String.make 32 'q') in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"people" ~plain_schema ~key_column:"id"
      ~encrypted_columns:[ "name"; "city" ] ~kind ~master ~dist_of ~seed:5L ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) people;
  (Wre.Proxy.create edb, edb)

let make_proxy kind = fst (make_proxy_edb kind)

let counter_delta name f =
  let c = Obs.Metrics.counter name in
  let before = Obs.Metrics.counter_value c in
  let x = f () in
  (x, Obs.Metrics.counter_value c - before)

let test_proxy_select_encrypted_eq () =
  List.iter
    (fun kind ->
      let proxy = make_proxy kind in
      let r = ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE name = 'ann'") in
      check_int (Wre.Scheme.to_string kind ^ " rows") 20 (List.length r.rows);
      List.iter
        (fun row -> check_bool "right rows" true (row.(1) = Value.Text "ann"))
        r.rows)
    [ Wre.Scheme.Det; Wre.Scheme.Poisson 100.0; Wre.Scheme.Bucketized 100.0 ]

let test_proxy_multi_column_and () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r =
    ok (Wre.Proxy.execute proxy "SELECT id FROM people WHERE name = 'ann' AND city = 'pdx'")
  in
  let expected =
    List.length
      (List.filter (fun p -> p.(1) = Value.Text "ann" && p.(2) = Value.Text "pdx") people)
  in
  check_int "conjunction over two encrypted columns" expected (List.length r.rows);
  check_bool "projected one column" true (List.for_all (fun row -> Array.length row = 1) r.rows)

let test_proxy_residual_filter () =
  (* age is not searchable: the proxy must fetch on the name leg and
     filter age client-side. *)
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r =
    ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE name = 'bob' AND age BETWEEN 30 AND 39")
  in
  let expected =
    List.length
      (List.filter
         (fun p ->
           p.(1) = Value.Text "bob"
           && match p.(3) with Value.Int a -> a >= 30L && a <= 39L | _ -> false)
         people)
  in
  check_int "residual age filter" expected (List.length r.rows);
  check_bool "server returned a superset" true (r.server_rows >= List.length r.rows)

let test_proxy_key_passthrough () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r = ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE id BETWEEN 5 AND 9") in
  check_int "key range served by index" 5 (List.length r.rows)

let test_proxy_rewrite_shape () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  match Sql.parse "SELECT * FROM people WHERE name = 'ann' AND age = 25" with
  | Ok (Sql.Select s) ->
      let rw = ok (Wre.Proxy.rewrite_select proxy s) in
      check_bool "server side is a tag IN-list" true
        (match rw.server_predicate with Predicate.In ("name_tag", _ :: _) -> true | _ -> false);
      check_bool "age stays client-side" true
        (List.mem "age" (Predicate.columns rw.residual));
      check_bool "server sql mentions tags" true
        (String.length rw.server_sql > 0
        &&
        let re = "name_tag" in
        let found = ref false in
        String.iteri
          (fun i _ ->
            if i + String.length re <= String.length rw.server_sql
               && String.sub rw.server_sql i (String.length re) = re
            then found := true)
          rw.server_sql;
        !found)
  | _ -> Alcotest.fail "parse failed"

let test_proxy_insert_and_search () =
  let proxy = make_proxy (Wre.Scheme.Fixed 5) in
  ignore (ok (Wre.Proxy.execute proxy "INSERT INTO people VALUES (100, 'ann', 'pdx', 33)"));
  let r = ok (Wre.Proxy.execute proxy "SELECT id FROM people WHERE name = 'ann' AND id >= 100") in
  check_int "finds the inserted row" 1 (List.length r.rows)

let test_proxy_unknown_plaintext_insert () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  check_bool "outside-distribution insert rejected" true
    (Result.is_error (Wre.Proxy.execute proxy "INSERT INTO people VALUES (101, 'zoe', 'pdx', 30)"))

let test_proxy_or_across_encrypted_columns () =
  (* Both legs rewrite to tag IN-lists, so the server evaluates the OR
     itself as a union of index lookups — it must NOT ship the whole
     table (the pre-fix silent degradation). *)
  let proxy, edb = make_proxy_edb (Wre.Scheme.Poisson 100.0) in
  let sql = "SELECT * FROM people WHERE name = 'ann' OR city = 'sea'" in
  let r, full_scans = counter_delta "proxy.full_scan_total" (fun () -> ok (Wre.Proxy.execute proxy sql)) in
  let expected =
    List.length
      (List.filter (fun p -> p.(1) = Value.Text "ann" || p.(2) = Value.Text "sea") people)
  in
  check_int "disjunction exact" expected (List.length r.rows);
  check_int "server shipped only the union" expected r.server_rows;
  check_int "not flagged as a full scan" 0 full_scans;
  check_bool "executor ran an index union" true
    (match r.exec with
    | Some e -> e.Executor.plan = Executor.Or_index_scan [ "name_tag"; "city_tag" ]
    | None -> false);
  (* The rewrite shape itself: OR of tag IN-lists server-side, the
     original plaintext OR kept as the residual. *)
  match Sql.parse sql with
  | Ok (Sql.Select s) ->
      let rw = ok (Wre.Proxy.rewrite_select proxy s) in
      check_bool "server OR of tag lists" true
        (match rw.server_predicate with
        | Predicate.Or [ Predicate.In ("name_tag", _ :: _); Predicate.In ("city_tag", _ :: _) ] ->
            true
        | _ -> false);
      check_bool "residual keeps the plaintext OR" true
        (match rw.residual with Predicate.Or [ _; _ ] -> true | _ -> false);
      check_bool "explain plans the union" true
        (Executor.explain (Wre.Encrypted_db.table edb) rw.server_predicate
        = Executor.Or_index_scan [ "name_tag"; "city_tag" ])
  | _ -> Alcotest.fail "parse failed"

let test_proxy_or_fallback_full_scan () =
  (* One leg (age) is not server-checkable: the whole OR degrades to a
     full scan, which must stay exact and be surfaced in metrics. *)
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r, full_scans =
    counter_delta "proxy.full_scan_total" (fun () ->
        ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE name = 'ann' OR age >= 50"))
  in
  let expected =
    List.length
      (List.filter
         (fun p ->
           p.(1) = Value.Text "ann" || match p.(3) with Value.Int a -> a >= 50L | _ -> false)
         people)
  in
  check_int "degraded OR exact" expected (List.length r.rows);
  check_int "server shipped the whole table" 60 r.server_rows;
  check_int "full scan surfaced" 1 full_scans

let test_proxy_not_on_encrypted_column () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r = ok (Wre.Proxy.execute proxy "SELECT id FROM people WHERE NOT name = 'ann'") in
  check_int "negation exact" 40 (List.length r.rows)

let test_proxy_limit_after_fp_filter () =
  (* LIMIT must count decrypted true positives, not raw server rows. *)
  let proxy = make_proxy (Wre.Scheme.Bucketized 10.0) in
  let r = ok (Wre.Proxy.execute proxy "SELECT id FROM people WHERE name = 'ann' LIMIT 7") in
  check_int "limit applied post-filter" 7 (List.length r.rows)

let test_proxy_bucketized_fp_filtered () =
  let proxy = make_proxy (Wre.Scheme.Bucketized 10.0) in
  let r = ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE city = 'pdx'") in
  check_int "exact after residual filter" 30 (List.length r.rows);
  check_bool "server sent false positives" true (r.server_rows >= 30)

let test_proxy_delete_respects_false_positives () =
  (* DELETE through the proxy must decrypt + residual-filter before
     tombstoning, so bucketized false positives survive. *)
  let proxy = make_proxy (Wre.Scheme.Bucketized 10.0) in
  let r = ok (Wre.Proxy.execute proxy "DELETE FROM people WHERE name = 'ann'") in
  check_int "deleted exactly the anns" 20 r.affected;
  check_bool "server saw a superset" true (r.server_rows >= 20);
  let remaining = ok (Wre.Proxy.execute proxy "SELECT * FROM people") in
  check_int "others intact" 40 (List.length remaining.rows);
  check_bool "no ann left" true
    (List.for_all (fun row -> row.(1) <> Value.Text "ann") remaining.rows)

let test_proxy_update_reencrypts () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r = ok (Wre.Proxy.execute proxy "UPDATE people SET city = 'sea' WHERE name = 'bob'") in
  check_int "updated the bobs" 20 r.affected;
  let bobs = ok (Wre.Proxy.execute proxy "SELECT city FROM people WHERE name = 'bob'") in
  check_int "still findable" 20 (List.length bobs.rows);
  check_bool "all moved" true (List.for_all (fun row -> row.(0) = Value.Text "sea") bobs.rows);
  (* And the new city value is searchable through its own tags. *)
  let sea = ok (Wre.Proxy.execute proxy "SELECT id FROM people WHERE city = 'sea' AND name = 'bob'") in
  check_int "searchable under new value" 20 (List.length sea.rows)

let test_proxy_update_outside_distribution () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  check_bool "rejected without fallback" true
    (Result.is_error (Wre.Proxy.execute proxy "UPDATE people SET name = 'newname' WHERE id = 1"))

let test_proxy_update_atomic () =
  (* A multi-row UPDATE whose replacement value cannot be encrypted
     must leave the table byte-for-byte unchanged — the pre-fix
     delete-then-insert loop tombstoned rows before discovering the
     replacement was outside the distribution, losing data. *)
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  check_bool "batch update rejected" true
    (Result.is_error (Wre.Proxy.execute proxy "UPDATE people SET name = 'zoe' WHERE name = 'ann'"));
  let all = ok (Wre.Proxy.execute proxy "SELECT * FROM people") in
  check_int "no row lost" 60 (List.length all.rows);
  let anns = ok (Wre.Proxy.execute proxy "SELECT id FROM people WHERE name = 'ann'") in
  check_int "all anns survive, still searchable" 20 (List.length anns.rows)

let test_proxy_limit_decrypts_lazily () =
  (* LIMIT n must stop decrypting after the n-th surviving row instead
     of decrypting the server's whole answer (20 anns here). *)
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r, decrypted =
    counter_delta "edb.rows_decrypted_total" (fun () ->
        ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE name = 'ann' LIMIT 5"))
  in
  check_int "limited rows" 5 (List.length r.rows);
  check_bool "server answered with all matches" true (r.server_rows >= 20);
  check_int "decrypted only what LIMIT needed" 5 decrypted;
  (* Bucketized false positives still cost decryptions, but never more
     than the server's answer and never the rest after the n-th hit. *)
  let proxy = make_proxy (Wre.Scheme.Bucketized 10.0) in
  let r, decrypted =
    counter_delta "edb.rows_decrypted_total" (fun () ->
        ok (Wre.Proxy.execute proxy "SELECT * FROM people WHERE name = 'ann' LIMIT 7"))
  in
  check_int "limited rows post-filter" 7 (List.length r.rows);
  check_bool "decrypted at most the server answer" true (decrypted <= r.server_rows);
  check_bool "decrypted at least the survivors" true (decrypted >= 7)

let test_proxy_in_list_on_encrypted_column () =
  let proxy = make_proxy (Wre.Scheme.Poisson 100.0) in
  let r = ok (Wre.Proxy.execute proxy "SELECT id FROM people WHERE name IN ('ann', 'cat')") in
  check_int "union of both values" 40 (List.length r.rows)

(* ---------------- Proxy: encrypted equi-joins ---------------- *)

let pets_schema =
  Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "owner"; ty = TText; nullable = false };
      { name = "species"; ty = TText; nullable = false };
    ]

let pets =
  (* Owners: ann and bob join people; zoe joins nobody (and people's
     cat has no pets) — both one-sided support tails are exercised. *)
  List.init 30 (fun i ->
      [|
        Value.Int (Int64.of_int i);
        Value.Text (match i mod 3 with 0 -> "ann" | 1 -> "bob" | _ -> "zoe");
        Value.Text (if i mod 2 = 0 then "dog" else "cat");
      |])

let make_join_proxy kind =
  let db = Database.create () in
  let master = Crypto.Keys.of_raw ~k0:(String.make 16 'p') ~k1:(String.make 32 'q') in
  let dist_people =
    Wre.Dist_est.of_rows ~schema:plain_schema ~columns:[ "name"; "city" ] (List.to_seq people)
  in
  let dist_pets =
    Wre.Dist_est.of_rows ~schema:pets_schema ~columns:[ "owner"; "species" ] (List.to_seq pets)
  in
  let ep =
    Wre.Encrypted_db.create ~db ~name:"people" ~plain_schema ~key_column:"id"
      ~encrypted_columns:[ "name"; "city" ] ~kind ~master ~dist_of:dist_people ~seed:5L ()
  in
  let et =
    Wre.Encrypted_db.create ~db ~name:"pets" ~plain_schema:pets_schema ~key_column:"id"
      ~encrypted_columns:[ "owner"; "species" ] ~kind ~master ~dist_of:dist_pets ~seed:6L ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert ep r)) people;
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert et r)) pets;
  Wre.Proxy.create_multi [ ep; et ]

(* The plaintext oracle for the same two tables. *)
let join_reference sql =
  let db = Database.create () in
  let tp = Database.create_table db ~name:"people" ~schema:plain_schema in
  let tt = Database.create_table db ~name:"pets" ~schema:pets_schema in
  List.iter (fun r -> ignore (Table.insert tp r)) people;
  List.iter (fun r -> ignore (Table.insert tt r)) pets;
  ok (Sql.execute db sql)

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let test_proxy_join_matches_plaintext () =
  let sql = "SELECT * FROM people JOIN pets ON people.name = pets.owner" in
  let expected = join_reference sql in
  List.iter
    (fun kind ->
      let proxy = make_join_proxy kind in
      let r = ok (Wre.Proxy.execute proxy sql) in
      check_bool
        (Wre.Scheme.to_string kind ^ " qualified headers")
        true
        (r.columns
        = [
            "people.id"; "people.name"; "people.city"; "people.age"; "pets.id"; "pets.owner";
            "pets.species";
          ]);
      check_bool
        (Wre.Scheme.to_string kind ^ " join matches plaintext")
        true
        (sorted_rows r.rows = sorted_rows expected.rows);
      let jr = Option.get r.join_exec in
      check_bool "candidates are a superset" true
        (Array.length jr.Join.pairs >= List.length r.rows))
    [ Wre.Scheme.Det; Wre.Scheme.Fixed 5; Wre.Scheme.Poisson 100.0; Wre.Scheme.Bucketized 10.0 ]

let test_proxy_join_residual_where_and_limit () =
  let proxy = make_join_proxy (Wre.Scheme.Bucketized 10.0) in
  (* species is encrypted but the WHERE leg is residual-verified
     client-side; age is not searchable at all. *)
  let sql =
    "SELECT pets.id FROM people JOIN pets ON people.name = pets.owner WHERE pets.species = 'dog' \
     AND people.age >= 30"
  in
  let expected = join_reference sql in
  let r = ok (Wre.Proxy.execute proxy sql) in
  check_bool "residual WHERE exact" true (sorted_rows r.rows = sorted_rows expected.rows);
  let rl = ok (Wre.Proxy.execute proxy (sql ^ " LIMIT 5")) in
  check_int "limit after verification" 5 (List.length rl.rows);
  check_bool "limited rows are true matches" true
    (List.for_all (fun row -> List.mem (Array.to_list row) (sorted_rows expected.rows)) rl.rows)

let test_proxy_join_bucketized_verifies_fps () =
  (* Under aggressive bucketization the server's candidate pairs are a
     strict superset somewhere; the client must filter them all. *)
  let proxy = make_join_proxy (Wre.Scheme.Bucketized 10.0) in
  let sql = "SELECT * FROM people JOIN pets ON people.name = pets.owner" in
  let expected = join_reference sql in
  let r = ok (Wre.Proxy.execute proxy sql) in
  check_bool "exact despite FPs" true (sorted_rows r.rows = sorted_rows expected.rows);
  check_int "server_rows = candidate pairs" r.server_rows
    (Array.length (Option.get r.join_exec).Join.pairs)

let test_proxy_join_parallel_identical () =
  let sql =
    "SELECT people.id, pets.id FROM people JOIN pets ON people.name = pets.owner WHERE \
     pets.species = 'cat'"
  in
  let proxy = make_join_proxy (Wre.Scheme.Poisson 100.0) in
  let seq = ok (Wre.Proxy.execute proxy sql) in
  Stdx.Task_pool.with_pool ~domains:4 (fun pool ->
      let par = ok (Wre.Proxy.execute_snapshot ~pool proxy sql) in
      check_bool "4-domain join identical" true (seq.rows = par.rows);
      check_bool "same candidate pairs" true
        ((Option.get seq.join_exec).Join.pairs = (Option.get par.join_exec).Join.pairs))

let test_proxy_join_errors () =
  let proxy = make_join_proxy (Wre.Scheme.Poisson 100.0) in
  (* Joins need exact table names: no single-table fallback. *)
  check_bool "unknown table" true
    (Result.is_error
       (Wre.Proxy.execute proxy "SELECT * FROM people JOIN nope ON people.name = nope.x"));
  (* ON must target searchable encrypted columns. *)
  check_bool "non-encrypted ON column" true
    (Result.is_error
       (Wre.Proxy.execute proxy "SELECT * FROM people JOIN pets ON people.age = pets.id"))

let test_proxy_rewrite_join_buckets () =
  let proxy = make_join_proxy (Wre.Scheme.Poisson 100.0) in
  match Sql.parse "SELECT * FROM people JOIN pets ON people.name = pets.owner" with
  | Ok (Sql.Select_join j) ->
      let buckets = ok (Wre.Proxy.rewrite_join proxy j) in
      (* Shared support is {ann, bob}: people has no zoe, pets no cat. *)
      let names = List.sort compare (Array.to_list (Array.map (fun (m, _, _) -> m) buckets)) in
      check_bool "buckets = shared support" true (names = [ "ann"; "bob" ]);
      Array.iter
        (fun (_, l, r) ->
          check_bool "both sides have tags" true (l <> [] && r <> []))
        buckets
  | _ -> Alcotest.fail "parse failed"

(* ---------------- Printer: quoted identifiers, round-trip ---------------- *)

let test_quoted_identifiers () =
  check_bool "keyword as quoted column" true
    (parse_pred "\"select\" = 1" = Predicate.Eq ("select", Value.Int 1L));
  check_bool "quote escape" true (parse_pred "\"a\"\"b\" = 1" = Predicate.Eq ("a\"b", Value.Int 1L));
  check_bool "spaces and case preserved" true
    (parse_pred "\"Weird Name\" = 'x'" = Predicate.Eq ("Weird Name", Value.Text "x"));
  (match ok (Sql.parse "SELECT \"from\", name FROM \"order table\"") with
  | Sql.Select s ->
      check_bool "quoted projection" true (s.projection = `Columns [ "from"; "name" ]);
      check_str "quoted table" "order table" s.table
  | _ -> Alcotest.fail "not a select");
  check_bool "unterminated rejected" true (Result.is_error (Sql.parse_predicate "\"a = 1"));
  check_str "printer quotes keywords" "\"select\" = 1"
    (Sql.print_predicate (Predicate.Eq ("select", Value.Int 1L)));
  check_str "printer quotes TRUE (it opens an atom)" "\"true\" = 1"
    (Sql.print_predicate (Predicate.Eq ("true", Value.Int 1L)));
  check_str "plain idents stay bare, '' escape used" "name = 'O''Brien'"
    (Sql.print_predicate (Predicate.Eq ("name", Value.Text "O'Brien")))

let test_number_lexing_exponent () =
  check_bool "e+ exponent" true
    (parse_pred "score = 1e+3" = Predicate.Eq ("score", Value.Real 1000.0));
  check_bool "e- exponent" true
    (parse_pred "score = 25e-2" = Predicate.Eq ("score", Value.Real 0.25));
  (* large magnitudes print with e+NN and must survive the round trip *)
  check_bool "printed float reparses" true
    (parse_pred (Sql.print_predicate (Predicate.Eq ("score", Value.Real 1e300)))
    = Predicate.Eq ("score", Value.Real 1e300));
  check_bool "integral float keeps REAL type" true
    (parse_pred (Sql.print_predicate (Predicate.Eq ("score", Value.Real 42.0)))
    = Predicate.Eq ("score", Value.Real 42.0))

(* Generators for the print → re-parse property. Identifiers include
   keywords, embedded quotes, spaces and leading digits (everything the
   printer must "…"-quote); TEXT values include the '' escape. *)
let gen_ident =
  QCheck.Gen.(
    oneof
      [
        oneofl [ "id"; "name"; "city"; "age"; "col_9"; "_tmp"; "x" ];
        oneofl [ "select"; "WHERE"; "true"; "NULL"; "in"; "between" ];
        oneofl [ "weird name"; "quo\"te"; "9lives"; "semi;colon"; "paren)"; "a'b" ];
      ])

let gen_text =
  QCheck.Gen.(
    oneof
      [ string_size ~gen:printable (int_range 0 12); oneofl [ "O'Brien"; "''"; "'"; "a\nb" ] ])

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Value.Int (Int64.of_int i)) int);
        (1, oneofl [ Value.Int Int64.min_int; Value.Int Int64.max_int; Value.Null ]);
        (2, map (fun f -> Value.Real (if Float.is_finite f then f else 0.5)) float);
        (1, oneofl [ Value.Real 1e300; Value.Real (-0.0); Value.Real 2.5e-7 ]);
        (3, map (fun s -> Value.Text s) gen_text);
        (1, map (fun s -> Value.Blob s) (string_size ~gen:char (int_range 0 8)));
      ])

(* Canonical shapes only: the parser folds nested same-connective
   chains flat (even parenthesized tails), so And legs are never And
   and Or legs never Or — exactly the ASTs the parser itself emits. *)
let gen_predicate_with gen_col =
  let open QCheck.Gen in
  let gen_atom =
    frequency
      [
        (1, return Predicate.True);
        (4, map2 (fun c v -> Predicate.Eq (c, v)) gen_col gen_value);
        (2, map2 (fun c vs -> Predicate.In (c, vs)) gen_col (list_size (int_range 1 4) gen_value));
        ( 2,
          map3
            (fun c v shape ->
              match shape with
              | 0 -> Predicate.Range (c, Some v, None)
              | 1 -> Predicate.Range (c, None, Some v)
              | _ -> Predicate.Range (c, Some v, Some v))
            gen_col gen_value (int_range 0 2) );
      ]
  in
  let rec gen depth parent =
    if depth = 0 then gen_atom
    else
      let gen_and () =
        map (fun legs -> Predicate.And legs) (list_size (int_range 2 3) (gen (depth - 1) `And))
      in
      let gen_or () =
        map (fun legs -> Predicate.Or legs) (list_size (int_range 2 3) (gen (depth - 1) `Or))
      in
      let gen_not () = map (fun q -> Predicate.Not q) (gen (depth - 1) `Top) in
      match parent with
      | `And -> frequency [ (3, gen_atom); (1, gen_or ()); (1, gen_not ()) ]
      | `Or -> frequency [ (3, gen_atom); (1, gen_and ()); (1, gen_not ()) ]
      | `Top -> frequency [ (3, gen_atom); (1, gen_and ()); (1, gen_or ()); (1, gen_not ()) ]
  in
  gen 3 `Top

let gen_predicate = gen_predicate_with gen_ident

let gen_statement =
  let open QCheck.Gen in
  let gen_select =
    map2
      (fun (projection, table) (where, limit) -> Sql.Select { projection; table; where; limit })
      (pair
         (oneof
            [ return `Star; map (fun cs -> `Columns cs) (list_size (int_range 1 3) gen_ident) ])
         gen_ident)
      (pair gen_predicate (opt (int_range 0 50)))
  in
  let gen_insert =
    map2
      (fun table values -> Sql.Insert { table; values })
      gen_ident
      (list_size (int_range 1 4) gen_value)
  in
  let gen_create =
    let gen_column =
      map3
        (fun name ty nullable -> { Schema.name; ty; nullable })
        gen_ident
        (oneofl [ Value.TInt; Value.TReal; Value.TText; Value.TBlob ])
        bool
    in
    map2
      (fun table columns -> Sql.Create_table { table; columns })
      gen_ident
      (list_size (int_range 1 3) gen_column)
  in
  let gen_delete =
    map2 (fun table where -> Sql.Delete { table; where }) gen_ident gen_predicate
  in
  let gen_update =
    map3
      (fun table assignments where -> Sql.Update { table; assignments; where })
      gen_ident
      (list_size (int_range 1 3) (pair gen_ident gen_value))
      gen_predicate
  in
  frequency [ (3, gen_select); (2, gen_insert); (1, gen_create); (1, gen_delete); (2, gen_update) ]

(* Join statements, respecting the invariants the parser itself
   establishes: distinct table names, ON references qualified by left
   resp. right, projection/WHERE columns qualified by one of the two.
   Table names include keywords, spaces and embedded dots (the printer
   must re-quote them and split WHERE columns on the longest table-name
   prefix). *)
let gen_join_statement =
  let open QCheck.Gen in
  let tables = [ "a"; "people"; "select"; "a.b"; "weird name" ] in
  let table_pairs =
    List.concat_map
      (fun l -> List.filter_map (fun r -> if l = r then None else Some (l, r)) tables)
      tables
  in
  oneofl table_pairs >>= fun (l, r) ->
  let qref t = map (fun c -> { Sql.q_table = t; q_column = c }) gen_ident in
  let qcol = map2 (fun pick c -> (if pick then l else r) ^ "." ^ c) bool gen_ident in
  let gen_proj =
    oneof
      [
        return `Star;
        map (fun cs -> `Columns cs) (list_size (int_range 1 3) (oneof [ qref l; qref r ]));
      ]
  in
  map2
    (fun ((proj, ol), orr) (where, limit) ->
      Sql.Select_join
        {
          j_projection = proj;
          j_left = l;
          j_right = r;
          j_on_left = ol;
          j_on_right = orr;
          j_where = where;
          j_limit = limit;
        })
    (pair (pair gen_proj (qref l)) (qref r))
    (pair (gen_predicate_with qcol) (opt (int_range 0 50)))

let qcheck_join_roundtrip =
  QCheck.Test.make ~name:"join print → re-parse round-trip" ~count:300
    (QCheck.make ~print:Sql.print_statement gen_join_statement) (fun st ->
      Sql.parse (Sql.print_statement st) = Ok st)

let qcheck_predicate_roundtrip =
  QCheck.Test.make ~name:"predicate print → re-parse round-trip" ~count:500
    (QCheck.make ~print:Sql.print_predicate gen_predicate) (fun p ->
      Sql.parse_predicate (Sql.print_predicate p) = Ok p)

let qcheck_statement_roundtrip =
  QCheck.Test.make ~name:"statement print → re-parse round-trip" ~count:300
    (QCheck.make ~print:Sql.print_statement gen_statement) (fun st ->
      Sql.parse (Sql.print_statement st) = Ok st)

(* ---------------- Property: proxy vs plaintext reference ---------------- *)

let qcheck_proxy_matches_plaintext =
  (* Random WHERE clauses executed through the rewriting proxy against
     the encrypted table must return exactly the rows a plaintext
     database returns. *)
  let where_gen =
    let open QCheck.Gen in
    let name_atom = map (Printf.sprintf "name = '%s'") (oneofl [ "ann"; "bob"; "cat"; "zoe" ]) in
    let city_atom = map (Printf.sprintf "city = '%s'") (oneofl [ "pdx"; "sea"; "nyc" ]) in
    let id_atom =
      map2
        (fun a b -> Printf.sprintf "id BETWEEN %d AND %d" (min a b) (max a b))
        (int_bound 70) (int_bound 70)
    in
    let age_atom = map (Printf.sprintf "age >= %d") (int_bound 60) in
    let atom = oneof [ name_atom; city_atom; id_atom; age_atom ] in
    let join op a b = Printf.sprintf "(%s) %s (%s)" a op b in
    oneof
      [ atom; map2 (join "AND") atom atom; map2 (join "OR") atom atom;
        map (Printf.sprintf "NOT (%s)") atom ]
  in
  let reference =
    lazy
      (let db = Database.create () in
       let t = Database.create_table db ~name:"people" ~schema:plain_schema in
       List.iter (fun r -> ignore (Table.insert t r)) people;
       t)
  in
  let proxy = lazy (make_proxy (Wre.Scheme.Bucketized 60.0)) in
  let ids_of rows =
    List.sort compare
      (List.map (fun row -> match row.(0) with Value.Int i -> i | _ -> -1L) rows)
  in
  QCheck.Test.make ~name:"proxy matches plaintext reference" ~count:60 (QCheck.make where_gen)
    (fun where ->
      match Sql.parse_predicate where with
      | Error _ -> false
      | Ok p ->
          let t = Lazy.force reference in
          let ref_rows =
            Array.to_list (Executor.run t ~projection:Executor.All_columns p).rows
          in
          let sql = "SELECT id FROM people WHERE " ^ where in
          let proxy_ids =
            match Wre.Proxy.execute (Lazy.force proxy) sql with
            | Error _ -> []
            | Ok r -> ids_of r.rows
          in
          proxy_ids = ids_of ref_rows)

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "strict comparisons" `Quick test_parse_strict_comparisons;
          Alcotest.test_case "boolean structure" `Quick test_parse_boolean_structure;
          Alcotest.test_case "string escapes" `Quick test_parse_string_escapes;
          Alcotest.test_case "select shapes" `Quick test_parse_select_shapes;
          Alcotest.test_case "insert/create" `Quick test_parse_insert_create;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "quoted identifiers" `Quick test_quoted_identifiers;
          Alcotest.test_case "exponent literals" `Quick test_number_lexing_exponent;
          Alcotest.test_case "join shapes" `Quick test_parse_join_shapes;
          Alcotest.test_case "join errors" `Quick test_parse_join_errors;
        ] );
      ( "execute",
        [
          Alcotest.test_case "select" `Quick test_execute_select;
          Alcotest.test_case "errors" `Quick test_execute_errors;
          Alcotest.test_case "plain join" `Quick test_execute_plain_join;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "encrypted equality" `Quick test_proxy_select_encrypted_eq;
          Alcotest.test_case "multi-column AND" `Quick test_proxy_multi_column_and;
          Alcotest.test_case "residual filter" `Quick test_proxy_residual_filter;
          Alcotest.test_case "key passthrough" `Quick test_proxy_key_passthrough;
          Alcotest.test_case "rewrite shape" `Quick test_proxy_rewrite_shape;
          Alcotest.test_case "insert then search" `Quick test_proxy_insert_and_search;
          Alcotest.test_case "unknown plaintext insert" `Quick test_proxy_unknown_plaintext_insert;
          Alcotest.test_case "or across encrypted columns" `Quick
            test_proxy_or_across_encrypted_columns;
          Alcotest.test_case "or fallback full scan" `Quick test_proxy_or_fallback_full_scan;
          Alcotest.test_case "not on encrypted column" `Quick test_proxy_not_on_encrypted_column;
          Alcotest.test_case "limit after fp filter" `Quick test_proxy_limit_after_fp_filter;
          Alcotest.test_case "bucketized fp filtered" `Quick test_proxy_bucketized_fp_filtered;
          Alcotest.test_case "delete respects FPs" `Quick test_proxy_delete_respects_false_positives;
          Alcotest.test_case "update re-encrypts" `Quick test_proxy_update_reencrypts;
          Alcotest.test_case "update outside distribution" `Quick
            test_proxy_update_outside_distribution;
          Alcotest.test_case "update atomic on failure" `Quick test_proxy_update_atomic;
          Alcotest.test_case "limit decrypts lazily" `Quick test_proxy_limit_decrypts_lazily;
          Alcotest.test_case "IN-list on encrypted column" `Quick
            test_proxy_in_list_on_encrypted_column;
          Alcotest.test_case "join matches plaintext" `Quick test_proxy_join_matches_plaintext;
          Alcotest.test_case "join residual where + limit" `Quick
            test_proxy_join_residual_where_and_limit;
          Alcotest.test_case "join bucketized verifies FPs" `Quick
            test_proxy_join_bucketized_verifies_fps;
          Alcotest.test_case "join parallel identical" `Quick test_proxy_join_parallel_identical;
          Alcotest.test_case "join errors" `Quick test_proxy_join_errors;
          Alcotest.test_case "join rewrite buckets" `Quick test_proxy_rewrite_join_buckets;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_proxy_matches_plaintext;
            qcheck_predicate_roundtrip;
            qcheck_statement_roundtrip;
            qcheck_join_roundtrip;
          ] );
    ]
