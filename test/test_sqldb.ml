(* Storage-engine tests: schema enforcement, index correctness versus a
   naive scan, the buffer-pool cold/warm behaviour the latency
   experiments depend on, and the size accounting behind Table I. *)

open Sqldb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_schema =
  Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "name"; ty = TText; nullable = false };
      { name = "score"; ty = TReal; nullable = true };
    ]

let mk_row id name score =
  [| Value.Int (Int64.of_int id); Value.Text name; (match score with Some s -> Value.Real s | None -> Value.Null) |]

(* ---------------- Value ---------------- *)

let test_value_compare_order () =
  check_bool "null smallest" true (Value.compare Value.Null (Value.Int 0L) < 0);
  check_bool "int order" true (Value.compare (Value.Int 1L) (Value.Int 2L) < 0);
  check_bool "int64 negatives" true (Value.compare (Value.Int (-1L)) (Value.Int 1L) < 0);
  check_bool "text order" true (Value.compare (Value.Text "a") (Value.Text "b") < 0);
  check_bool "equal" true (Value.equal (Value.Blob "x") (Value.Blob "x"))

let test_value_heap_bytes () =
  check_int "int" 8 (Value.heap_bytes (Value.Int 5L));
  check_int "real" 8 (Value.heap_bytes (Value.Real 1.5));
  check_int "null" 0 (Value.heap_bytes Value.Null);
  check_int "short text varlena" 6 (Value.heap_bytes (Value.Text "hello"));
  check_int "long text varlena" 204 (Value.heap_bytes (Value.Text (String.make 200 'x')))

let test_value_hash_consistent () =
  check_int "hash equal values" (Value.hash (Value.Text "abc")) (Value.hash (Value.Text "abc"));
  check_bool "pp output" true (String.length (Value.to_string (Value.Blob "\x01")) > 0)

(* ---------------- Schema ---------------- *)

let test_schema_validation () =
  check_int "arity" 3 (Schema.arity small_schema);
  check_int "index" 1 (Schema.column_index small_schema "name");
  Alcotest.(check (option int)) "missing" None (Schema.column_index_opt small_schema "nope");
  check_bool "valid row" true (Schema.validate_row small_schema (mk_row 1 "a" None) = Ok ());
  check_bool "arity mismatch" true
    (Result.is_error (Schema.validate_row small_schema [| Value.Int 1L |]));
  check_bool "type mismatch" true
    (Result.is_error
       (Schema.validate_row small_schema [| Value.Text "x"; Value.Text "a"; Value.Null |]));
  check_bool "not-null violated" true
    (Result.is_error (Schema.validate_row small_schema [| Value.Null; Value.Text "a"; Value.Null |]))

let test_schema_rejects_duplicates () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.create: duplicate column \"a\"") (fun () ->
      ignore
        (Schema.create
           [ { name = "a"; ty = TInt; nullable = false }; { name = "a"; ty = TInt; nullable = false } ]))

(* ---------------- Table ---------------- *)

let test_table_insert_read () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let id0 = Table.insert t (mk_row 0 "alice" (Some 1.0)) in
  let id1 = Table.insert t (mk_row 1 "bob" None) in
  check_int "row ids sequential" 0 id0;
  check_int "row ids sequential 2" 1 id1;
  check_int "count" 2 (Table.row_count t);
  Alcotest.(check string) "read back" "bob" (match (Table.read_row t 1).(1) with Value.Text s -> s | _ -> "?");
  Alcotest.check_raises "schema enforced"
    (Invalid_argument "Table.insert(t): column \"name\" expects TEXT, got INT") (fun () ->
      ignore (Table.insert t [| Value.Int 2L; Value.Int 3L; Value.Null |]))

let test_table_pages_grow () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  (* Distinct ~104-byte names: nothing deduplicates, so the dictionary
     holds 1000 large entries and the heap must still span many pages. *)
  for i = 0 to 999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "%04d%s" i (String.make 100 'x')) (Some 0.0)))
  done;
  check_bool "multiple pages" true (Table.heap_pages t > 5);
  check_bool "pages monotone with rows" true (Table.row_page t 999 >= Table.row_page t 0);
  check_bool "heap bytes = pages * size" true
    (Table.heap_bytes t = Table.heap_pages t * (Pager.config pager).page_size);
  check_bool "avg row bytes sane" true (Table.avg_row_bytes t > 0.0);
  (* Row-format shadow accounting sees the values inline: > 100 B/row. *)
  check_bool "row-model bytes sane" true
    (Table.row_model_bytes t > 100 * Table.live_count t);
  (* Same string every row: the dictionary stores it once and pages
     collapse — the columnar win the shadow accounting quantifies. *)
  let t2 = Table.create pager ~name:"t2" ~schema:small_schema in
  for i = 0 to 999 do
    ignore (Table.insert t2 (mk_row i (String.make 100 'x') (Some 0.0)))
  done;
  check_bool "repeated values compress" true (Table.heap_bytes t2 < Table.row_model_bytes t2)

let test_table_scan () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 99 do
    ignore (Table.insert t (mk_row i "n" None))
  done;
  let seen = ref 0 in
  Table.scan t (fun _id _row -> incr seen);
  check_int "visits all" 100 !seen;
  let stats = Pager.stats pager in
  check_bool "charged rows" true (stats.rows_examined >= 100)

(* ---------------- Btree index ---------------- *)

let naive_lookup t col v =
  let acc = ref [] in
  for id = Table.row_count t - 1 downto 0 do
    if Value.equal (Table.peek_row t id).(col) v then acc := id :: !acc
  done;
  Array.of_list !acc

let test_index_matches_naive () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let g = Stdx.Prng.create 8L in
  for i = 0 to 499 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "name%d" (Stdx.Prng.int g 20)) None))
  done;
  let idx = Table.create_index t ~column:"name" in
  for k = 0 to 19 do
    let v = Value.Text (Printf.sprintf "name%d" k) in
    let from_index = Table_index.lookup idx v in
    Array.sort compare from_index;
    Alcotest.(check (array int)) (Printf.sprintf "key %d" k) (naive_lookup t 1 v) from_index
  done;
  Alcotest.(check (array int)) "missing key" [||] (Table_index.lookup idx (Value.Text "absent"))

let test_index_lookup_many_dedups () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 49 do
    ignore (Table.insert t (mk_row i (if i mod 2 = 0 then "even" else "odd") None))
  done;
  let idx = Table.create_index t ~column:"name" in
  let ids = Table_index.lookup_many idx [ Value.Text "even"; Value.Text "odd"; Value.Text "even" ] in
  check_int "all rows exactly once" 50 (Array.length ids)

let test_index_range () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 99 do
    ignore (Table.insert t (mk_row i "x" None))
  done;
  let idx = Table.create_index t ~column:"id" in
  let ids = Option.get (Table_index.range idx ~lo:(Value.Int 10L) ~hi:(Value.Int 19L) ()) in
  check_int "inclusive range" 10 (Array.length ids);
  let all = Option.get (Table_index.range idx ()) in
  check_int "unbounded" 100 (Array.length all);
  let empty = Option.get (Table_index.range idx ~lo:(Value.Int 200L) ()) in
  check_int "empty range" 0 (Array.length empty)

let test_index_incremental_after_create () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let idx = Table.create_index t ~column:"name" in
  ignore (Table.insert t (mk_row 0 "late" None));
  check_int "sees post-create insert" 1 (Array.length (Table_index.lookup idx (Value.Text "late")))

let test_index_sizes () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 9999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "u%d" i) None))
  done;
  let idx = Table.create_index t ~column:"name" in
  let btree = match idx with Table_index.B b -> b | Table_index.H _ -> Alcotest.fail "not btree" in
  check_int "entries" 10000 (Table_index.entry_count idx);
  check_int "distinct" 10000 (Btree_index.distinct_keys btree);
  check_bool "has pages" true (Btree_index.leaf_pages btree > 10);
  check_bool "height >= 1" true (Btree_index.height btree >= 1);
  check_bool "size covers entries" true
    (Table_index.size_bytes idx > 10000 * 16);
  (* Duplicate-heavy index should pack denser than a unique one. *)
  let t2 = Table.create pager ~name:"t2" ~schema:small_schema in
  for i = 0 to 9999 do
    ignore (Table.insert t2 (mk_row i "same" None))
  done;
  let btree2 =
    match Table.create_index t2 ~column:"name" with
    | Table_index.B b -> b
    | Table_index.H _ -> Alcotest.fail "not btree"
  in
  check_bool "duplicates pack denser" true
    (Btree_index.leaf_pages btree2 < Btree_index.leaf_pages btree)

(* ---------------- Hash index ---------------- *)

let test_hash_index_matches_naive () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let g = Stdx.Prng.create 12L in
  for i = 0 to 499 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "name%d" (Stdx.Prng.int g 20)) None))
  done;
  let idx = Table.create_index ~kind:Table_index.Hash t ~column:"name" in
  check_bool "is hash" true (Table_index.kind idx = Table_index.Hash);
  for k = 0 to 19 do
    let v = Value.Text (Printf.sprintf "name%d" k) in
    let from_index = Table_index.lookup idx v in
    Array.sort compare from_index;
    Alcotest.(check (array int)) (Printf.sprintf "key %d" k) (naive_lookup t 1 v) from_index
  done;
  Alcotest.(check (array int)) "missing key" [||] (Table_index.lookup idx (Value.Text "nope"))

let test_hash_index_no_range () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 99 do
    ignore (Table.insert t (mk_row i "x" None))
  done;
  let idx = Table.create_index ~kind:Table_index.Hash t ~column:"id" in
  check_bool "range unsupported" true (Table_index.range idx ~lo:(Value.Int 1L) () = None);
  (* The executor must fall back to a seq scan, still correct. *)
  let r =
    Executor.run t ~projection:Executor.Row_ids
      (Predicate.Range ("id", Some (Value.Int 10L), Some (Value.Int 19L)))
  in
  check_bool "falls back to seq scan" true (r.plan = Seq_scan);
  check_int "correct result" 10 (Array.length r.row_ids)

let test_hash_index_probe_cost_flat () =
  (* Hash probes touch O(1) pages regardless of table size; a B-tree's
     descent grows with height. Compare misses for a singleton lookup
     on a large unique column. *)
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 49_999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "u%06d" i) None))
  done;
  let hash_idx = Table.create_index ~kind:Table_index.Hash t ~column:"name" in
  let btree_idx = Table.create_index ~kind:Table_index.Btree t ~column:"id" in
  Pager.drop_caches pager;
  Pager.reset_stats pager;
  ignore (Table_index.lookup hash_idx (Value.Text "u012345"));
  let hash_misses = (Pager.stats pager).misses in
  Pager.drop_caches pager;
  Pager.reset_stats pager;
  ignore (Table_index.lookup btree_idx (Value.Int 12345L));
  let btree_misses = (Pager.stats pager).misses in
  check_bool "hash touches one page" true (hash_misses = 1);
  check_bool "btree touches a root-to-leaf path" true (btree_misses > hash_misses)

let test_hash_index_sizes () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 9999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "u%d" i) None))
  done;
  let idx = Table.create_index ~kind:Table_index.Hash t ~column:"name" in
  check_int "entries" 10000 (Table_index.entry_count idx);
  check_bool "pages power of two" true
    (let p =
       match idx with Table_index.H h -> Hash_index.bucket_pages h | Table_index.B _ -> 0
     in
     p > 0 && p land (p - 1) = 0);
  check_bool "size positive" true (Table_index.size_bytes idx > 0)

(* ---------------- Pager cold/warm ---------------- *)

let test_pager_cold_warm () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 4999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "n%d" (i mod 50)) None))
  done;
  ignore (Table.create_index t ~column:"name");
  let run () =
    Pager.reset_stats pager;
    let r = Executor.run t ~projection:Executor.All_columns (Predicate.Eq ("name", Value.Text "n7")) in
    (r, Pager.stats pager)
  in
  Pager.drop_caches pager;
  let r_cold, s_cold = run () in
  let r_warm, s_warm = run () in
  check_int "same results" (Array.length r_cold.row_ids) (Array.length r_warm.row_ids);
  check_bool "cold has misses" true (s_cold.misses > 0);
  check_int "warm has no misses" 0 s_warm.misses;
  check_bool "warm cheaper" true (s_warm.sim_ns < s_cold.sim_ns);
  Pager.drop_caches pager;
  let _, s_cold2 = run () in
  check_bool "drop_caches restores cold cost" true (s_cold2.misses = s_cold.misses)

let test_pager_stats_accumulate () =
  let pager = Pager.create () in
  let rel = Pager.make_rel pager ~name:"r" in
  Pager.touch pager rel 0;
  Pager.touch pager rel 0;
  Pager.touch pager rel 1;
  let s = Pager.stats pager in
  check_int "misses" 2 s.misses;
  check_int "hits" 1 s.hits;
  check_bool "sim time from misses" true (s.sim_ns >= 2.0 *. (Pager.config pager).io_miss_ns);
  Pager.reset_stats pager;
  check_int "reset" 0 (Pager.stats pager).misses

(* ---------------- Snapshot views & parallel pager accounting ---------------- *)

let test_pager_counters_exact_multi_domain () =
  (* Four domains query disjoint slices of a frozen view concurrently.
     Each query's [stats] is a domain-local delta; the pager's atomic
     whole-instance totals must equal the sum of those deltas exactly —
     a lost-update race in the counters would break the equality. *)
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 4999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "n%d" (i mod 64)) None))
  done;
  ignore (Table.create_index t ~column:"name");
  let view = Table.freeze t in
  let pred k = Predicate.Eq ("name", Value.Text (Printf.sprintf "n%d" k)) in
  let seq = Array.init 64 (fun k -> Executor.run t ~projection:Executor.All_columns (pred k)) in
  Pager.drop_caches pager;
  Pager.reset_stats pager;
  let n_dom = 4 in
  let worker d () =
    let acc = ref [] in
    let k = ref d in
    while !k < 64 do
      acc := (!k, Executor.run_view view ~projection:Executor.All_columns (pred !k)) :: !acc;
      k := !k + n_dom
    done;
    !acc
  in
  let doms = Array.init (n_dom - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  let own = worker 0 () in
  let all = own @ List.concat_map Domain.join (Array.to_list doms) in
  let results = Array.make 64 None in
  List.iter (fun (k, r) -> results.(k) <- Some r) all;
  let per_query = Array.map Option.get results in
  let total =
    Array.fold_left
      (fun acc (r : Executor.result) -> Pager.sum_stats acc r.stats)
      Pager.zero_stats per_query
  in
  let global = Pager.stats pager in
  check_int "hits exact" global.hits total.hits;
  check_int "misses exact" global.misses total.misses;
  check_int "rows examined exact" global.rows_examined total.rows_examined;
  check_bool "sim time sums" true
    (Float.abs (global.sim_ns -. total.sim_ns) <= 1e-6 *. Float.max 1.0 global.sim_ns);
  check_bool "work actually happened" true (global.misses > 0 && global.rows_examined > 0);
  Array.iteri
    (fun k (r : Executor.result) ->
      Alcotest.(check (array int)) (Printf.sprintf "ids %d" k) seq.(k).row_ids r.row_ids;
      check_bool (Printf.sprintf "rows %d" k) true (r.rows = seq.(k).rows))
    per_query

let test_run_view_matches_run () =
  (* Same epoch, warm cache: [run_view] with no pool is byte-identical
     to [run] (ids, rows, plan, pager delta), and a 4-domain pool fans
     out the OR probes yet returns identical ids/rows/plan. *)
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 1999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "n%d" (i mod 40)) None))
  done;
  ignore (Table.create_index t ~column:"name");
  ignore (Table.create_index t ~column:"id");
  let view = Table.freeze t in
  check_int "epoch unchanged by freeze" (Table.epoch t) (Read_view.epoch view);
  let pred =
    Predicate.Or
      [
        Predicate.In ("name", [ Value.Text "n3"; Value.Text "n17"; Value.Text "n39" ]);
        Predicate.Eq ("id", Value.Int 7L);
      ]
  in
  let warm projection p =
    ignore (Executor.run t ~projection p);
    ignore (Executor.run_view view ~projection p)
  in
  List.iter
    (fun projection ->
      warm projection pred;
      let r_seq = Executor.run t ~projection pred in
      let r_view = Executor.run_view view ~projection pred in
      Alcotest.(check (array int)) "ids equal" r_seq.row_ids r_view.row_ids;
      check_bool "rows equal" true (r_view.rows = r_seq.rows);
      check_bool "plan equal" true (r_view.plan = r_seq.plan);
      check_int "hits equal" r_seq.stats.hits r_view.stats.hits;
      check_int "misses equal" r_seq.stats.misses r_view.stats.misses;
      check_int "rows examined equal" r_seq.stats.rows_examined r_view.stats.rows_examined;
      Stdx.Task_pool.with_pool ~domains:4 (fun pool ->
          let r_par = Executor.run_view ~pool view ~projection pred in
          Alcotest.(check (array int)) "parallel ids equal" r_seq.row_ids r_par.row_ids;
          check_bool "parallel rows equal" true (r_par.rows = r_seq.rows);
          check_bool "parallel plan equal" true (r_par.plan = r_seq.plan);
          check_int "parallel rows examined equal" r_seq.stats.rows_examined
            r_par.stats.rows_examined))
    [ Executor.Row_ids; Executor.All_columns ]

let test_view_isolated_from_mutations () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 99 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "n%d" (i mod 10)) None))
  done;
  ignore (Table.create_index t ~column:"name");
  let view = Table.freeze t in
  let pred = Predicate.Eq ("name", Value.Text "n4") in
  let before = (Executor.run_view view ~projection:Executor.All_columns pred).rows in
  for i = 0 to 99 do
    check_bool "deleted" true (Table.delete t i)
  done;
  Table.vacuum t;
  ignore (Table.insert t (mk_row 1000 "n4" (Some 1.0)));
  let after = (Executor.run_view view ~projection:Executor.All_columns pred).rows in
  check_bool "view unchanged by delete/vacuum/insert" true (before = after);
  check_int "view still sees 10 rows" 10 (Array.length after);
  let fresh = Table.freeze t in
  check_bool "fresh view at later epoch" true (Read_view.epoch fresh > Read_view.epoch view);
  check_int "fresh view sees new state" 1
    (Array.length (Executor.run_view fresh ~projection:Executor.Row_ids pred).row_ids)

(* ---------------- Executor ---------------- *)

let build_db () =
  let db = Database.create () in
  let t = Database.create_table db ~name:"people" ~schema:small_schema in
  ignore (Table.create_index t ~column:"name");
  ignore (Table.create_index t ~column:"id");
  for i = 0 to 999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "p%d" (i mod 10)) (Some (float_of_int i))))
  done;
  (db, t)

let test_executor_plans () =
  let _db, t = build_db () in
  check_bool "eq on indexed -> index scan" true
    (Executor.explain t (Predicate.Eq ("name", Value.Text "p1")) = Executor.Index_scan "name");
  check_bool "in on indexed -> index scan" true
    (Executor.explain t (Predicate.In ("name", [ Value.Text "p1" ])) = Executor.Index_scan "name");
  check_bool "non-indexed -> seq scan" true
    (Executor.explain t (Predicate.Eq ("score", Value.Real 3.0)) = Executor.Seq_scan);
  check_bool "and picks indexable leg" true
    (Executor.explain t
       (Predicate.And [ Predicate.Eq ("score", Value.Real 3.0); Predicate.Eq ("name", Value.Text "p1") ])
    = Executor.Index_scan "name")

let test_executor_correctness () =
  let _db, t = build_db () in
  let r = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", Value.Text "p3")) in
  check_int "100 matches" 100 (Array.length r.row_ids);
  check_int "row_ids only" 0 (Array.length r.rows);
  let r2 = Executor.run t ~projection:Executor.All_columns (Predicate.Eq ("name", Value.Text "p3")) in
  check_int "rows fetched" 100 (Array.length r2.rows);
  Array.iter
    (fun row -> check_bool "right rows" true (row.(1) = Value.Text "p3"))
    r2.rows;
  (* Seq scan agrees with index scan. *)
  let seq =
    Executor.run t ~projection:Executor.Row_ids
      (Predicate.And [ Predicate.Eq ("name", Value.Text "p3"); Predicate.True ])
  in
  check_int "seq/index agree" (Array.length r.row_ids) (Array.length seq.row_ids)

let test_executor_residual_filter () =
  let _db, t = build_db () in
  let r =
    Executor.run t ~projection:Executor.Row_ids
      (Predicate.And
         [ Predicate.Eq ("name", Value.Text "p3"); Predicate.Range ("id", Some (Value.Int 0L), Some (Value.Int 99L)) ])
  in
  check_int "filtered to first hundred ids" 10 (Array.length r.row_ids)

let test_executor_select_star_touches_heap () =
  let db, t = build_db () in
  Database.drop_caches db;
  Pager.reset_stats (Table.pager t);
  let _ = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", Value.Text "p4")) in
  let ids_stats = Pager.stats (Table.pager t) in
  Database.drop_caches db;
  Pager.reset_stats (Table.pager t);
  let _ = Executor.run t ~projection:Executor.All_columns (Predicate.Eq ("name", Value.Text "p4")) in
  let star_stats = Pager.stats (Table.pager t) in
  check_bool "SELECT * touches more pages than SELECT ID" true
    (star_stats.misses > ids_stats.misses)

let test_executor_or_union () =
  let _db, t = build_db () in
  (* All legs indexable -> a deduplicated union of index lookups. *)
  let p =
    Predicate.Or
      [
        Predicate.Eq ("name", Value.Text "p1");
        Predicate.Range ("id", Some (Value.Int 0L), Some (Value.Int 99L));
      ]
  in
  check_bool "all-indexable OR -> index union" true
    (Executor.explain t p = Executor.Or_index_scan [ "name"; "id" ]);
  let r = Executor.run t ~projection:Executor.Row_ids p in
  (* 100 p1-rows + 100 low ids, overlapping on the 10 low p1-rows. *)
  check_int "union deduplicated" 190 (Array.length r.row_ids);
  let sorted = Array.to_list r.row_ids in
  check_bool "ids sorted and unique" true
    (List.sort_uniq compare sorted = sorted);
  let seq =
    Executor.run t ~projection:Executor.Row_ids (Predicate.And [ p; Predicate.True ])
  in
  check_bool "seq scan fell back" true (seq.plan = Executor.Seq_scan);
  check_bool "union agrees with seq scan" true (sorted = Array.to_list seq.row_ids);
  (* Nested ORs flatten into one union. *)
  let nested =
    Predicate.Or
      [
        Predicate.Eq ("name", Value.Text "p1");
        Predicate.Or
          [ Predicate.Eq ("name", Value.Text "p2"); Predicate.Eq ("name", Value.Text "p3") ];
      ]
  in
  check_bool "nested OR flattens" true
    (Executor.explain t nested = Executor.Or_index_scan [ "name"; "name"; "name" ]);
  check_int "nested union" 300
    (Array.length (Executor.run t ~projection:Executor.Row_ids nested).row_ids);
  (* One unservable leg poisons the whole disjunction. *)
  check_bool "non-indexable leg -> seq scan" true
    (Executor.explain t
       (Predicate.Or [ Predicate.Eq ("name", Value.Text "p1"); Predicate.Eq ("score", Value.Real 3.0) ])
    = Executor.Seq_scan)

let test_executor_or_and_not () =
  let _db, t = build_db () in
  let r =
    Executor.run t ~projection:Executor.Row_ids
      (Predicate.Or [ Predicate.Eq ("name", Value.Text "p1"); Predicate.Eq ("name", Value.Text "p2") ])
  in
  check_int "or" 200 (Array.length r.row_ids);
  let r2 = Executor.run t ~projection:Executor.Row_ids (Predicate.Not (Predicate.Eq ("name", Value.Text "p1"))) in
  check_int "not" 900 (Array.length r2.row_ids)

(* ---------------- Database ---------------- *)

let test_database_catalog () =
  let db = Database.create () in
  let _t = Database.create_table db ~name:"a" ~schema:small_schema in
  check_bool "lookup" true (Database.table_opt db "a" <> None);
  check_bool "missing" true (Database.table_opt db "b" = None);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Database.create_table: table \"a\" already exists") (fun () ->
      ignore (Database.create_table db ~name:"a" ~schema:small_schema));
  ignore (Database.insert db ~table:"a" (mk_row 0 "x" None));
  check_int "insert through catalog" 1 (Table.row_count (Database.table db "a"));
  check_bool "sizes positive" true (Database.total_bytes db >= Database.heap_bytes db)

(* ---------------- Predicate ---------------- *)

let test_predicate_compile_columns () =
  let p =
    Predicate.And
      [ Predicate.Eq ("name", Value.Text "a"); Predicate.Or [ Predicate.Eq ("id", Value.Int 1L); Predicate.Eq ("name", Value.Text "b") ] ]
  in
  Alcotest.(check (list string)) "columns deduped" [ "name"; "id" ] (Predicate.columns p);
  let f = Predicate.compile small_schema p in
  check_bool "matching row" true (f (mk_row 1 "a" None));
  check_bool "or branch fails" false (f (mk_row 2 "a" None));
  check_bool "and leg fails" false (f (mk_row 1 "c" None));
  let q = Predicate.compile small_schema (Predicate.In ("name", [ Value.Text "a"; Value.Text "b" ])) in
  check_bool "in" true (q (mk_row 5 "b" None));
  check_bool "pp non-empty" true (String.length (Format.asprintf "%a" Predicate.pp p) > 10)

(* ---------------- CSV ---------------- *)

let test_csv_parse_basic () =
  check_bool "simple" true
    (Csv.parse "a,b,c\n1,2,3\n" = Ok [ [ "a"; "b"; "c" ]; [ "1"; "2"; "3" ] ]);
  check_bool "no trailing newline" true (Csv.parse "a,b" = Ok [ [ "a"; "b" ] ]);
  check_bool "empty cells" true (Csv.parse ",\n" = Ok [ [ ""; "" ] ]);
  check_bool "crlf" true (Csv.parse "a,b\r\nc,d\r\n" = Ok [ [ "a"; "b" ]; [ "c"; "d" ] ])

let test_csv_parse_quoting () =
  check_bool "embedded comma" true (Csv.parse "\"a,b\",c\n" = Ok [ [ "a,b"; "c" ] ]);
  check_bool "escaped quote" true (Csv.parse "\"say \"\"hi\"\"\"\n" = Ok [ [ "say \"hi\"" ] ]);
  check_bool "embedded newline" true (Csv.parse "\"a\nb\",c\n" = Ok [ [ "a\nb"; "c" ] ]);
  check_bool "unterminated rejected" true (Result.is_error (Csv.parse "\"abc\n"));
  check_bool "garbage after quote rejected" true (Result.is_error (Csv.parse "\"a\"b,c\n"))

let test_csv_render_roundtrip () =
  let rows = [ [ "plain"; "with,comma"; "with\"quote" ]; [ "line\nbreak"; ""; "x" ] ] in
  check_bool "roundtrip" true (Csv.parse (Csv.render rows) = Ok rows)

let test_csv_typed_rows () =
  let rows =
    Csv.typed_rows ~schema:small_schema ~header:true
      [ [ "id"; "name"; "score" ]; [ "1"; "alice"; "2.5" ]; [ "2"; "bob"; "" ] ]
  in
  (match rows with
  | Ok [ r0; r1 ] ->
      check_bool "int" true (r0.(0) = Value.Int 1L);
      check_bool "real" true (r0.(2) = Value.Real 2.5);
      check_bool "empty nullable is NULL" true (r1.(2) = Value.Null)
  | _ -> Alcotest.fail "typed_rows failed");
  check_bool "bad int rejected" true
    (Result.is_error
       (Csv.typed_rows ~schema:small_schema ~header:false [ [ "xx"; "a"; "" ] ]));
  check_bool "wrong header rejected" true
    (Result.is_error
       (Csv.typed_rows ~schema:small_schema ~header:true [ [ "wrong"; "names"; "here" ] ]));
  check_bool "arity mismatch rejected" true
    (Result.is_error (Csv.typed_rows ~schema:small_schema ~header:false [ [ "1" ] ]))

let test_csv_untyped_roundtrip () =
  let typed = [ [| Value.Int 42L; Value.Text "x,y"; Value.Real 1.5 |] ] in
  let cells = Csv.untyped_rows typed in
  match Csv.typed_rows ~schema:small_schema ~header:false cells with
  | Ok [ row ] -> check_bool "roundtrip through cells" true (row = List.hd typed)
  | _ -> Alcotest.fail "roundtrip failed"

(* ---------------- DML: delete / update ---------------- *)

let test_table_delete () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 9 do
    ignore (Table.insert t (mk_row i "x" None))
  done;
  ignore (Table.create_index t ~column:"name");
  check_bool "delete succeeds" true (Table.delete t 3);
  check_bool "second delete is a no-op" false (Table.delete t 3);
  check_int "live count" 9 (Table.live_count t);
  check_int "row count unchanged (tombstone)" 10 (Table.row_count t);
  check_bool "is_live" false (Table.is_live t 3);
  (* Both access paths skip the dead row. *)
  let via_index = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", Value.Text "x")) in
  check_int "index scan skips dead" 9 (Array.length via_index.row_ids);
  let seen = ref 0 in
  Table.scan t (fun _ _ -> incr seen);
  check_int "seq scan skips dead" 9 !seen

let test_table_update () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let id = Table.insert t (mk_row 0 "before" None) in
  ignore (Table.create_index t ~column:"name");
  let new_id = Table.update t id (mk_row 0 "after" None) in
  check_bool "new version gets a fresh id" true (new_id <> id);
  check_bool "old version dead" false (Table.is_live t id);
  let r = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", Value.Text "after")) in
  check_int "new value findable" 1 (Array.length r.row_ids);
  let r2 = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", Value.Text "before")) in
  check_int "old value gone" 0 (Array.length r2.row_ids);
  let raised = try ignore (Table.update t id (mk_row 0 "again" None)); false with Invalid_argument _ -> true in
  check_bool "updating a dead row rejected" true raised

let test_sql_delete_update () =
  let db = Database.create () in
  let t = Database.create_table db ~name:"t" ~schema:small_schema in
  for i = 0 to 19 do
    ignore (Table.insert t (mk_row i (if i mod 2 = 0 then "even" else "odd") None))
  done;
  ignore (Table.create_index t ~column:"name");
  (match Sql.execute db "DELETE FROM t WHERE name = 'odd'" with
  | Ok r -> check_int "deleted" 10 r.affected
  | Error e -> Alcotest.fail e);
  (match Sql.execute db "SELECT * FROM t" with
  | Ok r -> check_int "ten left" 10 (List.length r.rows)
  | Error e -> Alcotest.fail e);
  (match Sql.execute db "UPDATE t SET name = 'renamed' WHERE id BETWEEN 0 AND 5" with
  | Ok r -> check_int "updated" 3 r.affected (* ids 0,2,4 are the even survivors *)
  | Error e -> Alcotest.fail e);
  (match Sql.execute db "SELECT * FROM t WHERE name = 'renamed'" with
  | Ok r -> check_int "renamed rows" 3 (List.length r.rows)
  | Error e -> Alcotest.fail e);
  check_bool "unknown set column" true
    (Result.is_error (Sql.execute db "UPDATE t SET nope = 1"));
  check_bool "type-checked update" true
    (Result.is_error (Sql.execute db "UPDATE t SET name = 5"))

let test_table_insert_batch_equivalent () =
  let build insert_all =
    let pager = Pager.create () in
    let t = Table.create pager ~name:"t" ~schema:small_schema in
    ignore (Table.create_index t ~column:"name");
    insert_all t;
    t
  in
  let rows = Array.init 300 (fun i -> mk_row i (Printf.sprintf "p%d" (i mod 7)) None) in
  let seq = build (fun t -> Array.iter (fun r -> ignore (Table.insert t r)) rows) in
  let batch = build (fun t -> check_int "first id" 0 (Table.insert_batch t rows)) in
  check_int "row_count" (Table.row_count seq) (Table.row_count batch);
  check_int "heap_pages" (Table.heap_pages seq) (Table.heap_pages batch);
  check_int "heap_bytes" (Table.heap_bytes seq) (Table.heap_bytes batch);
  check_int "index_bytes" (Table.index_bytes seq) (Table.index_bytes batch);
  for id = 0 to Table.row_count seq - 1 do
    check_bool (Printf.sprintf "row %d" id) true (Table.peek_row seq id = Table.peek_row batch id);
    check_int (Printf.sprintf "page of %d" id) (Table.row_page seq id) (Table.row_page batch id)
  done;
  (* Indexes were maintained: lookups agree with the sequential build. *)
  for k = 0 to 6 do
    let v = Value.Text (Printf.sprintf "p%d" k) in
    let ids t = Array.to_list (Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", v))).row_ids in
    check_bool (Printf.sprintf "lookup p%d" k) true (List.sort compare (ids seq) = List.sort compare (ids batch))
  done

let test_table_insert_batch_all_or_nothing () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let rows = [| mk_row 0 "ok" None; [| Value.Null; Value.Text "bad"; Value.Null |] |] in
  let raised = try ignore (Table.insert_batch t rows); false with Invalid_argument _ -> true in
  check_bool "invalid row rejected" true raised;
  check_int "nothing applied" 0 (Table.row_count t);
  check_int "empty batch returns next id" 0 (Table.insert_batch t [||]);
  check_int "still empty" 0 (Table.row_count t)

let test_table_vacuum_reclaims () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let idx = Table.create_index t ~column:"name" in
  (* 1000 rows so the churn spans several heap pages even at columnar
     tuple widths — the page-count shrink below needs real volume. *)
  for i = 0 to 999 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "p%d" (i mod 5)) None))
  done;
  let bytes_before = Table.index_bytes t and entries_before = Table_index.entry_count idx in
  (* Churn: update every row once, then delete half the survivors —
     MVCC leaves every old version tombstoned with stale index entries. *)
  for i = 0 to 999 do
    ignore (Table.update t i (mk_row i (Printf.sprintf "q%d" (i mod 5)) None))
  done;
  for i = 1000 to 1499 do
    ignore (Table.delete t i)
  done;
  check_int "live rows" 500 (Table.live_count t);
  check_bool "stale entries bloat the index" true (Table_index.entry_count idx > 1000);
  let heap_bloated = Table.heap_bytes t in
  Table.vacuum t;
  (* Index accounting shrinks back to the live rows. *)
  check_int "entry_count = live rows" 500 (Table_index.entry_count idx);
  check_bool "index size shrinks" true (Table.index_bytes t <= bytes_before);
  check_bool "heap shrinks" true (Table.heap_bytes t < heap_bloated);
  check_int "row ids stable" 2000 (Table.row_count t);
  check_int "live rows unchanged" 500 (Table.live_count t);
  ignore (entries_before : int);
  (* No resurrection: scans and index lookups see only live versions. *)
  let seen = ref 0 in
  Table.scan t (fun _ _ -> incr seen);
  check_int "seq scan" 500 !seen;
  for k = 0 to 4 do
    let gone = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", Value.Text (Printf.sprintf "p%d" k))) in
    check_int (Printf.sprintf "old version p%d gone" k) 0 (Array.length gone.row_ids);
    let live = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", Value.Text (Printf.sprintf "q%d" k))) in
    check_int (Printf.sprintf "live version q%d" k) 100 (Array.length live.row_ids)
  done;
  (* Idempotent, and dead ids stay dead. *)
  Table.vacuum t;
  check_int "second vacuum no-op" 500 (Table_index.entry_count idx);
  check_bool "dead id stays dead" false (Table.is_live t 0)

(* ---------------- Columnar storage ---------------- *)

(* Regression: the pre-columnar engine never decremented its byte total
   on delete, so [avg_row_bytes] overreported (total unchanged, live
   count shrinking) until a vacuum. Deleting half of a uniform table
   must leave the average unchanged, and deleting everything must
   report 0, not a division blow-up. *)
let test_avg_row_bytes_tracks_deletes () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  for i = 0 to 99 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "n%02d%s" i (String.make 60 'x')) None))
  done;
  let before = Table.avg_row_bytes t in
  check_bool "positive" true (before > 0.0);
  for i = 0 to 49 do
    ignore (Table.delete t i)
  done;
  check_bool "uniform rows: average unchanged by deletes" true
    (Float.abs (Table.avg_row_bytes t -. before) < 0.001);
  for i = 50 to 99 do
    ignore (Table.delete t i)
  done;
  check_bool "empty table reports 0" true (Table.avg_row_bytes t = 0.0);
  (* Still 0 after vacuum, and consistent once rows come back. *)
  Table.vacuum t;
  check_bool "still 0 after vacuum" true (Table.avg_row_bytes t = 0.0);
  ignore (Table.insert t (mk_row 0 "fresh" None));
  check_bool "recovers" true (Table.avg_row_bytes t > 0.0)

(* Helper: the name-column dictionary contents of a snapshot, as
   (value, hole?) in id order. *)
let name_dict_entries (s : Table.snapshot) =
  s.Table.s_cols.(1).Table.cs_entries

let test_columnar_vacuum_roundtrip () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let idx = Table.create_index t ~column:"name" in
  (* 7 distinct names over 300 rows: heavy dictionary sharing. *)
  for i = 0 to 299 do
    ignore (Table.insert t (mk_row i (Printf.sprintf "v%d" (i mod 7)) None))
  done;
  (* Exact physical round-trip of a clean table. *)
  let s1 = Table.snapshot t in
  let r1 = Table.of_snapshot pager s1 in
  check_bool "clean roundtrip" true (Table.snapshot r1 = s1);
  check_int "restored heap pages" (Table.heap_pages t) (Table.heap_pages r1);
  check_bool "restored avg" true (Table.avg_row_bytes r1 = Table.avg_row_bytes t);
  (* Drop every "v0" row; its dictionary entry must survive until
     vacuum, then become a hole while every other id is untouched. *)
  for i = 0 to 299 do
    if i mod 7 = 0 then ignore (Table.delete t i)
  done;
  let stats = Table.storage_stats t in
  check_int "dict keeps dead values before vacuum" 7 stats.st_columns.(1).st_distinct;
  (* Restored-from-snapshot table must behave identically through the
     same churn — this is what proves the reference counts were rebuilt
     exactly: a wrong count would reclaim the wrong entries below. *)
  let r2 = Table.of_snapshot pager (Table.snapshot t) in
  Table.vacuum t;
  Table.vacuum r2;
  check_bool "restored table vacuums identically" true (Table.snapshot r2 = Table.snapshot t);
  let ents = name_dict_entries (Table.snapshot t) in
  let holes = Array.length (Array.of_list (List.filter Option.is_none (Array.to_list ents))) in
  check_int "exactly the v0 entry reclaimed" 1 holes;
  check_int "live name entries" 6 (Table.storage_stats t).st_columns.(1).st_distinct;
  check_bool "v0 unfindable" true
    (Array.length (Table_index.lookup idx (Value.Text "v0")) = 0);
  check_bool "v1 intact" true (Array.length (Table_index.lookup idx (Value.Text "v1")) > 0);
  (* All-dead edge: a fully deleted and vacuumed table accounts to
     zero — no pages, no dictionary residue — with row ids intact. *)
  for i = 0 to Table.row_count t - 1 do
    ignore (Table.delete t i)
  done;
  Table.vacuum t;
  check_int "all-dead: no heap pages" 0 (Table.heap_pages t);
  check_int "all-dead: no heap bytes" 0 (Table.heap_bytes t);
  check_int "all-dead: no dict entries" 0 (Table.storage_stats t).st_columns.(1).st_distinct;
  check_int "all-dead: row ids stable" 300 (Table.row_count t);
  check_bool "all-dead: reclaimed rows empty" true (Table.peek_row t 0 = [||]);
  (* Reclaimed-slot edge: new rows append past the holes; the physical
     state — holes included — still round-trips exactly. *)
  let id = Table.insert t (mk_row 1000 "v1" None) in
  check_int "appends past holes" 300 id;
  let s3 = Table.snapshot t in
  let r3 = Table.of_snapshot pager s3 in
  check_bool "holey roundtrip" true (Table.snapshot r3 = s3);
  check_bool "restored index finds new row" true
    (match Table.index_on r3 ~column:"name" with
    | Some i -> Array.length (Table_index.lookup i (Value.Text "v1")) = 1
    | None -> false)

(* The raw-mode switch (a column that never repeats drops its intern
   table after probation) is a pure function of serialized state, so a
   restored table flips at exactly the same append a crash-free run
   does — grow both side by side and compare the physical state. *)
let test_dict_raw_mode_deterministic_across_restore () =
  let pager = Pager.create () in
  let t = Table.create pager ~name:"t" ~schema:small_schema in
  let row i = mk_row i (Printf.sprintf "unique-%08d" i) None in
  ignore (Table.insert_batch t (Array.init 3000 row));
  check_bool "still interning below probation" true
    (Table.storage_stats t).st_columns.(1).st_interned;
  let r = Table.of_snapshot pager (Table.snapshot t) in
  (* Push both through the probation threshold. *)
  ignore (Table.insert_batch t (Array.init 3000 (fun i -> row (3000 + i))));
  ignore (Table.insert_batch r (Array.init 3000 (fun i -> row (3000 + i))));
  check_bool "raw mode entered" true
    (not (Table.storage_stats t).st_columns.(1).st_interned);
  check_bool "identical physical state" true (Table.snapshot t = Table.snapshot r);
  check_int "identical heap bytes" (Table.heap_bytes t) (Table.heap_bytes r);
  (* Raw-mode storage is accounted inline, not in the dictionary: once
     the switch happens, more unique rows grow the per-tuple bytes but
     the dictionary charge is frozen. *)
  let before = Table.storage_stats t in
  ignore (Table.insert_batch t (Array.init 1000 (fun i -> row (6000 + i))));
  let after = Table.storage_stats t in
  check_int "dict charge frozen in raw mode" before.st_columns.(1).st_dict_bytes
    after.st_columns.(1).st_dict_bytes;
  check_bool "raw values accounted inline" true
    (after.st_columns.(1).st_ids_bytes > before.st_columns.(1).st_ids_bytes + 1000 * 8)

(* ---------------- QCheck ---------------- *)

(* Random predicates executed through the planner must agree with naive
   row-by-row evaluation — the strongest correctness net for the
   planner/index/filter pipeline. *)
let qcheck_executor_vs_naive =
  let pred_gen =
    let open QCheck.Gen in
    let atom =
      oneof
        [
          map (fun v -> Predicate.Eq ("name", Value.Text (Printf.sprintf "p%d" v))) (int_bound 6);
          map (fun v -> Predicate.Eq ("id", Value.Int (Int64.of_int v))) (int_bound 120);
          map2
            (fun lo hi ->
              Predicate.Range ("id", Some (Value.Int (Int64.of_int (min lo hi))),
                Some (Value.Int (Int64.of_int (max lo hi)))))
            (int_bound 120) (int_bound 120);
          map
            (fun vs ->
              Predicate.In ("name", List.map (fun v -> Value.Text (Printf.sprintf "p%d" v)) vs))
            (list_size (1 -- 3) (int_bound 6));
        ]
    in
    let rec tree depth =
      if depth = 0 then atom
      else
        frequency
          [
            (3, atom);
            (1, map (fun p -> Predicate.Not p) (tree (depth - 1)));
            (1, map (fun ps -> Predicate.And ps) (list_size (1 -- 3) (tree (depth - 1))));
            (1, map (fun ps -> Predicate.Or ps) (list_size (1 -- 3) (tree (depth - 1))));
          ]
    in
    tree 2
  in
  (* One shared table: build once, query many. *)
  let table =
    lazy
      (let pager = Pager.create () in
       let t = Table.create pager ~name:"fuzz" ~schema:small_schema in
       let g = Stdx.Prng.create 99L in
       for i = 0 to 119 do
         ignore (Table.insert t (mk_row i (Printf.sprintf "p%d" (Stdx.Prng.int g 6)) None))
       done;
       ignore (Table.create_index t ~column:"name");
       ignore (Table.create_index t ~column:"id");
       t)
  in
  QCheck.Test.make ~name:"executor agrees with naive evaluation" ~count:200 (QCheck.make pred_gen)
    (fun p ->
      let t = Lazy.force table in
      let eval = Predicate.compile small_schema p in
      let expected = ref [] in
      for id = Table.row_count t - 1 downto 0 do
        if eval (Table.peek_row t id) then expected := id :: !expected
      done;
      let got = Array.to_list (Executor.run t ~projection:Executor.Row_ids p).row_ids in
      List.sort compare got = !expected)

let qcheck_csv_roundtrip =
  (* Cells drawn from the hostile alphabet: quotes, commas, bare CR,
     LF (so CR-LF pairs arise), and empty cells (string_size 0). All
     survive because render quotes any cell containing a delimiter and
     parse preserves everything inside quotes verbatim. *)
  let cell =
    QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; ','; '"'; '\n'; '\r'; 'z'; ' ' ]) (0 -- 8))
  in
  QCheck.Test.make ~name:"csv render/parse roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 5) (list_size (1 -- 5) cell)))
    (fun rows -> Csv.parse (Csv.render rows) = Ok rows)

let qcheck_index_vs_scan =
  QCheck.Test.make ~name:"index scan = seq scan on random data" ~count:30
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 10))
    (fun names ->
      let pager = Pager.create () in
      let t = Table.create pager ~name:"t" ~schema:small_schema in
      List.iteri (fun i n -> ignore (Table.insert t (mk_row i (string_of_int n) None))) names;
      ignore (Table.create_index t ~column:"name");
      List.for_all
        (fun k ->
          let v = Value.Text (string_of_int k) in
          let via_index = Executor.run t ~projection:Executor.Row_ids (Predicate.Eq ("name", v)) in
          let expected = List.length (List.filter (fun n -> n = k) names) in
          Array.length via_index.row_ids = expected)
        [ 0; 1; 5; 10 ])

(* ---------------- Join ---------------- *)

let join_schema_left =
  Schema.create
    [ { name = "id"; ty = TInt; nullable = false }; { name = "k"; ty = TInt; nullable = true } ]

let mk_join_tables ?(index_left = true) ?(index_right = false) left right =
  let db = Database.create () in
  let tl = Database.create_table db ~name:"l" ~schema:join_schema_left in
  let tr = Database.create_table db ~name:"r" ~schema:join_schema_left in
  let load t rows =
    List.iteri
      (fun i k ->
        ignore
          (Table.insert t
             [| Value.Int (Int64.of_int i); (match k with Some k -> Value.Int (Int64.of_int k) | None -> Value.Null) |]))
      rows
  in
  load tl left;
  load tr right;
  (* One indexed side, one scan side, so both postings paths run. *)
  if index_left then ignore (Table.create_index tl ~column:"k");
  if index_right then ignore (Table.create_index tr ~column:"k");
  (db, tl, tr)

let brute_pairs tl tr =
  let lv = Table.freeze tl and rv = Table.freeze tr in
  let acc = ref [] in
  Read_view.scan lv (fun l lrow ->
      Read_view.scan rv (fun r rrow ->
          match (lrow.(1), rrow.(1)) with
          | Value.Null, _ | _, Value.Null -> ()
          | a, b -> if Value.equal a b then acc := (l, r) :: !acc));
  List.sort compare !acc

let test_join_equi_matches_naive () =
  let left = List.map (fun k -> if k = 7 then None else Some (k mod 5)) (List.init 40 Fun.id) in
  let right = List.map (fun k -> if k = 3 then None else Some (k mod 7)) (List.init 25 Fun.id) in
  let _db, tl, tr = mk_join_tables left right in
  let jr =
    Executor.run_join ~left:(Table.freeze tl) ~right:(Table.freeze tr) ~on_left:"k" ~on_right:"k"
      Join.Equi
  in
  check_bool "equi = brute force" true (Array.to_list jr.Join.pairs = brute_pairs tl tr);
  check_bool "pairs sorted" true
    (let l = Array.to_list jr.Join.pairs in
     l = List.sort_uniq compare l)

let test_join_buckets_overlap_dedup () =
  (* Rows 0..9 all carry k=1. Two buckets both listing tag 1 on both
     sides: the cross product arises twice but must be emitted once. *)
  let _db, tl, tr = mk_join_tables (List.init 4 (fun _ -> Some 1)) (List.init 3 (fun _ -> Some 1)) in
  let spec =
    Join.Buckets
      [| ([ Value.Int 1L ], [ Value.Int 1L ]); ([ Value.Int 1L ], [ Value.Int 1L ]) |]
  in
  let jr =
    Executor.run_join ~left:(Table.freeze tl) ~right:(Table.freeze tr) ~on_left:"k" ~on_right:"k"
      spec
  in
  check_int "deduped cross product" 12 (Array.length jr.Join.pairs);
  check_int "bucket count" 2 (Array.length jr.Join.bucket_pairs);
  (* Per-bucket counts are pre-dedup: what the server observes. *)
  check_int "bucket 0 candidates" 12 jr.Join.bucket_pairs.(0)

let test_join_skips_dead_rows () =
  let _db, tl, tr =
    mk_join_tables ~index_right:true
      (List.init 10 (fun _ -> Some 1))
      (List.init 6 (fun _ -> Some 1))
  in
  ignore (Table.delete tl 0 : bool);
  ignore (Table.delete tr 5 : bool);
  let jr =
    Executor.run_join ~left:(Table.freeze tl) ~right:(Table.freeze tr) ~on_left:"k" ~on_right:"k"
      (Join.Buckets [| ([ Value.Int 1L ], [ Value.Int 1L ]) |])
  in
  check_int "only live pairs" 45 (Array.length jr.Join.pairs);
  check_bool "no dead ids" true
    (Array.for_all (fun (l, r) -> l <> 0 && r <> 5) jr.Join.pairs)

let test_join_pool_matches_sequential () =
  let left = List.map (fun k -> Some (k mod 11)) (List.init 200 Fun.id) in
  let right = List.map (fun k -> Some (k mod 13)) (List.init 150 Fun.id) in
  let _db, tl, tr = mk_join_tables left right in
  let spec =
    Join.Buckets (Array.init 10 (fun i -> ([ Value.Int (Int64.of_int i) ], [ Value.Int (Int64.of_int i) ])))
  in
  let run pool =
    Executor.run_join ?pool ~left:(Table.freeze tl) ~right:(Table.freeze tr) ~on_left:"k"
      ~on_right:"k" spec
  in
  let seq = run None in
  Stdx.Task_pool.with_pool ~domains:4 (fun pool ->
      let par = run (Some pool) in
      check_bool "pairs identical under 4 domains" true (seq.Join.pairs = par.Join.pairs);
      check_bool "bucket counts identical" true
        (seq.Join.bucket_pairs = par.Join.bucket_pairs));
  Stdx.Task_pool.with_pool ~domains:1 (fun pool ->
      let one = run (Some pool) in
      check_bool "1-domain pool = sequential" true (seq.Join.pairs = one.Join.pairs))

(* ---------------- Multi-table isolation ---------------- *)

let test_multi_table_journal_isolated () =
  let db = Database.create () in
  let events = ref [] in
  Database.set_journal db (Some (fun m -> events := m :: !events));
  let ta = Database.create_table db ~name:"a" ~schema:small_schema in
  let tb = Database.create_table db ~name:"b" ~schema:small_schema in
  ignore (Table.insert ta (mk_row 0 "x" None));
  ignore (Table.insert tb (mk_row 0 "y" None));
  ignore (Table.delete ta 0 : bool);
  Table.vacuum ta;
  let tables_of ev =
    match ev with
    | Journal.Created_table { name; _ } -> name
    | Journal.Created_index { table; _ } -> table
    | Journal.Inserted { table; _ } | Journal.Inserted_batch { table; _ } -> table
    | Journal.Deleted { table; _ } -> table
    | Journal.Vacuumed { table } -> table
  in
  let for_table n = List.filter (fun e -> tables_of e = n) !events in
  check_int "a: create + insert + delete + vacuum" 4 (List.length (for_table "a"));
  check_int "b: create + insert only" 2 (List.length (for_table "b"));
  check_bool "b saw no vacuum" true
    (List.for_all (function Journal.Vacuumed _ -> false | _ -> true) (for_table "b"))

let test_multi_table_vacuum_epoch_isolated () =
  let db = Database.create () in
  let ta = Database.create_table db ~name:"a" ~schema:small_schema in
  let tb = Database.create_table db ~name:"b" ~schema:small_schema in
  for i = 0 to 9 do
    ignore (Table.insert ta (mk_row i "a" None));
    ignore (Table.insert tb (mk_row i "b" None))
  done;
  let vb_before = Table.freeze tb in
  ignore (Table.delete ta 0 : bool);
  ignore (Table.delete ta 1 : bool);
  Table.vacuum ta;
  (* Vacuuming [a] must not move [b]'s epoch or disturb its frozen
     view; [a]'s own epoch must move (the view contract). *)
  let vb_after = Table.freeze tb in
  check_int "b epoch unchanged" (Read_view.epoch vb_before) (Read_view.epoch vb_after);
  check_bool "a epoch advanced" true
    (Read_view.epoch (Table.freeze ta) > Read_view.epoch vb_before || Table.live_count ta = 8);
  let count v =
    let n = ref 0 in
    Read_view.scan v (fun _ _ -> incr n);
    !n
  in
  check_int "old b view intact" 10 (count vb_before);
  check_int "a compacted" 8 (Table.live_count ta);
  (* freeze_pair resolves both and fails cleanly on unknown names. *)
  check_bool "freeze_pair ok" true (Database.freeze_pair db "a" "b" <> None);
  check_bool "freeze_pair unknown" true (Database.freeze_pair db "a" "zz" = None)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sqldb"
    [
      ( "value",
        [
          Alcotest.test_case "compare order" `Quick test_value_compare_order;
          Alcotest.test_case "heap bytes" `Quick test_value_heap_bytes;
          Alcotest.test_case "hash/pp" `Quick test_value_hash_consistent;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "duplicates" `Quick test_schema_rejects_duplicates;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert/read" `Quick test_table_insert_read;
          Alcotest.test_case "pages grow" `Quick test_table_pages_grow;
          Alcotest.test_case "scan" `Quick test_table_scan;
          Alcotest.test_case "insert_batch equivalent" `Quick test_table_insert_batch_equivalent;
          Alcotest.test_case "insert_batch all-or-nothing" `Quick
            test_table_insert_batch_all_or_nothing;
        ] );
      ( "btree",
        [
          Alcotest.test_case "matches naive" `Quick test_index_matches_naive;
          Alcotest.test_case "lookup_many dedups" `Quick test_index_lookup_many_dedups;
          Alcotest.test_case "range" `Quick test_index_range;
          Alcotest.test_case "incremental" `Quick test_index_incremental_after_create;
          Alcotest.test_case "sizes" `Quick test_index_sizes;
        ] );
      ( "hash_index",
        [
          Alcotest.test_case "matches naive" `Quick test_hash_index_matches_naive;
          Alcotest.test_case "no range support" `Quick test_hash_index_no_range;
          Alcotest.test_case "flat probe cost" `Quick test_hash_index_probe_cost_flat;
          Alcotest.test_case "sizes" `Quick test_hash_index_sizes;
        ] );
      ( "pager",
        [
          Alcotest.test_case "cold/warm" `Quick test_pager_cold_warm;
          Alcotest.test_case "stats" `Quick test_pager_stats_accumulate;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "pager counters exact under domains" `Quick
            test_pager_counters_exact_multi_domain;
          Alcotest.test_case "run_view matches run" `Quick test_run_view_matches_run;
          Alcotest.test_case "view isolated from mutations" `Quick
            test_view_isolated_from_mutations;
        ] );
      ( "executor",
        [
          Alcotest.test_case "plans" `Quick test_executor_plans;
          Alcotest.test_case "correctness" `Quick test_executor_correctness;
          Alcotest.test_case "residual filter" `Quick test_executor_residual_filter;
          Alcotest.test_case "select * heap cost" `Quick test_executor_select_star_touches_heap;
          Alcotest.test_case "or union" `Quick test_executor_or_union;
          Alcotest.test_case "or/not" `Quick test_executor_or_and_not;
        ] );
      ( "join",
        [
          Alcotest.test_case "equi matches naive" `Quick test_join_equi_matches_naive;
          Alcotest.test_case "bucket overlap dedup" `Quick test_join_buckets_overlap_dedup;
          Alcotest.test_case "skips dead rows" `Quick test_join_skips_dead_rows;
          Alcotest.test_case "pool matches sequential" `Quick test_join_pool_matches_sequential;
        ] );
      ( "multi-table",
        [
          Alcotest.test_case "journal isolation" `Quick test_multi_table_journal_isolated;
          Alcotest.test_case "vacuum epoch isolation" `Quick
            test_multi_table_vacuum_epoch_isolated;
        ] );
      ("database", [ Alcotest.test_case "catalog" `Quick test_database_catalog ]);
      ("predicate", [ Alcotest.test_case "compile/columns" `Quick test_predicate_compile_columns ]);
      ( "dml",
        [
          Alcotest.test_case "table delete" `Quick test_table_delete;
          Alcotest.test_case "table update" `Quick test_table_update;
          Alcotest.test_case "sql delete/update" `Quick test_sql_delete_update;
          Alcotest.test_case "vacuum reclaims" `Quick test_table_vacuum_reclaims;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "avg_row_bytes tracks deletes" `Quick
            test_avg_row_bytes_tracks_deletes;
          Alcotest.test_case "vacuum roundtrip" `Quick test_columnar_vacuum_roundtrip;
          Alcotest.test_case "raw-mode deterministic" `Quick
            test_dict_raw_mode_deterministic_across_restore;
        ] );
      ( "csv",
        [
          Alcotest.test_case "parse basic" `Quick test_csv_parse_basic;
          Alcotest.test_case "parse quoting" `Quick test_csv_parse_quoting;
          Alcotest.test_case "render roundtrip" `Quick test_csv_render_roundtrip;
          Alcotest.test_case "typed rows" `Quick test_csv_typed_rows;
          Alcotest.test_case "untyped roundtrip" `Quick test_csv_untyped_roundtrip;
        ] );
      ("properties", q [ qcheck_index_vs_scan; qcheck_executor_vs_naive; qcheck_csv_roundtrip ]);
    ]
