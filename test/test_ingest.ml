(* The batched ingestion pipeline: equivalence of Encrypted_db.
   insert_batch with sequential insert (byte-identical at 1 domain,
   same decrypted contents and search results at N domains), and the
   determinism contract of the chunked multi-domain path. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let n_rows = 1500
let enc_columns = Sparta.Generator.encrypted_columns

let rows =
  lazy
    (let gen = Sparta.Generator.create ~seed:404L in
     Array.of_seq (Sparta.Generator.rows gen ~n:n_rows))

let dist_of_lazy =
  lazy
    (Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema ~columns:enc_columns
       (Array.to_seq (Lazy.force rows)))

let build_edb ?(kind = Wre.Scheme.Poisson 200.0) () =
  let db = Sqldb.Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 123L) in
  Wre.Encrypted_db.create ~db ~name:"main" ~plain_schema:Sparta.Generator.schema
    ~key_column:"id" ~encrypted_columns:enc_columns ~kind ~master
    ~dist_of:(Lazy.force dist_of_lazy) ~seed:55L ()

(* Byte-level table equality: every cell of every row (tags and
   ciphertext blobs compare as strings inside Value.equal), page
   assignment, liveness, and storage accounting. *)
let assert_tables_identical label ta tb =
  let open Sqldb in
  check_int (label ^ ": row_count") (Table.row_count ta) (Table.row_count tb);
  for id = 0 to Table.row_count ta - 1 do
    let ra = Table.peek_row ta id and rb = Table.peek_row tb id in
    check_int (Printf.sprintf "%s: row %d arity" label id) (Array.length ra) (Array.length rb);
    Array.iteri
      (fun i va ->
        check_bool
          (Printf.sprintf "%s: row %d col %d" label id i)
          true
          (Value.equal va rb.(i)))
      ra;
    check_int (Printf.sprintf "%s: row %d page" label id) (Table.row_page ta id)
      (Table.row_page tb id)
  done;
  check_int (label ^ ": heap_bytes") (Table.heap_bytes ta) (Table.heap_bytes tb);
  check_int (label ^ ": index_bytes") (Table.index_bytes ta) (Table.index_bytes tb)

let load_sequential () =
  let edb = build_edb () in
  Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) (Lazy.force rows);
  edb

let test_batch_1domain_byte_identical () =
  let seq = load_sequential () in
  let batch = build_edb () in
  let first = Wre.Encrypted_db.insert_batch batch (Lazy.force rows) in
  check_int "first id" 0 first;
  assert_tables_identical "no pool"
    (Wre.Encrypted_db.table seq)
    (Wre.Encrypted_db.table batch);
  (* A 1-domain pool must take the same path. *)
  let pooled = build_edb () in
  Stdx.Task_pool.with_pool ~domains:1 (fun pool ->
      ignore (Wre.Encrypted_db.insert_batch ~pool pooled (Lazy.force rows) : int));
  assert_tables_identical "1-domain pool"
    (Wre.Encrypted_db.table seq)
    (Wre.Encrypted_db.table pooled)

let load_parallel ~domains ~chunk_size () =
  let edb = build_edb () in
  Stdx.Task_pool.with_pool ~domains (fun pool ->
      ignore (Wre.Encrypted_db.insert_batch ~pool ~chunk_size edb (Lazy.force rows) : int));
  edb

let test_batch_multidomain_reproducible () =
  let a = load_parallel ~domains:4 ~chunk_size:256 () in
  let b = load_parallel ~domains:4 ~chunk_size:256 () in
  assert_tables_identical "same (seed, domains, chunk)" (Wre.Encrypted_db.table a)
    (Wre.Encrypted_db.table b);
  (* The chunked derivation depends on (PRNG state, chunk size) only,
     not on how many domains executed the chunks. *)
  let c = load_parallel ~domains:2 ~chunk_size:256 () in
  assert_tables_identical "domain-count independent" (Wre.Encrypted_db.table a)
    (Wre.Encrypted_db.table c)

let test_batch_multidomain_matches_sequential_contents () =
  let seq = load_sequential () in
  let par = load_parallel ~domains:4 ~chunk_size:128 () in
  let plain = Lazy.force rows in
  (* Decrypted contents: every row decrypts back to its plaintext. *)
  let tab = Wre.Encrypted_db.table par in
  check_int "row_count" (Array.length plain) (Sqldb.Table.row_count tab);
  Array.iteri
    (fun id expected ->
      let got = Wre.Encrypted_db.decrypt_row par (Sqldb.Table.peek_row tab id) in
      Array.iteri
        (fun i v ->
          check_bool
            (Printf.sprintf "row %d col %d decrypts" id i)
            true
            (Sqldb.Value.equal v got.(i)))
        expected)
    plain;
  (* Search results: same ids for the same queries as the sequential
     load (tags differ per row, but the search expands all salts). *)
  let queries =
    Sparta.Query_gen.generate ~seed:9L ~columns:enc_columns
      ~counts:(fun col ->
        let d = Lazy.force dist_of_lazy col in
        Array.to_list
          (Array.map (fun v -> (v, Dist.Empirical.count d v)) (Dist.Empirical.support d)))
      ~n:40 ()
  in
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      let ids edb =
        let r = Wre.Encrypted_db.search_ids edb ~column:q.column q.value in
        List.sort compare (Array.to_list r.Sqldb.Executor.row_ids)
      in
      check_bool (Printf.sprintf "%s=%s" q.column q.value) true (ids seq = ids par))
    queries

let test_batch_rejects_unknown_plaintext () =
  let edb = build_edb () in
  let bad =
    [|
      (Lazy.force rows).(0);
      (let r = Array.copy (Lazy.force rows).(1) in
       let pos = Sqldb.Schema.column_index Sparta.Generator.schema (List.hd enc_columns) in
       r.(pos) <- Sqldb.Value.Text "zzz-never-profiled-zzz";
       r);
    |]
  in
  check_bool "raises Unknown_plaintext" true
    (match Wre.Encrypted_db.insert_batch edb bad with
    | (_ : int) -> false
    | exception Wre.Column_enc.Unknown_plaintext _ -> true);
  (* All-or-nothing: nothing was applied to the table. *)
  check_int "no partial batch" 0 (Sqldb.Table.row_count (Wre.Encrypted_db.table edb))

let test_batch_validation_all_or_nothing () =
  let edb = build_edb () in
  let bad = [| (Lazy.force rows).(0); [| Sqldb.Value.Null |] |] in
  check_bool "raises Invalid_argument" true
    (match Wre.Encrypted_db.insert_batch edb bad with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true);
  check_int "no partial batch" 0 (Sqldb.Table.row_count (Wre.Encrypted_db.table edb))

let () =
  Alcotest.run "ingest"
    [
      ( "insert_batch",
        [
          Alcotest.test_case "1 domain byte-identical" `Quick test_batch_1domain_byte_identical;
          Alcotest.test_case "multi-domain reproducible" `Quick
            test_batch_multidomain_reproducible;
          Alcotest.test_case "multi-domain contents + search" `Quick
            test_batch_multidomain_matches_sequential_contents;
          Alcotest.test_case "unknown plaintext rejected" `Quick
            test_batch_rejects_unknown_plaintext;
          Alcotest.test_case "validation all-or-nothing" `Quick
            test_batch_validation_all_or_nothing;
        ] );
    ]
