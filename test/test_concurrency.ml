(* Concurrency stress harness for the snapshot-read query path.

   N reader domains serve snapshot queries through the proxy while the
   main domain — the single writer — interleaves INSERT / UPDATE /
   DELETE / vacuum / engine checkpoints. Readers check, every
   iteration:

   - monotone epochs: successive freezes never go backwards;
   - stable views: re-running a query against the same frozen view
     returns identical rows even while the writer publishes new epochs;
   - no torn rows: every decrypted row has the searched name, a
     non-negative id, and an in-universe city (a half-applied update or
     a row torn across an epoch would break one of these);
   - no resurrected tombstones: ids the writer had tombstoned before
     the freeze (published via an atomic watermark) never reappear;
   - consistent cardinality: the per-name searches partition the view,
     so their counts must sum to the view's total row count, and that
     total must lie inside the bounds implied by the writer's monotone
     insert/delete counters read before and after the freeze.

   Knobs: WRE_SEED, WRE_DOMAINS (reader-domain counts, comma list,
   default "2"), WRE_STRESS_OPS (writer mutations, default 250). *)

let check_bool = Alcotest.(check bool)

(* scratch directories (same convention as test_store) *)

let temp_counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wre_conc_test.%d.%d" (Unix.getpid ()) !temp_counter)
  in
  if Sys.file_exists dir then rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* fixtures *)

let plain_schema =
  Sqldb.Schema.create
    [
      { name = "id"; ty = Sqldb.Value.TInt; nullable = false };
      { name = "name"; ty = Sqldb.Value.TText; nullable = false };
      { name = "city"; ty = Sqldb.Value.TText; nullable = false };
    ]

let names = [| "ann"; "bob"; "cat"; "dan"; "eve" |]
let cities = [| "pdx"; "sea"; "nyc" |]

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with Some v -> v | None -> default

let master_seed =
  match Option.bind (Sys.getenv_opt "WRE_SEED") Int64.of_string_opt with
  | Some s -> s
  | None -> 7L

let reader_configs =
  match Sys.getenv_opt "WRE_DOMAINS" with
  | Some s -> (
      match List.filter_map int_of_string_opt (String.split_on_char ',' s) with
      | [] -> [ 2 ]
      | ds -> ds)
  | None -> [ 2 ]

let writer_ops = env_int "WRE_STRESS_OPS" 250
let initial_rows = 60

(* Insert/delete progress is tracked with started/done counter pairs:
   the writer bumps [started] before applying an op and [done] after,
   so a reader can bound what any freeze in between may see. A single
   post-op counter is not enough — a freeze can land after the op
   applied but before its bump, and the view would look "too big". *)
type shared = {
  proxy : Wre.Proxy.t;
  edb : Wre.Encrypted_db.t;
  i_started : int Atomic.t;  (** inserts begun (initial load + INSERTs + UPDATE re-inserts) *)
  i_done : int Atomic.t;  (** inserts known applied *)
  d_started : int Atomic.t;  (** tombstones begun (DELETEs + UPDATE tombstones) *)
  d_done : int Atomic.t;  (** tombstones known applied *)
  watermark : int Atomic.t;  (** every id < watermark is tombstoned for good *)
  stop : bool Atomic.t;
}

let row_of prng i =
  [|
    Sqldb.Value.Int (Int64.of_int i);
    Sqldb.Value.Text names.(Stdx.Prng.int prng (Array.length names));
    Sqldb.Value.Text cities.(Stdx.Prng.int prng (Array.length cities));
  |]

let build ~dir ~seed =
  let prng = Stdx.Prng.create seed in
  let rows = List.init initial_rows (row_of prng) in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:plain_schema ~columns:[ "name"; "city" ] (List.to_seq rows)
  in
  let store = Store.Engine.open_dir ~dir () in
  let edb =
    Store.Engine.create_encrypted store ~name:"people" ~plain_schema ~key_column:"id"
      ~encrypted_columns:[ "name"; "city" ]
      ~kind:(Wre.Scheme.Poisson 40.0)
      ~master:(Crypto.Keys.generate (Stdx.Prng.create (Int64.logxor seed 0xc0ffeeL)))
      ~dist_of ~seed:(Int64.logxor seed 0x5eedL) ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
  let shared =
    {
      proxy = Wre.Proxy.create edb;
      edb;
      i_started = Atomic.make initial_rows;
      i_done = Atomic.make initial_rows;
      d_started = Atomic.make 0;
      d_done = Atomic.make 0;
      watermark = Atomic.make 0;
      stop = Atomic.make false;
    }
  in
  (store, shared, prng)

(* ---------------- reader ---------------- *)

(* One reader domain: loop freezes + snapshot queries until the writer
   raises [stop], accumulating invariant violations (empty = pass). *)
let reader shared =
  let errors = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let last_epoch = ref (-1) in
  let iterations = ref 0 in
  while (not (Atomic.get shared.stop)) && List.length !errors < 5 do
    incr iterations;
    let i1 = Atomic.get shared.i_done and d1 = Atomic.get shared.d_done in
    let w = Atomic.get shared.watermark in
    let view = Wre.Encrypted_db.freeze shared.edb in
    let epoch = Sqldb.Read_view.epoch view in
    if epoch < !last_epoch then fail "epoch went backwards: %d after %d" epoch !last_epoch;
    last_epoch := max !last_epoch epoch;
    let ids sql =
      match Wre.Proxy.execute_snapshot ~view shared.proxy sql with
      | Error e ->
          fail "query %S failed: %s" sql e;
          []
      | Ok r ->
          List.map
            (fun row ->
              match row.(0) with Sqldb.Value.Int i -> Int64.to_int i | _ -> min_int)
            r.Wre.Proxy.rows
    in
    let total = ids "SELECT id FROM people" in
    (* stability: the same frozen view answers identically later, no
       matter how many epochs the writer has published since *)
    let again = ids "SELECT id FROM people" in
    if total <> again then
      fail "same view answered differently: %d then %d rows (epoch %d)" (List.length total)
        (List.length again) epoch;
    (* no resurrected tombstones *)
    List.iter
      (fun id -> if id < w then fail "tombstoned id %d reappeared (epoch %d)" id epoch)
      total;
    (* per-name searches partition the view: counts must sum to the
       total, and decrypted rows must be internally consistent *)
    let by_name =
      Array.fold_left
        (fun acc name ->
          let sql = Printf.sprintf "SELECT * FROM people WHERE name = '%s'" name in
          match Wre.Proxy.execute_snapshot ~view shared.proxy sql with
          | Error e ->
              fail "query %S failed: %s" sql e;
              acc
          | Ok r ->
              List.iter
                (fun row ->
                  (match row.(1) with
                  | Sqldb.Value.Text n when n = name -> ()
                  | _ -> fail "torn row under name = '%s' (epoch %d)" name epoch);
                  (match row.(0) with
                  | Sqldb.Value.Int i when i >= 0L -> ()
                  | _ -> fail "bad id under name = '%s' (epoch %d)" name epoch);
                  match row.(2) with
                  | Sqldb.Value.Text c when Array.exists (String.equal c) cities -> ()
                  | _ -> fail "bad city under name = '%s' (epoch %d)" name epoch)
                r.Wre.Proxy.rows;
              acc + List.length r.Wre.Proxy.rows)
        0 names
    in
    if by_name <> List.length total then
      fail "per-name counts sum to %d but the view holds %d rows (epoch %d)" by_name
        (List.length total) epoch;
    (* cardinality bounded by the writer's monotone counters: the view
       holds at least every insert finished before the freeze minus
       every delete ever started by now, and at most every insert
       started by now minus every delete finished before the freeze *)
    let i2 = Atomic.get shared.i_started and d2 = Atomic.get shared.d_started in
    let n = List.length total in
    if n < i1 - d2 || n > i2 - d1 then
      fail "view row count %d outside [%d, %d] (epoch %d)" n (i1 - d2) (i2 - d1) epoch
  done;
  (!iterations, List.rev !errors)

(* ---------------- writer ---------------- *)

let writer store shared prng =
  let next_id = ref initial_rows in
  for op = 1 to writer_ops do
    (match Stdx.Prng.int prng 10 with
    | 0 | 1 | 2 | 3 -> (
        (* INSERT a fresh id *)
        let id = !next_id in
        incr next_id;
        let sql =
          Printf.sprintf "INSERT INTO people VALUES (%d, '%s', '%s')" id
            names.(Stdx.Prng.int prng (Array.length names))
            cities.(Stdx.Prng.int prng (Array.length cities))
        in
        Atomic.incr shared.i_started;
        match Wre.Proxy.execute shared.proxy sql with
        | Ok r ->
            check_bool "insert applied" true (r.Wre.Proxy.affected = 1);
            Atomic.incr shared.i_done
        | Error e -> Alcotest.fail ("writer INSERT failed: " ^ e))
    | 4 | 5 | 6 -> (
        (* UPDATE one live row's city (MVCC: tombstone + re-insert) *)
        let lo = Atomic.get shared.watermark in
        let id = lo + Stdx.Prng.int prng (max 1 (!next_id - lo)) in
        let sql =
          Printf.sprintf "UPDATE people SET city = '%s' WHERE id = %d"
            cities.(Stdx.Prng.int prng (Array.length cities))
            id
        in
        (* an UPDATE that matches is a tombstone + re-insert; start
           both sides before executing (a no-match update leaves the
           started counters ahead, which only loosens the bounds) *)
        Atomic.incr shared.i_started;
        Atomic.incr shared.d_started;
        match Wre.Proxy.execute shared.proxy sql with
        | Ok r ->
            if r.Wre.Proxy.affected > 0 then begin
              Atomic.incr shared.i_done;
              Atomic.incr shared.d_done
            end
        | Error e -> Alcotest.fail ("writer UPDATE failed: " ^ e))
    | 7 | 8 -> (
        (* DELETE the watermark id: tombstoned for good, never reused *)
        let w = Atomic.get shared.watermark in
        if w < !next_id then begin
          let sql = Printf.sprintf "DELETE FROM people WHERE id = %d" w in
          Atomic.incr shared.d_started;
          match Wre.Proxy.execute shared.proxy sql with
          | Ok r ->
              check_bool "watermark id was live" true (r.Wre.Proxy.affected = 1);
              Atomic.incr shared.d_done;
              (* publish only after the tombstone is applied *)
              Atomic.set shared.watermark (w + 1)
          | Error e -> Alcotest.fail ("writer DELETE failed: " ^ e)
        end)
    | _ ->
        (* vacuum: compacts the heap and rebuilds indexes; frozen views
           keep serving their own row copies *)
        Sqldb.Table.vacuum (Wre.Encrypted_db.table shared.edb));
    if op mod 25 = 0 then Store.Engine.checkpoint store
  done

(* ---------------- cases ---------------- *)

let stress_case readers () =
  with_temp_dir @@ fun dir ->
  let store, shared, prng = build ~dir ~seed:master_seed in
  let domains = List.init readers (fun _ -> Domain.spawn (fun () -> reader shared)) in
  let writer_result =
    match writer store shared prng with
    | () -> Ok ()
    | exception e ->
        Atomic.set shared.stop true;
        Error e
  in
  Atomic.set shared.stop true;
  let results = List.map Domain.join domains in
  Store.Engine.close store;
  (match writer_result with Ok () -> () | Error e -> raise e);
  List.iteri
    (fun i (iterations, errors) ->
      check_bool (Printf.sprintf "reader %d made progress" i) true (iterations > 0);
      match errors with
      | [] -> ()
      | e :: _ ->
          Alcotest.fail
            (Printf.sprintf "reader %d: %d violation(s), first: %s" i (List.length errors) e))
    results

(* Readers still holding a pre-checkpoint epoch keep answering from it
   after the checkpoint truncates the WAL and vacuum rewrites the heap:
   frozen views own their row pointers. *)
let old_epoch_survives_checkpoint () =
  with_temp_dir @@ fun dir ->
  let store, shared, _prng = build ~dir ~seed:master_seed in
  let view = Wre.Encrypted_db.freeze shared.edb in
  let count sql view =
    match Wre.Proxy.execute_snapshot ~view shared.proxy sql with
    | Ok r -> List.length r.Wre.Proxy.rows
    | Error e -> Alcotest.fail e
  in
  let before = count "SELECT id FROM people" view in
  (match Wre.Proxy.execute shared.proxy "DELETE FROM people WHERE id BETWEEN 0 AND 9" with
  | Ok r -> check_bool "deleted ten" true (r.Wre.Proxy.affected = 10)
  | Error e -> Alcotest.fail e);
  Store.Engine.checkpoint store;
  Sqldb.Table.vacuum (Wre.Encrypted_db.table shared.edb);
  check_bool "old view unchanged after checkpoint + vacuum" true
    (count "SELECT id FROM people" view = before);
  let fresh = Wre.Encrypted_db.freeze shared.edb in
  check_bool "new epoch sees the deletes" true
    (count "SELECT id FROM people" fresh = before - 10);
  check_bool "epochs advanced" true (Sqldb.Read_view.epoch fresh > Sqldb.Read_view.epoch view);
  Store.Engine.close store

let () =
  Alcotest.run "concurrency"
    [
      ( "stress",
        List.map
          (fun readers ->
            Alcotest.test_case
              (Printf.sprintf "%d readers vs writer" readers)
              `Quick (stress_case readers))
          reader_configs );
      ( "epochs",
        [ Alcotest.test_case "old epoch survives checkpoint" `Quick old_epoch_survives_checkpoint ]
      );
    ]
