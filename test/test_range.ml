(* Properties of the ESEDS encrypted range structure (DESIGN.md §5k).

   The load-bearing contract is *interchangeability with the flat
   plan*: a cover's leaf tags must equal [Range_index.tags_for_range]
   over the same range, for any boundaries and any bounds — that is
   what makes the [Range_traverse] executor plan byte-compatible with
   the flat rtag IN-list rewrite (and what the differential oracle
   then checks end to end through the proxy). The rest is totality
   (inverted / unbounded / empty ranges, unknown roots), persistence
   (rebuild from checkpointed boundaries is byte-identical) and the
   server-side node-table validation. *)

open Sqldb

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'r') ~k1:(String.make 32 's')
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Generators ---------------- *)

(* Strictly increasing boundary arrays, as [Range_index.boundaries]
   produces them — including the empty array (a single unbounded
   bucket). *)
let boundaries_gen =
  QCheck.Gen.(
    map
      (fun xs -> Array.of_list (List.sort_uniq Int64.compare (List.map Int64.of_int xs)))
      (list_size (0 -- 12) (int_range (-1000) 1000)))

let bound_gen = QCheck.Gen.(opt (map Int64.of_int (int_range (-1200) 1200)))
let range_case_gen = QCheck.Gen.(triple boundaries_gen bound_gen bound_gen)

(* ---------------- QCheck properties ---------------- *)

let qcheck_cover_matches_flat =
  QCheck.Test.make ~name:"cover leaf tags equal flat bucket tags" ~count:500
    (QCheck.make range_case_gen)
    (fun (boundaries, lo, hi) ->
      let rs = Wre.Range_struct.create ~master ~column:"q" ~boundaries in
      let ri = Wre.Range_index.restore ~master ~column:"q" ~boundaries in
      Wre.Range_struct.leaf_tags rs (Wre.Range_struct.cover rs ~lo ~hi)
      = Wre.Range_index.tags_for_range ri ~lo ~hi)

let qcheck_traversal_expands_cover =
  QCheck.Test.make ~name:"server traversal of cover roots re-derives the leaf tags" ~count:500
    (QCheck.make range_case_gen)
    (fun (boundaries, lo, hi) ->
      let rs = Wre.Range_struct.create ~master ~column:"q" ~boundaries in
      let tree = Wre.Range_struct.tree rs in
      let cover = Wre.Range_struct.cover rs ~lo ~hi in
      let expanded =
        List.concat_map
          (fun root ->
            match Range_tree.traverse tree ~root with
            | Some (tags, _) -> Array.to_list tags
            | None -> QCheck.Test.fail_report "cover shipped a root the tree does not know")
          (Array.to_list cover.Wre.Range_struct.roots)
      in
      expanded = Wre.Range_struct.leaf_tags rs cover
      (* The canonical cover is logarithmic: at most two roots per
         tree level below the root. *)
      && Array.length cover.Wre.Range_struct.roots
         <= max 1 (2 * (Wre.Range_struct.depth rs - 1)))

let qcheck_rebuild_identical =
  QCheck.Test.make ~name:"rebuild from checkpointed boundaries is byte-identical" ~count:200
    (QCheck.make boundaries_gen)
    (fun boundaries ->
      let a = Wre.Range_struct.create ~master ~column:"q" ~boundaries in
      let b =
        Wre.Range_struct.of_index ~master ~column:"q"
          (Wre.Range_index.restore ~master ~column:"q" ~boundaries)
      in
      Wre.Range_struct.nodes a = Wre.Range_struct.nodes b
      && Wre.Range_struct.root_tag a = Wre.Range_struct.root_tag b)

(* ---------------- Totality ---------------- *)

let test_single_bucket () =
  let rs = Wre.Range_struct.create ~master ~column:"one" ~boundaries:[||] in
  check_int "one bucket" 1 (Wre.Range_struct.bucket_count rs);
  check_int "one node" 1 (Wre.Range_struct.node_count rs);
  check_int "depth one" 1 (Wre.Range_struct.depth rs);
  let c = Wre.Range_struct.cover rs ~lo:None ~hi:None in
  check_bool "unbounded cover is the root" true
    (c.Wre.Range_struct.roots = [| Wre.Range_struct.root_tag rs |]);
  check_int "one leaf tag" 1 (List.length (Wre.Range_struct.leaf_tags rs c))

let test_inverted_and_unbounded () =
  let boundaries = Array.map Int64.of_int [| 10; 20; 30; 40 |] in
  let rs = Wre.Range_struct.create ~master ~column:"v" ~boundaries in
  let inv = Wre.Range_struct.cover rs ~lo:(Some 35L) ~hi:(Some 12L) in
  check_bool "inverted range ships no roots" true (inv.Wre.Range_struct.roots = [||]);
  check_bool "inverted range is empty" true
    (inv.Wre.Range_struct.last_bucket < inv.Wre.Range_struct.first_bucket);
  check_bool "inverted range expands to no tags" true
    (Wre.Range_struct.leaf_tags rs inv = []);
  let all = Wre.Range_struct.cover rs ~lo:None ~hi:None in
  check_bool "unbounded cover is the single root pseudonym" true
    (all.Wre.Range_struct.roots = [| Wre.Range_struct.root_tag rs |]);
  check_int "unbounded cover expands to every bucket"
    (Wre.Range_struct.bucket_count rs)
    (List.length (Wre.Range_struct.leaf_tags rs all))

let test_unknown_root_total () =
  let boundaries = Array.map Int64.of_int [| 1; 2; 3 |] in
  let rs = Wre.Range_struct.create ~master ~column:"v" ~boundaries in
  let tree = Wre.Range_struct.tree rs in
  check_bool "root pseudonym known" true
    (Range_tree.mem tree ~tag:(Wre.Range_struct.root_tag rs));
  check_bool "garbage root refused, not crashed" true
    (Range_tree.traverse tree ~root:0xdeadbeefL = None);
  check_bool "garbage tag not a member" false (Range_tree.mem tree ~tag:0xdeadbeefL)

(* ---------------- Node-table validation ---------------- *)

let leaf ~tag ~bucket = { Range_tree.tag; left = -1; right = -1; bucket }

let test_make_validation () =
  let rejects name nodes =
    let raised =
      try
        ignore (Range_tree.make nodes);
        false
      with Invalid_argument _ -> true
    in
    check_bool name true raised
  in
  rejects "empty table" [||];
  rejects "duplicate tags"
    [|
      { Range_tree.tag = 1L; left = 1; right = 2; bucket = 0L };
      leaf ~tag:7L ~bucket:10L;
      leaf ~tag:7L ~bucket:11L;
    |];
  rejects "child before parent (not preorder)"
    [|
      leaf ~tag:7L ~bucket:10L;
      { Range_tree.tag = 1L; left = 0; right = 2; bucket = 0L };
      leaf ~tag:8L ~bucket:11L;
    |];
  rejects "internal node missing a child"
    [| { Range_tree.tag = 1L; left = 1; right = -1; bucket = 0L }; leaf ~tag:7L ~bucket:10L |];
  rejects "child index out of bounds"
    [| { Range_tree.tag = 1L; left = 1; right = 9; bucket = 0L }; leaf ~tag:7L ~bucket:10L |];
  let ok =
    Range_tree.make
      [|
        { Range_tree.tag = 1L; left = 1; right = 2; bucket = 0L };
        leaf ~tag:7L ~bucket:10L;
        leaf ~tag:8L ~bucket:11L;
      |]
  in
  check_int "valid table accepted" 3 (Range_tree.node_count ok);
  check_int "two leaves" 2 (Range_tree.leaf_count ok);
  check_int "depth two" 2 (Range_tree.depth ok)

(* ---------------- Executor byte-identity ---------------- *)

(* [run_traverse] over a cover must return exactly what [run_view]
   returns for the flat rtag IN-list, at any pool size — the executor-
   level version of the proxy contract the differential oracle checks. *)
let test_executor_traverse_matches_flat () =
  let schema =
    Schema.create
      [
        { name = "id"; ty = TInt; nullable = false };
        { name = "v"; ty = TInt; nullable = false };
        { name = "v_rtag"; ty = TInt; nullable = false };
      ]
  in
  let training = Array.init 60 (fun i -> Int64.of_int (i * i mod 97)) in
  let ri = Wre.Range_index.create ~master ~column:"v" ~buckets:6 ~training in
  let rs = Wre.Range_struct.of_index ~master ~column:"v" ri in
  let db = Database.create () in
  let t = Database.create_table db ~name:"vals" ~schema in
  Array.iteri
    (fun i v ->
      ignore
        (Table.insert t
           [| Value.Int (Int64.of_int i); Value.Int v; Value.Int (Wre.Range_index.tag_of_value ri v) |]))
    training;
  ignore (Table.create_index t ~column:"v_rtag");
  let view = Table.freeze t in
  let ranges =
    [ (Some 4L, Some 50L); (Some 0L, Some 0L); (None, Some 30L); (Some 80L, None); (None, None) ]
  in
  List.iter
    (fun (lo, hi) ->
      let cover = Wre.Range_struct.cover rs ~lo ~hi in
      let tags = Wre.Range_index.tags_for_range ri ~lo ~hi in
      let flat_pred = Predicate.In ("v_rtag", List.map (fun g -> Value.Int g) tags) in
      let flat = Executor.run_view view ~projection:Executor.All_columns flat_pred in
      let seq =
        Executor.run_traverse view ~tree:(Wre.Range_struct.tree rs) ~tag_column:"v_rtag"
          ~roots:cover.Wre.Range_struct.roots ~projection:Executor.All_columns flat_pred
      in
      check_bool "traverse plan" true (seq.Executor.plan = Executor.Range_traverse "v_rtag");
      check_bool "traverse rows = flat rows" true (seq.Executor.rows = flat.Executor.rows);
      check_bool "traverse ids = flat ids" true (seq.Executor.row_ids = flat.Executor.row_ids);
      Stdx.Task_pool.with_pool ~domains:4 @@ fun pool ->
      let par =
        Executor.run_traverse ~pool view ~tree:(Wre.Range_struct.tree rs) ~tag_column:"v_rtag"
          ~roots:cover.Wre.Range_struct.roots ~projection:Executor.All_columns flat_pred
      in
      check_bool "parallel traverse byte-identical" true
        (par.Executor.rows = seq.Executor.rows && par.Executor.row_ids = seq.Executor.row_ids))
    ranges

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "range"
    [
      ( "properties",
        q [ qcheck_cover_matches_flat; qcheck_traversal_expands_cover; qcheck_rebuild_identical ]
      );
      ( "totality",
        [
          Alcotest.test_case "single bucket" `Quick test_single_bucket;
          Alcotest.test_case "inverted and unbounded ranges" `Quick test_inverted_and_unbounded;
          Alcotest.test_case "unknown roots are total" `Quick test_unknown_root_total;
        ] );
      ("validation", [ Alcotest.test_case "node table validation" `Quick test_make_validation ]);
      ( "executor",
        [
          Alcotest.test_case "traversal matches flat plan" `Quick
            test_executor_traverse_matches_flat;
        ] );
    ]
