examples/range_queries.mli:
