examples/query_proxy.mli:
