examples/query_proxy.ml: Array Crypto Format List Printf Sparta Sqldb Stdx String Wre
