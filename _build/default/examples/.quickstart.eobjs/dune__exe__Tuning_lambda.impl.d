examples/tuning_lambda.ml: Array Crypto Dist List Option Printf Seq Sparta Stdx Wre
