examples/inference_attack.mli:
