examples/range_queries.ml: Array Crypto List Printf Sparta Sqldb Stdx Wre
