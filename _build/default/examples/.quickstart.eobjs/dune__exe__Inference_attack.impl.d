examples/inference_attack.ml: Array Attacks Crypto Dist Format List Printf Seq Sparta Stdx Sys Wre
