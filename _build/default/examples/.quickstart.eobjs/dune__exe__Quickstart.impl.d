examples/quickstart.ml: Array Crypto Database Executor Format Int64 List Predicate Schema Sqldb Stdx String Table Value Wre
