examples/census_database.mli:
