examples/census_database.ml: Array Crypto Database Dist Executor List Pager Predicate Printf Sparta Sqldb Stdx Sys Table Value Wre
