examples/tuning_lambda.mli:
