examples/quickstart.mli:
