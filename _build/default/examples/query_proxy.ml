(* The deployment story: applications keep speaking plaintext SQL; a
   rewriting proxy (CryptDB-style, paper section I) turns it into
   tag-based queries an unmodified server can answer, decrypts the
   response and filters client-side.

     dune exec examples/query_proxy.exe *)

let () =
  let gen = Sparta.Generator.create ~seed:8L in
  let rows = Array.of_seq (Sparta.Generator.rows gen ~n:15_000) in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema
      ~columns:Sparta.Generator.encrypted_columns (Array.to_seq rows)
  in
  let db = Sqldb.Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 2L) in
  let edb =
    Wre.Encrypted_db.create ~fallback:`Min_frequency ~db ~name:"people"
      ~plain_schema:Sparta.Generator.schema
      ~key_column:"id" ~encrypted_columns:Sparta.Generator.encrypted_columns
      ~kind:(Wre.Scheme.Poisson 1000.0) ~master ~dist_of ~seed:3L ()
  in
  Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
  let proxy = Wre.Proxy.create edb in

  let show sql =
    Printf.printf "app> %s\n" sql;
    (match Sqldb.Sql.parse sql with
    | Ok (Sqldb.Sql.Select s) -> (
        match Wre.Proxy.rewrite_select proxy s with
        | Ok rw ->
            let truncated =
              if String.length rw.server_sql > 140 then String.sub rw.server_sql 0 140 ^ "..."
              else rw.server_sql
            in
            Printf.printf "  proxy -> server: %s\n" truncated;
            Printf.printf "  client-side residual: %s\n"
              (Format.asprintf "%a" Sqldb.Predicate.pp rw.residual)
        | Error e -> Printf.printf "  rewrite error: %s\n" e)
    | _ -> ());
    match Wre.Proxy.execute proxy sql with
    | Error e -> Printf.printf "  error: %s\n\n" e
    | Ok r ->
        Printf.printf "  server sent %d encrypted rows; client kept %d\n" r.server_rows
          (List.length r.rows);
        List.iteri
          (fun i row ->
            if i < 3 then
              Printf.printf "    %s\n"
                (String.concat " | " (List.map Sqldb.Value.to_string (Array.to_list row))))
          r.rows;
        print_newline ()
  in

  show "SELECT fname, lname, city FROM people WHERE lname = 'Nguyen' LIMIT 10";
  show "SELECT id FROM people WHERE fname = 'Maria' AND city = 'Chicago'";
  show "SELECT fname, lname, income FROM people WHERE lname = 'Garcia' AND income BETWEEN 100000 AND 200000";
  show "SELECT fname FROM people WHERE id BETWEEN 100 AND 104";
  show "INSERT INTO people VALUES (15000, 'Maria', 'Garcia', '123-45-6789', '1980-01-01', 'F', \
        'US Citizen', 'Hispanic', 'IL', 'Chicago', '10147', '12 Oak St', '(312) 555-0101', \
        'maria.garcia1@example.com', 'Spanish', 'Married', 'Bachelors', 'Accountant', 66000, \
        40, 52, 'None', NULL)";
  show "SELECT id, fname, lname FROM people WHERE fname = 'Maria' AND id >= 15000"
