(* Bucketized range queries over an encrypted INT column (the Range
   extension; see Wre.Range_index). Shows the trade-off: more buckets =
   fewer false positives per range but a finer-grained leakage
   partition.

     dune exec examples/range_queries.exe *)

let () =
  let gen = Sparta.Generator.create ~seed:33L in
  let rows = Array.of_seq (Sparta.Generator.rows gen ~n:20_000) in
  let income_pos = Sqldb.Schema.column_index Sparta.Generator.schema "income" in
  let incomes =
    Array.map (fun r -> match r.(income_pos) with Sqldb.Value.Int x -> x | _ -> 0L) rows
  in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema ~columns:[ "lname" ]
      (Array.to_seq rows)
  in
  Printf.printf "20k records; querying income ranges through encrypted buckets\n\n";
  Printf.printf "%8s %22s %12s %12s %14s\n" "buckets" "range" "true rows" "server rows"
    "FP per query";
  List.iter
    (fun buckets ->
      let db = Sqldb.Database.create () in
      let master = Crypto.Keys.generate (Stdx.Prng.create 3L) in
      let edb =
        Wre.Encrypted_db.create
          ~range_columns:[ ("income", buckets) ]
          ~range_training:(fun _ -> incomes)
          ~db ~name:"main" ~plain_schema:Sparta.Generator.schema ~key_column:"id"
          ~encrypted_columns:[ "lname" ] ~kind:(Wre.Scheme.Poisson 1000.0) ~master ~dist_of
          ~seed:4L ()
      in
      Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
      List.iter
        (fun (lo, hi) ->
          let found, raw =
            Wre.Encrypted_db.search_range edb ~column:"income" ~lo:(Some lo) ~hi:(Some hi)
          in
          Printf.printf "%8d %10Ld-%-11Ld %12d %12d %14d\n" buckets lo hi (List.length found)
            (Array.length raw.row_ids)
            (Array.length raw.row_ids - List.length found))
        [ (30_000L, 60_000L); (100_000L, 120_000L); (400_000L, 480_000L) ])
    [ 8; 32; 128 ];
  Printf.printf
    "\nreading: the server only ever learns which of B equi-depth buckets each row\n\
     falls in; a range costs the two edge buckets in false positives. B plays the\n\
     role lambda plays for equality: utility up, leakage granularity up.\n"
