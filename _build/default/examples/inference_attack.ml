(* Why deterministic ESE is broken and WRE is not: run the
   frequency-analysis inference attack of Naveed–Kamara–Wright against
   the first-name column under every scheme.

     dune exec examples/inference_attack.exe -- [n_rows]          *)

let n_rows = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 30_000

let () =
  let g = Stdx.Prng.create 31337L in
  let gen = Sparta.Generator.create ~seed:5L in
  let plaintexts =
    Array.of_seq
      (Seq.map
         (fun row -> Sparta.Generator.column_string row ~column:"fname")
         (Sparta.Generator.rows gen ~n:n_rows))
  in
  let dist = Dist.Empirical.of_values (Array.to_seq plaintexts) in
  Printf.printf
    "attacking the fname column of %d records (%d distinct names, mode %.2f%%)\n\
     adversary: snapshot of the tag column + exact auxiliary distribution\n\n"
    n_rows
    (Dist.Empirical.support_size dist)
    (100.0 *. Dist.Empirical.max_prob dist);
  Printf.printf "%-18s %9s | %-42s | %-42s\n" "scheme" "tags" "rank-matching attack"
    "scheme-aware greedy attack";
  let master = Crypto.Keys.generate g in
  List.iter
    (fun kind ->
      let enc = Wre.Column_enc.create ~master ~column:"fname" ~kind ~dist () in
      let snap = Attacks.Snapshot.of_column enc g ~plaintexts in
      let rank = Attacks.Metrics.score snap ~guess:(Attacks.Frequency.rank_matching snap) in
      let greedy =
        Attacks.Metrics.score snap ~guess:(Attacks.Frequency.greedy_likelihood snap ~kind)
      in
      Printf.printf "%-18s %9d | %-42s | %-42s\n" (Wre.Scheme.to_string kind)
        (Attacks.Snapshot.n_distinct_tags snap)
        (Format.asprintf "%a" Attacks.Metrics.pp rank)
        (Format.asprintf "%a" Attacks.Metrics.pp greedy))
    [
      Wre.Scheme.Det;
      Wre.Scheme.Fixed 10;
      Wre.Scheme.Fixed 100;
      Wre.Scheme.Proportional 1000;
      Wre.Scheme.Poisson 1000.0;
      Wre.Scheme.Bucketized 1000.0;
    ];
  Printf.printf
    "\nreading: DET leaks nearly everything; fixed salts only dilute counts; the\n\
     Poisson schemes push every attack down to the guess-the-mode baseline.\n"
