(* Census-scale scenario: the paper's evaluation pipeline at example
   size. Generates a SPARTA-style person table, loads a plaintext and a
   WRE-encrypted copy, and compares storage plus cold/warm query
   latency.

     dune exec examples/census_database.exe -- [n_rows]           *)

open Sqldb

let n_rows = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let () =
  Printf.printf "generating %d census-like records...\n%!" n_rows;
  let gen = Sparta.Generator.create ~seed:2024L in
  let rows = Array.of_seq (Sparta.Generator.rows gen ~n:n_rows) in
  let enc_columns = Sparta.Generator.encrypted_columns in
  let dist_of =
    Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema ~columns:enc_columns
      (Array.to_seq rows)
  in

  (* Plaintext reference database with the same indexes. *)
  let plain_db = Database.create () in
  let plain = Database.create_table plain_db ~name:"main" ~schema:Sparta.Generator.schema in
  ignore (Table.create_index plain ~column:"id");
  List.iter (fun c -> ignore (Table.create_index plain ~column:c)) enc_columns;
  let (), plain_load_ns =
    Stdx.Clock.time_it (fun () -> Array.iter (fun r -> ignore (Table.insert plain r)) rows)
  in

  (* Encrypted database, Poisson λ=1000 (the paper's sweet spot). *)
  let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
  let enc_db = Database.create () in
  let edb =
    Wre.Encrypted_db.create ~db:enc_db ~name:"main" ~plain_schema:Sparta.Generator.schema
      ~key_column:"id" ~encrypted_columns:enc_columns ~kind:(Wre.Scheme.Poisson 1000.0) ~master
      ~dist_of ~seed:7L ()
  in
  let (), enc_load_ns =
    Stdx.Clock.time_it (fun () ->
        Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows)
  in
  let enc_table = Wre.Encrypted_db.table edb in

  Printf.printf "\nstorage (cf. paper Table I):\n";
  Printf.printf "  plaintext  DB %.1f MB, DB+indexes %.1f MB\n" (mb (Table.heap_bytes plain))
    (mb (Table.total_bytes plain));
  Printf.printf "  encrypted  DB %.1f MB, DB+indexes %.1f MB  (expansion %.2fx / %.2fx)\n"
    (mb (Table.heap_bytes enc_table))
    (mb (Table.total_bytes enc_table))
    (float_of_int (Table.heap_bytes enc_table) /. float_of_int (Table.heap_bytes plain))
    (float_of_int (Table.total_bytes enc_table) /. float_of_int (Table.total_bytes plain));
  Printf.printf "\nbulk load: plaintext %.2fs, encrypted %.2fs (%.1fx slower)\n"
    (plain_load_ns /. 1e9) (enc_load_ns /. 1e9) (enc_load_ns /. plain_load_ns);

  (* Queries: same plaintext equality query against both databases,
     cold cache (paper Figs. 4/5 protocol). *)
  let queries =
    Sparta.Query_gen.generate ~seed:99L ~columns:enc_columns
      ~counts:(fun col ->
        let d = dist_of col in
        Array.to_list
          (Array.map (fun v -> (v, Dist.Empirical.count d v)) (Dist.Empirical.support d)))
      ~n:30 ()
  in
  Printf.printf "\ncold-cache SELECT * latency (simulated I/O model):\n";
  Printf.printf "  %-8s %-22s %7s %12s %12s\n" "column" "value" "rows" "plain(ms)" "wre(ms)";
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      Database.drop_caches plain_db;
      let plain_res =
        Executor.run plain ~projection:Executor.All_columns (Predicate.Eq (q.column, Value.Text q.value))
      in
      Database.drop_caches enc_db;
      let _rows, enc_res = Wre.Encrypted_db.search_rows edb ~column:q.column q.value in
      Printf.printf "  %-8s %-22s %7d %12.2f %12.2f\n" q.column q.value
        (Array.length plain_res.row_ids)
        (Pager.sim_ms plain_res.stats) (Pager.sim_ms enc_res.stats))
    (List.filteri (fun i _ -> i < 10) queries);

  Printf.printf "\nwarm-cache pass over the same queries:\n";
  let warm_total db_kind run =
    List.fold_left
      (fun acc (q : Sparta.Query_gen.query) -> acc +. run q)
      0.0 queries
    |> fun total -> Printf.printf "  %-10s total %.2f ms over %d queries\n" db_kind total (List.length queries)
  in
  warm_total "plaintext" (fun q ->
      let r =
        Executor.run plain ~projection:Executor.All_columns (Predicate.Eq (q.column, Value.Text q.value))
      in
      Pager.sim_ms r.stats);
  warm_total "encrypted" (fun q ->
      let _rows, r = Wre.Encrypted_db.search_rows edb ~column:q.column q.value in
      Pager.sim_ms r.stats)
