(* Choosing λ: the one security/performance knob of the Poisson
   schemes. For a target distinguishing bound ω the paper gives
   λ ≥ ln(1/ω)/τ with τ the smallest plaintext frequency; larger λ also
   means more tags per query (slower search) and, for the bucketized
   variant, fewer false positives. This example prints the whole
   trade-off surface for a real column.

     dune exec examples/tuning_lambda.exe *)

let () =
  let gen = Sparta.Generator.create ~seed:12L in
  let plaintexts =
    Array.of_seq
      (Seq.map
         (fun row -> Sparta.Generator.column_string row ~column:"city")
         (Sparta.Generator.rows gen ~n:50_000))
  in
  let dist = Dist.Empirical.of_values (Array.to_seq plaintexts) in
  let tau = Dist.Empirical.min_prob dist in
  Printf.printf "city column: %d distinct values, min frequency tau = %.5f\n\n"
    (Dist.Empirical.support_size dist) tau;

  Printf.printf "lambda required for security target omega (paper section V-C):\n";
  List.iter
    (fun omega ->
      Printf.printf "  omega = %-8g -> lambda >= %.0f\n" omega
        (Dist.Exponential.lambda_for_security ~omega ~tau))
    [ 0.1; 0.01; 0.001; 1e-6 ];

  let master = Crypto.Keys.generate (Stdx.Prng.create 3L) in
  Printf.printf "\ntrade-off per lambda (Poisson and Bucketized):\n";
  Printf.printf "  %-8s %14s %12s %16s %16s\n" "lambda" "adv<=e^-lt" "tags/query"
    "distinct tags" "bucket FP mass";
  List.iter
    (fun lambda ->
      let kind = Wre.Scheme.Poisson lambda in
      let enc = Wre.Column_enc.create ~master ~column:"city" ~kind ~dist () in
      let support = Dist.Empirical.support dist in
      let tags_per_query =
        Array.fold_left
          (fun acc m -> acc +. float_of_int (List.length (Wre.Column_enc.search_tags enc m)))
          0.0 support
        /. float_of_int (Array.length support)
      in
      let distinct_tags =
        Array.fold_left
          (fun acc m -> acc + List.length (Wre.Column_enc.search_tags enc m))
          0 support
      in
      let bucketized =
        Wre.Column_enc.create ~master ~column:"city" ~kind:(Wre.Scheme.Bucketized lambda) ~dist ()
      in
      let layout = Option.get (Wre.Column_enc.bucket_layout bucketized) in
      (* Average retrieved-but-wrong probability mass per query. *)
      let fp_mass =
        Array.fold_left
          (fun acc m ->
            acc +. (Wre.Bucket_layout.returned_mass layout m -. Dist.Empirical.prob dist m))
          0.0 support
        /. float_of_int (Array.length support)
      in
      Printf.printf "  %-8g %14.3g %12.1f %16d %16.4f\n" lambda
        (Dist.Exponential.distance_to_capped ~rate:lambda ~tau)
        tags_per_query distinct_tags fp_mass)
    [ 100.0; 1000.0; 10_000.0; 50_000.0 ];
  Printf.printf
    "\nreading: raise lambda until e^(-lambda*tau) meets your target; pay for it\n\
     linearly in tags per query. Bucketized false-positive mass shrinks as\n\
     1/lambda, so the same knob also tunes result-size masking (Figs. 8-9).\n"
