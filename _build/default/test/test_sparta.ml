(* Data/query generator tests: schema shape, determinism, the
   heavy-tailed statistics the security evaluation depends on, and the
   query generator's result-size buckets. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_rows n seed =
  let gen = Sparta.Generator.create ~seed in
  Array.of_seq (Sparta.Generator.rows gen ~n)

let test_schema_shape () =
  check_int "23 columns like the paper" 23 (Sqldb.Schema.arity Sparta.Generator.schema);
  List.iter
    (fun c ->
      check_bool (c ^ " exists") true
        (Sqldb.Schema.column_index_opt Sparta.Generator.schema c <> None))
    Sparta.Generator.encrypted_columns;
  check_int "five encrypted columns" 5 (List.length Sparta.Generator.encrypted_columns)

let test_rows_validate () =
  let rows = sample_rows 500 1L in
  Array.iter
    (fun row ->
      match Sqldb.Schema.validate_row Sparta.Generator.schema row with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    rows

let test_ids_sequential () =
  let rows = sample_rows 100 2L in
  Array.iteri
    (fun i row ->
      match row.(0) with
      | Sqldb.Value.Int id -> check_int "id" i (Int64.to_int id)
      | _ -> Alcotest.fail "id not int")
    rows

let test_deterministic_by_seed () =
  let a = sample_rows 50 7L and b = sample_rows 50 7L in
  check_bool "same seed same rows" true (a = b);
  let c = sample_rows 50 8L in
  check_bool "different seed different rows" true (a <> c)

let test_name_distribution_heavy_tailed () =
  let rows = sample_rows 20000 3L in
  let freq column =
    Dist.Empirical.of_values
      (Array.to_seq (Array.map (fun r -> Sparta.Generator.column_string r ~column) rows))
  in
  let lname = freq "lname" in
  let support = Dist.Empirical.support lname in
  (* Heavy tail: top value much more common than median value. *)
  let top = Dist.Empirical.prob lname support.(0) in
  let mid = Dist.Empirical.prob lname support.(Array.length support / 2) in
  check_bool "head dominates" true (top > 4.0 *. mid);
  check_bool "low entropy column" true
    (Dist.Empirical.min_entropy_bits lname < 8.0)

let test_ssn_high_entropy () =
  let rows = sample_rows 5000 4L in
  let ssns = Array.map (fun r -> Sparta.Generator.column_string r ~column:"ssn") rows in
  let d = Dist.Empirical.of_values (Array.to_seq ssns) in
  (* SSNs are nearly unique. *)
  check_bool "near unique" true (Dist.Empirical.support_size d > 4900);
  Array.iter
    (fun s ->
      check_int "format ###-##-####" 11 (String.length s);
      check_bool "dashes" true (s.[3] = '-' && s.[6] = '-'))
    ssns

let test_zip_city_consistency () =
  (* Each zip code must belong to exactly one city (the generator's zip
     pools are disjoint per city). *)
  let rows = sample_rows 10000 5L in
  let zip_to_city = Hashtbl.create 256 in
  Array.iter
    (fun r ->
      let zip = Sparta.Generator.column_string r ~column:"zip" in
      let city = Sparta.Generator.column_string r ~column:"city" in
      match Hashtbl.find_opt zip_to_city zip with
      | None -> Hashtbl.replace zip_to_city zip city
      | Some c -> check_bool ("zip " ^ zip ^ " single city") true (c = city))
    rows

let test_state_matches_city () =
  let rows = sample_rows 2000 6L in
  let city_state =
    Array.to_seq Sparta.Names_data.cities |> Seq.map (fun (c, s, _) -> (c, s)) |> Hashtbl.of_seq
  in
  Array.iter
    (fun r ->
      let city = Sparta.Generator.column_string r ~column:"city" in
      let state = Sparta.Generator.column_string r ~column:"state" in
      check_bool "state of city" true (Hashtbl.find city_state city = state))
    rows

let test_column_string_rejects_non_text () =
  let rows = sample_rows 1 9L in
  let raised =
    try
      ignore (Sparta.Generator.column_string rows.(0) ~column:"income");
      false
    with Invalid_argument _ -> true
  in
  check_bool "income rejected" true raised

let test_notes_prose () =
  let rows = sample_rows 300 10L in
  let lengths =
    Array.to_list rows
    |> List.filter_map (fun r ->
           match r.(Sqldb.Schema.column_index Sparta.Generator.schema "notes") with
           | Sqldb.Value.Text s -> Some (String.length s)
           | Sqldb.Value.Null -> None
           | _ -> None)
  in
  check_bool "some notes present" true (List.length lengths > 200);
  check_bool "hundreds of bytes" true
    (List.fold_left ( + ) 0 lengths / List.length lengths > 200)

(* ---------------- Query generator ---------------- *)

let counts_of rows column =
  let d =
    Dist.Empirical.of_values
      (Array.to_seq (Array.map (fun r -> Sparta.Generator.column_string r ~column) rows))
  in
  Array.to_list (Array.map (fun v -> (v, Dist.Empirical.count d v)) (Dist.Empirical.support d))

let test_query_gen_counts_accurate () =
  let rows = sample_rows 10000 11L in
  let queries =
    Sparta.Query_gen.generate ~seed:1L ~columns:[ "fname"; "city" ]
      ~counts:(counts_of rows) ~n:100 ()
  in
  check_int "requested count" 100 (List.length queries);
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      let actual =
        Array.fold_left
          (fun acc r ->
            if Sparta.Generator.column_string r ~column:q.column = q.value then acc + 1 else acc)
          0 rows
      in
      check_int ("expected matches actual for " ^ q.value) q.expected actual;
      check_bool "within cap" true (q.expected >= 1 && q.expected <= 10_000))
    queries

let test_query_gen_buckets_covered () =
  let rows = sample_rows 20000 12L in
  let queries =
    Sparta.Query_gen.generate ~seed:2L ~columns:Sparta.Generator.encrypted_columns
      ~counts:(counts_of rows) ~n:200 ()
  in
  let buckets = Hashtbl.create 6 in
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      Hashtbl.replace buckets (Sparta.Query_gen.bucket_of q.expected) ())
    queries;
  (* ssn gives singletons; names/cities give the middle buckets. *)
  check_bool "at least 3 distinct size buckets" true (Hashtbl.length buckets >= 3)

let test_bucket_of_boundaries () =
  check_int "1" 0 (Sparta.Query_gen.bucket_of 1);
  check_int "2" 1 (Sparta.Query_gen.bucket_of 2);
  check_int "10" 1 (Sparta.Query_gen.bucket_of 10);
  check_int "11" 2 (Sparta.Query_gen.bucket_of 11);
  check_int "1000" 3 (Sparta.Query_gen.bucket_of 1000);
  check_int "10000" 4 (Sparta.Query_gen.bucket_of 10000);
  check_int "10001" 5 (Sparta.Query_gen.bucket_of 10001);
  check_bool "labels" true (Sparta.Query_gen.bucket_label 0 = "1")

let test_query_gen_respects_max_result () =
  (* sex has ~10k-count values; with max_result 100 there are no
     candidates and generate must refuse. *)
  let rows = sample_rows 20000 13L in
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Query_gen.generate: no candidate values") (fun () ->
      ignore
        (Sparta.Query_gen.generate ~seed:3L ~columns:[ "sex" ] ~counts:(counts_of rows) ~n:10
           ~max_result:100 ()))

let () =
  Alcotest.run "sparta"
    [
      ( "generator",
        [
          Alcotest.test_case "schema shape" `Quick test_schema_shape;
          Alcotest.test_case "rows validate" `Quick test_rows_validate;
          Alcotest.test_case "ids sequential" `Quick test_ids_sequential;
          Alcotest.test_case "deterministic" `Quick test_deterministic_by_seed;
          Alcotest.test_case "heavy-tailed names" `Quick test_name_distribution_heavy_tailed;
          Alcotest.test_case "ssn entropy/format" `Quick test_ssn_high_entropy;
          Alcotest.test_case "zip-city consistency" `Quick test_zip_city_consistency;
          Alcotest.test_case "state matches city" `Quick test_state_matches_city;
          Alcotest.test_case "column_string rejects non-text" `Quick
            test_column_string_rejects_non_text;
          Alcotest.test_case "notes prose" `Quick test_notes_prose;
        ] );
      ( "query_gen",
        [
          Alcotest.test_case "counts accurate" `Quick test_query_gen_counts_accurate;
          Alcotest.test_case "buckets covered" `Quick test_query_gen_buckets_covered;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_of_boundaries;
          Alcotest.test_case "max_result" `Quick test_query_gen_respects_max_result;
        ] );
    ]
