(* Crypto substrate tests: every primitive is checked against its
   published test vectors (FIPS 180-4, RFC 4231, RFC 5869, FIPS 197,
   SP 800-38A structure) plus structural/property tests. *)

let hex = Stdx.Bytes_util.of_hex
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- SHA-256 ---------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    (* One full block of padding boundary cases. *)
    (String.make 55 'a', "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
    (String.make 56 'a', "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
    (String.make 64 'a', "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
    (String.make 1000 'a', "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3");
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, want) ->
      check_str (Printf.sprintf "sha256 of %d bytes" (String.length msg)) want
        (Crypto.Sha256.digest_hex msg))
    sha_vectors

let test_sha256_million_a () =
  (* FIPS 180-4 long vector. *)
  let ctx = Crypto.Sha256.init () in
  for _ = 1 to 1000 do
    Crypto.Sha256.feed ctx (String.make 1000 'a')
  done;
  check_str "1M a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Stdx.Bytes_util.to_hex (Crypto.Sha256.finalize ctx))

let test_sha256_incremental_equivalence () =
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let one_shot = Crypto.Sha256.digest msg in
  (* Feed in awkward chunk sizes crossing block boundaries. *)
  List.iter
    (fun sizes ->
      let ctx = Crypto.Sha256.init () in
      let pos = ref 0 in
      List.iter
        (fun n ->
          let n = min n (String.length msg - !pos) in
          Crypto.Sha256.feed ctx (String.sub msg !pos n);
          pos := !pos + n)
        sizes;
      Crypto.Sha256.feed ctx (String.sub msg !pos (String.length msg - !pos));
      check_str "incremental = one-shot" (Stdx.Bytes_util.to_hex one_shot)
        (Stdx.Bytes_util.to_hex (Crypto.Sha256.finalize ctx)))
    [ [ 1; 1; 1 ]; [ 63; 1; 64 ]; [ 64; 64 ]; [ 65; 100 ]; [ 300 ]; [ 0; 0; 300 ] ]

let test_sha256_feed_bytes_slice () =
  let buf = Bytes.of_string "xxabcyy" in
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed_bytes ctx buf ~off:2 ~len:3;
  check_str "slice" (Crypto.Sha256.digest_hex "abc")
    (Stdx.Bytes_util.to_hex (Crypto.Sha256.finalize ctx));
  let ctx = Crypto.Sha256.init () in
  Alcotest.check_raises "bad slice" (Invalid_argument "Sha256.feed_bytes: slice out of range")
    (fun () -> Crypto.Sha256.feed_bytes ctx buf ~off:5 ~len:10)

(* ---------------- HMAC (RFC 4231) ---------------- *)

let test_hmac_rfc4231 () =
  let cases =
    [
      ( String.make 20 '\x0b',
        "Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
      ( "Jefe",
        "what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
      ( String.make 20 '\xaa',
        String.make 50 '\xdd',
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
      ( String.make 131 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" );
      ( String.make 131 '\xaa',
        "This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.",
        "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2" );
    ]
  in
  List.iteri
    (fun i (key, msg, want) ->
      check_str (Printf.sprintf "rfc4231 case %d" i) want (Crypto.Hmac.mac_hex ~key msg))
    cases

let test_hmac_truncated_case5 () =
  (* RFC 4231 case 5: 128-bit truncation; checks our mac_u64 path uses
     the leading bytes. *)
  let key = String.make 20 '\x0c' in
  let tag = Crypto.Hmac.mac ~key "Test With Truncation" in
  check_str "leading 16 bytes" "a3b6167473100ee06e0c796c2955552b"
    (Stdx.Bytes_util.to_hex (String.sub tag 0 16));
  Alcotest.(check int64)
    "mac_u64 = first 8 bytes BE" (Stdx.Bytes_util.get_u64_be tag 0)
    (Crypto.Hmac.mac_u64 ~key "Test With Truncation")

let test_hmac_verify () =
  let key = "secret" in
  let tag = Crypto.Hmac.mac ~key "message" in
  check_bool "accepts" true (Crypto.Hmac.verify ~key "message" ~tag);
  check_bool "rejects wrong msg" false (Crypto.Hmac.verify ~key "messagE" ~tag);
  check_bool "rejects truncated" false
    (Crypto.Hmac.verify ~key "message" ~tag:(String.sub tag 0 31))

(* ---------------- HKDF (RFC 5869) ---------------- *)

let test_hkdf_rfc5869_case1 () =
  let ikm = String.make 22 '\x0b' in
  let salt = hex "000102030405060708090a0b0c" in
  let info = hex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Crypto.Hkdf.extract ~salt ~ikm () in
  check_str "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    (Stdx.Bytes_util.to_hex prk);
  check_str "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Stdx.Bytes_util.to_hex (Crypto.Hkdf.expand ~prk ~info ~len:42))

let test_hkdf_rfc5869_case3 () =
  (* Zero-length salt and info. *)
  let ikm = String.make 22 '\x0b' in
  let prk = Crypto.Hkdf.extract ~ikm () in
  check_str "okm"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    (Stdx.Bytes_util.to_hex (Crypto.Hkdf.expand ~prk ~info:"" ~len:42))

let test_hkdf_domain_separation () =
  check_bool "info separates" true
    (Crypto.Hkdf.derive ~ikm:"k" ~info:"a" ~len:32 <> Crypto.Hkdf.derive ~ikm:"k" ~info:"b" ~len:32)

(* ---------------- AES-128 (FIPS 197) ---------------- *)

let test_aes_fips197 () =
  let key = Crypto.Aes128.expand (hex "000102030405060708090a0b0c0d0e0f") in
  let ct = Crypto.Aes128.encrypt_string key (hex "00112233445566778899aabbccddeeff") in
  check_str "appendix C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (Stdx.Bytes_util.to_hex ct);
  check_str "decrypt inverts" "00112233445566778899aabbccddeeff"
    (Stdx.Bytes_util.to_hex (Crypto.Aes128.decrypt_string key ct))

let test_aes_sp800_38a_block () =
  (* First ECB block of the SP 800-38A example key. *)
  let key = Crypto.Aes128.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Crypto.Aes128.encrypt_string key (hex "6bc1bee22e409f96e93d7e117393172a") in
  check_str "ecb block 1" "3ad77bb40d7a3660a89ecaf32466ef97" (Stdx.Bytes_util.to_hex ct)

let test_aes_key_validation () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes128.expand: key must be 16 bytes")
    (fun () -> ignore (Crypto.Aes128.expand "short"))

let test_aes_roundtrip_random () =
  let g = Stdx.Prng.create 77L in
  for _ = 1 to 50 do
    let key = Crypto.Aes128.expand (Bytes.to_string (Stdx.Prng.bytes g 16)) in
    let pt = Bytes.to_string (Stdx.Prng.bytes g 16) in
    check_str "roundtrip" pt (Crypto.Aes128.decrypt_string key (Crypto.Aes128.encrypt_string key pt))
  done

(* ---------------- CTR mode ---------------- *)

let test_ctr_sp800_38a () =
  (* SP 800-38A F.5.1 with the standard initial counter; our layout
     zeroes the low 64 bits, so reproduce the keystream manually: the
     first counter block is nonce with low 8 bytes zero. Instead check
     the documented CTR property: ct = pt XOR E_k(ctr_i). *)
  let raw = hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let key = Crypto.Ctr.of_raw raw in
  let nonce = hex "f0f1f2f3f4f5f6f70000000000000000" in
  let pt = String.make 40 '\x00' in
  let ct = Crypto.Ctr.encrypt key ~nonce pt in
  (* Encrypting zeros exposes the raw keystream. *)
  let aes = Crypto.Aes128.expand raw in
  let block0 = Crypto.Aes128.encrypt_string aes (hex "f0f1f2f3f4f5f6f70000000000000000") in
  let block1 = Crypto.Aes128.encrypt_string aes (hex "f0f1f2f3f4f5f6f70000000000000001") in
  check_str "keystream block 0" (Stdx.Bytes_util.to_hex block0)
    (Stdx.Bytes_util.to_hex (String.sub ct 16 16));
  check_str "keystream block 1" (Stdx.Bytes_util.to_hex (String.sub block1 0 8))
    (Stdx.Bytes_util.to_hex (String.sub ct 32 8))

let test_ctr_roundtrip_various_lengths () =
  let g = Stdx.Prng.create 99L in
  let key = Crypto.Ctr.of_raw (Bytes.to_string (Stdx.Prng.bytes g 16)) in
  List.iter
    (fun len ->
      let pt = Bytes.to_string (Stdx.Prng.bytes g len) in
      let ct = Crypto.Ctr.encrypt_random key g pt in
      check_int "ciphertext length" (len + Crypto.Ctr.ciphertext_overhead) (String.length ct);
      check_str (Printf.sprintf "roundtrip len %d" len) pt (Crypto.Ctr.decrypt key ct))
    [ 0; 1; 15; 16; 17; 31; 32; 33; 100; 1000 ]

let test_ctr_randomized () =
  let g = Stdx.Prng.create 101L in
  let key = Crypto.Ctr.of_raw (Bytes.to_string (Stdx.Prng.bytes g 16)) in
  let c1 = Crypto.Ctr.encrypt_random key g "same plaintext" in
  let c2 = Crypto.Ctr.encrypt_random key g "same plaintext" in
  check_bool "two encryptions differ" true (c1 <> c2)

let test_ctr_counter_carry () =
  (* Force the counter's low byte to wrap: encrypt > 256 blocks. *)
  let key = Crypto.Ctr.of_raw (String.make 16 'k') in
  let nonce = String.make 16 '\x00' in
  let pt = String.make (257 * 16) '\x00' in
  let ct = Crypto.Ctr.encrypt key ~nonce pt in
  (* Block 256 must use counter 0x...0100, not repeat block 0. *)
  check_bool "no keystream reuse across carry" true
    (String.sub ct 16 16 <> String.sub ct (16 + (256 * 16)) 16);
  check_str "roundtrip" pt (Crypto.Ctr.decrypt key ct)

let test_ctr_rejects () =
  let key = Crypto.Ctr.of_raw (String.make 16 'k') in
  Alcotest.check_raises "bad nonce" (Invalid_argument "Ctr.encrypt: nonce must be 16 bytes")
    (fun () -> ignore (Crypto.Ctr.encrypt key ~nonce:"short" "m"));
  Alcotest.check_raises "short ct" (Invalid_argument "Ctr.decrypt: ciphertext too short")
    (fun () -> ignore (Crypto.Ctr.decrypt key "short"))

(* ---------------- AEAD ---------------- *)

let test_aead_roundtrip () =
  let g = Stdx.Prng.create 7L in
  let key = Crypto.Aead.of_raw (String.make 32 'k') in
  List.iter
    (fun len ->
      let pt = Bytes.to_string (Stdx.Prng.bytes g len) in
      let ct = Crypto.Aead.encrypt key g pt in
      check_int "overhead" (len + Crypto.Aead.ciphertext_overhead) (String.length ct);
      check_bool "roundtrip" true (Crypto.Aead.decrypt key ct = Ok pt))
    [ 0; 1; 16; 100 ]

let test_aead_detects_tampering () =
  let g = Stdx.Prng.create 8L in
  let key = Crypto.Aead.of_raw (String.make 32 'k') in
  let ct = Crypto.Aead.encrypt key g "important data" in
  (* Flip each region: nonce, body, tag. *)
  List.iter
    (fun pos ->
      let b = Bytes.of_string ct in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      check_bool
        (Printf.sprintf "flip at %d rejected" pos)
        true
        (Result.is_error (Crypto.Aead.decrypt key (Bytes.to_string b))))
    [ 0; 20; String.length ct - 1 ];
  check_bool "truncation rejected" true
    (Result.is_error (Crypto.Aead.decrypt key (String.sub ct 0 (String.length ct - 1))));
  check_bool "too short rejected" true (Result.is_error (Crypto.Aead.decrypt key "x"))

let test_aead_vs_ctr_malleability () =
  (* The contrast the suite documents: CTR silently yields garbled
     plaintext under the same bit-flip AEAD refuses. *)
  let g = Stdx.Prng.create 9L in
  let ctr_key = Crypto.Ctr.of_raw (String.make 16 'c') in
  let ct = Crypto.Ctr.encrypt_random ctr_key g "important data" in
  let b = Bytes.of_string ct in
  Bytes.set b 20 (Char.chr (Char.code (Bytes.get b 20) lxor 0xFF));
  let garbled = Crypto.Ctr.decrypt ctr_key (Bytes.to_string b) in
  check_bool "ctr silently garbles" true
    (garbled <> "important data" && String.length garbled = String.length "important data")

(* ---------------- DRBG ---------------- *)

let test_drbg_deterministic () =
  let a = Crypto.Drbg.create ~seed:"seed" and b = Crypto.Drbg.create ~seed:"seed" in
  check_str "same stream" (Crypto.Drbg.generate a 64) (Crypto.Drbg.generate b 64);
  let c = Crypto.Drbg.create ~seed:"other" in
  check_bool "different seed differs" true
    (Crypto.Drbg.generate c 64 <> Crypto.Drbg.generate (Crypto.Drbg.create ~seed:"seed") 64)

let test_drbg_stream_advances () =
  let d = Crypto.Drbg.create ~seed:"s" in
  check_bool "successive outputs differ" true (Crypto.Drbg.generate d 32 <> Crypto.Drbg.generate d 32)

let test_drbg_float_int () =
  let d = Crypto.Drbg.create ~seed:"s" in
  for _ = 1 to 200 do
    let f = Crypto.Drbg.float d in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Crypto.Drbg.int d 10 in
    check_bool "int in range" true (i >= 0 && i < 10)
  done

let test_drbg_exponential () =
  let d = Crypto.Drbg.create ~seed:"exp" in
  let n = 5000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let x = Crypto.Drbg.exponential d ~rate:2.0 in
    check_bool "non-negative" true (x >= 0.0);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean ~ 1/rate" true (Float.abs (mean -. 0.5) < 0.05)

(* ---------------- PRF ---------------- *)

let test_prf_salt_message_encoding () =
  let key = Crypto.Prf.of_raw (String.make 32 'p') in
  (* (1, "2m") vs (12, "m") style confusions are impossible thanks to
     length prefixing; spot-check a family. *)
  check_bool "salt/message split" true
    (Crypto.Prf.tag key ~salt:1 ~message:"23" <> Crypto.Prf.tag key ~salt:12 ~message:"3");
  check_bool "salt_only differs from pair" true
    (Crypto.Prf.tag_salt_only key ~salt:1 <> Crypto.Prf.tag key ~salt:1 ~message:"");
  check_bool "deterministic" true
    (Crypto.Prf.tag key ~salt:5 ~message:"m" = Crypto.Prf.tag key ~salt:5 ~message:"m")

let test_prf_key_separation () =
  let k1 = Crypto.Prf.of_raw (String.make 16 '1') and k2 = Crypto.Prf.of_raw (String.make 16 '2') in
  check_bool "different keys differ" true
    (Crypto.Prf.tag k1 ~salt:0 ~message:"m" <> Crypto.Prf.tag k2 ~salt:0 ~message:"m");
  check_bool "short keys rejected" true
    (try
       ignore (Crypto.Prf.of_raw "short");
       false
     with Invalid_argument _ -> true);
  (* Backends are domain-separated from each other. *)
  let hm = Crypto.Prf.of_raw (String.make 32 'k') in
  let sp = Crypto.Prf.of_raw ~algo:Crypto.Prf.Siphash24 (String.make 32 'k') in
  check_bool "algo recorded" true
    (Crypto.Prf.algo hm = Crypto.Prf.Hmac_sha256 && Crypto.Prf.algo sp = Crypto.Prf.Siphash24);
  check_bool "backends differ" true
    (Crypto.Prf.tag hm ~salt:0 ~message:"m" <> Crypto.Prf.tag sp ~salt:0 ~message:"m")

let test_prf_tag_spread () =
  (* 64-bit tags over 1000 (salt, message) pairs should not collide. *)
  let key = Crypto.Prf.of_raw (String.make 32 's') in
  let seen = Hashtbl.create 1000 in
  for s = 0 to 9 do
    for i = 0 to 99 do
      Hashtbl.replace seen (Crypto.Prf.tag key ~salt:s ~message:(string_of_int i)) ()
    done
  done;
  check_int "no collisions" 1000 (Hashtbl.length seen)

(* ---------------- SipHash ---------------- *)

let test_siphash_reference_vectors () =
  (* Reference vectors from the SipHash paper's test program
     (vectors_sip64): key = 000102…0f, message = first n bytes of
     00 01 02 …. *)
  let key = Crypto.Siphash.of_raw (hex "000102030405060708090a0b0c0d0e0f") in
  let msg n = String.init n Char.chr in
  let expected =
    [
      (0, 0x726fdb47dd0e0e31L);
      (1, 0x74f839c593dc67fdL);
      (2, 0x0d6c8009d9a94f5aL);
      (3, 0x85676696d7fb7e2dL);
      (7, 0xab0200f58b01d137L);
      (8, 0x93f5f5799a932462L);
      (9, 0x9e0082df0ba9e4b0L);
      (15, 0xa129ca6149be45e5L);
      (16, 0x3f2acc7f57c29bdbL);
      (17, 0x699ae9f52cbe4794L);
    ]
  in
  List.iter
    (fun (n, want) ->
      Alcotest.(check int64) (Printf.sprintf "len %d" n) want (Crypto.Siphash.hash key (msg n)))
    expected

let test_siphash_key_sensitivity () =
  let k1 = Crypto.Siphash.of_raw (String.make 16 'a') in
  let k2 = Crypto.Siphash.of_raw (String.make 16 'b') in
  check_bool "different keys" true (Crypto.Siphash.hash k1 "m" <> Crypto.Siphash.hash k2 "m");
  check_bool "different messages" true
    (Crypto.Siphash.hash k1 "m" <> Crypto.Siphash.hash k1 "n");
  Alcotest.check_raises "short key" (Invalid_argument "Siphash.of_raw: key must be 16 bytes")
    (fun () -> ignore (Crypto.Siphash.of_raw "short"))

let test_siphash_no_collisions_smoke () =
  let key = Crypto.Siphash.of_raw (String.make 16 's') in
  let seen = Hashtbl.create 4096 in
  for i = 0 to 4095 do
    Hashtbl.replace seen (Crypto.Siphash.hash key (string_of_int i)) ()
  done;
  check_int "4096 distinct outputs" 4096 (Hashtbl.length seen)

(* ---------------- PRS ---------------- *)

let test_prs_permutation_valid () =
  let p = Crypto.Prs.permutation ~key:"k" ~context:"c" 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_prs_deterministic_and_keyed () =
  let a = Crypto.Prs.permutation ~key:"k" ~context:"c" 50 in
  let b = Crypto.Prs.permutation ~key:"k" ~context:"c" 50 in
  Alcotest.(check (array int)) "deterministic" a b;
  check_bool "key matters" true (Crypto.Prs.permutation ~key:"K" ~context:"c" 50 <> a);
  check_bool "context matters" true (Crypto.Prs.permutation ~key:"k" ~context:"d" 50 <> a)

let test_prs_shuffle_elements () =
  let input = [| "a"; "b"; "c"; "d"; "e" |] in
  let out = Crypto.Prs.shuffle ~key:"k" ~context:"c" input in
  let sorted = Array.copy out in
  Array.sort compare sorted;
  Alcotest.(check (array string)) "same multiset" input sorted

(* ---------------- Keys ---------------- *)

let test_keys_derivation_separation () =
  let m = Crypto.Keys.of_raw ~k0:(String.make 16 '0') ~k1:(String.make 32 '1') in
  let t1 = Crypto.Prf.tag (Crypto.Keys.prf_key m ~column:"a") ~salt:0 ~message:"x" in
  let t2 = Crypto.Prf.tag (Crypto.Keys.prf_key m ~column:"b") ~salt:0 ~message:"x" in
  check_bool "per-column PRF keys differ" true (t1 <> t2);
  check_bool "salt seeds separate by context" true
    (Crypto.Keys.salt_seed m ~column:"a" ~context:"x"
    <> Crypto.Keys.salt_seed m ~column:"a" ~context:"y")

let test_keys_export_roundtrip () =
  let g = Stdx.Prng.create 55L in
  let m = Crypto.Keys.generate g in
  let k0, k1 = Crypto.Keys.export m in
  let m' = Crypto.Keys.of_raw ~k0 ~k1 in
  check_bool "same derived PRF" true
    (Crypto.Prf.tag (Crypto.Keys.prf_key m ~column:"c") ~salt:1 ~message:"m"
    = Crypto.Prf.tag (Crypto.Keys.prf_key m' ~column:"c") ~salt:1 ~message:"m")

let test_keys_reject_short () =
  Alcotest.check_raises "short k0" (Invalid_argument "Keys.of_raw: k0 must be at least 16 bytes")
    (fun () -> ignore (Crypto.Keys.of_raw ~k0:"x" ~k1:(String.make 32 'y')))

(* ---------------- QCheck properties ---------------- *)

let qcheck_ctr_roundtrip =
  QCheck.Test.make ~name:"CTR roundtrip on random plaintexts" ~count:100 QCheck.string (fun pt ->
      let g = Stdx.Prng.create 1L in
      let key = Crypto.Ctr.of_raw (String.make 16 'q') in
      Crypto.Ctr.decrypt key (Crypto.Ctr.encrypt_random key g pt) = pt)

let qcheck_aes_roundtrip =
  QCheck.Test.make ~name:"AES block roundtrip" ~count:100
    (QCheck.string_of_size (QCheck.Gen.return 16))
    (fun pt ->
      let key = Crypto.Aes128.expand "0123456789abcdef" in
      Crypto.Aes128.decrypt_string key (Crypto.Aes128.encrypt_string key pt) = pt)

let qcheck_hmac_distinct =
  QCheck.Test.make ~name:"HMAC distinguishes messages" ~count:200
    QCheck.(pair string string)
    (fun (a, b) -> a = b || Crypto.Hmac.mac ~key:"k" a <> Crypto.Hmac.mac ~key:"k" b)

let qcheck_prs_permutation =
  QCheck.Test.make ~name:"PRS output is always a permutation" ~count:100
    QCheck.(pair small_string (int_bound 200))
    (fun (key, n) ->
      let p = Crypto.Prs.permutation ~key ~context:"t" n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n Fun.id)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental_equivalence;
          Alcotest.test_case "feed_bytes slice" `Quick test_sha256_feed_bytes_slice;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "truncation / mac_u64" `Quick test_hmac_truncated_case5;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "hkdf",
        [
          Alcotest.test_case "rfc5869 case 1" `Quick test_hkdf_rfc5869_case1;
          Alcotest.test_case "rfc5869 case 3" `Quick test_hkdf_rfc5869_case3;
          Alcotest.test_case "domain separation" `Quick test_hkdf_domain_separation;
        ] );
      ( "aes128",
        [
          Alcotest.test_case "fips197" `Quick test_aes_fips197;
          Alcotest.test_case "sp800-38a block" `Quick test_aes_sp800_38a_block;
          Alcotest.test_case "key validation" `Quick test_aes_key_validation;
          Alcotest.test_case "random roundtrips" `Quick test_aes_roundtrip_random;
        ] );
      ( "ctr",
        [
          Alcotest.test_case "keystream structure" `Quick test_ctr_sp800_38a;
          Alcotest.test_case "roundtrip lengths" `Quick test_ctr_roundtrip_various_lengths;
          Alcotest.test_case "randomized" `Quick test_ctr_randomized;
          Alcotest.test_case "counter carry" `Quick test_ctr_counter_carry;
          Alcotest.test_case "rejects" `Quick test_ctr_rejects;
        ] );
      ( "aead",
        [
          Alcotest.test_case "roundtrip" `Quick test_aead_roundtrip;
          Alcotest.test_case "detects tampering" `Quick test_aead_detects_tampering;
          Alcotest.test_case "ctr malleability contrast" `Quick test_aead_vs_ctr_malleability;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "advances" `Quick test_drbg_stream_advances;
          Alcotest.test_case "float/int" `Quick test_drbg_float_int;
          Alcotest.test_case "exponential" `Quick test_drbg_exponential;
        ] );
      ( "prf",
        [
          Alcotest.test_case "encoding" `Quick test_prf_salt_message_encoding;
          Alcotest.test_case "key separation" `Quick test_prf_key_separation;
          Alcotest.test_case "tag spread" `Quick test_prf_tag_spread;
        ] );
      ( "siphash",
        [
          Alcotest.test_case "reference vectors" `Quick test_siphash_reference_vectors;
          Alcotest.test_case "key sensitivity" `Quick test_siphash_key_sensitivity;
          Alcotest.test_case "collision smoke" `Quick test_siphash_no_collisions_smoke;
        ] );
      ( "prs",
        [
          Alcotest.test_case "valid permutation" `Quick test_prs_permutation_valid;
          Alcotest.test_case "deterministic/keyed" `Quick test_prs_deterministic_and_keyed;
          Alcotest.test_case "shuffle elements" `Quick test_prs_shuffle_elements;
        ] );
      ( "keys",
        [
          Alcotest.test_case "derivation separation" `Quick test_keys_derivation_separation;
          Alcotest.test_case "export roundtrip" `Quick test_keys_export_roundtrip;
          Alcotest.test_case "reject short" `Quick test_keys_reject_short;
        ] );
      ( "properties",
        q [ qcheck_ctr_roundtrip; qcheck_aes_roundtrip; qcheck_hmac_distinct; qcheck_prs_permutation ]
      );
    ]
