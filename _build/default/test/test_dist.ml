(* Distribution library tests: closed-form identities, sampler
   goodness-of-fit, and the capped-Exponential facts the paper's
   security argument relies on. *)

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prng_source seed = Dist.Source.of_prng (Stdx.Prng.create seed)

(* ---------------- Exponential ---------------- *)

let test_exp_pdf_cdf () =
  check_float 1e-12 "cdf 0" 0.0 (Dist.Exponential.cdf ~rate:2.0 0.0);
  check_float 1e-12 "cdf negative" 0.0 (Dist.Exponential.cdf ~rate:2.0 (-1.0));
  check_float 1e-9 "cdf 1" (1.0 -. exp (-2.0)) (Dist.Exponential.cdf ~rate:2.0 1.0);
  check_float 1e-9 "ccdf complements" 1.0
    (Dist.Exponential.cdf ~rate:2.0 0.7 +. Dist.Exponential.ccdf ~rate:2.0 0.7);
  check_float 1e-9 "pdf" (2.0 *. exp (-2.0)) (Dist.Exponential.pdf ~rate:2.0 1.0);
  check_float 1e-12 "mean" 0.5 (Dist.Exponential.mean ~rate:2.0)

let test_exp_rejects_bad_rate () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Exponential: rate must be positive")
    (fun () -> ignore (Dist.Exponential.pdf ~rate:0.0 1.0))

let test_exp_sample_ks () =
  let u = prng_source 42L in
  let n = 5000 in
  let xs = Array.init n (fun _ -> Dist.Exponential.sample ~rate:3.0 u) in
  let d = Dist.Stat_tests.ks_statistic xs ~cdf:(Dist.Exponential.cdf ~rate:3.0) in
  check_bool "KS passes at 1%" true (d < Dist.Stat_tests.ks_critical ~n ~alpha:0.01)

let test_exp_sample_mean () =
  let u = prng_source 7L in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Dist.Exponential.sample ~rate:5.0 u
  done;
  check_bool "mean near 1/5" true (Float.abs ((!acc /. float_of_int n) -. 0.2) < 0.01)

(* ---------------- Capped Exponential (paper Fig. 2 facts) ---------------- *)

let test_capped_identical_below_tau () =
  let rate = 4.0 and tau = 0.5 in
  List.iter
    (fun x ->
      check_float 1e-12 "cdf equal below tau" (Dist.Exponential.cdf ~rate x)
        (Dist.Exponential.Capped.cdf ~rate ~tau x))
    [ 0.0; 0.1; 0.3; 0.49 ]

let test_capped_saturates_at_tau () =
  let rate = 4.0 and tau = 0.5 in
  check_float 1e-12 "cdf at tau" 1.0 (Dist.Exponential.Capped.cdf ~rate ~tau tau);
  check_float 1e-12 "ccdf at tau" 0.0 (Dist.Exponential.Capped.ccdf ~rate ~tau tau);
  check_float 1e-12 "ccdf above" 0.0 (Dist.Exponential.Capped.ccdf ~rate ~tau 2.0)

let test_capped_point_mass () =
  let rate = 10.0 and tau = 0.2 in
  check_float 1e-12 "lump = e^{-rate tau}" (exp (-2.0))
    (Dist.Exponential.Capped.point_mass_at_tau ~rate ~tau)

let test_capped_sample_never_exceeds_tau () =
  let u = prng_source 13L in
  for _ = 1 to 2000 do
    let x = Dist.Exponential.Capped.sample ~rate:1.0 ~tau:0.3 u in
    check_bool "bounded" true (x <= 0.3 +. 1e-12)
  done

let test_statistical_distance_formula () =
  (* Δ(Exp(λ), CappedExp(λ,τ)) = e^{-λτ}: paper §V-C. Verify the closed
     form and cross-check against a numeric integration. *)
  let rate = 8.0 and tau = 0.4 in
  check_float 1e-12 "closed form" (exp (-3.2))
    (Dist.Exponential.distance_to_capped ~rate ~tau);
  (* Numeric: total variation = mass of Exp beyond tau (all difference
     lives there). *)
  check_float 1e-9 "equals tail mass" (Dist.Exponential.ccdf ~rate tau)
    (Dist.Exponential.distance_to_capped ~rate ~tau)

let test_lambda_for_security () =
  let lambda = Dist.Exponential.lambda_for_security ~omega:0.01 ~tau:0.001 in
  check_bool "achieves target" true (exp (-.lambda *. 0.001) <= 0.01 +. 1e-9);
  Alcotest.check_raises "bad omega"
    (Invalid_argument "Exponential.lambda_for_security: omega must be in (0,1)") (fun () ->
      ignore (Dist.Exponential.lambda_for_security ~omega:1.5 ~tau:0.1))

(* ---------------- Poisson ---------------- *)

let test_poisson_pmf_normalizes () =
  let rate = 6.5 in
  let total = ref 0.0 in
  for k = 0 to 60 do
    total := !total +. Dist.Poisson.pmf ~rate k
  done;
  check_float 1e-9 "sums to 1" 1.0 !total

let test_poisson_pmf_known () =
  check_float 1e-12 "P(0) = e^-l" (exp (-3.0)) (Dist.Poisson.pmf ~rate:3.0 0);
  check_float 1e-12 "P(1)" (3.0 *. exp (-3.0)) (Dist.Poisson.pmf ~rate:3.0 1);
  check_float 1e-12 "negative k" 0.0 (Dist.Poisson.pmf ~rate:3.0 (-1))

let test_poisson_pmf_large_rate_stable () =
  (* Must not overflow/underflow at the λ values the paper uses. *)
  let p = Dist.Poisson.pmf ~rate:10_000.0 10_000 in
  check_bool "finite and positive" true (Float.is_finite p && p > 0.0);
  (* Mode of Poisson(n) is ~1/sqrt(2 pi n). *)
  check_bool "near normal approx" true (Float.abs (p -. 0.00399) < 0.0005)

let test_poisson_cdf_monotone () =
  let rate = 4.2 in
  let prev = ref (-1.0) in
  for k = 0 to 30 do
    let c = Dist.Poisson.cdf ~rate k in
    check_bool "monotone" true (c >= !prev);
    prev := c
  done;
  check_bool "approaches 1" true (Dist.Poisson.cdf ~rate 40 > 0.999999)

let test_poisson_sample_moments () =
  List.iter
    (fun rate ->
      let u = prng_source 21L in
      let n = 5000 in
      let xs = Array.init n (fun _ -> float_of_int (Dist.Poisson.sample ~rate u)) in
      let mean = Stdx.Stats.mean xs and var = Stdx.Stats.variance xs in
      check_bool
        (Printf.sprintf "mean ~ rate %.0f" rate)
        true
        (Float.abs (mean -. rate) < 5.0 *. sqrt (rate /. float_of_int n));
      check_bool
        (Printf.sprintf "variance ~ rate %.0f" rate)
        true
        (Float.abs (var -. rate) < 0.2 *. rate))
    [ 0.5; 5.0; 30.0; 100.0; 1000.0 ]

let test_poisson_process_sums_to_length () =
  let u = prng_source 33L in
  for _ = 1 to 100 do
    let slots = Dist.Poisson.process_on_interval ~rate:50.0 ~length:0.37 u in
    let total = Array.fold_left ( +. ) 0.0 slots in
    check_float 1e-9 "sums to length" 0.37 total;
    check_bool "non-empty" true (Array.length slots >= 1);
    Array.iter (fun w -> check_bool "positive slots" true (w > 0.0)) slots
  done

let test_poisson_process_count_distribution () =
  (* Number of slots - 1 = arrivals strictly inside the interval,
     Poisson(rate * length) distributed. Check the mean. *)
  let u = prng_source 44L in
  let rate = 200.0 and length = 0.1 in
  let n = 3000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Array.length (Dist.Poisson.process_on_interval ~rate ~length u) - 1
  done;
  let mean = float_of_int !acc /. float_of_int n in
  check_bool "mean arrivals ~ 20" true (Float.abs (mean -. 20.0) < 1.0)

let test_poisson_process_capped_case () =
  (* With tiny rate, most intervals see zero arrivals: single slot of
     exactly the interval length — the "capped" case of the proof. *)
  let u = prng_source 55L in
  let singles = ref 0 in
  for _ = 1 to 1000 do
    let slots = Dist.Poisson.process_on_interval ~rate:0.1 ~length:0.5 u in
    if Array.length slots = 1 then begin
      incr singles;
      check_float 1e-9 "full mass" 0.5 slots.(0)
    end
  done;
  (* P(no arrival) = e^{-0.05} ~ 0.95 *)
  check_bool "mostly single-slot" true (!singles > 900)

(* ---------------- Zipf ---------------- *)

let test_zipf_pmf () =
  let z = Dist.Zipf.create ~n:3 ~s:1.0 in
  let h = 1.0 +. 0.5 +. (1.0 /. 3.0) in
  check_float 1e-9 "rank 1" (1.0 /. h) (Dist.Zipf.pmf z 1);
  check_float 1e-9 "rank 3" (1.0 /. 3.0 /. h) (Dist.Zipf.pmf z 3);
  check_float 1e-12 "out of range" 0.0 (Dist.Zipf.pmf z 4);
  check_float 1e-12 "rank 0" 0.0 (Dist.Zipf.pmf z 0)

let test_zipf_uniform_when_s0 () =
  let z = Dist.Zipf.create ~n:4 ~s:0.0 in
  for k = 1 to 4 do
    check_float 1e-9 "uniform" 0.25 (Dist.Zipf.pmf z k)
  done

let test_zipf_weights_sum () =
  let z = Dist.Zipf.create ~n:100 ~s:1.3 in
  check_float 1e-9 "normalized" 1.0 (Array.fold_left ( +. ) 0.0 (Dist.Zipf.weights z))

let test_zipf_sample_frequencies () =
  let z = Dist.Zipf.create ~n:10 ~s:1.0 in
  let g = Stdx.Prng.create 3L in
  let n = 50000 in
  let counts = Array.make 11 0 in
  for _ = 1 to n do
    let k = Dist.Zipf.sample z g in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 1 to 10 do
    let freq = float_of_int counts.(k) /. float_of_int n in
    check_bool (Printf.sprintf "rank %d" k) true (Float.abs (freq -. Dist.Zipf.pmf z k) < 0.01)
  done

(* ---------------- Empirical ---------------- *)

let test_empirical_of_counts () =
  let d = Dist.Empirical.of_counts [ ("a", 3); ("b", 1); ("a", 1) ] in
  check_float 1e-12 "a merged" 0.8 (Dist.Empirical.prob d "a");
  check_float 1e-12 "b" 0.2 (Dist.Empirical.prob d "b");
  check_float 1e-12 "missing" 0.0 (Dist.Empirical.prob d "zzz");
  check_int "counts" 4 (Dist.Empirical.count d "a");
  check_int "total" 5 (Dist.Empirical.total_count d);
  check_int "support size" 2 (Dist.Empirical.support_size d)

let test_empirical_support_order () =
  let d = Dist.Empirical.of_counts [ ("low", 1); ("hi", 10); ("mid", 5); ("mid2", 5) ] in
  let s = Dist.Empirical.support d in
  Alcotest.(check (array string)) "descending, ties lexicographic" [| "hi"; "mid"; "mid2"; "low" |] s;
  check_float 1e-12 "min_prob" (1.0 /. 21.0) (Dist.Empirical.min_prob d);
  check_float 1e-12 "max_prob" (10.0 /. 21.0) (Dist.Empirical.max_prob d)

let test_empirical_entropy () =
  let d = Dist.Empirical.of_counts [ ("a", 1); ("b", 1) ] in
  check_float 1e-9 "fair coin entropy" 1.0 (Dist.Empirical.entropy_bits d);
  check_float 1e-9 "min-entropy" 1.0 (Dist.Empirical.min_entropy_bits d);
  let skew = Dist.Empirical.of_counts [ ("a", 3); ("b", 1) ] in
  check_bool "skew lowers entropy" true (Dist.Empirical.entropy_bits skew < 1.0)

let test_empirical_of_values_sampler () =
  let g = Stdx.Prng.create 71L in
  let d = Dist.Empirical.of_counts [ ("x", 7); ("y", 3) ] in
  let n = 20000 in
  let x = ref 0 in
  for _ = 1 to n do
    if Dist.Empirical.sampler d g = "x" then incr x
  done;
  check_bool "sampler matches probs" true
    (Float.abs ((float_of_int !x /. float_of_int n) -. 0.7) < 0.02)

let test_empirical_statistical_distance () =
  let a = Dist.Empirical.of_counts [ ("a", 1); ("b", 1) ] in
  let b = Dist.Empirical.of_counts [ ("b", 1); ("c", 1) ] in
  check_float 1e-12 "half-overlap" 0.5 (Dist.Empirical.statistical_distance a b);
  check_float 1e-12 "self" 0.0 (Dist.Empirical.statistical_distance a a)

let test_empirical_of_probabilities () =
  let d = Dist.Empirical.of_probabilities [ ("a", 3.0); ("b", 1.0) ] in
  check_float 1e-12 "normalized" 0.75 (Dist.Empirical.prob d "a");
  Alcotest.check_raises "rejects non-positive"
    (Invalid_argument "Empirical.of_probabilities: weights must be positive") (fun () ->
      ignore (Dist.Empirical.of_probabilities [ ("a", 0.0) ]))

(* ---------------- Stat tests ---------------- *)

let test_ks_detects_mismatch () =
  let u = prng_source 99L in
  let n = 2000 in
  let uniform = Array.init n (fun _ -> u ()) in
  let d_ok = Dist.Stat_tests.ks_statistic uniform ~cdf:(fun x -> Float.max 0.0 (Float.min 1.0 x)) in
  check_bool "uniform passes" true (d_ok < Dist.Stat_tests.ks_critical ~n ~alpha:0.01);
  let d_bad = Dist.Stat_tests.ks_statistic uniform ~cdf:(Dist.Exponential.cdf ~rate:1.0) in
  check_bool "exponential CDF fails" true (d_bad > Dist.Stat_tests.ks_critical ~n ~alpha:0.001)

let test_ks_two_sample () =
  let u = prng_source 17L in
  let a = Array.init 1500 (fun _ -> u ()) in
  let b = Array.init 1500 (fun _ -> u ()) in
  check_bool "same dist small stat" true (Dist.Stat_tests.ks_two_sample a b < 0.06);
  let c = Array.map (fun x -> x *. 0.5) b in
  check_bool "different dist large stat" true (Dist.Stat_tests.ks_two_sample a c > 0.2)

let test_chi_square () =
  let x = Dist.Stat_tests.chi_square ~observed:[| 10; 10 |] ~expected:[| 10.0; 10.0 |] in
  check_float 1e-12 "perfect fit" 0.0 x;
  let y = Dist.Stat_tests.chi_square ~observed:[| 20; 0 |] ~expected:[| 10.0; 10.0 |] in
  check_float 1e-12 "bad fit" 20.0 y;
  check_bool "critical value sane" true
    (Dist.Stat_tests.chi_square_critical_df ~df:10 > 20.0
    && Dist.Stat_tests.chi_square_critical_df ~df:10 < 30.0)

(* ---------------- QCheck ---------------- *)

let qcheck_process_sums =
  QCheck.Test.make ~name:"poisson process slots always sum to interval" ~count:100
    QCheck.(pair (float_range 1.0 500.0) (float_range 0.001 1.0))
    (fun (rate, length) ->
      let u = prng_source 5L in
      let slots = Dist.Poisson.process_on_interval ~rate ~length u in
      Float.abs (Array.fold_left ( +. ) 0.0 slots -. length) < 1e-9)

let qcheck_capped_never_exceeds =
  QCheck.Test.make ~name:"capped exponential sample <= tau" ~count:200
    QCheck.(pair (float_range 0.1 100.0) (float_range 0.01 1.0))
    (fun (rate, tau) ->
      let u = prng_source 6L in
      Dist.Exponential.Capped.sample ~rate ~tau u <= tau +. 1e-12)

let qcheck_empirical_probs_sum =
  QCheck.Test.make ~name:"empirical probabilities sum to 1" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (pair printable_string (int_range 1 50)))
    (fun pairs ->
      let d = Dist.Empirical.of_counts pairs in
      let total =
        Array.fold_left (fun acc v -> acc +. Dist.Empirical.prob d v) 0.0 (Dist.Empirical.support d)
      in
      Float.abs (total -. 1.0) < 1e-9)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "dist"
    [
      ( "exponential",
        [
          Alcotest.test_case "pdf/cdf" `Quick test_exp_pdf_cdf;
          Alcotest.test_case "rejects bad rate" `Quick test_exp_rejects_bad_rate;
          Alcotest.test_case "sampler KS" `Quick test_exp_sample_ks;
          Alcotest.test_case "sampler mean" `Quick test_exp_sample_mean;
        ] );
      ( "capped",
        [
          Alcotest.test_case "identical below tau" `Quick test_capped_identical_below_tau;
          Alcotest.test_case "saturates at tau" `Quick test_capped_saturates_at_tau;
          Alcotest.test_case "point mass" `Quick test_capped_point_mass;
          Alcotest.test_case "sample bounded" `Quick test_capped_sample_never_exceeds_tau;
          Alcotest.test_case "statistical distance" `Quick test_statistical_distance_formula;
          Alcotest.test_case "lambda for security" `Quick test_lambda_for_security;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "pmf normalizes" `Quick test_poisson_pmf_normalizes;
          Alcotest.test_case "pmf known" `Quick test_poisson_pmf_known;
          Alcotest.test_case "pmf large rate" `Quick test_poisson_pmf_large_rate_stable;
          Alcotest.test_case "cdf monotone" `Quick test_poisson_cdf_monotone;
          Alcotest.test_case "sample moments" `Quick test_poisson_sample_moments;
          Alcotest.test_case "process sums" `Quick test_poisson_process_sums_to_length;
          Alcotest.test_case "process count" `Quick test_poisson_process_count_distribution;
          Alcotest.test_case "process capped case" `Quick test_poisson_process_capped_case;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf" `Quick test_zipf_pmf;
          Alcotest.test_case "s=0 uniform" `Quick test_zipf_uniform_when_s0;
          Alcotest.test_case "weights sum" `Quick test_zipf_weights_sum;
          Alcotest.test_case "sample frequencies" `Quick test_zipf_sample_frequencies;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "of_counts" `Quick test_empirical_of_counts;
          Alcotest.test_case "support order" `Quick test_empirical_support_order;
          Alcotest.test_case "entropy" `Quick test_empirical_entropy;
          Alcotest.test_case "sampler" `Quick test_empirical_of_values_sampler;
          Alcotest.test_case "statistical distance" `Quick test_empirical_statistical_distance;
          Alcotest.test_case "of_probabilities" `Quick test_empirical_of_probabilities;
        ] );
      ( "stat_tests",
        [
          Alcotest.test_case "ks one-sample" `Quick test_ks_detects_mismatch;
          Alcotest.test_case "ks two-sample" `Quick test_ks_two_sample;
          Alcotest.test_case "chi-square" `Quick test_chi_square;
        ] );
      ( "properties",
        q [ qcheck_process_sums; qcheck_capped_never_exceeds; qcheck_empirical_probs_sum ] );
    ]
