test/test_sparta.ml: Alcotest Array Dist Hashtbl Int64 List Seq Sparta Sqldb String
