test/test_sqldb.mli:
