test/test_crypto.ml: Alcotest Array Bytes Char Crypto Float Fun Hashtbl List Printf QCheck QCheck_alcotest Result Stdx String
