test/test_integration.ml: Alcotest Array Attacks Crypto Dist Lazy List Printf Sparta Sqldb Stdx Wre
