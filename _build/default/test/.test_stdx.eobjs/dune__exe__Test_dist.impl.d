test/test_dist.ml: Alcotest Array Dist Float Gen List Printf QCheck QCheck_alcotest Stdx
