test/test_wre.ml: Alcotest Array Crypto Dist Float Gen Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Result Sqldb Stdx String Wre
