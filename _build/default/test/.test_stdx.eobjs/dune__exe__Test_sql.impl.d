test/test_sql.ml: Alcotest Array Crypto Database Executor Int64 Lazy List Option Predicate Printf QCheck QCheck_alcotest Result Schema Sql Sqldb String Table Value Wre
