test/test_wre.mli:
