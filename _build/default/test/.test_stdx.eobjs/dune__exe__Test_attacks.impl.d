test/test_attacks.ml: Alcotest Array Attacks Crypto Dist Float Fun Gen Hashtbl Int64 List Printf QCheck QCheck_alcotest Sqldb Stdx String Wre
