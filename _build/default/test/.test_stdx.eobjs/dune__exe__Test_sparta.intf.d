test/test_sparta.mli:
