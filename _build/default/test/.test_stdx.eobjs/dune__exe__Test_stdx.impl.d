test/test_stdx.ml: Alcotest Array Bytes Float Fun Gen List Printf QCheck QCheck_alcotest Stdx String
