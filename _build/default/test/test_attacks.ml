(* Attack-library tests: the Hungarian solver against brute force, the
   frequency attacks' expected efficacy per scheme, the subset-sum
   attack's construction, and the IND-CUDA harness. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'a') ~k1:(String.make 32 'b')

(* A skewed plaintext column. *)
let make_snapshot ?(n = 8000) ?(seed = 17L) kind =
  let g = Stdx.Prng.create seed in
  let zipf = Dist.Zipf.create ~n:50 ~s:1.0 in
  let plaintexts = Array.init n (fun _ -> Printf.sprintf "v%02d" (Dist.Zipf.sample zipf g)) in
  let dist = Dist.Empirical.of_values (Array.to_seq plaintexts) in
  let enc = Wre.Column_enc.create ~master ~column:"c" ~kind ~dist () in
  Attacks.Snapshot.of_column enc g ~plaintexts

(* ---------------- Snapshot ---------------- *)

let test_snapshot_counts () =
  let snap = make_snapshot Wre.Scheme.Det in
  check_int "records" 8000 (Attacks.Snapshot.n_records snap);
  check_int "det tags = distinct values" (Dist.Empirical.support_size snap.aux)
    (Attacks.Snapshot.n_distinct_tags snap);
  let freqs = Attacks.Snapshot.tag_frequencies snap in
  check_float "frequencies sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 freqs);
  (* observations sorted descending *)
  let sorted = Array.copy freqs in
  Array.sort (fun a b -> compare b a) sorted;
  Alcotest.(check (array (float 1e-12))) "descending" sorted freqs

let test_snapshot_of_table_matches () =
  (* Snapshot built from an encrypted table equals one built inline. *)
  let schema =
    Sqldb.Schema.create
      [ { name = "id"; ty = TInt; nullable = false }; { name = "name"; ty = TText; nullable = false } ]
  in
  let g = Stdx.Prng.create 3L in
  let values = Array.init 500 (fun _ -> if Stdx.Prng.bool g then "x" else "y") in
  let rows =
    Array.to_list
      (Array.mapi (fun i v -> [| Sqldb.Value.Int (Int64.of_int i); Sqldb.Value.Text v |]) values)
  in
  let db = Sqldb.Database.create () in
  let dist_of = Wre.Dist_est.of_rows ~schema ~columns:[ "name" ] (List.to_seq rows) in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"t" ~plain_schema:schema ~key_column:"id"
      ~encrypted_columns:[ "name" ] ~kind:Wre.Scheme.Det ~master ~dist_of ~seed:4L ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
  let snap = Attacks.Snapshot.of_table edb ~column:"name" ~plaintexts:values in
  check_int "records" 500 (Attacks.Snapshot.n_records snap);
  check_int "det: two tags" 2 (Attacks.Snapshot.n_distinct_tags snap)

(* ---------------- Metrics ---------------- *)

let test_metrics_perfect_and_empty () =
  let snap = make_snapshot Wre.Scheme.Det in
  (* Build the perfect oracle from ground truth. *)
  let oracle = Hashtbl.create 64 in
  Array.iter (fun (tag, m) -> Hashtbl.replace oracle tag m) snap.records;
  let perfect = Attacks.Metrics.score snap ~guess:(Hashtbl.find_opt oracle) in
  check_float "perfect records" 1.0 perfect.record_recovery;
  check_float "perfect values" 1.0 perfect.value_recovery;
  let nothing = Attacks.Metrics.score snap ~guess:(fun _ -> None) in
  check_float "empty records" 0.0 nothing.record_recovery;
  check_float "empty values" 0.0 nothing.value_recovery;
  check_bool "baseline is mode prob" true (nothing.baseline > 0.0 && nothing.baseline < 1.0)

let test_metrics_value_majority_rule () =
  (* Value recovery requires a strict majority of that value's records
     to decode correctly. *)
  let records = Array.concat [ Array.make 3 (1L, "a"); Array.make 2 (2L, "a"); Array.make 5 (3L, "b") ] in
  let snap =
    {
      Attacks.Snapshot.observations = [| (3L, 5); (1L, 3); (2L, 2) |];
      records;
      aux = Dist.Empirical.of_counts [ ("a", 5); ("b", 5) ];
    }
  in
  (* Guess maps tag 1 -> a (3 of a's 5 records correct: majority),
     tag 3 -> wrong. *)
  let guess = function 1L -> Some "a" | 3L -> Some "a" | _ -> None in
  let s = Attacks.Metrics.score snap ~guess in
  check_float "records 3/10" 0.3 s.record_recovery;
  check_float "values: a recovered, b not" 0.5 s.value_recovery

(* ---------------- Hungarian ---------------- *)

let test_hungarian_known () =
  let cost = [| [| 4.0; 1.0; 3.0 |]; [| 2.0; 0.0; 5.0 |]; [| 3.0; 2.0; 2.0 |] |] in
  let a = Attacks.Hungarian.solve cost in
  check_float "optimal cost" 5.0 (Attacks.Hungarian.total_cost cost a);
  (* Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2). *)
  Alcotest.(check (array int)) "assignment" [| 1; 0; 2 |] a

let test_hungarian_rectangular () =
  let cost = [| [| 10.0; 1.0; 10.0; 10.0 |]; [| 1.0; 10.0; 10.0; 10.0 |] |] in
  let a = Attacks.Hungarian.solve cost in
  Alcotest.(check (array int)) "picks cheap columns" [| 1; 0 |] a

let test_hungarian_rejects () =
  check_bool "empty ok" true (Attacks.Hungarian.solve [||] = [||]);
  let raised =
    try
      ignore (Attacks.Hungarian.solve [| [| 1.0 |]; [| 2.0 |] |]);
      false
    with Invalid_argument _ -> true
  in
  check_bool "rows > cols rejected" true raised

let brute_force_best cost =
  let n = Array.length cost in
  let cols = Array.init n Fun.id in
  let best = ref infinity in
  let rec permute k =
    if k = n then begin
      let c = ref 0.0 in
      for i = 0 to n - 1 do
        c := !c +. cost.(i).(cols.(i))
      done;
      if !c < !best then best := !c
    end
    else
      for i = k to n - 1 do
        let t = cols.(k) in
        cols.(k) <- cols.(i);
        cols.(i) <- t;
        permute (k + 1);
        let t = cols.(k) in
        cols.(k) <- cols.(i);
        cols.(i) <- t
      done
  in
  permute 0;
  !best

let qcheck_hungarian_optimal =
  QCheck.Test.make ~name:"hungarian matches brute force (n<=5)" ~count:50
    QCheck.(list_of_size (Gen.return 25) (float_range 0.0 10.0))
    (fun flat ->
      let cost = Array.init 5 (fun i -> Array.of_list (List.filteri (fun j _ -> j / 5 = i) flat)) in
      let a = Attacks.Hungarian.solve cost in
      Float.abs (Attacks.Hungarian.total_cost cost a -. brute_force_best cost) < 1e-9)

(* ---------------- Frequency attacks ---------------- *)

let test_rank_matching_breaks_det () =
  let snap = make_snapshot Wre.Scheme.Det in
  let s = Attacks.Metrics.score snap ~guess:(Attacks.Frequency.rank_matching snap) in
  check_bool "high recovery vs det" true (s.record_recovery > 0.5);
  check_bool "beats baseline" true (s.record_recovery > s.baseline)

let test_attacks_fail_against_poisson () =
  let snap = make_snapshot (Wre.Scheme.Poisson 2000.0) in
  List.iter
    (fun (name, guess) ->
      let s = Attacks.Metrics.score snap ~guess in
      check_bool (name ^ " below 1.5x baseline") true (s.record_recovery < 1.5 *. s.baseline))
    [
      ("rank", Attacks.Frequency.rank_matching snap);
      ("greedy", Attacks.Frequency.greedy_likelihood snap ~kind:(Wre.Scheme.Poisson 2000.0));
    ]

let test_attacks_fail_against_bucketized () =
  let kind = Wre.Scheme.Bucketized 2000.0 in
  let snap = make_snapshot kind in
  let s = Attacks.Metrics.score snap ~guess:(Attacks.Frequency.greedy_likelihood snap ~kind) in
  check_bool "below 1.5x baseline" true (s.record_recovery < 1.5 *. s.baseline)

let test_greedy_beats_rank_on_fixed () =
  (* Fixed salts split every plaintext into N uniform shares; the
     scheme-aware greedy attack exploits that structure, plain rank
     matching cannot. *)
  let kind = Wre.Scheme.Fixed 8 in
  let snap = make_snapshot kind in
  let rank = Attacks.Metrics.score snap ~guess:(Attacks.Frequency.rank_matching snap) in
  let greedy = Attacks.Metrics.score snap ~guess:(Attacks.Frequency.greedy_likelihood snap ~kind) in
  check_bool "greedy stronger" true (greedy.record_recovery > rank.record_recovery);
  check_bool "greedy beats baseline" true (greedy.record_recovery > greedy.baseline)

let test_l1_matching_breaks_det () =
  let snap = make_snapshot ~n:4000 Wre.Scheme.Det in
  let s =
    Attacks.Metrics.score snap ~guess:(Attacks.Frequency.l1_matching snap ~kind:Wre.Scheme.Det)
  in
  check_bool "l1 high recovery vs det" true (s.record_recovery > 0.5)

let test_l1_matching_max_tags_cap () =
  let snap = make_snapshot ~n:4000 (Wre.Scheme.Fixed 4) in
  (* Cap far below the tag count: must still terminate and produce a
     partial mapping. *)
  let guess = Attacks.Frequency.l1_matching ~max_tags:20 snap ~kind:(Wre.Scheme.Fixed 4) in
  let s = Attacks.Metrics.score snap ~guess in
  check_bool "bounded recovery" true (s.record_recovery >= 0.0 && s.record_recovery <= 1.0)

(* ---------------- Subset sum ---------------- *)

let test_subset_sum_constructed () =
  (* Hand-built snapshot where the target's count decomposes uniquely:
     counts 100 (target, two tags of 60+40) among decoys 7, 9, 11. *)
  let records =
    Array.concat
      [
        Array.make 60 (1L, "target");
        Array.make 40 (2L, "target");
        Array.make 7 (3L, "d1");
        Array.make 9 (4L, "d2");
        Array.make 11 (5L, "d3");
      ]
  in
  let snap =
    {
      Attacks.Snapshot.observations =
        [| (1L, 60); (2L, 40); (5L, 11); (4L, 9); (3L, 7) |];
      records;
      aux = Dist.Empirical.of_values (Array.to_seq (Array.map snd records));
    }
  in
  let r = Attacks.Subset_sum.attack snap ~target:"target" () in
  check_bool "found" true r.found;
  check_int "sum" 100 r.achieved_sum;
  check_float "perfect precision" 1.0 r.tag_precision;
  check_float "perfect recall" 1.0 r.tag_recall

let test_subset_sum_ambiguous_poisson () =
  (* Against real Poisson WRE the attack finds *a* subset but not a
     reliable one (paper §V-C limitation). *)
  let snap = make_snapshot ~n:6000 (Wre.Scheme.Poisson 400.0) in
  let target = (Dist.Empirical.support snap.aux).(0) in
  let r = Attacks.Subset_sum.attack snap ~target ~tolerance:3 () in
  check_bool "a subset exists" true r.found;
  check_bool "but imperfect" true (r.tag_precision < 0.999)

let test_subset_sum_tolerance () =
  let records = Array.concat [ Array.make 10 (1L, "t"); Array.make 5 (2L, "o") ] in
  let snap =
    {
      Attacks.Snapshot.observations = [| (1L, 10); (2L, 5) |];
      records;
      aux = Dist.Empirical.of_counts [ ("t", 11); ("o", 4) ];
    }
  in
  (* Expected count for t = 11 but only 10+5 available: exact fails,
     tolerance 1 matches the 10-subset. *)
  let exact = Attacks.Subset_sum.attack snap ~target:"t" () in
  check_bool "exact fails" false exact.found;
  let tol = Attacks.Subset_sum.attack snap ~target:"t" ~tolerance:1 () in
  check_bool "tolerant succeeds" true tol.found;
  check_int "picks 10" 10 tol.achieved_sum

(* ---------------- Correlation ---------------- *)

(* Two-column world: b determines a (like zip determines city). *)
let correlated_pairs n seed =
  let g = Stdx.Prng.create seed in
  Array.init n (fun _ ->
      let b = Stdx.Prng.int g 12 in
      (Printf.sprintf "city%d" (b / 3), Printf.sprintf "zip%02d" b))

let independent_pairs n seed =
  let g = Stdx.Prng.create seed in
  Array.init n (fun _ ->
      (Printf.sprintf "a%d" (Stdx.Prng.int g 4), Printf.sprintf "b%d" (Stdx.Prng.int g 4)))

let make_view kind pairs =
  let g = Stdx.Prng.create 19L in
  let dist_a = Dist.Empirical.of_values (Array.to_seq (Array.map fst pairs)) in
  let dist_b = Dist.Empirical.of_values (Array.to_seq (Array.map snd pairs)) in
  let enc_a = Wre.Column_enc.create ~master ~column:"ca" ~kind ~dist:dist_a () in
  let enc_b = Wre.Column_enc.create ~master ~column:"cb" ~kind ~dist:dist_b () in
  Attacks.Correlation.of_columns enc_a enc_b g ~pairs

let test_correlation_mi () =
  let view = make_view Wre.Scheme.Det (correlated_pairs 6000 1L) in
  let mi_plain = Attacks.Correlation.mutual_information_bits view `Plain in
  let mi_tags = Attacks.Correlation.mutual_information_bits view `Tags in
  check_bool "plain MI positive" true (mi_plain > 0.5);
  (* Under DET tags are a bijection of plaintexts: identical MI. *)
  check_bool "det preserves MI exactly" true (Float.abs (mi_plain -. mi_tags) < 1e-9);
  let indep = make_view Wre.Scheme.Det (independent_pairs 6000 2L) in
  check_bool "independent columns near-zero MI" true
    (Attacks.Correlation.mutual_information_bits indep `Plain < 0.05)

let test_correlation_linkage_breaks_poisson () =
  (* The headline: single-column-secure Poisson still loses the
     correlated column to the linkage attack... *)
  let view = make_view (Wre.Scheme.Poisson 500.0) (correlated_pairs 8000 3L) in
  let r = Attacks.Correlation.linkage_attack view in
  check_bool "components ~ number of cities" true (r.components >= 3 && r.components <= 6);
  check_bool "recovery far above baseline" true
    (r.score.record_recovery > 2.0 *. r.score.baseline)

let test_correlation_linkage_blunted_by_bucketization () =
  (* ...while bucketized tag sharing merges the components. *)
  let view = make_view (Wre.Scheme.Bucketized 500.0) (correlated_pairs 8000 4L) in
  let r = Attacks.Correlation.linkage_attack view in
  check_bool "few components" true (r.components <= 2);
  check_bool "recovery at baseline" true
    (r.score.record_recovery <= (1.2 *. r.score.baseline) +. 0.02)

let test_correlation_linkage_needs_correlation () =
  (* On independent columns the graph collapses to one component and
     the attack degrades to guessing the mode. *)
  let view = make_view (Wre.Scheme.Poisson 500.0) (independent_pairs 8000 5L) in
  let r = Attacks.Correlation.linkage_attack view in
  check_bool "single component" true (r.components <= 2);
  check_bool "no better than baseline" true
    (r.score.record_recovery <= (1.2 *. r.score.baseline) +. 0.02)

(* ---------------- IND-CUDA ---------------- *)

let test_ind_cuda_det_distinguishable () =
  let o =
    Attacks.Ind_cuda.play ~kind:Wre.Scheme.Det Attacks.Ind_cuda.capped_exponential ~n:100
      ~trials:30 ~seed:1L
  in
  check_bool "det fully distinguishable" true (o.advantage > 0.9)

let test_ind_cuda_poisson_low_lambda_broken () =
  let o =
    Attacks.Ind_cuda.play ~kind:(Wre.Scheme.Poisson 5.0) Attacks.Ind_cuda.capped_exponential
      ~n:300 ~trials:30 ~seed:2L
  in
  check_bool "low lambda broken" true (o.advantage > 0.8)

let test_ind_cuda_poisson_high_lambda_secure () =
  let o =
    Attacks.Ind_cuda.play ~kind:(Wre.Scheme.Poisson 50_000.0) Attacks.Ind_cuda.capped_exponential
      ~n:60 ~trials:60 ~seed:3L
  in
  check_bool "high lambda near coin flip" true (o.advantage < 0.35)

let test_ind_cuda_bucketized_secure_even_low_lambda () =
  let o =
    Attacks.Ind_cuda.play ~kind:(Wre.Scheme.Bucketized 20.0) Attacks.Ind_cuda.capped_exponential
      ~n:300 ~trials:60 ~seed:4L
  in
  check_bool "bucketized near coin flip" true (o.advantage < 0.35)

let test_ind_cuda_max_count_adversary () =
  let o =
    Attacks.Ind_cuda.play ~kind:Wre.Scheme.Det Attacks.Ind_cuda.max_count ~n:100 ~trials:30
      ~seed:5L
  in
  check_bool "max-count also breaks det" true (o.advantage > 0.9);
  check_int "trials recorded" 30 o.trials;
  check_bool "rate consistent" true
    (Float.abs (o.success_rate -. (float_of_int o.successes /. 30.0)) < 1e-9)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "attacks"
    [
      ( "snapshot",
        [
          Alcotest.test_case "counts" `Quick test_snapshot_counts;
          Alcotest.test_case "of_table" `Quick test_snapshot_of_table_matches;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "perfect/empty" `Quick test_metrics_perfect_and_empty;
          Alcotest.test_case "value majority rule" `Quick test_metrics_value_majority_rule;
        ] );
      ( "hungarian",
        [
          Alcotest.test_case "known matrix" `Quick test_hungarian_known;
          Alcotest.test_case "rectangular" `Quick test_hungarian_rectangular;
          Alcotest.test_case "rejects" `Quick test_hungarian_rejects;
        ] );
      ( "frequency",
        [
          Alcotest.test_case "rank breaks det" `Quick test_rank_matching_breaks_det;
          Alcotest.test_case "fails vs poisson" `Quick test_attacks_fail_against_poisson;
          Alcotest.test_case "fails vs bucketized" `Quick test_attacks_fail_against_bucketized;
          Alcotest.test_case "greedy beats rank on fixed" `Quick test_greedy_beats_rank_on_fixed;
          Alcotest.test_case "l1 breaks det" `Quick test_l1_matching_breaks_det;
          Alcotest.test_case "l1 max_tags cap" `Quick test_l1_matching_max_tags_cap;
        ] );
      ( "subset_sum",
        [
          Alcotest.test_case "constructed exact" `Quick test_subset_sum_constructed;
          Alcotest.test_case "ambiguous vs poisson" `Quick test_subset_sum_ambiguous_poisson;
          Alcotest.test_case "tolerance" `Quick test_subset_sum_tolerance;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "mutual information" `Quick test_correlation_mi;
          Alcotest.test_case "linkage breaks poisson" `Quick
            test_correlation_linkage_breaks_poisson;
          Alcotest.test_case "bucketization blunts linkage" `Quick
            test_correlation_linkage_blunted_by_bucketization;
          Alcotest.test_case "needs correlation" `Quick test_correlation_linkage_needs_correlation;
        ] );
      ( "ind_cuda",
        [
          Alcotest.test_case "det distinguishable" `Quick test_ind_cuda_det_distinguishable;
          Alcotest.test_case "poisson low lambda" `Quick test_ind_cuda_poisson_low_lambda_broken;
          Alcotest.test_case "poisson high lambda" `Slow test_ind_cuda_poisson_high_lambda_secure;
          Alcotest.test_case "bucketized secure" `Quick test_ind_cuda_bucketized_secure_even_low_lambda;
          Alcotest.test_case "max-count adversary" `Quick test_ind_cuda_max_count_adversary;
        ] );
      ("properties", q [ qcheck_hungarian_optimal ]);
    ]
