(** A small SQL front-end for the engine.

    Covers the fragment the paper's evaluation exercises (and that the
    WRE proxy must rewrite): single-table SELECT with equality / IN /
    BETWEEN predicates combined with AND/OR/NOT, column projection or
    [*], LIMIT; INSERT INTO … VALUES; CREATE TABLE. Hand-written lexer
    and recursive-descent parser — no external parser generators in the
    sealed environment.

    Identifiers are case-sensitive; keywords are not. String literals
    use single quotes with [''] escaping; blob literals are [X'hex']. *)

type select = {
  projection : [ `Star | `Columns of string list ];
  table : string;
  where : Predicate.t;
  limit : int option;
}

type statement =
  | Select of select
  | Insert of { table : string; values : Value.t list }
  | Create_table of { table : string; columns : Schema.column list }
  | Delete of { table : string; where : Predicate.t }
  | Update of { table : string; assignments : (string * Value.t) list; where : Predicate.t }

val parse : string -> (statement, string) result
(** Parse one statement. The error message includes the offending
    position. *)

val parse_predicate : string -> (Predicate.t, string) result
(** Parse a bare WHERE-clause expression (used by tests and the proxy). *)

type query_result = {
  columns : string list;  (** names of the projected columns *)
  rows : Value.t array list;
  affected : int;  (** rows inserted / deleted / updated *)
  exec : Executor.result option;  (** None for non-SELECT statements *)
}

val execute : Database.t -> string -> (query_result, string) result
(** Parse and run a statement against the database. SELECT projects and
    applies LIMIT client-side of the executor; INSERT/CREATE return an
    empty row set. *)
