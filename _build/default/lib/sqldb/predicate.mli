(** WHERE-clause predicates.

    The fragment the WRE client emits: equality, OR-of-equalities over
    one column ([In] — the compiled form of a multi-tag search query,
    paper Fig. 1's [T_t = F(s_1‖m) ∨ …]), plus conjunction, negation
    and ranges for general use. *)

type t =
  | True
  | Eq of string * Value.t
  | In of string * Value.t list
  | Range of string * Value.t option * Value.t option  (** inclusive bounds *)
  | And of t list
  | Or of t list
  | Not of t

val compile : Schema.t -> t -> (Value.t array -> bool)
(** Resolve column names once; the returned closure evaluates rows.
    Raises [Not_found] for unknown columns. *)

val columns : t -> string list
(** Column names referenced, without duplicates. *)

val pp : Format.formatter -> t -> unit
(** SQL-ish rendering for logs and test output. *)
