(** SQL values.

    The engine is dynamically typed at the cell level, like a real DBMS
    executor: a cell is [Null], a 64-bit integer, a float, text, or an
    opaque blob (used for AES ciphertexts). *)

type t =
  | Null
  | Int of int64
  | Real of float
  | Text of string
  | Blob of string

type ty = TInt | TReal | TText | TBlob

val ty_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string
val compare : t -> t -> int
(** Total order: Null < Int < Real < Text < Blob, natural order within
    a type. Ints and Reals do not compare numerically across types —
    columns are homogeneous, as enforced by {!Schema}. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val heap_bytes : t -> int
(** Bytes this value occupies in a heap tuple, following PostgreSQL's
    layout rules: Int/Real 8; Text/Blob are varlena, 1-byte header when
    total < 127 else 4-byte header; Null occupies no data bytes (it is
    carried by the tuple's null bitmap). *)

val index_key_bytes : t -> int
(** Bytes of the key portion of a B-tree index entry for this value
    (datum size MAXALIGN'd to 8). *)
