lib/sqldb/executor.mli: Pager Predicate Table Value
