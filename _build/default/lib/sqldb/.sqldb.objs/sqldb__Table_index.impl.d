lib/sqldb/table_index.ml: Btree_index Hash_index
