lib/sqldb/predicate.ml: Array Format Hashtbl List Schema Value
