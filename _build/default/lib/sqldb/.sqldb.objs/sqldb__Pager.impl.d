lib/sqldb/pager.ml: Hashtbl
