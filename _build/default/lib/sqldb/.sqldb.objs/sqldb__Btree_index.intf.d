lib/sqldb/btree_index.mli: Pager Value
