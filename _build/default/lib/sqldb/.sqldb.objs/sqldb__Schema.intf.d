lib/sqldb/schema.mli: Format Value
