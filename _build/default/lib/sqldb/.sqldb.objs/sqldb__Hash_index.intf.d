lib/sqldb/hash_index.mli: Pager Value
