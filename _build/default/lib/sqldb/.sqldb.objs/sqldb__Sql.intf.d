lib/sqldb/sql.mli: Database Executor Predicate Schema Value
