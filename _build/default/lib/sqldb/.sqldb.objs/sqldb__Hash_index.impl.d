lib/sqldb/hash_index.ml: Array Hashtbl List Pager Stdx Value
