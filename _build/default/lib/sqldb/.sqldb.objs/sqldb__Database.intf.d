lib/sqldb/database.mli: Executor Pager Predicate Schema Table Value
