lib/sqldb/pager.mli:
