lib/sqldb/schema.ml: Array Format Hashtbl Printf Value
