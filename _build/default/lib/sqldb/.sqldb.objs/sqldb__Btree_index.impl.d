lib/sqldb/btree_index.ml: Array Hashtbl List Pager Stdx Value
