lib/sqldb/database.ml: Executor Hashtbl Pager Printf Table
