lib/sqldb/predicate.mli: Format Schema Value
