lib/sqldb/csv.ml: Array Buffer Int64 List Printf Schema Stdx String Value
