lib/sqldb/table.ml: Array Hashtbl Pager Printf Schema Stdx Table_index Value
