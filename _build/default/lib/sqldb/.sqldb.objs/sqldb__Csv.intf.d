lib/sqldb/csv.mli: Schema Value
