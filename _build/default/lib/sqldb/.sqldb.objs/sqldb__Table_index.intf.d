lib/sqldb/table_index.mli: Btree_index Hash_index Pager Value
