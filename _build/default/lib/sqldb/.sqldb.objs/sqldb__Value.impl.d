lib/sqldb/value.ml: Float Format Hashtbl Int64 Stdlib Stdx String
