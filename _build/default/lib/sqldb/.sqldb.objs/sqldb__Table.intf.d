lib/sqldb/table.mli: Pager Schema Table_index Value
