lib/sqldb/executor.ml: Array List Option Pager Predicate Stdx Table Table_index Value
