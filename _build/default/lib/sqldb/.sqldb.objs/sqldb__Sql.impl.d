lib/sqldb/sql.ml: Array Buffer Database Executor Int64 List Predicate Printf Schema Stdx String Table Value
