type t =
  | Null
  | Int of int64
  | Real of float
  | Text of string
  | Blob of string

type ty = TInt | TReal | TText | TBlob

let ty_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Real _ -> Some TReal
  | Text _ -> Some TText
  | Blob _ -> Some TBlob

let ty_name = function TInt -> "INT" | TReal -> "REAL" | TText -> "TEXT" | TBlob -> "BLOB"

let rank = function Null -> 0 | Int _ -> 1 | Real _ -> 2 | Text _ -> 3 | Blob _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int64.compare x y
  | Real x, Real y -> Float.compare x y
  | Text x, Text y -> String.compare x y
  | Blob x, Blob y -> String.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Int64.to_int x lxor (Int64.to_int (Int64.shift_right_logical x 32) * 0x9e3779b1)
  | Real x -> Hashtbl.hash x
  | Text s -> Hashtbl.hash s
  | Blob s -> Hashtbl.hash s lxor 0x5bd1e995

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.fprintf ppf "%Ld" x
  | Real x -> Format.fprintf ppf "%g" x
  | Text s -> Format.fprintf ppf "'%s'" s
  | Blob s -> Format.fprintf ppf "x'%s'" (Stdx.Bytes_util.to_hex s)

let to_string v = Format.asprintf "%a" pp v

let varlena_bytes n = if n + 1 < 127 then n + 1 else n + 4

let heap_bytes = function
  | Null -> 0
  | Int _ | Real _ -> 8
  | Text s | Blob s -> varlena_bytes (String.length s)

let maxalign n = (n + 7) land lnot 7

let index_key_bytes v = maxalign (max 8 (heap_bytes v))
