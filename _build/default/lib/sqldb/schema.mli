(** Table schemas.

    A schema is an ordered list of typed, named columns. Inserts are
    checked against it (type and nullability), mirroring what a real
    DBMS enforces — the WRE layer depends on the engine accepting its
    extra tag/ciphertext columns exactly like any application column. *)

type column = { name : string; ty : Value.ty; nullable : bool }

type t

val create : column list -> t
(** Column names must be unique and non-empty. *)

val columns : t -> column array
val arity : t -> int

val column_index : t -> string -> int
(** Raises [Not_found] for unknown columns. *)

val column_index_opt : t -> string -> int option
val column_name : t -> int -> string

val validate_row : t -> Value.t array -> (unit, string) result
(** Arity, per-column type, and nullability check. *)

val pp : Format.formatter -> t -> unit
