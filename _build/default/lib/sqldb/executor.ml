type projection = Row_ids | All_columns

type plan_kind = Index_scan of string | Seq_scan

type result = {
  row_ids : int array;
  rows : Value.t array array;
  plan : plan_kind;
  wall_ns : float;
  stats : Pager.stats;
}

(* The first Eq/In/Range leg over an indexed column, searched shallowly
   through conjunctions (a disjunction can only use an index if every
   branch could, which the WRE workload never needs). *)
let rec indexable table p =
  match p with
  | Predicate.Eq (col, v) ->
      Option.map (fun idx -> (col, `Eq (idx, v))) (Table.index_on table ~column:col)
  | Predicate.In (col, vs) ->
      Option.map (fun idx -> (col, `In (idx, vs))) (Table.index_on table ~column:col)
  | Predicate.Range (col, lo, hi) -> (
      (* Only B-trees serve range scans. *)
      match Table.index_on table ~column:col with
      | Some idx when Table_index.kind idx = Table_index.Btree -> Some (col, `Range (idx, lo, hi))
      | Some _ | None -> None)
  | Predicate.And ps -> List.find_map (indexable table) ps
  | Predicate.True | Predicate.Or _ | Predicate.Not _ -> None

let explain table p =
  match indexable table p with Some (col, _) -> Index_scan col | None -> Seq_scan

let run table ~projection p =
  let pager = Table.pager table in
  let before = Pager.stats pager in
  let t0 = Stdx.Clock.now_ns () in
  let schema = Table.schema table in
  let eval = Predicate.compile schema p in
  let seq_scan () =
    let acc = Stdx.Vec.create () in
    Table.scan table (fun id _row -> Stdx.Vec.push acc id);
    (Seq_scan, Stdx.Vec.to_array acc)
  in
  let plan, candidate_ids =
    match indexable table p with
    | Some (col, access) -> (
        match access with
        | `Eq (idx, v) -> (Index_scan col, Table_index.lookup idx v)
        | `In (idx, vs) -> (Index_scan col, Table_index.lookup_many idx vs)
        | `Range (idx, lo, hi) -> (
            (* Hash indexes cannot serve ranges; fall back to scanning. *)
            match Table_index.range idx ?lo ?hi () with
            | Some ids -> (Index_scan col, ids)
            | None -> seq_scan ()))
    | None -> seq_scan ()
  in
  (* Residual filter. Index results are checked against the full
     predicate; for a pure index leg this is a no-op re-check on peeked
     rows (an index-only scan does not touch the heap — visibility-map
     style — matching the paper's SELECT ID behaviour). *)
  let needs_filter =
    match (plan, p) with
    | Index_scan col, Predicate.Eq (c, _) when c = col -> false
    | Index_scan col, Predicate.In (c, _) when c = col -> false
    | Index_scan col, Predicate.Range (c, _, _) when c = col -> false
    | _ -> true
  in
  (* Index entries may point at tombstoned tuples; drop them (the
     visibility check a real executor performs). *)
  let candidate_ids =
    if Table.live_count table = Table.row_count table then candidate_ids
    else Array.of_list (List.filter (Table.is_live table) (Array.to_list candidate_ids))
  in
  let row_ids =
    if needs_filter then
      Array.of_list
        (List.filter (fun id -> eval (Table.peek_row table id)) (Array.to_list candidate_ids))
    else candidate_ids
  in
  let rows =
    match projection with
    | Row_ids ->
        (* Returning ids still ships ~8 bytes per hit across the wire. *)
        Pager.charge_transfer pager (8 * Array.length row_ids);
        [||]
    | All_columns -> Array.map (fun id -> Table.read_row table id) row_ids
  in
  let wall_ns = Stdx.Clock.now_ns () -. t0 in
  let after = Pager.stats pager in
  let stats =
    Pager.
      {
        hits = after.hits - before.hits;
        misses = after.misses - before.misses;
        rows_examined = after.rows_examined - before.rows_examined;
        sim_ns = after.sim_ns -. before.sim_ns;
      }
  in
  { row_ids; rows; plan; wall_ns; stats }
