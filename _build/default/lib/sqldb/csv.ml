let parse text =
  let rows = Stdx.Vec.create () in
  let row = Stdx.Vec.create () in
  let cell = Buffer.create 32 in
  let n = String.length text in
  let i = ref 0 in
  let error = ref None in
  let flush_cell () =
    Stdx.Vec.push row (Buffer.contents cell);
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    Stdx.Vec.push rows (Stdx.Vec.to_list row);
    Stdx.Vec.clear row
  in
  while !error = None && !i < n do
    let c = text.[!i] in
    if c = '"' then begin
      (* Quoted field: must start at the beginning of the cell. *)
      if Buffer.length cell > 0 then error := Some (Printf.sprintf "stray quote at offset %d" !i)
      else begin
        incr i;
        let closed = ref false in
        while (not !closed) && !error = None do
          if !i >= n then error := Some "unterminated quoted field"
          else if text.[!i] = '"' then
            if !i + 1 < n && text.[!i + 1] = '"' then begin
              Buffer.add_char cell '"';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char cell text.[!i];
            incr i
          end
        done;
        (* After the closing quote only a separator may follow. *)
        if !error = None && !i < n && text.[!i] <> ',' && text.[!i] <> '\n' && text.[!i] <> '\r'
        then error := Some (Printf.sprintf "garbage after quoted field at offset %d" !i)
      end
    end
    else if c = ',' then begin
      flush_cell ();
      incr i
    end
    else if c = '\n' then begin
      flush_row ();
      incr i
    end
    else if c = '\r' then begin
      if !i + 1 < n && text.[!i + 1] = '\n' then begin
        flush_row ();
        i := !i + 2
      end
      else begin
        flush_row ();
        incr i
      end
    end
    else begin
      Buffer.add_char cell c;
      incr i
    end
  done;
  match !error with
  | Some e -> Error e
  | None ->
      (* Final line without trailing newline. *)
      if Buffer.length cell > 0 || Stdx.Vec.length row > 0 then flush_row ();
      Ok (Stdx.Vec.to_list rows)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let render_cell s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render rows =
  let buf = Buffer.create 4096 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map render_cell row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let header_of schema =
  List.map (fun (c : Schema.column) -> c.name) (Array.to_list (Schema.columns schema))

let typed_cell (col : Schema.column) cell =
  if cell = "" && col.nullable then Ok Value.Null
  else
    match col.ty with
    | Value.TInt -> (
        match Int64.of_string_opt cell with
        | Some v -> Ok (Value.Int v)
        | None -> Error (Printf.sprintf "column %S: %S is not an integer" col.name cell))
    | Value.TReal -> (
        match float_of_string_opt cell with
        | Some v -> Ok (Value.Real v)
        | None -> Error (Printf.sprintf "column %S: %S is not a number" col.name cell))
    | Value.TText -> Ok (Value.Text cell)
    | Value.TBlob -> (
        match Stdx.Bytes_util.of_hex cell with
        | v -> Ok (Value.Blob v)
        | exception Invalid_argument _ ->
            Error (Printf.sprintf "column %S: %S is not hex" col.name cell))

let typed_rows ~schema ~header rows =
  let cols = Schema.columns schema in
  let convert_row line_no cells =
    if List.length cells <> Array.length cols then
      Error
        (Printf.sprintf "line %d: %d cells for %d columns" line_no (List.length cells)
           (Array.length cols))
    else begin
      let out = Array.make (Array.length cols) Value.Null in
      let err = ref None in
      List.iteri
        (fun i cell ->
          if !err = None then
            match typed_cell cols.(i) cell with
            | Ok v -> out.(i) <- v
            | Error e -> err := Some (Printf.sprintf "line %d: %s" line_no e))
        cells;
      match !err with None -> Ok out | Some e -> Error e
    end
  in
  let data, start_line =
    match (header, rows) with
    | false, rows -> (Ok rows, 1)
    | true, [] -> (Error "empty file where a header was expected", 2)
    | true, hd :: tl ->
        if hd = header_of schema then (Ok tl, 2)
        else (Error "header does not match the schema's column names", 2)
  in
  match data with
  | Error e -> Error e
  | Ok rows ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match convert_row i r with Error e -> Error e | Ok row -> go (i + 1) (row :: acc) rest)
      in
      go start_line [] rows

let untyped_cell = function
  | Value.Null -> ""
  | Value.Int v -> Int64.to_string v
  | Value.Real v -> Printf.sprintf "%.17g" v
  | Value.Text s -> s
  | Value.Blob s -> Stdx.Bytes_util.to_hex s

let untyped_rows rows = List.map (fun row -> List.map untyped_cell (Array.to_list row)) rows
