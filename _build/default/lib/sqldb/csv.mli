(** CSV reading/writing (RFC 4180 quoting).

    The CLI's end-to-end story — encrypt a plaintext CSV into an
    encrypted CSV plus key material, later reload and query it — runs
    through this module. Typed conversion maps CSV cells onto a
    {!Schema}: INT/REAL cells are parsed, empty cells become NULL for
    nullable columns, and BLOB cells are hex. *)

val parse : string -> (string list list, string) result
(** Parse CSV text into rows of cells. Handles quoted fields containing
    commas, quotes ([""] escape) and newlines. Skips a trailing empty
    line. *)

val render : string list list -> string
(** Inverse of {!parse}; quotes exactly the cells that need it. *)

val typed_rows :
  schema:Schema.t -> header:bool -> string list list -> (Value.t array list, string) result
(** Convert parsed cells to schema-typed rows. With [header:true] the
    first row must name the schema's columns (in order). *)

val untyped_rows : Value.t array list -> string list list
(** Render typed rows back to cells ([to_string]-style; blobs as hex,
    NULL as the empty cell). *)

val header_of : Schema.t -> string list
