type t =
  | True
  | Eq of string * Value.t
  | In of string * Value.t list
  | Range of string * Value.t option * Value.t option
  | And of t list
  | Or of t list
  | Not of t

let rec compile schema p =
  match p with
  | True -> fun _ -> true
  | Eq (col, v) ->
      let i = Schema.column_index schema col in
      fun row -> Value.equal row.(i) v
  | In (col, vs) ->
      let i = Schema.column_index schema col in
      let set = Hashtbl.create (List.length vs) in
      List.iter (fun v -> Hashtbl.replace set v ()) vs;
      fun row -> Hashtbl.mem set row.(i)
  | Range (col, lo, hi) ->
      let i = Schema.column_index schema col in
      fun row ->
        let v = row.(i) in
        (match lo with None -> true | Some l -> Value.compare v l >= 0)
        && (match hi with None -> true | Some h -> Value.compare v h <= 0)
  | And ps ->
      let fs = List.map (compile schema) ps in
      fun row -> List.for_all (fun f -> f row) fs
  | Or ps ->
      let fs = List.map (compile schema) ps in
      fun row -> List.exists (fun f -> f row) fs
  | Not p ->
      let f = compile schema p in
      fun row -> not (f row)

let columns p =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      out := c :: !out
    end
  in
  let rec go = function
    | True -> ()
    | Eq (c, _) | In (c, _) | Range (c, _, _) -> add c
    | And ps | Or ps -> List.iter go ps
    | Not p -> go p
  in
  go p;
  List.rev !out

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "TRUE"
  | Eq (c, v) -> Format.fprintf ppf "%s = %a" c Value.pp v
  | In (c, vs) ->
      Format.fprintf ppf "%s IN (%a)" c
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
        vs
  | Range (c, lo, hi) ->
      let bound ppf = function None -> Format.pp_print_string ppf "_" | Some v -> Value.pp ppf v in
      Format.fprintf ppf "%s BETWEEN %a AND %a" c bound lo bound hi
  | And ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ") pp)
        ps
  | Or ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " OR ") pp)
        ps
  | Not p -> Format.fprintf ppf "NOT %a" pp p
