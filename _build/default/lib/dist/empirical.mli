(** Empirical discrete distributions over string-valued plaintexts.

    WRE needs the plaintext distribution [P_M] both at encryption time
    (the data owner computes it "during database initialization", paper
    §IV) and on the attacker's side (the auxiliary information that
    powers inference attacks). Both are represented here: a frequency
    table over plaintext values with deterministic iteration order. *)

type t

val of_counts : (string * int) list -> t
(** Build from value/count pairs. Counts must be positive; duplicate
    values are summed. *)

val of_values : string Seq.t -> t
(** Count occurrences in a stream of values. *)

val of_probabilities : (string * float) list -> t
(** Build from an explicit pmf (weights normalized; must be positive). *)

val prob : t -> string -> float
(** [P_M(m)]; 0 for values outside the support. *)

val count : t -> string -> int
(** Raw count (0 if built from probabilities without counts). *)

val to_counts : t -> (string * int) list
(** Value/count pairs in support order — the serializable form (the
    client must keep the profiled distribution alongside its keys to
    recompute salt sets later). Only valid for count-built
    distributions. *)

val support : t -> string array
(** Values sorted by descending probability, ties broken
    lexicographically — the canonical order used everywhere (attacks,
    salt allocation), so results are reproducible. *)

val support_size : t -> int
val total_count : t -> int

val min_prob : t -> float
(** Smallest plaintext probability τ = min_m P_M(m) — the τ in the λ
    security bound. (The paper's prose says "max" but uses the smallest
    frequency; the bound needs the minimum since e^{-λτ} is largest
    there.) *)

val max_prob : t -> float
val entropy_bits : t -> float
val min_entropy_bits : t -> float
val sampler : t -> Stdx.Prng.t -> string
(** Draw a value according to the distribution (alias method, cached). *)

val statistical_distance : t -> t -> float
(** Δ over the union of supports. *)
