(** Statistical tests used to validate the samplers and to power the
    empirical IND-CUDA distinguishers. *)

val ks_statistic : float array -> cdf:(float -> float) -> float
(** One-sample Kolmogorov–Smirnov statistic against a reference CDF. *)

val ks_two_sample : float array -> float array -> float
(** Two-sample KS statistic. *)

val ks_critical : n:int -> alpha:float -> float
(** Asymptotic one-sample critical value c(α)·√(1/n) for
    α ∈ {0.10, 0.05, 0.01, 0.001}. *)

val chi_square : observed:int array -> expected:float array -> float
(** Pearson's χ² statistic; expected entries must be positive. *)

val chi_square_critical_df : df:int -> float
(** Rough 99th-percentile of χ²(df) via the Wilson–Hilferty
    approximation — good enough for sanity tests. *)
