let check_rate rate = if rate <= 0.0 then invalid_arg "Exponential: rate must be positive"

let pdf ~rate x =
  check_rate rate;
  if x < 0.0 then 0.0 else rate *. exp (-.rate *. x)

let cdf ~rate x =
  check_rate rate;
  if x < 0.0 then 0.0 else 1.0 -. exp (-.rate *. x)

let ccdf ~rate x =
  check_rate rate;
  if x < 0.0 then 1.0 else exp (-.rate *. x)

let sample ~rate u =
  check_rate rate;
  -.log1p (-.u ()) /. rate

let mean ~rate =
  check_rate rate;
  1.0 /. rate

module Capped = struct
  let cdf ~rate ~tau x = if x >= tau then 1.0 else cdf ~rate x
  let ccdf ~rate ~tau x = if x >= tau then 0.0 else ccdf ~rate x

  let sample ~rate ~tau u =
    let x = sample ~rate u in
    if x > tau then tau else x

  let point_mass_at_tau ~rate ~tau =
    check_rate rate;
    exp (-.rate *. tau)
end

let distance_to_capped ~rate ~tau =
  check_rate rate;
  if tau < 0.0 then invalid_arg "Exponential.distance_to_capped: negative tau";
  exp (-.rate *. tau)

let lambda_for_security ~omega ~tau =
  if omega <= 0.0 || omega >= 1.0 then
    invalid_arg "Exponential.lambda_for_security: omega must be in (0,1)";
  if tau <= 0.0 then invalid_arg "Exponential.lambda_for_security: tau must be positive";
  -.log omega /. tau
