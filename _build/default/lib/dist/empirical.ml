type t = {
  probs : (string, float) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  support : string array; (* descending probability, lexicographic tie-break *)
  total_count : int;
  mutable alias : Stdx.Sampling.Alias.t option; (* lazily built *)
}

let make_support probs =
  let items = Hashtbl.fold (fun v p acc -> (v, p) :: acc) probs [] in
  let sorted =
    List.sort (fun (v0, p0) (v1, p1) -> if p0 <> p1 then compare p1 p0 else compare v0 v1) items
  in
  Array.of_list (List.map fst sorted)

let of_counts pairs =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (v, c) ->
      if c <= 0 then invalid_arg "Empirical.of_counts: counts must be positive";
      Hashtbl.replace counts v (c + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    pairs;
  let total = Hashtbl.fold (fun _ c acc -> acc + c) counts 0 in
  if total = 0 then invalid_arg "Empirical.of_counts: empty distribution";
  let probs = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter (fun v c -> Hashtbl.replace probs v (float_of_int c /. float_of_int total)) counts;
  { probs; counts; support = make_support probs; total_count = total; alias = None }

let of_values seq =
  let counts = Hashtbl.create 64 in
  Seq.iter
    (fun v -> Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    seq;
  of_counts (Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts [])

let of_probabilities pairs =
  if pairs = [] then invalid_arg "Empirical.of_probabilities: empty distribution";
  let raw = Hashtbl.create 64 in
  List.iter
    (fun (v, p) ->
      if p <= 0.0 || Float.is_nan p then
        invalid_arg "Empirical.of_probabilities: weights must be positive";
      Hashtbl.replace raw v (p +. Option.value ~default:0.0 (Hashtbl.find_opt raw v)))
    pairs;
  let total = Hashtbl.fold (fun _ p acc -> acc +. p) raw 0.0 in
  let probs = Hashtbl.create (Hashtbl.length raw) in
  Hashtbl.iter (fun v p -> Hashtbl.replace probs v (p /. total)) raw;
  { probs; counts = Hashtbl.create 1; support = make_support probs; total_count = 0; alias = None }

let prob t v = Option.value ~default:0.0 (Hashtbl.find_opt t.probs v)

let to_counts t =
  if t.total_count = 0 then invalid_arg "Empirical.to_counts: distribution has no counts";
  Array.to_list
    (Array.map (fun v -> (v, Option.value ~default:0 (Hashtbl.find_opt t.counts v))) t.support)
let count t v = Option.value ~default:0 (Hashtbl.find_opt t.counts v)
let support t = Array.copy t.support
let support_size t = Array.length t.support
let total_count t = t.total_count

let min_prob t =
  (* Support is sorted descending, so the minimum is the last entry. *)
  prob t t.support.(Array.length t.support - 1)

let max_prob t = prob t t.support.(0)

let entropy_bits t =
  Hashtbl.fold (fun _ p acc -> acc -. (p *. (log p /. log 2.0))) t.probs 0.0

let min_entropy_bits t = -.(log (max_prob t) /. log 2.0)

let sampler t g =
  let alias =
    match t.alias with
    | Some a -> a
    | None ->
        let a = Stdx.Sampling.Alias.create (Array.map (prob t) t.support) in
        t.alias <- Some a;
        a
  in
  t.support.(Stdx.Sampling.Alias.sample alias g)

let statistical_distance a b =
  let union = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace union v ()) a.support;
  Array.iter (fun v -> Hashtbl.replace union v ()) b.support;
  let acc = Hashtbl.fold (fun v () acc -> acc +. abs_float (prob a v -. prob b v)) union 0.0 in
  0.5 *. acc
