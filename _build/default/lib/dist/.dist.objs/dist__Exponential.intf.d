lib/dist/exponential.mli: Source
