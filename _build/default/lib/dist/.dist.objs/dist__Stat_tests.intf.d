lib/dist/stat_tests.mli:
