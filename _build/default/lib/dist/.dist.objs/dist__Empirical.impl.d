lib/dist/empirical.ml: Array Float Hashtbl List Option Seq Stdx
