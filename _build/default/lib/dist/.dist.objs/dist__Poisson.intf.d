lib/dist/poisson.mli: Source
