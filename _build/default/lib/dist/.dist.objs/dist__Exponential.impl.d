lib/dist/exponential.ml:
