lib/dist/zipf.ml: Array Stdx
