lib/dist/stat_tests.ml: Array
