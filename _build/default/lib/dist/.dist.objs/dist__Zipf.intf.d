lib/dist/zipf.mli: Stdx
