lib/dist/source.ml: Crypto Stdx
