lib/dist/source.mli: Crypto Stdx
