lib/dist/poisson.ml: Array Exponential Float Stdx
