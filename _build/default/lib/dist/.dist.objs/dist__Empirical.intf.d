lib/dist/empirical.mli: Seq Stdx
