let check_rate rate = if rate <= 0.0 then invalid_arg "Poisson: rate must be positive"

(* log k! via lgamma-style Stirling series for k > 20, exact below. *)
let log_factorial =
  let table = Array.make 21 0.0 in
  let () =
    for k = 2 to 20 do
      table.(k) <- table.(k - 1) +. log (float_of_int k)
    done
  in
  fun k ->
    if k < 0 then invalid_arg "Poisson: negative count"
    else if k <= 20 then table.(k)
    else begin
      let x = float_of_int k +. 1.0 in
      (* Stirling series for ln Γ(x) *)
      ((x -. 0.5) *. log x) -. x
      +. (0.5 *. log (2.0 *. Float.pi))
      +. (1.0 /. (12.0 *. x))
      -. (1.0 /. (360.0 *. (x ** 3.0)))
    end

let pmf ~rate k =
  check_rate rate;
  if k < 0 then 0.0
  else exp ((float_of_int k *. log rate) -. rate -. log_factorial k)

let cdf ~rate k =
  check_rate rate;
  if k < 0 then 0.0
  else begin
    (* Sum pmf terms with a recurrence to avoid recomputing factorials. *)
    let acc = ref 0.0 and term = ref (exp (-.rate)) in
    for i = 0 to k do
      if i > 0 then term := !term *. rate /. float_of_int i;
      acc := !acc +. !term
    done;
    min 1.0 !acc
  end

let sample_knuth ~rate u =
  let threshold = exp (-.rate) in
  let rec loop k p =
    let p = p *. (1.0 -. u ()) in
    if p <= threshold then k else loop (k + 1) p
  in
  loop 0 1.0

let rec sample ~rate u =
  check_rate rate;
  if rate <= 30.0 then sample_knuth ~rate u
  else begin
    (* Split the interval: arrivals over disjoint sub-intervals are
       independent Poissons, so Poisson(rate) = Poisson(30) summed
       rate/30 times plus a remainder. Keeps Knuth's method in its
       numerically safe range. *)
    let chunks = int_of_float (rate /. 30.0) in
    let remainder = rate -. (30.0 *. float_of_int chunks) in
    let total = ref 0 in
    for _ = 1 to chunks do
      total := !total + sample_knuth ~rate:30.0 u
    done;
    if remainder > 0.0 then total := !total + sample ~rate:remainder u;
    !total
  end

let process_on_interval ~rate ~length u =
  check_rate rate;
  if length <= 0.0 then invalid_arg "Poisson.process_on_interval: length must be positive";
  let slots = Stdx.Vec.create () in
  let total = ref 0.0 in
  while !total < length do
    let x = Exponential.sample ~rate u in
    let x = if x <= 0.0 then epsilon_float else x in
    Stdx.Vec.push slots x;
    total := !total +. x
  done;
  (* Truncate the final slot so the weights sum exactly to [length]
     (Algorithm 1 line 9). *)
  let n = Stdx.Vec.length slots in
  let last = Stdx.Vec.get slots (n - 1) in
  Stdx.Vec.set slots (n - 1) (length -. (!total -. last));
  Stdx.Vec.to_array slots

let expected_arrivals ~rate ~length =
  check_rate rate;
  rate *. length
