(** Bounded Zipf (zeta) distribution.

    Real identifier columns — first names, last names, cities — are
    heavy-tailed; the SPARTA generator models them with rank-frequency
    curves of this family. [pmf ~n ~s k ∝ 1/k^s] for ranks
    [k ∈ 1..n]. *)

type t

val create : n:int -> s:float -> t
(** [n] ranks, exponent [s ≥ 0] (s = 0 is uniform). *)

val pmf : t -> int -> float
(** Probability of rank [k ∈ 1..n]; 0 outside. *)

val weights : t -> float array
(** Normalized probabilities indexed by rank-1 (length [n]). *)

val sample : t -> Stdx.Prng.t -> int
(** Draw a rank in [1..n] (alias method, O(1) per draw). *)
