(** Uniform randomness sources for the samplers.

    The Poisson salt allocators must draw their randomness from a keyed
    DRBG (so encryption and search agree on the salt set), while
    statistical experiments draw from a fast PRNG. Both are adapted to
    a single [unit -> float] supplier of uniforms in [\[0,1)]. *)

type t = unit -> float

val of_prng : Stdx.Prng.t -> t
val of_drbg : Crypto.Drbg.t -> t
