type t = { n : int; probs : float array; alias : Stdx.Sampling.Alias.t }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let raw = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let probs = Array.map (fun w -> w /. total) raw in
  { n; probs; alias = Stdx.Sampling.Alias.create probs }

let pmf t k = if k < 1 || k > t.n then 0.0 else t.probs.(k - 1)
let weights t = Array.copy t.probs
let sample t g = 1 + Stdx.Sampling.Alias.sample t.alias g
