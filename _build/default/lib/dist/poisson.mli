(** Poisson distribution and Poisson process.

    The Poisson WRE allocator (paper §V-C, Algorithm 1) samples the
    arrivals of a rate-λ Poisson process on the interval
    [\[0, P_M(m)\]]; the interarrival times become the search-tag
    frequencies. {!process_on_interval} returns those interarrivals
    directly, including the final truncated slot, so that the weights
    sum exactly to the interval length. *)

val pmf : rate:float -> int -> float
(** [pmf ~rate k] = e^{-rate} rate^k / k!. Computed in log space so
    large rates do not overflow. *)

val cdf : rate:float -> int -> float

val sample : rate:float -> Source.t -> int
(** Draw a Poisson(rate) count. Knuth's method for small rates; for
    rate > 30 the count is accumulated from Exponential interarrivals
    in chunks, which is exact (unlike a normal approximation) and fast
    enough for the rates the schemes use. *)

val process_on_interval : rate:float -> length:float -> Source.t -> float array
(** Interarrival slots of a rate-λ Poisson process restricted to
    [\[0, length\]]: Exponential(λ) draws accumulated until the total
    exceeds [length], with the last slot truncated so the array sums to
    [length]. Always non-empty; a single-element result means zero
    arrivals landed inside the interval (the "capped" case). *)

val expected_arrivals : rate:float -> length:float -> float
