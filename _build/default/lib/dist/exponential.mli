(** Exponential and capped-Exponential distributions.

    The Poisson WRE proof (paper §V-C) hinges on the statistical
    distance between a standard Exponential(λ) and the "capped
    Exponential" with parameters (λ, τ): identical to the Exponential
    left of τ, with all mass above τ lumped onto the point τ. The
    distance is exactly [exp (-λ τ)] — {!distance_to_capped} — which is
    what makes the first-salt frequency indistinguishable for large λ.
    Figure 2 plots the two CCDFs. *)

val pdf : rate:float -> float -> float
val cdf : rate:float -> float -> float

val ccdf : rate:float -> float -> float
(** Complementary CDF [P(X > x)] — the quantity plotted in Fig. 2. *)

val sample : rate:float -> Source.t -> float
(** Inverse-CDF sampling. *)

val mean : rate:float -> float

module Capped : sig
  val cdf : rate:float -> tau:float -> float -> float
  (** Identical to the Exponential CDF below [tau]; 1 at and above. *)

  val ccdf : rate:float -> tau:float -> float -> float

  val sample : rate:float -> tau:float -> Source.t -> float
  (** An Exponential(rate) draw, except values above [tau] land on
      [tau] — exactly the distribution of the first interarrival slot
      in Algorithm 1. *)

  val point_mass_at_tau : rate:float -> tau:float -> float
  (** [P(X = tau)] — the lump the cap creates: [exp (-rate * tau)]. *)
end

val distance_to_capped : rate:float -> tau:float -> float
(** Statistical distance Δ(Exp(λ), CappedExp(λ, τ)) = e^{-λτ}
    (paper §V-C). *)

val lambda_for_security : omega:float -> tau:float -> float
(** Smallest λ with distinguishing advantage ≤ ω for a plaintext of
    frequency τ: λ ≥ -ln(ω)/τ (paper §V-C). *)
