type t = unit -> float

let of_prng g () = Stdx.Prng.float g
let of_drbg d () = Crypto.Drbg.float d
