let ks_statistic xs ~cdf =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stat_tests.ks_statistic: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let f = cdf sorted.(i) in
    let hi = (float_of_int (i + 1) /. float_of_int n) -. f in
    let lo = f -. (float_of_int i /. float_of_int n) in
    d := max !d (max hi lo)
  done;
  !d

let ks_two_sample xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 || ny = 0 then invalid_arg "Stat_tests.ks_two_sample: empty sample";
  let sx = Array.copy xs and sy = Array.copy ys in
  Array.sort compare sx;
  Array.sort compare sy;
  let d = ref 0.0 and i = ref 0 and j = ref 0 in
  while !i < nx && !j < ny do
    if sx.(!i) <= sy.(!j) then incr i else incr j;
    let fx = float_of_int !i /. float_of_int nx in
    let fy = float_of_int !j /. float_of_int ny in
    d := max !d (abs_float (fx -. fy))
  done;
  !d

let ks_critical ~n ~alpha =
  let c =
    if alpha >= 0.10 then 1.224
    else if alpha >= 0.05 then 1.358
    else if alpha >= 0.01 then 1.628
    else 1.949
  in
  c /. sqrt (float_of_int n)

let chi_square ~observed ~expected =
  let n = Array.length observed in
  if n <> Array.length expected then invalid_arg "Stat_tests.chi_square: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    if expected.(i) <= 0.0 then invalid_arg "Stat_tests.chi_square: expected must be positive";
    let d = float_of_int observed.(i) -. expected.(i) in
    acc := !acc +. (d *. d /. expected.(i))
  done;
  !acc

let chi_square_critical_df ~df =
  if df <= 0 then invalid_arg "Stat_tests.chi_square_critical_df: df must be positive";
  (* Wilson–Hilferty: χ²_p(df) ≈ df (1 - 2/(9 df) + z_p sqrt(2/(9 df)))^3,
     z_0.99 = 2.326. *)
  let k = float_of_int df in
  let z = 2.326 in
  let t = 1.0 -. (2.0 /. (9.0 *. k)) +. (z *. sqrt (2.0 /. (9.0 *. k))) in
  k *. (t ** 3.0)
