(** Descriptive statistics used by the benchmark harness and the attack
    evaluation. All functions operate on float arrays and do not modify
    their input unless noted. *)

val mean : float array -> float
(** Arithmetic mean. [nan] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator). 0 when n < 2. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation
    between order statistics. Sorts a copy. *)

val median : float array -> float

val summary : float array -> string
(** One-line "n/mean/p50/p95/max" summary for reports. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; [nan] if either side is constant. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on average ranks). *)

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram over [min, max] of the data. *)

val total_variation : float array -> float array -> float
(** Total-variation distance between two discrete distributions given as
    (not necessarily normalized) weight vectors of equal length:
    [0.5 * sum |p_i - q_i|] after normalization. *)
