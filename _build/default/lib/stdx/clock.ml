let now_ns () = Unix.gettimeofday () *. 1e9

let time_it f =
  let t0 = now_ns () in
  let r = f () in
  (r, now_ns () -. t0)
