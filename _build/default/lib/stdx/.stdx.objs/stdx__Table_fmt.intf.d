lib/stdx/table_fmt.mli:
