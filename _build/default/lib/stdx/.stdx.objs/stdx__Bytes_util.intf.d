lib/stdx/bytes_util.mli:
