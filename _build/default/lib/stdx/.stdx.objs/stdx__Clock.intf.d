lib/stdx/clock.mli:
