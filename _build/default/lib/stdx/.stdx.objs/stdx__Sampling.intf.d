lib/stdx/sampling.mli: Prng
