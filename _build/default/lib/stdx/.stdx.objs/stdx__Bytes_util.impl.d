lib/stdx/bytes_util.ml: Bytes Char Int32 List String
