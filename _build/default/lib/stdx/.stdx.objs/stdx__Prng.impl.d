lib/stdx/prng.ml: Bytes Char Int64
