lib/stdx/table_fmt.ml: Array Buffer String Vec
