lib/stdx/prng.mli:
