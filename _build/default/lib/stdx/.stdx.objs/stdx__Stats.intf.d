lib/stdx/stats.mli:
