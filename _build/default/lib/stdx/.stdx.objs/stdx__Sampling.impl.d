lib/stdx/sampling.ml: Array Float Prng Stack
