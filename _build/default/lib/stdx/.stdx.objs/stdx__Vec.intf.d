lib/stdx/vec.mli:
