lib/stdx/clock.ml: Unix
