(** Sampling from discrete distributions.

    The WRE encryption path samples a salt for every record it encrypts,
    so the per-sample cost matters at 10M-record scale. {!Alias} gives
    O(1) samples after O(n) preprocessing (Walker/Vose alias method);
    {!weighted} is the simple O(n) inverse-CDF fallback used for
    one-off draws. *)

val weighted : Prng.t -> float array -> int
(** [weighted g w] draws index [i] with probability [w.(i) / sum w].
    Weights must be non-negative with positive sum. O(n). *)

val shuffle : Prng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle (uniform over permutations). *)

val choose : Prng.t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

module Alias : sig
  type t

  val create : float array -> t
  (** Preprocess weights (non-negative, positive sum) into alias tables.
      O(n). *)

  val sample : t -> Prng.t -> int
  (** O(1) draw with probability proportional to the original weights. *)

  val size : t -> int
end
