let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    if p <= 0.0 then sorted.(0)
    else if p >= 100.0 then sorted.(n - 1)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  end

let median xs = percentile xs 50.0

let summary xs =
  Printf.sprintf "n=%d mean=%.4g p50=%.4g p95=%.4g max=%.4g" (Array.length xs) (mean xs)
    (median xs) (percentile xs 95.0) (percentile xs 100.0)

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n = 0 then nan
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then nan else !sxy /. sqrt (!sxx *. !syy)
  end

(* Average ranks so that ties are handled correctly. *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys = pearson (ranks xs) (ranks ys)

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then { lo = 0.0; hi = 0.0; counts = Array.make bins 0 }
  else begin
    let lo = Array.fold_left min xs.(0) xs in
    let hi = Array.fold_left max xs.(0) xs in
    let counts = Array.make bins 0 in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
        counts.(b) <- counts.(b) + 1)
      xs;
    { lo; hi; counts }
  end

let total_variation p q =
  let n = Array.length p in
  if n <> Array.length q then invalid_arg "Stats.total_variation: length mismatch";
  let sp = Array.fold_left ( +. ) 0.0 p and sq = Array.fold_left ( +. ) 0.0 q in
  if sp <= 0.0 || sq <= 0.0 then invalid_arg "Stats.total_variation: zero mass";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. abs_float ((p.(i) /. sp) -. (q.(i) /. sq))
  done;
  0.5 *. !acc
