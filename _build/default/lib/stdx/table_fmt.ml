type t = { headers : string array; rows : string array Vec.t }

let create headers = { headers = Array.of_list headers; rows = Vec.create () }

let add_row t cells =
  let n = Array.length t.headers in
  let cells = Array.of_list cells in
  if Array.length cells > n then invalid_arg "Table_fmt.add_row: too many cells";
  let row = Array.make n "" in
  Array.blit cells 0 row 0 (Array.length cells);
  Vec.push t.rows row

let render t =
  let n = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  Vec.iter (fun row -> Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row) t.rows;
  let buf = Buffer.create 1024 in
  let emit_row row =
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf row.(i);
      Buffer.add_string buf (String.make (widths.(i) - String.length row.(i)) ' ')
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string buf "  ";
    Buffer.add_string buf (String.make widths.(i) '-')
  done;
  Buffer.add_char buf '\n';
  Vec.iter emit_row t.rows;
  Buffer.contents buf

let print t = print_string (render t)
