(** Aligned ASCII tables for benchmark and experiment reports. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val render : t -> string
(** Render with column-aligned padding and a header separator. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
