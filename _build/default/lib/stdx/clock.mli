(** Wall-clock timing for the executor and benchmarks. *)

val now_ns : unit -> float
(** Monotonic-enough timestamp in nanoseconds ([Sys.time]-free;
    microsecond resolution from the OS time of day). *)

val time_it : (unit -> 'a) -> 'a * float
(** Run a thunk, returning its result and elapsed nanoseconds. *)
