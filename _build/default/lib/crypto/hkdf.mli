(** HKDF with HMAC-SHA256 (RFC 5869).

    The scheme holds two master keys [(k0, k1)]; every per-column and
    per-purpose subkey (CTR data key, search-tag PRF key, salt-DRBG
    seed, shuffle key) is derived with HKDF so that the deployable
    surface only ever stores two secrets. Validated against the RFC
    5869 test vectors. *)

val extract : ?salt:string -> ikm:string -> unit -> string
(** [extract ~salt ~ikm ()] is the 32-byte pseudorandom key. An absent
    salt means 32 zero bytes, per the RFC. *)

val expand : prk:string -> info:string -> len:int -> string
(** Expand to [len] bytes ([len <= 255 * 32]). *)

val derive : ikm:string -> info:string -> len:int -> string
(** extract-then-expand in one call, with the RFC's default (all-zero)
    extract salt. *)
