(** Pseudo-random shuffle (paper Definition 6).

    A deterministic keyed permutation of a list, indistinguishable from
    a uniformly random shuffle to anyone without the key. Implemented
    as Fisher–Yates driven by an HMAC-DRBG seeded with
    [HKDF(key, context)].

    Two call sites in the paper:
    - the IND-CUDA challenger shuffles the selected message list before
      encrypting (Definition 7);
    - the bucketized Poisson allocator shuffles the plaintext domain to
      fix the order in which plaintexts are laid out on the unit
      interval (Algorithm 2, line 11). *)

val permutation : key:string -> context:string -> int -> int array
(** [permutation ~key ~context n] is a keyed permutation of
    [0 .. n-1]. Deterministic in [(key, context, n)]. *)

val shuffle : key:string -> context:string -> 'a array -> 'a array
(** Apply the keyed permutation to a copy of the array. *)

val shuffle_in_place : Stdx.Prng.t -> 'a array -> unit
(** Non-keyed uniform shuffle used by the challenger when true
    randomness is fine (statistical experiments). *)
