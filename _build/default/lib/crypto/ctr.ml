type key = Aes128.key

let of_raw raw = Aes128.expand raw

let ciphertext_overhead = 16

(* Big-endian increment of the low 64 bits of the counter block; the
   nonce occupies the high 64 bits, so a single message never wraps into
   another message's keystream. *)
let incr_counter block =
  let rec bump i =
    if i >= 8 then begin
      let b = Char.code (Bytes.get block i) in
      if b = 0xff then begin
        Bytes.set block i '\x00';
        bump (i - 1)
      end
      else Bytes.set block i (Char.chr (b + 1))
    end
  in
  bump 15

let keystream_xor key ~nonce ~src ~src_off ~dst ~dst_off ~len =
  let counter = Bytes.of_string nonce in
  (* Zero the low 64 bits so the starting counter is nonce_hi ‖ 0. *)
  Bytes.fill counter 8 8 '\x00';
  let block = Bytes.create 16 in
  let pos = ref 0 in
  while !pos < len do
    Bytes.blit counter 0 block 0 16;
    Aes128.encrypt_block key block ~off:0;
    let n = min 16 (len - !pos) in
    for i = 0 to n - 1 do
      Bytes.set dst
        (dst_off + !pos + i)
        (Char.chr (Char.code src.[src_off + !pos + i] lxor Char.code (Bytes.get block i)))
    done;
    incr_counter counter;
    pos := !pos + 16
  done

let encrypt key ~nonce pt =
  if String.length nonce <> 16 then invalid_arg "Ctr.encrypt: nonce must be 16 bytes";
  let len = String.length pt in
  let out = Bytes.create (16 + len) in
  Bytes.blit_string nonce 0 out 0 16;
  keystream_xor key ~nonce ~src:pt ~src_off:0 ~dst:out ~dst_off:16 ~len;
  Bytes.unsafe_to_string out

let encrypt_random key g pt =
  let nonce = Bytes.unsafe_to_string (Stdx.Prng.bytes g 16) in
  encrypt key ~nonce pt

let decrypt key ct =
  if String.length ct < 16 then invalid_arg "Ctr.decrypt: ciphertext too short";
  let nonce = String.sub ct 0 16 in
  let len = String.length ct - 16 in
  let out = Bytes.create len in
  keystream_xor key ~nonce ~src:ct ~src_off:16 ~dst:out ~dst_off:0 ~len;
  Bytes.unsafe_to_string out
