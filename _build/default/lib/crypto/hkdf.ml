let hash_len = Sha256.digest_size

let extract ?salt ~ikm () =
  let salt = match salt with Some s -> s | None -> String.make hash_len '\x00' in
  Hmac.mac ~key:salt ikm

let expand ~prk ~info ~len =
  if len < 0 || len > 255 * hash_len then invalid_arg "Hkdf.expand: invalid output length";
  let buf = Buffer.create len in
  let rec loop t i =
    if Buffer.length buf >= len then ()
    else begin
      let t = Hmac.mac ~key:prk (t ^ info ^ String.make 1 (Char.chr i)) in
      Buffer.add_string buf t;
      loop t (i + 1)
    end
  in
  loop "" 1;
  String.sub (Buffer.contents buf) 0 len

let derive ~ikm ~info ~len = expand ~prk:(extract ~ikm ()) ~info ~len
