type t = { mutable key : string; mutable value : string }

let update t provided =
  t.key <- Hmac.mac ~key:t.key (t.value ^ "\x00" ^ provided);
  t.value <- Hmac.mac ~key:t.key t.value;
  if provided <> "" then begin
    t.key <- Hmac.mac ~key:t.key (t.value ^ "\x01" ^ provided);
    t.value <- Hmac.mac ~key:t.key t.value
  end

let create ~seed =
  let t = { key = String.make 32 '\x00'; value = String.make 32 '\x01' } in
  update t seed;
  t

let generate t n =
  if n < 0 then invalid_arg "Drbg.generate: negative length";
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.value <- Hmac.mac ~key:t.key t.value;
    Buffer.add_string buf t.value
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let uint64 t = Stdx.Bytes_util.get_u64_be (generate t 8) 0

let float t =
  let r = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Drbg.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (uint64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.add (Int64.sub Int64.max_int bound64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Drbg.exponential: rate must be positive";
  let u = float t in
  -.log1p (-.u) /. rate
