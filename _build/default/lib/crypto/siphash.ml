type key = { k0 : int64; k1 : int64 }

let of_raw raw =
  if String.length raw <> 16 then invalid_arg "Siphash.of_raw: key must be 16 bytes";
  { k0 = Stdx.Bytes_util.get_u64_le raw 0; k1 = Stdx.Bytes_util.get_u64_le raw 8 }

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

(* One SipRound over the four lanes. *)
let[@inline] sipround v0 v1 v2 v3 =
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  (v0, v1, v2, v3)

let hash key msg =
  let len = String.length msg in
  let v0 = ref (Int64.logxor key.k0 0x736f6d6570736575L) in
  let v1 = ref (Int64.logxor key.k1 0x646f72616e646f6dL) in
  let v2 = ref (Int64.logxor key.k0 0x6c7967656e657261L) in
  let v3 = ref (Int64.logxor key.k1 0x7465646279746573L) in
  let compress m rounds =
    v3 := Int64.logxor !v3 m;
    for _ = 1 to rounds do
      let a, b, c, d = sipround !v0 !v1 !v2 !v3 in
      v0 := a;
      v1 := b;
      v2 := c;
      v3 := d
    done;
    v0 := Int64.logxor !v0 m
  in
  let full_blocks = len / 8 in
  for i = 0 to full_blocks - 1 do
    compress (Stdx.Bytes_util.get_u64_le msg (8 * i)) 2
  done;
  (* Final block: remaining bytes little-endian, length in the top byte. *)
  let last = ref (Int64.shift_left (Int64.of_int (len land 0xff)) 56) in
  for i = 0 to (len mod 8) - 1 do
    last :=
      Int64.logor !last
        (Int64.shift_left (Int64.of_int (Char.code msg.[(full_blocks * 8) + i])) (8 * i))
  done;
  compress !last 2;
  v2 := Int64.logxor !v2 0xffL;
  for _ = 1 to 4 do
    let a, b, c, d = sipround !v0 !v1 !v2 !v3 in
    v0 := a;
    v1 := b;
    v2 := c;
    v3 := d
  done;
  Int64.logxor (Int64.logxor !v0 !v1) (Int64.logxor !v2 !v3)
