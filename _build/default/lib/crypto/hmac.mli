(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    Used directly as the paper's PRF [F] (Definition 2), and as the
    building block for HKDF and HMAC-DRBG. Validated against the RFC
    4231 test vectors. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. Keys longer than the
    SHA-256 block are hashed first, per the spec. *)

val mac_hex : key:string -> string -> string

val mac_u64 : key:string -> string -> int64
(** First 8 bytes of the tag as a big-endian [int64] — the 64-bit
    search-tag representation used by the encrypted database ("one 64
    bit Integer column for the WRE search tag", paper §VI-A). *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-time comparison of a full 32-byte tag. *)
