lib/crypto/hkdf.ml: Buffer Char Hmac Sha256 String
