lib/crypto/ctr.mli: Stdx
