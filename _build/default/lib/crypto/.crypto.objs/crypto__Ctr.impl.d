lib/crypto/ctr.ml: Aes128 Bytes Char Stdx String
