lib/crypto/prs.ml: Array Drbg Hkdf Stdx
