lib/crypto/prf.mli:
