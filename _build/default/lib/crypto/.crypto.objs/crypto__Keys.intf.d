lib/crypto/keys.mli: Ctr Prf Stdx
