lib/crypto/prf.ml: Bytes Hmac Int64 Siphash Stdx String
