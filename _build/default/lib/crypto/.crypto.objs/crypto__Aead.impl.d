lib/crypto/aead.ml: Char Ctr Hmac String
