lib/crypto/prs.mli: Stdx
