lib/crypto/aead.mli: Stdx
