lib/crypto/keys.ml: Bytes Ctr Hkdf Prf Stdx String
