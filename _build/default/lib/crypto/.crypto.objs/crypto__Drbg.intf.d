lib/crypto/drbg.mli:
