lib/crypto/siphash.mli:
