lib/crypto/hmac.mli:
