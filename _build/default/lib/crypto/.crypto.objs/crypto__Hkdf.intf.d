lib/crypto/hkdf.mli:
