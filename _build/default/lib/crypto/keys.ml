type master = { k0 : string; k1 : string }

let generate g =
  {
    k0 = Bytes.unsafe_to_string (Stdx.Prng.bytes g 16);
    k1 = Bytes.unsafe_to_string (Stdx.Prng.bytes g 32);
  }

let of_raw ~k0 ~k1 =
  if String.length k0 < 16 then invalid_arg "Keys.of_raw: k0 must be at least 16 bytes";
  if String.length k1 < 16 then invalid_arg "Keys.of_raw: k1 must be at least 16 bytes";
  { k0; k1 }

let export m = (m.k0, m.k1)

let data_key m ~column =
  Ctr.of_raw (Hkdf.derive ~ikm:m.k0 ~info:("wre/data/" ^ column) ~len:16)

let prf_key ?algo m ~column =
  Prf.of_raw ?algo (Hkdf.derive ~ikm:m.k1 ~info:("wre/prf/" ^ column) ~len:32)

let salt_seed m ~column ~context =
  Hkdf.derive ~ikm:m.k1 ~info:("wre/salts/" ^ column ^ "/" ^ context) ~len:32

let shuffle_key m ~column = Hkdf.derive ~ikm:m.k1 ~info:("wre/shuffle/" ^ column) ~len:32
