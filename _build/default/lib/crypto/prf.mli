(** Search-tag PRF.

    A WRE search tag is [F_{k1}(s ‖ m)] (paper Fig. 1), stored in a
    64-bit integer column. The salt and message are length-prefixed
    before being fed to the PRF, so distinct [(salt, message)] pairs
    can never produce the same PRF input even when lengths vary — the
    encoding requirement of paper §IV.

    Two backends:
    - {!Hmac_sha256} (default): HMAC-SHA256 truncated to 64 bits, the
      conservative choice;
    - {!Siphash24}: SipHash-2-4, a dedicated 64-bit PRF ~20x faster on
      tag-sized inputs — worthwhile at 10M-record bulk-load scale (see
      the [micro] benchmark). *)

type algo = Hmac_sha256 | Siphash24

type key

val of_raw : ?algo:algo -> string -> key
(** Key material (≥ 16 bytes; typically 32 HKDF-derived bytes — the
    SipHash backend uses the first 16). *)

val algo : key -> algo

val tag : key -> salt:int -> message:string -> int64
(** Search tag for [(salt, message)] — the non-bucketized schemes. *)

val tag_salt_only : key -> salt:int -> int64
(** Search tag for a bare salt — the bucketized Poisson scheme feeds
    only the salt to the PRF (paper §V-C1). *)

val tag_string : key -> string -> int64
(** Raw-domain PRF for callers that build their own input encoding. *)
