let permutation ~key ~context n =
  if n < 0 then invalid_arg "Prs.permutation: negative size";
  let seed = Hkdf.derive ~ikm:key ~info:("wre/prs/" ^ context) ~len:32 in
  let drbg = Drbg.create ~seed in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Drbg.int drbg (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  perm

let shuffle ~key ~context a =
  let perm = permutation ~key ~context (Array.length a) in
  Array.map (fun i -> a.(i)) perm

let shuffle_in_place g a = Stdx.Sampling.shuffle g a
