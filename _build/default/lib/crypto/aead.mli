(** Authenticated encryption: AES-128-CTR then HMAC-SHA256
    (encrypt-then-MAC, truncated 16-byte tag).

    The paper's construction stores bare CTR ciphertexts — confidential
    but malleable, which is fine against its snapshot adversary (who
    only reads). A deployment that also worries about *tampering* with
    the backup can swap this in for {!Ctr} at +16 bytes per value; the
    corruption tests in the suite show the difference (CTR silently
    garbles, AEAD refuses). *)

type key

val of_raw : string -> key
(** 32 bytes: 16 for AES-CTR, 16 for the MAC key. *)

val encrypt : key -> Stdx.Prng.t -> string -> string
(** [nonce ‖ ctr-ciphertext ‖ tag]. *)

val decrypt : key -> string -> (string, string) result
(** Verifies the tag (constant-time) before decrypting; [Error] on any
    modification or truncation. *)

val ciphertext_overhead : int
(** 32 bytes: 16 nonce + 16 tag. *)
