(** Key management for the WRE scheme.

    The paper's Gen returns [(k0, k1)]: [k0] keys the IND-CPA data
    encryption, [k1] keys the search-tag PRF. This module generates the
    master pair and derives all per-column subkeys with HKDF, so a
    deployment stores exactly two secrets. *)

type master
(** The (k0, k1) master pair. *)

val generate : Stdx.Prng.t -> master
(** Fresh random master keys. The PRNG stands in for the OS entropy
    source in this reproduction; see DESIGN.md. *)

val of_raw : k0:string -> k1:string -> master
(** Import existing 16/32-byte master keys (e.g. from a KMS). *)

val export : master -> string * string
(** Raw (k0, k1) for escrow. Handle with care. *)

val data_key : master -> column:string -> Ctr.key
(** Per-column AES-CTR key derived from k0. *)

val prf_key : ?algo:Prf.algo -> master -> column:string -> Prf.key
(** Per-column search-tag PRF key derived from k1. *)

val salt_seed : master -> column:string -> context:string -> string
(** 32-byte DRBG seed for getSalts pseudo-randomness, derived from k1.
    [context] distinguishes per-message from per-column streams. *)

val shuffle_key : master -> column:string -> string
(** Key for the pseudo-random shuffle of Algorithm 2. *)
