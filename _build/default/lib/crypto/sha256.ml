(* FIPS 180-4 SHA-256. Words are kept in OCaml native ints masked to 32
   bits; on 64-bit platforms this avoids Int32 boxing in the compression
   loop, which matters because every search tag and every AES key
   schedule flows through HMAC-SHA256. *)

let block_size = 64
let digest_size = 32

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1; 0x923f82a4;
     0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe;
     0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc; 0x2de92c6f;
     0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7;
     0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116;
     0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
     0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208; 0x90befffa; 0xa4506ceb; 0xbef9a3f7;
     0xc67178f2 |]

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable h5 : int;
  mutable h6 : int;
  mutable h7 : int;
  buf : bytes; (* partial block *)
  mutable buf_len : int;
  mutable total : int64; (* bytes fed so far *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h0 = 0x6a09e667;
    h1 = 0xbb67ae85;
    h2 = 0x3c6ef372;
    h3 = 0xa54ff53a;
    h4 = 0x510e527f;
    h5 = 0x9b05688c;
    h6 = 0x1f83d9ab;
    h7 = 0x5be0cd19;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0;
  }

let mask = 0xFFFFFFFF

let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    w.(i) <-
      (Char.code (Bytes.unsafe_get block j) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (j + 3))
  done;
  for i = 16 to 63 do
    let w15 = w.(i - 15) and w2 = w.(i - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let a = ref ctx.h0 and b = ref ctx.h1 and c = ref ctx.h2 and d = ref ctx.h3 in
  let e = ref ctx.h4 and f = ref ctx.h5 and g = ref ctx.h6 and h = ref ctx.h7 in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let temp1 = (!h + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    h := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask;
  ctx.h1 <- (ctx.h1 + !b) land mask;
  ctx.h2 <- (ctx.h2 + !c) land mask;
  ctx.h3 <- (ctx.h3 + !d) land mask;
  ctx.h4 <- (ctx.h4 + !e) land mask;
  ctx.h5 <- (ctx.h5 + !f) land mask;
  ctx.h6 <- (ctx.h6 + !g) land mask;
  ctx.h7 <- (ctx.h7 + !h) land mask

let feed_bytes ctx src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes: slice out of range";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Top up a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit src !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx src !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let pad = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set pad 0 '\x80';
  Bytes.set_int64_be pad pad_len bit_len;
  feed_bytes ctx pad ~off:0 ~len:(Bytes.length pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  let put i v = Bytes.set_int32_be out (4 * i) (Int32.of_int v) in
  put 0 ctx.h0;
  put 1 ctx.h1;
  put 2 ctx.h2;
  put 3 ctx.h3;
  put 4 ctx.h4;
  put 5 ctx.h5;
  put 6 ctx.h6;
  put 7 ctx.h7;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let digest_hex s = Stdx.Bytes_util.to_hex (digest s)
