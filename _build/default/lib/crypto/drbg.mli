(** Deterministic random bit generator (HMAC-DRBG, NIST SP 800-90A,
    without reseeding).

    [getSalts] must return the same salt set at encryption time and at
    query time without storing any state on the server, so all of its
    internal randomness is drawn from a DRBG seeded by
    [HKDF(k1, context)] — per message for the Poisson allocator, per
    column for the bucketized allocator (see DESIGN.md §5). *)

type t

val create : seed:string -> t
(** Instantiate from arbitrary seed material. *)

val generate : t -> int -> string
(** [generate t n] is the next [n] pseudo-random bytes. *)

val uint64 : t -> int64
(** Next 8 bytes as an unsigned 64-bit integer. *)

val float : t -> float
(** Uniform in [\[0,1)], 53-bit resolution, derived from {!uint64}. *)

val int : t -> int -> int
(** Uniform in [\[0, bound)] without modulo bias. *)

val exponential : t -> rate:float -> float
(** Inverse-CDF Exponential(rate) sample: [-ln(1-U)/rate]. *)
