(** SHA-256 (FIPS 180-4), implemented from scratch.

    The container provides no cryptographic packages, so this is the
    hash underlying every keyed primitive in the library (HMAC, HKDF,
    HMAC-DRBG, the PRF that produces search tags). Validated against the
    FIPS / NIST test vectors in the test suite. *)

type ctx
(** Incremental hashing context (mutable). *)

val init : unit -> ctx
val feed : ctx -> string -> unit

val feed_bytes : ctx -> bytes -> off:int -> len:int -> unit
(** Feed a slice of a byte buffer without copying it to a string. *)

val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be used again. *)

val digest : string -> string
(** One-shot hash of a full string: 32 raw bytes. *)

val digest_hex : string -> string
(** One-shot hash, lowercase hex. *)

val block_size : int
(** 64 bytes; needed by HMAC. *)

val digest_size : int
(** 32 bytes. *)
