(** SipHash-2-4 (Aumasson–Bernstein), a 64-bit keyed PRF.

    HMAC-SHA256 truncated to 64 bits is the default search-tag PRF; at
    bulk-load scale the two SHA-256 compressions per tag dominate
    encryption cost. SipHash-2-4 is a PRF designed exactly for short
    inputs and 64-bit outputs, ~20x faster here — the [micro] benchmark
    quantifies the trade-off, and {!Prf_fast} packages it behind the
    same interface. Validated against the reference-implementation test
    vectors. *)

type key
(** 128-bit key. *)

val of_raw : string -> key
(** Requires exactly 16 bytes. *)

val hash : key -> string -> int64
(** SipHash-2-4 of the message. *)
