(** AES-128 block cipher (FIPS 197), implemented from scratch.

    This is the strongly randomized "Enc'" half of WRE: the paper stores
    an AES encryption of each plaintext next to the weakly-randomized
    search tag (§IV, §VI-A "another column to hold the (strongly
    randomized) AES-encrypted data"). Only the raw block transform lives
    here; the IND-CPA mode is {!Ctr}.

    The S-box is derived algebraically (inverse in GF(2^8) followed by
    the affine map) rather than pasted in, and the implementation is
    validated against the FIPS 197 Appendix B/C vectors. *)

type key
(** Expanded key schedule. *)

val expand : string -> key
(** [expand k] requires a 16-byte key. *)

val encrypt_block : key -> bytes -> off:int -> unit
(** Encrypt 16 bytes of [bytes] in place at [off]. *)

val decrypt_block : key -> bytes -> off:int -> unit
(** Inverse cipher, in place. *)

val encrypt_string : key -> string -> string
(** Convenience: encrypt exactly one 16-byte block. *)

val decrypt_string : key -> string -> string

val block_size : int
(** 16. *)
