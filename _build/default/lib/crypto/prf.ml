type algo = Hmac_sha256 | Siphash24

type key = Hmac_key of string | Siphash_key of Siphash.key

let of_raw ?(algo = Hmac_sha256) raw =
  if String.length raw < 16 then invalid_arg "Prf.of_raw: key must be at least 16 bytes";
  match algo with
  | Hmac_sha256 -> Hmac_key raw
  | Siphash24 -> Siphash_key (Siphash.of_raw (String.sub raw 0 16))

let algo = function Hmac_key _ -> Hmac_sha256 | Siphash_key _ -> Siphash24

let tag_string key input =
  match key with
  | Hmac_key k -> Hmac.mac_u64 ~key:k input
  | Siphash_key k -> Siphash.hash k input

let salt_bytes salt =
  let b = Bytes.create 8 in
  Stdx.Bytes_util.put_u64_be b 0 (Int64.of_int salt);
  Bytes.unsafe_to_string b

let tag key ~salt ~message =
  tag_string key (Stdx.Bytes_util.length_prefixed [ salt_bytes salt; message ])

let tag_salt_only key ~salt = tag_string key (Stdx.Bytes_util.length_prefixed [ salt_bytes salt ])
