(** AES-128-CTR randomized encryption (NIST SP 800-38A).

    This is the IND-CPA secure scheme Π' = (Gen', Enc', Dec') the WRE
    template composes with (paper Fig. 1): it leaks nothing about the
    plaintext beyond its length. Ciphertext layout is
    [nonce (16 bytes) ‖ keystream ⊕ plaintext]; a fresh random nonce is
    drawn for every encryption from the caller-supplied entropy
    source. *)

type key

val of_raw : string -> key
(** 16-byte AES key. *)

val encrypt : key -> nonce:string -> string -> string
(** [encrypt k ~nonce pt] with an exactly-16-byte [nonce]; deterministic
    given the nonce (exposed for tests — use {!encrypt_random} in
    production paths). *)

val encrypt_random : key -> Stdx.Prng.t -> string -> string
(** Encrypt under a fresh random nonce drawn from the given generator. *)

val decrypt : key -> string -> string
(** Raises [Invalid_argument] if the ciphertext is shorter than one
    nonce. *)

val ciphertext_overhead : int
(** Bytes added to every plaintext (the nonce): 16. *)
