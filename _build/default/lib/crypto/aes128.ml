let block_size = 16
let rounds = 10

(* GF(2^8) multiplication with the AES reduction polynomial x^8+x^4+x^3+x+1. *)
let gmul a b =
  let a = ref a and b = ref b and p = ref 0 in
  for _ = 0 to 7 do
    if !b land 1 <> 0 then p := !p lxor !a;
    let hi = !a land 0x80 in
    a := (!a lsl 1) land 0xff;
    if hi <> 0 then a := !a lxor 0x1b;
    b := !b lsr 1
  done;
  !p

(* S-box = affine(inverse). The inverse table is built by brute force
   once at module initialization; 2^16 multiplies is negligible. *)
let sbox, inv_sbox =
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gmul a b = 1 then inv.(a) <- b
    done
  done;
  let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xff in
  let s = Array.make 256 0 and si = Array.make 256 0 in
  for x = 0 to 255 do
    let i = inv.(x) in
    let v = i lxor rotl8 i 1 lxor rotl8 i 2 lxor rotl8 i 3 lxor rotl8 i 4 lxor 0x63 in
    s.(x) <- v;
    si.(v) <- x
  done;
  (s, si)

(* Single-byte multiplication tables for the MixColumns coefficients;
   table lookups keep the per-block cost low enough for 10M-record bulk
   loads. *)
let mul_table c = Array.init 256 (fun x -> gmul x c)

let mul2 = mul_table 2
let mul3 = mul_table 3
let mul9 = mul_table 9
let mul11 = mul_table 11
let mul13 = mul_table 13
let mul14 = mul_table 14

type key = { rk : int array (* (rounds+1) * 16 byte-wise round keys *) }

let expand raw =
  if String.length raw <> 16 then invalid_arg "Aes128.expand: key must be 16 bytes";
  let rk = Array.make ((rounds + 1) * 16) 0 in
  for i = 0 to 15 do
    rk.(i) <- Char.code raw.[i]
  done;
  let rcon = ref 1 in
  (* Words are 4 bytes; word i for i in [4, 44). *)
  for w = 4 to (4 * (rounds + 1)) - 1 do
    let prev = (w - 1) * 4 and back = (w - 4) * 4 and cur = w * 4 in
    let t0, t1, t2, t3 =
      if w mod 4 = 0 then begin
        (* RotWord + SubWord + Rcon *)
        let b0 = sbox.(rk.(prev + 1)) lxor !rcon in
        let b1 = sbox.(rk.(prev + 2)) in
        let b2 = sbox.(rk.(prev + 3)) in
        let b3 = sbox.(rk.(prev)) in
        rcon := gmul !rcon 2;
        (b0, b1, b2, b3)
      end
      else (rk.(prev), rk.(prev + 1), rk.(prev + 2), rk.(prev + 3))
    in
    rk.(cur) <- rk.(back) lxor t0;
    rk.(cur + 1) <- rk.(back + 1) lxor t1;
    rk.(cur + 2) <- rk.(back + 2) lxor t2;
    rk.(cur + 3) <- rk.(back + 3) lxor t3
  done;
  { rk }

let add_round_key state key round =
  let base = round * 16 in
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor key.rk.(base + i)
  done

(* State layout: column-major as in FIPS 197 — state.(4*c + r) is row r,
   column c, matching the byte order of the input block. *)

let shift_rows state =
  (* row 1: rotate left by 1; row 2: by 2; row 3: by 3 *)
  let t = state.(1) in
  state.(1) <- state.(5);
  state.(5) <- state.(9);
  state.(9) <- state.(13);
  state.(13) <- t;
  let t = state.(2) in
  state.(2) <- state.(10);
  state.(10) <- t;
  let t = state.(6) in
  state.(6) <- state.(14);
  state.(14) <- t;
  let t = state.(15) in
  state.(15) <- state.(11);
  state.(11) <- state.(7);
  state.(7) <- state.(3);
  state.(3) <- t

let inv_shift_rows state =
  let t = state.(13) in
  state.(13) <- state.(9);
  state.(9) <- state.(5);
  state.(5) <- state.(1);
  state.(1) <- t;
  let t = state.(2) in
  state.(2) <- state.(10);
  state.(10) <- t;
  let t = state.(6) in
  state.(6) <- state.(14);
  state.(14) <- t;
  let t = state.(3) in
  state.(3) <- state.(7);
  state.(7) <- state.(11);
  state.(11) <- state.(15);
  state.(15) <- t

let mix_columns state =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = state.(i) and a1 = state.(i + 1) and a2 = state.(i + 2) and a3 = state.(i + 3) in
    state.(i) <- mul2.(a0) lxor mul3.(a1) lxor a2 lxor a3;
    state.(i + 1) <- a0 lxor mul2.(a1) lxor mul3.(a2) lxor a3;
    state.(i + 2) <- a0 lxor a1 lxor mul2.(a2) lxor mul3.(a3);
    state.(i + 3) <- mul3.(a0) lxor a1 lxor a2 lxor mul2.(a3)
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = state.(i) and a1 = state.(i + 1) and a2 = state.(i + 2) and a3 = state.(i + 3) in
    state.(i) <- mul14.(a0) lxor mul11.(a1) lxor mul13.(a2) lxor mul9.(a3);
    state.(i + 1) <- mul9.(a0) lxor mul14.(a1) lxor mul11.(a2) lxor mul13.(a3);
    state.(i + 2) <- mul13.(a0) lxor mul9.(a1) lxor mul14.(a2) lxor mul11.(a3);
    state.(i + 3) <- mul11.(a0) lxor mul13.(a1) lxor mul9.(a2) lxor mul14.(a3)
  done

let sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- sbox.(state.(i))
  done

let inv_sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- inv_sbox.(state.(i))
  done

let load state b off =
  for i = 0 to 15 do
    state.(i) <- Char.code (Bytes.get b (off + i))
  done

let store state b off =
  for i = 0 to 15 do
    Bytes.set b (off + i) (Char.chr state.(i))
  done

let encrypt_block key b ~off =
  let state = Array.make 16 0 in
  load state b off;
  add_round_key state key 0;
  for round = 1 to rounds - 1 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state key round
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state key rounds;
  store state b off

let decrypt_block key b ~off =
  let state = Array.make 16 0 in
  load state b off;
  add_round_key state key rounds;
  for round = rounds - 1 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key state key round;
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key state key 0;
  store state b off

let encrypt_string key s =
  if String.length s <> 16 then invalid_arg "Aes128.encrypt_string: need one 16-byte block";
  let b = Bytes.of_string s in
  encrypt_block key b ~off:0;
  Bytes.unsafe_to_string b

let decrypt_string key s =
  if String.length s <> 16 then invalid_arg "Aes128.decrypt_string: need one 16-byte block";
  let b = Bytes.of_string s in
  decrypt_block key b ~off:0;
  Bytes.unsafe_to_string b
