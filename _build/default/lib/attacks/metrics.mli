(** Scoring inference attacks.

    The headline number in the inference-attack literature (and the one
    the paper's motivation cites from Naveed–Kamara–Wright) is the
    fraction of *records* whose plaintext the attack recovers; value
    recovery (fraction of distinct plaintext values guessed right) is
    also reported. *)

type score = {
  record_recovery : float;  (** fraction of records decoded correctly *)
  value_recovery : float;  (** fraction of distinct plaintexts with ≥1 tag mapped to them correctly for a majority of its records *)
  baseline : float;  (** record recovery of always guessing the aux mode *)
}

val score : Snapshot.t -> guess:(int64 -> string option) -> score
(** Evaluate a tag→plaintext mapping against the snapshot's ground
    truth. Unmapped tags count as wrong. *)

val pp : Format.formatter -> score -> unit
