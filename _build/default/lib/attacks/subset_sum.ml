type result = {
  target : string;
  expected_count : int;
  found : bool;
  achieved_sum : int;
  subset : int64 list;
  tag_precision : float;
  tag_recall : float;
}

let attack (snap : Snapshot.t) ~target ?(tolerance = 0) () =
  let n = Snapshot.n_records snap in
  let expected =
    int_of_float (Float.round (Dist.Empirical.prob snap.aux target *. float_of_int n))
  in
  let tags = Array.map fst snap.observations in
  let counts = Array.map snd snap.observations in
  let t = Array.length counts in
  (* dp.(s) = index of the tag whose inclusion first reached sum s
     (-1 unreachable, -2 the empty start). *)
  let cap = min n (expected + tolerance) in
  let dp = Array.make (cap + 1) (-1) in
  dp.(0) <- -2;
  for i = 0 to t - 1 do
    let c = counts.(i) in
    (* Descend so each tag is used at most once. *)
    for s = cap downto c do
      if dp.(s) = -1 && dp.(s - c) <> -1 && dp.(s - c) <> i then dp.(s) <- i
    done
  done;
  (* Best achievable sum inside the tolerance window. *)
  let lo = max 0 (expected - tolerance) in
  let achieved = ref (-1) in
  for s = lo to cap do
    if dp.(s) <> -1 && (!achieved = -1 || abs (s - expected) < abs (!achieved - expected)) then
      achieved := s
  done;
  let subset =
    if !achieved = -1 then []
    else begin
      let acc = ref [] and s = ref !achieved in
      while !s > 0 do
        let i = dp.(!s) in
        assert (i >= 0);
        acc := tags.(i) :: !acc;
        s := !s - counts.(i)
      done;
      !acc
    end
  in
  (* Ground truth: tags actually produced by the target plaintext. *)
  let true_tags = Hashtbl.create 16 in
  Array.iter
    (fun (tag, m) -> if m = target then Hashtbl.replace true_tags tag ())
    snap.records;
  let picked = List.length subset in
  let hit = List.length (List.filter (Hashtbl.mem true_tags) subset) in
  let truth = Hashtbl.length true_tags in
  {
    target;
    expected_count = expected;
    found = !achieved <> -1;
    achieved_sum = max 0 !achieved;
    subset;
    tag_precision = (if picked = 0 then 0.0 else float_of_int hit /. float_of_int picked);
    tag_recall = (if truth = 0 then 0.0 else float_of_int hit /. float_of_int truth);
  }
