lib/attacks/hungarian.mli:
