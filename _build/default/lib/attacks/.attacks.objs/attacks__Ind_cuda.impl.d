lib/attacks/ind_cuda.ml: Array Crypto Dist Float Hashtbl List Option Printf Stdx Wre
