lib/attacks/snapshot.ml: Array Dist Hashtbl Int64 Option Sqldb Wre
