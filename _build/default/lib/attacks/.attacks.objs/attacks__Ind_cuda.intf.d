lib/attacks/ind_cuda.mli: Wre
