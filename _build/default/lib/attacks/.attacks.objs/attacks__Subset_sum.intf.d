lib/attacks/subset_sum.mli: Snapshot
