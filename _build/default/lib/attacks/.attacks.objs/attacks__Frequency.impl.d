lib/attacks/frequency.ml: Array Dist Float Hashtbl Hungarian Option Snapshot Stdx Wre
