lib/attacks/subset_sum.ml: Array Dist Float Hashtbl List Snapshot
