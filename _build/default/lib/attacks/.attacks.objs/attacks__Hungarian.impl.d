lib/attacks/hungarian.ml: Array
