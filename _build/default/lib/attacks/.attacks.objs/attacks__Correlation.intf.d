lib/attacks/correlation.mli: Dist Metrics Stdx Wre
