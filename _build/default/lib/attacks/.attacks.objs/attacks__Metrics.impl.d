lib/attacks/metrics.ml: Array Dist Format Hashtbl Option Snapshot
