lib/attacks/metrics.mli: Format Snapshot
