lib/attacks/correlation.ml: Array Dist Fun Hashtbl Int64 List Metrics Option Snapshot Wre
