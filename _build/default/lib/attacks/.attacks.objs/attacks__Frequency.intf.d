lib/attacks/frequency.mli: Snapshot Wre
