lib/attacks/snapshot.mli: Dist Stdx Wre
