(** Empirical IND-CUDA game (paper Definition 7).

    The challenger draws fresh keys, flips [b], pseudo-randomly
    shuffles the chosen message list M_b, encrypts it, and hands the
    adversary the resulting tag column; the adversary guesses [b].
    Theorem V.1 says the bucketized scheme keeps every
    polynomial adversary at success ½; the plain Poisson scheme is
    ½ + e^{-λτ}-ish. This harness measures concrete adversaries'
    success rates over many trials — the A3 experiment plots the
    advantage shrinking in λ for Poisson and staying ≈0 for
    Bucketized. *)

type adversary = {
  name : string;
  choose : n:int -> string list * string list;
      (** (M₀, M₁), equal lengths, equal message sizes *)
  distinguish : n:int -> kind:Wre.Scheme.kind -> int64 array -> int;
      (** given the shuffled tag column, guess b *)
}

val capped_exponential : adversary
(** The paper's §V-C adversary: M₀ = n distinct messages, M₁ = n copies
    of one message; distinguishes on the number of distinct tags. *)

val max_count : adversary
(** Variant distinguishing on the largest single tag count. *)

type outcome = {
  adversary : string;
  kind : Wre.Scheme.kind;
  trials : int;
  successes : int;
  success_rate : float;
  advantage : float;  (** 2·(rate − ½), clamped at 0 *)
}

val play : kind:Wre.Scheme.kind -> adversary -> n:int -> trials:int -> seed:int64 -> outcome
(** Runs the full game [trials] times with fresh keys each time. *)
