type view = {
  records : ((int64 * int64) * (string * string)) array;
  aux_a : Dist.Empirical.t;
  aux_b : Dist.Empirical.t;
}

let of_columns enc_a enc_b g ~pairs =
  let records =
    Array.map
      (fun (a, b) ->
        let tag_a, _ = Wre.Column_enc.encrypt enc_a g a in
        let tag_b, _ = Wre.Column_enc.encrypt enc_b g b in
        ((tag_a, tag_b), (a, b)))
      pairs
  in
  {
    records;
    aux_a = Dist.Empirical.of_values (Array.to_seq (Array.map fst pairs));
    aux_b = Dist.Empirical.of_values (Array.to_seq (Array.map snd pairs));
  }

(* Plug-in MI over generic pair observations. *)
let mi_of_pairs pairs =
  let n = float_of_int (Array.length pairs) in
  if n = 0.0 then 0.0
  else begin
    let joint = Hashtbl.create 1024 and ma = Hashtbl.create 256 and mb = Hashtbl.create 256 in
    let bump table key = Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)) in
    Array.iter
      (fun (a, b) ->
        bump joint (a, b);
        bump ma a;
        bump mb b)
      pairs;
    let log2 x = log x /. log 2.0 in
    Hashtbl.fold
      (fun (a, b) c acc ->
        let p_ab = float_of_int c /. n in
        let p_a = float_of_int (Hashtbl.find ma a) /. n in
        let p_b = float_of_int (Hashtbl.find mb b) /. n in
        acc +. (p_ab *. log2 (p_ab /. (p_a *. p_b))))
      joint 0.0
  end

let mutual_information_bits view side =
  match side with
  | `Tags -> mi_of_pairs (Array.map (fun (tags, _) -> tags) view.records)
  | `Plain -> mi_of_pairs (Array.map (fun (_, plain) -> plain) view.records)

(* ---------------- Linkage attack ---------------- *)

type result = { components : int; score : Metrics.score }

module Union_find = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

  let rec find t x =
    if t.parent.(x) = x then x
    else begin
      let root = find t t.parent.(x) in
      t.parent.(x) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1
      end
end

let linkage_attack view =
  (* Index the distinct tag_b values. *)
  let b_index = Hashtbl.create 1024 in
  Array.iter
    (fun ((_, tag_b), _) ->
      if not (Hashtbl.mem b_index tag_b) then Hashtbl.replace b_index tag_b (Hashtbl.length b_index))
    view.records;
  let n_b = Hashtbl.length b_index in
  let uf = Union_find.create n_b in
  (* All tag_b co-occurring with one tag_a belong together. *)
  let first_b_of_a = Hashtbl.create 1024 in
  Array.iter
    (fun ((tag_a, tag_b), _) ->
      let b = Hashtbl.find b_index tag_b in
      match Hashtbl.find_opt first_b_of_a tag_a with
      | None -> Hashtbl.replace first_b_of_a tag_a b
      | Some b0 -> Union_find.union uf b0 b)
    view.records;
  (* Component record masses. *)
  let comp_count = Hashtbl.create 256 in
  Array.iter
    (fun ((_, tag_b), _) ->
      let root = Union_find.find uf (Hashtbl.find b_index tag_b) in
      Hashtbl.replace comp_count root (1 + Option.value ~default:0 (Hashtbl.find_opt comp_count root)))
    view.records;
  (* Rank-match components (by mass) against the aux distribution of
     column a. *)
  let comps =
    List.sort
      (fun (_, c0) (_, c1) -> compare c1 c0)
      (Hashtbl.fold (fun root c acc -> (root, c) :: acc) comp_count [])
  in
  let support = Dist.Empirical.support view.aux_a in
  let guess_of_root = Hashtbl.create 256 in
  List.iteri
    (fun rank (root, _) ->
      if rank < Array.length support then Hashtbl.replace guess_of_root root support.(rank))
    comps;
  (* Score on column a via a synthetic snapshot keyed by tag_b: each
     record's guess is its component's label. *)
  let snapshot_records =
    Array.map (fun ((_, tag_b), (a, _)) -> (tag_b, a)) view.records
  in
  let guess tag_b =
    match Hashtbl.find_opt b_index tag_b with
    | None -> None
    | Some b -> Hashtbl.find_opt guess_of_root (Union_find.find uf b)
  in
  let observations =
    let counts = Hashtbl.create 1024 in
    Array.iter
      (fun (tag, _) ->
        Hashtbl.replace counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag)))
      snapshot_records;
    let obs = Array.of_seq (Hashtbl.to_seq counts) in
    Array.sort (fun (t0, c0) (t1, c1) -> if c0 <> c1 then compare c1 c0 else Int64.compare t0 t1) obs;
    obs
  in
  let snap = { Snapshot.observations; records = snapshot_records; aux = view.aux_a } in
  { components = List.length comps; score = Metrics.score snap ~guess }
