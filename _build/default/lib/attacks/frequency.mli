(** Frequency-analysis inference attacks (Naveed–Kamara–Wright style).

    Three attackers of increasing sophistication, all consuming only
    the snapshot view:

    - {!rank_matching}: sort tags by observed count, plaintexts by aux
      probability, match rank to rank — classical frequency analysis.
    - {!l1_matching}: the ℓ1-optimal assignment (Hungarian) between
      tags and plaintexts; NKW's "frequency analysis is ℓ1-optimal"
      attacker. When there are more tags than plaintexts, plaintext
      slots are replicated in proportion to the scheme's expected
      tags-per-plaintext so multi-salt schemes are attacked on their
      own terms.
    - {!greedy_likelihood}: each tag is independently assigned the
      plaintext whose expected per-tag frequency (under a known scheme)
      is closest — the natural scheme-aware attack against Fixed and
      Proportional salts.

    Against DET these recover essentially the whole database; against
    correctly parameterized Poisson/Bucketized WRE they collapse to
    the guess-the-mode baseline — the A2 ablation regenerates that
    comparison. *)

val rank_matching : Snapshot.t -> int64 -> string option

val l1_matching : ?max_tags:int -> Snapshot.t -> kind:Wre.Scheme.kind -> int64 -> string option
(** [max_tags] (default 2000) caps the assignment size for the cubic
    solver; beyond it only the most frequent tags are matched (the
    rest return [None] — attacks degrade, which is itself the point). *)

val greedy_likelihood : Snapshot.t -> kind:Wre.Scheme.kind -> int64 -> string option
