(** Cross-column correlation attacks.

    Theorem V.1 is titled *Single-Column* Security for a reason: a
    snapshot adversary sees whole rows, so the joint distribution of
    tag pairs across two encrypted columns is also leaked. When the
    plaintext columns are correlated — city and zip are the canonical
    pair — that joint structure survives any per-column frequency
    smoothing: all the search tags of one zip co-occur only with the
    search tags of its city, so connected components of the tag
    co-occurrence graph reconstruct the city partition, and component
    masses can then be rank-matched against the auxiliary city
    distribution.

    This module quantifies that residual leakage (the A6 ablation):
    {!mutual_information_bits} measures it information-theoretically,
    {!linkage_attack} turns it into record recovery. Bucketized salts
    blunt the attack (buckets are shared across plaintexts, so
    components merge), which the ablation also shows. *)

type view = {
  records : ((int64 * int64) * (string * string)) array;
      (** per record: (tag_a, tag_b) and ground truth (a, b) *)
  aux_a : Dist.Empirical.t;  (** auxiliary marginal of column a *)
  aux_b : Dist.Empirical.t;
}

val of_columns :
  Wre.Column_enc.t ->
  Wre.Column_enc.t ->
  Stdx.Prng.t ->
  pairs:(string * string) array ->
  view
(** Encrypt each (a, b) pair through the two column encryptors and
    collect the tag columns plus ground truth. *)

val mutual_information_bits : view -> [ `Tags | `Plain ] -> float
(** Plug-in estimate of I(A; B) between the two tag columns ([`Tags])
    or the two plaintext columns ([`Plain]). Equal plaintext MI with
    near-zero tag MI would mean the correlation is hidden; WRE does
    not achieve that. *)

type result = {
  components : int;  (** connected components found in the tag graph *)
  score : Metrics.score;  (** recovery of column a via the linkage *)
}

val linkage_attack : view -> result
(** Union tag_b nodes that co-occur with a common tag_a; rank-match
    the resulting component masses against [aux_a]; score each
    record's column-a guess. *)
