(* Potentials formulation with 1-based sentinel row/column 0, after the
   classic competitive-programming presentation (e-maxx). *)

let solve cost =
  let n = Array.length cost in
  if n = 0 then [||]
  else begin
    let m = Array.length cost.(0) in
    if n > m then invalid_arg "Hungarian.solve: need rows <= columns";
    Array.iter
      (fun row -> if Array.length row <> m then invalid_arg "Hungarian.solve: ragged matrix")
      cost;
    let u = Array.make (n + 1) 0.0 and v = Array.make (m + 1) 0.0 in
    let p = Array.make (m + 1) 0 (* column j matched to row p.(j) *) in
    let way = Array.make (m + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (m + 1) infinity in
      let used = Array.make (m + 1) false in
      let continue = ref true in
      while !continue do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity and j1 = ref 0 in
        for j = 1 to m do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to m do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue := false
      done;
      (* Augment along the alternating path. *)
      let j = ref !j0 in
      while !j <> 0 do
        let j1 = way.(!j) in
        p.(!j) <- p.(j1);
        j := j1
      done
    done;
    let assignment = Array.make n (-1) in
    for j = 1 to m do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    assignment
  end

let total_cost cost assignment =
  let acc = ref 0.0 in
  Array.iteri (fun i j -> acc := !acc +. cost.(i).(j)) assignment;
  !acc
