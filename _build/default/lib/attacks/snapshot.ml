type t = {
  observations : (int64 * int) array;
  records : (int64 * string) array;
  aux : Dist.Empirical.t;
}

let observations_of_records records =
  let counts = Hashtbl.create 1024 in
  Array.iter
    (fun (tag, _) ->
      Hashtbl.replace counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag)))
    records;
  let obs = Array.of_seq (Hashtbl.to_seq counts) in
  Array.sort
    (fun (t0, c0) (t1, c1) -> if c0 <> c1 then compare c1 c0 else Int64.compare t0 t1)
    obs;
  obs

let of_column enc g ~plaintexts =
  let records =
    Array.map
      (fun m ->
        let tag, _ct = Wre.Column_enc.encrypt enc g m in
        (tag, m))
      plaintexts
  in
  {
    observations = observations_of_records records;
    records;
    aux = Dist.Empirical.of_values (Array.to_seq plaintexts);
  }

let of_table edb ~column ~plaintexts =
  let table = Wre.Encrypted_db.table edb in
  let schema = Sqldb.Table.schema table in
  let tag_pos = Sqldb.Schema.column_index schema (Wre.Encrypted_db.tag_column column) in
  let n = Sqldb.Table.row_count table in
  if n <> Array.length plaintexts then
    invalid_arg "Snapshot.of_table: ground truth length does not match table";
  let records =
    Array.init n (fun id ->
        match (Sqldb.Table.peek_row table id).(tag_pos) with
        | Sqldb.Value.Int tag -> (tag, plaintexts.(id))
        | v -> invalid_arg ("Snapshot.of_table: non-int tag " ^ Sqldb.Value.to_string v))
  in
  {
    observations = observations_of_records records;
    records;
    aux = Dist.Empirical.of_values (Array.to_seq plaintexts);
  }

let n_records t = Array.length t.records
let n_distinct_tags t = Array.length t.observations

let tag_frequencies t =
  let n = float_of_int (n_records t) in
  Array.map (fun (_, c) -> float_of_int c /. n) t.observations
