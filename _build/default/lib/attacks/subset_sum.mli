(** The Lacharité–Paterson counting attack (paper §V-C "Limitations").

    Against (non-bucketized) Poisson WRE the adversary knows each
    plaintext's expected record count [P_M(m)·n] and can search for a
    subset of observed tag counts summing to it. Solving the subset-sum
    instance is easy in practice (counts are small integers); the
    paper's observation is that a solution need not be the *correct*
    one — {!attack} therefore reports both whether a subset was found
    and how much of it is actually right, and the A2/attacks bench
    shows the correctness collapsing as λ grows while bucketization
    removes the attack entirely. *)

type result = {
  target : string;
  expected_count : int;  (** the adversary's target sum *)
  found : bool;  (** a subset within tolerance exists *)
  achieved_sum : int;
  subset : int64 list;  (** the tags picked *)
  tag_precision : float;  (** |picked ∩ true| / |picked| *)
  tag_recall : float;  (** |picked ∩ true| / |true| *)
}

val attack : Snapshot.t -> target:string -> ?tolerance:int -> unit -> result
(** Dynamic-programming subset sum over the snapshot's tag counts,
    reconstructing one witness subset. [tolerance] (default 0) accepts
    any sum in [expected ± tolerance]. *)
