(** Hungarian algorithm (Kuhn–Munkres) for min-cost assignment.

    Frequency analysis phrased as an optimization — find the
    tag-to-plaintext matching minimizing total ℓ1 distance between
    observed tag frequencies and auxiliary plaintext frequencies — is
    the optimal-attack formulation of Naveed–Kamara–Wright. This is the
    O(n²·m) potentials implementation. *)

val solve : float array array -> int array
(** [solve cost] for an [n × m] matrix with [n ≤ m] returns
    [assignment] with [assignment.(i)] the column matched to row [i];
    columns are used at most once and total cost is minimal.
    Raises [Invalid_argument] if [n > m] or the matrix is ragged. *)

val total_cost : float array array -> int array -> float
