(** The snapshot adversary's view and ground truth.

    The paper's threat model (§I, §III) gives the adversary exactly
    one artifact: the encrypted database at rest — here, the multiset
    of search tags of one column — plus auxiliary knowledge of the
    plaintext distribution. This module packages that view, and keeps
    the ground truth (which tag each record's plaintext produced)
    alongside so attack accuracy can be scored. *)

type t = {
  observations : (int64 * int) array;
      (** distinct tags with their counts, descending by count *)
  records : (int64 * string) array;
      (** per record: its tag and (ground truth) its plaintext *)
  aux : Dist.Empirical.t;  (** the adversary's auxiliary distribution *)
}

val of_column : Wre.Column_enc.t -> Stdx.Prng.t -> plaintexts:string array -> t
(** Encrypt each plaintext once through the column encryptor and
    collect the tag column — the snapshot an attacker of §I obtains by
    stealing a backup. The auxiliary information is the exact empirical
    distribution of [plaintexts] (the strongest realistic aux). *)

val of_table :
  Wre.Encrypted_db.t -> column:string -> plaintexts:string array -> t
(** Snapshot the tag column of an existing encrypted table. The
    [plaintexts] array gives the ground truth in row order. *)

val n_records : t -> int
val n_distinct_tags : t -> int

val tag_frequencies : t -> float array
(** Observed tag counts normalized by the record count, descending. *)
