type adversary = {
  name : string;
  choose : n:int -> string list * string list;
  distinguish : n:int -> kind:Wre.Scheme.kind -> int64 array -> int;
}

let distinct_count tags =
  let seen = Hashtbl.create (Array.length tags) in
  Array.iter (fun t -> Hashtbl.replace seen t ()) tags;
  Hashtbl.length seen

let max_count_of tags =
  let counts = Hashtbl.create (Array.length tags) in
  Array.iter
    (fun t -> Hashtbl.replace counts t (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)))
    tags;
  Hashtbl.fold (fun _ c acc -> max c acc) counts 0

let unique_messages n = List.init n (Printf.sprintf "msg-%06d")
let repeated_message n = List.init n (fun _ -> "msg-000000")

(* Expected distinct tag count when all n records encrypt ONE message:
   with per-message salts it is ≈ the salt count; with distinct
   messages it is exactly n. Guess b by which side the observation is
   closer to. *)
let expected_single_message_tags kind n =
  match kind with
  | Wre.Scheme.Det -> 1.0
  | Wre.Scheme.Fixed k -> Float.min (float_of_int k) (float_of_int n)
  | Wre.Scheme.Proportional _ -> Float.min (float_of_int n) (float_of_int n)
  | Wre.Scheme.Poisson lambda | Wre.Scheme.Bucketized lambda ->
      Float.min (lambda +. 1.0) (float_of_int n)

let capped_exponential =
  {
    name = "capped-exponential";
    choose = (fun ~n -> (unique_messages n, repeated_message n));
    distinguish =
      (fun ~n ~kind tags ->
        let d = float_of_int (distinct_count tags) in
        let expect_m1 = expected_single_message_tags kind n in
        let expect_m0 = float_of_int n in
        if Float.abs (d -. expect_m0) <= Float.abs (d -. expect_m1) then 0 else 1);
  }

let max_count =
  {
    name = "max-count";
    choose = (fun ~n -> (unique_messages n, repeated_message n));
    distinguish =
      (fun ~n ~kind tags ->
        let m = float_of_int (max_count_of tags) in
        (* Under M0 every tag count is ~1 (plus PRF luck); under M1 the
           heaviest salt of the single message carries many records. *)
        let expect_m1 = Float.max 1.0 (float_of_int n /. expected_single_message_tags kind n) in
        if Float.abs (m -. 1.0) <= Float.abs (m -. expect_m1) then 0 else 1);
  }

type outcome = {
  adversary : string;
  kind : Wre.Scheme.kind;
  trials : int;
  successes : int;
  success_rate : float;
  advantage : float;
}

let play ~kind adv ~n ~trials ~seed =
  if n <= 0 || trials <= 0 then invalid_arg "Ind_cuda.play: n and trials must be positive";
  let g = Stdx.Prng.create seed in
  let m0, m1 = adv.choose ~n in
  if List.length m0 <> List.length m1 then invalid_arg "Ind_cuda.play: |M0| <> |M1|";
  let successes = ref 0 in
  for _ = 1 to trials do
    let master = Crypto.Keys.generate g in
    let b = if Stdx.Prng.bool g then 1 else 0 in
    let chosen = Array.of_list (if b = 0 then m0 else m1) in
    (* The challenger's PRS: a keyed shuffle under a fresh key. *)
    let shuffled =
      Crypto.Prs.shuffle
        ~key:(Crypto.Keys.shuffle_key master ~column:"challenge")
        ~context:"ind-cuda" chosen
    in
    let dist = Dist.Empirical.of_values (Array.to_seq shuffled) in
    let enc = Wre.Column_enc.create ~master ~column:"game" ~kind ~dist () in
    let tags = Array.map (fun m -> fst (Wre.Column_enc.encrypt enc g m)) shuffled in
    let guess = adv.distinguish ~n ~kind tags in
    if guess = b then incr successes
  done;
  let rate = float_of_int !successes /. float_of_int trials in
  {
    adversary = adv.name;
    kind;
    trials;
    successes = !successes;
    success_rate = rate;
    advantage = Float.max 0.0 (2.0 *. (rate -. 0.5));
  }
