let rank_matching (snap : Snapshot.t) =
  let support = Dist.Empirical.support snap.aux in
  let mapping = Hashtbl.create (Array.length snap.observations) in
  Array.iteri
    (fun rank (tag, _count) ->
      if rank < Array.length support then Hashtbl.replace mapping tag support.(rank))
    snap.observations;
  fun tag -> Hashtbl.find_opt mapping tag

(* Expected frequency of one tag of plaintext [m] under [kind]. *)
let expected_tag_freq kind aux m =
  let p = Dist.Empirical.prob aux m in
  p /. Wre.Scheme.expected_tags_per_plaintext kind ~dist:aux m

let l1_matching ?(max_tags = 2000) (snap : Snapshot.t) ~kind =
  let support = Dist.Empirical.support snap.aux in
  let n_records = float_of_int (Snapshot.n_records snap) in
  (* Build plaintext "slots": each plaintext appears once per expected
     tag so the assignment can be one-to-one. *)
  let slots = Stdx.Vec.create () in
  Array.iter
    (fun m ->
      let k =
        int_of_float (Float.round (Wre.Scheme.expected_tags_per_plaintext kind ~dist:snap.aux m))
      in
      for _ = 1 to max 1 k do
        Stdx.Vec.push slots m
      done)
    support;
  let slots = Stdx.Vec.to_array slots in
  let tags = Array.sub snap.observations 0 (min max_tags (Array.length snap.observations)) in
  let n = Array.length tags and m_slots = Array.length slots in
  let mapping = Hashtbl.create n in
  if n > 0 && m_slots > 0 then begin
    (* Rows must not exceed columns for the solver; drop the rarest
       tags if the snapshot has more tags than slots. *)
    let n = min n m_slots in
    let tags = Array.sub tags 0 n in
    let cost =
      Array.map
        (fun (_, count) ->
          let f_obs = float_of_int count /. n_records in
          Array.map (fun m -> Float.abs (f_obs -. expected_tag_freq kind snap.aux m)) slots)
        tags
    in
    let assignment = Hungarian.solve cost in
    Array.iteri (fun i (tag, _) -> Hashtbl.replace mapping tag slots.(assignment.(i))) tags
  end;
  fun tag -> Hashtbl.find_opt mapping tag

let greedy_likelihood (snap : Snapshot.t) ~kind =
  let support = Dist.Empirical.support snap.aux in
  let n_records = float_of_int (Snapshot.n_records snap) in
  let expected = Array.map (fun m -> (m, expected_tag_freq kind snap.aux m)) support in
  let mapping = Hashtbl.create (Array.length snap.observations) in
  Array.iter
    (fun (tag, count) ->
      let f_obs = float_of_int count /. n_records in
      let best = ref None and best_d = ref infinity in
      Array.iter
        (fun (m, f_exp) ->
          let d = Float.abs (f_obs -. f_exp) in
          if d < !best_d then begin
            best_d := d;
            best := Some m
          end)
        expected;
      Option.iter (fun m -> Hashtbl.replace mapping tag m) !best)
    snap.observations;
  fun tag -> Hashtbl.find_opt mapping tag
