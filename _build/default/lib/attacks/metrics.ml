type score = { record_recovery : float; value_recovery : float; baseline : float }

let score (snap : Snapshot.t) ~guess =
  let n = Array.length snap.records in
  if n = 0 then invalid_arg "Metrics.score: empty snapshot";
  (* Per-record accuracy. *)
  let correct = ref 0 in
  (* Per-value: a value counts as recovered when the majority of its
     records are decoded to it. *)
  let per_value_total = Hashtbl.create 64 and per_value_hit = Hashtbl.create 64 in
  Array.iter
    (fun (tag, truth) ->
      let hit = match guess tag with Some g -> g = truth | None -> false in
      if hit then incr correct;
      Hashtbl.replace per_value_total truth
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_value_total truth));
      if hit then
        Hashtbl.replace per_value_hit truth
          (1 + Option.value ~default:0 (Hashtbl.find_opt per_value_hit truth)))
    snap.records;
  let values = Hashtbl.length per_value_total in
  let recovered_values =
    Hashtbl.fold
      (fun v total acc ->
        let hits = Option.value ~default:0 (Hashtbl.find_opt per_value_hit v) in
        if 2 * hits > total then acc + 1 else acc)
      per_value_total 0
  in
  {
    record_recovery = float_of_int !correct /. float_of_int n;
    value_recovery = float_of_int recovered_values /. float_of_int values;
    baseline = Dist.Empirical.max_prob snap.aux;
  }

let pp ppf s =
  Format.fprintf ppf "records %.1f%% / values %.1f%% (baseline %.1f%%)"
    (100.0 *. s.record_recovery) (100.0 *. s.value_recovery) (100.0 *. s.baseline)
