open Sqldb

type t = { edb : Encrypted_db.t }

let create edb = { edb }

type rewritten = {
  server_sql : string;
  server_predicate : Predicate.t;
  residual : Predicate.t;
}

type query_result = {
  columns : string list;
  rows : Value.t array list;
  affected : int;
  server_rows : int;
  exec : Executor.result option;
}

(* Split a plaintext predicate into (server part, residual part).
   Only AND-combinations distribute; any leg the server cannot check
   becomes residual. A leg is server-checkable when it is:
   - Eq/In on an encrypted (searchable) column -> rewritten to tags;
   - Eq/In/Range on the plaintext key column -> passed through. *)
let rec split t key_column = function
  | Predicate.True -> Ok (Predicate.True, Predicate.True)
  | Predicate.And ps ->
      let rec go acc_server acc_res = function
        | [] -> Ok (Predicate.And (List.rev acc_server), Predicate.And (List.rev acc_res))
        | p :: rest -> (
            match split t key_column p with
            | Error e -> Error e
            | Ok (s, r) -> go (s :: acc_server) (r :: acc_res) rest)
      in
      go [] [] ps
  | Predicate.Eq (col, Value.Text v) when List.mem col (Encrypted_db.encrypted_columns t.edb) ->
      Ok (Encrypted_db.search_predicate t.edb ~column:col v, Predicate.Eq (col, Value.Text v))
  | Predicate.In (col, vs) when List.mem col (Encrypted_db.encrypted_columns t.edb) ->
      (* OR of per-value tag lists; each value may be a Text. *)
      let rec tags acc = function
        | [] -> Ok (List.concat (List.rev acc))
        | Value.Text v :: rest -> (
            match Encrypted_db.search_predicate t.edb ~column:col v with
            | Predicate.In (_, ts) -> tags (ts :: acc) rest
            | _ -> Error "unexpected rewrite shape")
        | _ -> Error (Printf.sprintf "IN-list on encrypted column %S must hold strings" col)
      in
      Result.map
        (fun ts -> (Predicate.In (Encrypted_db.tag_column col, ts), Predicate.In (col, vs)))
        (tags [] vs)
  | Predicate.Eq (col, _) when List.mem col (Encrypted_db.encrypted_columns t.edb) ->
      Error (Printf.sprintf "encrypted column %S only supports string equality" col)
  | (Predicate.Eq (col, _) | Predicate.In (col, _) | Predicate.Range (col, _, _)) as p
    when col = key_column ->
      Ok (p, Predicate.True)
  | Predicate.Range (col, lo, hi) as p
    when List.mem col (Encrypted_db.range_columns t.edb) -> (
      (* Bucketized range rewrite: overlapping buckets server-side, the
         true range client-side. *)
      let bound = function
        | None -> Ok None
        | Some (Value.Int x) -> Ok (Some x)
        | Some _ -> Error (Printf.sprintf "range column %S takes integer bounds" col)
      in
      match (bound lo, bound hi) with
      | Ok lo', Ok hi' -> Ok (Encrypted_db.range_predicate t.edb ~column:col ~lo:lo' ~hi:hi', p)
      | Error e, _ | _, Error e -> Error e)
  | Predicate.Eq (col, Value.Int x) when List.mem col (Encrypted_db.range_columns t.edb) ->
      (* Point query on a range column = one-bucket range. *)
      Ok
        ( Encrypted_db.range_predicate t.edb ~column:col ~lo:(Some x) ~hi:(Some x),
          Predicate.Eq (col, Value.Int x) )
  | p ->
      (* Not server-checkable: full client-side filter. The server leg
         is True (no restriction). *)
      Ok (Predicate.True, p)

(* Compact nested True/And noise for readable server SQL. *)
let rec simplify = function
  | Predicate.And ps ->
      let ps = List.filter (fun p -> p <> Predicate.True) (List.map simplify ps) in
      (match ps with [] -> Predicate.True | [ p ] -> p | ps -> Predicate.And ps)
  | Predicate.Or ps -> Predicate.Or (List.map simplify ps)
  | Predicate.Not p -> Predicate.Not (simplify p)
  | p -> p

let rewrite_select t (s : Sql.select) =
  match split t (Encrypted_db.key_column t.edb) s.where with
  | Error e -> Error e
  | Ok (server, residual) ->
      let server = simplify server and residual = simplify residual in
      let server_sql =
        Format.asprintf "SELECT * FROM %s WHERE %a" s.table Predicate.pp server
      in
      Ok { server_sql; server_predicate = server; residual }

(* Shared SELECT/DELETE/UPDATE front half: run the rewritten server
   query, decrypt, apply the residual predicate; returns surviving
   (row_id, plaintext_row) pairs plus the raw executor result. *)
let fetch_matching t where =
  match split t (Encrypted_db.key_column t.edb) where with
  | Error e -> Error e
  | Ok (server, residual) -> (
      let server = simplify server and residual = simplify residual in
      let table = Encrypted_db.table t.edb in
      match Executor.run table ~projection:Executor.All_columns server with
      | exception Not_found -> Error "predicate references an unknown column"
      | exec -> (
          let plain_schema = Encrypted_db.plain_schema t.edb in
          match Predicate.compile plain_schema residual with
          | exception Not_found -> Error "residual predicate references an unknown column"
          | eval ->
              let pairs =
                Array.to_list exec.row_ids
                |> List.mapi (fun i id -> (id, Encrypted_db.decrypt_row t.edb exec.rows.(i)))
                |> List.filter (fun (_, plain) -> eval plain)
              in
              Ok (pairs, exec)))

let execute t src =
  match Sql.parse src with
  | Error e -> Error e
  | Ok (Sql.Create_table _) -> Error "the proxy does not rewrite CREATE TABLE"
  | Ok (Sql.Delete { table = _; where }) -> (
      match fetch_matching t where with
      | Error e -> Error e
      | Ok (pairs, exec) ->
          let n =
            List.fold_left
              (fun acc (id, _) -> if Encrypted_db.delete_row t.edb id then acc + 1 else acc)
              0 pairs
          in
          Ok
            {
              columns = [];
              rows = [];
              affected = n;
              server_rows = Array.length exec.row_ids;
              exec = Some exec;
            })
  | Ok (Sql.Update { table = _; assignments; where }) -> (
      let plain_schema = Encrypted_db.plain_schema t.edb in
      match List.map (fun (c, v) -> (Schema.column_index plain_schema c, v)) assignments with
      | exception Not_found -> Error "SET references an unknown column"
      | positions -> (
          match fetch_matching t where with
          | Error e -> Error e
          | Ok (pairs, exec) -> (
              match
                List.iter
                  (fun (id, plain) ->
                    let row = Array.copy plain in
                    List.iter (fun (i, v) -> row.(i) <- v) positions;
                    ignore (Encrypted_db.delete_row t.edb id);
                    ignore (Encrypted_db.insert t.edb row))
                  pairs
              with
              | () ->
                  Ok
                    {
                      columns = [];
                      rows = [];
                      affected = List.length pairs;
                      server_rows = Array.length exec.row_ids;
                      exec = Some exec;
                    }
              | exception Invalid_argument e -> Error e
              | exception Column_enc.Unknown_plaintext v ->
                  Error (Printf.sprintf "plaintext %S is outside the profiled distribution" v))))
  | Ok (Sql.Insert { table = _; values }) -> (
      match Encrypted_db.insert t.edb (Array.of_list values) with
      | _id -> Ok { columns = []; rows = []; affected = 1; server_rows = 0; exec = None }
      | exception Invalid_argument e -> Error e
      | exception Column_enc.Unknown_plaintext v ->
          Error (Printf.sprintf "plaintext %S is outside the profiled distribution" v))
  | Ok (Sql.Select s) -> (
      match rewrite_select t s with
      | Error e -> Error e
      | Ok { server_predicate; residual; _ } -> (
          let table = Encrypted_db.table t.edb in
          match Executor.run table ~projection:Executor.All_columns server_predicate with
          | exception Not_found -> Error "predicate references an unknown column"
          | exec ->
              (* Decrypt, then apply the residual plaintext predicate
                 (this also removes bucketized false positives, since
                 the rewritten equality stays in the residual). *)
              let decrypted =
                List.map (fun r -> Encrypted_db.decrypt_row t.edb r) (Array.to_list exec.rows)
              in
              (* Resolve residual against the plaintext schema. *)
              let plain_schema =
                (* decrypt_row returns rows in plain-schema order; we
                   need that schema for compilation. *)
                Encrypted_db.plain_schema t.edb
              in
              (match Predicate.compile plain_schema residual with
              | exception Not_found -> Error "residual predicate references an unknown column"
              | eval -> (
                  let kept = List.filter eval decrypted in
                  let limited =
                    match s.limit with
                    | None -> kept
                    | Some n -> List.filteri (fun i _ -> i < n) kept
                  in
                  match s.projection with
                  | `Star ->
                      let columns =
                        List.map
                          (fun (c : Schema.column) -> c.name)
                          (Array.to_list (Schema.columns plain_schema))
                      in
                      Ok { columns; rows = limited; affected = 0; server_rows = Array.length exec.rows; exec = Some exec }
                  | `Columns cols -> (
                      match
                        List.map (fun c -> (c, Schema.column_index plain_schema c)) cols
                      with
                      | exception Not_found -> Error "projected column does not exist"
                      | pairs ->
                          let rows =
                            List.map
                              (fun row -> Array.of_list (List.map (fun (_, i) -> row.(i)) pairs))
                              limited
                          in
                          Ok
                            {
                              columns = cols;
                              rows;
                              affected = 0;
                              server_rows = Array.length exec.rows;
                              exec = Some exec;
                            })))))
