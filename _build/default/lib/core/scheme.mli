(** WRE scheme variants and their security parameters.

    One constructor per salt-allocation strategy from paper §V, plus
    deterministic encryption as the degenerate baseline. The parameter
    is the paper's security knob: number of salts for Fixed, total tag
    budget for Proportional, Poisson rate λ for the two Poisson
    variants. *)

type kind =
  | Det  (** one salt per plaintext — deterministic ESE, the baseline broken by inference attacks *)
  | Fixed of int  (** §V-A: [N] salts per plaintext, uniform *)
  | Proportional of int  (** §V-B: [N_T] total tags, allocated ∝ P_M(m) *)
  | Poisson of float  (** §V-C / Algorithm 1: rate λ per-plaintext Poisson process *)
  | Bucketized of float  (** §V-C1 / Algorithm 2: rate λ global Poisson process, IND-CUDA secure *)

val to_string : kind -> string
(** Stable label, e.g. ["poisson-1000"]; used in reports and key
    derivation contexts. *)

val of_string : string -> (kind, string) result
(** Inverse of {!to_string} (accepts ["det"], ["fixed-N"],
    ["proportional-N"], ["poisson-L"], ["bucketized-L"]). *)

val expected_tags_per_plaintext : kind -> dist:Dist.Empirical.t -> string -> float
(** Expected number of distinct search tags a value's queries must
    enumerate — the query-cost driver of Figs. 4–7. *)

val is_bucketized : kind -> bool
(** Bucketized schemes tag with [F(s)] instead of [F(s‖m)] and can
    return false positives. *)
