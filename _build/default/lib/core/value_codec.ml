open Sqldb

let encode = function
  | Value.Null -> "N"
  | Value.Int x ->
      let b = Bytes.create 9 in
      Bytes.set b 0 'I';
      Stdx.Bytes_util.put_u64_be b 1 x;
      Bytes.unsafe_to_string b
  | Value.Real x ->
      let b = Bytes.create 9 in
      Bytes.set b 0 'R';
      Stdx.Bytes_util.put_u64_be b 1 (Int64.bits_of_float x);
      Bytes.unsafe_to_string b
  | Value.Text s -> "T" ^ s
  | Value.Blob s -> "B" ^ s

let decode s =
  if String.length s = 0 then Error "empty encoding"
  else
    match s.[0] with
    | 'N' -> if String.length s = 1 then Ok Value.Null else Error "trailing bytes after NULL"
    | 'I' ->
        if String.length s = 9 then Ok (Value.Int (Stdx.Bytes_util.get_u64_be s 1))
        else Error "INT payload must be 8 bytes"
    | 'R' ->
        if String.length s = 9 then
          Ok (Value.Real (Int64.float_of_bits (Stdx.Bytes_util.get_u64_be s 1)))
        else Error "REAL payload must be 8 bytes"
    | 'T' -> Ok (Value.Text (String.sub s 1 (String.length s - 1)))
    | 'B' -> Ok (Value.Blob (String.sub s 1 (String.length s - 1)))
    | c -> Error (Printf.sprintf "unknown type byte %C" c)

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg ("Value_codec.decode_exn: " ^ e)
