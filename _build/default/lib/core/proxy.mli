(** Query-rewriting proxy: the paper's deployment story.

    §I: an efficiently searchable encryption "might be done through a
    query proxy rather than a complex database construction" — the
    CryptDB model. Applications speak plaintext SQL against the
    original schema; the proxy rewrites each statement for the
    encrypted table, sends it to the unmodified server, decrypts the
    answer and applies any residual filtering client-side.

    Rewriting rules for a SELECT:
    - equality / IN on an encrypted column → [col_tag IN (tags…)];
    - predicates on the plaintext key column pass through;
    - anything else (predicates on non-searchable columns, negations,
      disjunctions across columns) cannot be evaluated by the server —
      it stays as a client-side filter over the decrypted rows, and the
      server-side predicate keeps only the AND-legs it can handle.

    INSERT statements are encrypted field-by-field. *)

type t

val create : Encrypted_db.t -> t

type rewritten = {
  server_sql : string;  (** what actually goes to the DBMS (for logs/tests) *)
  server_predicate : Sqldb.Predicate.t;
  residual : Sqldb.Predicate.t;  (** evaluated client-side after decryption *)
}

val rewrite_select : t -> Sqldb.Sql.select -> (rewritten, string) result
(** Expose the rewrite without executing (tests, EXPLAIN). *)

type query_result = {
  columns : string list;
  rows : Sqldb.Value.t array list;  (** decrypted, residual-filtered, projected *)
  affected : int;  (** rows inserted / deleted / updated *)
  server_rows : int;  (** rows the server returned (incl. bucketized FPs) *)
  exec : Sqldb.Executor.result option;
}

val execute : t -> string -> (query_result, string) result
(** Parse plaintext SQL (SELECT / INSERT / DELETE / UPDATE against the
    plaintext schema), run it through the encrypted database. DELETE
    and UPDATE decrypt and residual-filter before touching rows, so
    bucketized false positives are never deleted or rewritten; UPDATE
    re-encrypts the new version (tombstoning the old, like the
    engine's own MVCC-style update). *)
