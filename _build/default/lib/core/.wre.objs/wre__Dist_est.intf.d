lib/core/dist_est.mli: Dist Seq Sqldb
