lib/core/encrypted_db.mli: Column_enc Crypto Dist Range_index Scheme Sqldb
