lib/core/bucket_layout.ml: Array Crypto Dist Float Hashtbl List Option Printf Salts Stdx
