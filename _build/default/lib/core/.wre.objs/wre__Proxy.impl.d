lib/core/proxy.ml: Array Column_enc Encrypted_db Executor Format List Predicate Printf Result Schema Sql Sqldb Value
