lib/core/column_enc.mli: Bucket_layout Crypto Dist Salts Scheme Stdx
