lib/core/bucket_layout.mli: Dist Salts
