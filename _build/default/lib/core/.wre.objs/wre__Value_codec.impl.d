lib/core/value_codec.ml: Bytes Int64 Printf Sqldb Stdx String Value
