lib/core/scheme.ml: Dist Float Fun List Printf String
