lib/core/salts.mli: Stdx
