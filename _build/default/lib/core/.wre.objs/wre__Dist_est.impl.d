lib/core/dist_est.ml: Array Dist Hashtbl List Option Printf Schema Seq Sqldb Value
