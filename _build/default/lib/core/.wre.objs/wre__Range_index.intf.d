lib/core/range_index.mli: Crypto
