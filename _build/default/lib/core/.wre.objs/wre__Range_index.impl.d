lib/core/range_index.ml: Array Crypto Int64 List Stdx
