lib/core/encrypted_db.ml: Array Column_enc Crypto Database Executor Hashtbl Int64 List Predicate Printf Range_index Schema Scheme Sqldb Stdx Table Table_index Value Value_codec
