lib/core/column_enc.ml: Array Bucket_layout Crypto Dist Hashtbl Int64 List Option Salts Scheme Stdx
