lib/core/value_codec.mli: Sqldb
