lib/core/proxy.mli: Encrypted_db Sqldb
