lib/core/scheme.mli: Dist
