lib/core/salts.ml: Array Crypto Dist Float Fun Hashtbl Printf Stdx
