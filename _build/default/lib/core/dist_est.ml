open Sqldb

let of_rows ~schema ~columns rows =
  let positions =
    List.map
      (fun c ->
        match Schema.column_index_opt schema c with
        | Some i -> (c, i)
        | None -> invalid_arg (Printf.sprintf "Dist_est.of_rows: unknown column %S" c))
      columns
  in
  let counts = Hashtbl.create (List.length columns) in
  List.iter (fun (c, _) -> Hashtbl.replace counts c (Hashtbl.create 1024)) positions;
  Seq.iter
    (fun row ->
      List.iter
        (fun (c, i) ->
          match row.(i) with
          | Value.Text s ->
              let table = Hashtbl.find counts c in
              Hashtbl.replace table s (1 + Option.value ~default:0 (Hashtbl.find_opt table s))
          | v ->
              invalid_arg
                (Printf.sprintf "Dist_est.of_rows: column %S holds non-text %s" c
                   (Value.to_string v)))
        positions)
    rows;
  let dists = Hashtbl.create (List.length columns) in
  List.iter
    (fun (c, _) ->
      let table = Hashtbl.find counts c in
      if Hashtbl.length table = 0 then
        invalid_arg (Printf.sprintf "Dist_est.of_rows: column %S is empty" c);
      Hashtbl.replace dists c
        (Dist.Empirical.of_counts (Hashtbl.fold (fun v n acc -> (v, n) :: acc) table [])))
    positions;
  fun c ->
    match Hashtbl.find_opt dists c with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Dist_est: column %S was not profiled" c)

let of_strings seq = Dist.Empirical.of_values seq
