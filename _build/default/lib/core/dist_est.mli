(** Plaintext-distribution estimation.

    WRE's distribution-dependent allocators need [P_M] per encrypted
    column. The paper's position: "the distribution can also be
    calculated during database initialization" (§I) — this module does
    exactly that, in one pass over the plaintext rows before they are
    encrypted. *)

val of_rows :
  schema:Sqldb.Schema.t ->
  columns:string list ->
  Sqldb.Value.t array Seq.t ->
  string ->
  Dist.Empirical.t
(** [of_rows ~schema ~columns rows] counts the text values of each
    requested column and returns the per-column lookup. Forces the
    sequence once. Raises [Invalid_argument] if a requested column is
    missing, non-text, or empty. *)

val of_strings : string Seq.t -> Dist.Empirical.t
(** Distribution of a single column given directly as strings. *)
