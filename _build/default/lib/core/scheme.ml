type kind =
  | Det
  | Fixed of int
  | Proportional of int
  | Poisson of float
  | Bucketized of float

let float_label x =
  if Float.is_integer x then string_of_int (int_of_float x) else string_of_float x

let to_string = function
  | Det -> "det"
  | Fixed n -> Printf.sprintf "fixed-%d" n
  | Proportional n -> Printf.sprintf "proportional-%d" n
  | Poisson l -> Printf.sprintf "poisson-%s" (float_label l)
  | Bucketized l -> Printf.sprintf "bucketized-%s" (float_label l)

let of_string s =
  let parse_param prefix conv make =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match conv (String.sub s plen (String.length s - plen)) with
      | Some v -> Some (make v)
      | None -> None
    else None
  in
  if s = "det" then Ok Det
  else
    let attempts =
      [
        parse_param "fixed-" int_of_string_opt (fun n -> Fixed n);
        parse_param "proportional-" int_of_string_opt (fun n -> Proportional n);
        parse_param "poisson-" float_of_string_opt (fun l -> Poisson l);
        parse_param "bucketized-" float_of_string_opt (fun l -> Bucketized l);
      ]
    in
    match List.find_map Fun.id attempts with
    | Some k -> Ok k
    | None ->
        Error
          (Printf.sprintf
             "unknown scheme %S (expected det | fixed-N | proportional-N | poisson-L | \
              bucketized-L)"
             s)

let expected_tags_per_plaintext kind ~dist m =
  let p = Dist.Empirical.prob dist m in
  match kind with
  | Det -> 1.0
  | Fixed n -> float_of_int n
  | Proportional n -> Float.max 1.0 (Float.round (p *. float_of_int n))
  | Poisson lambda | Bucketized lambda -> (lambda *. p) +. 1.0

let is_bucketized = function Bucketized _ -> true | Det | Fixed _ | Proportional _ | Poisson _ -> false
