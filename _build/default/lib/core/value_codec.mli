(** Canonical byte encoding of SQL values for AES encryption.

    Every non-key column of the encrypted table stores
    [Enc'_{k0}(encode v)] as a blob; decryption decodes back to the
    original typed value. The encoding is 1 type byte + payload, so it
    round-trips exactly (including NULL and negative numbers). *)

val encode : Sqldb.Value.t -> string

val decode : string -> (Sqldb.Value.t, string) result
(** Total: malformed input yields [Error]. *)

val decode_exn : string -> Sqldb.Value.t
