(** Bucketized Poisson salt allocation (paper §V-C1, Algorithm 2).

    One rate-λ Poisson process is sampled over the whole unit interval,
    independent of the plaintext frequencies; the plaintext domain is
    laid out on [\[0,1)] in a pseudo-random-shuffle order, each
    plaintext owning a sub-interval of width [P_M(m)]. A plaintext's
    salts are the buckets its interval overlaps — so a bucket straddling
    two plaintexts is a salt for both, which is what gives the scheme
    its IND-CUDA security (tag frequencies are independent of the
    plaintexts) and its false positives.

    The layout is deterministic in (seed, shuffle key, distribution, λ):
    encryptor and searcher rebuild the identical layout. *)

type t

val create :
  seed:string ->
  shuffle_key:string ->
  column:string ->
  dist:Dist.Empirical.t ->
  lambda:float ->
  t

val lambda : t -> float
val bucket_count : t -> int

val bucket_widths : t -> float array
(** Tag frequencies the encrypted column will exhibit — Exponential(λ)
    interarrivals independent of the data. *)

val salts_for : t -> string -> Salts.t option
(** Buckets overlapping the plaintext's interval, weighted by overlap —
    [None] when the plaintext is outside the distribution's support. *)

val returned_mass : t -> string -> float
(** Total probability mass of the buckets a search for this plaintext
    retrieves (≥ P_M(m); the excess is the expected false-positive
    fraction of the database). *)

val messages_sharing : t -> int -> string list
(** Plaintexts whose intervals overlap a given bucket. *)

val validate : t -> (unit, string) result
(** Structural invariants: widths positive and summing to 1; every
    supported plaintext covered; per-message salt sets valid. *)
