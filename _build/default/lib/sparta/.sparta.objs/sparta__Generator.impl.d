lib/sparta/generator.ml: Array Buffer Dist Float Int64 Names_data Printf Schema Seq Sqldb Stdx String Value
