lib/sparta/query_gen.mli:
