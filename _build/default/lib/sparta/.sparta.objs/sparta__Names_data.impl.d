lib/sparta/names_data.ml:
