lib/sparta/query_gen.ml: Array List Stdx
