lib/sparta/generator.mli: Seq Sqldb
