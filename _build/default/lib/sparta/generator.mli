(** Census-like row generator (the SPARTA data generator stand-in).

    Produces rows for a 23-column person table whose identifier columns
    (first name, last name, city, zip, …) follow the heavy-tailed
    rank/frequency curves of the real US Census lists — the property
    inference attacks exploit and WRE must smooth. Fully deterministic
    given the seed. *)

val schema : Sqldb.Schema.t
(** The 23-column plaintext schema; primary key column ["id"]. *)

val encrypted_columns : string list
(** The five columns the paper encrypts with WRE:
    fname, lname, ssn, city, zip (§VI-A). *)

type t

val create : seed:int64 -> t

val row : t -> id:int -> Sqldb.Value.t array
(** Generate the row with the given primary key. Successive calls with
    increasing ids stream a database. *)

val rows : t -> n:int -> Sqldb.Value.t array Seq.t
(** [rows t ~n] is ids 0..n-1 as a sequence. *)

val column_string : Sqldb.Value.t array -> column:string -> string
(** Extract a column of a generated row as the plaintext string WRE
    encrypts. Raises for non-text columns. *)
