type query = { column : string; value : string; expected : int }

let bucket_of n =
  if n <= 1 then 0
  else if n <= 10 then 1
  else if n <= 100 then 2
  else if n <= 1000 then 3
  else if n <= 10000 then 4
  else 5

let bucket_label = function
  | 0 -> "1"
  | 1 -> "2-10"
  | 2 -> "11-100"
  | 3 -> "101-1k"
  | 4 -> "1k-10k"
  | _ -> ">10k"

let generate ~seed ~columns ~counts ~n ?(max_result = 10_000) () =
  let g = Stdx.Prng.create seed in
  (* buckets.(b) = candidate (column, value, count) list *)
  let buckets = Array.make 5 [] in
  List.iter
    (fun col ->
      List.iter
        (fun (value, count) ->
          if count >= 1 && count <= max_result then begin
            let b = bucket_of count in
            buckets.(b) <- { column = col; value; expected = count } :: buckets.(b)
          end)
        (counts col))
    columns;
  let pools = Array.map Array.of_list buckets in
  let non_empty = Array.to_list pools |> List.filter (fun p -> Array.length p > 0) in
  if non_empty = [] then invalid_arg "Query_gen.generate: no candidate values";
  let pools = Array.of_list non_empty in
  List.init n (fun i ->
      let pool = pools.(i mod Array.length pools) in
      Stdx.Sampling.choose g pool)
