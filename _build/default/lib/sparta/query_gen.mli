(** Equality-query generator (the SPARTA query generator stand-in).

    The paper's evaluation runs >1,000 SPARTA-generated equality
    queries per database, "consisting of a mix of queries that returned
    result sizes between 1 and 10,000 records" (§VI-A). This module
    reproduces that mix: given the generated plaintext rows, it buckets
    candidate values by true result size and samples queries evenly
    across logarithmic size buckets. *)

type query = {
  column : string;  (** one of the encrypted columns *)
  value : string;  (** plaintext equality target *)
  expected : int;  (** true number of matching rows *)
}

val generate :
  seed:int64 ->
  columns:string list ->
  counts:(string -> (string * int) list) ->
  n:int ->
  ?max_result:int ->
  unit ->
  query list
(** [generate ~seed ~columns ~counts ~n ()] draws [n] queries.
    [counts col] must list every distinct value of [col] with its row
    count. Values with counts above [max_result] (default 10,000) are
    excluded, matching the paper's cap. Buckets [1], [2,10],
    [11,100], [101,1000], [1001,10000] are sampled round-robin; empty
    buckets are skipped. *)

val bucket_of : int -> int
(** Index of the logarithmic size bucket a result size falls into
    (0 = exactly 1 … 4 = 1001-10,000, 5 = larger). *)

val bucket_label : int -> string
