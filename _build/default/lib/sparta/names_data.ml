(* Embedded identifier vocabularies, in descending real-world rank
   order. The original SPARTA generator draws from full US Census
   frequency files; those files are not available offline, so each list
   here carries the top of the real rank order and the generator
   re-creates the heavy-tailed frequency curve by fitting a Zipf
   exponent per column (see Generator). DESIGN.md §2 documents this
   substitution. *)

let first_names =
  [|
    "James"; "Mary"; "John"; "Patricia"; "Robert"; "Jennifer"; "Michael"; "Linda"; "William";
    "Elizabeth"; "David"; "Barbara"; "Richard"; "Susan"; "Joseph"; "Jessica"; "Thomas"; "Sarah";
    "Charles"; "Karen"; "Christopher"; "Nancy"; "Daniel"; "Lisa"; "Matthew"; "Margaret";
    "Anthony"; "Betty"; "Donald"; "Sandra"; "Mark"; "Ashley"; "Paul"; "Dorothy"; "Steven";
    "Kimberly"; "Andrew"; "Emily"; "Kenneth"; "Donna"; "Joshua"; "Michelle"; "Kevin"; "Carol";
    "Brian"; "Amanda"; "George"; "Melissa"; "Edward"; "Deborah"; "Ronald"; "Stephanie";
    "Timothy"; "Rebecca"; "Jason"; "Laura"; "Jeffrey"; "Sharon"; "Ryan"; "Cynthia"; "Jacob";
    "Kathleen"; "Gary"; "Amy"; "Nicholas"; "Shirley"; "Eric"; "Angela"; "Jonathan"; "Helen";
    "Stephen"; "Anna"; "Larry"; "Brenda"; "Justin"; "Pamela"; "Scott"; "Nicole"; "Brandon";
    "Emma"; "Benjamin"; "Samantha"; "Samuel"; "Katherine"; "Frank"; "Christine"; "Gregory";
    "Debra"; "Raymond"; "Rachel"; "Alexander"; "Catherine"; "Patrick"; "Carolyn"; "Jack";
    "Janet"; "Dennis"; "Ruth"; "Jerry"; "Maria"; "Tyler"; "Heather"; "Aaron"; "Diane"; "Jose";
    "Virginia"; "Henry"; "Julie"; "Adam"; "Joyce"; "Douglas"; "Victoria"; "Nathan"; "Kelly";
    "Peter"; "Christina"; "Zachary"; "Lauren"; "Kyle"; "Joan"; "Walter"; "Evelyn"; "Harold";
    "Olivia"; "Carl"; "Judith"; "Jeremy"; "Megan"; "Keith"; "Cheryl"; "Roger"; "Martha";
    "Gerald"; "Andrea"; "Ethan"; "Frances"; "Arthur"; "Hannah"; "Terry"; "Jacqueline"; "Sean";
    "Ann"; "Christian"; "Gloria"; "Austin"; "Jean"; "Noah"; "Kathryn"; "Lawrence"; "Alice";
    "Jesse"; "Teresa"; "Joe"; "Sara"; "Bryan"; "Janice"; "Billy"; "Doris"; "Jordan"; "Madison";
    "Albert"; "Julia"; "Dylan"; "Grace"; "Bruce"; "Judy"; "Willie"; "Abigail"; "Gabriel";
    "Marie"; "Alan"; "Denise"; "Juan"; "Beverly"; "Logan"; "Amber"; "Wayne"; "Theresa"; "Ralph";
    "Marilyn"; "Roy"; "Danielle"; "Eugene"; "Diana"; "Randy"; "Brittany"; "Vincent"; "Natalie";
    "Russell"; "Sophia"; "Louis"; "Rose"; "Philip"; "Isabella"; "Bobby"; "Alexis"; "Johnny";
    "Kayla"; "Bradley"; "Charlotte";
  |]

let last_names =
  [|
    "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller"; "Davis"; "Rodriguez";
    "Martinez"; "Hernandez"; "Lopez"; "Gonzalez"; "Wilson"; "Anderson"; "Thomas"; "Taylor";
    "Moore"; "Jackson"; "Martin"; "Lee"; "Perez"; "Thompson"; "White"; "Harris"; "Sanchez";
    "Clark"; "Ramirez"; "Lewis"; "Robinson"; "Walker"; "Young"; "Allen"; "King"; "Wright";
    "Scott"; "Torres"; "Nguyen"; "Hill"; "Flores"; "Green"; "Adams"; "Nelson"; "Baker"; "Hall";
    "Rivera"; "Campbell"; "Mitchell"; "Carter"; "Roberts"; "Gomez"; "Phillips"; "Evans";
    "Turner"; "Diaz"; "Parker"; "Cruz"; "Edwards"; "Collins"; "Reyes"; "Stewart"; "Morris";
    "Morales"; "Murphy"; "Cook"; "Rogers"; "Gutierrez"; "Ortiz"; "Morgan"; "Cooper"; "Peterson";
    "Bailey"; "Reed"; "Kelly"; "Howard"; "Ramos"; "Kim"; "Cox"; "Ward"; "Richardson"; "Watson";
    "Brooks"; "Chavez"; "Wood"; "James"; "Bennett"; "Gray"; "Mendoza"; "Ruiz"; "Hughes";
    "Price"; "Alvarez"; "Castillo"; "Sanders"; "Patel"; "Myers"; "Long"; "Ross"; "Foster";
    "Jimenez"; "Powell"; "Jenkins"; "Perry"; "Russell"; "Sullivan"; "Bell"; "Coleman"; "Butler";
    "Henderson"; "Barnes"; "Gonzales"; "Fisher"; "Vasquez"; "Simmons"; "Romero"; "Jordan";
    "Patterson"; "Alexander"; "Hamilton"; "Graham"; "Reynolds"; "Griffin"; "Wallace"; "Moreno";
    "West"; "Cole"; "Hayes"; "Bryant"; "Herrera"; "Gibson"; "Ellis"; "Tran"; "Medina"; "Aguilar";
    "Stevens"; "Murray"; "Ford"; "Castro"; "Marshall"; "Owens"; "Harrison"; "Fernandez";
    "McDonald"; "Woods"; "Washington"; "Kennedy"; "Wells"; "Vargas"; "Henry"; "Chen"; "Freeman";
    "Webb"; "Tucker"; "Guzman"; "Burns"; "Crawford"; "Olson"; "Simpson"; "Porter"; "Hunter";
    "Gordon"; "Mendez"; "Silva"; "Shaw"; "Snyder"; "Mason"; "Dixon"; "Munoz"; "Hunt"; "Hicks";
    "Holmes"; "Palmer"; "Wagner"; "Black"; "Robertson"; "Boyd"; "Rose"; "Stone"; "Salazar";
    "Fox"; "Warren"; "Mills"; "Meyer"; "Rice"; "Schmidt"; "Garza"; "Daniels"; "Ferguson";
    "Nichols"; "Stephens"; "Soto"; "Weaver"; "Ryan"; "Gardner"; "Payne"; "Grant"; "Dunn";
    "Kelley"; "Spencer"; "Hawkins";
  |]

(* (city, state, number of zip codes the generator synthesizes for it) *)
let cities =
  [|
    ("New York", "NY", 8); ("Los Angeles", "CA", 7); ("Chicago", "IL", 6); ("Houston", "TX", 6);
    ("Phoenix", "AZ", 5); ("Philadelphia", "PA", 5); ("San Antonio", "TX", 4);
    ("San Diego", "CA", 4); ("Dallas", "TX", 4); ("San Jose", "CA", 3); ("Austin", "TX", 3);
    ("Jacksonville", "FL", 3); ("Fort Worth", "TX", 3); ("Columbus", "OH", 3);
    ("Indianapolis", "IN", 3); ("Charlotte", "NC", 3); ("San Francisco", "CA", 3);
    ("Seattle", "WA", 3); ("Denver", "CO", 3); ("Washington", "DC", 3); ("Nashville", "TN", 2);
    ("Oklahoma City", "OK", 2); ("El Paso", "TX", 2); ("Boston", "MA", 2); ("Portland", "OR", 2);
    ("Las Vegas", "NV", 2); ("Detroit", "MI", 2); ("Memphis", "TN", 2); ("Louisville", "KY", 2);
    ("Baltimore", "MD", 2); ("Milwaukee", "WI", 2); ("Albuquerque", "NM", 2); ("Tucson", "AZ", 2);
    ("Fresno", "CA", 2); ("Sacramento", "CA", 2); ("Kansas City", "MO", 2); ("Mesa", "AZ", 2);
    ("Atlanta", "GA", 2); ("Omaha", "NE", 2); ("Colorado Springs", "CO", 2); ("Raleigh", "NC", 2);
    ("Miami", "FL", 2); ("Long Beach", "CA", 2); ("Virginia Beach", "VA", 2); ("Oakland", "CA", 2);
    ("Minneapolis", "MN", 2); ("Tulsa", "OK", 2); ("Tampa", "FL", 2); ("Arlington", "TX", 2);
    ("New Orleans", "LA", 2); ("Wichita", "KS", 1); ("Bakersfield", "CA", 1); ("Cleveland", "OH", 1);
    ("Aurora", "CO", 1); ("Anaheim", "CA", 1); ("Honolulu", "HI", 1); ("Santa Ana", "CA", 1);
    ("Riverside", "CA", 1); ("Corpus Christi", "TX", 1); ("Lexington", "KY", 1);
    ("Henderson", "NV", 1); ("Stockton", "CA", 1); ("Saint Paul", "MN", 1); ("Cincinnati", "OH", 1);
    ("St. Louis", "MO", 1); ("Pittsburgh", "PA", 1); ("Greensboro", "NC", 1); ("Lincoln", "NE", 1);
    ("Anchorage", "AK", 1); ("Plano", "TX", 1); ("Orlando", "FL", 1); ("Irvine", "CA", 1);
    ("Newark", "NJ", 1); ("Durham", "NC", 1); ("Chula Vista", "CA", 1); ("Toledo", "OH", 1);
    ("Fort Wayne", "IN", 1); ("St. Petersburg", "FL", 1); ("Laredo", "TX", 1);
    ("Jersey City", "NJ", 1); ("Chandler", "AZ", 1); ("Madison", "WI", 1); ("Lubbock", "TX", 1);
    ("Scottsdale", "AZ", 1); ("Reno", "NV", 1); ("Buffalo", "NY", 1); ("Gilbert", "AZ", 1);
    ("Glendale", "AZ", 1); ("North Las Vegas", "NV", 1); ("Winston-Salem", "NC", 1);
    ("Chesapeake", "VA", 1); ("Norfolk", "VA", 1); ("Fremont", "CA", 1); ("Garland", "TX", 1);
    ("Irving", "TX", 1); ("Hialeah", "FL", 1); ("Richmond", "VA", 1); ("Boise", "ID", 1);
    ("Spokane", "WA", 1); ("Baton Rouge", "LA", 1);
  |]

let languages =
  [|
    "English"; "Spanish"; "Chinese"; "Tagalog"; "Vietnamese"; "Arabic"; "French"; "Korean";
    "Russian"; "German"; "Haitian Creole"; "Hindi"; "Portuguese"; "Italian"; "Polish";
    "Japanese"; "Urdu"; "Persian"; "Gujarati"; "Greek";
  |]

let occupations =
  [|
    "Retail Salesperson"; "Cashier"; "Office Clerk"; "Registered Nurse"; "Customer Service Rep";
    "Food Prep Worker"; "Laborer"; "Waiter"; "Secretary"; "Janitor"; "Truck Driver";
    "Stock Clerk"; "Manager"; "Bookkeeper"; "Elementary Teacher"; "Nursing Aide";
    "Sales Representative"; "Maintenance Worker"; "Assembler"; "Software Developer";
    "Accountant"; "Security Guard"; "Receptionist"; "Cook"; "Carpenter"; "Electrician";
    "Police Officer"; "Mechanic"; "Physician"; "Lawyer";
  |]

let street_names =
  [|
    "Main"; "Oak"; "Pine"; "Maple"; "Cedar"; "Elm"; "Washington"; "Lake"; "Hill"; "Park";
    "Walnut"; "Spring"; "North"; "Ridge"; "Church"; "Willow"; "Mill"; "Sunset"; "Railroad";
    "Jackson"; "River"; "Meadow"; "Chestnut"; "Franklin"; "Highland";
  |]

let street_suffixes = [| "St"; "Ave"; "Rd"; "Blvd"; "Ln"; "Dr"; "Ct"; "Way" |]

let states =
  [|
    "CA"; "TX"; "FL"; "NY"; "PA"; "IL"; "OH"; "GA"; "NC"; "MI"; "NJ"; "VA"; "WA"; "AZ"; "MA";
    "TN"; "IN"; "MO"; "MD"; "WI"; "CO"; "MN"; "SC"; "AL"; "LA"; "KY"; "OR"; "OK"; "CT"; "UT";
    "IA"; "NV"; "AR"; "MS"; "KS"; "NM"; "NE"; "ID"; "WV"; "HI"; "NH"; "ME"; "MT"; "RI"; "DE";
    "SD"; "ND"; "AK"; "DC"; "VT"; "WY";
  |]

let races =
  [| "White"; "Black"; "Hispanic"; "Asian"; "Two or More"; "American Indian"; "Pacific Islander" |]

let marital_statuses = [| "Married"; "Never Married"; "Divorced"; "Widowed"; "Separated" |]

let education_levels =
  [|
    "High School"; "Some College"; "Bachelors"; "Less than High School"; "Associates"; "Masters";
    "Professional"; "Doctorate";
  |]

let citizenships = [| "US Citizen"; "Naturalized"; "Permanent Resident"; "Non-Resident" |]

(* Word stock for the free-text notes column. SPARTA fills its long
   text fields with Project Gutenberg prose; a Markov-free bag-of-words
   sentence generator over this list reproduces the storage shape
   (hundreds of bytes of compressible English per row). *)
let prose_words =
  [|
    "the"; "of"; "and"; "a"; "to"; "in"; "he"; "was"; "that"; "it"; "his"; "her"; "with"; "as";
    "had"; "for"; "she"; "not"; "at"; "but"; "be"; "on"; "they"; "have"; "him"; "which"; "said";
    "from"; "this"; "all"; "were"; "by"; "when"; "we"; "there"; "been"; "their"; "one"; "so";
    "an"; "or"; "no"; "if"; "would"; "who"; "what"; "them"; "will"; "out"; "up"; "more"; "then";
    "into"; "has"; "some"; "could"; "now"; "very"; "time"; "man"; "its"; "your"; "our"; "over";
    "like"; "these"; "may"; "did"; "only"; "other"; "me"; "my"; "upon"; "any"; "little"; "down";
    "made"; "before"; "must"; "through"; "such"; "where"; "after"; "without"; "again"; "old";
    "great"; "himself"; "never"; "day"; "house"; "long"; "came"; "while"; "two"; "against";
    "eyes"; "place"; "own"; "still"; "night"; "good"; "nothing"; "under"; "might"; "part";
  |]

let military_statuses = [| "None"; "Veteran"; "Active"; "Reserve" |]
