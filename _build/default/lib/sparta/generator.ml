open Sqldb

let schema =
  Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "fname"; ty = TText; nullable = false };
      { name = "lname"; ty = TText; nullable = false };
      { name = "ssn"; ty = TText; nullable = false };
      { name = "dob"; ty = TText; nullable = false };
      { name = "sex"; ty = TText; nullable = false };
      { name = "citizenship"; ty = TText; nullable = false };
      { name = "race"; ty = TText; nullable = false };
      { name = "state"; ty = TText; nullable = false };
      { name = "city"; ty = TText; nullable = false };
      { name = "zip"; ty = TText; nullable = false };
      { name = "address"; ty = TText; nullable = false };
      { name = "phone"; ty = TText; nullable = false };
      { name = "email"; ty = TText; nullable = false };
      { name = "language"; ty = TText; nullable = false };
      { name = "marital_status"; ty = TText; nullable = false };
      { name = "education"; ty = TText; nullable = false };
      { name = "occupation"; ty = TText; nullable = false };
      { name = "income"; ty = TInt; nullable = false };
      { name = "hours_worked"; ty = TInt; nullable = false };
      { name = "weeks_worked"; ty = TInt; nullable = false };
      { name = "military"; ty = TText; nullable = false };
      { name = "notes"; ty = TText; nullable = true };
    ]

let encrypted_columns = [ "fname"; "lname"; "ssn"; "city"; "zip" ]

type t = {
  g : Stdx.Prng.t;
  fname : Dist.Zipf.t;
  lname : Dist.Zipf.t;
  city : Dist.Zipf.t;
  language : Dist.Zipf.t;
  occupation : Dist.Zipf.t;
  race : Dist.Zipf.t;
  marital : Dist.Zipf.t;
  education : Dist.Zipf.t;
  citizenship : Dist.Zipf.t;
  military : Dist.Zipf.t;
  zips : string array array; (* per city *)
  zip_weights : Dist.Zipf.t array;
}

(* Zipf exponents fitted by eye to the published rank/frequency shapes:
   surnames are close to s=1 (Smith ≈ 0.88%), first names flatter,
   city populations s ≈ 1.07 (classic Zipf's law for cities). *)
let create ~seed =
  let g = Stdx.Prng.create seed in
  let zips =
    Array.mapi
      (fun i (_, _, n_zips) ->
        Array.init n_zips (fun k -> Printf.sprintf "%05d" (10001 + (i * 73) + (k * 7))))
      Names_data.cities
  in
  {
    g;
    fname = Dist.Zipf.create ~n:(Array.length Names_data.first_names) ~s:0.55;
    lname = Dist.Zipf.create ~n:(Array.length Names_data.last_names) ~s:0.75;
    city = Dist.Zipf.create ~n:(Array.length Names_data.cities) ~s:1.07;
    language = Dist.Zipf.create ~n:(Array.length Names_data.languages) ~s:2.2;
    occupation = Dist.Zipf.create ~n:(Array.length Names_data.occupations) ~s:0.7;
    race = Dist.Zipf.create ~n:(Array.length Names_data.races) ~s:1.6;
    marital = Dist.Zipf.create ~n:(Array.length Names_data.marital_statuses) ~s:1.0;
    education = Dist.Zipf.create ~n:(Array.length Names_data.education_levels) ~s:0.8;
    citizenship = Dist.Zipf.create ~n:(Array.length Names_data.citizenships) ~s:2.5;
    military = Dist.Zipf.create ~n:(Array.length Names_data.military_statuses) ~s:3.0;
    zips;
    zip_weights =
      Array.map
        (fun (_, _, n_zips) -> Dist.Zipf.create ~n:n_zips ~s:0.6)
        Names_data.cities;
  }

let pick t zipf (table : string array) = table.(Dist.Zipf.sample zipf t.g - 1)

let ssn t =
  (* Area 001..899 excluding 666, like real SSNs. *)
  let area = ref (1 + Stdx.Prng.int t.g 899) in
  if !area = 666 then area := 667;
  Printf.sprintf "%03d-%02d-%04d" !area (1 + Stdx.Prng.int t.g 99) (Stdx.Prng.int t.g 10000)

let dob t =
  let year = 1935 + Stdx.Prng.int t.g 71 in
  let month = 1 + Stdx.Prng.int t.g 12 in
  let day = 1 + Stdx.Prng.int t.g 28 in
  Printf.sprintf "%04d-%02d-%02d" year month day

let address t =
  Printf.sprintf "%d %s %s"
    (1 + Stdx.Prng.int t.g 9899)
    (Stdx.Sampling.choose t.g Names_data.street_names)
    (Stdx.Sampling.choose t.g Names_data.street_suffixes)

let phone t =
  Printf.sprintf "(%03d) %03d-%04d"
    (201 + Stdx.Prng.int t.g 780)
    (200 + Stdx.Prng.int t.g 800)
    (Stdx.Prng.int t.g 10000)

(* Log-normal-ish income in whole dollars, clamped to a plausible
   range; the exact shape is irrelevant (income stays plaintext). *)
let income t =
  let z = (Stdx.Prng.float t.g +. Stdx.Prng.float t.g +. Stdx.Prng.float t.g -. 1.5) /. 0.6 in
  let v = exp (10.6 +. (0.7 *. z)) in
  Int64.of_float (Float.max 8000.0 (Float.min 480000.0 v))

(* Free-text filler for the notes column: 60-140 common-English words,
   matching SPARTA's Project-Gutenberg-derived text fields in size and
   compressibility (the paper's rows average ≈1.1 KB with these). *)
let prose t =
  let n_words = 60 + Stdx.Prng.int t.g 81 in
  let buf = Buffer.create (n_words * 6) in
  for i = 0 to n_words - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Stdx.Sampling.choose t.g Names_data.prose_words)
  done;
  Buffer.contents buf

let row t ~id =
  let fname = pick t t.fname Names_data.first_names in
  let lname = pick t t.lname Names_data.last_names in
  let city_rank = Dist.Zipf.sample t.city t.g - 1 in
  let city, state, _ = Names_data.cities.(city_rank) in
  let zips = t.zips.(city_rank) in
  let zip = zips.(Dist.Zipf.sample t.zip_weights.(city_rank) t.g - 1) in
  let sex = if Stdx.Prng.bool t.g then "M" else "F" in
  let email =
    Printf.sprintf "%s.%s%d@example.com" (String.lowercase_ascii fname)
      (String.lowercase_ascii lname) (Stdx.Prng.int t.g 1000)
  in
  let notes = if Stdx.Prng.int t.g 10 = 0 then Value.Null else Value.Text (prose t) in
  [|
    Value.Int (Int64.of_int id);
    Value.Text fname;
    Value.Text lname;
    Value.Text (ssn t);
    Value.Text (dob t);
    Value.Text sex;
    Value.Text (pick t t.citizenship Names_data.citizenships);
    Value.Text (pick t t.race Names_data.races);
    Value.Text state;
    Value.Text city;
    Value.Text zip;
    Value.Text (address t);
    Value.Text (phone t);
    Value.Text email;
    Value.Text (pick t t.language Names_data.languages);
    Value.Text (pick t t.marital Names_data.marital_statuses);
    Value.Text (pick t t.education Names_data.education_levels);
    Value.Text (pick t t.occupation Names_data.occupations);
    Value.Int (income t);
    Value.Int (Int64.of_int (10 + Stdx.Prng.int t.g 51));
    Value.Int (Int64.of_int (1 + Stdx.Prng.int t.g 52));
    Value.Text (pick t t.military Names_data.military_statuses);
    notes;
  |]

let rows t ~n =
  Seq.init n (fun id -> row t ~id)

let column_string generated ~column =
  let i = Schema.column_index schema column in
  match generated.(i) with
  | Value.Text s -> s
  | v -> invalid_arg (Printf.sprintf "Generator.column_string: %s is %s" column (Value.to_string v))
