(* Ablation A1 — the proportional-salts aliasing problem, exactly the
   paper's §V-B example: P_M = {m1: 0.7, m2: 0.3}. With N_T = 10 the
   per-tag frequencies line up (0.07 vs 0.075 — indistinguishable up to
   sampling noise); with N_T = 12 rounding gives 8 and 4 salts whose
   per-tag frequencies differ by 17%, and a frequency attack separates
   the two plaintexts again. *)

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'k') ~k1:(String.make 32 'K')

let run_config ~n_records total_tags =
  let g = Stdx.Prng.create 6L in
  let dist = Dist.Empirical.of_counts [ ("m1", 7); ("m2", 3) ] in
  let kind = Wre.Scheme.Proportional total_tags in
  let enc = Wre.Column_enc.create ~master ~column:"c" ~kind ~dist () in
  let plaintexts =
    Array.init n_records (fun _ -> Dist.Empirical.sampler dist g)
  in
  let snap = Attacks.Snapshot.of_column enc g ~plaintexts in
  let score = Attacks.Metrics.score snap ~guess:(Attacks.Frequency.greedy_likelihood snap ~kind) in
  let salts m = Array.length (Option.get (Wre.Column_enc.salt_set enc m)).Wre.Salts.salts in
  (salts "m1", salts "m2", score)

let run ~rows:n_records () =
  Bench_util.heading
    (Printf.sprintf "Ablation A1: proportional-salt aliasing (V-B example, %d records)" n_records);
  let t =
    Stdx.Table_fmt.create
      [
        "N_T";
        "salts m1";
        "salts m2";
        "per-tag freq m1";
        "per-tag freq m2";
        "attack record recovery";
        "baseline";
      ]
  in
  List.iter
    (fun total_tags ->
      let s1, s2, score = run_config ~n_records total_tags in
      Stdx.Table_fmt.add_row t
        [
          string_of_int total_tags;
          string_of_int s1;
          string_of_int s2;
          Printf.sprintf "%.4f" (0.7 /. float_of_int s1);
          Printf.sprintf "%.4f" (0.3 /. float_of_int s2);
          Printf.sprintf "%.1f%%" (100.0 *. score.record_recovery);
          Printf.sprintf "%.1f%%" (100.0 *. score.baseline);
        ])
    [ 10; 12; 20; 24 ];
  Stdx.Table_fmt.print t;
  Printf.printf
    "reading: when N_T divides the frequencies evenly (10, 20) every tag has the\n\
     same frequency and the attack is at its baseline; rounding (12, 24) recreates\n\
     a per-tag frequency gap the attack exploits — the aliasing defect that\n\
     motivates Poisson random frequencies.\n"
