(* B0 — Bechamel micro-benchmarks of the primitives on the encryption
   hot path: raw AES block, CTR encryption of a typical field, the
   HMAC search-tag PRF, salt-set generation, and one full WRE Enc per
   scheme. One Test.make per operation; OLS estimate of ns/run. *)

open Bechamel
open Toolkit

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'm') ~k1:(String.make 32 'M')

let dist =
  Dist.Empirical.of_counts
    (List.init 50 (fun i -> (Printf.sprintf "value-%02d" i, 1 + ((50 - i) * 3))))

let tests () =
  let g = Stdx.Prng.create 1L in
  let aes_key = Crypto.Aes128.expand (String.make 16 'a') in
  let block = Bytes.make 16 'b' in
  let ctr_key = Crypto.Ctr.of_raw (String.make 16 'c') in
  let prf_key = Crypto.Prf.of_raw (String.make 32 'p') in
  let field = String.make 24 'f' in
  let enc_of kind = Wre.Column_enc.create ~master ~column:"bench" ~kind ~dist () in
  let encs =
    List.map
      (fun kind -> (Wre.Scheme.to_string kind, enc_of kind))
      [
        Wre.Scheme.Det;
        Wre.Scheme.Fixed 100;
        Wre.Scheme.Poisson 1000.0;
        Wre.Scheme.Bucketized 1000.0;
      ]
  in
  (* Pre-warm salt caches so the benchmark measures steady-state Enc. *)
  List.iter
    (fun (_, enc) ->
      Array.iter (fun m -> ignore (Wre.Column_enc.search_tags enc m)) (Dist.Empirical.support dist))
    encs;
  [
    Test.make ~name:"sha256/1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest (String.make 1024 'x')));
    Test.make ~name:"aes128/block" (Staged.stage (fun () -> Crypto.Aes128.encrypt_block aes_key block ~off:0));
    Test.make ~name:"ctr/24B-field" (Staged.stage (fun () -> Crypto.Ctr.encrypt_random ctr_key g field));
    Test.make ~name:"prf/search-tag-hmac"
      (Staged.stage (fun () -> Crypto.Prf.tag prf_key ~salt:3 ~message:field));
    Test.make ~name:"prf/search-tag-siphash"
      (Staged.stage
         (let sip_key = Crypto.Prf.of_raw ~algo:Crypto.Prf.Siphash24 (String.make 32 (Char.chr 112)) in
          fun () -> Crypto.Prf.tag sip_key ~salt:3 ~message:field));
    Test.make ~name:"getSalts/poisson-1000"
      (Staged.stage (fun () -> Wre.Salts.poisson ~seed:"bench" ~lambda:1000.0 ~prob:0.02));
    Test.make ~name:"hungarian/40x40"
      (Staged.stage
         (let cost = Array.init 40 (fun i -> Array.init 40 (fun j -> float_of_int ((i * j) mod 7))) in
          fun () -> Attacks.Hungarian.solve cost));
  ]
  @ List.map
      (fun (name, enc) ->
        Test.make ~name:("wre-enc/" ^ name)
          (Staged.stage (fun () -> Wre.Column_enc.encrypt enc g "value-07")))
      encs

let run () =
  Bench_util.heading "B0: Bechamel micro-benchmarks (ns per operation, OLS)";
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Stdx.Table_fmt.create [ "operation"; "ns/op"; "r^2" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let est =
        match Analyze.OLS.estimates ols_result with Some [ e ] -> e | Some (e :: _) -> e | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols_result) in
      Stdx.Table_fmt.add_row t [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.3f" r2 ])
    (List.sort compare rows);
  Stdx.Table_fmt.print t
