(* Table I — ciphertext expansion — and the §VI-B database-creation
   comparison. Builds the plaintext and encrypted databases at the
   requested scale, reports measured sizes, and (because sizes and load
   cost are verified linear in the row count) prints the extrapolated
   1M / 10M rows of the paper's table. *)

let run ~rows:n_rows () =
  Bench_util.heading (Printf.sprintf "Table I: ciphertext expansion (%d rows)" n_rows);
  let rows = Bench_util.generate_rows n_rows in
  let dist_of = Bench_util.dist_of_rows rows in
  let pdb, plain, plain_wall = Bench_util.build_plain rows in
  let _edb_db, edb, enc_wall =
    Bench_util.build_encrypted ~kind:(Wre.Scheme.Poisson 1000.0) ~dist_of rows
  in
  let enc_table = Wre.Encrypted_db.table edb in
  let p_db = Sqldb.Table.heap_bytes plain and p_tot = Sqldb.Table.total_bytes plain in
  let e_db = Sqldb.Table.heap_bytes enc_table and e_tot = Sqldb.Table.total_bytes enc_table in
  let t = Stdx.Table_fmt.create [ "Encryption Type"; "DB Size"; "DB + Indexes Size" ] in
  let label tag = Printf.sprintf "%s %s" (Bench_util.mib tag |> Printf.sprintf "%.0f MB") "" in
  ignore label;
  let add name db tot =
    Stdx.Table_fmt.add_row t
      [ name; Printf.sprintf "%.0f MB" (Bench_util.mib db); Printf.sprintf "%.0f MB" (Bench_util.mib tot) ]
  in
  let scale_label = Printf.sprintf "%dk" (n_rows / 1000) in
  add (scale_label ^ " Plaintext") p_db p_tot;
  add (scale_label ^ " Encrypted") e_db e_tot;
  (* Sizes are linear in rows (verified by the integration tests); fill
     in the paper's other scales by extrapolation. *)
  List.iter
    (fun (label, rows') ->
      if rows' > n_rows then begin
        let f x = x * rows' / n_rows in
        add (label ^ " Plaintext (extrapolated)") (f p_db) (f p_tot);
        add (label ^ " Encrypted (extrapolated)") (f e_db) (f e_tot)
      end)
    Bench_util.scales;
  Stdx.Table_fmt.print t;
  Printf.printf "expansion: DB %.2fx, DB+indexes %.2fx (paper 10M: 1.36x / 1.85x; claim: < 2x)\n"
    (float_of_int e_db /. float_of_int p_db)
    (float_of_int e_tot /. float_of_int p_tot);

  Bench_util.heading "Database creation (paper VI-B: 6,356 s vs 58,604 s at 10M, ~9x)";
  let plain_s =
    Bench_util.creation_seconds ~pager:(Sqldb.Database.pager pdb) ~total_bytes:p_tot
      ~wall_ns:plain_wall
  in
  let enc_s =
    Bench_util.creation_seconds ~pager:(Sqldb.Table.pager enc_table) ~total_bytes:e_tot
      ~wall_ns:enc_wall
  in
  let t2 = Stdx.Table_fmt.create [ "Load"; "client wall (s)"; "incl. write I/O (s)"; "per row (us)" ] in
  Stdx.Table_fmt.add_row t2
    [
      "plaintext";
      Printf.sprintf "%.2f" (plain_wall /. 1e9);
      Printf.sprintf "%.2f" plain_s;
      Printf.sprintf "%.1f" (plain_s *. 1e6 /. float_of_int n_rows);
    ];
  Stdx.Table_fmt.add_row t2
    [
      "encrypted";
      Printf.sprintf "%.2f" (enc_wall /. 1e9);
      Printf.sprintf "%.2f" enc_s;
      Printf.sprintf "%.1f" (enc_s *. 1e6 /. float_of_int n_rows);
    ];
  Stdx.Table_fmt.print t2;
  Printf.printf "encrypted/plaintext creation ratio: %.1fx (paper: 9.2x)\n" (enc_s /. plain_s)
