(* Ablation A6 — cross-column leakage beyond single-column security.
   Encrypt the correlated (city, zip) pair and the weakly-correlated
   (fname, lname) pair under each scheme; measure the tag-level mutual
   information that survives frequency smoothing, and run the
   co-occurrence linkage attack that turns city-zip structure back into
   per-record city recovery. This probes the boundary the paper draws
   around Theorem V.1 ("Single-Column Security"). *)

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'c') ~k1:(String.make 32 'C')

let run ~rows:n_records () =
  Bench_util.heading
    (Printf.sprintf "Ablation A6: cross-column correlation leakage (%d records)" n_records);
  let gen = Sparta.Generator.create ~seed:Bench_util.data_seed in
  let rows = Array.of_seq (Sparta.Generator.rows gen ~n:n_records) in
  let col c r = Sparta.Generator.column_string r ~column:c in
  let pairs_of a b = Array.map (fun r -> (col a r, col b r)) rows in
  let experiments =
    [ ("city-zip (zip determines city)", pairs_of "city" "zip");
      ("fname-lname (nearly independent)", pairs_of "fname" "lname") ]
  in
  List.iter
    (fun (label, pairs) ->
      Printf.printf "\n%s:\n" label;
      let dist_a = Dist.Empirical.of_values (Array.to_seq (Array.map fst pairs)) in
      let dist_b = Dist.Empirical.of_values (Array.to_seq (Array.map snd pairs)) in
      let t =
        Stdx.Table_fmt.create
          [
            "scheme";
            "MI plain (bits)";
            "MI tags (bits)";
            "graph components";
            "linkage recovery";
            "baseline";
          ]
      in
      List.iter
        (fun kind ->
          let g = Stdx.Prng.create 15L in
          let enc_a = Wre.Column_enc.create ~master ~column:"a" ~kind ~dist:dist_a () in
          let enc_b = Wre.Column_enc.create ~master ~column:"b" ~kind ~dist:dist_b () in
          let view = Attacks.Correlation.of_columns enc_a enc_b g ~pairs in
          let r = Attacks.Correlation.linkage_attack view in
          Stdx.Table_fmt.add_row t
            [
              Wre.Scheme.to_string kind;
              Printf.sprintf "%.2f" (Attacks.Correlation.mutual_information_bits view `Plain);
              Printf.sprintf "%.2f" (Attacks.Correlation.mutual_information_bits view `Tags);
              string_of_int r.components;
              Printf.sprintf "%.1f%%" (100.0 *. r.score.record_recovery);
              Printf.sprintf "%.1f%%" (100.0 *. r.score.baseline);
            ])
        [ Wre.Scheme.Det; Wre.Scheme.Poisson 1000.0; Wre.Scheme.Bucketized 1000.0 ];
      Stdx.Table_fmt.print t)
    experiments;
  Printf.printf
    "\nreading: per-column smoothing does not erase cross-column structure — for\n\
     city-zip the tag co-occurrence graph still has ~one component per city, and\n\
     rank-matching component masses recovers most records' city under DET and\n\
     plain Poisson alike. Bucketized salts share tags across plaintexts, merging\n\
     components and collapsing the attack. This is exactly why Theorem V.1 is\n\
     scoped to a single column; multi-column leakage is acknowledged open ground.\n\
     (Tag-side MI is a plug-in estimate and biased upward when most tag pairs\n\
     are singletons — compare the component/recovery columns, not raw MI.)\n"
