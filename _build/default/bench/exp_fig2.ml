(* Figure 2 — complementary CDF of the capped versus standard
   Exponential. The whole non-bucketized security argument is the gap
   between these curves: all of it sits in the tail beyond tau, of mass
   e^{-lambda tau}. Prints the two series plus an ASCII rendering. *)

let run () =
  Bench_util.heading "Figure 2: capped vs standard Exponential CCDF";
  let lambda = 8.0 and tau = 0.35 in
  Printf.printf "lambda = %g, tau = %g, statistical distance e^(-lambda*tau) = %.4f\n\n" lambda tau
    (Dist.Exponential.distance_to_capped ~rate:lambda ~tau);
  let t = Stdx.Table_fmt.create [ "x"; "CCDF Exp"; "CCDF CappedExp"; "" ] in
  let width = 44 in
  let points = 23 in
  for i = 0 to points - 1 do
    let x = float_of_int i *. 0.6 /. float_of_int (points - 1) in
    let std = Dist.Exponential.ccdf ~rate:lambda x in
    let capped = Dist.Exponential.Capped.ccdf ~rate:lambda ~tau x in
    let bar v c = String.make (int_of_float (v *. float_of_int width)) c in
    let plot =
      if Float.abs (std -. capped) < 1e-12 then bar std '#'
      else bar capped '#' ^ bar (std -. capped) '.'
    in
    Stdx.Table_fmt.add_row t
      [ Printf.sprintf "%.3f" x; Printf.sprintf "%.4f" std; Printf.sprintf "%.4f" capped; plot ]
  done;
  Stdx.Table_fmt.print t;
  Printf.printf "('#' both curves, '.' standard Exponential only — the capped curve drops to 0 at tau)\n";

  (* Empirical cross-check: sampled CCDFs match the closed forms. *)
  let u = Dist.Source.of_prng (Stdx.Prng.create 4L) in
  let n = 200_000 in
  let above_tau = ref 0 in
  for _ = 1 to n do
    if Dist.Exponential.sample ~rate:lambda u > tau then incr above_tau
  done;
  Printf.printf "empirical P(Exp > tau) over %d samples: %.4f (analytic %.4f)\n" n
    (float_of_int !above_tau /. float_of_int n)
    (Dist.Exponential.ccdf ~rate:lambda tau)
