(* Ablation A3 — empirical IND-CUDA advantage (Definition 7, Theorem
   V.1). The capped-exponential adversary plays the real game against
   real keys; the plain Poisson scheme's advantage decays as lambda
   grows past the list size, the bucketized scheme sits at a coin flip
   for every lambda. *)

let run ~trials () =
  Bench_util.heading
    (Printf.sprintf "Ablation A3: empirical IND-CUDA advantage (%d trials/cell)" trials);
  let n = 400 in
  let t =
    Stdx.Table_fmt.create
      [ "lambda"; "poisson advantage"; "bucketized advantage"; "bound e^(-lambda/n)" ]
  in
  List.iter
    (fun lambda ->
      let play kind =
        (Attacks.Ind_cuda.play ~kind Attacks.Ind_cuda.capped_exponential ~n ~trials
           ~seed:(Int64.of_float lambda))
          .advantage
      in
      (* In the adversary's M0 every message has frequency 1/n, so the
         relevant tau is 1/n. *)
      let bound = exp (-.lambda /. float_of_int n) in
      Stdx.Table_fmt.add_row t
        [
          Printf.sprintf "%g" lambda;
          Printf.sprintf "%.2f" (play (Wre.Scheme.Poisson lambda));
          Printf.sprintf "%.2f" (play (Wre.Scheme.Bucketized lambda));
          Printf.sprintf "%.3f" (Float.min 1.0 bound);
        ])
    [ 10.0; 100.0; 400.0; 1600.0; 6400.0; 25_600.0 ];
  Stdx.Table_fmt.print t;
  Printf.printf
    "reading: |M0| = |M1| = %d. Poisson is distinguishable while lambda <~ n and\n\
     converges to advantage 0 as lambda grows (the paper's 'choose lambda high\n\
     enough' rule); Bucketized is at a coin flip everywhere (Theorem V.1).\n"
    n
