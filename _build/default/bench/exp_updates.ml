(* Ablation A5 — updates (paper §IV "Updates"). WRE inserts are plain
   appends: new records drawn from the profiled distribution do not
   change the tag-frequency picture, so the snapshot adversary gains
   nothing. This experiment loads half the dataset, snapshots the
   adversary's view, appends the second half (including a spray of
   genuinely novel values under the `Min_frequency policy), and
   compares:

   - attack recovery before vs after the update wave;
   - statistical distance between the tag-frequency distributions. *)

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'u') ~k1:(String.make 32 'U')

let tag_distribution (snap : Attacks.Snapshot.t) =
  Dist.Empirical.of_counts
    (Array.to_list
       (Array.map (fun (tag, c) -> (Int64.to_string tag, c)) snap.observations))

let run ~rows:n_records () =
  Bench_util.heading
    (Printf.sprintf "Ablation A5: security under updates (%d + %d records)" (n_records / 2)
       (n_records / 2));
  let gen = Sparta.Generator.create ~seed:Bench_util.data_seed in
  let all =
    Array.of_seq
      (Seq.map
         (fun r -> Sparta.Generator.column_string r ~column:"lname")
         (Sparta.Generator.rows gen ~n:n_records))
  in
  let half = Array.length all / 2 in
  let first = Array.sub all 0 half and second = Array.sub all half (Array.length all - half) in
  (* The distribution is profiled on the FIRST half only, as a real
     deployment would at initialization time. *)
  let dist = Dist.Empirical.of_values (Array.to_seq first) in
  let g = Stdx.Prng.create 14L in
  let t =
    Stdx.Table_fmt.create
      [
        "scheme";
        "attack before";
        "attack after";
        "tag-freq distance";
        "novel values inserted";
      ]
  in
  List.iter
    (fun kind ->
      let enc =
        Wre.Column_enc.create ~fallback:`Min_frequency ~master ~column:"lname" ~kind ~dist ()
      in
      let snap_before = Attacks.Snapshot.of_column enc g ~plaintexts:first in
      let score_before =
        Attacks.Metrics.score snap_before ~guess:(Attacks.Frequency.greedy_likelihood snap_before ~kind)
      in
      (* Update wave: the second half, plus 1% novel values the initial
         profile has never seen. *)
      let novel = Array.init (half / 100) (fun i -> Printf.sprintf "NewName%04d" i) in
      let updated = Array.concat [ first; second; novel ] in
      let snap_after = Attacks.Snapshot.of_column enc g ~plaintexts:updated in
      let score_after =
        Attacks.Metrics.score snap_after ~guess:(Attacks.Frequency.greedy_likelihood snap_after ~kind)
      in
      let distance =
        Dist.Empirical.statistical_distance (tag_distribution snap_before)
          (tag_distribution snap_after)
      in
      Stdx.Table_fmt.add_row t
        [
          Wre.Scheme.to_string kind;
          Printf.sprintf "%.1f%%" (100.0 *. score_before.record_recovery);
          Printf.sprintf "%.1f%%" (100.0 *. score_after.record_recovery);
          Printf.sprintf "%.3f" distance;
          string_of_int (Array.length novel);
        ])
    [
      Wre.Scheme.Det;
      Wre.Scheme.Poisson 1000.0;
      Wre.Scheme.Bucketized 1000.0;
    ];
  Stdx.Table_fmt.print t;
  Printf.printf
    "reading: appending records drawn from the profiled distribution leaves the\n\
     Poisson/bucketized attack recovery at baseline (paper IV: updates are plain\n\
     appends and stay snapshot-secure). The tag-frequency distance reflects\n\
     sampling noise plus the 1%% novel values, which fall back to minimum-\n\
     frequency salting. DET is broken before and after.\n"
