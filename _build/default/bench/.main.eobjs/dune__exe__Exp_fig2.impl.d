bench/exp_fig2.ml: Bench_util Dist Float Printf Stdx String
