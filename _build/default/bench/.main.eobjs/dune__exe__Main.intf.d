bench/main.mli:
