bench/exp_micro.ml: Analyze Array Attacks Bechamel Bench_util Benchmark Bytes Char Crypto Dist Hashtbl Instance List Measure Option Printf Staged Stdx String Test Time Toolkit Wre
