bench/exp_latency.ml: Array Bench_util List Printf Sparta Sqldb Stdx
