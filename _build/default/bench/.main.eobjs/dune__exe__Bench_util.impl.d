bench/bench_util.ml: Array Crypto Database Dist Executor List Pager Predicate Printf Sparta Sqldb Stdx Table Value Wre
