bench/exp_index_ablation.ml: Array Bench_util Crypto List Printf Sparta Sqldb Stdx Wre
