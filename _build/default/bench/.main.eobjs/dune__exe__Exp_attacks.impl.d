bench/exp_attacks.ml: Array Attacks Bench_util Crypto Dist List Printf Seq Sparta Stdx String Wre
