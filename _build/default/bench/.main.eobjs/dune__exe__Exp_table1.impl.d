bench/exp_table1.ml: Bench_util List Printf Sqldb Stdx Wre
