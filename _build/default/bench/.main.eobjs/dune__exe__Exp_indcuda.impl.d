bench/exp_indcuda.ml: Attacks Bench_util Float Int64 List Printf Stdx Wre
