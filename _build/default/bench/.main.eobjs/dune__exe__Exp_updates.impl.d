bench/exp_updates.ml: Array Attacks Bench_util Crypto Dist Int64 List Printf Seq Sparta Stdx String Wre
