bench/exp_correlation.ml: Array Attacks Bench_util Crypto Dist List Printf Sparta Stdx String Wre
