bench/main.ml: Array Bench_util Exp_aliasing Exp_attacks Exp_correlation Exp_fig2 Exp_fp Exp_indcuda Exp_index_ablation Exp_lambda Exp_latency Exp_micro Exp_table1 Exp_updates List Printf Sys
