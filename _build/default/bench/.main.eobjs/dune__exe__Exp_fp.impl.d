bench/exp_fp.ml: Array Bench_util List Printf Sparta Stdx Wre
