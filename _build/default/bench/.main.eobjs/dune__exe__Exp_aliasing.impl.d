bench/exp_aliasing.ml: Array Attacks Bench_util Crypto Dist List Option Printf Stdx String Wre
