bench/exp_lambda.ml: Array Bench_util Crypto Dist List Option Printf Seq Sparta Stdx String Wre
