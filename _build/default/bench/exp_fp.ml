(* Figures 8-9 — bucketized Poisson false positives. X axis: records a
   query truly matches (what non-bucketized Poisson returns); Y axis:
   records the bucketized query returns from the server. Fig 8 uses
   lambda = 1000 (weak correlation — result sizes are masked), Fig 9
   lambda = 10,000 (correlation visible). *)

let run_one ~rows ~dist_of ~queries lambda =
  Bench_util.heading
    (Printf.sprintf "Figure %s: Bucketized Poisson false positives (lambda = %g)"
       (if lambda < 5000.0 then "8" else "9")
       lambda);
  let _db, edb =
    let db, edb, _ = Bench_util.build_encrypted ~kind:(Wre.Scheme.Bucketized lambda) ~dist_of rows in
    (db, edb)
  in
  let pairs =
    List.map
      (fun (q : Sparta.Query_gen.query) ->
        let raw = Wre.Encrypted_db.search_ids edb ~column:q.column q.value in
        (q, Array.length raw.row_ids))
      queries
  in
  let t =
    Stdx.Table_fmt.create
      [ "column"; "value"; "true matches (X)"; "returned (Y)"; "false positives" ]
  in
  let shown = ref 0 in
  List.iter
    (fun ((q : Sparta.Query_gen.query), returned) ->
      if !shown < 18 then begin
        incr shown;
        Stdx.Table_fmt.add_row t
          [
            q.column;
            q.value;
            string_of_int q.expected;
            string_of_int returned;
            string_of_int (returned - q.expected);
          ]
      end)
    (List.sort
       (fun ((a : Sparta.Query_gen.query), _) (b, _) -> compare a.expected b.expected)
       pairs);
  Stdx.Table_fmt.print t;
  let correlation pairs =
    let xs =
      Array.of_list (List.map (fun ((q : Sparta.Query_gen.query), _) -> float_of_int q.expected) pairs)
    in
    let ys = Array.of_list (List.map (fun (_, r) -> float_of_int r) pairs) in
    Stdx.Stats.spearman xs ys
  in
  let small = List.filter (fun ((q : Sparta.Query_gen.query), _) -> q.expected <= 100) pairs in
  let fp_total =
    List.fold_left
      (fun acc ((q : Sparta.Query_gen.query), r) -> acc + r - q.expected)
      0 pairs
  in
  Printf.printf
    "%d queries: Spearman X~Y = %.3f overall, %.3f on queries with <= 100 true matches\n\
     (the range the masking matters for); mean false positives per query = %.1f\n"
    (List.length pairs) (correlation pairs)
    (if small = [] then nan else correlation small)
    (float_of_int fp_total /. float_of_int (List.length pairs))

let run ~rows:n_rows ~n_queries () =
  let rows = Bench_util.generate_rows n_rows in
  let dist_of = Bench_util.dist_of_rows rows in
  let queries = Bench_util.make_queries ~dist_of ~n:n_queries in
  run_one ~rows ~dist_of ~queries 1000.0;
  run_one ~rows ~dist_of ~queries 10_000.0;
  Printf.printf
    "\nreading: higher lambda -> narrower buckets -> returned size tracks true size\n\
     (Fig 9); lower lambda masks result sizes (Fig 8), which the paper suggests\n\
     as a defence against reconstruction-from-volume attacks.\n"
