(* Ablation A7 — access method for the tag columns. The paper relies on
   the DBMS's "built-in indexing techniques" without choosing one; tags
   are uniformly random 64-bit integers queried only by equality, so
   hash indexes are the natural fit. Compare B-tree and hash tag
   indexes on storage and cold-cache query cost, plus the HMAC-vs-
   SipHash tag PRF on bulk-load time. *)

let run ~rows:n_rows ~n_queries () =
  Bench_util.heading
    (Printf.sprintf "Ablation A7: tag index access method + tag PRF (%d rows)" n_rows);
  let rows = Bench_util.generate_rows n_rows in
  let dist_of = Bench_util.dist_of_rows rows in
  let queries = Bench_util.make_queries ~dist_of ~n:n_queries in
  let t =
    Stdx.Table_fmt.create
      [
        "configuration";
        "load wall (s)";
        "index MB";
        "cold SELECT ID total (ms)";
        "cold SELECT * total (ms)";
      ]
  in
  let build ~tag_index ~tag_algo label =
    let db = Sqldb.Database.create () in
    let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
    let edb =
      Wre.Encrypted_db.create ~tag_index ~tag_algo ~db ~name:"main"
        ~plain_schema:Sparta.Generator.schema ~key_column:"id"
        ~encrypted_columns:Bench_util.enc_columns ~kind:(Wre.Scheme.Poisson 1000.0) ~master
        ~dist_of ~seed:2L ()
    in
    let (), wall_ns =
      Stdx.Clock.time_it (fun () ->
          Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows)
    in
    let total projection =
      List.fold_left
        (fun acc (c : Bench_util.query_cost) -> acc +. c.sim_ms)
        0.0
        (Bench_util.run_encrypted_queries ~db ~edb ~projection ~mode:Bench_util.Cold queries)
    in
    let ids_ms = total Sqldb.Executor.Row_ids in
    let star_ms = total Sqldb.Executor.All_columns in
    Stdx.Table_fmt.add_row t
      [
        label;
        Printf.sprintf "%.2f" (wall_ns /. 1e9);
        Printf.sprintf "%.1f" (Bench_util.mib (Sqldb.Table.index_bytes (Wre.Encrypted_db.table edb)));
        Printf.sprintf "%.0f" ids_ms;
        Printf.sprintf "%.0f" star_ms;
      ]
  in
  build ~tag_index:Sqldb.Table_index.Btree ~tag_algo:Crypto.Prf.Hmac_sha256 "btree + hmac-sha256";
  build ~tag_index:Sqldb.Table_index.Hash ~tag_algo:Crypto.Prf.Hmac_sha256 "hash  + hmac-sha256";
  build ~tag_index:Sqldb.Table_index.Hash ~tag_algo:Crypto.Prf.Siphash24 "hash  + siphash-2-4";
  Stdx.Table_fmt.print t;
  Printf.printf
    "reading: a hash probe touches one bucket page where a B-tree walks a\n\
     root-to-leaf path, so the hash advantage on SELECT ID grows with table size\n\
     (tree height); at small scales the two are comparable and the hash pays\n\
     power-of-two directory rounding in storage. SipHash shaves the per-tag\n\
     crypto, a small slice of a load dominated by the 22 AES-CTR column\n\
     encryptions. Neither choice changes any security property: both remain a\n\
     PRF + an equality index, exactly the interface the paper assumes.\n"
