(* Ablation A2 — inference-attack recovery per scheme. Quantifies the
   paper's motivating claim (previous easily-deployable schemes fall to
   frequency analysis) and its central one (WRE with Poisson salts does
   not). Also runs the Lacharite-Paterson subset-sum matching attack
   against the Poisson scheme and shows bucketization removing it. *)

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'x') ~k1:(String.make 32 'y')

let run ~rows:n_records () =
  Bench_util.heading
    (Printf.sprintf "Ablation A2: inference attacks on the fname column (%d records)" n_records);
  let g = Stdx.Prng.create 9L in
  let gen = Sparta.Generator.create ~seed:Bench_util.data_seed in
  let plaintexts =
    Array.of_seq
      (Seq.map
         (fun r -> Sparta.Generator.column_string r ~column:"fname")
         (Sparta.Generator.rows gen ~n:n_records))
  in
  let dist = Dist.Empirical.of_values (Array.to_seq plaintexts) in
  let t =
    Stdx.Table_fmt.create
      [ "scheme"; "distinct tags"; "rank-matching"; "l1-matching"; "scheme-aware greedy"; "baseline" ]
  in
  List.iter
    (fun kind ->
      let enc = Wre.Column_enc.create ~master ~column:"fname" ~kind ~dist () in
      let snap = Attacks.Snapshot.of_column enc g ~plaintexts in
      let pct f = Printf.sprintf "%.1f%%" (100.0 *. f) in
      let rank = (Attacks.Metrics.score snap ~guess:(Attacks.Frequency.rank_matching snap)).record_recovery in
      let l1 =
        (Attacks.Metrics.score snap ~guess:(Attacks.Frequency.l1_matching ~max_tags:1200 snap ~kind))
          .record_recovery
      in
      let greedy =
        (Attacks.Metrics.score snap ~guess:(Attacks.Frequency.greedy_likelihood snap ~kind))
          .record_recovery
      in
      Stdx.Table_fmt.add_row t
        [
          Wre.Scheme.to_string kind;
          string_of_int (Attacks.Snapshot.n_distinct_tags snap);
          pct rank;
          pct l1;
          pct greedy;
          pct (Dist.Empirical.max_prob dist);
        ])
    [
      Wre.Scheme.Det;
      Wre.Scheme.Fixed 10;
      Wre.Scheme.Fixed 100;
      Wre.Scheme.Proportional 1000;
      Wre.Scheme.Poisson 100.0;
      Wre.Scheme.Poisson 1000.0;
      Wre.Scheme.Bucketized 1000.0;
    ];
  Stdx.Table_fmt.print t;

  Bench_util.heading "A2b: Lacharite-Paterson subset-sum matching attack (V-C limitation)";
  let t2 =
    Stdx.Table_fmt.create
      [ "scheme"; "target"; "expected count"; "subset found"; "tag precision"; "tag recall" ]
  in
  List.iter
    (fun kind ->
      let enc = Wre.Column_enc.create ~master ~column:"fname" ~kind ~dist () in
      let snap = Attacks.Snapshot.of_column enc g ~plaintexts in
      List.iter
        (fun target ->
          let r = Attacks.Subset_sum.attack snap ~target ~tolerance:2 () in
          Stdx.Table_fmt.add_row t2
            [
              Wre.Scheme.to_string kind;
              target;
              string_of_int r.expected_count;
              string_of_bool r.found;
              Printf.sprintf "%.2f" r.tag_precision;
              Printf.sprintf "%.2f" r.tag_recall;
            ])
        [ (Dist.Empirical.support dist).(0); (Dist.Empirical.support dist).(5) ])
    [ Wre.Scheme.Poisson 300.0; Wre.Scheme.Poisson 3000.0; Wre.Scheme.Bucketized 3000.0 ];
  Stdx.Table_fmt.print t2;
  Printf.printf
    "reading: the counting attack always *finds* a subset, but its precision\n\
     against Poisson WRE is far from 1 (a solution is not the correct one), and\n\
     under bucketization tag counts are plaintext-independent so precision is\n\
     meaningless noise — the attack the bucketized scheme was built to kill.\n"
