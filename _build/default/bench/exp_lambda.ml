(* Ablation A4 — the lambda trade-off surface (V-C / V-C1): security
   bound, per-query tag count, total distinct tags, and bucketized
   false-positive mass, for one real column. *)

let master = Crypto.Keys.of_raw ~k0:(String.make 16 'l') ~k1:(String.make 32 'L')

let run ~rows:n_records () =
  Bench_util.heading (Printf.sprintf "Ablation A4: lambda sweep on the city column (%d records)" n_records);
  let gen = Sparta.Generator.create ~seed:Bench_util.data_seed in
  let plaintexts =
    Array.of_seq
      (Seq.map
         (fun r -> Sparta.Generator.column_string r ~column:"city")
         (Sparta.Generator.rows gen ~n:n_records))
  in
  let dist = Dist.Empirical.of_values (Array.to_seq plaintexts) in
  let tau = Dist.Empirical.min_prob dist in
  Printf.printf "distinct cities: %d, tau = min P_M = %.5f\n" (Dist.Empirical.support_size dist) tau;
  let t =
    Stdx.Table_fmt.create
      [
        "lambda";
        "adv bound e^-lt";
        "mean tags/query";
        "total tags";
        "bucketized FP mass/query";
        "bucketized buckets";
      ]
  in
  let support = Dist.Empirical.support dist in
  List.iter
    (fun lambda ->
      let enc =
        Wre.Column_enc.create ~master ~column:"city" ~kind:(Wre.Scheme.Poisson lambda) ~dist ()
      in
      let tag_counts =
        Array.map (fun m -> List.length (Wre.Column_enc.search_tags enc m)) support
      in
      let total = Array.fold_left ( + ) 0 tag_counts in
      let benc =
        Wre.Column_enc.create ~master ~column:"city" ~kind:(Wre.Scheme.Bucketized lambda) ~dist ()
      in
      let layout = Option.get (Wre.Column_enc.bucket_layout benc) in
      let fp =
        Array.fold_left
          (fun acc m ->
            acc +. (Wre.Bucket_layout.returned_mass layout m -. Dist.Empirical.prob dist m))
          0.0 support
        /. float_of_int (Array.length support)
      in
      Stdx.Table_fmt.add_row t
        [
          Printf.sprintf "%g" lambda;
          Printf.sprintf "%.3g" (Dist.Exponential.distance_to_capped ~rate:lambda ~tau);
          Printf.sprintf "%.1f" (float_of_int total /. float_of_int (Array.length support));
          string_of_int total;
          Printf.sprintf "%.5f" fp;
          string_of_int (Wre.Bucket_layout.bucket_count layout);
        ])
    [ 100.0; 300.0; 1000.0; 3000.0; 10_000.0; 30_000.0 ];
  Stdx.Table_fmt.print t;
  Printf.printf
    "reading: the paper's single tuning knob. Security (column 2) and bucketized\n\
     result-masking improve with lambda; query cost (columns 3-4) grows linearly.\n\
     lambda >= ln(1/omega)/tau = %.0f reaches omega = 0.01 for this column.\n"
    (Dist.Exponential.lambda_for_security ~omega:0.01 ~tau)
