(* Quickstart: encrypt a small table with Poisson WRE, search it, and
   decrypt the results.

     dune exec examples/quickstart.exe *)

open Sqldb

let schema =
  Schema.create
    [
      { name = "id"; ty = TInt; nullable = false };
      { name = "name"; ty = TText; nullable = false };
      { name = "city"; ty = TText; nullable = false };
      { name = "balance"; ty = TInt; nullable = false };
    ]

let people =
  [
    ("Alice", "Portland", 1200L); ("Bob", "Portland", 300L); ("Carol", "Seattle", 870L);
    ("Alice", "Seattle", 55L); ("Dave", "Portland", 9000L); ("Alice", "Portland", 42L);
    ("Erin", "Boise", 777L); ("Bob", "Boise", 1L); ("Frank", "Portland", 3500L);
    ("Alice", "Boise", 250L);
  ]

let () =
  (* 1. Plaintext rows. *)
  let rows =
    List.mapi
      (fun i (name, city, balance) ->
        [| Value.Int (Int64.of_int i); Value.Text name; Value.Text city; Value.Int balance |])
      people
  in

  (* 2. The data owner profiles the plaintext distribution of each
        searchable column during initialization. *)
  let dist_of =
    Wre.Dist_est.of_rows ~schema ~columns:[ "name"; "city" ] (List.to_seq rows)
  in

  (* 3. Keys: two master secrets; every subkey is derived from them. *)
  let master = Crypto.Keys.generate (Stdx.Prng.create 0xC0FFEEL) in

  (* 4. Create the encrypted table inside an ordinary SQL database and
        load it. The server only ever sees tags and AES blobs. *)
  let db = Database.create () in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"accounts" ~plain_schema:schema ~key_column:"id"
      ~encrypted_columns:[ "name"; "city" ] ~kind:(Wre.Scheme.Poisson 50.0) ~master ~dist_of
      ~seed:42L ()
  in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;

  (* 5. Search: the client expands "name = Alice" into an OR over this
        plaintext's search tags; the server answers from its index. *)
  let query = Wre.Encrypted_db.search_predicate edb ~column:"name" "Alice" in
  Format.printf "SQL sent to the server:@.  SELECT * FROM accounts WHERE %a@.@." Predicate.pp
    query;

  let results, server_result = Wre.Encrypted_db.search_rows edb ~column:"name" "Alice" in
  Format.printf "server plan: %s, %d rows returned@."
    (match server_result.plan with
    | Executor.Index_scan c -> "index scan on " ^ c
    | Executor.Or_index_scan cs -> "index-union scan on " ^ String.concat ", " cs
    | Executor.Range_traverse c -> "range-tree traversal probing " ^ c
    | Executor.Seq_scan -> "sequential scan")
    (Array.length server_result.row_ids);
  Format.printf "decrypted results:@.";
  List.iter
    (fun row ->
      match row with
      | [| Value.Int id; Value.Text name; Value.Text city; Value.Int balance |] ->
          Format.printf "  id=%Ld name=%s city=%s balance=%Ld@." id name city balance
      | _ -> assert false)
    results;

  (* 6. What the snapshot adversary sees: tags and blobs only. *)
  let enc_row = Table.peek_row (Wre.Encrypted_db.table edb) 0 in
  Format.printf "@.one encrypted row at rest:@.  %s@."
    (String.concat ", " (Array.to_list (Array.map Value.to_string enc_row)))
