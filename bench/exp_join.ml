(* Encrypted equi-join experiment: tag-bucket hash join vs the naive
   "ship both tables" deployment (decrypt everything client-side, then
   hash-join plaintext), across the five schemes.

   The workload joins a large table [a] against a small table [b] whose
   join-column support is a narrow slice of [a]'s — the selective-join
   regime where server-side bucket resolution pays: the server touches
   only rows carrying shared-support tags, while the baseline decrypts
   both tables whole.

   Also measures what the join leaks: per-bucket candidate-pair counts
   are the join-degree distribution, attacked with rank matching
   against perfect auxiliary knowledge (Attacks.Join_leakage — the
   upper bound on this adversary).

   Emits BENCH_join.json with the [join_beats_client_side] gate (CI
   smoke: the tag join must beat the baseline for the flagship
   poisson-1000 scheme). *)

open Sqldb

let json_obj = Bench_util.json_obj

let schemes =
  [
    Wre.Scheme.Det;
    Wre.Scheme.Fixed 10;
    Wre.Scheme.Proportional 1000;
    Wre.Scheme.Poisson 1000.0;
    Wre.Scheme.Bucketized 1000.0;
  ]

let join_schema =
  Schema.create
    [
      { Schema.name = "id"; ty = Value.TInt; nullable = false };
      { Schema.name = "lname"; ty = Value.TText; nullable = false };
    ]

(* Shared support: left ranks [lo, lo+width) of the lname distribution.
   Tail-rank values keep the join selective (the regime the tag join is
   built for) while their counts still vary enough for the leakage
   attack to have something to rank. *)
let shared_lo = 100
let shared_width = 50

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 |> max 0))

let time_runs iters f =
  let walls = Array.init iters (fun _ -> snd (Stdx.Clock.time_it f)) in
  Array.sort compare walls;
  (percentile walls 50.0, percentile walls 99.0)

type row_result = {
  scheme : string;
  domains : int;
  candidate_pairs : int;
  result_rows : int;
  p50_ms : float;
  p99_ms : float;
  base_p50_ms : float;
  leak : Attacks.Join_leakage.t;
}

let run_scheme ~kind ~left_rows ~right_rows ~iters =
  let db = Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
  let dist_a = Dist.Empirical.of_values (Seq.map (fun (r : Value.t array) ->
      match r.(1) with Value.Text s -> s | _ -> assert false)
      (Array.to_seq left_rows))
  in
  let dist_b = Dist.Empirical.of_values (Seq.map (fun (r : Value.t array) ->
      match r.(1) with Value.Text s -> s | _ -> assert false)
      (Array.to_seq right_rows))
  in
  let mk name dist rows =
    let edb =
      Wre.Encrypted_db.create ~db ~name ~plain_schema:join_schema ~key_column:"id"
        ~encrypted_columns:[ "lname" ] ~kind ~master ~dist_of:(fun _ -> dist) ~seed:2L ()
    in
    ignore (Wre.Encrypted_db.insert_batch edb rows);
    edb
  in
  let ea = mk "a" dist_a left_rows in
  let eb = mk "b" dist_b right_rows in
  let proxy = Wre.Proxy.create_multi [ ea; eb ] in
  let sql = "SELECT * FROM a JOIN b ON a.lname = b.lname" in
  let join_at domains =
    if domains = 1 then fun () -> Result.get_ok (Wre.Proxy.execute proxy sql)
    else fun () ->
      Stdx.Task_pool.with_pool ~domains (fun pool ->
          Result.get_ok (Wre.Proxy.execute_snapshot ~pool proxy sql))
  in
  let reference = join_at 1 () in
  let jr = Option.get reference.Wre.Proxy.join_exec in
  (* Ship-both-tables baseline: full decrypt of both tables through the
     proxy, then a plaintext hash join client-side. *)
  let baseline () =
    let fetch t = (Result.get_ok (Wre.Proxy.execute proxy ("SELECT * FROM " ^ t))).Wre.Proxy.rows in
    let ra = fetch "a" and rb = fetch "b" in
    let h = Hashtbl.create 1024 in
    List.iter (fun (r : Value.t array) -> Hashtbl.add h r.(1) r) rb;
    List.fold_left
      (fun acc (r : Value.t array) -> acc + List.length (Hashtbl.find_all h r.(1)))
      0 ra
  in
  let base_n = baseline () in
  assert (base_n = List.length reference.Wre.Proxy.rows);
  let base_p50, _ = time_runs (max 3 (iters / 3)) (fun () -> ignore (baseline () : int)) in
  (* Leakage: observed per-bucket candidate counts vs ground-truth
     bucket plaintexts, auxiliary model = the true per-plaintext degree
     products (strongest aux: the attacker knows both distributions). *)
  let j =
    match Sql.parse sql with Ok (Sql.Select_join j) -> j | _ -> assert false
  in
  let buckets = Result.get_ok (Wre.Proxy.rewrite_join proxy j) in
  let actual = Array.map (fun (m, _, _) -> m) buckets in
  let aux =
    Array.map (fun m -> (m, Dist.Empirical.count dist_a m * Dist.Empirical.count dist_b m)) actual
  in
  let leak = Attacks.Join_leakage.measure ~observed:jr.Join.bucket_pairs ~actual ~aux in
  List.map
    (fun domains ->
      let p50, p99 = time_runs iters (fun () -> ignore (join_at domains () : Wre.Proxy.query_result)) in
      {
        scheme = Wre.Scheme.to_string kind;
        domains;
        candidate_pairs = Array.length jr.Join.pairs;
        result_rows = List.length reference.Wre.Proxy.rows;
        p50_ms = p50 /. 1e6;
        p99_ms = p99 /. 1e6;
        base_p50_ms = base_p50 /. 1e6;
        leak;
      })
    [ 1; 4 ]

let run ~rows () =
  (* Join cost grows with candidate pairs (degree products), not rows;
     cap the scale so the all-schemes sweep stays a smoke-sized run. *)
  let n = min rows 20_000 in
  if n < rows then Printf.printf "(join experiment capped at %d left rows)\n" n;
  Bench_util.heading
    (Printf.sprintf "Encrypted equi-join: tag-bucket join vs ship-both-tables (%d x %d rows)" n
       (n / 10));
  let gen = Sparta.Generator.create ~seed:Bench_util.data_seed in
  let lnames =
    Array.of_seq
      (Seq.map (fun r -> Sparta.Generator.column_string r ~column:"lname")
         (Sparta.Generator.rows gen ~n))
  in
  let left_rows =
    Array.mapi (fun i m -> [| Value.Int (Int64.of_int i); Value.Text m |]) lnames
  in
  (* Right side: rows drawn only from the shared slice of the left
     support, so the join is selective. *)
  let support = Dist.Empirical.support (Dist.Empirical.of_values (Array.to_seq lnames)) in
  let shared =
    Array.sub support (min shared_lo (Array.length support - 1))
      (min shared_width (Array.length support - shared_lo))
  in
  let g = Stdx.Prng.create 7L in
  let right_rows =
    Array.init (n / 10) (fun i ->
        [|
          Value.Int (Int64.of_int i);
          Value.Text shared.(Stdx.Prng.int g (Array.length shared));
        |])
  in
  let results =
    List.concat_map (fun kind -> run_scheme ~kind ~left_rows ~right_rows ~iters:9) schemes
  in
  let t =
    Stdx.Table_fmt.create
      [
        "scheme"; "domains"; "cand pairs"; "rows"; "join p50 (ms)"; "join p99 (ms)";
        "ship-both p50 (ms)"; "leak acc"; "leak pair-rec"; "leak l1";
      ]
  in
  List.iter
    (fun r ->
      Stdx.Table_fmt.add_row t
        [
          r.scheme;
          string_of_int r.domains;
          string_of_int r.candidate_pairs;
          string_of_int r.result_rows;
          Printf.sprintf "%.2f" r.p50_ms;
          Printf.sprintf "%.2f" r.p99_ms;
          Printf.sprintf "%.2f" r.base_p50_ms;
          Printf.sprintf "%.3f" r.leak.Attacks.Join_leakage.bucket_accuracy;
          Printf.sprintf "%.3f" r.leak.Attacks.Join_leakage.pair_recovery;
          Printf.sprintf "%.3f" r.leak.Attacks.Join_leakage.l1_distance;
        ])
    results;
  Stdx.Table_fmt.print t;
  let flagship =
    List.find (fun r -> r.scheme = "poisson-1000" && r.domains = 1) results
  in
  let join_beats_client_side = flagship.p50_ms < flagship.base_p50_ms in
  let metrics =
    List.concat_map
      (fun r ->
        let k suffix = Printf.sprintf "%s_%s_%dd" suffix r.scheme r.domains in
        [
          (k "join_qps", Printf.sprintf "%.2f" (1e3 /. r.p50_ms));
          (k "join_p50_ms", Printf.sprintf "%.3f" r.p50_ms);
          (k "join_p99_ms", Printf.sprintf "%.3f" r.p99_ms);
          (k "ship_both_p50_ms", Printf.sprintf "%.3f" r.base_p50_ms);
          (k "candidate_pairs", string_of_int r.candidate_pairs);
          (k "result_rows", string_of_int r.result_rows);
          (k "leak_bucket_accuracy", Printf.sprintf "%.4f" r.leak.Attacks.Join_leakage.bucket_accuracy);
          (k "leak_pair_recovery", Printf.sprintf "%.4f" r.leak.Attacks.Join_leakage.pair_recovery);
          (k "leak_degree_l1", Printf.sprintf "%.4f" r.leak.Attacks.Join_leakage.l1_distance);
        ])
      results
    @ [ ("join_beats_client_side", if join_beats_client_side then "true" else "false") ]
  in
  let json =
    json_obj
      [
        ("name", "\"join\"");
        ( "config",
          json_obj
            [
              ("left_rows", string_of_int n);
              ("right_rows", string_of_int (n / 10));
              ("shared_support", string_of_int (Array.length shared));
              ("on_column", "\"lname\"");
              ("baseline", "\"ship both tables, decrypt all, client hash join\"");
            ] );
        ("metrics", json_obj metrics);
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_join.json" json;
  Printf.printf "wrote BENCH_join.json (tag join beats ship-both under poisson-1000: %b)\n"
    join_beats_client_side
