(* Recovery cost: reopening a durable store after a crash, with and
   without a checkpoint. The checkpointed store replays only the WAL
   tail written since the last snapshot; the never-checkpointed store
   replays its entire history. The gap is the whole argument for
   checkpointing — recovery time bounded by the tail, not the table.

   Emits BENCH_recovery.json ({"name","config","metrics"}) so later
   PRs have a recovery-latency trajectory to compare against. *)

let tail_ops = 50
let open_trials = 3

let json_obj = Bench_util.json_obj

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let fresh_dir label =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wre_bench_recovery_%s.%d" label (Unix.getpid ()))
  in
  if Sys.file_exists dir then rm_rf dir;
  dir

let create_store ~dir ~dist_of =
  let store = Store.Engine.open_dir ~group_commit:1024 ~dir () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
  let edb =
    Store.Engine.create_encrypted store ~name:"main" ~plain_schema:Sparta.Generator.schema
      ~key_column:"id" ~encrypted_columns:Bench_util.enc_columns
      ~kind:(Wre.Scheme.Poisson 1000.0) ~master ~dist_of ~seed:2L ()
  in
  (store, edb)

(* Mean reopen wall time over [open_trials] runs, plus the recovery
   stats of the last one for sanity checks. *)
let measure_reopen dir =
  let total = ref 0.0 in
  let last = ref None in
  for _ = 1 to open_trials do
    let store = Store.Engine.open_dir ~dir () in
    let r = Store.Engine.recovery store in
    total := !total +. r.Store.Engine.duration_ns;
    last := Some r;
    Store.Engine.close store
  done;
  (!total /. float_of_int open_trials, Option.get !last)

let run ~rows:n () =
  Bench_util.heading
    (Printf.sprintf "Recovery: reopen %d rows, checkpoint + %d-op tail vs full WAL replay" n
       tail_ops);
  let rows = Bench_util.generate_rows n in
  let dist_of = Bench_util.dist_of_rows rows in
  let probe = Sparta.Generator.column_string rows.(0) ~column:"lname" in
  (* Checkpointed store: bulk load, snapshot, then a short tail. *)
  let dir_ckpt = fresh_dir "ckpt" in
  let store, edb = create_store ~dir:dir_ckpt ~dist_of in
  let (), load_ns =
    Stdx.Clock.time_it (fun () -> ignore (Wre.Encrypted_db.insert_batch edb rows : int))
  in
  let (), ckpt_ns = Stdx.Clock.time_it (fun () -> Store.Engine.checkpoint store) in
  for i = 0 to tail_ops - 1 do
    ignore (Wre.Encrypted_db.insert edb rows.(i mod n))
  done;
  let expected_hits =
    Array.length (Wre.Encrypted_db.search_ids edb ~column:"lname" probe).Sqldb.Executor.row_ids
  in
  Store.Engine.close store;
  (* WAL-only store: same rows, one record per insert, never
     checkpointed — the recovery worst case. *)
  let dir_wal = fresh_dir "wal" in
  let store, edb = create_store ~dir:dir_wal ~dist_of in
  Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
  Store.Engine.close store;
  let ckpt_ns_mean, ckpt_rec = measure_reopen dir_ckpt in
  let wal_ns_mean, wal_rec = measure_reopen dir_wal in
  (* Sanity: the checkpointed store replays only its tail, and the
     recovered database answers queries identically. *)
  assert ckpt_rec.Store.Engine.snapshot_loaded;
  assert (ckpt_rec.Store.Engine.replayed = tail_ops);
  assert (not wal_rec.Store.Engine.snapshot_loaded);
  assert (wal_rec.Store.Engine.replayed > n);
  let store = Store.Engine.open_dir ~dir:dir_ckpt () in
  let edb = Option.get (Store.Engine.encrypted store "main") in
  let hits =
    Array.length (Wre.Encrypted_db.search_ids edb ~column:"lname" probe).Sqldb.Executor.row_ids
  in
  assert (hits = expected_hits);
  assert (Sqldb.Table.row_count (Wre.Encrypted_db.table edb) = n + tail_ops);
  Store.Engine.close store;
  let t = Stdx.Table_fmt.create [ "store"; "snapshot"; "records replayed"; "reopen (ms)" ] in
  Stdx.Table_fmt.add_row t
    [
      "checkpoint + tail";
      "yes";
      string_of_int ckpt_rec.Store.Engine.replayed;
      Printf.sprintf "%.2f" (ckpt_ns_mean /. 1e6);
    ];
  Stdx.Table_fmt.add_row t
    [
      "full WAL replay";
      "no";
      string_of_int wal_rec.Store.Engine.replayed;
      Printf.sprintf "%.2f" (wal_ns_mean /. 1e6);
    ];
  Stdx.Table_fmt.print t;
  let json =
    json_obj
      [
        ("name", "\"recovery\"");
        ( "config",
          json_obj
            [
              ("rows", string_of_int n);
              ("tail_ops", string_of_int tail_ops);
              ("open_trials", string_of_int open_trials);
              ("scheme", "\"poisson-1000\"");
            ] );
        ( "metrics",
          json_obj
            [
              ("load_s", Printf.sprintf "%.3f" (load_ns /. 1e9));
              ("checkpoint_s", Printf.sprintf "%.3f" (ckpt_ns /. 1e9));
              ("ckpt_reopen_ms", Printf.sprintf "%.3f" (ckpt_ns_mean /. 1e6));
              ("ckpt_replayed", string_of_int ckpt_rec.Store.Engine.replayed);
              ("wal_reopen_ms", Printf.sprintf "%.3f" (wal_ns_mean /. 1e6));
              ("wal_replayed", string_of_int wal_rec.Store.Engine.replayed);
              ( "speedup",
                Printf.sprintf "%.2f" (wal_ns_mean /. Float.max ckpt_ns_mean 1.0) );
            ] );
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_recovery.json" json;
  Printf.printf "wrote BENCH_recovery.json (tail-bounded reopen is %.1fx faster than full replay)\n"
    (wal_ns_mean /. Float.max ckpt_ns_mean 1.0);
  rm_rf dir_ckpt;
  rm_rf dir_wal
