(* Aggregate query throughput of the snapshot-read path: one frozen
   epoch view served by D reader domains at once (Fig. 4 workload —
   SPARTA rows, Poisson λ=1000 tags, the paper's query mix).

   The container pins the build to one core, so wall-clock cannot show
   the win; the headline metric is the same simulated-storage clock
   every latency figure uses. Each query's [stats] is its own
   domain-local pager delta (exact under concurrency — that is the
   point of the atomic/DLS accounting), so a domain's modeled busy
   time is the sum of its queries' sim_ns and the fleet's makespan is
   the slowest domain. Aggregate modeled throughput is
   queries / makespan; round-robin placement of an even mix should
   scale it near-linearly in D.

   Emits BENCH_concurrency.json so later PRs have a scaling trajectory
   to compare against. *)

open Sqldb

let domain_counts = [ 1; 2; 4 ]
let json_obj = Bench_util.json_obj

type domain_run = { served : int; busy_ns : float }

(* Longest-processing-time placement: sort by expected result size
   (the dispatcher knows every value's plaintext count from the
   profiled distribution) and give each query to the least-loaded
   domain. Round-robin is a trap here — the SPARTA query mix cycles
   result-size buckets with a fixed stride, and when that stride
   divides the domain count every heavy query lands on one domain. *)
let assign ~domains queries =
  let loads = Array.make domains 0.0 in
  let slices = Array.make domains [] in
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      let d = ref 0 in
      for i = 1 to domains - 1 do
        if loads.(i) < loads.(!d) then d := i
      done;
      loads.(!d) <- loads.(!d) +. float_of_int (max 1 q.expected);
      slices.(!d) <- q :: slices.(!d))
    (List.stable_sort
       (fun (a : Sparta.Query_gen.query) b -> compare b.expected a.expected)
       queries);
  Array.map List.rev slices

(* Serve [queries] across [domains] reader domains, all against the
   same frozen view. Returns per-domain modeled busy time plus the
   wall clock of the whole fan-out. *)
let serve ~edb ~view ~domains queries =
  let slices = assign ~domains queries in
  let slice d = slices.(d) in
  let serve_slice d () =
    List.fold_left
      (fun acc (q : Sparta.Query_gen.query) ->
        let r = Wre.Encrypted_db.search_ids_view edb ~view ~column:q.column q.value in
        { served = acc.served + 1; busy_ns = acc.busy_ns +. r.Executor.stats.sim_ns })
      { served = 0; busy_ns = 0.0 }
      (slice d)
  in
  let (own, others), wall_ns =
    Stdx.Clock.time_it (fun () ->
        let spawned = Array.init (domains - 1) (fun i -> Domain.spawn (serve_slice (i + 1))) in
        let own = serve_slice 0 () in
        (own, Array.map Domain.join spawned))
  in
  (Array.append [| own |] others, wall_ns)

let run ~rows:n ~n_queries () =
  Bench_util.heading
    (Printf.sprintf "Concurrency: snapshot reads, %d rows, poisson-1000, %d queries, domains %s" n
       n_queries
       (String.concat "/" (List.map string_of_int domain_counts)));
  let rows = Bench_util.generate_rows n in
  let dist_of = Bench_util.dist_of_rows rows in
  let db, edb, _ = Bench_util.build_encrypted ~kind:(Wre.Scheme.Poisson 1000.0) ~dist_of rows in
  let queries = Bench_util.make_queries ~dist_of ~n:n_queries in
  let view = Wre.Encrypted_db.freeze edb in
  (* Warm protocol: one priming pass fills the buffer pool, so every
     measured run pays the same probe/row/transfer charges and domain
     counts are compared on identical footing (no cross-domain races
     over who pays a cold miss). *)
  ignore (db : Database.t);
  List.iter
    (fun (q : Sparta.Query_gen.query) ->
      ignore (Wre.Encrypted_db.search_ids_view edb ~view ~column:q.column q.value))
    queries;
  (if Sys.getenv_opt "WRE_BENCH_DEBUG" <> None then
     let costs =
       List.map
         (fun (q : Sparta.Query_gen.query) ->
           let r = Wre.Encrypted_db.search_ids_view edb ~view ~column:q.column q.value in
           (r.Executor.stats.sim_ns, q.column, q.value, q.expected, r.Executor.stats.rows_examined))
         queries
       |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare b a)
     in
     List.iteri
       (fun i (s, c, v, e, re) ->
         if i < 8 then
           Printf.printf "%.3f ms  %s=%s expected=%d rows_examined=%d\n" (s /. 1e6) c v e re)
       costs);
  let t =
    Stdx.Table_fmt.create
      [ "domains"; "makespan (sim ms)"; "modeled qps"; "wall (ms)"; "speedup vs 1d" ]
  in
  let results =
    List.map
      (fun domains ->
        let per_domain, wall_ns = serve ~edb ~view ~domains queries in
        if Sys.getenv_opt "WRE_BENCH_DEBUG" <> None then
          Array.iteri
            (fun i r ->
              Printf.printf "D=%d dom%d served=%d busy=%.3f ms\n" domains i r.served
                (r.busy_ns /. 1e6))
            per_domain;
        let makespan_ns = Array.fold_left (fun m r -> Float.max m r.busy_ns) 0.0 per_domain in
        let served = Array.fold_left (fun s r -> s + r.served) 0 per_domain in
        assert (served = n_queries);
        let qps = float_of_int n_queries /. (makespan_ns /. 1e9) in
        (domains, makespan_ns, qps, wall_ns))
      domain_counts
  in
  let qps_of d = let _, _, q, _ = List.find (fun (d', _, _, _) -> d' = d) results in q in
  List.iter
    (fun (domains, makespan_ns, qps, wall_ns) ->
      Stdx.Table_fmt.add_row t
        [
          string_of_int domains;
          Printf.sprintf "%.1f" (makespan_ns /. 1e6);
          Printf.sprintf "%.1f" qps;
          Printf.sprintf "%.1f" (wall_ns /. 1e6);
          Printf.sprintf "%.2fx" (qps /. qps_of 1);
        ])
    results;
  Stdx.Table_fmt.print t;
  let metrics =
    List.concat_map
      (fun (domains, makespan_ns, qps, wall_ns) ->
        [
          (Printf.sprintf "modeled_qps_%dd" domains, Printf.sprintf "%.2f" qps);
          (Printf.sprintf "makespan_sim_ms_%dd" domains, Printf.sprintf "%.3f" (makespan_ns /. 1e6));
          (Printf.sprintf "wall_ms_%dd" domains, Printf.sprintf "%.1f" (wall_ns /. 1e6));
        ])
      results
    @ [ ("speedup_modeled_4d_vs_1d", Printf.sprintf "%.3f" (qps_of 4 /. qps_of 1)) ]
  in
  let json =
    json_obj
      [
        ("name", "\"concurrency\"");
        ( "config",
          json_obj
            [
              ("rows", string_of_int n);
              ("queries", string_of_int n_queries);
              ("scheme", "\"poisson-1000\"");
              ("protocol", "\"warm, snapshot view, round-robin\"");
              ( "domain_counts",
                "[" ^ String.concat ", " (List.map string_of_int domain_counts) ^ "]" );
              ("cores", string_of_int (Domain.recommended_domain_count ()));
            ] );
        ("metrics", json_obj metrics);
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_concurrency.json" json;
  Printf.printf "wrote BENCH_concurrency.json (modeled 4-domain speedup %.2fx)\n"
    (qps_of 4 /. qps_of 1)
