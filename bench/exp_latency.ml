(* Figures 4-7 — query response time by result size, for the paper's
   six configurations (plaintext, Fixed 100/1000, Poisson lambda
   100/1000/10000), under the four protocols:

     Fig 4: cold cache,  SELECT ID
     Fig 5: cold cache,  SELECT *
     Fig 6: warm cache,  SELECT ID
     Fig 7: warm cache,  SELECT *

   Each scheme's database is built once and reused for all four
   figures; the reported metric is the simulated-storage latency
   (misses x disk + CPU), the axis the paper's figures vary. *)

type series = {
  name : string;
  fig4 : float option array;
  fig5 : float option array;
  fig6 : float option array;
  fig7 : float option array;
  cold_total_ms : float;
  warm_total_ms : float;
}

let run_scheme ~rows ~dist_of ~queries (name, kind_opt) =
  Printf.printf "  building %-14s ...%!" name;
  let (run_all : Sqldb.Executor.projection -> Bench_util.cache_mode -> Bench_util.query_cost list)
      =
    match kind_opt with
    | None ->
        let db, table, _ = Bench_util.build_plain rows in
        fun projection mode ->
          Bench_util.run_plain_queries ~db ~table ~projection ~mode queries
    | Some kind ->
        let db, edb, _ = Bench_util.build_encrypted ~kind ~dist_of rows in
        fun projection mode ->
          Bench_util.run_encrypted_queries ~db ~edb ~projection ~mode queries
  in
  (* Cold runs first (each query drops caches); a full SELECT * pass
     then fills the buffer pool so the warm runs really are warm — the
     paper's "cache was left alone" scenario. *)
  let cold_ids = run_all Sqldb.Executor.Row_ids Bench_util.Cold in
  let cold_star = run_all Sqldb.Executor.All_columns Bench_util.Cold in
  let _warmup = run_all Sqldb.Executor.All_columns Bench_util.Warm in
  let warm_ids = run_all Sqldb.Executor.Row_ids Bench_util.Warm in
  let warm_star = run_all Sqldb.Executor.All_columns Bench_util.Warm in
  Printf.printf " done\n%!";
  let total costs =
    List.fold_left (fun acc (c : Bench_util.query_cost) -> acc +. c.sim_ms) 0.0 costs
  in
  {
    name;
    fig4 = Bench_util.by_bucket cold_ids;
    fig5 = Bench_util.by_bucket cold_star;
    fig6 = Bench_util.by_bucket warm_ids;
    fig7 = Bench_util.by_bucket warm_star;
    cold_total_ms = total cold_star;
    warm_total_ms = total warm_star;
  }

let print_figure title pick (all : series list) =
  Bench_util.heading title;
  let t =
    Stdx.Table_fmt.create
      ("scheme \\ result size"
      :: List.init 5 (fun b -> Sparta.Query_gen.bucket_label b ^ " (ms)"))
  in
  List.iter
    (fun s ->
      Stdx.Table_fmt.add_row t (s.name :: Array.to_list (Array.map Bench_util.fmt_opt (pick s))))
    all;
  Stdx.Table_fmt.print t

(* Per-phase latency percentiles + pipeline counters for the encrypted
   query path, pulled from the Obs registry the run just filled. The
   {"name","config","metrics"} shape matches BENCH_ingest.json. *)
let write_query_json ~rows ~n_queries =
  let phases =
    [ "query.rewrite_ns"; "query.exec_ns"; "query.decrypt_ns"; "query.filter_ns"; "executor.wall_ns" ]
  in
  let counter name = string_of_int (Obs.Metrics.counter_value (Obs.Metrics.counter name)) in
  let json =
    Bench_util.json_obj
      [
        ("name", "\"query\"");
        ( "config",
          Bench_util.json_obj
            [
              ("rows", string_of_int rows);
              ("queries_per_protocol", string_of_int n_queries);
              ( "schemes",
                "["
                ^ String.concat ", "
                    (List.map (fun (n, _) -> Printf.sprintf "%S" n) Bench_util.schemes_for_latency)
                ^ "]" );
            ] );
        ( "metrics",
          Bench_util.json_obj
            (List.map (fun p -> (p, Bench_util.json_histogram p)) phases
            @ List.map
                (fun c -> (c, counter c))
                [
                  "executor.queries_total";
                  "executor.plan_index_total";
                  "executor.plan_or_index_total";
                  "executor.plan_seq_total";
                  "edb.rows_decrypted_total";
                  "column_enc.salt_cache_hits_total";
                  "column_enc.salt_cache_misses_total";
                ]) );
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_query.json" json;
  Printf.printf "wrote BENCH_query.json (per-phase percentiles from the metrics registry)\n"

let run ~rows:n_rows ~n_queries () =
  Bench_util.heading
    (Printf.sprintf "Figures 4-7: query latency, %d rows, %d queries per protocol" n_rows
       n_queries);
  (* Clean registry so BENCH_query.json reflects only this run. *)
  Obs.Metrics.reset_all ();
  let rows = Bench_util.generate_rows n_rows in
  let dist_of = Bench_util.dist_of_rows rows in
  let queries = Bench_util.make_queries ~dist_of ~n:n_queries in
  let all = List.map (run_scheme ~rows ~dist_of ~queries) Bench_util.schemes_for_latency in
  print_figure "Figure 4: cold cache, SELECT ID" (fun s -> s.fig4) all;
  print_figure "Figure 5: cold cache, SELECT *" (fun s -> s.fig5) all;
  print_figure "Figure 6: warm cache, SELECT ID" (fun s -> s.fig6) all;
  print_figure "Figure 7: warm cache, SELECT *" (fun s -> s.fig7) all;
  (* The paper's headline: Poisson within ~27% of plaintext. *)
  (match
     ( List.find_opt (fun s -> s.name = "plaintext") all,
       List.find_opt (fun s -> s.name = "poisson-100") all )
   with
  | Some p, Some w ->
      Printf.printf
        "\nSELECT * totals vs plaintext (paper claim: Poisson within ~27%%):\n\
        \  cold: plaintext %.1f ms, poisson-100 %.1f ms (+%.0f%%)\n\
        \  warm: plaintext %.1f ms, poisson-100 %.1f ms (+%.0f%%)\n"
        p.cold_total_ms w.cold_total_ms
        (100.0 *. ((w.cold_total_ms /. p.cold_total_ms) -. 1.0))
        p.warm_total_ms w.warm_total_ms
        (100.0 *. ((w.warm_total_ms /. p.warm_total_ms) -. 1.0))
  | _ -> ());
  write_query_json ~rows:n_rows ~n_queries
