(* Shared machinery for the experiment harness: dataset construction,
   query execution under the paper's cold/warm protocols, and result
   aggregation by result-size bucket. *)

open Sqldb

type scale = { label : string; rows : int }

let scales = [ ("100k", 100_000); ("1m", 1_000_000); ("10m", 10_000_000) ]

let default_rows = 100_000

let data_seed = 20_190_624L (* DSN 2019 *)

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let generate_rows n =
  let gen = Sparta.Generator.create ~seed:data_seed in
  Array.of_seq (Sparta.Generator.rows gen ~n)

(* Same rows as {!generate_rows}, as a fresh single-pass sequence — the
   10M-row ingest path streams these into chunks instead of holding the
   whole plaintext array. *)
let row_seq n = Sparta.Generator.rows (Sparta.Generator.create ~seed:data_seed) ~n

let enc_columns = Sparta.Generator.encrypted_columns

let dist_of_rows rows =
  Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema ~columns:enc_columns (Array.to_seq rows)

(* Streaming profile pass: one generator sweep, no materialized rows. *)
let dist_of_scale n =
  Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema ~columns:enc_columns (row_seq n)

(* Peak resident set (VmHWM) in MiB, from /proc/self/status; 0.0 where
   procfs is unavailable. High-water mark, so read it at exit. *)
let peak_rss_mib () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception _ -> 0.0
  | status -> (
      let rec find = function
        | [] -> 0.0
        | line :: rest ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
                (fun kb -> float_of_int kb /. 1024.0)
            else find rest
      in
      try find (String.split_on_char '\n' status) with Scanf.Scan_failure _ | End_of_file -> 0.0)

(* Plaintext reference database: same table, same indexed columns. *)
let build_plain rows =
  let db = Database.create () in
  let t = Database.create_table db ~name:"main" ~schema:Sparta.Generator.schema in
  ignore (Table.create_index t ~column:"id");
  List.iter (fun c -> ignore (Table.create_index t ~column:c)) enc_columns;
  let (), wall_ns =
    Stdx.Clock.time_it (fun () -> Array.iter (fun r -> ignore (Table.insert t r)) rows)
  in
  (db, t, wall_ns)

let build_encrypted ~kind ~dist_of rows =
  let db = Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"main" ~plain_schema:Sparta.Generator.schema
      ~key_column:"id" ~encrypted_columns:enc_columns ~kind ~master ~dist_of ~seed:2L ()
  in
  let (), wall_ns =
    Stdx.Clock.time_it (fun () ->
        Array.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows)
  in
  (db, edb, wall_ns)

let make_queries ~dist_of ~n =
  Sparta.Query_gen.generate ~seed:3L ~columns:enc_columns
    ~counts:(fun col ->
      let d = dist_of col in
      Array.to_list
        (Array.map (fun v -> (v, Dist.Empirical.count d v)) (Dist.Empirical.support d)))
    ~n ()

(* Creation cost = wall-clock client work (crypto and row building)
   plus the simulated write I/O for every dirtied page (heap +
   indexes), matching the paper's end-to-end load measurement. *)
let creation_seconds ~pager ~total_bytes ~wall_ns =
  let pages = float_of_int total_bytes /. float_of_int (Pager.config pager).page_size in
  (wall_ns +. (pages *. (Pager.config pager).io_miss_ns)) /. 1e9

type cache_mode = Cold | Warm

type query_cost = {
  bucket : int;
  returned : int;
  sim_ms : float;
  wall_ms : float;
}

(* Run the query mix against a plaintext table. *)
let run_plain_queries ~db ~table ~projection ~mode queries =
  List.map
    (fun (q : Sparta.Query_gen.query) ->
      if mode = Cold then Database.drop_caches db;
      let r =
        Executor.run table ~projection (Predicate.Eq (q.column, Value.Text q.value))
      in
      {
        bucket = Sparta.Query_gen.bucket_of q.expected;
        returned = Array.length r.row_ids;
        sim_ms = Pager.sim_ms r.stats;
        wall_ms = r.wall_ns /. 1e6;
      })
    queries

(* Run the query mix against an encrypted database. The client-side
   work (computing tags, decrypting results) is part of wall time, as
   in the paper ("the time shown for each query includes the time to
   compute the encrypted query"). *)
let run_encrypted_queries ~db ~edb ~projection ~mode queries =
  List.map
    (fun (q : Sparta.Query_gen.query) ->
      if mode = Cold then Database.drop_caches db;
      let (result : Executor.result), wall_ns =
        Stdx.Clock.time_it (fun () ->
            match projection with
            | Executor.Row_ids -> Wre.Encrypted_db.search_ids edb ~column:q.column q.value
            | Executor.All_columns ->
                snd (Wre.Encrypted_db.search_rows edb ~column:q.column q.value))
      in
      {
        bucket = Sparta.Query_gen.bucket_of q.expected;
        returned = Array.length result.row_ids;
        sim_ms = Pager.sim_ms result.stats;
        wall_ms = wall_ns /. 1e6;
      })
    queries

(* Mean cost per result-size bucket; buckets with no queries yield
   None. *)
let by_bucket costs =
  Array.init 5 (fun b ->
      let sims =
        List.filter_map (fun c -> if c.bucket = b then Some c.sim_ms else None) costs
      in
      if sims = [] then None else Some (Stdx.Stats.mean (Array.of_list sims)))

let fmt_opt = function None -> "-" | Some v -> Printf.sprintf "%.2f" v

(* Minimal JSON emission for the BENCH_*.json trajectory files; values
   are pre-rendered strings so callers control formatting. *)
let json_field_list fields =
  String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)

let json_obj fields = "{" ^ json_field_list fields ^ "}"

(* Percentile summary of a registered histogram, straight from the
   process-wide registry. *)
let json_histogram name =
  let s = Obs.Metrics.summarize (Obs.Metrics.histogram name) in
  json_obj
    [
      ("count", string_of_int s.Obs.Metrics.count);
      ("mean_ns", Printf.sprintf "%.1f" s.Obs.Metrics.mean_ns);
      ("p50_ns", Printf.sprintf "%.1f" s.Obs.Metrics.p50_ns);
      ("p95_ns", Printf.sprintf "%.1f" s.Obs.Metrics.p95_ns);
      ("p99_ns", Printf.sprintf "%.1f" s.Obs.Metrics.p99_ns);
      ("max_ns", Printf.sprintf "%.1f" s.Obs.Metrics.max_ns);
    ]

(* Atomic publish: a crash (or Ctrl-C) mid-run never leaves a torn
   BENCH_*.json for the figure scripts to trip over. *)
let write_bench_json ~path json = Store.Io.atomic_write_text ~path (json ^ "\n")

let schemes_for_latency =
  [
    ("plaintext", None);
    ("fixed-100", Some (Wre.Scheme.Fixed 100));
    ("fixed-1000", Some (Wre.Scheme.Fixed 1000));
    ("poisson-100", Some (Wre.Scheme.Poisson 100.0));
    ("poisson-1000", Some (Wre.Scheme.Poisson 1000.0));
    ("poisson-10000", Some (Wre.Scheme.Poisson 10_000.0));
  ]

let heading title =
  Printf.printf "\n=== %s ===\n%!" title
