(* Multi-client server throughput: closed-loop clients against a live
   wre_server daemon over a Unix-domain socket, comparing batch-size-1
   admission (every read is its own epoch, one domain) against batched
   admission (reads arriving within the window share one freeze and fan
   over the pool).

   The container pins the build to one core, so wall-clock cannot show
   the fan-out win; as in exp_concurrency the headline metric is the
   simulated storage clock. The daemon already accounts it per batch:
   [server.batch_makespan_sim_ns_total] accumulates each batch's
   critical path (max per-domain busy sum), so modeled throughput is
   queries / total makespan. Client-side wall latency per query gives
   the p50/p99 the paper-style tables want.

   Emits BENCH_server.json, including the [batched_beats_batch1]
   verdict CI greps for. *)

let json_obj = Bench_util.json_obj
let client_counts = [ 10; 100; 1000 ]
let queries_per_run = 240

type config = { label : string; domains : int; window_ns : float; batch_max : int }

let configs =
  [
    { label = "batch1"; domains = 1; window_ns = 0.0; batch_max = 1 };
    { label = "batched"; domains = 4; window_ns = 2e6; batch_max = 256 };
  ]

type run_result = {
  clients : int;
  config : string;
  wall_qps : float;
  modeled_qps : float;
  p50_ms : float;
  p99_ms : float;
  batches : int;
  mean_batch : float;
}

(* One closed-loop client: connect, run its share of the query list
   (one outstanding request at a time), record per-query wall ns. *)
let client_thread ~socket_path ~sqls ~latencies ~failures ~slot () =
  match Server.Client.connect ~socket_path () with
  | Error _ -> Atomic.incr failures
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          List.iteri
            (fun i sql ->
              let r, ns = Stdx.Clock.time_it (fun () -> Server.Client.query c sql) in
              (match r with Ok _ -> () | Error _ -> Atomic.incr failures);
              latencies.(slot + i) <- ns)
            sqls)

let percentile_ms sorted p =
  if Array.length sorted = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int (Array.length sorted))) - 1 in
    sorted.(max 0 (min (Array.length sorted - 1) idx)) /. 1e6

let run_config ~store ~dir ~sqls ~clients cfg =
  let socket_path = Filename.concat dir (Printf.sprintf "bench_%s_%d.sock" cfg.label clients) in
  let daemon_cfg =
    {
      Server.Daemon.socket_path;
      domains = cfg.domains;
      window_ns = cfg.window_ns;
      batch_max = cfg.batch_max;
      backlog = 1024;
    }
  in
  match Server.Daemon.start daemon_cfg store with
  | Error e -> failwith ("exp_server: " ^ e)
  | Ok d ->
      Fun.protect
        ~finally:(fun () -> Server.Daemon.stop d)
        (fun () ->
          let per_client = max 1 (queries_per_run / clients) in
          let total = per_client * clients in
          (* Every client gets exactly [per_client] statements, cycling
             the query list so totals stay exact at any client count. *)
          let sqls_arr = Array.of_list sqls in
          let share i =
            List.init per_client (fun j ->
                sqls_arr.(((i * per_client) + j) mod Array.length sqls_arr))
          in
          let latencies = Array.make total 0.0 in
          let failures = Atomic.make 0 in
          Obs.Metrics.reset_all ();
          let (), wall_ns =
            Stdx.Clock.time_it (fun () ->
                let threads =
                  List.init clients (fun i ->
                      Thread.create
                        (client_thread ~socket_path ~sqls:(share i) ~latencies ~failures
                           ~slot:(i * per_client))
                        ())
                in
                List.iter Thread.join threads)
          in
          if Atomic.get failures > 0 then
            failwith (Printf.sprintf "exp_server: %d client failures" (Atomic.get failures));
          let makespan_ns =
            float_of_int
              (Obs.Metrics.counter_value
                 (Obs.Metrics.counter "server.batch_makespan_sim_ns_total"))
          in
          let batches =
            Obs.Metrics.counter_value (Obs.Metrics.counter "server.batches_total")
          in
          let batch_summary = Obs.Metrics.summarize (Obs.Metrics.histogram "server.batch_size") in
          let sorted = Array.copy latencies in
          Array.sort compare sorted;
          {
            clients;
            config = cfg.label;
            wall_qps = float_of_int total /. (wall_ns /. 1e9);
            modeled_qps = float_of_int total /. (makespan_ns /. 1e9);
            p50_ms = percentile_ms sorted 50.0;
            p99_ms = percentile_ms sorted 99.0;
            batches;
            mean_batch = batch_summary.Obs.Metrics.mean_ns (* histogram reused for sizes *);
          })

let run ~rows:requested ~n_queries:_ () =
  let n = min requested 20_000 in
  Bench_util.heading
    (Printf.sprintf "Server: batched admission vs batch-size-1, %d rows, clients %s" n
       (String.concat "/" (List.map string_of_int client_counts)));
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wre_bench_server.%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) @@ fun () ->
  let rows = Bench_util.generate_rows n in
  let dist_of = Bench_util.dist_of_rows rows in
  let store = Store.Engine.open_dir ~dir:(Filename.concat dir "store") ~group_commit:4096 () in
  Fun.protect ~finally:(fun () -> Store.Engine.close store) @@ fun () ->
  let edb =
    Store.Engine.create_encrypted store ~name:"main" ~plain_schema:Sparta.Generator.schema
      ~key_column:"id" ~encrypted_columns:Bench_util.enc_columns
      ~kind:(Wre.Scheme.Poisson 1000.0)
      ~master:(Crypto.Keys.generate (Stdx.Prng.create 1L))
      ~dist_of ~seed:2L ()
  in
  ignore (Wre.Encrypted_db.insert_batch edb rows);
  Store.Engine.checkpoint store;
  let sqls =
    List.map
      (fun (q : Sparta.Query_gen.query) ->
        Printf.sprintf "SELECT * FROM main WHERE %s = '%s'" q.column q.value)
      (Bench_util.make_queries ~dist_of ~n:queries_per_run)
  in
  (* Warm pass: fill the buffer pool once so every measured config pays
     identical storage charges (same protocol as exp_concurrency). *)
  let proxy = Wre.Proxy.create edb in
  List.iter (fun sql -> ignore (Wre.Proxy.execute_snapshot proxy sql)) sqls;
  let results =
    List.concat_map
      (fun clients ->
        List.map (fun cfg -> run_config ~store ~dir ~sqls ~clients cfg) configs)
      client_counts
  in
  let t =
    Stdx.Table_fmt.create
      [ "clients"; "config"; "modeled qps"; "wall qps"; "p50 (ms)"; "p99 (ms)"; "batches"; "mean batch" ]
  in
  List.iter
    (fun r ->
      Stdx.Table_fmt.add_row t
        [
          string_of_int r.clients;
          r.config;
          Printf.sprintf "%.1f" r.modeled_qps;
          Printf.sprintf "%.1f" r.wall_qps;
          Printf.sprintf "%.2f" r.p50_ms;
          Printf.sprintf "%.2f" r.p99_ms;
          string_of_int r.batches;
          Printf.sprintf "%.1f" r.mean_batch;
        ])
    results;
  Stdx.Table_fmt.print t;
  let find label clients =
    List.find (fun r -> r.config = label && r.clients = clients) results
  in
  let batched_beats_batch1 =
    List.for_all
      (fun clients -> (find "batched" clients).modeled_qps > (find "batch1" clients).modeled_qps)
      (List.filter (fun c -> c >= 100) client_counts)
  in
  let metrics =
    List.concat_map
      (fun r ->
        let k suffix = Printf.sprintf "%s_%s_%dc" suffix r.config r.clients in
        [
          (k "modeled_qps", Printf.sprintf "%.2f" r.modeled_qps);
          (k "wall_qps", Printf.sprintf "%.2f" r.wall_qps);
          (k "p50_ms", Printf.sprintf "%.3f" r.p50_ms);
          (k "p99_ms", Printf.sprintf "%.3f" r.p99_ms);
          (k "batches", string_of_int r.batches);
          (k "mean_batch_size", Printf.sprintf "%.2f" r.mean_batch);
        ])
      results
    @ [ ("batched_beats_batch1", if batched_beats_batch1 then "true" else "false") ]
  in
  let json =
    json_obj
      [
        ("name", "\"server\"");
        ( "config",
          json_obj
            [
              ("rows", string_of_int n);
              ("queries_per_run", string_of_int queries_per_run);
              ("scheme", "\"poisson-1000\"");
              ( "client_counts",
                "[" ^ String.concat ", " (List.map string_of_int client_counts) ^ "]" );
              ("batch1", "\"domains=1 window=0 batch_max=1\"");
              ("batched", "\"domains=4 window=2ms batch_max=256\"");
              ("cores", string_of_int (Domain.recommended_domain_count ()));
            ] );
        ("metrics", json_obj metrics);
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_server.json" json;
  Printf.printf "wrote BENCH_server.json (batched beats batch1 at >=100 clients: %b)\n"
    batched_beats_batch1
