(* Ingest at scale: the batched pipeline (Encrypted_db.insert_batch)
   driven by a streaming generator — plaintext rows are produced in
   chunks and never materialized as one array — so the paper's 10M-row
   SPARTA load fits in bounded client memory. Reports client-side
   wall-clock rows/sec, the columnar-vs-row-format storage footprint
   (dictionary compression of the heavy-tailed tag columns), and the
   cost of a streaming checkpoint of the finished table.

   Emits BENCH_ingest.json ({"name","config","metrics"}) so later PRs
   have a throughput trajectory to compare against. *)

let chunk_size = 1024
let ingest_chunk_rows = 65_536
let seq_baseline_cap = 100_000

let json_obj = Bench_util.json_obj

let build_edb ~kind ~dist_of =
  let db = Sqldb.Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"main" ~plain_schema:Sparta.Generator.schema
      ~key_column:"id" ~encrypted_columns:Bench_util.enc_columns ~kind ~dist_of ~master ~seed:2L
      ()
  in
  (db, edb)

(* Split the head of a sequence into an array of at most [k] rows. *)
let take_chunk k seq =
  let buf = ref [] and n = ref 0 and rest = ref seq in
  (try
     while !n < k do
       match !rest () with
       | Seq.Nil ->
           rest := Seq.empty;
           raise Exit
       | Seq.Cons (row, tl) ->
           buf := row :: !buf;
           incr n;
           rest := tl
     done
   with Exit -> ());
  (Array.of_list (List.rev !buf), !rest)

(* Stream the whole load through insert_batch in bounded chunks;
   returns the ingest wall time (generation + crypto + heap append). *)
let ingest_streaming ?pool edb ~rows:n =
  let (), ns =
    Stdx.Clock.time_it (fun () ->
        let seq = ref (Bench_util.row_seq n) in
        let continue = ref true in
        while !continue do
          let chunk, rest = take_chunk ingest_chunk_rows !seq in
          seq := rest;
          if Array.length chunk = 0 then continue := false
          else ignore (Wre.Encrypted_db.insert_batch ?pool ~chunk_size edb chunk : int)
        done)
  in
  ns

(* Streaming checkpoint of the finished table into a scratch dir:
   proves the 10M-row state spills to disk in bounded memory and
   reports the cost. *)
let checkpoint_streaming table =
  let dir = Printf.sprintf "bench_ingest_ckpt.%d.tmp" (Unix.getpid ()) in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let view = Sqldb.Table.freeze table in
      let (), ns =
        Stdx.Clock.time_it (fun () ->
            Store.Snapshot.write_views ~dir ~last_lsn:0L
              ~pager:(Sqldb.Pager.config (Sqldb.Table.pager table))
              ~views:[ view ] ~wre:[])
      in
      let bytes =
        match Store.Io.read_file (Store.Snapshot.path ~dir) with
        | Some s -> String.length s
        | None -> 0
      in
      (ns, bytes))

let is_tag_col name =
  let n = String.length name in
  n > 4 && String.sub name (n - 4) 4 = "_tag"

let run ~rows:n () =
  let domain_counts = if n > 500_000 then [ 1 ] else [ 1; 2; 4 ] in
  Bench_util.heading
    (Printf.sprintf "Ingest: streamed batches, %d rows, chunk %d, domains %s" n chunk_size
       (String.concat "/" (List.map string_of_int domain_counts)));
  let dist_of = Bench_util.dist_of_scale n in
  let kind = Wre.Scheme.Poisson 1000.0 in
  let rate rows ns = float_of_int rows /. (Float.max ns 1.0 /. 1e9) in
  let t =
    Stdx.Table_fmt.create [ "path"; "domains"; "rows"; "wall (s)"; "rows/sec" ]
  in
  let add_row label domains rows ns =
    Stdx.Table_fmt.add_row t
      [
        label;
        string_of_int domains;
        string_of_int rows;
        Printf.sprintf "%.2f" (ns /. 1e9);
        Printf.sprintf "%.0f" (rate rows ns);
      ]
  in
  (* Row-at-a-time baseline, capped: it exists to show the batched
     path's advantage, not to pay the full load twice. *)
  let seq_n = min n seq_baseline_cap in
  let seq_ns =
    let _db, edb = build_edb ~kind ~dist_of in
    let (), ns =
      Stdx.Clock.time_it (fun () ->
          Seq.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) (Bench_util.row_seq seq_n))
    in
    ns
  in
  add_row "insert (row-at-a-time)" 1 seq_n seq_ns;
  (* Batched, streamed. The last (largest-domain) run's table is kept
     for the storage and checkpoint measurements. *)
  let main_table = ref None in
  let batch_ns =
    List.map
      (fun domains ->
        let _db, edb = build_edb ~kind ~dist_of in
        let ns =
          if domains <= 1 then ingest_streaming edb ~rows:n
          else
            Stdx.Task_pool.with_pool ~domains (fun pool -> ingest_streaming ~pool edb ~rows:n)
        in
        add_row "insert_batch (streamed)" domains n ns;
        main_table := Some (Wre.Encrypted_db.table edb);
        (domains, ns))
      domain_counts
  in
  Stdx.Table_fmt.print t;
  let table = Option.get !main_table in
  (* Storage: columnar pages + dictionaries vs the row-format shadow. *)
  let stats = Sqldb.Table.storage_stats table in
  let columnar = stats.st_heap_pages * (Sqldb.Pager.config (Sqldb.Table.pager table)).page_size in
  let row_model = stats.st_row_model_bytes in
  let tag_plain, tag_packed =
    Array.fold_left
      (fun (p, k) (c : Sqldb.Table.column_stats) ->
        if is_tag_col c.st_column then (p + c.st_plain_bytes, k + c.st_dict_bytes + c.st_ids_bytes)
        else (p, k))
      (0, 0) stats.st_columns
  in
  let tag_ratio = float_of_int tag_plain /. float_of_int (max tag_packed 1) in
  let ckpt_ns, ckpt_bytes = checkpoint_streaming table in
  let rss = Bench_util.peak_rss_mib () in
  Printf.printf
    "storage: columnar %.1f MiB vs row-format %.1f MiB (%.2fx); tag columns %.1f MiB -> %.1f \
     MiB (%.2fx)\n\
     checkpoint: %.1f MiB streamed in %.2f s; peak RSS %.1f MiB\n"
    (Bench_util.mib columnar) (Bench_util.mib row_model)
    (float_of_int row_model /. float_of_int (max columnar 1))
    (Bench_util.mib tag_plain) (Bench_util.mib tag_packed) tag_ratio
    (Bench_util.mib ckpt_bytes) (ckpt_ns /. 1e9) rss;
  let cores = Domain.recommended_domain_count () in
  let ns_1d = List.assoc 1 batch_ns in
  let metrics =
    [
      ("seq_rows_per_sec", Printf.sprintf "%.1f" (rate seq_n seq_ns));
      ("ingest_rows_per_sec", Printf.sprintf "%.1f" (rate n ns_1d));
    ]
    @ List.map
        (fun (d, ns) ->
          (Printf.sprintf "batch_rows_per_sec_%dd" d, Printf.sprintf "%.1f" (rate n ns)))
        batch_ns
    @ (match List.assoc_opt 4 batch_ns with
      | Some ns4 -> [ ("speedup_4d_vs_1d", Printf.sprintf "%.3f" (ns_1d /. Float.max ns4 1.0)) ]
      | None -> [])
    @ [
        ("columnar_heap_bytes", string_of_int columnar);
        ("row_model_heap_bytes", string_of_int row_model);
        ( "dict_compression_ratio",
          Printf.sprintf "%.3f" (float_of_int row_model /. float_of_int (max columnar 1)) );
        ("tag_plain_bytes", string_of_int tag_plain);
        ("tag_packed_bytes", string_of_int tag_packed);
        ("tag_compression_ratio", Printf.sprintf "%.3f" tag_ratio);
        ("columnar_smaller", if columnar < row_model then "true" else "false");
        ("checkpoint_s", Printf.sprintf "%.3f" (ckpt_ns /. 1e9));
        ("checkpoint_mib", Printf.sprintf "%.1f" (Bench_util.mib ckpt_bytes));
        ("peak_rss_mib", Printf.sprintf "%.1f" rss);
      ]
  in
  let json =
    json_obj
      [
        ("name", "\"ingest\"");
        ( "config",
          json_obj
            [
              ("rows", string_of_int n);
              ("chunk_size", string_of_int chunk_size);
              ("ingest_chunk_rows", string_of_int ingest_chunk_rows);
              ("seq_baseline_rows", string_of_int seq_n);
              ("scheme", "\"poisson-1000\"");
              ("domain_counts", "[" ^ String.concat ", " (List.map string_of_int domain_counts) ^ "]");
              ("cores", string_of_int cores);
            ] );
        ("metrics", json_obj metrics);
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_ingest.json" json;
  Printf.printf
    "wrote BENCH_ingest.json (machine has %d usable core%s; domain counts beyond that\n\
     cannot speed up the crypto phase)\n"
    cores
    (if cores = 1 then "" else "s")
