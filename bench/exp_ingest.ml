(* Ingest throughput: the batched multicore pipeline (Encrypted_db.
   insert_batch over a Stdx.Task_pool) against row-at-a-time insert,
   on a SPARTA-style load. Reports client-side wall-clock rows/sec —
   the part batching and domains accelerate; simulated write I/O is
   identical for both paths because the resulting tables are.

   Emits BENCH_ingest.json ({"name","config","metrics"}) so later PRs
   have a throughput trajectory to compare against. *)

let domain_counts = [ 1; 2; 4 ]
let chunk_size = 1024

let json_obj = Bench_util.json_obj

let build_edb ~kind ~dist_of =
  let db = Sqldb.Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
  Wre.Encrypted_db.create ~db ~name:"main" ~plain_schema:Sparta.Generator.schema
    ~key_column:"id" ~encrypted_columns:Bench_util.enc_columns ~kind ~dist_of ~master ~seed:2L ()

let run ~rows:n () =
  Bench_util.heading
    (Printf.sprintf "Ingest: batched pipeline, %d rows, chunk %d, domains %s" n chunk_size
       (String.concat "/" (List.map string_of_int domain_counts)));
  let rows = Bench_util.generate_rows n in
  let dist_of = Bench_util.dist_of_rows rows in
  let kind = Wre.Scheme.Poisson 1000.0 in
  (* Row-at-a-time baseline. *)
  let seq_edb = build_edb ~kind ~dist_of in
  let (), seq_ns =
    Stdx.Clock.time_it (fun () ->
        Array.iter (fun r -> ignore (Wre.Encrypted_db.insert seq_edb r)) rows)
  in
  let rate ns = float_of_int n /. (Float.max ns 1.0 /. 1e9) in
  let t =
    Stdx.Table_fmt.create [ "path"; "domains"; "wall (s)"; "rows/sec"; "speedup vs insert" ]
  in
  let add_row label domains ns =
    Stdx.Table_fmt.add_row t
      [
        label;
        string_of_int domains;
        Printf.sprintf "%.2f" (ns /. 1e9);
        Printf.sprintf "%.0f" (rate ns);
        Printf.sprintf "%.2fx" (seq_ns /. Float.max ns 1.0);
      ]
  in
  add_row "insert (row-at-a-time)" 1 seq_ns;
  let batch_ns =
    List.map
      (fun domains ->
        let edb = build_edb ~kind ~dist_of in
        let ns =
          Stdx.Task_pool.with_pool ~domains (fun pool ->
              let (), ns =
                Stdx.Clock.time_it (fun () ->
                    ignore (Wre.Encrypted_db.insert_batch ~pool ~chunk_size edb rows : int))
              in
              ns)
        in
        add_row "insert_batch" domains ns;
        (domains, ns))
      domain_counts
  in
  Stdx.Table_fmt.print t;
  let cores = Domain.recommended_domain_count () in
  let ns_of d = List.assoc d batch_ns in
  let metrics =
    ("seq_rows_per_sec", Printf.sprintf "%.1f" (rate seq_ns))
    :: List.map
         (fun (d, ns) -> (Printf.sprintf "batch_rows_per_sec_%dd" d, Printf.sprintf "%.1f" (rate ns)))
         batch_ns
    @ [ ("speedup_4d_vs_1d", Printf.sprintf "%.3f" (ns_of 1 /. Float.max (ns_of 4) 1.0)) ]
  in
  let json =
    json_obj
      [
        ("name", "\"ingest\"");
        ( "config",
          json_obj
            [
              ("rows", string_of_int n);
              ("chunk_size", string_of_int chunk_size);
              ("scheme", "\"poisson-1000\"");
              ("domain_counts", "[" ^ String.concat ", " (List.map string_of_int domain_counts) ^ "]");
              ("cores", string_of_int cores);
            ] );
        ("metrics", json_obj metrics);
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_ingest.json" json;
  Printf.printf
    "wrote BENCH_ingest.json (machine has %d usable core%s; domain counts beyond that\n\
     cannot speed up the crypto phase)\n"
    cores
    (if cores = 1 then "" else "s")
