(* ESEDS range-query experiment: the encrypted boundary-tree traversal
   plan vs the flat bucket-tag IN-list, over one range-indexed column.

   Both plans return byte-identical rows (asserted here and enforced by
   the differential oracle); what differs is the wire and the server
   work. The flat plan ships one bucket tag per overlapping bucket —
   O(buckets-in-range) tokens whose co-occurrence hands a transcript
   adversary full contiguous runs of the hidden bucket order. The
   traversal plan ships the O(log B) canonical-cover roots and lets the
   server expand them over the pseudonymous node table.

   Attacks.Range_leakage runs the greedy order-reconstruction attack on
   both plans' transcripts; BENCH_range.json carries the comparison and
   the [traversal_beats_flat_tags] gate (CI smoke): the traversal must
   ship fewer tokens per query on average AND leak no more order than
   the flat baseline. *)

open Sqldb

let json_obj = Bench_util.json_obj
let buckets = 64
let max_score = 10_000

let range_schema =
  Schema.create
    [
      { Schema.name = "id"; ty = Value.TInt; nullable = false };
      { Schema.name = "lname"; ty = Value.TText; nullable = false };
      { Schema.name = "score"; ty = Value.TInt; nullable = false };
    ]

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 |> max 0))

(* In-order rank of every node of the boundary tree: the hidden order a
   transcript adversary tries to reconstruct. (Leaves appear in bucket
   order; internal nodes interleave between their subtrees.) *)
let inorder_ranks nodes =
  let rank = Array.make (Array.length nodes) 0 in
  let next = ref 0 in
  let rec go i =
    let nd = nodes.(i) in
    if nd.Range_tree.left >= 0 then go nd.Range_tree.left;
    rank.(i) <- !next;
    incr next;
    if nd.Range_tree.right >= 0 then go nd.Range_tree.right
  in
  go 0;
  rank

let run ~rows ~n_queries () =
  let n = min rows 50_000 in
  if n < rows then Printf.printf "(range experiment capped at %d rows)\n" n;
  Bench_util.heading
    (Printf.sprintf "ESEDS range traversal vs flat bucket tags (%d rows, %d buckets, %d queries)"
       n buckets n_queries);
  let g = Stdx.Prng.create Bench_util.data_seed in
  (* Skewed scores (product of two uniforms): equi-depth boundaries are
     uneven, the regime the tree is trained for. *)
  let scores =
    Array.init n (fun _ ->
        Int64.of_int (Stdx.Prng.int g 100 * Stdx.Prng.int g (max_score / 100)))
  in
  let table_rows =
    Array.mapi
      (fun i s ->
        [|
          Value.Int (Int64.of_int i);
          Value.Text (Printf.sprintf "name%d" (Stdx.Prng.int g 200));
          Value.Int s;
        |])
      scores
  in
  let db = Database.create () in
  let master = Crypto.Keys.generate (Stdx.Prng.create 1L) in
  let dist =
    Dist.Empirical.of_values
      (Seq.map
         (fun (r : Value.t array) -> match r.(1) with Value.Text s -> s | _ -> assert false)
         (Array.to_seq table_rows))
  in
  let edb =
    Wre.Encrypted_db.create ~db ~name:"r" ~plain_schema:range_schema ~key_column:"id"
      ~encrypted_columns:[ "lname" ] ~kind:(Wre.Scheme.Poisson 80.0) ~master
      ~range_columns:[ ("score", buckets) ]
      ~range_training:(fun _ -> scores)
      ~dist_of:(fun _ -> dist) ~seed:2L ()
  in
  ignore (Wre.Encrypted_db.insert_batch edb table_rows);
  let ri = Wre.Encrypted_db.range_index edb "score" in
  let rs = Wre.Encrypted_db.range_struct edb "score" in
  let tree = Wre.Range_struct.tree rs in
  let nodes = Wre.Range_struct.nodes rs in
  let node_rank = inorder_ranks nodes in
  let rank_of_tag = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i nd -> Hashtbl.replace rank_of_tag nd.Range_tree.tag node_rank.(i)) nodes;
  (* Query workload: random ranges, mixed widths (a quarter of them
     narrow), over the score domain. *)
  let qg = Stdx.Prng.create 11L in
  let queries =
    Array.init n_queries (fun _ ->
        let lo = Stdx.Prng.int qg max_score in
        let width =
          if Stdx.Prng.int qg 4 = 0 then Stdx.Prng.int qg 50
          else Stdx.Prng.int qg (max_score / 3)
        in
        (Int64.of_int lo, Int64.of_int (lo + width)))
  in
  (* Transcripts: what each plan ships per query. Flat tokens are the
     overlapped bucket ids (already labeled in hidden order); traversal
     tokens are the cover roots' in-order node ranks. *)
  let flat_ts = ref [] and trav_ts = ref [] in
  let flat_tokens = ref 0 and trav_tokens = ref 0 and trav_nodes = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      let cover = Wre.Range_struct.cover rs ~lo:(Some lo) ~hi:(Some hi) in
      let first = cover.Wre.Range_struct.first_bucket
      and last = cover.Wre.Range_struct.last_bucket in
      let flat = Array.init (max 0 (last - first + 1)) (fun i -> first + i) in
      let trav =
        Array.map
          (fun root -> Hashtbl.find rank_of_tag root)
          cover.Wre.Range_struct.roots
      in
      flat_tokens := !flat_tokens + Array.length flat;
      trav_tokens := !trav_tokens + Array.length trav;
      Array.iter
        (fun root ->
          match Range_tree.traverse tree ~root with
          | Some (_, visited) -> trav_nodes := !trav_nodes + visited
          | None -> assert false)
        cover.Wre.Range_struct.roots;
      flat_ts := flat :: !flat_ts;
      trav_ts := trav :: !trav_ts)
    queries;
  let flat_leak = Attacks.Range_leakage.measure ~n_tokens:buckets ~transcripts:!flat_ts in
  let trav_leak =
    Attacks.Range_leakage.measure ~n_tokens:(Array.length nodes) ~transcripts:!trav_ts
  in
  (* Server-side latency of both plans over the same frozen view, at 1
     and 4 domains, asserting byte-identical answers throughout. *)
  let view = Wre.Encrypted_db.freeze edb in
  let run_pair ?pool (lo, hi) =
    let tags = Wre.Range_index.tags_for_range ri ~lo:(Some lo) ~hi:(Some hi) in
    let pred =
      Predicate.In (Wre.Encrypted_db.rtag_column "score", List.map (fun t -> Value.Int t) tags)
    in
    let cover = Wre.Range_struct.cover rs ~lo:(Some lo) ~hi:(Some hi) in
    let flat = Executor.run_view ?pool view ~projection:Executor.Row_ids pred in
    let trav =
      Executor.run_traverse ?pool view ~tree
        ~tag_column:(Wre.Encrypted_db.rtag_column "score")
        ~roots:cover.Wre.Range_struct.roots ~projection:Executor.Row_ids pred
    in
    assert (trav.Executor.row_ids = flat.Executor.row_ids);
    (flat.Executor.wall_ns, trav.Executor.wall_ns)
  in
  let measure ?pool () =
    let fw = Array.make n_queries 0.0 and tw = Array.make n_queries 0.0 in
    Array.iteri
      (fun i q ->
        let f, t = run_pair ?pool q in
        fw.(i) <- f;
        tw.(i) <- t)
      queries;
    Array.sort compare fw;
    Array.sort compare tw;
    (fw, tw)
  in
  let timings =
    List.map
      (fun domains ->
        let fw, tw =
          if domains = 1 then measure ()
          else Stdx.Task_pool.with_pool ~domains (fun pool -> measure ~pool ())
        in
        (domains, fw, tw))
      [ 1; 4 ]
  in
  let mean_flat = float_of_int !flat_tokens /. float_of_int n_queries in
  let mean_trav = float_of_int !trav_tokens /. float_of_int n_queries in
  let t =
    Stdx.Table_fmt.create
      [ "plan"; "domains"; "tokens/query"; "p50 (ms)"; "p99 (ms)"; "pair acc"; "rank acc" ]
  in
  List.iter
    (fun (domains, fw, tw) ->
      Stdx.Table_fmt.add_row t
        [
          "flat-tags";
          string_of_int domains;
          Printf.sprintf "%.1f" mean_flat;
          Printf.sprintf "%.3f" (percentile fw 50.0 /. 1e6);
          Printf.sprintf "%.3f" (percentile fw 99.0 /. 1e6);
          Printf.sprintf "%.3f" flat_leak.Attacks.Range_leakage.pair_accuracy;
          Printf.sprintf "%.3f" flat_leak.Attacks.Range_leakage.rank_accuracy;
        ];
      Stdx.Table_fmt.add_row t
        [
          "traversal";
          string_of_int domains;
          Printf.sprintf "%.1f" mean_trav;
          Printf.sprintf "%.3f" (percentile tw 50.0 /. 1e6);
          Printf.sprintf "%.3f" (percentile tw 99.0 /. 1e6);
          Printf.sprintf "%.3f" trav_leak.Attacks.Range_leakage.pair_accuracy;
          Printf.sprintf "%.3f" trav_leak.Attacks.Range_leakage.rank_accuracy;
        ])
    timings;
  Stdx.Table_fmt.print t;
  (* The gate: fewer tokens on the wire, and no more order leaked than
     the flat baseline (small epsilon for attack nondeterminism across
     token-count differences). *)
  let traversal_beats_flat_tags =
    mean_trav < mean_flat
    && trav_leak.Attacks.Range_leakage.pair_accuracy
       <= flat_leak.Attacks.Range_leakage.pair_accuracy +. 0.05
  in
  let timing_metrics =
    List.concat_map
      (fun (domains, fw, tw) ->
        [
          (Printf.sprintf "flat_p50_ms_%dd" domains,
           Printf.sprintf "%.4f" (percentile fw 50.0 /. 1e6));
          (Printf.sprintf "flat_p99_ms_%dd" domains,
           Printf.sprintf "%.4f" (percentile fw 99.0 /. 1e6));
          (Printf.sprintf "traversal_p50_ms_%dd" domains,
           Printf.sprintf "%.4f" (percentile tw 50.0 /. 1e6));
          (Printf.sprintf "traversal_p99_ms_%dd" domains,
           Printf.sprintf "%.4f" (percentile tw 99.0 /. 1e6));
        ])
      timings
  in
  let json =
    json_obj
      [
        ("name", "\"range\"");
        ( "config",
          json_obj
            [
              ("rows", string_of_int n);
              ("buckets", string_of_int buckets);
              ("queries", string_of_int n_queries);
              ("tree_nodes", string_of_int (Array.length nodes));
              ("tree_depth", string_of_int (Wre.Range_struct.depth rs));
              ("baseline", "\"flat bucket-tag IN-list (one token per overlapped bucket)\"");
            ] );
        ( "metrics",
          json_obj
            ([
               ("flat_mean_tokens_per_query", Printf.sprintf "%.2f" mean_flat);
               ("traversal_mean_tokens_per_query", Printf.sprintf "%.2f" mean_trav);
               ( "traversal_mean_nodes_visited",
                 Printf.sprintf "%.2f" (float_of_int !trav_nodes /. float_of_int n_queries) );
               ( "flat_attack_pair_accuracy",
                 Printf.sprintf "%.4f" flat_leak.Attacks.Range_leakage.pair_accuracy );
               ( "flat_attack_rank_accuracy",
                 Printf.sprintf "%.4f" flat_leak.Attacks.Range_leakage.rank_accuracy );
               ( "traversal_attack_pair_accuracy",
                 Printf.sprintf "%.4f" trav_leak.Attacks.Range_leakage.pair_accuracy );
               ( "traversal_attack_rank_accuracy",
                 Printf.sprintf "%.4f" trav_leak.Attacks.Range_leakage.rank_accuracy );
             ]
            @ timing_metrics
            @ [
                ( "traversal_beats_flat_tags",
                  if traversal_beats_flat_tags then "true" else "false" );
              ]) );
      ]
  in
  Bench_util.write_bench_json ~path:"BENCH_range.json" json;
  Printf.printf "wrote BENCH_range.json (traversal beats flat tags: %b)\n"
    traversal_beats_flat_tags
