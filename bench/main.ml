(* Benchmark harness: regenerates every table and figure of the paper
   plus the ablations listed in DESIGN.md section 4.

     dune exec bench/main.exe                 -- everything, default scale
     dune exec bench/main.exe -- table1       -- one experiment
     dune exec bench/main.exe -- --rows 20000 figs

   Experiments: table1 creation fig2 fig4..fig7 (figs) fig8 fig9 (fp)
                aliasing attacks indcuda lambda_sweep updates
                index_ablation correlation micro ingest recovery
                concurrency server join range all *)

let usage () =
  print_endline
    "usage: main.exe [--rows N] [--queries N] [--trials N] \
     [table1|fig2|figs|fp|aliasing|attacks|indcuda|lambda_sweep|updates|index_ablation|correlation|micro|ingest|recovery|concurrency|server|join|range|all]...";
  exit 1

let () =
  let rows = ref Bench_util.default_rows in
  let queries = ref 200 in
  let trials = ref 40 in
  let experiments = ref [] in
  let rec parse = function
    | [] -> ()
    | "--rows" :: v :: rest ->
        rows := int_of_string v;
        parse rest
    | "--queries" :: v :: rest ->
        queries := int_of_string v;
        parse rest
    | "--trials" :: v :: rest ->
        trials := int_of_string v;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | exp :: rest ->
        experiments := exp :: !experiments;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let experiments = if !experiments = [] then [ "all" ] else List.rev !experiments in
  let attack_rows = min !rows 40_000 in
  let run_one = function
    | "table1" | "creation" -> Exp_table1.run ~rows:!rows ()
    | "fig2" -> Exp_fig2.run ()
    | "figs" | "fig4" | "fig5" | "fig6" | "fig7" ->
        Exp_latency.run ~rows:!rows ~n_queries:!queries ()
    | "fp" | "fig8" | "fig9" -> Exp_fp.run ~rows:!rows ~n_queries:!queries ()
    | "aliasing" -> Exp_aliasing.run ~rows:attack_rows ()
    | "attacks" -> Exp_attacks.run ~rows:attack_rows ()
    | "indcuda" -> Exp_indcuda.run ~trials:!trials ()
    | "lambda_sweep" -> Exp_lambda.run ~rows:attack_rows ()
    | "updates" -> Exp_updates.run ~rows:attack_rows ()
    | "index_ablation" -> Exp_index_ablation.run ~rows:!rows ~n_queries:!queries ()
    | "correlation" -> Exp_correlation.run ~rows:attack_rows ()
    | "micro" -> Exp_micro.run ()
    | "ingest" -> Exp_ingest.run ~rows:!rows ()
    | "recovery" -> Exp_recovery.run ~rows:!rows ()
    | "concurrency" -> Exp_concurrency.run ~rows:!rows ~n_queries:!queries ()
    | "server" -> Exp_server.run ~rows:!rows ~n_queries:!queries ()
    | "join" -> Exp_join.run ~rows:!rows ()
    | "range" -> Exp_range.run ~rows:!rows ~n_queries:!queries ()
    | "all" ->
        Exp_table1.run ~rows:!rows ();
        Exp_fig2.run ();
        Exp_latency.run ~rows:!rows ~n_queries:!queries ();
        Exp_fp.run ~rows:!rows ~n_queries:!queries ();
        Exp_aliasing.run ~rows:attack_rows ();
        Exp_attacks.run ~rows:attack_rows ();
        Exp_indcuda.run ~trials:!trials ();
        Exp_lambda.run ~rows:attack_rows ();
        Exp_updates.run ~rows:attack_rows ();
        Exp_index_ablation.run ~rows:!rows ~n_queries:!queries ();
        Exp_correlation.run ~rows:attack_rows ();
        Exp_micro.run ();
        Exp_ingest.run ~rows:!rows ();
        Exp_recovery.run ~rows:!rows ();
        Exp_concurrency.run ~rows:!rows ~n_queries:!queries ();
        Exp_server.run ~rows:!rows ~n_queries:!queries ();
        Exp_join.run ~rows:!rows ();
        Exp_range.run ~rows:!rows ~n_queries:!queries ()
    | other ->
        Printf.eprintf "unknown experiment %S\n" other;
        usage ()
  in
  Printf.printf "WRE reproduction bench harness (rows=%d, queries=%d, trials=%d)\n" !rows !queries
    !trials;
  List.iter run_one experiments
