(** Embedded identifier vocabularies for the SPARTA-style generator.

    Each array lists a column's vocabulary in descending real-world
    rank order; {!Generator} fits a per-column Zipf exponent over it to
    re-create the heavy-tailed frequency curves of the US Census files
    the original SPARTA tooling draws from (DESIGN.md §2 documents the
    substitution). *)

val first_names : string array
val last_names : string array
(* (city, state, weight) — weight is a coarse relative-population rank
   used by the Zipf fit. *)
val cities : (string * string * int) array
val languages : string array
val occupations : string array
val street_names : string array
val street_suffixes : string array
val states : string array
val races : string array
val marital_statuses : string array
val education_levels : string array
val citizenships : string array

val prose_words : string array
(** Word stock for the free-text notes column — a bag-of-words stand-in
    for SPARTA's Project Gutenberg prose with the same storage shape. *)

val military_statuses : string array
