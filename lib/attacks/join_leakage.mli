(** Join-degree leakage of the tag-bucket equi-join.

    The server resolving a tag-bucket join observes, per bucket, how
    many candidate row pairs it produced — the product of the two
    sides' per-plaintext row counts (plus bucketized false positives).
    Buckets are pseudonymous (tag lists, no plaintext), but their
    candidate-pair counts form the join's {e degree distribution},
    which an attacker can match against an auxiliary model of the
    plaintext distribution exactly as in classical frequency analysis
    — the same adversary model as {!Frequency}, lifted from
    single-column frequencies to join degrees.

    {!measure} runs the rank-matching attacker (sort buckets by
    observed candidate count, auxiliary plaintexts by modeled degree,
    match rank to rank) and reports how much of the bucket ↔ plaintext
    correspondence it recovers, plus the ℓ1 distance between observed
    and modeled degree distributions (how faithfully the leakage
    reproduces the auxiliary knowledge — 0 means the counts betray the
    degrees exactly, 2 is maximal discrepancy). *)

type t = {
  n_buckets : int;  (** buckets the server observed *)
  bucket_accuracy : float;
      (** fraction of buckets whose plaintext the rank attacker names
          correctly *)
  pair_recovery : float;
      (** same, weighted by each bucket's true pair count: fraction of
          joined row pairs whose plaintext is recovered *)
  l1_distance : float;
      (** ℓ1 distance between the normalized observed and auxiliary
          degree distributions, in [0, 2] *)
}

val measure : observed:int array -> actual:string array -> aux:(string * int) array -> t
(** [measure ~observed ~actual ~aux]: [observed.(i)] is the candidate
    pair count the server saw for bucket [i]
    ({!Sqldb.Join.result.bucket_pairs}), [actual.(i)] that bucket's
    true plaintext (ground truth, from the proxy's bucket order), and
    [aux] the attacker's auxiliary model — each plaintext with its
    modeled join degree (e.g. per-plaintext count products from a
    public dataset drawn from the same distribution). Ties in either
    ranking break by first occurrence (stable sort), matching the
    classical attacker. Raises [Invalid_argument] if [observed] and
    [actual] differ in length. *)

val pp : Format.formatter -> t -> unit
