type t = {
  n_buckets : int;
  bucket_accuracy : float;
  pair_recovery : float;
  l1_distance : float;
}

(* Stable descending sort of indices by score — rank ties break by
   first occurrence, the classical frequency-analysis convention. *)
let rank_desc scores =
  let idx = Array.init (Array.length scores) Fun.id in
  let cmp a b =
    match compare scores.(b) scores.(a) with 0 -> compare a b | c -> c
  in
  Array.sort cmp idx;
  idx

let l1 observed aux_counts =
  let total a = Array.fold_left (fun s x -> s +. float_of_int x) 0.0 a in
  let to_dist a =
    let t = total a in
    (* An all-zero side contributes its mass as 0 everywhere; the
       distance then degenerates to the other side's mass. *)
    if t = 0.0 then Array.map (fun _ -> 0.0) a
    else Array.map (fun x -> float_of_int x /. t) a
  in
  let o = to_dist observed in
  (* Compare degree *profiles*: both sides sorted descending, padded
     with zeros — the attacker aligns shapes, not labels. *)
  let a = to_dist aux_counts in
  Array.sort (fun x y -> compare y x) o;
  Array.sort (fun x y -> compare y x) a;
  let n = max (Array.length o) (Array.length a) in
  let at arr i = if i < Array.length arr then arr.(i) else 0.0 in
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    d := !d +. Float.abs (at o i -. at a i)
  done;
  !d

let measure ~observed ~actual ~aux =
  let n = Array.length observed in
  if Array.length actual <> n then
    invalid_arg "Join_leakage.measure: observed and actual differ in length";
  let aux_counts = Array.map snd aux in
  (* Rank matching: i-th most-productive bucket ↔ i-th highest-degree
     auxiliary plaintext. *)
  let bucket_rank = rank_desc observed in
  let aux_rank = rank_desc aux_counts in
  let guess = Array.make n None in
  Array.iteri
    (fun r b -> if r < Array.length aux_rank then guess.(b) <- Some (fst aux.(aux_rank.(r))))
    bucket_rank;
  let hits = ref 0 and pair_hits = ref 0 and pairs = ref 0 in
  for i = 0 to n - 1 do
    pairs := !pairs + observed.(i);
    if guess.(i) = Some actual.(i) then begin
      incr hits;
      pair_hits := !pair_hits + observed.(i)
    end
  done;
  {
    n_buckets = n;
    bucket_accuracy = (if n = 0 then 0.0 else float_of_int !hits /. float_of_int n);
    pair_recovery =
      (if !pairs = 0 then 0.0 else float_of_int !pair_hits /. float_of_int !pairs);
    l1_distance = l1 observed aux_counts;
  }

let pp fmt t =
  Format.fprintf fmt "buckets=%d accuracy=%.3f pair-recovery=%.3f l1=%.3f" t.n_buckets
    t.bucket_accuracy t.pair_recovery t.l1_distance
