(** Order reconstruction from range-query transcripts.

    What does the wire leak about the *order* of a range column's
    buckets? A passive adversary (network tap, query log — the
    transcript adversary of the paper's §III threat ladder) sees which
    pseudonymous tokens each range query ships:

    - flat bucket-tag plan: one token per overlapping bucket — every
      query reveals a full contiguous run of the hidden bucket order;
    - ESEDS traversal plan (DESIGN.md §5k): one token per canonical
      cover root — O(log B) tokens whose co-occurrence structure is
      much coarser.

    The attack is the classical one against bucketized/ORE-ish range
    schemes: tokens that co-occur in many transcripts are close in the
    hidden order, so a greedy chain over the co-occurrence graph
    reconstructs the order up to reflection. {!measure} scores the
    reconstruction against ground truth; the [exp_range] bench runs it
    on both plans' transcripts and BENCH_range.json carries the
    comparison ([traversal_beats_flat_tags]).

    Convention: the caller labels tokens [0 .. n_tokens-1] in the true
    hidden order (ground truth = identity), and ties inside the attack
    break deterministically by token index — an upper-bound attacker,
    the same convention as {!Join_leakage}'s rank matching. *)

type t = {
  n_tokens : int;
  n_queries : int;
  mean_tokens_per_query : float;  (** wire cost the transcripts exhibit *)
  pair_accuracy : float;
      (** Kendall pair agreement of the reconstructed order vs ground
          truth, best of the order and its reversal; 0.5 ≈ random, 1.0
          = full order recovery *)
  rank_accuracy : float;  (** exact-position matches, up to reflection *)
}

val reconstruct : n_tokens:int -> transcripts:int array list -> int array
(** Greedy co-occurrence chain: returns a permutation of
    [0 .. n_tokens-1] (the estimated hidden order). Each transcript is
    the token set one query shipped. Raises [Invalid_argument] on a
    token outside [0 .. n_tokens-1]. *)

val measure : n_tokens:int -> transcripts:int array list -> t
(** {!reconstruct} + scoring against the identity ground truth. *)

val pp : Format.formatter -> t -> unit
