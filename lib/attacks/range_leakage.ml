type t = {
  n_tokens : int;
  n_queries : int;
  mean_tokens_per_query : float;
  pair_accuracy : float;
  rank_accuracy : float;
}

(* Token co-occurrence matrix: co.(i).(j) = number of transcripts in
   which tokens i and j appear together. Range queries cover contiguous
   stretches of the hidden order, so adjacent tokens co-occur most —
   the signal the chain reconstruction exploits. *)
let cooccurrence ~n_tokens transcripts =
  let co = Array.make_matrix n_tokens n_tokens 0 in
  List.iter
    (fun tokens ->
      let k = Array.length tokens in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          let i = tokens.(a) and j = tokens.(b) in
          if i <> j then begin
            co.(i).(j) <- co.(i).(j) + 1;
            co.(j).(i) <- co.(j).(i) + 1
          end
        done
      done)
    transcripts;
  co

let reconstruct ~n_tokens ~transcripts =
  if n_tokens <= 0 then [||]
  else if n_tokens = 1 then [| 0 |]
  else begin
    List.iter
      (fun tokens ->
        Array.iter
          (fun tok ->
            if tok < 0 || tok >= n_tokens then
              invalid_arg "Range_leakage.reconstruct: token out of range")
          tokens)
      transcripts;
    let co = cooccurrence ~n_tokens transcripts in
    (* Seed with the strongest pair, then greedily grow a chain: at
       each step attach the unplaced token with the highest
       co-occurrence against either end. Ties break by lowest index —
       a deterministic upper-bound attacker (the same convention as
       Join_leakage's rank matching). *)
    let placed = Array.make n_tokens false in
    let best = ref (0, 1, -1) in
    for i = 0 to n_tokens - 1 do
      for j = i + 1 to n_tokens - 1 do
        let (_, _, b) = !best in
        if co.(i).(j) > b then best := (i, j, co.(i).(j))
      done
    done;
    let si, sj, _ = !best in
    (* Doubly-open chain as a deque: [front] grows leftward (reversed),
       [back] grows rightward. *)
    let front = ref [ si ] and back = ref [ sj ] in
    placed.(si) <- true;
    placed.(sj) <- true;
    let best_neighbor e =
      let arg = ref (-1) and score = ref (-1) in
      for k = 0 to n_tokens - 1 do
        if (not placed.(k)) && co.(e).(k) > !score then begin
          score := co.(e).(k);
          arg := k
        end
      done;
      (!arg, !score)
    in
    let remaining = ref (n_tokens - 2) in
    while !remaining > 0 do
      let fe = List.hd !front and be = List.hd !back in
      let fa, fs = best_neighbor fe in
      let ba, bs = best_neighbor be in
      if fs <= 0 && bs <= 0 then begin
        (* No co-occurrence evidence left: append the leftover tokens
           in index order — the attacker has nothing better. *)
        for k = 0 to n_tokens - 1 do
          if not placed.(k) then begin
            placed.(k) <- true;
            back := k :: !back
          end
        done;
        remaining := 0
      end
      else if fs > bs then begin
        placed.(fa) <- true;
        front := fa :: !front;
        decr remaining
      end
      else begin
        placed.(ba) <- true;
        back := ba :: !back;
        decr remaining
      end
    done;
    Array.of_list (!front @ List.rev !back)
  end

(* Kendall-style pair accuracy of [order] against the identity ground
   truth, taking the better of the order and its reversal — a chain
   reconstruction recovers order only up to reflection. *)
let pair_accuracy order =
  let n = Array.length order in
  if n < 2 then 1.0
  else begin
    let position = Array.make n 0 in
    Array.iteri (fun r tok -> position.(tok) <- r) order;
    let agree = ref 0 and total = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        incr total;
        if position.(i) < position.(j) then incr agree
      done
    done;
    let a = float_of_int !agree /. float_of_int !total in
    Float.max a (1.0 -. a)
  end

(* Exact-position accuracy, again up to reflection. *)
let rank_accuracy order =
  let n = Array.length order in
  if n = 0 then 1.0
  else begin
    let hits dir =
      let h = ref 0 in
      Array.iteri
        (fun r tok ->
          let expect = if dir then r else n - 1 - r in
          if tok = expect then incr h)
        order;
      float_of_int !h /. float_of_int n
    in
    Float.max (hits true) (hits false)
  end

let measure ~n_tokens ~transcripts =
  let order = reconstruct ~n_tokens ~transcripts in
  let n_queries = List.length transcripts in
  let token_count =
    List.fold_left (fun acc tokens -> acc + Array.length tokens) 0 transcripts
  in
  {
    n_tokens;
    n_queries;
    mean_tokens_per_query =
      (if n_queries = 0 then 0.0 else float_of_int token_count /. float_of_int n_queries);
    pair_accuracy = pair_accuracy order;
    rank_accuracy = rank_accuracy order;
  }

let pp fmt t =
  Format.fprintf fmt "tokens=%d queries=%d mean-tokens=%.2f pair-accuracy=%.3f rank-accuracy=%.3f"
    t.n_tokens t.n_queries t.mean_tokens_per_query t.pair_accuracy t.rank_accuracy
