(* lint: guarded-by sink_mutex *)
type span = {
  id : int;
  parent : int option;
  name : string;
  start_ns : float;
  dur_ns : float;
  attrs : (string * string) list;
}

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let next_id = Atomic.make 1

(* Per-domain stack of open span ids: nesting gives parentage without
   any cross-domain coordination. *)
let stack_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let capacity = 8192

(* Ring buffer of completed spans. Completion is rare relative to the
   work inside a span, so a mutex (not a lock-free ring) is fine. *)
let sink_mutex = Mutex.create ()
let ring : span option array = Array.make capacity None
let write_pos = ref 0
let stored = ref 0

let record s =
  Mutex.lock sink_mutex;
  ring.(!write_pos) <- Some s;
  write_pos := (!write_pos + 1) mod capacity;
  if !stored < capacity then Stdlib.incr stored;
  Mutex.unlock sink_mutex

let clear () =
  Mutex.lock sink_mutex;
  Array.fill ring 0 capacity None;
  write_pos := 0;
  stored := 0;
  Mutex.unlock sink_mutex

let spans () =
  Mutex.lock sink_mutex;
  let n = !stored in
  let out =
    List.filter_map
      (fun i -> ring.((!write_pos - n + i + capacity) mod capacity))
      (List.init n Fun.id)
  in
  Mutex.unlock sink_mutex;
  out

let current_parent () =
  match !(Domain.DLS.get stack_key) with [] -> None | p :: _ -> Some p

let add ?(attrs = []) ~name ~start_ns ~dur_ns () =
  if is_enabled () then
    record
      {
        id = Atomic.fetch_and_add next_id 1;
        parent = current_parent ();
        name;
        start_ns;
        dur_ns;
        attrs;
      }

let event ?attrs name = add ?attrs ~name ~start_ns:(Stdx.Clock.now_ns ()) ~dur_ns:0.0 ()

let with_span ?(attrs = []) name f =
  if not (is_enabled ()) then f ()
  else begin
    let st = Domain.DLS.get stack_key in
    let parent = current_parent () in
    let id = Atomic.fetch_and_add next_id 1 in
    st := id :: !st;
    let t0 = Stdx.Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Stdx.Clock.now_ns () -. t0 in
        (match !st with
        | top :: rest when top = id -> st := rest
        | other -> st := List.filter (fun x -> x <> id) other);
        record { id; parent; name; start_ns = t0; dur_ns = dur; attrs })
      f
  end

(* ---------------- renderers ---------------- *)

let pp_dur ns =
  if ns >= 1e9 then Printf.sprintf "%.3fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.3fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let pp_attrs = function
  | [] -> ""
  | attrs ->
      "  [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs) ^ "]"

let render_tree () =
  let all = spans () in
  let present = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace present s.id ()) all;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun s ->
        match s.parent with
        | Some p when Hashtbl.mem present p ->
            Hashtbl.replace children p (s :: (Option.value ~default:[] (Hashtbl.find_opt children p)));
            false
        | _ -> true)
      all
  in
  let by_start a b = Float.compare a.start_ns b.start_ns in
  let buf = Buffer.create 1024 in
  let rec emit depth s =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %10s%s\n" (String.make (2 * depth) ' ')
         (max 1 (36 - (2 * depth)))
         s.name (pp_dur s.dur_ns) (pp_attrs s.attrs));
    List.iter (emit (depth + 1))
      (List.sort by_start (Option.value ~default:[] (Hashtbl.find_opt children s.id)))
  in
  List.iter (emit 0) (List.sort by_start roots);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_jsonl () =
  let buf = Buffer.create 2048 in
  List.iter
    (fun s ->
      let parent = match s.parent with None -> "null" | Some p -> string_of_int p in
      let attrs =
        String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
             s.attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\": %d, \"parent\": %s, \"name\": \"%s\", \"start_ns\": %.0f, \"dur_ns\": %.0f, \
            \"attrs\": {%s}}\n"
           s.id parent (json_escape s.name) s.start_ns s.dur_ns attrs))
    (spans ());
  Buffer.contents buf
