(** Process-wide metrics registry: counters, gauges and log-scale
    latency histograms.

    The query path of the paper's evaluation (§VII, SPARTA) is measured
    in per-phase latency and row counts; this module is the substrate
    those measurements flow into. Handles are registered once by name
    (idempotently — asking for the same name twice returns the same
    instrument) and updated lock-free with [Atomic] operations, so
    instruments are safe to bump from [Stdx.Task_pool] worker domains.
    Hot-path updates allocate nothing: counters and gauges are plain
    atomic integers, histogram observation is one bucket increment.

    Determinism: instruments never consume PRNG state (wre-lint R3);
    the only clock they touch is {!Stdx.Clock} via {!time}. *)

type counter
(** Monotonically increasing atomic integer. *)

type gauge
(** Last-write-wins atomic integer (e.g. cached-page count). *)

type histogram
(** Fixed-bucket log-scale histogram of nanosecond latencies: 4 buckets
    per decade over \[1 ns, 10^13 ns), lock-free increments, geometric
    interpolation for percentile extraction (relative error bounded by
    the bucket ratio 10^0.25 ≈ 1.78×). *)

val counter : string -> counter
(** Register (or fetch the existing) counter under [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** [observe h ns] records one latency sample, in nanoseconds.
    Negative and sub-nanosecond samples land in the lowest bucket. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run a thunk and [observe] its wall-clock duration
    ({!Stdx.Clock.now_ns} deltas). Exceptions propagate unrecorded. *)

type histogram_summary = {
  count : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;  (** exact maximum observed, not bucket-rounded *)
}

val summarize : histogram -> histogram_summary
(** All-zero summary when the histogram is empty. *)

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in \[0,100\]; 0.0 when empty. *)

val counters : unit -> (string * int) list
(** Registered counters with current values, sorted by name. *)

val gauges : unit -> (string * int) list
val histograms : unit -> (string * histogram_summary) list

val reset_all : unit -> unit
(** Zero every registered instrument (registrations survive). Intended
    for tests and bench runs that need a clean delta. *)

val render : unit -> string
(** Human-readable dump of the whole registry ([wre_cli stats]). *)
