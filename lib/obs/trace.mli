(** Lightweight query tracing: nested spans into a ring-buffer sink.

    A span is a named interval measured with {!Stdx.Clock.now_ns};
    parent/child structure comes from dynamic nesting ({!with_span}
    inside {!with_span}), tracked per domain. Completed spans land in a
    fixed-capacity ring buffer (oldest evicted first) and can be
    rendered as an indented text tree or as JSONL.

    Tracing is off by default: when disabled, {!with_span} runs its
    thunk with a single atomic load of overhead and records nothing, so
    instrumented hot paths cost nothing in production. Like
    {!Metrics}, tracing never consumes PRNG state (wre-lint R3). *)

type span = {
  id : int;
  parent : int option;  (** enclosing span id, if still in the buffer *)
  name : string;
  start_ns : float;
  dur_ns : float;  (** 0 for point events *)
  attrs : (string * string) list;
}

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a new span. The span is recorded even when the
    thunk raises (the exception propagates). *)

val add : ?attrs:(string * string) list -> name:string -> start_ns:float -> dur_ns:float -> unit -> unit
(** Record a pre-measured span under the current parent — used by fused
    loops that account two phases' durations in one pass. No-op when
    disabled. *)

val event : ?attrs:(string * string) list -> string -> unit
(** Zero-duration point event under the current parent. *)

val clear : unit -> unit
(** Drop all buffered spans. *)

val spans : unit -> span list
(** Buffered spans, oldest first. *)

val capacity : int
(** Ring-buffer size (spans retained). *)

val render_tree : unit -> string
(** Indented parent/child tree of the buffered spans, durations
    human-formatted. Orphans (parent evicted) print as roots. *)

val render_jsonl : unit -> string
(** One JSON object per span per line. *)
