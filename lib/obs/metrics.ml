(* lint: guarded-by registry_mutex *)
(* Registration goes through one mutex; updates are lock-free atomics.
   Instruments are expected to be registered at module-initialization
   time of the instrumented code, so the hot path never touches the
   registry hashtables. *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; level : int Atomic.t }

(* 4 buckets per decade over [1 ns, 10^13 ns) — bucket i covers
   [10^(i/4), 10^((i+1)/4)). 10^13 ns ≈ 2.8 h, far beyond any query
   phase; out-of-range samples clamp to the edge buckets. *)
let buckets_per_decade = 4
let n_decades = 13
let n_buckets = buckets_per_decade * n_decades

type histogram = {
  h_name : string;
  buckets : int Atomic.t array;
  total : int Atomic.t;
  sum : float Atomic.t;
  max_seen : float Atomic.t;
}

let registry_mutex = Mutex.create ()
let counter_table : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauge_table : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histogram_table : (string, histogram) Hashtbl.t = Hashtbl.create 32

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counter_table name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          Hashtbl.replace counter_table name c;
          c)

let incr c = ignore (Atomic.fetch_and_add c.cell 1 : int)
let add c n = ignore (Atomic.fetch_and_add c.cell n : int)
let counter_value c = Atomic.get c.cell

let gauge name =
  with_registry (fun () ->
      match Hashtbl.find_opt gauge_table name with
      | Some g -> g
      | None ->
          let g = { g_name = name; level = Atomic.make 0 } in
          Hashtbl.replace gauge_table name g;
          g)

let set_gauge g v = Atomic.set g.level v
let gauge_value g = Atomic.get g.level

let histogram name =
  with_registry (fun () ->
      match Hashtbl.find_opt histogram_table name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
              total = Atomic.make 0;
              sum = Atomic.make 0.0;
              max_seen = Atomic.make 0.0;
            }
          in
          Hashtbl.replace histogram_table name h;
          h)

(* Boxed-float atomics need a CAS loop; the CAS compares the exact
   boxed value we read, so concurrent updates retry rather than lose. *)
let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let rec atomic_max_float a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then atomic_max_float a x

let bucket_of ns =
  if not (ns >= 1.0) then 0 (* also catches nan and negatives *)
  else
    let i = int_of_float (Float.log10 ns *. float_of_int buckets_per_decade) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let observe h ns =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of ns) 1 : int);
  ignore (Atomic.fetch_and_add h.total 1 : int);
  atomic_add_float h.sum ns;
  atomic_max_float h.max_seen ns

let time h f =
  let r, ns = Stdx.Clock.time_it f in
  observe h ns;
  r

let bucket_lo i = Float.pow 10.0 (float_of_int i /. float_of_int buckets_per_decade)
let bucket_hi i = bucket_lo (i + 1)

let percentile h p =
  let n = Atomic.get h.total in
  if n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n))) in
    let rank = min rank n in
    let cum = ref 0 and found = ref 0.0 and looking = ref true in
    for i = 0 to n_buckets - 1 do
      if !looking then begin
        let c = Atomic.get h.buckets.(i) in
        if !cum + c >= rank then begin
          (* Geometric interpolation inside the bucket. *)
          let frac = float_of_int (rank - !cum) /. float_of_int c in
          let lo = bucket_lo i and hi = bucket_hi i in
          found := lo *. Float.pow (hi /. lo) frac;
          looking := false
        end
        else cum := !cum + c
      end
    done;
    Float.min !found (Atomic.get h.max_seen)
  end

type histogram_summary = {
  count : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

let summarize h =
  let n = Atomic.get h.total in
  if n = 0 then { count = 0; mean_ns = 0.0; p50_ns = 0.0; p95_ns = 0.0; p99_ns = 0.0; max_ns = 0.0 }
  else
    {
      count = n;
      mean_ns = Atomic.get h.sum /. float_of_int n;
      p50_ns = percentile h 50.0;
      p95_ns = percentile h 95.0;
      p99_ns = percentile h 99.0;
      max_ns = Atomic.get h.max_seen;
    }

let sorted_by_name to_pair table =
  with_registry (fun () -> Hashtbl.fold (fun _ v acc -> to_pair v :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () = sorted_by_name (fun c -> (c.c_name, Atomic.get c.cell)) counter_table
let gauges () = sorted_by_name (fun g -> (g.g_name, Atomic.get g.level)) gauge_table
let histograms () = sorted_by_name (fun h -> (h.h_name, summarize h)) histogram_table

let reset_all () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counter_table;
      Hashtbl.iter (fun _ g -> Atomic.set g.level 0) gauge_table;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.total 0;
          Atomic.set h.sum 0.0;
          Atomic.set h.max_seen 0.0)
        histogram_table)

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let render () =
  let buf = Buffer.create 2048 in
  let section title = Buffer.add_string buf (Printf.sprintf "# %s\n" title) in
  section "counters";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-42s %d\n" name v))
    (counters ());
  section "gauges";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-42s %d\n" name v))
    (gauges ());
  section "histograms";
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf "%-42s count=%-8d p50=%-10s p95=%-10s p99=%-10s max=%s\n" name s.count
           (pp_ns s.p50_ns) (pp_ns s.p95_ns) (pp_ns s.p99_ns) (pp_ns s.max_ns)))
    (histograms ());
  Buffer.contents buf
