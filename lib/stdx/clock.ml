(* The OS source is wall-clock time of day, which can step backwards
   (NTP adjustment, manual clock set). Executor wall_ns and bench
   timings difference two readings, so [now_ns] clamps to the highest
   timestamp ever returned: deltas are never negative and the reported
   stream is monotonically non-decreasing, process-wide and across
   domains (the high-water mark is an atomic). *)

let high_water = Atomic.make 0.0

let now_ns () =
  let t = Unix.gettimeofday () *. 1e9 in
  let rec clamp () =
    let prev = Atomic.get high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set high_water prev t then t
    else clamp ()
  in
  clamp ()

let time_it f =
  let t0 = now_ns () in
  let r = f () in
  (r, now_ns () -. t0)
