module Splitmix = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  let golden = 0x9E3779B97F4A7C15L

  let next t =
    t.state <- Int64.add t.state golden;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
end

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let create seed =
  let sm = Splitmix.create seed in
  let s0 = Splitmix.next sm in
  let s1 = Splitmix.next sm in
  let s2 = Splitmix.next sm in
  let s3 = Splitmix.next sm in
  (* An all-zero state would be a fixed point; splitmix64 cannot produce
     four zero outputs in a row, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (int64 t)

(* Little-endian s0..s3: the full 256-bit state, so a restored
   generator continues the exact output stream. *)
let export t =
  let b = Bytes.create 32 in
  let put i v =
    for j = 0 to 7 do
      Bytes.set b ((i * 8) + j) (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * j)) 0xFFL)))
    done
  in
  put 0 t.s0;
  put 1 t.s1;
  put 2 t.s2;
  put 3 t.s3;
  Bytes.to_string b

let restore t s =
  if String.length s <> 32 then invalid_arg "Prng.restore: state must be 32 bytes";
  let get i =
    let v = ref 0L in
    for j = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[(i * 8) + j]))
    done;
    !v
  in
  let s0 = get 0 and s1 = get 1 and s2 = get 2 and s3 = get 3 in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Prng.restore: all-zero state is not a valid xoshiro state";
  t.s0 <- s0;
  t.s1 <- s1;
  t.s2 <- s2;
  t.s3 <- s3

let import s =
  let t = { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L } in
  restore t s;
  t

let bits32 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (int64 t) 1 in
    (* r is uniform in [0, 2^63) *)
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.add (Int64.sub Int64.max_int bound64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let float t =
  let r = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let r = ref (int64 t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.unsafe_set b (!i + j) (Char.unsafe_chr (Int64.to_int (Int64.logand !r 0xFFL)));
      r := Int64.shift_right_logical !r 8
    done;
    i := !i + k
  done;
  b
