let hex_digits = "0123456789abcdef"

let to_hex s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.unsafe_set b (2 * i) hex_digits.[c lsr 4];
    Bytes.unsafe_set b ((2 * i) + 1) hex_digits.[c land 0xf]
  done;
  Bytes.unsafe_to_string b

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bytes_util.of_hex: not a hex digit"

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytes_util.of_hex: odd length";
  String.init (n / 2) (fun i -> Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let put_u32_be b off v = Bytes.set_int32_be b off v
let get_u32_be s off = String.get_int32_be s off
let put_u64_be b off v = Bytes.set_int64_be b off v
let get_u64_be s off = String.get_int64_be s off
let put_u64_le b off v = Bytes.set_int64_le b off v
let get_u64_le s off = String.get_int64_le s off

let length_prefixed parts =
  let total = List.fold_left (fun acc s -> acc + 4 + String.length s) 0 parts in
  let b = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun s ->
      put_u32_be b !off (Int32.of_int (String.length s));
      Bytes.blit_string s 0 b (!off + 4) (String.length s);
      off := !off + 4 + String.length s)
    parts;
  Bytes.unsafe_to_string b

let ct_equal a b =
  let la = String.length a and lb = String.length b in
  let n = if la < lb then la else lb in
  (* Seed the accumulator with the length difference so unequal-length
     inputs fail without an early return, then fold every byte of the
     common prefix in — no data-dependent branches. *)
  let acc = ref (la lxor lb) in
  for i = 0 to n - 1 do
    acc := !acc lor (Char.code (String.unsafe_get a i) lxor Char.code (String.unsafe_get b i))
  done;
  !acc = 0

let xor_into ~src ~dst ~len =
  if len > String.length src || len > Bytes.length dst then
    invalid_arg "Bytes_util.xor_into: length out of range";
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor Char.code (String.unsafe_get src i)))
  done
