(** Growable arrays.

    OCaml 5.1 has no [Dynarray] in the standard library; this is the
    minimal growable-array abstraction used by the storage engine and the
    workload generators. Amortized O(1) [push]. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array

val backing : 'a t -> 'a array * int
(** The current backing array and logical length, without copying. The
    first [len] slots stay valid as long as the vector is only pushed
    to: a push that outgrows the capacity reallocates, leaving the
    returned array behind, and {!set} is the only operation that would
    mutate a shared slot in place. For zero-copy snapshot sharing
    (e.g. [Table.freeze]); callers must treat the array as read-only
    and never index at or beyond the returned length. *)

val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
