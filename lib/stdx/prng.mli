(** Deterministic, splittable pseudo-random number generators.

    Two generators are provided:
    - {!Splitmix}: splitmix64, used for seeding and cheap stream splitting.
    - xoshiro256** (the default [t]): fast, high-quality general-purpose
      PRNG used everywhere the library needs "weak" (non-cryptographic)
      randomness — e.g. picking which salt to use for a given encryption.

    These generators are deliberately {e not} cryptographically secure.
    Security-relevant randomness (key generation, DRBG streams inside
    [getSalts]) lives in [Crypto]. *)

type t
(** Mutable xoshiro256** generator state. *)

val create : int64 -> t
(** [create seed] builds a generator; the 256-bit internal state is
    expanded from [seed] with splitmix64, so any seed is acceptable. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s continuation. *)

val export : t -> string
(** The full 256-bit internal state as 32 little-endian bytes — what a
    durable store checkpoints so a reopened database resumes the exact
    weak-randomness stream (same salt choices, same CTR nonces). *)

val restore : t -> string -> unit
(** Overwrite the state in place with a previously {!export}ed one.
    Raises [Invalid_argument] on a malformed (wrong-length or all-zero)
    state. *)

val import : string -> t
(** Fresh generator from an {!export}ed state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits32 : t -> int
(** 30 uniform bits as a non-negative [int] (compatible with
    [Random.bits]). *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)], 53-bit resolution. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes g n] is [n] uniformly random bytes. *)

module Splitmix : sig
  type t

  val create : int64 -> t
  val next : t -> int64
end
