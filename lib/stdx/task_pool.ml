(* A fixed pool of worker domains with chunked fan-out. The pool keeps
   [domains - 1] spawned domains blocked on a job queue; the caller of
   [parallel_init] is the remaining participant, so a pool created with
   [~domains:1] never spawns anything and degenerates to [Array.init]
   on the calling domain — the property the ingestion pipeline's
   1-domain byte-identity guarantee rests on. *)

type job = Job of (unit -> unit) | Quit

type t = {
  domains : int; (* total parallelism, including the calling domain *)
  jobs : job Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t array;
  mutable closed : bool;
}

let submit t job =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Task_pool: pool is shut down"
  end;
  Queue.push job t.jobs;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs do
    Condition.wait t.nonempty t.mutex
  done;
  let job = Queue.pop t.jobs in
  Mutex.unlock t.mutex;
  match job with
  | Quit -> ()
  | Job f ->
      f ();
      worker_loop t

let create ~domains =
  if domains < 1 then invalid_arg "Task_pool.create: domains must be >= 1";
  let t =
    {
      domains;
      jobs = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      workers = [||];
      closed = false;
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.domains

let shutdown t =
  let already =
    Mutex.lock t.mutex;
    let c = t.closed in
    if not c then begin
      t.closed <- true;
      Array.iter (fun _ -> Queue.push Quit t.jobs) t.workers;
      Condition.broadcast t.nonempty
    end;
    Mutex.unlock t.mutex;
    c
  in
  if not already then Array.iter Domain.join t.workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let parallel_init t n f =
  if n < 0 then invalid_arg "Task_pool.parallel_init: negative length";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let m = Mutex.create () in
    let finished = Condition.create () in
    let next = ref 0 in
    let pending = ref 0 in
    let err = ref None in
    (* The first failure wins; its backtrace is captured at the catch
       site so the caller's re-raise points at the chunk that died, not
       at [parallel_init] itself. *)
    let record_err e bt =
      Mutex.lock m;
      if !err = None then err := Some (e, bt);
      Mutex.unlock m
    in
    (* Every participant (caller + helpers) pulls the next unclaimed
       chunk index until none remain or a chunk has failed. *)
    let rec body () =
      Mutex.lock m;
      let i = !next in
      let stop = i >= n || !err <> None in
      if not stop then next := i + 1;
      Mutex.unlock m;
      if not stop then begin
        (match f i with
        | v -> results.(i) <- Some v
        | exception e -> record_err e (Printexc.get_raw_backtrace ()));
        body ()
      end
    in
    let helper () =
      body ();
      Mutex.lock m;
      decr pending;
      if !pending = 0 then Condition.broadcast finished;
      Mutex.unlock m
    in
    let helpers = min (t.domains - 1) (n - 1) in
    Mutex.lock m;
    pending := helpers;
    Mutex.unlock m;
    (* A concurrent [shutdown] can make [submit] raise part-way through
       the fan-out. Helpers that never reached the queue will never run
       [decr pending], so waiting on their slots would block forever:
       roll the unqueued slots back and treat the submission failure
       like any chunk error — the caller still drains the helpers that
       did get queued before raising. *)
    let queued = ref 0 in
    (try
       for _ = 1 to helpers do
         submit t (Job helper);
         incr queued
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock m;
       pending := !pending - (helpers - !queued);
       if !err = None then err := Some (e, bt);
       Mutex.unlock m);
    body ();
    Mutex.lock m;
    while !pending > 0 do
      Condition.wait finished m
    done;
    Mutex.unlock m;
    (match !err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> failwith "Task_pool.parallel_init: chunk produced no result")
      results
  end

let parallel_iter t n f = ignore (parallel_init t n (fun i -> f i))

let map_array ?pool a f =
  match pool with
  | None -> Array.map f a
  | Some t when t.domains = 1 -> Array.map f a
  | Some t -> parallel_init t (Array.length a) (fun i -> f a.(i))
