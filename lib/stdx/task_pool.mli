(** Domain-based worker pool with chunked fan-out.

    A pool created with [~domains:d] owns [d - 1] worker domains; the
    caller of {!parallel_init} participates as the [d]-th, so a
    1-domain pool runs everything on the calling domain with no
    spawning, scheduling, or ordering differences from a plain
    [Array.init]. That degenerate case is load-bearing: the batched
    ingestion pipeline's "1 domain is byte-identical to sequential"
    guarantee reduces to it.

    The pool is safe to share across batches but not reentrant: do not
    call {!parallel_init} from inside a task running on the same pool
    (helpers could then starve behind the outer tasks). Task functions
    must not mutate shared state unless they synchronize themselves —
    the intended use is pure chunk computations whose results the
    caller applies single-threaded afterwards. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains
    ([domains >= 1]; 1 spawns none). *)

val domains : t -> int
(** Total parallelism, including the calling domain. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init t n f] is [Array.init n f] with the [f i] calls
    distributed over the pool. Each index is computed exactly once;
    the result array is in index order regardless of scheduling. If
    any [f i] raises, one such exception is re-raised in the caller —
    with the backtrace captured at the failing chunk, via
    [Printexc.raise_with_backtrace] — after all in-flight tasks drain
    (remaining indexes are skipped, so side effects of [f] must not be
    relied on after a failure). A concurrent {!shutdown} that makes
    internal submission fail is reported the same way: the queued
    helpers drain, then the submission error is raised — never a
    deadlock, and never a task left running past the call. *)

val parallel_iter : t -> int -> (int -> unit) -> unit
(** [parallel_init] for effects only. *)

val map_array : ?pool:t -> 'a array -> ('a -> 'b) -> 'b array
(** Scoped-parallelism helper for optionally-parallel stages:
    [map_array ?pool a f] is exactly [Array.map f a] when [pool] is
    absent or has one domain (the sequential byte-identity anchor), and
    [parallel_init] over the indexes of [a] otherwise — same
    element-wise calls, index-ordered results. *)

val shutdown : t -> unit
(** Join all workers. Idempotent. Submitting work after shutdown
    raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)
