let sum_weights w =
  let s = Array.fold_left (fun acc x ->
      if x < 0.0 || Float.is_nan x then invalid_arg "Sampling: negative or NaN weight";
      acc +. x)
      0.0 w
  in
  if s <= 0.0 then invalid_arg "Sampling: weights must have positive sum";
  s

let inverse_cdf g w ~sum =
  let target = Prng.float g *. sum in
  let n = Array.length w in
  let rec loop i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. w.(i) in
      if target < acc then i else loop (i + 1) acc
    end
  in
  loop 0 0.0

let weighted g w =
  let s = sum_weights w in
  inverse_cdf g w ~sum:s

(* For weights already known to be normalized (e.g. validated salt
   sets): one accumulation pass, no re-validation or re-summing. *)
let weighted_norm g w =
  if Array.length w = 0 then invalid_arg "Sampling.weighted_norm: empty weights";
  inverse_cdf g w ~sum:1.0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Sampling.choose: empty array";
  a.(Prng.int g (Array.length a))

module Cdf = struct
  type t = { cum : float array } (* cum.(i) = sum of w.(0..i); cum.(n-1) = total *)

  let create w =
    let n = Array.length w in
    if n = 0 then invalid_arg "Cdf.create: empty weights";
    ignore (sum_weights w : float) (* validation: non-negative, positive sum *);
    let cum = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        acc := !acc +. x;
        cum.(i) <- !acc)
      w;
    { cum }

  let sample t g =
    let n = Array.length t.cum in
    let target = Prng.float g *. t.cum.(n - 1) in
    (* First index with cum.(i) > target. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cum.(mid) > target then hi := mid else lo := mid + 1
    done;
    !lo

  let size t = Array.length t.cum
end

module Alias = struct
  type t = { prob : float array; alias : int array }

  let create w =
    let n = Array.length w in
    if n = 0 then invalid_arg "Alias.create: empty weights";
    let s = sum_weights w in
    let scaled = Array.map (fun x -> x *. float_of_int n /. s) w in
    let prob = Array.make n 0.0 and alias = Array.make n 0 in
    let small = Stack.create () and large = Stack.create () in
    Array.iteri (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large) scaled;
    while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
      let s_i = Stack.pop small and l_i = Stack.pop large in
      prob.(s_i) <- scaled.(s_i);
      alias.(s_i) <- l_i;
      scaled.(l_i) <- scaled.(l_i) +. scaled.(s_i) -. 1.0;
      if scaled.(l_i) < 1.0 then Stack.push l_i small else Stack.push l_i large
    done;
    Stack.iter (fun i -> prob.(i) <- 1.0) small;
    Stack.iter (fun i -> prob.(i) <- 1.0) large;
    { prob; alias }

  let sample t g =
    let n = Array.length t.prob in
    let i = Prng.int g n in
    if Prng.float g < t.prob.(i) then i else t.alias.(i)

  let size t = Array.length t.prob
end
