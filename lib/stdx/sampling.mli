(** Sampling from discrete distributions.

    The WRE encryption path samples a salt for every record it encrypts,
    so the per-sample cost matters at 10M-record scale. {!Alias} gives
    O(1) samples after O(n) preprocessing (Walker/Vose alias method);
    {!weighted} is the simple O(n) inverse-CDF fallback used for
    one-off draws. *)

val weighted : Prng.t -> float array -> int
(** [weighted g w] draws index [i] with probability [w.(i) / sum w].
    Weights must be non-negative with positive sum. O(n), including a
    validation pass — for repeated draws from the same weights build a
    {!Cdf} or {!Alias} once instead. *)

val weighted_norm : Prng.t -> float array -> int
(** Like {!weighted} but assumes the weights are already normalized
    (sum to 1) and skips the per-draw validation/summing pass — a
    single accumulation at most. The caller is responsible for the
    invariant (e.g. [Salts.validate] guarantees it). *)

val shuffle : Prng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle (uniform over permutations). *)

val choose : Prng.t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

module Cdf : sig
  type t

  val create : float array -> t
  (** Validate the weights (non-negative, positive sum) and build the
      cumulative table once. O(n). *)

  val sample : t -> Prng.t -> int
  (** O(log n) draw with probability proportional to the original
      weights (binary search over the cumulative table). *)

  val size : t -> int
end

module Alias : sig
  type t

  val create : float array -> t
  (** Preprocess weights (non-negative, positive sum) into alias tables.
      O(n). *)

  val sample : t -> Prng.t -> int
  (** O(1) draw with probability proportional to the original weights. *)

  val size : t -> int
end
