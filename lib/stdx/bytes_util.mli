(** Byte-string helpers shared by the crypto layer and storage engine. *)

val to_hex : string -> string
(** Lowercase hex encoding. *)

val of_hex : string -> string
(** Inverse of {!to_hex}. Raises [Invalid_argument] on malformed input. *)

val put_u32_be : bytes -> int -> int32 -> unit
val get_u32_be : string -> int -> int32
val put_u64_be : bytes -> int -> int64 -> unit
val get_u64_be : string -> int -> int64
val put_u64_le : bytes -> int -> int64 -> unit
val get_u64_le : string -> int -> int64

val length_prefixed : string list -> string
(** Unambiguous encoding of a string list: each element is prefixed with
    its 4-byte big-endian length. Used to build PRF inputs so that
    [(salt, message)] pairs of different splits can never collide
    (paper §IV's salt-encoding requirement). *)

val ct_equal : string -> string -> bool
(** Constant-time equality: runtime depends only on the inputs'
    lengths, never on where they differ. The mandatory comparison for
    tags, MACs and key material (wre-lint rule R2) — a variable-time
    [=] on a MAC check is a classic padding-oracle-style timing
    side channel. *)

val xor_into : src:string -> dst:bytes -> len:int -> unit
(** [xor_into ~src ~dst ~len] XORs the first [len] bytes of [src] into
    [dst] in place. *)
