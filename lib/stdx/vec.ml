type 'a t = { mutable data : 'a array; mutable len : int }

let create ?capacity:(_ = 16) () = { data = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i t.len)

let get t i =
  check t i;
  Array.unsafe_get t.data i

let set t i x =
  check t i;
  Array.unsafe_set t.data i x

let grow t x =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some (Array.unsafe_get t.data t.len)
  end

let clear t =
  t.data <- [||];
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let backing t = (t.data, t.len)

let map f t =
  { data = Array.map f (to_array t); len = t.len }

let exists p t =
  let rec loop i = i < t.len && (p (Array.unsafe_get t.data i) || loop (i + 1)) in
  loop 0

let to_list t = Array.to_list (to_array t)
let of_array a = { data = Array.copy a; len = Array.length a }
let of_list l = of_array (Array.of_list l)

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  t.data <- a
