(** Monotonic timing for the executor and benchmarks.

    The only module (with [Stdx.Prng]) allowed to touch ambient time
    sources under lint rule R3. *)

val now_ns : unit -> float
(** Monotonically non-decreasing timestamp in nanoseconds: the OS time
    of day clamped to the process-wide high-water mark, so a clock
    stepping backwards mid-run can never produce negative intervals.
    Microsecond resolution from the OS. *)

val time_it : (unit -> 'a) -> 'a * float
(** Run a thunk, returning its result and elapsed nanoseconds
    (always [>= 0]). *)
