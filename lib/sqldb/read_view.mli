(** Immutable point-in-time view of one table (an epoch snapshot).

    [Table.freeze] publishes one of these under the table's writer
    lock; afterwards every accessor is a pure read plus pager charges,
    so any number of reader domains can query the view while writers
    keep mutating the live table — readers never block writers and
    vice versa. Row arrays are shared by pointer (the table never
    mutates a stored row in place); visibility, page map and index
    structures are copied, so later mutations — including vacuum and
    checkpoint — are invisible through the view. *)

type t

val make :
  epoch:int ->
  name:string ->
  schema:Schema.t ->
  pager:Pager.t ->
  heap_rel:Pager.rel ->
  rows:Value.t array array ->
  live:bool array ->
  row_pages:int array ->
  n_dead:int ->
  cur_page:int ->
  cur_fill:int ->
  data_bytes:int ->
  reclaimed:Value.t array ->
  row_bytes:(Value.t array -> int) ->
  indexes:(string * Table_index.t) list ->
  t
(** Constructor for [Table.freeze] — not meant for direct use. *)

val epoch : t -> int
(** The table's mutation epoch this view was frozen at. *)

val name : t -> string
val schema : t -> Schema.t
val pager : t -> Pager.t

val row_count : t -> int
(** Heap slots, including tombstones and reclaimed holes. *)

val live_count : t -> int
val is_live : t -> int -> bool

val is_reclaimed : t -> int -> bool
(** True for a slot vacuumed away before the freeze (physical-identity
    check against the table's shared sentinel). *)

val peek_row : t -> int -> Value.t array
(** The row without any pager charge (predicate evaluation). *)

val read_row : t -> int -> Value.t array
(** The row with heap page touch, row and transfer charges. *)

val scan : t -> (int -> Value.t array -> unit) -> unit
(** Full scan in id order: touches each heap page once, surfaces live
    rows only, charges every slot examined. *)

val index_on : t -> column:string -> Table_index.t option
(** Frozen index copy for [column], if one existed at freeze time. *)

val indexes : t -> (string * Table_index.t) list

val row_page : t -> int -> int

val cur_page : t -> int
val cur_fill : t -> int
val data_bytes : t -> int
(** Heap-cursor state at freeze time, so a physical checkpoint taken
    from the view ([Table.snapshot_of_view]) restores byte-identically. *)
