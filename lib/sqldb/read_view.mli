(** Immutable point-in-time view of one table (an epoch snapshot).

    [Table.freeze] publishes one of these under the table's writer
    lock; afterwards every accessor is a pure read plus pager charges,
    so any number of reader domains can query the view while writers
    keep mutating the live table — readers never block writers and
    vice versa. The columnar storage (per-column dictionaries and id
    arrays) is shared by pointer — safe because those structures are
    append-only, with vacuum swapping in fresh backings instead of
    mutating shared slots — while the visibility bitmap and index
    structures are copied, so later mutations — including vacuum and
    checkpoint — are invisible through the view. *)

type t

type col = {
  dict : Column_dict.frozen;
  ids : int array;  (** shared backing; slots at or past the view's row count are foreign *)
}

val make :
  epoch:int ->
  name:string ->
  schema:Schema.t ->
  pager:Pager.t ->
  heap_rel:Pager.rel ->
  cols:col array ->
  n:int ->
  live:bool array ->
  row_pages:int array ->
  row_sizes:int array ->
  n_dead:int ->
  cur_page:int ->
  cur_fill:int ->
  data_bytes:int ->
  live_bytes:int ->
  rm_cur_page:int ->
  rm_cur_fill:int ->
  rm_data_bytes:int ->
  dict_overhead_bytes:int ->
  reclaimed:Value.t array ->
  row_bytes:(Value.t array -> int) ->
  indexes:(string * Table_index.t) list ->
  t
(** Constructor for [Table.freeze] — not meant for direct use. *)

val epoch : t -> int
(** The table's mutation epoch this view was frozen at. *)

val name : t -> string
val schema : t -> Schema.t
val pager : t -> Pager.t

val row_count : t -> int
(** Heap slots, including tombstones and reclaimed holes. *)

val live_count : t -> int
val is_live : t -> int -> bool

val is_reclaimed : t -> int -> bool
(** True for a slot vacuumed away before the freeze. *)

val peek_row : t -> int -> Value.t array
(** Materialize the row from the column dictionaries, without any pager
    charge (predicate evaluation). Reclaimed slots return the empty
    sentinel row. *)

val read_row : t -> int -> Value.t array
(** The row with heap page touch, row and transfer charges. Transfer is
    charged at the logical (row-format) tuple size, like the pre-
    columnar engine, so simulated query costs are layout-independent. *)

val scan : t -> (int -> Value.t array -> unit) -> unit
(** Full scan in id order: touches each heap page once, surfaces live
    rows only, charges every slot examined. *)

val index_on : t -> column:string -> Table_index.t option
(** Frozen index copy for [column], if one existed at freeze time. *)

val indexes : t -> (string * Table_index.t) list

val row_page : t -> int -> int

val cur_page : t -> int
val cur_fill : t -> int
val data_bytes : t -> int
val live_bytes : t -> int
val rm_cur_page : t -> int
val rm_cur_fill : t -> int
val rm_data_bytes : t -> int
(** Heap-cursor and accounting state at freeze time ([rm_*] is the
    row-format shadow layout), so a physical checkpoint taken from the
    view ([Table.snapshot_of_view]) restores byte-identically. *)

val dict_overhead_bytes : t -> int
(** Dictionary-resident bytes across all columns at freeze time. *)

(* Columnar internals — the checkpoint serializer streams these
   directly instead of materializing rows. *)

val n_cols : t -> int

val col_id : t -> col:int -> int -> int
(** Dictionary id of (column, row); -1 for a reclaimed slot. *)

val row_size : t -> int -> int
(** Physical (columnar) tuple bytes of a heap slot; 0 once reclaimed. *)

val dict : t -> col:int -> Column_dict.frozen
