(* Two-table equi-join plans over frozen read views: the plaintext
   hash join (Equi) and the tag-bucket join the WRE proxy compiles
   encrypted joins into (Buckets). See join.mli for the contracts. *)

type spec =
  | Equi
  | Buckets of (Value.t list * Value.t list) array

type plan = { build_left : bool; buckets : int }

type result = {
  pairs : (int * int) array;
  bucket_pairs : int array;
  plan : plan;
  wall_ns : float;
  stats : Pager.stats;
}

let m_joins = Obs.Metrics.counter "join.queries_total"
let m_buckets = Obs.Metrics.counter "join.buckets_total"
let m_candidates = Obs.Metrics.counter "join.pairs_candidate_total"
let h_wall = Obs.Metrics.histogram "join.wall_ns"

(* Sorted, deduplicated pair set: the canonical order every probe
   schedule normalizes to, and what makes multiplicities exact when
   bucketized tag sharing emits the same pair from several buckets. *)
let normalize_pairs pairs =
  Array.sort (fun (a : int * int) b -> compare a b) pairs;
  let n = Array.length pairs in
  if n = 0 then pairs
  else begin
    let out = Stdx.Vec.create ~capacity:n () in
    Array.iteri (fun i p -> if i = 0 || p <> pairs.(i - 1) then Stdx.Vec.push out p) pairs;
    Stdx.Vec.to_array out
  end

let sorted_dedup_ids (ids : int array) =
  Array.sort (fun (a : int) b -> compare a b) ids;
  let n = Array.length ids in
  if n = 0 then ids
  else begin
    let out = Stdx.Vec.create ~capacity:n () in
    Array.iteri (fun i id -> if i = 0 || id <> ids.(i - 1) then Stdx.Vec.push out id) ids;
    Stdx.Vec.to_array out
  end

(* Index entries may point at tombstoned tuples; drop them, like the
   executor's visibility check. *)
let live_only view ids =
  if Read_view.live_count view = Read_view.row_count view then ids
  else Array.of_list (List.filter (Read_view.is_live view) (Array.to_list ids))

(* value -> row-id list from one scan ([Read_view.scan] surfaces live
   rows only). NULL is skipped: SQL equality never matches it. *)
let hash_of_view view col =
  let cidx = Schema.column_index (Read_view.schema view) col in
  let tbl = Hashtbl.create 1024 in
  Read_view.scan view (fun id row ->
      let v = row.(cidx) in
      if v <> Value.Null then
        Hashtbl.replace tbl v (id :: Option.value ~default:[] (Hashtbl.find_opt tbl v)));
  tbl

(* Build from the smaller side, stream the larger side through it.
   Build ids were accumulated by a descending-id cons, probe ids arrive
   ascending — order is irrelevant, [normalize_pairs] canonicalizes. *)
let run_equi ~left ~right ~on_left ~on_right ~build_left =
  let build_view, probe_view, build_col, probe_col =
    if build_left then (left, right, on_left, on_right) else (right, left, on_right, on_left)
  in
  let tbl = hash_of_view build_view build_col in
  let pidx = Schema.column_index (Read_view.schema probe_view) probe_col in
  let out = Stdx.Vec.create () in
  Read_view.scan probe_view (fun id row ->
      match Hashtbl.find_opt tbl row.(pidx) with
      | None -> ()
      | Some ids ->
          List.iter
            (fun b -> Stdx.Vec.push out (if build_left then (b, id) else (id, b)))
            ids);
  Stdx.Vec.to_array out

(* Per-side posting lookup for bucket keys: the ON-column index when
   one exists, else one value->ids table built by a single scan before
   the fan-out (read-only afterwards, so bucket tasks on any domain may
   share it). Either way the result is sorted, deduplicated, live. *)
let postings view col =
  match Read_view.index_on view ~column:col with
  | Some idx -> fun keys -> live_only view (Table_index.lookup_many idx keys)
  | None ->
      let tbl = hash_of_view view col in
      fun keys ->
        sorted_dedup_ids
          (Array.of_list
             (List.concat_map
                (fun k -> Option.value ~default:[] (Hashtbl.find_opt tbl k))
                keys))

let cross lids rids =
  let nl = Array.length lids and nr = Array.length rids in
  if nl = 0 || nr = 0 then [||]
  else begin
    let out = Array.make (nl * nr) (0, 0) in
    for i = 0 to nl - 1 do
      for j = 0 to nr - 1 do
        out.((i * nr) + j) <- (lids.(i), rids.(j))
      done
    done;
    out
  end

let run ?pool ~left ~right ~on_left ~on_right spec =
  Obs.Metrics.incr m_joins;
  Obs.Trace.with_span "join.run" @@ fun () ->
  let self_dom = (Domain.self () :> int) in
  let before = Pager.local_stats () in
  let worker_stats = ref Pager.zero_stats in
  let t0 = Stdx.Clock.now_ns () in
  let build_left = Read_view.live_count left <= Read_view.live_count right in
  let raw, bucket_pairs =
    match spec with
    | Equi -> (run_equi ~left ~right ~on_left ~on_right ~build_left, [||])
    | Buckets bs ->
        Obs.Metrics.add m_buckets (Array.length bs);
        let post_left = postings left on_left and post_right = postings right on_right in
        let outcomes =
          Stdx.Task_pool.map_array ?pool bs (fun (lkeys, rkeys) ->
              let b = Pager.local_stats () in
              let pairs = cross (post_left lkeys) (post_right rkeys) in
              (pairs, (Domain.self () :> int), Pager.diff_stats b (Pager.local_stats ())))
        in
        Array.iter
          (fun (_, dom, d) ->
            if dom <> self_dom then worker_stats := Pager.sum_stats !worker_stats d)
          outcomes;
        ( Array.concat (Array.to_list (Array.map (fun (p, _, _) -> p) outcomes)),
          Array.map (fun (p, _, _) -> Array.length p) outcomes )
  in
  Obs.Metrics.add m_candidates (Array.length raw);
  let pairs = normalize_pairs raw in
  (* Shipping (left id, right id) pairs costs ~16 bytes each on the
     wire, like the executor's 8-bytes-per-id charge for Row_ids. *)
  Pager.charge_transfer (Read_view.pager left) (16 * Array.length pairs);
  let wall_ns = Stdx.Clock.now_ns () -. t0 in
  let stats = Pager.sum_stats (Pager.diff_stats before (Pager.local_stats ())) !worker_stats in
  let buckets = match spec with Equi -> 0 | Buckets bs -> Array.length bs in
  Obs.Metrics.observe h_wall wall_ns;
  if Obs.Trace.is_enabled () then
    Obs.Trace.event "join.plan"
      ~attrs:
        [
          ("mode", match spec with Equi -> "equi" | Buckets _ -> "tag_buckets");
          ("build", if build_left then "left" else "right");
          ("buckets", string_of_int buckets);
          ("candidates", string_of_int (Array.length pairs));
          ("epochs",
           Printf.sprintf "%d/%d" (Read_view.epoch left) (Read_view.epoch right));
        ];
  { pairs; bucket_pairs; plan = { build_left; buckets }; wall_ns; stats }
