type mutation =
  | Created_table of { name : string; schema : Schema.t }
  | Created_index of { table : string; column : string; kind : Table_index.kind }
  | Inserted of { table : string; row : Value.t array }
  | Inserted_batch of { table : string; rows : Value.t array array }
  | Deleted of { table : string; id : int }
  | Vacuumed of { table : string }

type hook = mutation -> unit
