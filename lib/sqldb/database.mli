(** Database catalog: the deployable surface.

    A [Database.t] stands in for the unmodified cloud DBMS of the
    paper: the WRE client only ever creates tables, inserts rows,
    builds standard indexes and runs SELECT queries against it —
    no custom server-side machinery, which is the whole point of
    "easily deployable" encryption. *)

type t

val create : ?config:Pager.config -> unit -> t
val pager : t -> Pager.t

val create_table : t -> name:string -> schema:Schema.t -> Table.t
(** Raises [Invalid_argument] if the name is taken. *)

val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option
val tables : t -> Table.t list

val freeze_pair : t -> string -> string -> (Read_view.t * Read_view.t) option
(** Resolve two table names and freeze both in one epoch-consistent
    step: the views are taken back to back under the caller's
    single-writer discipline, so no mutation interleaves between them.
    [None] if either name is unknown. The join path's snapshot
    primitive. *)

val insert : t -> table:string -> Value.t array -> int

val query : t -> table:string -> projection:Executor.projection -> Predicate.t -> Executor.result

val drop_caches : t -> unit
(** Cold-cache protocol between queries (paper §VI-B). *)

val total_bytes : t -> int
(** All heaps + all indexes: the "DB + Indexes Size" of Table I. *)

val heap_bytes : t -> int
(** All heaps only: the "DB Size" column of Table I. *)

(* Durability hooks. *)

val set_journal : t -> Journal.hook option -> unit
(** Install (or clear) the mutation hook on the database and every
    current table; tables created later inherit it. Table creation
    itself is reported as {!Journal.Created_table}. *)

val restore_table : t -> Table.snapshot -> Table.t
(** Register a table rebuilt from a checkpoint snapshot. Emits no
    journal events for the restore; the table then journals normally.
    Raises [Invalid_argument] if the name is taken. *)
