type projection = Row_ids | All_columns

type plan_kind =
  | Index_scan of string
  | Or_index_scan of string list
  | Range_traverse of string
  | Seq_scan

type result = {
  row_ids : int array;
  rows : Value.t array array;
  plan : plan_kind;
  wall_ns : float;
  stats : Pager.stats;
}

let m_queries = Obs.Metrics.counter "executor.queries_total"
let m_plan_index = Obs.Metrics.counter "executor.plan_index_total"
let m_plan_or = Obs.Metrics.counter "executor.plan_or_index_total"
let m_plan_seq = Obs.Metrics.counter "executor.plan_seq_total"
let m_plan_traverse = Obs.Metrics.counter "executor.plan_range_traverse_total"
let m_trav_nodes = Obs.Metrics.counter "range.nodes_visited_total"
let m_trav_leaves = Obs.Metrics.counter "range.leaf_probes_total"
let h_trav_roots = Obs.Metrics.histogram "range.cover_roots"
let h_trav_leaves = Obs.Metrics.histogram "range.leaf_probes"
let m_candidates = Obs.Metrics.counter "executor.candidates_total"
let m_returned = Obs.Metrics.counter "executor.rows_returned_total"
let h_wall = Obs.Metrics.histogram "executor.wall_ns"

(* The first Eq/In/Range leg over an indexed column, searched shallowly
   through conjunctions. The access is a superset of the leg it serves
   (exact for a pure leg), so callers re-check the full predicate when
   the plan does not cover it alone. The planner is parameterized over
   [index_of] so the same logic plans against a live table or a frozen
   read view. *)
let rec indexable index_of p =
  match p with
  | Predicate.Eq (col, v) -> Option.map (fun idx -> (col, `Eq (idx, v))) (index_of col)
  | Predicate.In (col, vs) -> Option.map (fun idx -> (col, `In (idx, vs))) (index_of col)
  | Predicate.Range (col, lo, hi) -> (
      (* Only B-trees serve range scans. *)
      match index_of col with
      | Some idx when Table_index.kind idx = Table_index.Btree -> Some (col, `Range (idx, lo, hi))
      | Some _ | None -> None)
  | Predicate.And ps -> List.find_map (indexable index_of) ps
  | Predicate.True | Predicate.Or _ | Predicate.Not _ -> None

(* A disjunction is index-servable when every leg is: the candidate set
   is then the deduplicated union of the per-leg accesses (the WRE
   proxy's server-side OR of tag IN-lists). Nested ORs flatten. *)
let or_accesses index_of legs =
  let rec go legs acc =
    match legs with
    | [] -> Some acc
    | Predicate.Or sub :: rest -> (
        match go sub acc with Some acc -> go rest acc | None -> None)
    | leg :: rest -> (
        match indexable index_of leg with
        | Some pair -> go rest (pair :: acc)
        | None -> None)
  in
  Option.map List.rev (go legs [])

type access =
  [ `Eq of Table_index.t * Value.t
  | `In of Table_index.t * Value.t list
  | `Range of Table_index.t * Value.t option * Value.t option ]

type planned = P_index of string * access | P_or of (string * access) list | P_seq

let plan_of index_of p =
  match indexable index_of p with
  | Some (col, access) -> P_index (col, access)
  | None -> (
      match p with
      | Predicate.Or legs -> (
          match or_accesses index_of legs with
          | Some ((_ :: _) as pairs) -> P_or pairs
          | Some [] | None -> P_seq)
      | _ -> P_seq)

let table_index_of table col = Table.index_on table ~column:col

let explain table p =
  match plan_of (table_index_of table) p with
  | P_index (col, _) -> Index_scan col
  | P_or pairs -> Or_index_scan (List.map fst pairs)
  | P_seq -> Seq_scan

(* Sorted, deduplicated union of candidate-id arrays. *)
let union_ids arrays =
  let all = Array.concat arrays in
  Array.sort (fun (a : int) b -> compare a b) all;
  let n = Array.length all in
  if n = 0 then all
  else begin
    let out = Stdx.Vec.create ~capacity:n () in
    Array.iteri (fun i id -> if i = 0 || id <> all.(i - 1) then Stdx.Vec.push out id) all;
    Stdx.Vec.to_array out
  end

let run table ~projection p =
  Obs.Metrics.incr m_queries;
  Obs.Trace.with_span "executor.run" @@ fun () ->
  let pager = Table.pager table in
  let before = Pager.stats pager in
  let t0 = Stdx.Clock.now_ns () in
  let schema = Table.schema table in
  let eval = Predicate.compile schema p in
  let seq_scan () =
    let acc = Stdx.Vec.create () in
    Table.scan table (fun id _row -> Stdx.Vec.push acc id);
    (Seq_scan, Stdx.Vec.to_array acc)
  in
  (* An access may still fail at run time (range over a hash index);
     [None] sends the whole query to a sequential scan. *)
  let fetch_access = function
    | `Eq (idx, v) -> Some (Table_index.lookup idx v)
    | `In (idx, vs) -> Some (Table_index.lookup_many idx vs)
    | `Range (idx, lo, hi) -> Table_index.range idx ?lo ?hi ()
  in
  let plan, candidate_ids =
    match plan_of (table_index_of table) p with
    | P_index (col, access) -> (
        match fetch_access access with
        | Some ids -> (Index_scan col, ids)
        | None -> seq_scan ())
    | P_or pairs -> (
        let legs = List.map (fun (_, access) -> fetch_access access) pairs in
        if List.exists Option.is_none legs then seq_scan ()
        else
          (Or_index_scan (List.map fst pairs), union_ids (List.filter_map Fun.id legs)))
    | P_seq -> seq_scan ()
  in
  (* Residual filter. Index results are checked against the full
     predicate; for a pure index leg this is a no-op re-check on peeked
     rows (an index-only scan does not touch the heap — visibility-map
     style — matching the paper's SELECT ID behaviour). An OR plan
     always re-checks: each leg's access may over-approximate its leg. *)
  let needs_filter =
    match (plan, p) with
    | Index_scan col, Predicate.Eq (c, _) when c = col -> false
    | Index_scan col, Predicate.In (c, _) when c = col -> false
    | Index_scan col, Predicate.Range (c, _, _) when c = col -> false
    | _ -> true
  in
  (* Index entries may point at tombstoned tuples; drop them (the
     visibility check a real executor performs). *)
  let candidate_ids =
    if Table.live_count table = Table.row_count table then candidate_ids
    else Array.of_list (List.filter (Table.is_live table) (Array.to_list candidate_ids))
  in
  let row_ids =
    if needs_filter then
      Array.of_list
        (List.filter (fun id -> eval (Table.peek_row table id)) (Array.to_list candidate_ids))
    else candidate_ids
  in
  let rows =
    match projection with
    | Row_ids ->
        (* Returning ids still ships ~8 bytes per hit across the wire. *)
        Pager.charge_transfer pager (8 * Array.length row_ids);
        [||]
    | All_columns -> Array.map (fun id -> Table.read_row table id) row_ids
  in
  let wall_ns = Stdx.Clock.now_ns () -. t0 in
  let after = Pager.stats pager in
  let stats =
    Pager.
      {
        hits = after.hits - before.hits;
        misses = after.misses - before.misses;
        rows_examined = after.rows_examined - before.rows_examined;
        sim_ns = after.sim_ns -. before.sim_ns;
      }
  in
  (match plan with
  | Index_scan _ -> Obs.Metrics.incr m_plan_index
  | Or_index_scan _ -> Obs.Metrics.incr m_plan_or
  | Range_traverse _ -> Obs.Metrics.incr m_plan_traverse
  | Seq_scan -> Obs.Metrics.incr m_plan_seq);
  Obs.Metrics.add m_candidates (Array.length candidate_ids);
  Obs.Metrics.add m_returned (Array.length row_ids);
  Obs.Metrics.observe h_wall wall_ns;
  if Obs.Trace.is_enabled () then
    Obs.Trace.event "executor.plan"
      ~attrs:
        [
          ( "plan",
            match plan with
            | Index_scan c -> "index(" ^ c ^ ")"
            | Or_index_scan cs -> "or_index(" ^ String.concat "," cs ^ ")"
            | Range_traverse c -> "range_traverse(" ^ c ^ ")"
            | Seq_scan -> "seq" );
          ("candidates", string_of_int (Array.length candidate_ids));
          ("rows", string_of_int (Array.length row_ids));
        ];
  { row_ids; rows; plan; wall_ns; stats }

(* The two-table plan: delegate to [Join], which owns bucket fan-out,
   pair normalization and the join.* metrics. Kept behind the executor
   so planning stays one surface. *)
let run_join = Join.run

(* Snapshot-read path: same planner, same result contract as [run],
   executed against a frozen [Read_view.t] with the per-tag index
   probes of multi-key plans (the IN-list of a rewritten WRE query, the
   legs of a server-side OR) optionally fanned across a task pool.

   Determinism: probe results are combined index-ordered, and the union
   is a sort + dedup, so [row_ids]/[rows] are identical regardless of
   how probes are scheduled; with no pool (or a 1-domain pool) the
   probes run in the same order a sequential [run] would issue them,
   making the two byte-identical. Pager counts are also scheduling-
   independent: the set of page touches is fixed by the plan, and the
   pager's atomic accounting turns each distinct page into exactly one
   miss no matter which domain gets there first.

   Per-query [stats] stay exact under concurrency: every probe task
   measures its own domain-local pager delta, and the caller adds the
   deltas of probes that ran on *other* domains to its own window —
   unrelated queries running concurrently never pollute the numbers. *)
let run_view ?pool view ~projection p =
  Obs.Metrics.incr m_queries;
  Obs.Trace.with_span "executor.run_view" @@ fun () ->
  let pager = Read_view.pager view in
  let self_dom = (Domain.self () :> int) in
  let before = Pager.local_stats () in
  let t0 = Stdx.Clock.now_ns () in
  let schema = Read_view.schema view in
  let eval = Predicate.compile schema p in
  let worker_stats = ref Pager.zero_stats in
  let seq_scan () =
    let acc = Stdx.Vec.create () in
    Read_view.scan view (fun id _row -> Stdx.Vec.push acc id);
    (Seq_scan, Stdx.Vec.to_array acc)
  in
  let probes_of : access -> (unit -> int array option) list = function
    | `Eq (idx, v) -> [ (fun () -> Some (Table_index.lookup idx v)) ]
    | `In (idx, vs) -> List.map (fun v () -> Some (Table_index.lookup idx v)) vs
    | `Range (idx, lo, hi) -> [ (fun () -> Table_index.range idx ?lo ?hi ()) ]
  in
  (* [union]: a single-access index plan returns its ids verbatim (the
     order [run] would produce); multi-probe plans (IN, OR) union with
     sort + dedup, exactly what [lookup_many]/[union_ids] compute. *)
  let run_probes kind probes ~union =
    let outcomes =
      Stdx.Task_pool.map_array ?pool (Array.of_list probes) (fun probe ->
          let b = Pager.local_stats () in
          let ids = probe () in
          let a = Pager.local_stats () in
          (ids, (Domain.self () :> int), Pager.diff_stats b a))
    in
    Array.iter
      (fun (_, dom, d) ->
        if dom <> self_dom then worker_stats := Pager.sum_stats !worker_stats d)
      outcomes;
    if Array.exists (fun (ids, _, _) -> ids = None) outcomes then seq_scan ()
    else
      let id_arrays = Array.to_list (Array.map (fun (ids, _, _) -> Option.get ids) outcomes) in
      match id_arrays with
      | [ ids ] when not union -> (kind, ids)
      | _ -> (kind, union_ids id_arrays)
  in
  let plan, candidate_ids =
    match plan_of (fun col -> Read_view.index_on view ~column:col) p with
    | P_index (col, access) ->
        run_probes (Index_scan col) (probes_of access) ~union:(match access with `In _ -> true | _ -> false)
    | P_or pairs ->
        run_probes
          (Or_index_scan (List.map fst pairs))
          (List.concat_map (fun (_, access) -> probes_of access) pairs)
          ~union:true
    | P_seq -> seq_scan ()
  in
  let needs_filter =
    match (plan, p) with
    | Index_scan col, Predicate.Eq (c, _) when c = col -> false
    | Index_scan col, Predicate.In (c, _) when c = col -> false
    | Index_scan col, Predicate.Range (c, _, _) when c = col -> false
    | _ -> true
  in
  let candidate_ids =
    if Read_view.live_count view = Read_view.row_count view then candidate_ids
    else Array.of_list (List.filter (Read_view.is_live view) (Array.to_list candidate_ids))
  in
  let row_ids =
    if needs_filter then
      Array.of_list
        (List.filter (fun id -> eval (Read_view.peek_row view id)) (Array.to_list candidate_ids))
    else candidate_ids
  in
  let rows =
    match projection with
    | Row_ids ->
        Pager.charge_transfer pager (8 * Array.length row_ids);
        [||]
    | All_columns -> Array.map (fun id -> Read_view.read_row view id) row_ids
  in
  let wall_ns = Stdx.Clock.now_ns () -. t0 in
  let stats = Pager.sum_stats (Pager.diff_stats before (Pager.local_stats ())) !worker_stats in
  (match plan with
  | Index_scan _ -> Obs.Metrics.incr m_plan_index
  | Or_index_scan _ -> Obs.Metrics.incr m_plan_or
  | Range_traverse _ -> Obs.Metrics.incr m_plan_traverse
  | Seq_scan -> Obs.Metrics.incr m_plan_seq);
  Obs.Metrics.add m_candidates (Array.length candidate_ids);
  Obs.Metrics.add m_returned (Array.length row_ids);
  Obs.Metrics.observe h_wall wall_ns;
  if Obs.Trace.is_enabled () then
    Obs.Trace.event "executor.plan"
      ~attrs:
        [
          ( "plan",
            match plan with
            | Index_scan c -> "index(" ^ c ^ ")"
            | Or_index_scan cs -> "or_index(" ^ String.concat "," cs ^ ")"
            | Range_traverse c -> "range_traverse(" ^ c ^ ")"
            | Seq_scan -> "seq" );
          ("epoch", string_of_int (Read_view.epoch view));
          ("candidates", string_of_int (Array.length candidate_ids));
          ("rows", string_of_int (Array.length row_ids));
        ];
  { row_ids; rows; plan; wall_ns; stats }

(* The ESEDS range plan (DESIGN.md §5k): the query ships the canonical
   cover of a range as O(log B) encrypted-tree roots; the server
   expands each root through [Range_tree.traverse] to its leaf bucket
   tags and probes the rtag index. One task per subtree root fans
   across the pool; each root's probe set is a sorted+deduplicated
   lookup and roots combine through [union_ids], so the candidate set —
   and hence [row_ids]/[rows] — is byte-identical at any domain count,
   the same determinism contract as [run_view]. Candidates are always
   re-checked against the full server predicate, which both filters
   conjunctive companions and keeps the traversal interchangeable with
   the flat tag IN-list plan. *)
let run_traverse ?pool view ~tree ~tag_column ~roots ~projection p =
  Obs.Metrics.incr m_queries;
  Obs.Trace.with_span "executor.run_traverse" @@ fun () ->
  let pager = Read_view.pager view in
  let self_dom = (Domain.self () :> int) in
  let before = Pager.local_stats () in
  let t0 = Stdx.Clock.now_ns () in
  let schema = Read_view.schema view in
  let eval = Predicate.compile schema p in
  let worker_stats = ref Pager.zero_stats in
  let plan, candidate_ids, nodes_visited, leaf_probes =
    match Read_view.index_on view ~column:tag_column with
    | None ->
        (* No rtag index on this view: degrade to a sequential scan;
           the shared tail re-checks the predicate over every row. *)
        let acc = Stdx.Vec.create () in
        Read_view.scan view (fun id _row -> Stdx.Vec.push acc id);
        (Seq_scan, Stdx.Vec.to_array acc, 0, 0)
    | Some idx ->
        let outcomes =
          Stdx.Task_pool.map_array ?pool roots (fun root ->
              let b = Pager.local_stats () in
              let ids, visited, leaves =
                match Range_tree.traverse tree ~root with
                | None ->
                    (* Unknown root pseudonym: an empty subtree, not an
                       error — traversal stays total for any query. *)
                    ([||], 0, 0)
                | Some (leaf_tags, visited) ->
                    let keys = List.map (fun tag -> Value.Int tag) (Array.to_list leaf_tags) in
                    (Table_index.lookup_many idx keys, visited, Array.length leaf_tags)
              in
              (ids, visited, leaves, (Domain.self () :> int), Pager.diff_stats b (Pager.local_stats ())))
        in
        Array.iter
          (fun (_, _, _, dom, d) ->
            if dom <> self_dom then worker_stats := Pager.sum_stats !worker_stats d)
          outcomes;
        let id_arrays = Array.to_list (Array.map (fun (ids, _, _, _, _) -> ids) outcomes) in
        let visited = Array.fold_left (fun acc (_, v, _, _, _) -> acc + v) 0 outcomes in
        let leaves = Array.fold_left (fun acc (_, _, l, _, _) -> acc + l) 0 outcomes in
        (Range_traverse tag_column, union_ids id_arrays, visited, leaves)
  in
  let candidate_ids =
    if Read_view.live_count view = Read_view.row_count view then candidate_ids
    else Array.of_list (List.filter (Read_view.is_live view) (Array.to_list candidate_ids))
  in
  let row_ids =
    Array.of_list
      (List.filter (fun id -> eval (Read_view.peek_row view id)) (Array.to_list candidate_ids))
  in
  let rows =
    match projection with
    | Row_ids ->
        Pager.charge_transfer pager (8 * Array.length row_ids);
        [||]
    | All_columns -> Array.map (fun id -> Read_view.read_row view id) row_ids
  in
  let wall_ns = Stdx.Clock.now_ns () -. t0 in
  let stats = Pager.sum_stats (Pager.diff_stats before (Pager.local_stats ())) !worker_stats in
  (match plan with
  | Range_traverse _ -> Obs.Metrics.incr m_plan_traverse
  | Index_scan _ | Or_index_scan _ | Seq_scan -> Obs.Metrics.incr m_plan_seq);
  Obs.Metrics.add m_trav_nodes nodes_visited;
  Obs.Metrics.add m_trav_leaves leaf_probes;
  Obs.Metrics.observe h_trav_roots (float_of_int (Array.length roots));
  Obs.Metrics.observe h_trav_leaves (float_of_int leaf_probes);
  Obs.Metrics.add m_candidates (Array.length candidate_ids);
  Obs.Metrics.add m_returned (Array.length row_ids);
  Obs.Metrics.observe h_wall wall_ns;
  if Obs.Trace.is_enabled () then
    Obs.Trace.event "executor.plan"
      ~attrs:
        [
          ( "plan",
            match plan with
            | Range_traverse c -> "range_traverse(" ^ c ^ ")"
            | Index_scan c -> "index(" ^ c ^ ")"
            | Or_index_scan cs -> "or_index(" ^ String.concat "," cs ^ ")"
            | Seq_scan -> "seq" );
          ("epoch", string_of_int (Read_view.epoch view));
          ("roots", string_of_int (Array.length roots));
          ("nodes_visited", string_of_int nodes_visited);
          ("leaf_probes", string_of_int leaf_probes);
          ("candidates", string_of_int (Array.length candidate_ids));
          ("rows", string_of_int (Array.length row_ids));
        ];
  { row_ids; rows; plan; wall_ns; stats }
