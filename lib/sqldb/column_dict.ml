(* lint: guarded-by the owning table's writer lock — a dictionary is
   private to one [Table.t] and is only mutated inside [Table.mutate];
   frozen views share the immutable entries backing (see [freeze]). *)

(* Per-column dictionary of interned values (EncDBDB-style dictionary
   encoding). Repeated ciphertext/tag bytes are stored once; rows hold
   small integer ids instead. Heavy-tailed SPARTA tag columns repeat a
   lot, so the dictionary wins big there; ciphertext columns with
   per-row random nonces never repeat, so interning would be pure
   hash-table overhead — the dictionary watches its own hit rate and
   permanently drops the intern table once the column is evidently
   unique-ish ("raw mode": every append is a fresh entry, accounted as
   inline column storage rather than dictionary storage).

   Concurrency contract: entry ids are never remapped or reused and
   the entries backing array is only ever (a) appended to in place at
   indexes past every frozen length, or (b) replaced wholesale by
   [vacuum]. A [frozen] handle therefore stays valid forever without
   copying. Reference counts are only touched under the owning table's
   writer lock and are never read through a frozen handle. *)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type entry = {
  value : Value.t;
  accounted : bool;  (* created while interning: storage lives in the dictionary *)
  mutable rc : int;  (* references from non-reclaimed heap slots *)
}

type t = {
  mutable entries : entry option array;  (* [None] = vacuumed hole; ids stable *)
  mutable len : int;  (* ids allocated so far (monotone) *)
  mutable intern_tbl : int VH.t option;  (* [None] once raw mode is entered *)
  mutable appends : int;  (* total interns ever (monotone) — drives raw-mode switch *)
  mutable live : int;  (* non-hole entries *)
  mutable value_bytes : int;  (* Σ Value.heap_bytes over non-hole entries *)
  mutable overhead_bytes : int;  (* dictionary-resident storage, see [overhead_bytes] *)
}

(* Directory cost per resident entry: one 8-byte slot pointing at the
   value, the same word-per-tuple model the heap uses. *)
let dir_entry_bytes = 8

(* Re-check the hit rate once the column has seen this many appends;
   if fewer than 1 in 8 appends deduplicated, stop interning. *)
let probation = 4096

let width_for n = if n <= 0x100 then 1 else if n <= 0x1_0000 then 2 else 4

let create () =
  {
    entries = [||];
    len = 0;
    intern_tbl = Some (VH.create 64);
    appends = 0;
    live = 0;
    value_bytes = 0;
    overhead_bytes = 0;
  }

let size t = t.len
let live_entries t = t.live
let value_bytes t = t.value_bytes
let overhead_bytes t = t.overhead_bytes
let appends t = t.appends
let intern_on t = t.intern_tbl <> None
let id_width t = width_for t.len

let check t id =
  if id < 0 || id >= t.len then
    invalid_arg (Printf.sprintf "Column_dict: id %d out of bounds (len %d)" id t.len)

let entry_exn t id =
  check t id;
  match t.entries.(id) with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Column_dict: id %d is a vacuumed hole" id)

let get t id = (entry_exn t id).value
let rc t id = (entry_exn t id).rc
let is_accounted t id = (entry_exn t id).accounted

let grow t =
  let cap = Array.length t.entries in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  let a = Array.make new_cap None in
  Array.blit t.entries 0 a 0 t.len;
  t.entries <- a

let alloc t e =
  if t.len = Array.length t.entries then grow t;
  t.entries.(t.len) <- Some e;
  t.len <- t.len + 1;
  t.len - 1

let add_fresh t v ~accounted =
  let vb = Value.heap_bytes v in
  let id = alloc t { value = v; accounted; rc = 1 } in
  t.live <- t.live + 1;
  t.value_bytes <- t.value_bytes + vb;
  if accounted then t.overhead_bytes <- t.overhead_bytes + vb + dir_entry_bytes;
  id

let intern t v =
  (match t.intern_tbl with
  | Some _ when t.appends >= probation && t.len * 8 > t.appends * 7 ->
      (* Nearly every append allocated a new entry: this column does
         not repeat (unique nonces), so drop the hash table for good.
         The decision depends only on (appends, len), both serialized
         in snapshots, so a restored column flips at the same point a
         crash-free run would. *)
      t.intern_tbl <- None
  | _ -> ());
  t.appends <- t.appends + 1;
  match t.intern_tbl with
  | Some tbl -> (
      match VH.find_opt tbl v with
      | Some id ->
          (entry_exn t id).rc <- (entry_exn t id).rc + 1;
          id
      | None ->
          let id = add_fresh t v ~accounted:true in
          VH.replace tbl v id;
          id)
  | None -> add_fresh t v ~accounted:false

let release t id =
  let e = entry_exn t id in
  if e.rc <= 0 then invalid_arg (Printf.sprintf "Column_dict.release: id %d already at rc 0" id);
  e.rc <- e.rc - 1

let addref t id =
  let e = entry_exn t id in
  e.rc <- e.rc + 1

(* Drop rc=0 entries. Copy-on-write: frozen views keep the old entries
   backing; surviving ids are unchanged and holes are never reused, so
   no id stored anywhere (rows, indexes, older views) is remapped. *)
let vacuum t =
  let fresh = Array.make (max (Array.length t.entries) 1) None in
  let tbl = match t.intern_tbl with Some _ -> Some (VH.create 64) | None -> None in
  t.live <- 0;
  t.value_bytes <- 0;
  t.overhead_bytes <- 0;
  for i = 0 to t.len - 1 do
    match t.entries.(i) with
    | Some e when e.rc > 0 ->
        fresh.(i) <- Some e;
        (match tbl with Some tb -> VH.replace tb e.value i | None -> ());
        t.live <- t.live + 1;
        let vb = Value.heap_bytes e.value in
        t.value_bytes <- t.value_bytes + vb;
        if e.accounted then t.overhead_bytes <- t.overhead_bytes + vb + dir_entry_bytes
    | _ -> ()
  done;
  t.entries <- fresh;
  t.intern_tbl <- tbl

(* Frozen handle: the backing array plus the lengths/counters at freeze
   time. Readers only dereference ids below [f_len], all of which are
   immutable forever (see the concurrency contract above). *)
type frozen = {
  f_entries : entry option array;
  f_len : int;
  f_appends : int;
  f_intern_on : bool;
}

let freeze t =
  { f_entries = t.entries; f_len = t.len; f_appends = t.appends; f_intern_on = intern_on t }

let frozen_len f = f.f_len

let frozen_check f id =
  if id < 0 || id >= f.f_len then
    invalid_arg (Printf.sprintf "Column_dict: frozen id %d out of bounds (len %d)" id f.f_len)

let frozen_get f id =
  frozen_check f id;
  match f.f_entries.(id) with
  | Some e -> e.value
  | None -> invalid_arg (Printf.sprintf "Column_dict: frozen id %d is a vacuumed hole" id)

let frozen_entry f id =
  frozen_check f id;
  match f.f_entries.(id) with Some e -> Some (e.value, e.accounted) | None -> None

let frozen_is_accounted f id =
  frozen_check f id;
  match f.f_entries.(id) with Some e -> e.accounted | None -> false

let frozen_appends f = f.f_appends
let frozen_intern_on f = f.f_intern_on
let frozen_id_width f = width_for f.f_len

(* Restore path: rebuild from a serialized entry array. Every rc starts
   at 0 — the caller addrefs once per referencing heap slot, restoring
   the exact counts a crash-free run would hold. *)
let of_entries ~appends ~intern_on ents =
  let n = Array.length ents in
  let t =
    {
      entries = Array.make (max n 1) None;
      len = n;
      intern_tbl = None;
      appends;
      live = 0;
      value_bytes = 0;
      overhead_bytes = 0;
    }
  in
  let tbl = if intern_on then Some (VH.create (max 64 n)) else None in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (v, accounted) ->
          t.entries.(i) <- Some { value = v; accounted; rc = 0 };
          (match tbl with Some tb -> VH.replace tb v i | None -> ());
          t.live <- t.live + 1;
          let vb = Value.heap_bytes v in
          t.value_bytes <- t.value_bytes + vb;
          if accounted then t.overhead_bytes <- t.overhead_bytes + vb + dir_entry_bytes
      | None -> ())
    ents;
  t.intern_tbl <- tbl;
  t
