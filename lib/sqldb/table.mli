(** Heap tables with dictionary-encoded columnar pages.

    Rows are stored in insertion order; each column's values are
    interned in a per-column dictionary ({!Column_dict}) and the row
    holds small integer ids, packed into 8 KiB heap pages (8-byte
    tuple header + 4-byte line pointer, MAXALIGN'd id data). Columns
    that evidently never repeat (ciphertext with random nonces) fall
    back to raw storage, accounted inline. The page assignment is what
    makes the cold-cache `SELECT *` experiments faithful: rows matching
    one search tag were inserted at random times, so fetching them
    touches that many distinct heap pages. Simulated query costs are
    layout-independent — read/transfer charges use the logical
    (row-format) tuple size throughout. *)

type t

val create : Pager.t -> name:string -> schema:Schema.t -> t
val name : t -> string
val schema : t -> Schema.t
val pager : t -> Pager.t

val insert : t -> Value.t array -> int
(** Validates against the schema, appends, updates every index.
    Returns the new row id. Raises [Invalid_argument] on schema
    violations. *)

val insert_batch : t -> Value.t array array -> int
(** Append many rows in one pass: all rows are validated up front
    (all-or-nothing — a bad row raises before anything is inserted),
    index column positions are resolved once for the whole batch, and
    rows get consecutive ids starting at the returned id. The
    resulting table state (heap pages, accounting, index contents) is
    identical to calling {!insert} on each row in order. *)

val row_count : t -> int
(** Rows ever inserted (live + dead); row ids range over this. *)

val live_count : t -> int
(** Rows not yet deleted. *)

val is_live : t -> int -> bool

val delete : t -> int -> bool
(** Tombstone a row (Postgres-style: the heap tuple and its index
    entries stay until a vacuum; scans and lookups skip it). Returns
    [false] if the row was already dead. Live-byte accounting
    ({!avg_row_bytes}) drops the row immediately; heap pages shrink
    only at {!vacuum}. *)

val update : t -> int -> Value.t array -> int
(** MVCC-style update: tombstone the old version, insert the new one
    (fresh row id, re-indexed). Raises if the old row is dead or the
    new row violates the schema. Without {!vacuum}, every update
    grows the heap and every index by one entry. *)

val vacuum : t -> unit
(** Reclaim dead tuples: drop their index entries (so [entry_count]
    and [size_bytes] shrink back to the live rows), release their
    dictionary references (unreferenced dictionary entries are
    reclaimed too), and repack live tuples onto a fresh page
    assignment. Row ids are stable — dead ids stay dead and
    [peek_row] on them returns an empty row afterwards. No-op when
    nothing is dead. *)

val read_row : t -> int -> Value.t array
(** Fetch through the pager (touches the row's heap page and charges
    CPU + transfer at the logical row-format tuple size); out-of-range
    ids raise [Invalid_argument]. *)

val peek_row : t -> int -> Value.t array
(** Materialize from the column dictionaries without cost accounting
    (for test assertions and internal scans that account separately). *)

val row_page : t -> int -> int
(** Heap page number holding a row. *)

val scan : t -> (int -> Value.t array -> unit) -> unit
(** Full sequential scan: touches every heap page once and charges CPU
    per row. *)

val create_index : ?kind:Table_index.kind -> t -> column:string -> Table_index.t
(** Build (or return the existing) index on a column, backfilling
    current rows. Default access method is [Btree]; at most one index
    per column (asking again with a different kind returns the
    existing index). *)

val index_on : t -> column:string -> Table_index.t option
val indexes : t -> Table_index.t list

(* Epoch-based snapshot reads. *)

val epoch : t -> int
(** Mutation epoch: 0 at creation, bumped by every successful (or
    attempted) mutation — insert, batch, delete, update, vacuum,
    index creation. *)

val freeze : t -> Read_view.t
(** Publish the current epoch as an immutable {!Read_view.t}. The view
    is cached per epoch, so repeated freezes between mutations are
    O(1); after a mutation the next freeze pays one O(n) visibility-
    bitmap copy plus an index freeze per index — the columnar storage
    itself is shared by pointer. Readers use the view from any domain
    without locking; writers keep mutating the live table — neither
    blocks the other. *)

(* Storage accounting (Table I). *)

val heap_pages : t -> int
(** Tuple pages plus the pages the resident column dictionaries
    occupy. *)

val heap_bytes : t -> int
val index_bytes : t -> int
val total_bytes : t -> int
(** heap + all indexes. *)

val avg_row_bytes : t -> float
(** Physical tuple bytes per live row. Unlike heap pages, this drops a
    row's contribution as soon as it is deleted — no vacuum needed. *)

val row_model_pages : t -> int
val row_model_bytes : t -> int
(** What the pre-columnar row-format engine (24-byte tuple headers,
    values inline) would occupy for the same rows — the like-for-like
    baseline for the dictionary compression ratio. *)

type column_stats = {
  st_column : string;
  st_rows : int;  (** non-reclaimed heap slots *)
  st_distinct : int;  (** resident dictionary entries *)
  st_interned : bool;  (** still interning (not in raw mode) *)
  st_dict_bytes : int;  (** dictionary-resident storage *)
  st_ids_bytes : int;  (** per-tuple storage: id widths + raw inline values *)
  st_plain_bytes : int;  (** Σ logical value bytes — what row storage would hold *)
}

type storage_stats = {
  st_columns : column_stats array;
  st_heap_pages : int;
  st_heap_bytes : int;
  st_row_model_pages : int;
  st_row_model_bytes : int;
}

val storage_stats : t -> storage_stats
(** Per-column dictionary/compression breakdown (O(rows × columns)). *)

(* Durability hooks. *)

val set_journal : t -> Journal.hook option -> unit
(** Install (or clear) the mutation hook. Each successful mutation is
    reported after it has fully applied in memory; see {!Journal}. *)

type column_snapshot = {
  cs_entries : (Value.t * bool) option array;
      (** dictionary slots in id order; [None] = hole, bool = dictionary-accounted *)
  cs_appends : int;
  cs_intern_on : bool;
  cs_ids : int array;  (** dictionary id per heap slot; -1 = reclaimed *)
}

type snapshot = {
  s_name : string;
  s_schema : Schema.t;
  s_cols : column_snapshot array;
  s_live : bool array;
  s_row_pages : int array;
  s_row_sizes : int array;  (** physical tuple bytes per slot; 0 = reclaimed *)
  s_cur_page : int;
  s_cur_fill : int;
  s_data_bytes : int;
  s_live_bytes : int;
  s_rm_cur_page : int;
  s_rm_cur_fill : int;
  s_rm_data_bytes : int;
  s_indexes : (string * Table_index.kind) list;  (** sorted by column *)
}
(** Physical table state as checkpointed by the storage engine: the
    columnar heap verbatim (dictionaries, id vectors, tombstones, page
    assignment, accounting) plus the index definitions — index
    {e contents} are rebuilt on restore. *)

val snapshot : t -> snapshot
(** Deep copy of the current physical state (via {!freeze}). *)

val snapshot_of_view : Read_view.t -> snapshot
(** Serialize a frozen view — the checkpoint path: the writer lock is
    held only for the {!freeze} itself, never for serialization, so a
    checkpoint no longer pauses readers or writers. *)

val of_snapshot : Pager.t -> snapshot -> t
(** Reconstruct a table from a snapshot, byte-identical to the one
    {!snapshot} saw: same row ids, dictionary ids, heap pages,
    accounting, and index entries (including entries of dead-but-
    unvacuumed tuples). Emits no journal events. *)
