(** Two-table equi-join plans over frozen {!Read_view}s.

    Two execution modes share one result contract:

    - [Equi] is the plaintext reference: a classic hash join on value
      equality of the two ON columns (build side = the smaller view,
      probe side scanned once). NULL never matches NULL, per SQL.

    - [Buckets] is the encrypted-search plan: the client has already
      grouped the search keys by plaintext — for WRE, bucket [i] holds
      every salted tag either side's rows may carry for the [i]-th
      joinable plaintext — and the server answers each bucket from the
      ON-column indexes (per-tag postings from both views) and emits
      the cross product of the two posting sets. Because bucketized
      schemes share tags across plaintexts, buckets may overlap; the
      final pair list is sorted and deduplicated, so multiplicities
      are exact per (left row, right row) pair. Candidate pairs are a
      superset of the true join — the caller re-verifies on plaintext
      after decryption.

    Determinism contract: buckets are probed in bucket order (fanned
    across [pool] when given), and the returned [pairs] are the sorted
    deduplicated candidate set, so the result is byte-identical no
    matter how probes are scheduled; with no pool (or a 1-domain pool)
    execution is byte-identical to the sequential path. Per-call
    [stats] follow {!Executor.run_view}'s accounting: each probe task
    measures its own domain-local pager delta and the caller folds in
    the deltas of probes that ran on other domains. *)

type spec =
  | Equi
  | Buckets of (Value.t list * Value.t list) array
      (** Per bucket: (keys to probe in the left view's ON column,
          keys to probe in the right view's ON column). *)

type plan = {
  build_left : bool;  (** the smaller (build) side at execution time *)
  buckets : int;  (** 0 for [Equi] *)
}

type result = {
  pairs : (int * int) array;
      (** Candidate (left row id, right row id) pairs, sorted and
          deduplicated — the canonical order every schedule produces. *)
  bucket_pairs : int array;
      (** Candidate pairs emitted per bucket, in bucket order (what a
          server-side observer sees of the join-degree distribution;
          empty for [Equi]). *)
  plan : plan;
  wall_ns : float;
  stats : Pager.stats;
}

val run :
  ?pool:Stdx.Task_pool.t ->
  left:Read_view.t ->
  right:Read_view.t ->
  on_left:string ->
  on_right:string ->
  spec ->
  result
(** Raises [Not_found] if an ON column is missing from its view's
    schema. Feeds the [join.*] metrics: [join.queries_total],
    [join.buckets_total], [join.pairs_candidate_total] and the
    [join.wall_ns] histogram. *)
