(** Non-unique B-tree index.

    Logically a sorted multimap from key values to row ids. Physically
    it models a PostgreSQL B-tree for the pager: entries are packed
    into 8 KiB leaf pages in key order (so equal keys are contiguous,
    and an equality lookup touches [height] internal pages plus
    [⌈matches / entries_per_leaf⌉] consecutive leaves), and internal
    fanout determines the height. Sizes reported by {!size_bytes} feed
    the Table I ciphertext-expansion experiment.

    Inserts mark the index dirty; the sorted leaf layout is rebuilt
    lazily on the next lookup (a bulk-load-then-query engine, which is
    the paper's usage pattern). *)

type t

val create : Pager.t -> name:string -> t
val name : t -> string
val insert : t -> Value.t -> int -> unit

val remove : t -> Value.t -> int -> unit
(** Drop every entry mapping [key] to [id] (no-op when absent) and
    shrink the entry/key-byte accounting accordingly; marks the index
    dirty for the next lazy rebuild — the vacuum path. *)

val freeze : t -> t
(** Detached read-only copy for snapshot readers: rebuilt, deep-copied
    group structure sharing the live index's pager rel. Lookups on the
    copy are pure reads plus pager charges — safe from any domain. *)

val lookup : t -> Value.t -> int array
(** Row ids for an equality match; touches index pages via the pager. *)

val lookup_many : t -> Value.t list -> int array
(** OR-of-equalities: union of per-key lookups, deduplicated, in heap
    order — the plan WRE search queries compile to. *)

val range : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> int array
(** Inclusive range scan over keys. *)

val entry_count : t -> int
val distinct_keys : t -> int
val height : t -> int
val leaf_pages : t -> int
val page_count : t -> int

val size_bytes : t -> int
(** page_count × page size. *)
