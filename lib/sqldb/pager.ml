(* lint: guarded-by lock (per-domain read counters live in Domain.DLS) *)
type config = {
  page_size : int;
  io_miss_ns : float;
  cpu_row_ns : float;
  cpu_probe_ns : float;
  cpu_transfer_ns_per_byte : float;
}

let default_config =
  {
    page_size = 8192;
    io_miss_ns = 200_000.0;
    cpu_row_ns = 150.0;
    cpu_probe_ns = 5_000.0;
    cpu_transfer_ns_per_byte = 1.0;
  }

(* Process-wide totals across every pager instance; the per-instance
   atomic counters below stay the source of whole-pager stats. All
   updates are counter bumps — nothing here allocates per row. *)
let m_hits = Obs.Metrics.counter "pager.page_hits_total"
let m_misses = Obs.Metrics.counter "pager.page_misses_total"
let m_rows = Obs.Metrics.counter "pager.rows_examined_total"
let m_probes = Obs.Metrics.counter "pager.index_probes_total"
let m_bytes = Obs.Metrics.counter "pager.bytes_transferred_total"
let m_sim = Obs.Metrics.counter "pager.sim_ns_total"
let g_cached = Obs.Metrics.gauge "pager.cached_pages"

type rel = { id : int; name : string }

(* Instance totals are atomics so that concurrent snapshot readers on
   worker domains keep hit/miss accounting exact; the buffer-pool set
   itself (a hashtable) and rel allocation are guarded by [lock].
   The simulated clock is a float accumulated by CAS on its bit
   pattern — each charge lands exactly once, in some order. *)
type t = {
  cfg : config;
  lock : Mutex.t;
  cache : (int * int, unit) Hashtbl.t;
  mutable next_rel : int;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_rows : int Atomic.t;
  acc_sim_bits : int64 Atomic.t;
}

(* Per-domain cumulative charges, across all pager instances. A query
   measures its own cost as a before/after delta of the charges made
   *on its domain*: with the parallel executor, each fanned-out task
   measures its own domain-local delta and the caller sums them, so
   per-query stats stay exact even when unrelated queries run
   concurrently on other domains. *)
type stats = { hits : int; misses : int; rows_examined : int; sim_ns : float }

type local = {
  mutable l_hits : int;
  mutable l_misses : int;
  mutable l_rows : int;
  mutable l_sim : float;
}

let local_key =
  Domain.DLS.new_key (fun () -> { l_hits = 0; l_misses = 0; l_rows = 0; l_sim = 0.0 })

let local_stats () =
  let l = Domain.DLS.get local_key in
  { hits = l.l_hits; misses = l.l_misses; rows_examined = l.l_rows; sim_ns = l.l_sim }

let add_sim t ns =
  let l = Domain.DLS.get local_key in
  l.l_sim <- l.l_sim +. ns;
  let rec cas () =
    let old = Atomic.get t.acc_sim_bits in
    let next = Int64.bits_of_float (Int64.float_of_bits old +. ns) in
    if not (Atomic.compare_and_set t.acc_sim_bits old next) then cas ()
  in
  cas ();
  Obs.Metrics.add m_sim (int_of_float ns)

let create ?(config = default_config) () =
  {
    cfg = config;
    lock = Mutex.create ();
    cache = Hashtbl.create 4096;
    next_rel = 0;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_rows = Atomic.make 0;
    acc_sim_bits = Atomic.make (Int64.bits_of_float 0.0);
  }

let config t = t.cfg

let make_rel t ~name =
  Mutex.lock t.lock;
  let id = t.next_rel in
  t.next_rel <- id + 1;
  Mutex.unlock t.lock;
  { id; name }

let rel_name r = r.name

let touch t rel page =
  let key = (rel.id, page) in
  Mutex.lock t.lock;
  let hit = Hashtbl.mem t.cache key in
  if not hit then Hashtbl.replace t.cache key ();
  let cached = Hashtbl.length t.cache in
  Mutex.unlock t.lock;
  let l = Domain.DLS.get local_key in
  if hit then begin
    l.l_hits <- l.l_hits + 1;
    Atomic.incr t.n_hits;
    Obs.Metrics.incr m_hits
  end
  else begin
    l.l_misses <- l.l_misses + 1;
    Atomic.incr t.n_misses;
    add_sim t t.cfg.io_miss_ns;
    Obs.Metrics.incr m_misses;
    Obs.Metrics.set_gauge g_cached cached
  end

let charge_rows t n =
  let l = Domain.DLS.get local_key in
  l.l_rows <- l.l_rows + n;
  ignore (Atomic.fetch_and_add t.n_rows n);
  add_sim t (float_of_int n *. t.cfg.cpu_row_ns);
  Obs.Metrics.add m_rows n

let charge_probe t =
  add_sim t t.cfg.cpu_probe_ns;
  Obs.Metrics.incr m_probes

let charge_transfer t n =
  add_sim t (float_of_int n *. t.cfg.cpu_transfer_ns_per_byte);
  Obs.Metrics.add m_bytes n

let drop_caches t =
  Mutex.lock t.lock;
  Hashtbl.reset t.cache;
  Mutex.unlock t.lock;
  Obs.Metrics.set_gauge g_cached 0

let stats t =
  {
    hits = Atomic.get t.n_hits;
    misses = Atomic.get t.n_misses;
    rows_examined = Atomic.get t.n_rows;
    sim_ns = Int64.float_of_bits (Atomic.get t.acc_sim_bits);
  }

let reset_stats t =
  Atomic.set t.n_hits 0;
  Atomic.set t.n_misses 0;
  Atomic.set t.n_rows 0;
  Atomic.set t.acc_sim_bits (Int64.bits_of_float 0.0)

let sim_ms s = s.sim_ns /. 1e6

let diff_stats a b =
  {
    hits = b.hits - a.hits;
    misses = b.misses - a.misses;
    rows_examined = b.rows_examined - a.rows_examined;
    sim_ns = b.sim_ns -. a.sim_ns;
  }

let sum_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    rows_examined = a.rows_examined + b.rows_examined;
    sim_ns = a.sim_ns +. b.sim_ns;
  }

let zero_stats = { hits = 0; misses = 0; rows_examined = 0; sim_ns = 0.0 }
