type config = {
  page_size : int;
  io_miss_ns : float;
  cpu_row_ns : float;
  cpu_probe_ns : float;
  cpu_transfer_ns_per_byte : float;
}

let default_config =
  {
    page_size = 8192;
    io_miss_ns = 200_000.0;
    cpu_row_ns = 150.0;
    cpu_probe_ns = 5_000.0;
    cpu_transfer_ns_per_byte = 1.0;
  }

(* Process-wide totals across every pager instance; the per-instance
   mutable counters below stay the source of per-query deltas. All
   updates are counter bumps — nothing here allocates per row. *)
let m_hits = Obs.Metrics.counter "pager.page_hits_total"
let m_misses = Obs.Metrics.counter "pager.page_misses_total"
let m_rows = Obs.Metrics.counter "pager.rows_examined_total"
let m_probes = Obs.Metrics.counter "pager.index_probes_total"
let m_bytes = Obs.Metrics.counter "pager.bytes_transferred_total"
let m_sim = Obs.Metrics.counter "pager.sim_ns_total"
let g_cached = Obs.Metrics.gauge "pager.cached_pages"

type rel = { id : int; name : string }

type t = {
  cfg : config;
  cache : (int * int, unit) Hashtbl.t;
  mutable next_rel : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_rows : int;
  mutable acc_sim_ns : float;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    cache = Hashtbl.create 4096;
    next_rel = 0;
    n_hits = 0;
    n_misses = 0;
    n_rows = 0;
    acc_sim_ns = 0.0;
  }

let config t = t.cfg

let make_rel t ~name =
  let id = t.next_rel in
  t.next_rel <- id + 1;
  { id; name }

let rel_name r = r.name

let touch t rel page =
  let key = (rel.id, page) in
  if Hashtbl.mem t.cache key then begin
    t.n_hits <- t.n_hits + 1;
    Obs.Metrics.incr m_hits
  end
  else begin
    t.n_misses <- t.n_misses + 1;
    t.acc_sim_ns <- t.acc_sim_ns +. t.cfg.io_miss_ns;
    Hashtbl.replace t.cache key ();
    Obs.Metrics.incr m_misses;
    Obs.Metrics.add m_sim (int_of_float t.cfg.io_miss_ns);
    Obs.Metrics.set_gauge g_cached (Hashtbl.length t.cache)
  end

let charge_rows t n =
  t.n_rows <- t.n_rows + n;
  t.acc_sim_ns <- t.acc_sim_ns +. (float_of_int n *. t.cfg.cpu_row_ns);
  Obs.Metrics.add m_rows n;
  Obs.Metrics.add m_sim (int_of_float (float_of_int n *. t.cfg.cpu_row_ns))

let charge_probe t =
  t.acc_sim_ns <- t.acc_sim_ns +. t.cfg.cpu_probe_ns;
  Obs.Metrics.incr m_probes;
  Obs.Metrics.add m_sim (int_of_float t.cfg.cpu_probe_ns)

let charge_transfer t n =
  t.acc_sim_ns <- t.acc_sim_ns +. (float_of_int n *. t.cfg.cpu_transfer_ns_per_byte);
  Obs.Metrics.add m_bytes n;
  Obs.Metrics.add m_sim (int_of_float (float_of_int n *. t.cfg.cpu_transfer_ns_per_byte))

let drop_caches t =
  Hashtbl.reset t.cache;
  Obs.Metrics.set_gauge g_cached 0

type stats = { hits : int; misses : int; rows_examined : int; sim_ns : float }

let stats t =
  { hits = t.n_hits; misses = t.n_misses; rows_examined = t.n_rows; sim_ns = t.acc_sim_ns }

let reset_stats t =
  t.n_hits <- 0;
  t.n_misses <- 0;
  t.n_rows <- 0;
  t.acc_sim_ns <- 0.0

let sim_ms s = s.sim_ns /. 1e6
