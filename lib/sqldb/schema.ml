(* lint: guarded-by construction (by_name filled in create, read-only afterwards) *)
type column = { name : string; ty : Value.ty; nullable : bool }

type t = { cols : column array; by_name : (string, int) Hashtbl.t }

let create columns =
  if columns = [] then invalid_arg "Schema.create: no columns";
  let cols = Array.of_list columns in
  let by_name = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i c ->
      if c.name = "" then invalid_arg "Schema.create: empty column name";
      if Hashtbl.mem by_name c.name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate column %S" c.name);
      Hashtbl.add by_name c.name i)
    cols;
  { cols; by_name }

let columns t = Array.copy t.cols
let arity t = Array.length t.cols

let column_index t name =
  match Hashtbl.find_opt t.by_name name with Some i -> i | None -> raise Not_found

let column_index_opt t name = Hashtbl.find_opt t.by_name name
let column_name t i = t.cols.(i).name

let validate_row t row =
  if Array.length row <> Array.length t.cols then
    Error
      (Printf.sprintf "row arity %d does not match schema arity %d" (Array.length row)
         (Array.length t.cols))
  else begin
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then begin
          let col = t.cols.(i) in
          match Value.ty_of v with
          | None -> if not col.nullable then err := Some (Printf.sprintf "column %S is NOT NULL" col.name)
          | Some ty ->
              if ty <> col.ty then
                err :=
                  Some
                    (Printf.sprintf "column %S expects %s, got %s" col.name (Value.ty_name col.ty)
                       (Value.ty_name ty))
        end)
      row;
    match !err with None -> Ok () | Some e -> Error e
  end

let pp ppf t =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf c ->
         Format.fprintf ppf "%s %s%s" c.name (Value.ty_name c.ty)
           (if c.nullable then "" else " NOT NULL")))
    (Array.to_list t.cols)
