(* lint: guarded-by Table.writer (indexes mutate only on the write path) *)
type group = { key : Value.t; ids : int Stdx.Vec.t }

type t = {
  pager : Pager.t;
  rel : Pager.rel;
  name : string;
  by_key : (Value.t, group) Hashtbl.t;
  mutable entries : int;
  mutable key_bytes : int; (* total key bytes across entries, for entry sizing *)
  mutable sorted : group array; (* groups in key order; valid when not dirty *)
  mutable cum : int array; (* cum.(i) = entries strictly before sorted.(i) *)
  mutable dirty : bool;
}

(* Postgres-like layout constants: 16 bytes of line pointer + TID
   overhead per entry, 24-byte page header. *)
let entry_overhead = 16
let internal_entry_bytes = 24

let create pager ~name =
  {
    pager;
    rel = Pager.make_rel pager ~name;
    name;
    by_key = Hashtbl.create 1024;
    entries = 0;
    key_bytes = 0;
    sorted = [||];
    cum = [||];
    dirty = false;
  }

let name t = t.name

let insert t key id =
  (match Hashtbl.find_opt t.by_key key with
  | Some g -> Stdx.Vec.push g.ids id
  | None ->
      let g = { key; ids = Stdx.Vec.create () } in
      Stdx.Vec.push g.ids id;
      Hashtbl.replace t.by_key key g);
  t.entries <- t.entries + 1;
  t.key_bytes <- t.key_bytes + Value.index_key_bytes key;
  t.dirty <- true

let remove t key id =
  match Hashtbl.find_opt t.by_key key with
  | None -> ()
  | Some g ->
      let kept = Array.of_seq (Seq.filter (fun x -> x <> id) (Array.to_seq (Stdx.Vec.to_array g.ids))) in
      let removed = Stdx.Vec.length g.ids - Array.length kept in
      if removed > 0 then begin
        t.entries <- t.entries - removed;
        t.key_bytes <- t.key_bytes - (removed * Value.index_key_bytes key);
        if Array.length kept = 0 then Hashtbl.remove t.by_key key
        else Hashtbl.replace t.by_key key { g with ids = Stdx.Vec.of_array kept };
        t.dirty <- true
      end

let entry_count t = t.entries
let distinct_keys t = Hashtbl.length t.by_key

let avg_entry_bytes t =
  if t.entries = 0 then 24.0
  else (float_of_int t.key_bytes /. float_of_int t.entries) +. float_of_int entry_overhead

(* Effective leaf fill: sequential/duplicate-heavy keys pack near the
   90% fillfactor; uniformly random unique keys (PRF search tags) cause
   page splits that leave leaves slightly over half full. Interpolate
   on the unique-key fraction — this is what makes an encrypted tag
   index bigger than the plaintext index it replaces (paper Table I's
   "DB + Indexes" growing faster than "DB"). *)
let leaf_fill t =
  if t.entries = 0 then 0.9
  else begin
    let unique_fraction = float_of_int (Hashtbl.length t.by_key) /. float_of_int t.entries in
    0.9 -. (0.35 *. unique_fraction)
  end

let entries_per_leaf t =
  let usable = float_of_int (Pager.config t.pager).page_size *. leaf_fill t in
  max 1 (int_of_float (usable /. avg_entry_bytes t))

let leaf_pages t =
  if t.entries = 0 then 1 else (t.entries + entries_per_leaf t - 1) / entries_per_leaf t

let fanout t =
  let usable = float_of_int (Pager.config t.pager).page_size *. leaf_fill t in
  max 2 (int_of_float (usable /. float_of_int internal_entry_bytes))

(* Number of internal levels above the leaves (0 when a single leaf is
   also the root). *)
let height t =
  let f = fanout t in
  let rec levels pages acc = if pages <= 1 then acc else levels ((pages + f - 1) / f) (acc + 1) in
  levels (leaf_pages t) 0

let internal_pages t =
  let f = fanout t in
  let rec total pages acc =
    if pages <= 1 then acc else
      let above = (pages + f - 1) / f in
      total above (acc + above)
  in
  total (leaf_pages t) 0

let page_count t = leaf_pages t + internal_pages t
let size_bytes t = page_count t * (Pager.config t.pager).page_size

let rebuild t =
  if t.dirty then begin
    let groups = Hashtbl.fold (fun _ g acc -> g :: acc) t.by_key [] in
    let sorted = Array.of_list groups in
    Array.sort (fun a b -> Value.compare a.key b.key) sorted;
    let cum = Array.make (Array.length sorted) 0 in
    let acc = ref 0 in
    Array.iteri
      (fun i g ->
        cum.(i) <- !acc;
        acc := !acc + Stdx.Vec.length g.ids)
      sorted;
    t.sorted <- sorted;
    t.cum <- cum;
    t.dirty <- false
  end

(* Index of the first group with key >= [key]; length if none. *)
let lower_bound t key =
  let lo = ref 0 and hi = ref (Array.length t.sorted) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare t.sorted.(mid).key key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Walk root-to-leaf, touching one page per internal level. Internal
   page identity is derived from the leaf position so that lookups of
   nearby keys share upper pages, like a real tree. Page numbering:
   leaves are pages [0, leaf_pages); level l >= 1 starts at
   leaf_pages + (l-1) partitions. *)
let touch_path t ~leaf =
  let f = fanout t in
  let h = height t in
  let base = ref (leaf_pages t) in
  let idx = ref leaf in
  for level = 1 to h do
    idx := !idx / f;
    Pager.touch t.pager t.rel (!base + !idx);
    (* Each level above has ceil(prev/f) pages. *)
    let pages_at_level =
      let rec shrink p l = if l = 0 then p else shrink ((p + f - 1) / f) (l - 1) in
      shrink (leaf_pages t) level
    in
    base := !base + pages_at_level
  done

let touch_entry_range t ~first_entry ~n_entries =
  if n_entries > 0 then begin
    let epl = entries_per_leaf t in
    let first_leaf = first_entry / epl in
    let last_leaf = (first_entry + n_entries - 1) / epl in
    touch_path t ~leaf:first_leaf;
    for leaf = first_leaf to last_leaf do
      Pager.touch t.pager t.rel leaf
    done
  end
  else
    (* A miss still descends the tree and reads one leaf. *)
    touch_path t ~leaf:(min (max 0 (first_entry / entries_per_leaf t)) (leaf_pages t - 1))

(* Detached read-only copy for snapshot readers: force a rebuild while
   the caller still holds the table's writer lock, then deep-copy the
   group structures so later inserts into the live index cannot be
   observed. The pager rel is shared — a frozen lookup touches the same
   physical pages (and buffer-pool entries) as the live index. *)
let freeze t =
  rebuild t;
  let sorted =
    Array.map (fun g -> { key = g.key; ids = Stdx.Vec.of_array (Stdx.Vec.to_array g.ids) }) t.sorted
  in
  let by_key = Hashtbl.create (max 16 (Array.length sorted)) in
  Array.iter (fun g -> Hashtbl.replace by_key g.key g) sorted;
  {
    pager = t.pager;
    rel = t.rel;
    name = t.name;
    by_key;
    entries = t.entries;
    key_bytes = t.key_bytes;
    sorted;
    cum = Array.copy t.cum;
    dirty = false;
  }

let lookup t key =
  rebuild t;
  Pager.charge_probe t.pager;
  let i = lower_bound t key in
  if i < Array.length t.sorted && Value.equal t.sorted.(i).key key then begin
    let g = t.sorted.(i) in
    let n = Stdx.Vec.length g.ids in
    touch_entry_range t ~first_entry:t.cum.(i) ~n_entries:n;
    Pager.charge_rows t.pager n;
    Stdx.Vec.to_array g.ids
  end
  else begin
    let first_entry = if i < Array.length t.cum then t.cum.(i) else t.entries in
    touch_entry_range t ~first_entry ~n_entries:0;
    [||]
  end

let dedup_sorted_ids ids =
  Array.sort compare ids;
  let n = Array.length ids in
  if n = 0 then ids
  else begin
    let out = Stdx.Vec.create () in
    Stdx.Vec.push out ids.(0);
    for i = 1 to n - 1 do
      if ids.(i) <> ids.(i - 1) then Stdx.Vec.push out ids.(i)
    done;
    Stdx.Vec.to_array out
  end

let lookup_many t keys =
  let all = List.concat_map (fun k -> Array.to_list (lookup t k)) keys in
  dedup_sorted_ids (Array.of_list all)

let range t ?lo ?hi () =
  rebuild t;
  Pager.charge_probe t.pager;
  let n_groups = Array.length t.sorted in
  let first = match lo with None -> 0 | Some v -> lower_bound t v in
  let last =
    match hi with
    | None -> n_groups - 1
    | Some v ->
        (* last group with key <= v *)
        let i = lower_bound t v in
        if i < n_groups && Value.equal t.sorted.(i).key v then i else i - 1
  in
  if first > last then begin
    touch_entry_range t ~first_entry:(if first < n_groups then t.cum.(first) else t.entries)
      ~n_entries:0;
    [||]
  end
  else begin
    let first_entry = t.cum.(first) in
    let n_entries =
      (if last + 1 < n_groups then t.cum.(last + 1) else t.entries) - first_entry
    in
    touch_entry_range t ~first_entry ~n_entries;
    Pager.charge_rows t.pager n_entries;
    let out = Stdx.Vec.create () in
    for i = first to last do
      Stdx.Vec.iter (fun id -> Stdx.Vec.push out id) t.sorted.(i).ids
    done;
    Stdx.Vec.to_array out
  end
