(** Mutation journal hooks: the seam a durable storage engine plugs
    into.

    Every state change of a {!Table} or {!Database} — DDL, inserts,
    tombstones, vacuums — is described by one {!mutation} value and
    handed to the installed hook {e after} the in-memory change has
    fully applied. A write-ahead log subscribes here to make the change
    durable; replaying the same mutations against a fresh database in
    order reproduces the table byte-identically (same row ids, same
    heap-page assignment, same index contents).

    Hooks see {e physical} rows: for an encrypted table that means the
    ciphertext/tag row, so the journal never handles plaintext and
    replay needs no key material. *)

type mutation =
  | Created_table of { name : string; schema : Schema.t }
  | Created_index of { table : string; column : string; kind : Table_index.kind }
  | Inserted of { table : string; row : Value.t array }
  | Inserted_batch of { table : string; rows : Value.t array array }
  | Deleted of { table : string; id : int }
      (** Emitted only for a live row actually tombstoned. *)
  | Vacuumed of { table : string }
      (** Emitted only when the vacuum reclaimed something. *)

type hook = mutation -> unit
