(** Server-side encrypted boundary tree (ESEDS-style, Kerschbaum–Tueno).

    The client builds a balanced binary tree over the equi-depth range
    buckets of a column and hands the server only this *pseudonymous
    node table*: every node is a PRF tag, internal nodes point at their
    children by array index, and each leaf carries the bucket search
    tag that the rtag index column stores. The server can expand a
    subtree root to its leaf bucket tags — that is all a range query
    needs — but learns nothing about boundary values or bucket
    identities beyond the co-occurrence structure the traversal itself
    reveals (quantified by {!Attacks.Range_leakage}).

    This module is crypto-free by design: tag derivation lives on the
    client side in [Wre.Range_struct]; the executor consumes the table
    through {!traverse} when running a [Range_traverse] plan. *)

type node = {
  tag : int64;  (** PRF pseudonym of the node (interval identity) *)
  left : int;  (** child index, [-1] for a leaf *)
  right : int;  (** child index, [-1] for a leaf *)
  bucket : int64;  (** leaf: the bucket search tag probed against the rtag index; internal: 0 *)
}

type t

val make : node array -> t
(** Validates and indexes a node table. The array must be in preorder
    (every child index strictly greater than its parent's index and in
    bounds), node tags must be unique, and internal nodes must have
    both children. Raises [Invalid_argument] otherwise, so a [t] can
    always be traversed safely. *)

val node_count : t -> int

val depth : t -> int
(** Longest root-to-leaf path, in nodes ([1] for a single-leaf tree). *)

val leaf_count : t -> int

val mem : t -> tag:int64 -> bool
(** Whether [tag] names a node of the tree. *)

val traverse : t -> root:int64 -> (int64 array * int) option
(** [traverse t ~root] expands the subtree rooted at the node whose tag
    is [root] into its leaf bucket tags, in bucket (left-to-right)
    order, together with the number of nodes visited. [None] when
    [root] names no node — unknown roots are total, not an error, so a
    malformed query cannot crash the server. *)
