(** Uniform view over the two index access methods. *)

type kind = Btree | Hash

type t = B of Btree_index.t | H of Hash_index.t

val create : kind -> Pager.t -> name:string -> t
val kind : t -> kind
val name : t -> string
val insert : t -> Value.t -> int -> unit

val remove : t -> Value.t -> int -> unit
(** Drop the entries mapping a key to a row id (vacuum path). *)

val lookup : t -> Value.t -> int array
val lookup_many : t -> Value.t list -> int array

val range : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> int array option
(** [None] for hash indexes — they cannot serve range scans, and the
    planner falls back to a sequential scan. *)

val freeze : t -> t
(** Detached read-only copy for snapshot readers; shares the live
    index's pager rel so page touches land in the same buffer pool. *)

val entry_count : t -> int
val size_bytes : t -> int
