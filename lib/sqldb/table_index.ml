type kind = Btree | Hash

type t = B of Btree_index.t | H of Hash_index.t

let create kind pager ~name =
  match kind with
  | Btree -> B (Btree_index.create pager ~name)
  | Hash -> H (Hash_index.create pager ~name)

let kind = function B _ -> Btree | H _ -> Hash
let name = function B i -> Btree_index.name i | H i -> Hash_index.name i

let insert t key id =
  match t with B i -> Btree_index.insert i key id | H i -> Hash_index.insert i key id

let remove t key id =
  match t with B i -> Btree_index.remove i key id | H i -> Hash_index.remove i key id

let lookup t key = match t with B i -> Btree_index.lookup i key | H i -> Hash_index.lookup i key

let lookup_many t keys =
  match t with B i -> Btree_index.lookup_many i keys | H i -> Hash_index.lookup_many i keys

let range t ?lo ?hi () =
  match t with B i -> Some (Btree_index.range i ?lo ?hi ()) | H _ -> None

let freeze = function B i -> B (Btree_index.freeze i) | H i -> H (Hash_index.freeze i)

let entry_count = function B i -> Btree_index.entry_count i | H i -> Hash_index.entry_count i
let size_bytes = function B i -> Btree_index.size_bytes i | H i -> Hash_index.size_bytes i
