(* lint: guarded-by Table.writer (single-writer discipline; catalog mutates only on DDL) *)
type t = {
  pager : Pager.t;
  catalog : (string, Table.t) Hashtbl.t;
  mutable journal : Journal.hook option;
}

let create ?config () =
  { pager = Pager.create ?config (); catalog = Hashtbl.create 8; journal = None }

let pager t = t.pager

let set_journal t hook =
  t.journal <- hook;
  Hashtbl.iter (fun _ tbl -> Table.set_journal tbl hook) t.catalog

let create_table t ~name ~schema =
  if Hashtbl.mem t.catalog name then
    invalid_arg (Printf.sprintf "Database.create_table: table %S already exists" name);
  let table = Table.create t.pager ~name ~schema in
  Hashtbl.replace t.catalog name table;
  (match t.journal with
  | None -> ()
  | Some hook ->
      Table.set_journal table (Some hook);
      hook (Journal.Created_table { name; schema }));
  table

let restore_table t snap =
  let name = snap.Table.s_name in
  if Hashtbl.mem t.catalog name then
    invalid_arg (Printf.sprintf "Database.restore_table: table %S already exists" name);
  let table = Table.of_snapshot t.pager snap in
  Hashtbl.replace t.catalog name table;
  (* Future mutations are journaled; the restore itself is not. *)
  Table.set_journal table t.journal;
  table

let table t name =
  match Hashtbl.find_opt t.catalog name with Some tbl -> tbl | None -> raise Not_found

let table_opt t name = Hashtbl.find_opt t.catalog name

(* Two-table name resolution + freeze for a join: both views are taken
   back to back under the caller's single-writer discipline (no
   mutation can interleave between the two [Table.freeze] calls), so
   they form one epoch-consistent pair. *)
let freeze_pair t a b =
  match (Hashtbl.find_opt t.catalog a, Hashtbl.find_opt t.catalog b) with
  | Some ta, Some tb -> Some (Table.freeze ta, Table.freeze tb)
  | _ -> None
let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.catalog []

let insert t ~table:name row = Table.insert (table t name) row

let query t ~table:name ~projection p = Executor.run (table t name) ~projection p

let drop_caches t = Pager.drop_caches t.pager

let heap_bytes t = Hashtbl.fold (fun _ tbl acc -> acc + Table.heap_bytes tbl) t.catalog 0
let total_bytes t = Hashtbl.fold (fun _ tbl acc -> acc + Table.total_bytes tbl) t.catalog 0
