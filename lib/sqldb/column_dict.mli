(** Per-column value dictionaries for the columnar heap.

    Repeated column values (heavy-tailed SPARTA tags, plaintext key
    columns) are stored once and referenced by small integer ids;
    columns that evidently never repeat (ciphertext with per-row random
    nonces) automatically stop interning and fall back to raw appends,
    accounted as inline column storage.

    Ids are dense, stable and never reused: {!vacuum} punches holes
    (copy-on-write, so frozen handles stay valid) but never remaps a
    surviving id. Reference counts track how many non-reclaimed heap
    slots point at each entry; an entry is reclaimed by the next
    {!vacuum} once its count reaches zero.

    Not thread-safe on its own: mutation must happen under the owning
    table's writer lock. {!freeze} hands out an immutable view that any
    domain may read concurrently with further appends. *)

type t

val create : unit -> t

val intern : t -> Value.t -> int
(** Return the id for a value, bumping its reference count — either an
    existing entry (dictionary hit) or a fresh one. After a probation
    period, a column whose appends almost never hit switches to raw
    mode permanently (every append a fresh entry); the switch is a
    deterministic function of the serialized [appends]/[size] state. *)

val get : t -> int -> Value.t
(** Raises [Invalid_argument] for out-of-range ids and vacuumed holes. *)

val release : t -> int -> unit
(** Drop one reference (heap slot reclaimed by vacuum). Raises if the
    count is already zero. *)

val addref : t -> int -> unit
(** Add one reference — the snapshot-restore path, which rebuilds
    counts by walking the restored heap slots. *)

val vacuum : t -> unit
(** Drop every entry with reference count zero. Copy-on-write over the
    entries backing, so concurrent readers of a {!frozen} handle are
    unaffected; ids are never remapped or reused. *)

(* Sizing and accounting. *)

val size : t -> int
(** Ids allocated so far (monotone, holes included). *)

val live_entries : t -> int
val value_bytes : t -> int
(** Σ [Value.heap_bytes] over resident (non-hole) entries. *)

val overhead_bytes : t -> int
(** Bytes of dictionary-resident storage: value bytes plus an 8-byte
    directory slot for every entry created while interning. Raw-mode
    entries contribute nothing here — their storage is accounted
    inline in the heap tuples that reference them. *)

val appends : t -> int
val intern_on : t -> bool
val is_accounted : t -> int -> bool
(** Whether the entry's storage lives in the dictionary (created while
    interning) rather than inline in the referencing tuples. *)

val width_for : int -> int
(** Bytes needed for an id out of [n] allocated: 1, 2 or 4. *)

val id_width : t -> int
(** [width_for (size t)] — the width a tuple appended now would use. *)

val rc : t -> int -> int
(** Current reference count (test hook). *)

(* Frozen handles (shared with read views). *)

type frozen

val freeze : t -> frozen
(** O(1): shares the entries backing. Valid forever — later appends
    land past the frozen length and vacuum never mutates shared
    slots. *)

val frozen_len : frozen -> int
val frozen_get : frozen -> int -> Value.t
val frozen_entry : frozen -> int -> (Value.t * bool) option
(** [(value, accounted)], or [None] for a hole. *)

val frozen_is_accounted : frozen -> int -> bool
val frozen_appends : frozen -> int
val frozen_intern_on : frozen -> bool
val frozen_id_width : frozen -> int

val of_entries : appends:int -> intern_on:bool -> (Value.t * bool) option array -> t
(** Rebuild from serialized entries (id order, [None] = hole). All
    reference counts start at zero; callers {!addref} once per
    restored heap slot. *)
