(* lint: guarded-by call-local parser state (never shared across domains) *)
(* Lexer + recursive-descent parser for the SQL fragment. *)

type select = {
  projection : [ `Star | `Columns of string list ];
  table : string;
  where : Predicate.t;
  limit : int option;
}

type qualified = { q_table : string; q_column : string }

let qualified_name q = q.q_table ^ "." ^ q.q_column

type join = {
  j_projection : [ `Star | `Columns of qualified list ];
  j_left : string;
  j_right : string;
  j_on_left : qualified;  (* qualifier = j_left (the parser normalizes) *)
  j_on_right : qualified;  (* qualifier = j_right *)
  j_where : Predicate.t;  (* columns spelled "table.column" *)
  j_limit : int option;
}

type statement =
  | Select of select
  | Select_join of join
  | Insert of { table : string; values : Value.t list }
  | Create_table of { table : string; columns : Schema.column list }
  | Delete of { table : string; where : Predicate.t }
  | Update of { table : string; assignments : (string * Value.t) list; where : Predicate.t }

(* ---------------- Lexer ---------------- *)

type token =
  | Ident of string
  | Quoted_ident of string  (** ["…"]-quoted: never a keyword, any spelling *)
  | Int_lit of int64
  | Float_lit of float
  | String_lit of string
  | Blob_lit of string
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Eq
  | Neq
  | Le
  | Ge
  | Lt
  | Gt
  | Eof

exception Parse_error of string * int

let error pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (m, pos))) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = Stdx.Vec.create () in
  let push pos tok = Stdx.Vec.push tokens (tok, pos) in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      i := !j;
      (* X'ab12' blob literal *)
      if (word = "x" || word = "X") && !i < n && src.[!i] = '\'' then begin
        let k = ref (!i + 1) in
        while !k < n && src.[!k] <> '\'' do
          incr k
        done;
        if !k >= n then error pos "unterminated blob literal";
        let hex = String.sub src (!i + 1) (!k - !i - 1) in
        i := !k + 1;
        match Stdx.Bytes_util.of_hex hex with
        | s -> push pos (Blob_lit s)
        | exception Invalid_argument _ -> error pos "malformed hex in blob literal"
      end
      else push pos (Ident word)
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let j = ref (!i + 1) in
      while
        !j < n
        && (is_digit src.[!j] || src.[!j] = '.' || src.[!j] = 'e'
           || ((src.[!j] = '-' || src.[!j] = '+') && src.[!j - 1] = 'e'))
      do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      i := !j;
      if String.contains text '.' || String.contains text 'e' then
        match float_of_string_opt text with
        | Some f -> push pos (Float_lit f)
        | None -> error pos "malformed number %S" text
      else begin
        match Int64.of_string_opt text with
        | Some v -> push pos (Int_lit v)
        | None -> error pos "malformed integer %S" text
      end
    end
    else if c = '\'' then begin
      (* string literal with '' escape *)
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while not !closed do
        if !j >= n then error pos "unterminated string literal";
        if src.[!j] = '\'' then
          if !j + 1 < n && src.[!j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buf src.[!j];
          incr j
        end
      done;
      i := !j;
      push pos (String_lit (Buffer.contents buf))
    end
    else if c = '"' then begin
      (* quoted identifier with "" escape: never a keyword, any spelling *)
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while not !closed do
        if !j >= n then error pos "unterminated quoted identifier";
        if src.[!j] = '"' then
          if !j + 1 < n && src.[!j + 1] = '"' then begin
            Buffer.add_char buf '"';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buf src.[!j];
          incr j
        end
      done;
      i := !j;
      push pos (Quoted_ident (Buffer.contents buf))
    end
    else begin
      incr i;
      match c with
      | '*' -> push pos Star
      | ',' -> push pos Comma
      | '.' -> push pos Dot
      | '(' -> push pos Lparen
      | ')' -> push pos Rparen
      | '=' -> push pos Eq
      | ';' -> () (* trailing semicolons are noise *)
      | '<' ->
          if !i < n && src.[!i] = '=' then begin
            incr i;
            push pos Le
          end
          else if !i < n && src.[!i] = '>' then begin
            incr i;
            push pos Neq
          end
          else push pos Lt
      | '>' ->
          if !i < n && src.[!i] = '=' then begin
            incr i;
            push pos Ge
          end
          else push pos Gt
      | '!' ->
          if !i < n && src.[!i] = '=' then begin
            incr i;
            push pos Neq
          end
          else error pos "unexpected character '!'"
      | _ -> error pos "unexpected character %C" c
    end
  done;
  push n Eof;
  Stdx.Vec.to_array tokens

(* ---------------- Parser ---------------- *)

type parser_state = { toks : (token * int) array; mutable cur : int }

let peek p = fst p.toks.(p.cur)
let pos p = snd p.toks.(p.cur)
let advance p = p.cur <- p.cur + 1

let keyword p = match peek p with Ident w -> Some (String.uppercase_ascii w) | _ -> None

let expect_keyword p kw =
  match keyword p with
  | Some w when w = kw -> advance p
  | _ -> error (pos p) "expected %s" kw

let accept_keyword p kw =
  match keyword p with
  | Some w when w = kw ->
      advance p;
      true
  | _ -> false

let is_reserved w =
  match String.uppercase_ascii w with
  | "SELECT" | "FROM" | "WHERE" | "AND" | "OR" | "NOT" | "IN" | "BETWEEN" | "LIMIT"
  | "INSERT" | "INTO" | "VALUES" | "CREATE" | "TABLE" | "NULL" | "DELETE" | "UPDATE" | "SET"
  | "JOIN" | "ON" ->
      true
  | _ -> false

let expect_ident p =
  match peek p with
  | Ident w ->
      if is_reserved w then error (pos p) "keyword %S where an identifier was expected" w
      else begin
        advance p;
        w
      end
  | Quoted_ident w ->
      advance p;
      w
  | _ -> error (pos p) "expected an identifier"

let expect p tok what =
  if peek p = tok then advance p else error (pos p) "expected %s" what

let parse_literal p =
  match peek p with
  | Int_lit v ->
      advance p;
      Value.Int v
  | Float_lit v ->
      advance p;
      Value.Real v
  | String_lit s ->
      advance p;
      Value.Text s
  | Blob_lit s ->
      advance p;
      Value.Blob s
  | Ident w when String.uppercase_ascii w = "NULL" ->
      advance p;
      Value.Null
  | _ -> error (pos p) "expected a literal"

(* Column references come in two spellings, picked by the statement
   context: bare identifiers in single-table statements, mandatory
   [table.column] inside a JOIN (qualifier-checked against the two
   joined tables, with the error anchored at the reference's own
   token — not the statement start). The predicate grammar below is
   parameterized over [col], the reference parser. *)

let bare_column p =
  let cpos = pos p in
  let c = expect_ident p in
  if peek p = Dot then
    error cpos "qualified reference %S is only allowed in a JOIN query" c;
  c

(* [table.column] with both parts mandatory; the qualifier must name
   one of the two joined tables. Errors point at the first token of the
   reference. *)
let qualified_ref ~jleft ~jright p =
  let qpos = pos p in
  let t = expect_ident p in
  if peek p <> Dot then
    error qpos "column %S must be qualified as table.column inside a JOIN" t;
  advance p;
  let c = expect_ident p in
  if t <> jleft && t <> jright then
    error qpos "unknown table %S in qualified reference (this join reads %S and %S)" t jleft
      jright;
  { q_table = t; q_column = c }

let rec parse_or ~col p =
  let left = parse_and ~col p in
  if accept_keyword p "OR" then
    let right = parse_or ~col p in
    match right with Predicate.Or rs -> Predicate.Or (left :: rs) | r -> Predicate.Or [ left; r ]
  else left

and parse_and ~col p =
  let left = parse_not ~col p in
  if accept_keyword p "AND" then
    let right = parse_and ~col p in
    match right with Predicate.And rs -> Predicate.And (left :: rs) | r -> Predicate.And [ left; r ]
  else left

and parse_not ~col p =
  if accept_keyword p "NOT" then Predicate.Not (parse_not ~col p) else parse_atom ~col p

and parse_atom ~col p =
  if peek p = Lparen then begin
    advance p;
    let e = parse_or ~col p in
    expect p Rparen "')'";
    e
  end
  else begin
    match keyword p with
    | Some "TRUE" ->
        advance p;
        Predicate.True
    | _ ->
        let col = col p in
        if accept_keyword p "IN" then begin
          expect p Lparen "'('";
          let vs = ref [ parse_literal p ] in
          while peek p = Comma do
            advance p;
            vs := parse_literal p :: !vs
          done;
          expect p Rparen "')'";
          Predicate.In (col, List.rev !vs)
        end
        else if accept_keyword p "BETWEEN" then begin
          let lo = parse_literal p in
          expect_keyword p "AND";
          let hi = parse_literal p in
          Predicate.Range (col, Some lo, Some hi)
        end
        else begin
          match peek p with
          | Eq ->
              advance p;
              Predicate.Eq (col, parse_literal p)
          | Neq ->
              advance p;
              Predicate.Not (Predicate.Eq (col, parse_literal p))
          | Le ->
              advance p;
              Predicate.Range (col, None, Some (parse_literal p))
          | Ge ->
              advance p;
              Predicate.Range (col, Some (parse_literal p), None)
          | (Lt | Gt) as op ->
              (* Strict bounds rewrite to the inclusive Range the rest
                 of the planner speaks: [col < n] ≡ [col <= n-1] over
                 integers, [col > n] ≡ [col >= n+1]. The int64 edges
                 have no adjacent value — [< min_int] / [> max_int] is
                 unsatisfiable, which [NOT TRUE] expresses exactly. *)
              advance p;
              let vpos = pos p in
              let v = parse_literal p in
              (match (v, op) with
              | Value.Int x, Lt ->
                  if Int64.equal x Int64.min_int then Predicate.Not Predicate.True
                  else Predicate.Range (col, None, Some (Value.Int (Int64.pred x)))
              | Value.Int x, _ ->
                  if Int64.equal x Int64.max_int then Predicate.Not Predicate.True
                  else Predicate.Range (col, Some (Value.Int (Int64.succ x)), None)
              | _ ->
                  error vpos
                    "strict comparisons take an integer bound; use BETWEEN / <= / >= otherwise")
          | _ -> error (pos p) "expected a comparison after column %S" col
        end
  end

let parse_limit p =
  if accept_keyword p "LIMIT" then begin
    match peek p with
    | Int_lit v ->
        advance p;
        Some (Int64.to_int v)
    | _ -> error (pos p) "expected an integer after LIMIT"
  end
  else None

(* A projection item, before we know whether the statement is a join:
   [ident] or [ident.ident], with the position of its first token so a
   later qualification error can point at the right place. *)
type proj_item = { p_pos : int; p_first : string; p_second : string option }

let parse_join p ~left items =
  let rpos = pos p in
  let right = expect_ident p in
  if right = left then error rpos "self-join: the two sides of a JOIN must be distinct tables";
  expect_keyword p "ON";
  let a = qualified_ref ~jleft:left ~jright:right p in
  expect p Eq "'='";
  let bpos = pos p in
  let b = qualified_ref ~jleft:left ~jright:right p in
  if a.q_table = b.q_table then
    error bpos "ON must relate %S and %S, not %S on both sides" left right a.q_table;
  let j_on_left, j_on_right = if a.q_table = left then (a, b) else (b, a) in
  let j_projection =
    match items with
    | `Star -> `Star
    | `Items its ->
        `Columns
          (List.map
             (fun it ->
               match it.p_second with
               | Some c ->
                   if it.p_first <> left && it.p_first <> right then
                     error it.p_pos
                       "unknown table %S in qualified reference (this join reads %S and %S)"
                       it.p_first left right;
                   { q_table = it.p_first; q_column = c }
               | None ->
                   error it.p_pos "column %S must be qualified as table.column inside a JOIN"
                     it.p_first)
             its)
  in
  let col p = qualified_name (qualified_ref ~jleft:left ~jright:right p) in
  let j_where = if accept_keyword p "WHERE" then parse_or ~col p else Predicate.True in
  let j_limit = parse_limit p in
  Select_join { j_projection; j_left = left; j_right = right; j_on_left; j_on_right; j_where; j_limit }

let parse_select p =
  expect_keyword p "SELECT";
  let items =
    if peek p = Star then begin
      advance p;
      `Star
    end
    else begin
      let item () =
        let p_pos = pos p in
        let a = expect_ident p in
        if peek p = Dot then begin
          advance p;
          { p_pos; p_first = a; p_second = Some (expect_ident p) }
        end
        else { p_pos; p_first = a; p_second = None }
      in
      let acc = ref [ item () ] in
      while peek p = Comma do
        advance p;
        acc := item () :: !acc
      done;
      `Items (List.rev !acc)
    end
  in
  expect_keyword p "FROM";
  let table = expect_ident p in
  if accept_keyword p "JOIN" then parse_join p ~left:table items
  else begin
    let projection =
      match items with
      | `Star -> `Star
      | `Items its ->
          `Columns
            (List.map
               (fun it ->
                 match it.p_second with
                 | None -> it.p_first
                 | Some c ->
                     error it.p_pos "qualified reference %S is only allowed in a JOIN query"
                       (it.p_first ^ "." ^ c))
               its)
    in
    let where = if accept_keyword p "WHERE" then parse_or ~col:bare_column p else Predicate.True in
    let limit = parse_limit p in
    Select { projection; table; where; limit }
  end

let parse_insert p =
  expect_keyword p "INSERT";
  expect_keyword p "INTO";
  let table = expect_ident p in
  expect_keyword p "VALUES";
  expect p Lparen "'('";
  let vs = ref [ parse_literal p ] in
  while peek p = Comma do
    advance p;
    vs := parse_literal p :: !vs
  done;
  expect p Rparen "')'";
  Insert { table; values = List.rev !vs }

let parse_create p =
  expect_keyword p "CREATE";
  expect_keyword p "TABLE";
  let table = expect_ident p in
  expect p Lparen "'('";
  let parse_coldef () =
    let name = expect_ident p in
    let ty =
      match keyword p with
      | Some ("INT" | "INTEGER" | "BIGINT") ->
          advance p;
          Value.TInt
      | Some ("REAL" | "FLOAT" | "DOUBLE") ->
          advance p;
          Value.TReal
      | Some ("TEXT" | "VARCHAR" | "STRING") ->
          advance p;
          Value.TText
      | Some ("BLOB" | "BYTEA") ->
          advance p;
          Value.TBlob
      | _ -> error (pos p) "expected a column type"
    in
    let nullable =
      if accept_keyword p "NOT" then begin
        expect_keyword p "NULL";
        false
      end
      else true
    in
    { Schema.name; ty; nullable }
  in
  let cols = ref [ parse_coldef () ] in
  while peek p = Comma do
    advance p;
    cols := parse_coldef () :: !cols
  done;
  expect p Rparen "')'";
  Create_table { table; columns = List.rev !cols }

let parse_delete p =
  expect_keyword p "DELETE";
  expect_keyword p "FROM";
  let table = expect_ident p in
  let where = if accept_keyword p "WHERE" then parse_or ~col:bare_column p else Predicate.True in
  Delete { table; where }

let parse_update p =
  expect_keyword p "UPDATE";
  let table = expect_ident p in
  expect_keyword p "SET";
  let parse_assignment () =
    let col = expect_ident p in
    expect p Eq "'='";
    (col, parse_literal p)
  in
  let assignments = ref [ parse_assignment () ] in
  while peek p = Comma do
    advance p;
    assignments := parse_assignment () :: !assignments
  done;
  let where = if accept_keyword p "WHERE" then parse_or ~col:bare_column p else Predicate.True in
  Update { table; assignments = List.rev !assignments; where }

let parse_statement p =
  match keyword p with
  | Some "SELECT" -> parse_select p
  | Some "INSERT" -> parse_insert p
  | Some "CREATE" -> parse_create p
  | Some "DELETE" -> parse_delete p
  | Some "UPDATE" -> parse_update p
  | _ -> error (pos p) "expected SELECT, INSERT, CREATE, DELETE or UPDATE"

let run_parser f src =
  match tokenize src with
  | exception Parse_error (m, i) -> Error (Printf.sprintf "%s (at offset %d)" m i)
  | toks -> (
      let p = { toks; cur = 0 } in
      match f p with
      | result ->
          if peek p <> Eof then Error (Printf.sprintf "trailing input at offset %d" (pos p))
          else Ok result
      | exception Parse_error (m, i) -> Error (Printf.sprintf "%s (at offset %d)" m i))

let parse src = run_parser parse_statement src
let parse_predicate src = run_parser (parse_or ~col:bare_column) src

(* ---------------- Printer ---------------- *)

(* An identifier may appear bare only if it lexes as one token and can
   never be mistaken for a keyword; TRUE is quoted too because a bare
   TRUE opens a predicate atom. Everything else gets "…" quoting with
   the "" escape. *)
let plain_ident s =
  s <> ""
  && is_ident_start s.[0]
  && String.for_all is_ident_char s
  && (not (is_reserved s))
  && String.uppercase_ascii s <> "TRUE"

let print_ident buf s =
  if plain_ident s then Buffer.add_string buf s
  else begin
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  end

(* Shortest decimal spelling that parses back to the same float, forced
   into float-literal shape (a '.' or an exponent) so the lexer does not
   read an integral value as an Int_lit. Non-finite reals have no
   literal syntax. *)
let float_repr f =
  if not (Float.is_finite f) then invalid_arg "Sql.print: non-finite REAL literal";
  let s15 = Printf.sprintf "%.15g" f in
  let s =
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
  in
  if String.contains s '.' || String.contains s 'e' then s else s ^ "."

let print_value_buf buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_string buf "NULL"
  | Value.Int i -> Buffer.add_string buf (Int64.to_string i)
  | Value.Real f -> Buffer.add_string buf (float_repr f)
  | Value.Text s ->
      Buffer.add_char buf '\'';
      String.iter
        (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\''
  | Value.Blob b ->
      Buffer.add_string buf "X'";
      Buffer.add_string buf (Stdx.Bytes_util.to_hex b);
      Buffer.add_char buf '\''

(* The parser folds [a OP b OP c] flat and even folds a parenthesized
   tail ([a OR (b OR c)] re-parses as [Or [a;b;c]]), so right-nested
   same-connective trees are unrepresentable: the printer flattens them
   up front. For predicates already in that canonical shape (which is
   all the parser ever produces), [parse_predicate (print_predicate p)]
   gives back [p] exactly. *)
let rec flatten_or = function
  | Predicate.Or qs -> List.concat_map flatten_or qs
  | q -> [ q ]

let rec flatten_and = function
  | Predicate.And qs -> List.concat_map flatten_and qs
  | q -> [ q ]

(* Precedence levels: 0 = OR may appear bare, 1 = AND, 2 = NOT, higher
   needs parentheses. [pcol] prints a column reference: {!print_ident}
   in single-table statements, the table.column splitter inside a
   JOIN's WHERE clause. *)
let rec print_pred buf ~pcol ~level (pr : Predicate.t) =
  let paren needed body =
    if needed then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  let list sep ~level qs =
    List.iteri
      (fun i q ->
        if i > 0 then Buffer.add_string buf sep;
        print_pred buf ~pcol ~level q)
      qs
  in
  match pr with
  | Predicate.True -> Buffer.add_string buf "TRUE"
  | Predicate.Eq (c, v) ->
      pcol buf c;
      Buffer.add_string buf " = ";
      print_value_buf buf v
  | Predicate.In (c, vs) ->
      if vs = [] then invalid_arg "Sql.print: empty IN list";
      pcol buf c;
      Buffer.add_string buf " IN (";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          print_value_buf buf v)
        vs;
      Buffer.add_char buf ')'
  | Predicate.Range (c, Some lo, Some hi) ->
      pcol buf c;
      Buffer.add_string buf " BETWEEN ";
      print_value_buf buf lo;
      Buffer.add_string buf " AND ";
      print_value_buf buf hi
  | Predicate.Range (c, Some lo, None) ->
      pcol buf c;
      Buffer.add_string buf " >= ";
      print_value_buf buf lo
  | Predicate.Range (c, None, Some hi) ->
      pcol buf c;
      Buffer.add_string buf " <= ";
      print_value_buf buf hi
  | Predicate.Range (_, None, None) -> invalid_arg "Sql.print: unbounded range"
  | Predicate.Not (Predicate.Eq (c, v)) ->
      (* the <> sugar: re-parses to Not (Eq _) *)
      pcol buf c;
      Buffer.add_string buf " <> ";
      print_value_buf buf v
  | Predicate.Not q ->
      paren (level > 2) @@ fun () ->
      Buffer.add_string buf "NOT ";
      print_pred buf ~pcol ~level:3 q
  | Predicate.And qs -> (
      match flatten_and (Predicate.And qs) with
      | [] -> Buffer.add_string buf "TRUE"
      | [ q ] -> print_pred buf ~pcol ~level q
      | qs -> paren (level > 1) @@ fun () -> list " AND " ~level:2 qs)
  | Predicate.Or qs -> (
      match flatten_or (Predicate.Or qs) with
      | [] -> Buffer.add_string buf "NOT TRUE"
      | [ q ] -> print_pred buf ~pcol ~level q
      | qs -> paren (level > 0) @@ fun () -> list " OR " ~level:1 qs)

(* Split a join predicate's "table.column" spelling back into its two
   identifiers. The qualifier is matched against the join's two table
   names, longest first, so a table name that itself contains a dot
   still splits unambiguously; a column string qualified by neither
   table is unprintable (the parser can never produce one). *)
let join_pcol ~jleft ~jright buf c =
  let split name =
    let pl = String.length name and cl = String.length c in
    if cl >= pl + 1 && String.sub c 0 pl = name && c.[pl] = '.' then
      Some (name, String.sub c (pl + 1) (cl - pl - 1))
    else None
  in
  let longer_first =
    if String.length jleft >= String.length jright then [ jleft; jright ] else [ jright; jleft ]
  in
  match List.find_map split longer_first with
  | Some (t, col) ->
      print_ident buf t;
      Buffer.add_char buf '.';
      print_ident buf col
  | None ->
      invalid_arg
        (Printf.sprintf "Sql.print: JOIN predicate column %S is qualified by neither table" c)

let with_buf f =
  let buf = Buffer.create 128 in
  f buf;
  Buffer.contents buf

let print_value v = with_buf (fun buf -> print_value_buf buf v)
let print_predicate p = with_buf (fun buf -> print_pred buf ~pcol:print_ident ~level:0 p)

let print_statement (st : statement) =
  with_buf @@ fun buf ->
  let where w =
    match w with
    | Predicate.True -> ()
    | _ ->
        Buffer.add_string buf " WHERE ";
        print_pred buf ~pcol:print_ident ~level:0 w
  in
  match st with
  | Select s ->
      Buffer.add_string buf "SELECT ";
      (match s.projection with
      | `Star -> Buffer.add_char buf '*'
      | `Columns cols ->
          List.iteri
            (fun i c ->
              if i > 0 then Buffer.add_string buf ", ";
              print_ident buf c)
            cols);
      Buffer.add_string buf " FROM ";
      print_ident buf s.table;
      where s.where;
      (match s.limit with
      | None -> ()
      | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n))
  | Select_join j ->
      let pq q =
        print_ident buf q.q_table;
        Buffer.add_char buf '.';
        print_ident buf q.q_column
      in
      Buffer.add_string buf "SELECT ";
      (match j.j_projection with
      | `Star -> Buffer.add_char buf '*'
      | `Columns cols ->
          List.iteri
            (fun i q ->
              if i > 0 then Buffer.add_string buf ", ";
              pq q)
            cols);
      Buffer.add_string buf " FROM ";
      print_ident buf j.j_left;
      Buffer.add_string buf " JOIN ";
      print_ident buf j.j_right;
      Buffer.add_string buf " ON ";
      pq j.j_on_left;
      Buffer.add_string buf " = ";
      pq j.j_on_right;
      (match j.j_where with
      | Predicate.True -> ()
      | w ->
          Buffer.add_string buf " WHERE ";
          print_pred buf ~pcol:(join_pcol ~jleft:j.j_left ~jright:j.j_right) ~level:0 w);
      (match j.j_limit with
      | None -> ()
      | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n))
  | Insert { table; values } ->
      Buffer.add_string buf "INSERT INTO ";
      print_ident buf table;
      Buffer.add_string buf " VALUES (";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          print_value_buf buf v)
        values;
      Buffer.add_char buf ')'
  | Create_table { table; columns } ->
      Buffer.add_string buf "CREATE TABLE ";
      print_ident buf table;
      Buffer.add_string buf " (";
      List.iteri
        (fun i (c : Schema.column) ->
          if i > 0 then Buffer.add_string buf ", ";
          print_ident buf c.name;
          Buffer.add_string buf
            (match c.ty with
            | Value.TInt -> " INT"
            | Value.TReal -> " REAL"
            | Value.TText -> " TEXT"
            | Value.TBlob -> " BLOB");
          if not c.nullable then Buffer.add_string buf " NOT NULL")
        columns;
      Buffer.add_char buf ')'
  | Delete { table; where = w } ->
      Buffer.add_string buf "DELETE FROM ";
      print_ident buf table;
      where w
  | Update { table; assignments; where = w } ->
      Buffer.add_string buf "UPDATE ";
      print_ident buf table;
      Buffer.add_string buf " SET ";
      List.iteri
        (fun i (c, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          print_ident buf c;
          Buffer.add_string buf " = ";
          print_value_buf buf v)
        assignments;
      where w

(* ---------------- Execution ---------------- *)

type query_result = {
  columns : string list;
  rows : Value.t array list;
  affected : int;
  exec : Executor.result option;
  join_exec : Join.result option;
}

let empty_result ?(affected = 0) () =
  { columns = []; rows = []; affected; exec = None; join_exec = None }

let take limit l =
  match limit with
  | None -> l
  | Some n -> List.filteri (fun i _ -> i < n) l

(* The combined row space of a join: every left column as
   "left.column", then every right column as "right.column". Distinct
   table names keep the qualified names distinct for any sane schema;
   the pathological collision (one table name a dotted extension of
   the other) surfaces as [Schema.create]'s duplicate-name error. *)
let qualify_columns name (sch : Schema.t) =
  List.map
    (fun (c : Schema.column) -> { c with Schema.name = name ^ "." ^ c.name })
    (Array.to_list (Schema.columns sch))

let join_schema (j : join) lsch rsch =
  match Schema.create (qualify_columns j.j_left lsch @ qualify_columns j.j_right rsch) with
  | sch -> Ok sch
  | exception Invalid_argument e -> Error e

let join_projection (j : join) combined =
  match j.j_projection with
  | `Star ->
      Ok (List.map (fun (c : Schema.column) -> c.name) (Array.to_list (Schema.columns combined)))
  | `Columns qs ->
      let names = List.map qualified_name qs in
      let missing = List.filter (fun c -> Schema.column_index_opt combined c = None) names in
      if missing = [] then Ok names
      else Error (Printf.sprintf "no such column %S" (List.hd missing))

(* Plaintext reference execution of a join: freeze both tables in one
   epoch-consistent step, hash-join on value equality, then filter the
   combined rows by WHERE and apply projection + LIMIT. The oracle the
   encrypted path is differenced against. *)
let execute_join db (j : join) =
  match (Database.table_opt db j.j_left, Database.table_opt db j.j_right) with
  | None, _ -> Error (Printf.sprintf "no such table %S" j.j_left)
  | _, None -> Error (Printf.sprintf "no such table %S" j.j_right)
  | Some tl, Some tr -> (
      let lsch = Table.schema tl and rsch = Table.schema tr in
      if Schema.column_index_opt lsch j.j_on_left.q_column = None then
        Error (Printf.sprintf "no such column %S in table %S" j.j_on_left.q_column j.j_left)
      else if Schema.column_index_opt rsch j.j_on_right.q_column = None then
        Error (Printf.sprintf "no such column %S in table %S" j.j_on_right.q_column j.j_right)
      else
        match join_schema j lsch rsch with
        | Error e -> Error e
        | Ok combined -> (
            match join_projection j combined with
            | Error e -> Error e
            | Ok columns -> (
                match Predicate.compile combined j.j_where with
                | exception Not_found -> Error "predicate references an unknown column"
                | eval ->
                    let lv, rv = Option.get (Database.freeze_pair db j.j_left j.j_right) in
                    let jr =
                      Executor.run_join ~left:lv ~right:rv ~on_left:j.j_on_left.q_column
                        ~on_right:j.j_on_right.q_column Join.Equi
                    in
                    let idxs = List.map (Schema.column_index combined) columns in
                    let rows =
                      take j.j_limit
                        (List.filter_map
                           (fun (l, r) ->
                             let row =
                               Array.append (Read_view.read_row lv l) (Read_view.read_row rv r)
                             in
                             if eval row then
                               Some (Array.of_list (List.map (fun i -> row.(i)) idxs))
                             else None)
                           (Array.to_list jr.Join.pairs))
                    in
                    Ok { columns; rows; affected = 0; exec = None; join_exec = Some jr })))

let execute db src =
  match parse src with
  | Error e -> Error e
  | Ok (Select_join j) -> execute_join db j
  | Ok (Select s) -> (
      match Database.table_opt db s.table with
      | None -> Error (Printf.sprintf "no such table %S" s.table)
      | Some table -> (
          let schema = Table.schema table in
          let project =
            match s.projection with
            | `Star -> Ok (List.map (fun (c : Schema.column) -> c.name) (Array.to_list (Schema.columns schema)))
            | `Columns cols ->
                let missing = List.filter (fun c -> Schema.column_index_opt schema c = None) cols in
                if missing = [] then Ok cols
                else Error (Printf.sprintf "no such column %S" (List.hd missing))
          in
          match project with
          | Error e -> Error e
          | Ok columns -> (
              match Executor.run table ~projection:Executor.All_columns s.where with
              | exception Not_found -> Error "predicate references an unknown column"
              | exec ->
                  let idxs = List.map (Schema.column_index schema) columns in
                  let rows =
                    take s.limit
                      (List.map
                         (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs))
                         (Array.to_list exec.rows))
                  in
                  Ok { columns; rows; affected = 0; exec = Some exec; join_exec = None })))
  | Ok (Insert { table; values }) -> (
      match Database.table_opt db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some t -> (
          match Table.insert t (Array.of_list values) with
          | _id -> Ok (empty_result ~affected:1 ())
          | exception Invalid_argument e -> Error e))
  | Ok (Create_table { table; columns }) -> (
      match Schema.create columns with
      | schema -> (
          match Database.create_table db ~name:table ~schema with
          | _t -> Ok (empty_result ())
          | exception Invalid_argument e -> Error e)
      | exception Invalid_argument e -> Error e)
  | Ok (Delete { table; where }) -> (
      match Database.table_opt db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some t -> (
          match Executor.run t ~projection:Executor.Row_ids where with
          | exception Not_found -> Error "predicate references an unknown column"
          | r ->
              let n =
                Array.fold_left (fun acc id -> if Table.delete t id then acc + 1 else acc) 0 r.row_ids
              in
              Ok (empty_result ~affected:n ())))
  | Ok (Update { table; assignments; where }) -> (
      match Database.table_opt db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some t -> (
          let schema = Table.schema t in
          match List.map (fun (c, v) -> (Schema.column_index schema c, v)) assignments with
          | exception Not_found -> Error "SET references an unknown column"
          | positions -> (
              match Executor.run t ~projection:Executor.Row_ids where with
              | exception Not_found -> Error "predicate references an unknown column"
              | r -> (
                  match
                    Array.iter
                      (fun id ->
                        let row = Array.copy (Table.peek_row t id) in
                        List.iter (fun (i, v) -> row.(i) <- v) positions;
                        ignore (Table.update t id row))
                      r.row_ids
                  with
                  | () -> Ok (empty_result ~affected:(Array.length r.row_ids) ())
                  | exception Invalid_argument e -> Error e))))
