(* lint: guarded-by construction (by_tag filled in make, read-only afterwards) *)
type node = { tag : int64; left : int; right : int; bucket : int64 }

type t = {
  nodes : node array;
  by_tag : (int64, int) Hashtbl.t;
  depth : int;
  leaf_count : int;
}

let is_leaf nd = nd.left < 0

let make nodes =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Range_tree.make: empty node table";
  let by_tag = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i nd ->
      if Hashtbl.mem by_tag nd.tag then invalid_arg "Range_tree.make: duplicate node tag";
      Hashtbl.replace by_tag nd.tag i;
      (* Children strictly after the parent (preorder layout): every
         walk terminates, no cycles representable. *)
      let child c =
        if c >= 0 && (c <= i || c >= n) then
          invalid_arg "Range_tree.make: child index breaks preorder layout"
      in
      child nd.left;
      child nd.right;
      if (nd.left < 0) <> (nd.right < 0) then
        invalid_arg "Range_tree.make: internal nodes need both children")
    nodes;
  (* Preorder means parents precede children, so one forward sweep
     computes every node's depth. *)
  let depth_of = Array.make n 1 in
  let depth = ref 1 in
  let leaf_count = ref 0 in
  Array.iteri
    (fun i nd ->
      if is_leaf nd then incr leaf_count
      else begin
        depth_of.(nd.left) <- depth_of.(i) + 1;
        depth_of.(nd.right) <- depth_of.(i) + 1
      end;
      if depth_of.(i) > !depth then depth := depth_of.(i))
    nodes;
  { nodes; by_tag; depth = !depth; leaf_count = !leaf_count }

let node_count t = Array.length t.nodes
let depth t = t.depth
let leaf_count t = t.leaf_count
let mem t ~tag = Hashtbl.mem t.by_tag tag

(* Depth-first from [root], children left-first, so leaves come out in
   bucket order (the builder lays buckets left to right). *)
let traverse t ~root =
  match Hashtbl.find_opt t.by_tag root with
  | None -> None
  | Some start ->
      let leaves = Stdx.Vec.create () in
      let visited = ref 0 in
      let rec go i =
        incr visited;
        let nd = t.nodes.(i) in
        if is_leaf nd then Stdx.Vec.push leaves nd.bucket
        else begin
          go nd.left;
          go nd.right
        end
      in
      go start;
      Some (Stdx.Vec.to_array leaves, !visited)
