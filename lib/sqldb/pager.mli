(** Buffer-pool and I/O cost model.

    The paper's query-latency figures (Figs. 4–7) are dominated by
    storage behaviour: a cold run pays a random read for every page not
    in the OS/Postgres caches, a warm run pays almost none. The engine
    here keeps all data in memory, so it models that axis explicitly: a
    set of cached [(relation, page)] pairs, a simulated latency charged
    on every miss, and a CPU charge per row examined. Real wall-clock
    time of the executor is measured separately; the *simulated* clock
    is what reproduces the paper's cold/warm shapes on a machine with
    no spinning disks.

    Benchmarks reproduce the paper's two scenarios by calling
    {!drop_caches} before each query (cold) or leaving the cache alone
    (warm) — exactly the protocol of §VI-A. *)

type t

type config = {
  page_size : int;  (** bytes per page; 8192 like PostgreSQL *)
  io_miss_ns : float;  (** simulated latency per page miss *)
  cpu_row_ns : float;  (** simulated CPU per row examined *)
  cpu_probe_ns : float;  (** simulated CPU per index probe (one per tag in an IN-list) *)
  cpu_transfer_ns_per_byte : float;  (** network/serialization cost for returned bytes *)
}

val default_config : config
(** 8 KiB pages, 200 µs per miss (10k-RPM array random read), 150 ns
    per row, 5 µs per index probe, 1 ns per returned byte (≈1 Gbps
    wire, paper §VI-A). *)

val create : ?config:config -> unit -> t
val config : t -> config

type rel
(** A relation (heap or index) with its own page number space. *)

val make_rel : t -> name:string -> rel
val rel_name : rel -> string

val touch : t -> rel -> int -> unit
(** Access one page: cache hit or miss-and-fill. *)

val charge_rows : t -> int -> unit
(** CPU charge for examining [n] rows. *)

val charge_probe : t -> unit
(** CPU charge for one B-tree descent — what makes a 1,000-tag WRE
    query slower than a single-tag plaintext query even when every
    page is cached (the warm-cache ordering of Figs. 6–7). *)

val charge_transfer : t -> int -> unit
(** Wire charge for returning [n] bytes. *)

val drop_caches : t -> unit
(** Empty the buffer pool (the paper's
    [echo 3 > /proc/sys/vm/drop_caches] plus Postgres restart). *)

type stats = { hits : int; misses : int; rows_examined : int; sim_ns : float }

val stats : t -> stats
(** Whole-instance totals. Counters are atomic, so the totals stay
    exact under concurrent readers: hits + misses always equals the
    number of [touch] calls made so far. *)

val reset_stats : t -> unit
(** Zero the counters without touching the cache contents. *)

val local_stats : unit -> stats
(** Cumulative charges made by the *calling domain*, across all pager
    instances. Per-query costing takes a before/after delta of this —
    with the parallel executor each fanned-out task measures its own
    domain-local delta and the caller sums them, so concurrent queries
    on other domains never pollute a query's reported cost. *)

val diff_stats : stats -> stats -> stats
(** [diff_stats before after] is the component-wise delta. *)

val sum_stats : stats -> stats -> stats
val zero_stats : stats

val sim_ms : stats -> float
