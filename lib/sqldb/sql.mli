(** A small SQL front-end for the engine.

    Covers the fragment the paper's evaluation exercises (and that the
    WRE proxy must rewrite): single-table SELECT with equality / IN /
    BETWEEN predicates combined with AND/OR/NOT, column projection or
    [*], LIMIT; two-table equi-joins
    [SELECT … FROM a JOIN b ON a.x = b.y [WHERE …] [LIMIT n]];
    INSERT INTO … VALUES; CREATE TABLE. Hand-written lexer and
    recursive-descent parser — no external parser generators in the
    sealed environment.

    Identifiers are case-sensitive; keywords are not. Identifiers may
    be double-quoted (["…"] with [""] escaping) to spell names that
    collide with keywords or use characters outside
    [[A-Za-z_][A-Za-z0-9_]*]. String literals use single quotes with
    [''] escaping; blob literals are [X'hex'].

    Inside a JOIN, every column reference (projection, ON, WHERE) must
    be qualified as [table.column] and the qualifier must name one of
    the two joined tables — a violation is a parse error anchored at
    the offending reference's own token position. Outside a JOIN,
    qualified references are rejected the same way. *)

type select = {
  projection : [ `Star | `Columns of string list ];
  table : string;
  where : Predicate.t;
  limit : int option;
}

type qualified = { q_table : string; q_column : string }
(** One [table.column] reference. *)

val qualified_name : qualified -> string
(** The ["table.column"] spelling used for join predicates and the
    combined result schema. *)

type join = {
  j_projection : [ `Star | `Columns of qualified list ];
  j_left : string;
  j_right : string;
  j_on_left : qualified;  (** qualifier = [j_left] (the parser normalizes ON order) *)
  j_on_right : qualified;  (** qualifier = [j_right] *)
  j_where : Predicate.t;  (** columns spelled ["table.column"] *)
  j_limit : int option;
}

type statement =
  | Select of select
  | Select_join of join
  | Insert of { table : string; values : Value.t list }
  | Create_table of { table : string; columns : Schema.column list }
  | Delete of { table : string; where : Predicate.t }
  | Update of { table : string; assignments : (string * Value.t) list; where : Predicate.t }

val parse : string -> (statement, string) result
(** Parse one statement. The error message includes the offending
    position. *)

val parse_predicate : string -> (Predicate.t, string) result
(** Parse a bare WHERE-clause expression (used by tests and the proxy). *)

val print_statement : statement -> string
(** Render a statement back to parseable SQL. Identifiers are quoted
    exactly when needed, TEXT literals use [''] escaping, REAL literals
    use the shortest decimal spelling that parses back to the same
    float. For every statement the parser can produce,
    [parse (print_statement st) = Ok st]. ASTs the grammar cannot
    express are canonicalized: right-nested same-connective And/Or
    chains are flattened (the parser folds them flat anyway) and empty
    And/Or print as [TRUE] / [NOT TRUE]. Raises [Invalid_argument] for
    the remaining inexpressible literals (non-finite REAL, empty IN
    list, unbounded Range). *)

val print_predicate : Predicate.t -> string
(** {!print_statement} for a bare WHERE-clause expression:
    [parse_predicate (print_predicate p)] returns [p] for every
    parser-producible predicate. *)

val print_value : Value.t -> string
(** One SQL literal (as found inside the statements above). *)

type query_result = {
  columns : string list;  (** names of the projected columns (qualified for a join) *)
  rows : Value.t array list;
  affected : int;  (** rows inserted / deleted / updated *)
  exec : Executor.result option;  (** None for non-SELECT / join statements *)
  join_exec : Join.result option;  (** Some for joins only *)
}

val join_schema : join -> Schema.t -> Schema.t -> (Schema.t, string) result
(** The combined row schema of a join: left's columns spelled
    ["left.col"] followed by right's spelled ["right.col"]. [Error] if
    a qualified name collides (e.g. self-referential table names). *)

val join_projection : join -> Schema.t -> (string list, string) result
(** Resolve a join's projection against the combined schema from
    {!join_schema}: the full qualified column list for [`Star], the
    validated requested names otherwise. *)

val execute : Database.t -> string -> (query_result, string) result
(** Parse and run a statement against the database. SELECT projects and
    applies LIMIT client-side of the executor; INSERT/CREATE return an
    empty row set. A JOIN freezes both tables in one epoch-consistent
    step ({!Database.freeze_pair}), hash-joins on value equality
    ({!Join.Equi}), filters the combined [left.col]/[right.col] row
    space by WHERE, then projects and applies LIMIT — the plaintext
    reference the encrypted join path is checked against. *)
