(** A small SQL front-end for the engine.

    Covers the fragment the paper's evaluation exercises (and that the
    WRE proxy must rewrite): single-table SELECT with equality / IN /
    BETWEEN predicates combined with AND/OR/NOT, column projection or
    [*], LIMIT; INSERT INTO … VALUES; CREATE TABLE. Hand-written lexer
    and recursive-descent parser — no external parser generators in the
    sealed environment.

    Identifiers are case-sensitive; keywords are not. Identifiers may
    be double-quoted (["…"] with [""] escaping) to spell names that
    collide with keywords or use characters outside
    [[A-Za-z_][A-Za-z0-9_]*]. String literals use single quotes with
    [''] escaping; blob literals are [X'hex']. *)

type select = {
  projection : [ `Star | `Columns of string list ];
  table : string;
  where : Predicate.t;
  limit : int option;
}

type statement =
  | Select of select
  | Insert of { table : string; values : Value.t list }
  | Create_table of { table : string; columns : Schema.column list }
  | Delete of { table : string; where : Predicate.t }
  | Update of { table : string; assignments : (string * Value.t) list; where : Predicate.t }

val parse : string -> (statement, string) result
(** Parse one statement. The error message includes the offending
    position. *)

val parse_predicate : string -> (Predicate.t, string) result
(** Parse a bare WHERE-clause expression (used by tests and the proxy). *)

val print_statement : statement -> string
(** Render a statement back to parseable SQL. Identifiers are quoted
    exactly when needed, TEXT literals use [''] escaping, REAL literals
    use the shortest decimal spelling that parses back to the same
    float. For every statement the parser can produce,
    [parse (print_statement st) = Ok st]. ASTs the grammar cannot
    express are canonicalized: right-nested same-connective And/Or
    chains are flattened (the parser folds them flat anyway) and empty
    And/Or print as [TRUE] / [NOT TRUE]. Raises [Invalid_argument] for
    the remaining inexpressible literals (non-finite REAL, empty IN
    list, unbounded Range). *)

val print_predicate : Predicate.t -> string
(** {!print_statement} for a bare WHERE-clause expression:
    [parse_predicate (print_predicate p)] returns [p] for every
    parser-producible predicate. *)

val print_value : Value.t -> string
(** One SQL literal (as found inside the statements above). *)

type query_result = {
  columns : string list;  (** names of the projected columns *)
  rows : Value.t array list;
  affected : int;  (** rows inserted / deleted / updated *)
  exec : Executor.result option;  (** None for non-SELECT statements *)
}

val execute : Database.t -> string -> (query_result, string) result
(** Parse and run a statement against the database. SELECT projects and
    applies LIMIT client-side of the executor; INSERT/CREATE return an
    empty row set. *)
