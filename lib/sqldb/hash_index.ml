(* lint: guarded-by Table.writer (indexes mutate only on the write path) *)
type t = {
  pager : Pager.t;
  rel : Pager.rel;
  name : string;
  by_key : (Value.t, int Stdx.Vec.t) Hashtbl.t;
  mutable entries : int;
}

(* Postgres hash entries are hash code + item pointer: ~20 bytes with
   line pointer; pages target ~75% fill. *)
let entry_bytes = 20
let fill = 0.75

let create pager ~name =
  { pager; rel = Pager.make_rel pager ~name; name; by_key = Hashtbl.create 1024; entries = 0 }

let name t = t.name

let insert t key id =
  (match Hashtbl.find_opt t.by_key key with
  | Some ids -> Stdx.Vec.push ids id
  | None ->
      let ids = Stdx.Vec.create () in
      Stdx.Vec.push ids id;
      Hashtbl.replace t.by_key key ids);
  t.entries <- t.entries + 1

let remove t key id =
  match Hashtbl.find_opt t.by_key key with
  | None -> ()
  | Some ids ->
      let kept = Array.of_seq (Seq.filter (fun x -> x <> id) (Array.to_seq (Stdx.Vec.to_array ids))) in
      let removed = Stdx.Vec.length ids - Array.length kept in
      if removed > 0 then begin
        t.entries <- t.entries - removed;
        if Array.length kept = 0 then Hashtbl.remove t.by_key key
        else Hashtbl.replace t.by_key key (Stdx.Vec.of_array kept)
      end

let entry_count t = t.entries
let distinct_keys t = Hashtbl.length t.by_key

let entries_per_page t =
  max 1 (int_of_float (float_of_int (Pager.config t.pager).page_size *. fill /. float_of_int entry_bytes))

(* Number of primary bucket pages: next power of two that keeps the
   average bucket within one page, like Postgres's splitting rule. *)
let bucket_pages t =
  let needed = max 1 ((t.entries + entries_per_page t - 1) / entries_per_page t) in
  let rec pow2 n = if n >= needed then n else pow2 (2 * n) in
  pow2 1

let size_bytes t = bucket_pages t * (Pager.config t.pager).page_size

(* Detached read-only copy for snapshot readers (see Btree_index). *)
let freeze t =
  let by_key = Hashtbl.create (max 16 (Hashtbl.length t.by_key)) in
  Hashtbl.iter (fun k ids -> Hashtbl.replace by_key k (Stdx.Vec.of_array (Stdx.Vec.to_array ids))) t.by_key;
  { pager = t.pager; rel = t.rel; name = t.name; by_key; entries = t.entries }

let lookup t key =
  Pager.charge_probe t.pager;
  let n_buckets = bucket_pages t in
  let bucket = (Value.hash key land max_int) mod n_buckets in
  Pager.touch t.pager t.rel bucket;
  match Hashtbl.find_opt t.by_key key with
  | None -> [||]
  | Some ids ->
      let n = Stdx.Vec.length ids in
      (* Entries beyond one page's worth of this key spill into
         overflow pages chained off the bucket. Overflow page numbers
         live above the primary space. *)
      let epp = entries_per_page t in
      let overflow = (n - 1) / epp in
      for i = 1 to overflow do
        Pager.touch t.pager t.rel (n_buckets + (bucket * 64) + i)
      done;
      Pager.charge_rows t.pager n;
      Stdx.Vec.to_array ids

let lookup_many t keys =
  let all = List.concat_map (fun k -> Array.to_list (lookup t k)) keys in
  let a = Array.of_list all in
  Array.sort compare a;
  let out = Stdx.Vec.create () in
  Array.iteri (fun i id -> if i = 0 || id <> a.(i - 1) then Stdx.Vec.push out id) a;
  Stdx.Vec.to_array out
