(* An immutable point-in-time view of one table: the copy-on-write
   snapshot a reader domain works against while writers keep mutating
   the live table. The columnar storage is shared with the table by
   pointer — per-column dictionary backings and id arrays are append-
   only (vacuum replaces them wholesale instead of mutating shared
   slots), so everything below a frozen length is immutable forever —
   while the visibility bitmap is copied, so no later insert/delete/
   vacuum/checkpoint is observable through the view. Built by
   [Table.freeze] under the table's writer lock; every accessor here is
   a pure read plus pager charges, safe to call from any domain. *)

type col = {
  dict : Column_dict.frozen;
  ids : int array;  (* shared backing; only the first [n] slots are ours *)
}

type t = {
  epoch : int;
  name : string;
  schema : Schema.t;
  pager : Pager.t;
  heap_rel : Pager.rel;
  cols : col array;
  n : int;  (* heap slots at freeze time; shared backings may be longer *)
  live : bool array;  (* copied: the table tombstones in place *)
  row_pages : int array;  (* shared backing *)
  row_sizes : int array;  (* shared backing; physical tuple bytes *)
  n_dead : int;
  cur_page : int;
  cur_fill : int;
  data_bytes : int;
  live_bytes : int;
  rm_cur_page : int;
  rm_cur_fill : int;
  rm_data_bytes : int;
  dict_overhead_bytes : int;
  reclaimed : Value.t array; (* physical sentinel for vacuumed slots *)
  row_bytes : Value.t array -> int; (* logical tuple size, for transfer charges *)
  indexes : (string * Table_index.t) list; (* frozen copies, sorted by column *)
}

let make ~epoch ~name ~schema ~pager ~heap_rel ~cols ~n ~live ~row_pages ~row_sizes ~n_dead
    ~cur_page ~cur_fill ~data_bytes ~live_bytes ~rm_cur_page ~rm_cur_fill ~rm_data_bytes
    ~dict_overhead_bytes ~reclaimed ~row_bytes ~indexes =
  { epoch; name; schema; pager; heap_rel; cols; n; live; row_pages; row_sizes; n_dead;
    cur_page; cur_fill; data_bytes; live_bytes; rm_cur_page; rm_cur_fill; rm_data_bytes;
    dict_overhead_bytes; reclaimed; row_bytes; indexes }

let epoch t = t.epoch
let name t = t.name
let schema t = t.schema
let pager t = t.pager

let row_count t = t.n
let live_count t = t.n - t.n_dead

(* Shared backings outlive [n], so every per-row accessor must bound-
   check explicitly rather than rely on the array length. *)
let check t id =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Read_view(%s): row %d out of bounds (rows %d)" t.name id t.n)

let is_live t id =
  check t id;
  t.live.(id)

let n_cols t = Array.length t.cols

let is_reclaimed t id =
  check t id;
  n_cols t > 0 && t.cols.(0).ids.(id) < 0

let materialize t id =
  Array.map (fun c -> Column_dict.frozen_get c.dict c.ids.(id)) t.cols

let peek_row t id = if is_reclaimed t id then t.reclaimed else materialize t id

let row_page t id =
  check t id;
  t.row_pages.(id)

let read_row t id =
  let row = peek_row t id in
  Pager.touch t.pager t.heap_rel t.row_pages.(id);
  Pager.charge_rows t.pager 1;
  Pager.charge_transfer t.pager (t.row_bytes row);
  row

let scan t f =
  let last_page = ref (-1) in
  for id = 0 to t.n - 1 do
    let page = t.row_pages.(id) in
    if page <> !last_page then begin
      Pager.touch t.pager t.heap_rel page;
      last_page := page
    end;
    if t.live.(id) then f id (peek_row t id)
  done;
  Pager.charge_rows t.pager t.n

let index_on t ~column =
  List.assoc_opt column t.indexes

let indexes t = t.indexes

let cur_page t = t.cur_page
let cur_fill t = t.cur_fill
let data_bytes t = t.data_bytes
let live_bytes t = t.live_bytes
let rm_cur_page t = t.rm_cur_page
let rm_cur_fill t = t.rm_cur_fill
let rm_data_bytes t = t.rm_data_bytes
let dict_overhead_bytes t = t.dict_overhead_bytes

(* Columnar internals, for the checkpoint serializer: everything the
   wire format needs, without materializing rows. *)

let col_id t ~col id =
  check t id;
  t.cols.(col).ids.(id)

let row_size t id =
  check t id;
  t.row_sizes.(id)

let dict t ~col = t.cols.(col).dict
