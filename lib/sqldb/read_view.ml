(* An immutable point-in-time view of one table: the copy-on-write
   snapshot a reader domain works against while writers keep mutating
   the live table. Row arrays are shared with the table by pointer —
   safe because the table never mutates a stored row in place (insert
   copies, update is delete+insert, vacuum swaps in a fresh sentinel) —
   while the visibility bitmap, page map and index structures are
   copied, so no later insert/delete/vacuum/checkpoint is observable
   through the view. Built by [Table.freeze] under the table's writer
   lock; every accessor here is a pure read plus pager charges, safe to
   call from any domain. *)

type t = {
  epoch : int;
  name : string;
  schema : Schema.t;
  pager : Pager.t;
  heap_rel : Pager.rel;
  rows : Value.t array array;
  live : bool array;
  row_pages : int array;
  n_dead : int;
  cur_page : int;
  cur_fill : int;
  data_bytes : int;
  reclaimed : Value.t array; (* physical sentinel for vacuumed slots *)
  row_bytes : Value.t array -> int; (* tuple size, for transfer charges *)
  indexes : (string * Table_index.t) list; (* frozen copies, sorted by column *)
}

let make ~epoch ~name ~schema ~pager ~heap_rel ~rows ~live ~row_pages ~n_dead ~cur_page
    ~cur_fill ~data_bytes ~reclaimed ~row_bytes ~indexes =
  { epoch; name; schema; pager; heap_rel; rows; live; row_pages; n_dead; cur_page; cur_fill;
    data_bytes; reclaimed; row_bytes; indexes }

let epoch t = t.epoch
let name t = t.name
let schema t = t.schema
let pager t = t.pager

let row_count t = Array.length t.rows
let live_count t = row_count t - t.n_dead
let is_live t id = t.live.(id)
let is_reclaimed t id = t.rows.(id) == t.reclaimed

let peek_row t id = t.rows.(id)
let row_page t id = t.row_pages.(id)

let read_row t id =
  let row = t.rows.(id) in
  Pager.touch t.pager t.heap_rel t.row_pages.(id);
  Pager.charge_rows t.pager 1;
  Pager.charge_transfer t.pager (t.row_bytes row);
  row

let scan t f =
  let n = Array.length t.rows in
  let last_page = ref (-1) in
  for id = 0 to n - 1 do
    let page = t.row_pages.(id) in
    if page <> !last_page then begin
      Pager.touch t.pager t.heap_rel page;
      last_page := page
    end;
    if t.live.(id) then f id t.rows.(id)
  done;
  Pager.charge_rows t.pager n

let index_on t ~column =
  List.assoc_opt column t.indexes

let indexes t = t.indexes

let cur_page t = t.cur_page
let cur_fill t = t.cur_fill
let data_bytes t = t.data_bytes
