(* lint: guarded-by writer — every mutable field below except the
   Atomic [writer_holder] is read and written only while [writer] is
   held (mutations run inside [mutate]; [epoch]/[freeze] take the lock
   to read). *)

type col = {
  mutable dict : Column_dict.t;
  mutable ids : int Stdx.Vec.t;
      (* dictionary id per heap slot; -1 = vacuum-reclaimed. Append-only
         between vacuums; vacuum swaps in a fresh vector so frozen views
         keep the old backing. *)
}

type t = {
  name : string;
  schema : Schema.t;
  pager : Pager.t;
  heap_rel : Pager.rel;
  cols : col array;  (* one per schema column: dictionary-encoded columnar storage *)
  live : bool Stdx.Vec.t;
  mutable row_pages : int Stdx.Vec.t;
  mutable row_sizes : int Stdx.Vec.t;  (* physical tuple bytes per slot; 0 = reclaimed *)
  mutable n_dead : int;
  mutable cur_page : int;
  mutable cur_fill : int; (* bytes used on the current heap page *)
  mutable data_bytes : int; (* physical tuple bytes, live + dead-but-unvacuumed *)
  mutable live_bytes : int; (* physical tuple bytes of live rows only *)
  (* Row-format shadow accounting: the page cursor the pre-columnar
     engine (24-byte tuple headers, values inline) would be at. Costs
     nothing per row and gives benchmarks an honest like-for-like
     baseline for the dictionary compression ratio. *)
  mutable rm_cur_page : int;
  mutable rm_cur_fill : int;
  mutable rm_data_bytes : int;
  indexes : (string, Table_index.t) Hashtbl.t;
  mutable journal : Journal.hook option;
  (* Epoch-based copy-on-write reads: every mutation runs under
     [writer], bumps [epoch] and invalidates the cached frozen view;
     [freeze] rebuilds it at most once per epoch. Readers work against
     the returned [Read_view.t] without taking any lock. *)
  writer : Mutex.t;
  writer_holder : int Atomic.t;
      (* Domain id currently inside [mutate], -1 when free. An Atomic —
         [freeze]/[epoch] read it from arbitrary domains without the
         lock to detect a reentrant call from the journal hook (the
         storage engine's auto-checkpoint) instead of deadlocking on
         the non-reentrant mutex. *)
  mutable epoch : int;
  mutable frozen : Read_view.t option;
}

let set_journal t hook = t.journal <- hook
let emit t m = match t.journal with None -> () | Some hook -> hook m

(* Run a mutation under the writer lock: publish a new epoch and drop
   the cached view so the next [freeze] sees the new state. Journal
   hooks fire inside the critical section — the storage engine's WAL
   append stays ordered with the mutation it records. *)
let self_id () = (Domain.self () :> int)

let mutate t f =
  Mutex.lock t.writer;
  Atomic.set t.writer_holder (self_id ());
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.writer_holder (-1);
      Mutex.unlock t.writer)
    (fun () ->
      t.epoch <- t.epoch + 1;
      t.frozen <- None;
      f ())

let page_header = 24
let row_tuple_header = 24 (* row-format shadow: full header + null bitmap *)
let col_tuple_header = 8 (* columnar tuple: visibility word only *)
let line_pointer = 4
let maxalign n = (n + 7) land lnot 7

let create pager ~name ~schema =
  {
    name;
    schema;
    pager;
    heap_rel = Pager.make_rel pager ~name:(name ^ ".heap");
    cols =
      Array.map
        (fun (_ : Schema.column) -> { dict = Column_dict.create (); ids = Stdx.Vec.create () })
        (Schema.columns schema);
    live = Stdx.Vec.create ();
    row_pages = Stdx.Vec.create ();
    row_sizes = Stdx.Vec.create ();
    n_dead = 0;
    cur_page = 0;
    cur_fill = 0;
    data_bytes = 0;
    live_bytes = 0;
    rm_cur_page = 0;
    rm_cur_fill = 0;
    rm_data_bytes = 0;
    indexes = Hashtbl.create 4;
    journal = None;
    writer = Mutex.create ();
    writer_holder = Atomic.make (-1);
    epoch = 0;
    frozen = None;
  }

let name t = t.name
let schema t = t.schema
let pager t = t.pager
let n_cols t = Array.length t.cols

(* Logical (row-format) tuple size — unchanged from the row-storage
   engine: read/transfer charges and the row-model shadow accounting
   both use it, so simulated query costs do not depend on the physical
   layout. *)
let tuple_bytes schema row =
  let data = Array.fold_left (fun acc v -> acc + Value.heap_bytes v) 0 row in
  let null_bitmap = if Array.exists (fun v -> v = Value.Null) row then (Schema.arity schema + 7) / 8 else 0 in
  row_tuple_header + line_pointer + maxalign (data + null_bitmap)

let row_count t = Stdx.Vec.length t.live
let live_count t = row_count t - t.n_dead
let is_live t id = Stdx.Vec.get t.live id

(* Shared sentinel for vacuumed-away tuples: physical identity
   distinguishes it from any real row (all empty arrays are the same
   atom, but no live materialized row of a non-empty schema is empty). *)
let reclaimed : Value.t array = [||]

let is_reclaimed_slot t id = n_cols t > 0 && Stdx.Vec.get t.cols.(0).ids id < 0

let value_at t c id = Column_dict.get t.cols.(c).dict (Stdx.Vec.get t.cols.(c).ids id)

let peek_row t id =
  ignore (Stdx.Vec.get t.live id : bool) (* bound-check even for 0-column schemas *);
  if n_cols t = 0 || is_reclaimed_slot t id then reclaimed
  else Array.init (n_cols t) (fun c -> value_at t c id)

(* Heap bookkeeping shared by insert and insert_batch: dictionary
   interning, page assignment, per-slot vec pushes. Index maintenance
   is the caller's job (the batch path resolves index column positions
   once for the whole batch). *)
let append_row t row =
  let widths = ref 0 in
  Array.iteri
    (fun c v ->
      let col = t.cols.(c) in
      let did = Column_dict.intern col.dict v in
      Stdx.Vec.push col.ids did;
      (* Interned columns store an id per tuple (the value lives in the
         dictionary); raw-mode columns store the value inline. *)
      widths :=
        !widths
        + (if Column_dict.is_accounted col.dict did then Column_dict.id_width col.dict
           else Value.heap_bytes v))
    row;
  let bytes = col_tuple_header + line_pointer + maxalign !widths in
  let usable = (Pager.config t.pager).page_size - page_header in
  if t.cur_fill + bytes > usable && t.cur_fill > 0 then begin
    t.cur_page <- t.cur_page + 1;
    t.cur_fill <- 0
  end;
  t.cur_fill <- t.cur_fill + bytes;
  t.data_bytes <- t.data_bytes + bytes;
  t.live_bytes <- t.live_bytes + bytes;
  let rm = tuple_bytes t.schema row in
  if t.rm_cur_fill + rm > usable && t.rm_cur_fill > 0 then begin
    t.rm_cur_page <- t.rm_cur_page + 1;
    t.rm_cur_fill <- 0
  end;
  t.rm_cur_fill <- t.rm_cur_fill + rm;
  t.rm_data_bytes <- t.rm_data_bytes + rm;
  let id = Stdx.Vec.length t.live in
  Stdx.Vec.push t.row_pages t.cur_page;
  Stdx.Vec.push t.row_sizes bytes;
  Stdx.Vec.push t.live true;
  id

(* Index column positions, resolved once per call instead of once per
   row per index. *)
let index_positions t =
  Hashtbl.fold (fun col idx acc -> (Schema.column_index t.schema col, idx) :: acc) t.indexes []

let insert_unlocked t row =
  let id = append_row t row in
  Hashtbl.iter
    (fun col idx -> Table_index.insert idx row.(Schema.column_index t.schema col) id)
    t.indexes;
  (* Materialized from the dictionaries, not the caller's array: the
     hook may retain it. *)
  emit t (Journal.Inserted { table = t.name; row = peek_row t id });
  id

let insert t row =
  (match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Table.insert(%s): %s" t.name e));
  mutate t (fun () -> insert_unlocked t row)

let insert_batch t rows =
  Array.iteri
    (fun i row ->
      match Schema.validate_row t.schema row with
      | Ok () -> ()
      | Error e -> invalid_arg (Printf.sprintf "Table.insert_batch(%s): row %d: %s" t.name i e))
    rows;
  mutate t @@ fun () ->
  let positions = index_positions t in
  let first = Stdx.Vec.length t.live in
  Array.iter
    (fun row ->
      let id = append_row t row in
      List.iter (fun (pos, idx) -> Table_index.insert idx row.(pos) id) positions)
    rows;
  if Array.length rows > 0 then
    emit t
      (Journal.Inserted_batch
         {
           table = t.name;
           rows = Array.init (Array.length rows) (fun i -> peek_row t (first + i));
         });
  first

let delete_unlocked t id =
  if Stdx.Vec.get t.live id then begin
    Stdx.Vec.set t.live id false;
    t.n_dead <- t.n_dead + 1;
    (* Dead tuples keep their heap storage (and dictionary references)
       until vacuum, but stop counting toward the live-byte totals that
       [avg_row_bytes] reports. *)
    t.live_bytes <- t.live_bytes - Stdx.Vec.get t.row_sizes id;
    emit t (Journal.Deleted { table = t.name; id });
    true
  end
  else false

let delete t id = mutate t (fun () -> delete_unlocked t id)

let row_page t id = Stdx.Vec.get t.row_pages id

let read_row t id =
  let row = peek_row t id in
  Pager.touch t.pager t.heap_rel (row_page t id);
  Pager.charge_rows t.pager 1;
  Pager.charge_transfer t.pager (tuple_bytes t.schema row);
  row

let scan t f =
  let n = row_count t in
  let last_page = ref (-1) in
  for id = 0 to n - 1 do
    (* Dead tuples still cost a page visit (they occupy the heap until
       vacuumed) but are not surfaced. *)
    let page = Stdx.Vec.get t.row_pages id in
    if page <> !last_page then begin
      Pager.touch t.pager t.heap_rel page;
      last_page := page
    end;
    if Stdx.Vec.get t.live id then f id (peek_row t id)
  done;
  Pager.charge_rows t.pager n

let update t id row =
  if not (Stdx.Vec.get t.live id) then
    invalid_arg (Printf.sprintf "Table.update(%s): row %d is dead" t.name id);
  (match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Table.update(%s): %s" t.name e));
  mutate t @@ fun () ->
  ignore (delete_unlocked t id);
  insert_unlocked t row

let vacuum t =
  mutate t @@ fun () ->
  if t.n_dead > 0 then begin
    let positions = index_positions t in
    let n = row_count t in
    (* 1. Drop dead tuples: index entries first (while the key values
       are still readable through the old dictionaries), then release
       their dictionary references. *)
    for id = 0 to n - 1 do
      if (not (Stdx.Vec.get t.live id)) && not (is_reclaimed_slot t id) then begin
        List.iter (fun (pos, idx) -> Table_index.remove idx (value_at t pos id) id) positions;
        Array.iter (fun col -> Column_dict.release col.dict (Stdx.Vec.get col.ids id)) t.cols
      end
    done;
    (* 2. Reclaim dictionary space: entries whose last reference just
       went away become holes. Copy-on-write — frozen views keep the
       old entries backing, and surviving ids are never remapped. *)
    Array.iter (fun col -> Column_dict.vacuum col.dict) t.cols;
    (* 3. Repack the heap: reassign pages over live tuples only, into
       fresh vectors so frozen views keep the old backings. Row ids are
       stable (dead ids remain, marked reclaimed); a dead id inherits
       the current page so scans touch no extra pages on its account.
       Live tuples keep the physical size recorded at insert. *)
    let ids' = Array.map (fun _ -> Stdx.Vec.create ()) t.cols in
    let pages' = Stdx.Vec.create () in
    let sizes' = Stdx.Vec.create () in
    t.cur_page <- 0;
    t.cur_fill <- 0;
    t.data_bytes <- 0;
    t.live_bytes <- 0;
    t.rm_cur_page <- 0;
    t.rm_cur_fill <- 0;
    t.rm_data_bytes <- 0;
    let usable = (Pager.config t.pager).page_size - page_header in
    for id = 0 to n - 1 do
      if Stdx.Vec.get t.live id then begin
        let bytes = Stdx.Vec.get t.row_sizes id in
        if t.cur_fill + bytes > usable && t.cur_fill > 0 then begin
          t.cur_page <- t.cur_page + 1;
          t.cur_fill <- 0
        end;
        t.cur_fill <- t.cur_fill + bytes;
        t.data_bytes <- t.data_bytes + bytes;
        t.live_bytes <- t.live_bytes + bytes;
        let rm = tuple_bytes t.schema (peek_row t id) in
        if t.rm_cur_fill + rm > usable && t.rm_cur_fill > 0 then begin
          t.rm_cur_page <- t.rm_cur_page + 1;
          t.rm_cur_fill <- 0
        end;
        t.rm_cur_fill <- t.rm_cur_fill + rm;
        t.rm_data_bytes <- t.rm_data_bytes + rm;
        Array.iteri (fun c col -> Stdx.Vec.push ids'.(c) (Stdx.Vec.get col.ids id)) t.cols;
        Stdx.Vec.push sizes' bytes
      end
      else begin
        Array.iter (fun v -> Stdx.Vec.push v (-1)) ids';
        Stdx.Vec.push sizes' 0
      end;
      Stdx.Vec.push pages' t.cur_page
    done;
    Array.iteri (fun c col -> col.ids <- ids'.(c)) t.cols;
    t.row_pages <- pages';
    t.row_sizes <- sizes';
    emit t (Journal.Vacuumed { table = t.name })
  end

let create_index ?(kind = Table_index.Btree) t ~column =
  mutate t @@ fun () ->
  match Hashtbl.find_opt t.indexes column with
  | Some idx -> idx
  | None ->
      let col_pos = Schema.column_index t.schema column in
      let idx = Table_index.create kind t.pager ~name:(t.name ^ "." ^ column ^ ".idx") in
      for id = 0 to row_count t - 1 do
        (* Dead-but-unvacuumed tuples are indexed (as live tables do);
           reclaimed slots have no values to index. *)
        if not (is_reclaimed_slot t id) then Table_index.insert idx (value_at t col_pos id) id
      done;
      Hashtbl.replace t.indexes column idx;
      emit t (Journal.Created_index { table = t.name; column; kind });
      idx

let index_on t ~column = Hashtbl.find_opt t.indexes column
let indexes t = Hashtbl.fold (fun _ idx acc -> idx :: acc) t.indexes []

(* Storage accounting: tuple pages plus the pages the resident column
   dictionaries occupy. Query-cost page touches model only the tuple
   pages — dictionary pages are hot by construction (every materialize
   hits them), matching the all-in-memory dictionaries of EncDBDB. *)

let dict_overhead_bytes t =
  Array.fold_left (fun acc col -> acc + Column_dict.overhead_bytes col.dict) 0 t.cols

let page_size t = (Pager.config t.pager).page_size
let tuple_pages t = if t.data_bytes = 0 then 0 else t.cur_page + 1

let dict_pages t =
  let b = dict_overhead_bytes t in
  (b + page_size t - 1) / page_size t

let heap_pages t = tuple_pages t + dict_pages t
let heap_bytes t = heap_pages t * page_size t
let index_bytes t = Hashtbl.fold (fun _ idx acc -> acc + Table_index.size_bytes idx) t.indexes 0
let total_bytes t = heap_bytes t + index_bytes t

let avg_row_bytes t =
  if live_count t = 0 then 0.0 else float_of_int t.live_bytes /. float_of_int (live_count t)

let row_model_pages t = if t.rm_data_bytes = 0 then 0 else t.rm_cur_page + 1
let row_model_bytes t = row_model_pages t * page_size t

type column_stats = {
  st_column : string;
  st_rows : int;
  st_distinct : int;
  st_interned : bool;
  st_dict_bytes : int;
  st_ids_bytes : int;
  st_plain_bytes : int;
}

type storage_stats = {
  st_columns : column_stats array;
  st_heap_pages : int;
  st_heap_bytes : int;
  st_row_model_pages : int;
  st_row_model_bytes : int;
}

let storage_stats t =
  let n = row_count t in
  let st_columns =
    Array.mapi
      (fun c (sc : Schema.column) ->
        let col = t.cols.(c) in
        let rows = ref 0 and ids_bytes = ref 0 and plain_bytes = ref 0 in
        let w = Column_dict.id_width col.dict in
        for id = 0 to n - 1 do
          let did = Stdx.Vec.get col.ids id in
          if did >= 0 then begin
            incr rows;
            let v = Column_dict.get col.dict did in
            plain_bytes := !plain_bytes + Value.heap_bytes v;
            ids_bytes :=
              !ids_bytes
              + (if Column_dict.is_accounted col.dict did then w else Value.heap_bytes v)
          end
        done;
        {
          st_column = sc.Schema.name;
          st_rows = !rows;
          st_distinct = Column_dict.live_entries col.dict;
          st_interned = Column_dict.intern_on col.dict;
          st_dict_bytes = Column_dict.overhead_bytes col.dict;
          st_ids_bytes = !ids_bytes;
          st_plain_bytes = !plain_bytes;
        })
      (Schema.columns t.schema)
  in
  {
    st_columns;
    st_heap_pages = heap_pages t;
    st_heap_bytes = heap_bytes t;
    st_row_model_pages = row_model_pages t;
    st_row_model_bytes = row_model_bytes t;
  }

let epoch t =
  if Atomic.get t.writer_holder = self_id () then t.epoch
  else begin
    Mutex.lock t.writer;
    let e = t.epoch in
    Mutex.unlock t.writer;
    e
  end

let build_view t =
  let n = row_count t in
  let cols =
    Array.map
      (fun col ->
        let ids, _ = Stdx.Vec.backing col.ids in
        { Read_view.dict = Column_dict.freeze col.dict; ids })
      t.cols
  in
  let row_pages, _ = Stdx.Vec.backing t.row_pages in
  let row_sizes, _ = Stdx.Vec.backing t.row_sizes in
  Read_view.make ~epoch:t.epoch ~name:t.name ~schema:t.schema ~pager:t.pager ~heap_rel:t.heap_rel
    ~cols ~n
    ~live:(Array.init n (Stdx.Vec.get t.live))
    ~row_pages ~row_sizes ~n_dead:t.n_dead ~cur_page:t.cur_page ~cur_fill:t.cur_fill
    ~data_bytes:t.data_bytes ~live_bytes:t.live_bytes ~rm_cur_page:t.rm_cur_page
    ~rm_cur_fill:t.rm_cur_fill ~rm_data_bytes:t.rm_data_bytes
    ~dict_overhead_bytes:(dict_overhead_bytes t) ~reclaimed
    ~row_bytes:(fun row -> tuple_bytes t.schema row)
    ~indexes:
      (Hashtbl.fold (fun col idx acc -> (col, Table_index.freeze idx) :: acc) t.indexes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* Publish the current epoch as an immutable read view. Cached: the
   copy (one visibility bitmap plus index freezes — the columnar
   storage itself is shared by pointer, see Read_view) happens at most
   once per epoch, and only when a reader actually asks. *)
let freeze t =
  if Atomic.get t.writer_holder = self_id () then
    (* Reentrant call from inside this domain's own mutation — the
       journal hook triggering the storage engine's auto-checkpoint.
       Each hook fires right after its mutation is applied, so the
       state is exactly the WAL prefix through the record being
       logged. Skip the cache: a compound mutation (update = delete +
       insert) may not be finished, so this view must not be served to
       later same-epoch readers. *)
    build_view t
  else begin
    Mutex.lock t.writer;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) @@ fun () ->
    match t.frozen with
    | Some v -> v
    | None ->
        let v = build_view t in
        t.frozen <- Some v;
        v
  end

(* Physical snapshot: the exact columnar heap state, including
   tombstones, vacuum holes and dictionary contents, so a restored
   table is byte-identical — same row ids, dictionary ids, page
   assignment and accounting — even after vacuums that a logical
   replay could not reproduce. *)

type column_snapshot = {
  cs_entries : (Value.t * bool) option array;
      (* dictionary slots in id order; [None] = hole, bool = dictionary-accounted *)
  cs_appends : int;
  cs_intern_on : bool;
  cs_ids : int array;  (* dictionary id per heap slot; -1 = reclaimed *)
}

type snapshot = {
  s_name : string;
  s_schema : Schema.t;
  s_cols : column_snapshot array;
  s_live : bool array;
  s_row_pages : int array;
  s_row_sizes : int array;
  s_cur_page : int;
  s_cur_fill : int;
  s_data_bytes : int;
  s_live_bytes : int;
  s_rm_cur_page : int;
  s_rm_cur_fill : int;
  s_rm_data_bytes : int;
  s_indexes : (string * Table_index.kind) list;
}

(* Serialize a frozen view. Runs entirely off the writer lock, so a
   checkpoint can serialize a multi-second snapshot while writers (and
   other readers) proceed against newer epochs. *)
let snapshot_of_view v =
  let n = Read_view.row_count v in
  {
    s_name = Read_view.name v;
    s_schema = Read_view.schema v;
    s_cols =
      Array.init (Read_view.n_cols v) (fun c ->
          let d = Read_view.dict v ~col:c in
          {
            cs_entries = Array.init (Column_dict.frozen_len d) (Column_dict.frozen_entry d);
            cs_appends = Column_dict.frozen_appends d;
            cs_intern_on = Column_dict.frozen_intern_on d;
            cs_ids = Array.init n (Read_view.col_id v ~col:c);
          });
    s_live = Array.init n (Read_view.is_live v);
    s_row_pages = Array.init n (Read_view.row_page v);
    s_row_sizes = Array.init n (Read_view.row_size v);
    s_cur_page = Read_view.cur_page v;
    s_cur_fill = Read_view.cur_fill v;
    s_data_bytes = Read_view.data_bytes v;
    s_live_bytes = Read_view.live_bytes v;
    s_rm_cur_page = Read_view.rm_cur_page v;
    s_rm_cur_fill = Read_view.rm_cur_fill v;
    s_rm_data_bytes = Read_view.rm_data_bytes v;
    s_indexes = List.map (fun (col, idx) -> (col, Table_index.kind idx)) (Read_view.indexes v);
  }

let snapshot t = snapshot_of_view (freeze t)

let of_snapshot pager s =
  let t = create pager ~name:s.s_name ~schema:s.s_schema in
  let n = Array.length s.s_live in
  (* Dictionaries first (reference counts rebuilt from the heap slots
     below), then the heap vectors verbatim. *)
  Array.iteri
    (fun c cs ->
      let col = t.cols.(c) in
      col.dict <-
        Column_dict.of_entries ~appends:cs.cs_appends ~intern_on:cs.cs_intern_on cs.cs_entries;
      col.ids <- Stdx.Vec.of_array cs.cs_ids;
      Array.iter (fun did -> if did >= 0 then Column_dict.addref col.dict did) cs.cs_ids)
    s.s_cols;
  let n_dead = ref 0 in
  for id = 0 to n - 1 do
    Stdx.Vec.push t.live s.s_live.(id);
    Stdx.Vec.push t.row_pages s.s_row_pages.(id);
    Stdx.Vec.push t.row_sizes s.s_row_sizes.(id);
    if not s.s_live.(id) then incr n_dead
  done;
  t.n_dead <- !n_dead;
  t.cur_page <- s.s_cur_page;
  t.cur_fill <- s.s_cur_fill;
  t.data_bytes <- s.s_data_bytes;
  t.live_bytes <- s.s_live_bytes;
  t.rm_cur_page <- s.s_rm_cur_page;
  t.rm_cur_fill <- s.s_rm_cur_fill;
  t.rm_data_bytes <- s.s_rm_data_bytes;
  (* Rebuild indexes directly: dead-but-unvacuumed tuples keep their
     entries (as live tables do), reclaimed slots have none. Bypasses
     [create_index] so no journal events fire during restore. *)
  List.iter
    (fun (column, kind) ->
      let col_pos = Schema.column_index t.schema column in
      let idx = Table_index.create kind t.pager ~name:(t.name ^ "." ^ column ^ ".idx") in
      for id = 0 to n - 1 do
        if not (is_reclaimed_slot t id) then Table_index.insert idx (value_at t col_pos id) id
      done;
      Hashtbl.replace t.indexes column idx)
    s.s_indexes;
  t
