(* lint: guarded-by writer *)
type t = {
  name : string;
  schema : Schema.t;
  pager : Pager.t;
  heap_rel : Pager.rel;
  rows : Value.t array Stdx.Vec.t;
  row_pages : int Stdx.Vec.t;
  live : bool Stdx.Vec.t;
  mutable n_dead : int;
  mutable cur_page : int;
  mutable cur_fill : int; (* bytes used on the current heap page *)
  mutable data_bytes : int; (* logical tuple bytes, for avg_row_bytes *)
  indexes : (string, Table_index.t) Hashtbl.t;
  mutable journal : Journal.hook option;
  (* Epoch-based copy-on-write reads: every mutation runs under
     [writer], bumps [epoch] and invalidates the cached frozen view;
     [freeze] rebuilds it at most once per epoch. Readers work against
     the returned [Read_view.t] without taking any lock. *)
  writer : Mutex.t;
  mutable writer_holder : int;
      (* Domain id currently inside [mutate], -1 when free. Lets
         [freeze]/[epoch] detect a reentrant call from the journal hook
         (the storage engine's auto-checkpoint) instead of deadlocking
         on the non-reentrant mutex. *)
  mutable epoch : int;
  mutable frozen : Read_view.t option;
}

let set_journal t hook = t.journal <- hook
let emit t m = match t.journal with None -> () | Some hook -> hook m

(* Run a mutation under the writer lock: publish a new epoch and drop
   the cached view so the next [freeze] sees the new state. Journal
   hooks fire inside the critical section — the storage engine's WAL
   append stays ordered with the mutation it records. *)
let self_id () = (Domain.self () :> int)

let mutate t f =
  Mutex.lock t.writer;
  t.writer_holder <- self_id ();
  Fun.protect
    ~finally:(fun () ->
      t.writer_holder <- -1;
      Mutex.unlock t.writer)
    (fun () ->
      t.epoch <- t.epoch + 1;
      t.frozen <- None;
      f ())

let page_header = 24
let tuple_header = 24
let line_pointer = 4
let maxalign n = (n + 7) land lnot 7

let create pager ~name ~schema =
  {
    name;
    schema;
    pager;
    heap_rel = Pager.make_rel pager ~name:(name ^ ".heap");
    rows = Stdx.Vec.create ();
    row_pages = Stdx.Vec.create ();
    live = Stdx.Vec.create ();
    n_dead = 0;
    cur_page = 0;
    cur_fill = 0;
    data_bytes = 0;
    indexes = Hashtbl.create 4;
    journal = None;
    writer = Mutex.create ();
    writer_holder = -1;
    epoch = 0;
    frozen = None;
  }

let name t = t.name
let schema t = t.schema
let pager t = t.pager

let tuple_bytes schema row =
  let data = Array.fold_left (fun acc v -> acc + Value.heap_bytes v) 0 row in
  let null_bitmap = if Array.exists (fun v -> v = Value.Null) row then (Schema.arity schema + 7) / 8 else 0 in
  tuple_header + line_pointer + maxalign (data + null_bitmap)

(* Heap bookkeeping shared by insert and insert_batch: page assignment,
   row/live/page vec pushes. Index maintenance is the caller's job (the
   batch path resolves index column positions once for the whole
   batch). *)
let append_row t row =
  let bytes = tuple_bytes t.schema row in
  let usable = (Pager.config t.pager).page_size - page_header in
  if t.cur_fill + bytes > usable && t.cur_fill > 0 then begin
    t.cur_page <- t.cur_page + 1;
    t.cur_fill <- 0
  end;
  t.cur_fill <- t.cur_fill + bytes;
  t.data_bytes <- t.data_bytes + bytes;
  let id = Stdx.Vec.length t.rows in
  Stdx.Vec.push t.rows (Array.copy row);
  Stdx.Vec.push t.row_pages t.cur_page;
  Stdx.Vec.push t.live true;
  id

(* Index column positions, resolved once per call instead of once per
   row per index. *)
let index_positions t =
  Hashtbl.fold (fun col idx acc -> (Schema.column_index t.schema col, idx) :: acc) t.indexes []

let insert_unlocked t row =
  let id = append_row t row in
  Hashtbl.iter
    (fun col idx -> Table_index.insert idx row.(Schema.column_index t.schema col) id)
    t.indexes;
  (* The stored copy, not the caller's array: the hook may retain it. *)
  emit t (Journal.Inserted { table = t.name; row = Stdx.Vec.get t.rows id });
  id

let insert t row =
  (match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Table.insert(%s): %s" t.name e));
  mutate t (fun () -> insert_unlocked t row)

let insert_batch t rows =
  Array.iteri
    (fun i row ->
      match Schema.validate_row t.schema row with
      | Ok () -> ()
      | Error e -> invalid_arg (Printf.sprintf "Table.insert_batch(%s): row %d: %s" t.name i e))
    rows;
  mutate t @@ fun () ->
  let positions = index_positions t in
  let first = Stdx.Vec.length t.rows in
  Array.iter
    (fun row ->
      let id = append_row t row in
      List.iter (fun (pos, idx) -> Table_index.insert idx row.(pos) id) positions)
    rows;
  if Array.length rows > 0 then
    emit t
      (Journal.Inserted_batch
         {
           table = t.name;
           rows = Array.init (Array.length rows) (fun i -> Stdx.Vec.get t.rows (first + i));
         });
  first

let row_count t = Stdx.Vec.length t.rows
let live_count t = row_count t - t.n_dead
let is_live t id = Stdx.Vec.get t.live id

let delete_unlocked t id =
  if Stdx.Vec.get t.live id then begin
    Stdx.Vec.set t.live id false;
    t.n_dead <- t.n_dead + 1;
    emit t (Journal.Deleted { table = t.name; id });
    true
  end
  else false

let delete t id = mutate t (fun () -> delete_unlocked t id)

let peek_row t id = Stdx.Vec.get t.rows id

let row_page t id = Stdx.Vec.get t.row_pages id

let read_row t id =
  let row = peek_row t id in
  Pager.touch t.pager t.heap_rel (row_page t id);
  Pager.charge_rows t.pager 1;
  Pager.charge_transfer t.pager (tuple_bytes t.schema row);
  row

let scan t f =
  let n = Stdx.Vec.length t.rows in
  let last_page = ref (-1) in
  for id = 0 to n - 1 do
    (* Dead tuples still cost a page visit (they occupy the heap until
       vacuumed) but are not surfaced. *)
    let page = Stdx.Vec.get t.row_pages id in
    if page <> !last_page then begin
      Pager.touch t.pager t.heap_rel page;
      last_page := page
    end;
    if Stdx.Vec.get t.live id then f id (Stdx.Vec.get t.rows id)
  done;
  Pager.charge_rows t.pager n

let update t id row =
  if not (Stdx.Vec.get t.live id) then
    invalid_arg (Printf.sprintf "Table.update(%s): row %d is dead" t.name id);
  (match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Table.update(%s): %s" t.name e));
  mutate t @@ fun () ->
  ignore (delete_unlocked t id);
  insert_unlocked t row

(* Shared sentinel for vacuumed-away tuples: physical identity
   distinguishes it from any real (possibly empty) row. *)
let reclaimed : Value.t array = [||]

let vacuum t =
  mutate t @@ fun () ->
  if t.n_dead > 0 then begin
    let positions = index_positions t in
    let n = Stdx.Vec.length t.rows in
    (* 1. Drop dead tuples: index entries first (while the key values
       are still readable), then the heap storage itself. *)
    for id = 0 to n - 1 do
      if not (Stdx.Vec.get t.live id) then begin
        let row = Stdx.Vec.get t.rows id in
        if row != reclaimed then begin
          List.iter (fun (pos, idx) -> Table_index.remove idx row.(pos) id) positions;
          Stdx.Vec.set t.rows id reclaimed
        end
      end
    done;
    (* 2. Repack the heap: reassign pages over live tuples only. Row
       ids are stable (dead ids remain, pointing at [reclaimed]); a
       dead id inherits the current page so scans touch no extra
       pages on its account. *)
    t.cur_page <- 0;
    t.cur_fill <- 0;
    t.data_bytes <- 0;
    let usable = (Pager.config t.pager).page_size - page_header in
    for id = 0 to n - 1 do
      if Stdx.Vec.get t.live id then begin
        let bytes = tuple_bytes t.schema (Stdx.Vec.get t.rows id) in
        if t.cur_fill + bytes > usable && t.cur_fill > 0 then begin
          t.cur_page <- t.cur_page + 1;
          t.cur_fill <- 0
        end;
        t.cur_fill <- t.cur_fill + bytes;
        t.data_bytes <- t.data_bytes + bytes
      end;
      Stdx.Vec.set t.row_pages id t.cur_page
    done;
    emit t (Journal.Vacuumed { table = t.name })
  end

let create_index ?(kind = Table_index.Btree) t ~column =
  mutate t @@ fun () ->
  match Hashtbl.find_opt t.indexes column with
  | Some idx -> idx
  | None ->
      let col_pos = Schema.column_index t.schema column in
      let idx = Table_index.create kind t.pager ~name:(t.name ^ "." ^ column ^ ".idx") in
      Stdx.Vec.iteri (fun id row -> Table_index.insert idx row.(col_pos) id) t.rows;
      Hashtbl.replace t.indexes column idx;
      emit t (Journal.Created_index { table = t.name; column; kind });
      idx

let index_on t ~column = Hashtbl.find_opt t.indexes column
let indexes t = Hashtbl.fold (fun _ idx acc -> idx :: acc) t.indexes []

let heap_pages t = if t.data_bytes = 0 then 0 else t.cur_page + 1
let heap_bytes t = heap_pages t * (Pager.config t.pager).page_size
let index_bytes t = Hashtbl.fold (fun _ idx acc -> acc + Table_index.size_bytes idx) t.indexes 0
let total_bytes t = heap_bytes t + index_bytes t

let avg_row_bytes t =
  if live_count t = 0 then 0.0 else float_of_int t.data_bytes /. float_of_int (live_count t)

let epoch t =
  if t.writer_holder = self_id () then t.epoch
  else begin
    Mutex.lock t.writer;
    let e = t.epoch in
    Mutex.unlock t.writer;
    e
  end

let build_view t =
  let n = Stdx.Vec.length t.rows in
  Read_view.make ~epoch:t.epoch ~name:t.name ~schema:t.schema ~pager:t.pager ~heap_rel:t.heap_rel
    ~rows:(Array.init n (Stdx.Vec.get t.rows))
    ~live:(Array.init n (Stdx.Vec.get t.live))
    ~row_pages:(Array.init n (Stdx.Vec.get t.row_pages))
    ~n_dead:t.n_dead ~cur_page:t.cur_page ~cur_fill:t.cur_fill ~data_bytes:t.data_bytes
    ~reclaimed
    ~row_bytes:(fun row -> tuple_bytes t.schema row)
    ~indexes:
      (Hashtbl.fold (fun col idx acc -> (col, Table_index.freeze idx) :: acc) t.indexes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* Publish the current epoch as an immutable read view. Cached: the
   O(n) copy (plus index freezes) happens at most once per epoch, and
   only when a reader actually asks. Row arrays are shared by pointer —
   the table never mutates a stored row in place — so "copy-on-write"
   costs one pointer array, two scalar arrays and the index copies. *)
let freeze t =
  if t.writer_holder = self_id () then
    (* Reentrant call from inside this domain's own mutation — the
       journal hook triggering the storage engine's auto-checkpoint.
       Each hook fires right after its mutation is applied, so the
       state is exactly the WAL prefix through the record being
       logged. Skip the cache: a compound mutation (update = delete +
       insert) may not be finished, so this view must not be served to
       later same-epoch readers. *)
    build_view t
  else begin
    Mutex.lock t.writer;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) @@ fun () ->
    match t.frozen with
    | Some v -> v
    | None ->
        let v = build_view t in
        t.frozen <- Some v;
        v
  end

(* Physical snapshot: the exact heap state, including tombstones and
   vacuum holes, so a restored table is byte-identical — same row ids,
   same page assignment — even after vacuums that a logical replay
   could not reproduce. *)

type snapshot = {
  s_name : string;
  s_schema : Schema.t;
  s_rows : Value.t array option array;  (* [None] = vacuum-reclaimed slot *)
  s_live : bool array;
  s_row_pages : int array;
  s_cur_page : int;
  s_cur_fill : int;
  s_data_bytes : int;
  s_indexes : (string * Table_index.kind) list;
}

(* Serialize a frozen view. Runs entirely off the writer lock, so a
   checkpoint can serialize a multi-second snapshot while writers (and
   other readers) proceed against newer epochs. *)
let snapshot_of_view v =
  let n = Read_view.row_count v in
  {
    s_name = Read_view.name v;
    s_schema = Read_view.schema v;
    s_rows =
      Array.init n (fun id ->
          if Read_view.is_reclaimed v id then None
          else Some (Array.copy (Read_view.peek_row v id)));
    s_live = Array.init n (Read_view.is_live v);
    s_row_pages = Array.init n (Read_view.row_page v);
    s_cur_page = Read_view.cur_page v;
    s_cur_fill = Read_view.cur_fill v;
    s_data_bytes = Read_view.data_bytes v;
    s_indexes = List.map (fun (col, idx) -> (col, Table_index.kind idx)) (Read_view.indexes v);
  }

let snapshot t = snapshot_of_view (freeze t)

let of_snapshot pager s =
  let t = create pager ~name:s.s_name ~schema:s.s_schema in
  let n = Array.length s.s_rows in
  let n_dead = ref 0 in
  for id = 0 to n - 1 do
    Stdx.Vec.push t.rows
      (match s.s_rows.(id) with Some row -> Array.copy row | None -> reclaimed);
    Stdx.Vec.push t.row_pages s.s_row_pages.(id);
    Stdx.Vec.push t.live s.s_live.(id);
    if not s.s_live.(id) then incr n_dead
  done;
  t.n_dead <- !n_dead;
  t.cur_page <- s.s_cur_page;
  t.cur_fill <- s.s_cur_fill;
  t.data_bytes <- s.s_data_bytes;
  (* Rebuild indexes directly: dead-but-unvacuumed tuples keep their
     entries (as live tables do), reclaimed slots have none. Bypasses
     [create_index] so no journal events fire during restore. *)
  List.iter
    (fun (column, kind) ->
      let col_pos = Schema.column_index t.schema column in
      let idx = Table_index.create kind t.pager ~name:(t.name ^ "." ^ column ^ ".idx") in
      Array.iteri
        (fun id r -> match r with Some row -> Table_index.insert idx row.(col_pos) id | None -> ())
        s.s_rows;
      Hashtbl.replace t.indexes column idx)
    s.s_indexes;
  t
