(** Query planner and executor.

    Implements the two query shapes of the paper's evaluation:
    - [SELECT ID FROM t WHERE …] — answered from indexes alone when the
      predicate allows (an index-only scan; "these queries only require
      that the DBMS scan the indexes", §VI-B);
    - [SELECT * FROM t WHERE …] — additionally fetches each matching
      row from its heap page and charges transfer bytes.

    Planning: an [Eq]/[In] predicate over an indexed column becomes an
    index (multi-)lookup; a conjunction uses the first indexable leg
    and filters the rest; a disjunction whose legs are all indexable
    becomes a deduplicated union of index lookups (the WRE proxy's
    server-side OR of tag IN-lists); anything else is a sequential
    scan.

    Every run feeds the process-wide [Obs.Metrics] registry (plan
    counts, candidate/returned rows, a wall-time histogram) and, when
    tracing is on, emits an [executor.run] span with an
    [executor.plan] event. *)

type projection =
  | Row_ids  (** SELECT ID *)
  | All_columns  (** SELECT * *)

type plan_kind =
  | Index_scan of string
  | Or_index_scan of string list
      (** union of per-leg index lookups, one column per OR leg *)
  | Range_traverse of string
      (** ESEDS boundary-tree walk probing the named rtag column *)
  | Seq_scan

type result = {
  row_ids : int array;
  rows : Value.t array array;  (** empty for [Row_ids] *)
  plan : plan_kind;
  wall_ns : float;  (** measured executor time *)
  stats : Pager.stats;  (** pager-counter delta for this query *)
}

val explain : Table.t -> Predicate.t -> plan_kind
(** The plan that {!run} would choose, without executing. *)

val run : Table.t -> projection:projection -> Predicate.t -> result

val run_join :
  ?pool:Stdx.Task_pool.t ->
  left:Read_view.t ->
  right:Read_view.t ->
  on_left:string ->
  on_right:string ->
  Join.spec ->
  Join.result
(** The two-table join plan (see {!Join} for modes and contracts):
    [Equi] hash-joins on value equality, [Buckets] runs the tag-bucket
    join of the encrypted path — per-bucket postings from both views'
    ON-column indexes, cross products fanned across [pool] in bucket
    order, candidate pairs sorted + deduplicated, byte-identical to
    the sequential run at 1 domain. *)

val run_view : ?pool:Stdx.Task_pool.t -> Read_view.t -> projection:projection -> Predicate.t -> result
(** {!run} against a frozen epoch snapshot ({!Table.freeze}), safe to
    call from any domain. When [pool] is given, the per-tag index
    probes of multi-key plans (rewritten WRE IN-lists, server-side OR
    legs) fan out across its domains; results are combined in index
    order and unions sort + dedup, so [row_ids]/[rows] are identical
    regardless of scheduling, and with no pool (or one domain) the
    execution is byte-identical to the sequential path. [stats] is this
    query's own pager delta, exact even under concurrent queries:
    probe tasks measure domain-local deltas that are summed into the
    caller's window. *)

val run_traverse :
  ?pool:Stdx.Task_pool.t ->
  Read_view.t ->
  tree:Range_tree.t ->
  tag_column:string ->
  roots:int64 array ->
  projection:projection ->
  Predicate.t ->
  result
(** The ESEDS range plan: expand each canonical-cover root of [roots]
    through [Range_tree.traverse] into leaf bucket tags, probe the
    B-tree/hash index on [tag_column] (the rtag column) for each, and
    re-check the full server predicate over the candidates. One task
    per subtree root fans across [pool]; per-root probe results are
    sorted + deduplicated and roots combine through a sort + dedup
    union, so the result is byte-identical at any domain count and to
    the flat tag IN-list plan over the same range. Unknown root
    pseudonyms expand to nothing (total, never an error); a view with
    no index on [tag_column] degrades to a filtered sequential scan.
    Feeds the [range.*] Obs counters (nodes visited, leaf probes) and
    histograms (cover roots, probes per query). *)
