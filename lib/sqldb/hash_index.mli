(** Non-unique hash index (PostgreSQL [USING hash] model).

    WRE search tags are uniformly random 64-bit integers queried only
    by equality — precisely the workload hash indexes exist for: O(1)
    bucket-page touches per probe regardless of table size, and index
    entries that store only the key's hash (fixed 8 bytes + line
    pointer) rather than the key itself. The [btree-vs-hash] ablation
    in the bench harness compares the two on tag lookups.

    Physical model: directory of bucket pages sized for ~75% fill;
    a lookup hashes the key, touches its bucket page (plus chained
    overflow pages when a bucket outgrows one page), then the executor
    fetches heap rows as usual. *)

type t

val create : Pager.t -> name:string -> t
val name : t -> string
val insert : t -> Value.t -> int -> unit

val remove : t -> Value.t -> int -> unit
(** Drop every entry mapping [key] to [id] (no-op when absent), so
    entry counts and the derived bucket-page/byte accounting shrink
    back to the live rows — the vacuum path. *)

val freeze : t -> t
(** Detached read-only copy for snapshot readers (see {!Btree_index.freeze}). *)

val lookup : t -> Value.t -> int array
(** Row ids for an equality match; touches bucket (+overflow) pages. *)

val lookup_many : t -> Value.t list -> int array
(** Union of per-key lookups, deduplicated. *)

val entry_count : t -> int
val distinct_keys : t -> int
val bucket_pages : t -> int
val size_bytes : t -> int
