(* lint: guarded-by lock — the session registry, thread lists and sid
   counter are only touched with [lock] held; cross-thread shutdown is
   signalled through the [stopping] atomic. *)

let server_name = "wre_server/1"

let m_sessions = Obs.Metrics.counter "server.sessions_total"
let m_active = Obs.Metrics.gauge "server.sessions_active"
let m_requests = Obs.Metrics.counter "server.requests_total"
let m_rejected = Obs.Metrics.counter "server.frames_rejected_total"
let m_makespan = Obs.Metrics.counter "server.batch_makespan_sim_ns_total"

type config = {
  socket_path : string;
  domains : int;
  window_ns : float;
  batch_max : int;
  backlog : int;
}

let default_config ~socket_path =
  { socket_path; domains = 4; window_ns = 1e6; batch_max = 256; backlog = 128 }

(* A job is one decoded Query plus the session's proxy; the reply is a
   ready-to-send wire response. *)
type job = Wre.Proxy.t * string

type t = {
  cfg : config;
  engine : Store.Engine.t;
  edbs : Wre.Encrypted_db.t list;  (** every encrypted table in the store; head is primary *)
  pool : Stdx.Task_pool.t;
  adm : (job, Wire.response) Admission.t;
  listener : Unix.file_descr;
  stopping : bool Atomic.t;
  lock : Mutex.t;
  sessions : (int64, Unix.file_descr) Hashtbl.t;
  mutable next_sid : int64;
  mutable accept_thread : Thread.t option;
  mutable session_threads : Thread.t list;
}

let response_of_result = function
  | Ok (q : Wre.Proxy.query_result) ->
      Wire.Result
        { Wire.columns = q.columns; rows = q.rows; affected = q.affected; server_rows = q.server_rows }
  | Error m -> Wire.Failed { message = m }

let sim_ns_of = function
  | Ok { Wre.Proxy.exec = Some e; _ } -> e.Sqldb.Executor.stats.Sqldb.Pager.sim_ns
  | Ok { Wre.Proxy.join_exec = Some j; _ } -> j.Sqldb.Join.stats.Sqldb.Pager.sim_ns
  | _ -> 0.0

(* Execute one coalesced read batch: freeze the epoch once, fan the
   queries over the pool. The modeled cost of the batch is its critical
   path — the largest per-domain sum of simulated storage nanoseconds —
   which the exp_server benchmark divides into queries/second. *)
let run_read_batch pool edbs payloads =
  (* Freeze the primary table's epoch once for the whole batch; queries
     on other tables (and joins, which freeze their own pair) fall back
     to a per-query freeze inside the proxy. *)
  let view = Wre.Encrypted_db.freeze (List.hd edbs) in
  let out =
    Stdx.Task_pool.parallel_init pool (Array.length payloads) (fun i ->
        let proxy, sql = payloads.(i) in
        let r = Wre.Proxy.execute_snapshot ~view proxy sql in
        (response_of_result r, (Domain.self () :> int), sim_ns_of r))
  in
  let busy = Hashtbl.create 8 in
  Array.iter
    (fun (_, d, s) ->
      Hashtbl.replace busy d (s +. Option.value ~default:0.0 (Hashtbl.find_opt busy d)))
    out;
  let makespan = Hashtbl.fold (fun _ s acc -> Float.max s acc) busy 0.0 in
  Obs.Metrics.add m_makespan (int_of_float makespan);
  Array.map (fun (r, _, _) -> r) out

let run_mutation (proxy, sql) =
  let r = Wre.Proxy.execute proxy sql in
  Obs.Metrics.add m_makespan (int_of_float (sim_ns_of r));
  response_of_result r

let classify sql =
  match Sqldb.Sql.parse sql with
  (* A join is one read job: it freezes its own epoch-consistent pair
     of views inside the batch, like any other snapshot read. *)
  | Ok (Sqldb.Sql.Select _ | Sqldb.Sql.Select_join _) -> Ok Admission.Read
  | Ok _ -> Ok Admission.Mutate
  | Error e -> Error e

let handle_request t sid proxy req =
  Obs.Metrics.incr m_requests;
  match req with
  | Wire.Hello _ ->
      Some
        (Wire.Welcome
           {
             session_id = sid;
             server = server_name;
             tables = Store.Engine.encrypted_names t.engine;
           })
  | Wire.Ping -> Some Wire.Pong
  | Wire.Stats -> Some (Wire.Stats_reply { text = Obs.Metrics.render () })
  | Wire.Quit -> None
  | Wire.Query { sql } ->
      Some
        (match classify sql with
        | Error e -> Wire.Failed { message = e }
        | Ok kind -> (
            match Admission.submit t.adm kind (proxy, sql) with
            | r -> r
            | exception Invalid_argument _ -> Wire.Failed { message = "server is shutting down" }))

let rec session_loop t sid proxy fd =
  match Wire.recv_request fd with
  | Error `Eof -> ()
  | Error (`Err e) ->
      (* Reject this session only; a best-effort explanation, then
         close. Everyone else keeps being served. *)
      Obs.Metrics.incr m_rejected;
      (try Wire.send_response fd (Wire.Failed { message = Wire.error_string e })
       with Unix.Unix_error _ -> ())
  | Ok req -> (
      match handle_request t sid proxy req with
      | None -> ( try Wire.send_response fd Wire.Bye with Unix.Unix_error _ -> ())
      | Some resp -> (
          match Wire.send_response fd resp with
          | () -> session_loop t sid proxy fd
          | exception Unix.Unix_error _ -> ()))

let run_session t sid fd =
  let proxy = Wre.Proxy.create_multi t.edbs in
  Fun.protect
    ~finally:(fun () ->
      (* Remove-then-close under the registry lock, so [stop]'s
         shutdown sweep can never hit a recycled descriptor. *)
      Mutex.lock t.lock;
      Hashtbl.remove t.sessions sid;
      Obs.Metrics.set_gauge m_active (Hashtbl.length t.sessions);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.unlock t.lock)
    (fun () -> try session_loop t sid proxy fd with Unix.Unix_error _ -> ())

let accept_loop t =
  let running = ref true in
  while !running do
    match Unix.accept ~cloexec:true t.listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if Atomic.get t.stopping then running := false
    | exception Unix.Unix_error _ -> if Atomic.get t.stopping then running := false
    | fd, _ ->
        if Atomic.get t.stopping then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          running := false)
        else (
          Mutex.lock t.lock;
          let sid = t.next_sid in
          t.next_sid <- Int64.add t.next_sid 1L;
          Hashtbl.replace t.sessions sid fd;
          Obs.Metrics.incr m_sessions;
          Obs.Metrics.set_gauge m_active (Hashtbl.length t.sessions);
          t.session_threads <- Thread.create (fun () -> run_session t sid fd) () :: t.session_threads;
          Mutex.unlock t.lock)
  done

let start cfg engine =
  match Store.Engine.encrypted_names engine with
  | [] -> Error "store has no encrypted tables to serve"
  | names ->
      let edbs = List.map (fun n -> Option.get (Store.Engine.encrypted engine n)) names in
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.bind listener (Unix.ADDR_UNIX cfg.socket_path) with
      | () -> ()
      | exception e ->
          Unix.close listener;
          raise e);
      Unix.listen listener cfg.backlog;
      let pool = Stdx.Task_pool.create ~domains:(max 1 cfg.domains) in
      let adm =
        Admission.create ~window_ns:cfg.window_ns ~batch_max:cfg.batch_max
          ~run_batch:(run_read_batch pool edbs) ~run_write:run_mutation
          ~on_exn:(fun m -> Wire.Failed { message = m })
          ()
      in
      let t =
        {
          cfg;
          engine;
          edbs;
          pool;
          adm;
          listener;
          stopping = Atomic.make false;
          lock = Mutex.create ();
          sessions = Hashtbl.create 64;
          next_sid = 1L;
          accept_thread = None;
          session_threads = [];
        }
      in
      t.accept_thread <- Some (Thread.create accept_loop t);
      Ok t

let socket_path t = t.cfg.socket_path

let stop t =
  if not (Atomic.exchange t.stopping true) then (
    (* Wake the blocked accept with a throwaway connection, then join
       it before touching the listener. *)
    (try
       let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with
    | Some th ->
        Thread.join th;
        t.accept_thread <- None
    | None -> ());
    (* Kick every live session off its blocking read; each session
       thread closes its own fd on the way out. *)
    Mutex.lock t.lock;
    Hashtbl.iter
      (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.sessions;
    let threads = t.session_threads in
    Mutex.unlock t.lock;
    List.iter Thread.join threads;
    Admission.stop t.adm;
    Stdx.Task_pool.shutdown t.pool;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
