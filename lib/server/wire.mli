(** The server's wire protocol: length-prefixed, CRC-checksummed
    frames over a byte stream (Unix-domain sockets in practice).

    Framing follows the {!Store.Wal} discipline — reject garbage before
    interpreting it. Every frame is

    {v magic:u32 "WRE1" | len:u32 | crc32(payload):u32 | payload v}

    little-endian, with [len <= max_frame]. A receiver validates the
    magic preamble, the length bound (a "negative" 32-bit length
    decodes as huge and fails the same check, before any allocation)
    and the payload CRC, in that order; message payloads are decoded
    with {!Store.Codec} and reject trailing bytes, unknown tags, and
    element counts exceeding the bytes present. Any of these failures
    is an {!error}, never an exception — a server rejects the session
    cleanly and keeps serving the others. *)

val magic : int
val header_bytes : int

val max_frame : int
(** Upper bound on payload length (16 MiB). *)

type error =
  | Bad_magic  (** preamble is not ["WRE1"] — garbage or desynced stream *)
  | Oversized of int  (** length prefix out of bounds (incl. negative-as-u32) *)
  | Bad_crc
  | Malformed of string  (** payload decodes to no valid message *)

val error_string : error -> string

type request =
  | Hello of { client : string }
  | Query of { sql : string }  (** plaintext SQL for the rewriting proxy *)
  | Ping
  | Stats  (** dump the server's metrics registry *)
  | Quit

type result_payload = {
  columns : string list;
  rows : Sqldb.Value.t array list;  (** decrypted, residual-filtered, projected *)
  affected : int;
  server_rows : int;  (** rows the server-side executor returned (incl. FPs) *)
}

type response =
  | Welcome of { session_id : int64; server : string; tables : string list }
  | Result of result_payload
  | Failed of { message : string }
  | Pong
  | Stats_reply of { text : string }
  | Bye

(** {2 Framing} *)

val frame : string -> string
(** Wrap a payload in a checked frame. *)

val parse_header : string -> (int * int, error) result
(** Validate the 12 header bytes: [Ok (payload_len, crc)]. *)

val check_payload : crc:int -> string -> (unit, error) result

(** {2 Message payloads} *)

val encode_request : request -> string
val decode_request : string -> (request, error) result
val encode_response : response -> string
val decode_response : string -> (response, error) result

(** {2 Blocking stream I/O}

    Built on {!Store.Io}'s hardened descriptor primitives, so
    interrupted syscalls (the signal-handling server's steady state)
    are retried, never surfaced as protocol errors. *)

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit

val recv_request : Unix.file_descr -> (request, [ `Eof | `Err of error ]) result
(** [`Eof] at a clean frame boundary, or when the peer reset the
    connection; mid-frame EOF is [`Err (Malformed _)]. *)

val recv_response : Unix.file_descr -> (response, [ `Eof | `Err of error ]) result
