(** Blocking client for {!Daemon}: one socket, one outstanding request.

    Used by [wre_cli connect], the protocol tests and the [exp_server]
    closed-loop benchmark clients. Any protocol violation from the
    server surfaces as [Error _]; the connection should then be
    {!close}d. *)

type t

val connect : ?client_name:string -> socket_path:string -> unit -> (t, string) result
(** Connect and complete the [Hello]/[Welcome] handshake. *)

val session_id : t -> int64
val tables : t -> string list
(** Encrypted tables announced by the server's [Welcome]. *)

val query : t -> string -> (Wire.result_payload, string) result
(** Send one SQL statement, block for its result. A server-side
    [Failed] reply becomes [Error message]. *)

val ping : t -> (unit, string) result
val stats : t -> (string, string) result

val close : t -> unit
(** Best-effort [Quit]/[Bye], then close the socket. Idempotent. *)
