(* lint: guarded-by lock — every mutable field below is read and
   written only while [lock] is held; replies are handed over under the
   same lock before [done_cv] is signalled. *)

type kind = Read | Mutate

type ('a, 'r) job = {
  j_kind : kind;
  payload : 'a;
  mutable reply : 'r option;
  done_cv : Condition.t;
  enq_ns : float;
}

type ('a, 'r) t = {
  lock : Mutex.t;
  arrived : Condition.t;  (* queue became non-empty, or stopping *)
  queue : ('a, 'r) job Queue.t;
  mutable stopping : bool;
  mutable batcher : Thread.t option;
  window_ns : float;
  batch_max : int;
  run_batch : 'a array -> 'r array;
  run_write : 'a -> 'r;
  on_exn : string -> 'r;
}

let m_batches = Obs.Metrics.counter "server.batches_total"
let m_batch_size = Obs.Metrics.histogram "server.batch_size"
let m_wait = Obs.Metrics.histogram "server.admission_wait_ns"

let complete t job r =
  Mutex.lock t.lock;
  job.reply <- Some r;
  Condition.signal job.done_cv;
  Mutex.unlock t.lock

(* Replies for a whole batch, under one lock acquisition. *)
let complete_all t jobs rs =
  Mutex.lock t.lock;
  Array.iteri
    (fun i job ->
      job.reply <- Some rs.(i);
      Condition.signal job.done_cv)
    jobs;
  Mutex.unlock t.lock

let observe_waits jobs =
  let now = Stdx.Clock.now_ns () in
  Array.iter (fun j -> Obs.Metrics.observe m_wait (now -. j.enq_ns)) jobs

let run_reads t jobs =
  observe_waits jobs;
  Obs.Metrics.incr m_batches;
  Obs.Metrics.observe m_batch_size (float_of_int (Array.length jobs));
  match t.run_batch (Array.map (fun j -> j.payload) jobs) with
  | rs when Array.length rs = Array.length jobs -> complete_all t jobs rs
  | _ ->
      let r = t.on_exn "run_batch returned wrong arity" in
      complete_all t jobs (Array.map (fun _ -> r) jobs)
  | exception e ->
      let r = t.on_exn (Printexc.to_string e) in
      complete_all t jobs (Array.map (fun _ -> r) jobs)

let run_mutation t job =
  observe_waits [| job |];
  Obs.Metrics.incr m_batches;
  Obs.Metrics.observe m_batch_size 1.0;
  match t.run_write job.payload with
  | r -> complete t job r
  | exception e -> complete t job (t.on_exn (Printexc.to_string e))

(* Pop the leading run of reads (the head job is already popped and
   counted, hence [n] starts at 1). Stops at the first mutation so
   writes keep their arrival order relative to the reads behind them.
   The count is carried alongside the list — [List.length] per
   iteration would make draining a full queue quadratic in
   [batch_max]. *)
let drain_reads t acc =
  Mutex.lock t.lock;
  let n = ref 1 and more = ref true in
  while !more && !n < t.batch_max do
    match Queue.peek_opt t.queue with
    | Some j when j.j_kind = Read ->
        acc := Queue.pop t.queue :: !acc;
        incr n
    | _ -> more := false
  done;
  Mutex.unlock t.lock

(* Reads already queued behind the popped head, up to [batch_max] —
   when the batch is full on arrival, the admission window buys no
   extra coalescing and is pure latency. *)
let leading_reads t =
  Mutex.lock t.lock;
  let n = ref 0 and stop = ref false in
  (try
     Queue.iter
       (fun j ->
         if !stop || j.j_kind <> Read then stop := true
         else begin
           incr n;
           if !n >= t.batch_max then raise Exit
         end)
       t.queue
   with Exit -> ());
  Mutex.unlock t.lock;
  !n

let batcher_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.arrived t.lock
    done;
    let head = Queue.take_opt t.queue in
    Mutex.unlock t.lock;
    match head with
    | None -> running := false (* stopping && drained *)
    | Some job when job.j_kind = Mutate -> run_mutation t job
    | Some job ->
        (* Hold the door open one admission window so concurrent reads
           coalesce into this batch's snapshot epoch — unless a full
           batch is already waiting, in which case sleeping only delays
           it. *)
        if t.window_ns > 0.0 && 1 + leading_reads t < t.batch_max then
          Thread.delay (t.window_ns *. 1e-9);
        let acc = ref [ job ] in
        drain_reads t acc;
        run_reads t (Array.of_list (List.rev !acc))
  done

let create ?(window_ns = 0.0) ?(batch_max = 256) ~run_batch ~run_write ~on_exn () =
  if batch_max < 1 then invalid_arg "Admission.create: batch_max < 1";
  let t =
    {
      lock = Mutex.create ();
      arrived = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      batcher = None;
      window_ns;
      batch_max;
      run_batch;
      run_write;
      on_exn;
    }
  in
  t.batcher <- Some (Thread.create batcher_loop t);
  t

let submit t kind payload =
  let job =
    { j_kind = kind; payload; reply = None; done_cv = Condition.create (); enq_ns = Stdx.Clock.now_ns () }
  in
  Mutex.lock t.lock;
  if t.stopping then (
    Mutex.unlock t.lock;
    invalid_arg "Admission.submit: stopped");
  Queue.push job t.queue;
  Condition.signal t.arrived;
  while job.reply = None do
    Condition.wait job.done_cv t.lock
  done;
  let r = Option.get job.reply in
  Mutex.unlock t.lock;
  r

let stop t =
  Mutex.lock t.lock;
  let first = not t.stopping in
  t.stopping <- true;
  Condition.signal t.arrived;
  Mutex.unlock t.lock;
  if first then
    match t.batcher with
    | Some th ->
        Thread.join th;
        t.batcher <- None
    | None -> ()
