(** Multi-client WRE proxy server over a Unix-domain socket.

    One accept thread, one session thread per connection, one
    {!Admission} batcher: concurrent SELECTs arriving within an
    admission window are coalesced into a single snapshot epoch — one
    {!Wre.Encrypted_db.freeze} per batch, fanned across a
    {!Stdx.Task_pool} with {!Wre.Proxy.execute_snapshot} — while
    INSERT/UPDATE/DELETE are serialized through the engine's normal
    WAL write path. Each session owns its own {!Wre.Proxy.t} (the
    per-session client state); the engine directory stays the single
    source of durability, so [kill -9] + reopen recovers every
    acknowledged write.

    Failure containment: a malformed or corrupt frame rejects {e that
    session} (best-effort [Failed] reply, then close) and bumps
    [server.frames_rejected_total]; other sessions keep being served.

    Metrics: [server.sessions_total], [server.sessions_active],
    [server.requests_total], [server.frames_rejected_total], plus the
    {!Admission} instruments and
    [server.batch_makespan_sim_ns_total] — the modeled (simulated
    storage clock) critical-path nanoseconds summed over batches,
    which is what the [exp_server] benchmark turns into modeled
    queries/second. *)

type config = {
  socket_path : string;
  domains : int;  (** task-pool domains fanning each read batch *)
  window_ns : float;  (** admission window; 0 = no coalescing delay *)
  batch_max : int;  (** max reads coalesced into one epoch *)
  backlog : int;  (** listen(2) backlog *)
}

val default_config : socket_path:string -> config
(** domains = 4, window = 1 ms, batch_max = 256, backlog = 128. *)

type t

val start : config -> Store.Engine.t -> (t, string) result
(** Bind the socket (replacing a stale one), start the accept and
    batcher threads. [Error _] if the store has no encrypted tables.
    The caller keeps ownership of the engine and closes it after
    {!stop}. Ignores [SIGPIPE] process-wide (a disconnecting client
    must not kill the server). *)

val socket_path : t -> string

val stop : t -> unit
(** Stop accepting, shut down every live session, drain queued jobs,
    join all threads and remove the socket file. Idempotent. *)
