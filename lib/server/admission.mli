(** Admission control: coalesce concurrent reads into batches.

    Sessions hand their decoded requests to a single batcher thread.
    When the batcher picks up a read it waits one {e admission window}
    for more reads to arrive, then runs the whole leading run of reads
    as one batch — one snapshot freeze, one fan-out — while writes are
    executed serially in arrival order, preserving the WAL discipline.
    The module is generic over the job payload and reply so it can be
    unit-tested with fake executors, independently of the daemon.

    Metrics: [server.batches_total], [server.batch_size] (histogram)
    and [server.admission_wait_ns] (histogram of per-job time from
    enqueue to execution start). *)

type kind =
  | Read  (** batchable: executed against one shared snapshot epoch *)
  | Mutate  (** serialized through the normal write path *)

type ('a, 'r) t

val create :
  ?window_ns:float ->
  ?batch_max:int ->
  run_batch:('a array -> 'r array) ->
  run_write:('a -> 'r) ->
  on_exn:(string -> 'r) ->
  unit ->
  ('a, 'r) t
(** Start the batcher thread. [run_batch] receives the payloads of a
    read batch (arrival order) and must return one reply per payload;
    [run_write] executes a single mutation. If either raises, every
    job in flight gets [on_exn (Printexc.to_string e)] as its reply —
    the batcher itself never dies. [window_ns] defaults to 0 (no
    coalescing delay), [batch_max] to 256. *)

val submit : ('a, 'r) t -> kind -> 'a -> 'r
(** Enqueue a job and block until its reply is ready. Raises
    [Invalid_argument] if the admission layer has been stopped. *)

val stop : ('a, 'r) t -> unit
(** Reject new submissions, drain every queued job, then join the
    batcher thread. Idempotent. *)
