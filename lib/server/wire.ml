(* Length-prefixed, CRC-checksummed wire frames over a byte stream,
   following the Store.Wal framing discipline: a fixed header carries a
   magic preamble, the payload length and the payload's CRC-32, so a
   receiver can reject garbage, truncation and corruption before ever
   interpreting a byte of payload. Message payloads reuse Store.Codec's
   little-endian primitives — rows travel in exactly the bytes a WAL
   record would use. *)

module Codec = Store.Codec
module Crc32 = Store.Crc32

let magic = 0x31455257 (* the bytes "WRE1" once put_u32's little-endian order lands them *)
let header_bytes = 12
let max_frame = 16 * 1024 * 1024

type error = Bad_magic | Oversized of int | Bad_crc | Malformed of string

let error_string = function
  | Bad_magic -> "bad magic (not a WRE1 frame)"
  | Oversized n -> Printf.sprintf "frame length %d exceeds limit %d" n max_frame
  | Bad_crc -> "payload checksum mismatch"
  | Malformed m -> Printf.sprintf "malformed payload: %s" m

type request =
  | Hello of { client : string }
  | Query of { sql : string }
  | Ping
  | Stats
  | Quit

type result_payload = {
  columns : string list;
  rows : Sqldb.Value.t array list;
  affected : int;
  server_rows : int;
}

type response =
  | Welcome of { session_id : int64; server : string; tables : string list }
  | Result of result_payload
  | Failed of { message : string }
  | Pong
  | Stats_reply of { text : string }
  | Bye

(* ---------------- framing ---------------- *)

let crc_int payload = Int32.to_int (Crc32.digest payload) land 0xFFFFFFFF

let frame payload =
  let b = Buffer.create (header_bytes + String.length payload) in
  Codec.put_u32 b magic;
  Codec.put_u32 b (String.length payload);
  Codec.put_u32 b (crc_int payload);
  Buffer.add_string b payload;
  Buffer.contents b

let parse_header h =
  if String.length h < header_bytes then Error (Malformed "truncated header")
  else
    let c = Codec.cursor h in
    let m = Codec.get_u32 c in
    if m <> magic then Error Bad_magic
    else
      let len = Codec.get_u32 c in
      let crc = Codec.get_u32 c in
      (* A 32-bit length with the high bit set decodes as a huge
         positive int here — "negative" and oversized prefixes fail the
         same bound, before any allocation. *)
      if len > max_frame then Error (Oversized len) else Ok (len, crc)

let check_payload ~crc payload = if crc_int payload = crc then Ok () else Error Bad_crc

(* ---------------- payload codec ---------------- *)

(* Element counts are bounded by the bytes actually present, so a
   corrupt count fails immediately instead of driving a giant loop. *)
let get_count c ~per =
  let n = Codec.get_u32 c in
  if per > 0 && n > Codec.remaining c / per then
    raise (Codec.Corrupt (Printf.sprintf "count %d larger than remaining payload" n));
  n

let put_strings b l =
  Codec.put_u32 b (List.length l);
  List.iter (Codec.put_str b) l

let get_strings c = List.init (get_count c ~per:4) (fun _ -> Codec.get_str c)

let put_rows b rows =
  Codec.put_u32 b (List.length rows);
  List.iter (Codec.put_row b) rows

let get_rows c = List.init (get_count c ~per:4) (fun _ -> Codec.get_row c)

let encode_request r =
  let b = Buffer.create 64 in
  (match r with
  | Hello { client } ->
      Codec.put_u8 b 1;
      Codec.put_str b client
  | Query { sql } ->
      Codec.put_u8 b 2;
      Codec.put_str b sql
  | Ping -> Codec.put_u8 b 3
  | Stats -> Codec.put_u8 b 4
  | Quit -> Codec.put_u8 b 5);
  Buffer.contents b

let decode payload read_one =
  match
    let c = Codec.cursor payload in
    let r = read_one c in
    if not (Codec.at_end c) then raise (Codec.Corrupt "trailing bytes after message");
    r
  with
  | r -> Ok r
  | exception Codec.Corrupt m -> Error (Malformed m)

let decode_request payload =
  decode payload (fun c ->
      match Codec.get_u8 c with
      | 1 -> Hello { client = Codec.get_str c }
      | 2 -> Query { sql = Codec.get_str c }
      | 3 -> Ping
      | 4 -> Stats
      | 5 -> Quit
      | t -> raise (Codec.Corrupt (Printf.sprintf "unknown request tag %d" t)))

let encode_response r =
  let b = Buffer.create 256 in
  (match r with
  | Welcome { session_id; server; tables } ->
      Codec.put_u8 b 1;
      Codec.put_u64 b session_id;
      Codec.put_str b server;
      put_strings b tables
  | Result p ->
      Codec.put_u8 b 2;
      put_strings b p.columns;
      put_rows b p.rows;
      Codec.put_u32 b p.affected;
      Codec.put_u32 b p.server_rows
  | Failed { message } ->
      Codec.put_u8 b 3;
      Codec.put_str b message
  | Pong -> Codec.put_u8 b 4
  | Stats_reply { text } ->
      Codec.put_u8 b 5;
      Codec.put_str b text
  | Bye -> Codec.put_u8 b 6);
  Buffer.contents b

let decode_response payload =
  decode payload (fun c ->
      match Codec.get_u8 c with
      | 1 ->
          let session_id = Codec.get_u64 c in
          let server = Codec.get_str c in
          let tables = get_strings c in
          Welcome { session_id; server; tables }
      | 2 ->
          let columns = get_strings c in
          let rows = get_rows c in
          let affected = Codec.get_u32 c in
          let server_rows = Codec.get_u32 c in
          Result { columns; rows; affected; server_rows }
      | 3 -> Failed { message = Codec.get_str c }
      | 4 -> Pong
      | 5 -> Stats_reply { text = Codec.get_str c }
      | 6 -> Bye
      | t -> raise (Codec.Corrupt (Printf.sprintf "unknown response tag %d" t)))

(* ---------------- blocking stream I/O ---------------- *)

let really_read fd buf len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Store.Io.read_fd fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let recv_payload fd =
  match
    let hdr = Bytes.create header_bytes in
    match really_read fd hdr header_bytes with
    | 0 -> Error `Eof
    | n when n < header_bytes -> Error (`Err (Malformed "truncated header"))
    | _ -> (
        match parse_header (Bytes.to_string hdr) with
        | Error e -> Error (`Err e)
        | Ok (len, crc) ->
            let payload = Bytes.create len in
            if really_read fd payload len < len then Error (`Err (Malformed "truncated frame"))
            else
              let payload = Bytes.to_string payload in
              (match check_payload ~crc payload with
              | Error e -> Error (`Err e)
              | Ok () -> Ok payload))
  with
  | r -> r
  (* A peer that dies with bytes still queued resets the connection
     rather than half-closing it; for the protocol that's the same
     story as EOF — the conversation is over. *)
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error `Eof

let lift_decode = function Ok r -> Ok r | Error e -> Error (`Err e)

let recv_request fd =
  match recv_payload fd with Error e -> Error e | Ok p -> lift_decode (decode_request p)

let recv_response fd =
  match recv_payload fd with Error e -> Error e | Ok p -> lift_decode (decode_response p)

let send_request fd r = Store.Io.write_fd_all fd (frame (encode_request r))
let send_response fd r = Store.Io.write_fd_all fd (frame (encode_response r))
