type t = {
  fd : Unix.file_descr;
  session_id : int64;
  tables : string list;
  closed : bool Atomic.t;
}

let recv fd =
  match Wire.recv_response fd with
  | Ok r -> Ok r
  | Error `Eof -> Error "server closed the connection"
  | Error (`Err e) -> Error (Wire.error_string e)

let rpc fd req =
  match Wire.send_request fd req with
  | () -> recv fd
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let connect ?(client_name = "wre_client") ~socket_path () =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error (Printf.sprintf "connect %s: %s" socket_path (Unix.error_message e))
  | () -> (
      match rpc fd (Wire.Hello { client = client_name }) with
      | Ok (Wire.Welcome { session_id; tables; _ }) ->
          Ok { fd; session_id; tables; closed = Atomic.make false }
      | Ok (Wire.Failed { message }) ->
          Unix.close fd;
          Error message
      | Ok _ ->
          Unix.close fd;
          Error "unexpected response to Hello"
      | Error e ->
          Unix.close fd;
          Error e)

let session_id t = t.session_id
let tables t = t.tables

let query t sql =
  match rpc t.fd (Wire.Query { sql }) with
  | Ok (Wire.Result p) -> Ok p
  | Ok (Wire.Failed { message }) -> Error message
  | Ok _ -> Error "unexpected response to Query"
  | Error e -> Error e

let ping t =
  match rpc t.fd Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> Error "unexpected response to Ping"
  | Error e -> Error e

let stats t =
  match rpc t.fd Wire.Stats with
  | Ok (Wire.Stats_reply { text }) -> Ok text
  | Ok _ -> Error "unexpected response to Stats"
  | Error e -> Error e

let close t =
  if not (Atomic.exchange t.closed true) then (
    (match rpc t.fd Wire.Quit with Ok _ | Error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ())
