type key = { enc : Ctr.key; mac : string }

let tag_len = 16

let of_raw raw =
  if String.length raw <> 32 then invalid_arg "Aead.of_raw: key must be 32 bytes";
  { enc = Ctr.of_raw (String.sub raw 0 16); mac = String.sub raw 16 16 }

let ciphertext_overhead = Ctr.ciphertext_overhead + tag_len

let mac_of key body = String.sub (Hmac.mac ~key:key.mac body) 0 tag_len

let encrypt key g pt =
  let body = Ctr.encrypt_random key.enc g pt in
  body ^ mac_of key body

let decrypt key ct =
  if String.length ct < ciphertext_overhead then Error "ciphertext too short"
  else begin
    let body = String.sub ct 0 (String.length ct - tag_len) in
    let tag = String.sub ct (String.length ct - tag_len) tag_len in
    if Stdx.Bytes_util.ct_equal tag (mac_of key body) then Ok (Ctr.decrypt key.enc body)
    else Error "authentication failed"
  end
