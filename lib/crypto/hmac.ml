let block = Sha256.block_size

let normalize_key key =
  if String.length key > block then Sha256.digest key else key

let pad key byte =
  let b = Bytes.make block (Char.chr byte) in
  String.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor byte))) key;
  Bytes.unsafe_to_string b

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (pad key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (pad key 0x5c);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let mac_hex ~key msg = Stdx.Bytes_util.to_hex (mac ~key msg)

let mac_u64 ~key msg = Stdx.Bytes_util.get_u64_be (mac ~key msg) 0

let verify ~key msg ~tag = Stdx.Bytes_util.ct_equal tag (mac ~key msg)
