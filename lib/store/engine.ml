open Sqldb

let m_replayed = Obs.Metrics.counter "store.wal_replayed_total"
let m_checkpoints = Obs.Metrics.counter "store.checkpoints_total"
let m_recoveries = Obs.Metrics.counter "store.recoveries_total"
let h_recovery = Obs.Metrics.histogram "store.recovery_ns"

type recovery = { snapshot_loaded : bool; replayed : int; duration_ns : float }

type t = {
  dir : string;
  db : Database.t;
  wal : Wal.t;
  checkpoint_every : int option;
  mutable recovery : recovery;
  mutable edbs : (string * Wre.Encrypted_db.t) list;  (* by table name *)
  mutable wre_configs : (string * Record.wre_config) list;
  mutable ops_since_checkpoint : int;
  mutable in_hook : bool;
}

let db t = t.db
let dir t = t.dir
let recovery t = t.recovery
let encrypted t name = List.assoc_opt name t.edbs
let encrypted_names t = List.map fst t.edbs

let dist_table counts_alist =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (c, counts) -> Hashtbl.replace tbl c (Dist.Empirical.of_counts counts)) counts_alist;
  fun c ->
    match Hashtbl.find_opt tbl c with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Store: no checkpointed distribution for column %S" c)

(* Rebuild an Encrypted_db.t from its logged client-side state; the
   physical table must already exist (snapshot restore or replayed
   Create_table/Create_index records). *)
let attach_wre ~db (cfg : Record.wre_config) =
  let master = Crypto.Keys.of_raw ~k0:cfg.k0 ~k1:cfg.k1 in
  Wre.Encrypted_db.attach ~fallback:cfg.fallback ~tag_algo:cfg.tag_algo
    ~range_boundaries:cfg.ranges
    ~table:(Database.table db cfg.table_name)
    ~plain_schema:cfg.plain_schema ~key_column:cfg.key_column
    ~encrypted_columns:cfg.encrypted_columns ~kind:cfg.kind ~master
    ~dist_of:(dist_table cfg.dists)
    ~prng:(Stdx.Prng.import cfg.prng) ()

let restore_prng edbs table = function
  | None -> ()
  | Some state -> (
      match List.assoc_opt table edbs with
      | Some edb -> Stdx.Prng.restore (Wre.Encrypted_db.prng edb) state
      | None -> ())

(* Replay one logged op against the in-memory state. No journal hook is
   installed yet, so nothing is re-logged. *)
let apply_op st op =
  let db, edbs = st in
  match (op : Record.op) with
  | Create_table { name; schema } -> ignore (Database.create_table db ~name ~schema)
  | Create_index { table; column; kind } ->
      ignore (Table.create_index ~kind (Database.table db table) ~column)
  | Insert { table; row; prng } ->
      ignore (Table.insert (Database.table db table) row);
      restore_prng !edbs table prng
  | Insert_batch { table; rows; prng } ->
      ignore (Table.insert_batch (Database.table db table) rows);
      restore_prng !edbs table prng
  | Delete { table; id } -> ignore (Table.delete (Database.table db table) id)
  | Vacuum { table } -> Table.vacuum (Database.table db table)
  | Attach_wre cfg ->
      edbs := (cfg.table_name, attach_wre ~db cfg) :: !edbs

let checkpoint t =
  Wal.sync t.wal;
  (* Freeze every table's current epoch up front — a brief writer-lock
     per table — then serialize the frozen views with no lock held:
     readers keep their views and writers publish new epochs while the
     snapshot file is being written. *)
  let views = List.map Table.freeze (Database.tables t.db) in
  let wre =
    List.map
      (fun (name, cfg) ->
        match List.assoc_opt name t.edbs with
        | Some edb ->
            { cfg with Record.prng = Stdx.Prng.export (Wre.Encrypted_db.prng edb) }
        | None -> cfg)
      t.wre_configs
  in
  Snapshot.write_views ~dir:t.dir
    ~last_lsn:(Int64.pred (Wal.next_lsn t.wal))
    ~pager:(Pager.config (Database.pager t.db))
    ~views ~wre;
  Wal.reset t.wal;
  t.ops_since_checkpoint <- 0;
  Obs.Metrics.incr m_checkpoints

(* The journal hook: map the in-memory mutation to a WAL record and
   append it. For mutations of an encrypted table, also capture the
   post-op PRNG state so replay resumes the exact stream. *)
let log_mutation t (m : Journal.mutation) =
  if not t.in_hook then begin
    t.in_hook <- true;
    Fun.protect ~finally:(fun () -> t.in_hook <- false) @@ fun () ->
    let prng_of table =
      Option.map
        (fun edb -> Stdx.Prng.export (Wre.Encrypted_db.prng edb))
        (List.assoc_opt table t.edbs)
    in
    let op =
      match m with
      | Journal.Created_table { name; schema } -> Record.Create_table { name; schema }
      | Journal.Created_index { table; column; kind } ->
          Record.Create_index { table; column; kind }
      | Journal.Inserted { table; row } -> Record.Insert { table; row; prng = prng_of table }
      | Journal.Inserted_batch { table; rows } ->
          Record.Insert_batch { table; rows; prng = prng_of table }
      | Journal.Deleted { table; id } -> Record.Delete { table; id }
      | Journal.Vacuumed { table } -> Record.Vacuum { table }
    in
    ignore (Wal.append t.wal (Record.encode op));
    t.ops_since_checkpoint <- t.ops_since_checkpoint + 1;
    match t.checkpoint_every with
    | Some n when t.ops_since_checkpoint >= n -> checkpoint t
    | _ -> ()
  end

let open_dir ?pager_config ?(group_commit = 1) ?checkpoint_every ~dir () =
  let result, duration_ns =
    Stdx.Clock.time_it @@ fun () ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let snap = Snapshot.load ~dir in
    let db, last_lsn =
      match snap with
      | None -> (Database.create ?config:pager_config (), 0L)
      | Some s ->
          let db = Database.create ~config:s.Snapshot.pager () in
          List.iter (fun ts -> ignore (Database.restore_table db ts)) s.tables;
          (db, s.last_lsn)
    in
    let edbs = ref [] in
    let configs = ref [] in
    (match snap with
    | None -> ()
    | Some s ->
        List.iter
          (fun (cfg : Record.wre_config) ->
            edbs := (cfg.table_name, attach_wre ~db cfg) :: !edbs;
            configs := (cfg.table_name, cfg) :: !configs)
          s.wre);
    let replayed = ref 0 in
    let wal_path = Snapshot.wal_path ~dir in
    let max_lsn, valid_len =
      Wal.replay ~path:wal_path (fun lsn payload ->
          if Int64.compare lsn last_lsn > 0 then begin
            let op = Record.decode payload in
            apply_op (db, edbs) op;
            (match op with
            | Record.Attach_wre cfg -> configs := (cfg.table_name, cfg) :: !configs
            | _ -> ());
            incr replayed;
            Obs.Metrics.incr m_replayed
          end)
    in
    let wal =
      Wal.create ~path:wal_path ~group_commit
        ~next_lsn:(Int64.succ (if Int64.compare max_lsn last_lsn > 0 then max_lsn else last_lsn))
    in
    (* Trim the torn tail a crash may have left; a log made fully
       redundant by the snapshot resets to empty. *)
    if !replayed = 0 && Wal.size wal > 0 then Wal.reset wal
    else if Wal.size wal > valid_len then Wal.truncate_to wal valid_len;
    let t =
      {
        dir;
        db;
        wal;
        checkpoint_every;
        recovery =
          { snapshot_loaded = Option.is_some snap; replayed = !replayed; duration_ns = 0.0 };
        edbs = !edbs;
        wre_configs = !configs;
        ops_since_checkpoint = !replayed;
        in_hook = false;
      }
    in
    Database.set_journal db (Some (log_mutation t));
    t
  in
  Obs.Metrics.incr m_recoveries;
  Obs.Metrics.observe h_recovery duration_ns;
  result.recovery <- { result.recovery with duration_ns };
  result

let create_encrypted ?(fallback = `Reject) ?tag_algo ?(tag_index = Table_index.Btree)
    ?range_columns ?range_training t ~name ~plain_schema ~key_column ~encrypted_columns ~kind
    ~master ~dist_of ~seed () =
  let edb =
    Wre.Encrypted_db.create ~fallback ?tag_algo ~tag_index ?range_columns ?range_training
      ~db:t.db ~name ~plain_schema ~key_column ~encrypted_columns ~kind ~master ~dist_of ~seed ()
  in
  let k0, k1 = Crypto.Keys.export master in
  let cfg =
    {
      Record.table_name = name;
      kind;
      fallback;
      tag_algo = Option.value ~default:Crypto.Prf.Hmac_sha256 tag_algo;
      tag_index;
      k0;
      k1;
      plain_schema;
      key_column;
      encrypted_columns;
      dists =
        List.map
          (fun c ->
            (c, Dist.Empirical.to_counts (Wre.Column_enc.dist (Wre.Encrypted_db.column_encryptor edb c))))
          encrypted_columns;
      ranges =
        List.map
          (fun c -> (c, Wre.Range_index.boundaries (Wre.Encrypted_db.range_index edb c)))
          (Wre.Encrypted_db.range_columns edb);
      prng = Stdx.Prng.export (Wre.Encrypted_db.prng edb);
    }
  in
  ignore (Wal.append t.wal (Record.encode (Record.Attach_wre cfg)));
  t.edbs <- (name, edb) :: t.edbs;
  t.wre_configs <- (name, cfg) :: t.wre_configs;
  edb

let flush t = Wal.sync t.wal

let close t =
  Database.set_journal t.db None;
  Wal.sync t.wal;
  Wal.close t.wal
