(** The storage engine's only door to the filesystem.

    All raw writes, fsyncs and renames in the repository live here
    (enforced by lint rule R6), each one gated on {!Failpoints} so
    crash tests can kill the process at any byte or sync boundary. The
    module keeps a registry of open files with their last-fsynced
    length; a simulated crash with [lose_unsynced] truncates each file
    back to that length — the bytes the page cache never made durable.

    Named failpoint events used by the engine: ["wal.fsync"],
    ["snapshot.write"], ["snapshot.fsync"], ["snapshot.rename"],
    ["dir.fsync"], ["atomic.write"], ["atomic.fsync"],
    ["atomic.rename"]. *)

type file

val open_append : string -> file
(** Open (creating if needed) positioned at the end; the existing
    content counts as synced. *)

val open_trunc : string -> file
(** Open, creating or truncating to empty. *)

val size : file -> int
val path : file -> string

val write : ?point:string -> file -> string -> unit
(** Append the bytes. Interrupted and transient syscalls
    ([EINTR]/[EAGAIN]) are retried; the {!size} bookkeeping is advanced
    syscall by syscall, so if a fatal error (or an injected
    {!Failpoints.arm_syscalls} outcome) aborts the loop mid-string, the
    recorded size still matches the bytes that actually reached the fd.
    A [Cut] failpoint may land mid-string: the surviving prefix is
    written (a torn write), then {!crash}. *)

val fsync : ?point:string -> file -> unit
(** Make written bytes durable. An armed event failpoint crashes {e
    instead of} syncing — the classic lost-page-cache scenario. *)

val truncate : file -> int -> unit
val close : file -> unit

val rename : ?point:string -> string -> string -> unit
(** [rename src dst], atomic on POSIX; an event failpoint crashes
    before the rename happens. *)

val fsync_dir : ?point:string -> string -> unit
(** Sync a directory so a completed rename survives power loss. *)

val crash : unit -> 'a
(** Simulate the process dying now: if the failpoint asked for it,
    truncate every open file to its synced length (dropping unsynced
    bytes), close all descriptors, and raise {!Failpoints.Crash}.
    Called by the primitives above; exposed for tests. *)

val atomic_write_text : path:string -> string -> unit
(** Crash-safe whole-file publish: write [path ^ ".tmp"], fsync,
    rename over [path], fsync the directory. At every crash point the
    destination holds either its old content or the complete new
    content, never a prefix. Used for every report/sidecar file the
    repo emits (BENCH_*.json, CSV sidecars). *)

val read_file : string -> string option
(** Whole-file read; [None] if absent. *)

(** {2 Descriptor-level primitives}

    For non-file descriptors — sockets, pipes — that need the same
    hardened syscall discipline as the storage files but none of the
    size/synced bookkeeping. The server's wire protocol rides on these
    (and lint rule R6 keeps every raw write in the repo behind this
    module). *)

val write_fd_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying [EINTR]/[EAGAIN]/short writes
    until every byte is accepted. Intended for blocking descriptors;
    fatal errors ([EPIPE], …) propagate as [Unix.Unix_error]. *)

val read_fd : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read] retrying [EINTR]/[EAGAIN]; returns 0 only at EOF. *)
