(** Append-only write-ahead log.

    Frame layout (all little-endian):
    {v [u32 payload length][u64 LSN][u32 CRC-32 of LSN-bytes ‖ payload][payload] v}

    LSNs increase by one per record and never reset — a snapshot
    records the last LSN it covers, so replay after a crash that landed
    between snapshot publication and log truncation simply skips the
    already-checkpointed prefix.

    A torn tail (short header, short payload, or CRC mismatch on the
    last frame) is the expected signature of a crash mid-append and is
    treated as a clean end-of-log; {!replay} reports where the valid
    prefix ends so the opener can truncate the garbage. *)

type t

val create : path:string -> group_commit:int -> next_lsn:int64 -> t
(** Open (or create) the log for appending. [group_commit] = how many
    appends may ride on one fsync: 1 syncs every record (full
    durability), [n] syncs every [n]th — the classic
    throughput-vs-window-of-loss knob. *)

val append : t -> string -> int64
(** Write one record, returning its LSN. Fsyncs when the group-commit
    quota is reached. *)

val sync : t -> unit
(** Force an fsync now (commit barrier; no-op if nothing is pending). *)

val reset : t -> unit
(** Truncate to empty after a checkpoint made the contents redundant.
    LSNs keep counting. *)

val truncate_to : t -> int -> unit
(** Cut a torn tail off at a valid frame boundary (from {!replay}'s
    [valid_len]) and fsync. *)

val next_lsn : t -> int64
val size : t -> int
val close : t -> unit

val replay : path:string -> (int64 -> string -> unit) -> int64 * int
(** Scan the log, calling [f lsn payload] for each intact frame in
    order. Returns [(max_lsn, valid_len)]: the highest LSN seen (0 when
    the log is empty) and the byte offset where the valid prefix ends.
    Never raises on torn/corrupt trailing data — it stops there. *)
