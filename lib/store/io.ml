type file = {
  fd : Unix.file_descr;
  f_path : string;
  mutable size : int;
  mutable synced : int;
  mutable open_ : bool;
}

let path f = f.f_path
let size f = f.size

(* Every open file, so a simulated crash can truncate them all back to
   their synced lengths and release the descriptors. *)
let registry : (string, file) Hashtbl.t = Hashtbl.create 8

let register f = Hashtbl.replace registry f.f_path f

let unregister f =
  match Hashtbl.find_opt registry f.f_path with
  | Some g when g == f -> Hashtbl.remove registry f.f_path
  | _ -> ()

let crash () =
  if Failpoints.crash_lose_unsynced () then
    Hashtbl.iter
      (fun _ f ->
        if f.open_ && f.synced < f.size then Unix.ftruncate f.fd f.synced)
      registry;
  Hashtbl.iter
    (fun _ f ->
      if f.open_ then begin
        f.open_ <- false;
        Unix.close f.fd
      end)
    registry;
  Hashtbl.reset registry;
  raise (Failpoints.Crash "simulated crash")

let open_append p =
  let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let f = { fd; f_path = p; size; synced = size; open_ = true } in
  register f;
  f

let open_trunc p =
  let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let f = { fd; f_path = p; size = 0; synced = 0; open_ = true } in
  register f;
  f

(* The one write loop everything rides on. A server process that
   handles signals sees EINTR (and, on sockets, EAGAIN) from write(2)
   at any moment; treat those as "try again", never as failure. Every
   individual attempt consults the syscall failpoint so tests can
   script short writes and transient/fatal errnos. [progress] observes
   the running byte count after each successful syscall — a caller
   whose bookkeeping must mirror the kernel's view of the file (sizes
   the crash-recovery invariants rest on) stays exact even when a
   later attempt raises a fatal error mid-string. *)
let write_retry ~progress fd s pos len =
  let written = ref 0 in
  while !written < len do
    match
      (match Failpoints.on_syscall ~requested:(len - !written) with
      | `Write k -> Unix.write_substring fd s (pos + !written) k
      | `Raise e -> raise (Unix.Unix_error (e, "write", "")))
    with
    | n ->
        written := !written + n;
        progress !written
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  done

let write ?(point = "write") f s =
  if Failpoints.on_event point then crash ();
  let n = String.length s in
  let base = f.size in
  (* Progress lands in [f.size] syscall by syscall: if the loop raises
     after a partial write, [size] already counts the bytes that
     reached the fd, so the size/synced bookkeeping — and the simulated
     crash truncation that relies on it — never diverges from the file. *)
  let progress w = f.size <- base + w in
  match Failpoints.on_write n with
  | `All -> write_retry ~progress f.fd s 0 n
  | `Partial k ->
      write_retry ~progress f.fd s 0 k;
      crash ()

let write_fd_all fd s = write_retry ~progress:ignore fd s 0 (String.length s)

let rec read_fd fd buf pos len =
  match Unix.read fd buf pos len with
  | n -> n
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      read_fd fd buf pos len

let fsync ?(point = "fsync") f =
  if Failpoints.on_event point then crash ();
  Unix.fsync f.fd;
  f.synced <- f.size

let truncate f n =
  Unix.ftruncate f.fd n;
  ignore (Unix.lseek f.fd n Unix.SEEK_SET);
  f.size <- n;
  f.synced <- min f.synced n

let close f =
  if f.open_ then begin
    f.open_ <- false;
    unregister f;
    Unix.close f.fd
  end

let rename ?(point = "rename") src dst =
  if Failpoints.on_event point then crash ();
  Unix.rename src dst

let fsync_dir ?(point = "dir.fsync") dir =
  if Failpoints.on_event point then crash ();
  (* Directory fsync makes the rename itself durable. Some filesystems
     refuse fsync on O_RDONLY directory fds; treat that as a no-op. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let atomic_write_text ~path content =
  let tmp = path ^ ".tmp" in
  let f = open_trunc tmp in
  write ~point:"atomic.write" f content;
  fsync ~point:"atomic.fsync" f;
  close f;
  rename ~point:"atomic.rename" tmp path;
  fsync_dir (Filename.dirname path)

let read_file p =
  if Sys.file_exists p then Some (In_channel.with_open_bin p In_channel.input_all) else None
