(** Logical WAL record payloads.

    One {!op} per {!Sqldb.Journal.mutation}, plus {!Attach_wre}
    describing the client-side state of an encrypted table so recovery
    can rebuild its {!Wre.Encrypted_db.t} without replaying the
    plaintext profile. Rows in [Insert]/[Insert_batch] are {e physical}
    (already encrypted for WRE tables): replay applies them without any
    key material, and the optional [prng] field carries the exported
    weak-randomness state {e after} the operation, so a recovered
    database continues the exact salt/nonce stream.

    Everything in a {!wre_config} — including the exported master-key
    halves — lives in the store directory, which is the {e trusted}
    client-side proxy state (DESIGN.md §5e); the adversary of the
    paper's model sees only the encrypted table contents. *)

type wre_config = {
  table_name : string;
  kind : Wre.Scheme.kind;
  fallback : Wre.Column_enc.fallback;
  tag_algo : Crypto.Prf.algo;
  tag_index : Sqldb.Table_index.kind;
  k0 : string;
  k1 : string;
  plain_schema : Sqldb.Schema.t;
  key_column : string;
  encrypted_columns : string list;
  dists : (string * (string * int) list) list;
      (** per searchable column: the profiled distribution as counts *)
  ranges : (string * int64 array) list;
      (** per range column: checkpointed bucket boundaries *)
  prng : string;  (** exported {!Stdx.Prng} state at capture time *)
}

type op =
  | Create_table of { name : string; schema : Sqldb.Schema.t }
  | Create_index of { table : string; column : string; kind : Sqldb.Table_index.kind }
  | Insert of { table : string; row : Sqldb.Value.t array; prng : string option }
  | Insert_batch of { table : string; rows : Sqldb.Value.t array array; prng : string option }
  | Delete of { table : string; id : int }
  | Vacuum of { table : string }
  | Attach_wre of wre_config

val encode : op -> string
val decode : string -> op
(** Raises {!Codec.Corrupt} on malformed input. *)

val put_wre_config : Buffer.t -> wre_config -> unit
val get_wre_config : Codec.cursor -> wre_config
(** Shared with the snapshot writer, which embeds the same structure. *)
